// Ablation — scalability with more cores (paper §7, first hypothesis):
// "an increase in the number of CPU cores should increase Sprayer's
// advantage over RSS, but it also has the potential to increase packet
// reordering."
//
// Sweeps the core count at 10k cycles/packet and reports, per mode, the
// single-flow processing rate (Sprayer's advantage ∝ cores until the FDIR
// ceiling), the single-flow TCP goodput, and the reordering the receiver
// observes.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const Cycles cycles = cli.get_u64("cycles", 10000);
  const double pktgen_duration = cli.get_double("pktgen_duration", 0.03);
  const double tcp_duration = cli.get_double("tcp_duration", 0.3);
  const u64 seed = cli.get_u64("seed", 1);

  std::printf("=== Ablation (paper S7.1): core count vs Sprayer advantage "
              "and reordering (single flow, %llu cycles/pkt) ===\n",
              static_cast<unsigned long long>(cycles));
  ConsoleTable table({"cores", "RSS (Mpps)", "Sprayer (Mpps)", "speedup",
                      "Sprayer TCP (Gbps)", "reordered segs"});
  for (const u32 cores : {2u, 4u, 8u, 16u, 32u}) {
    bench::PktGenExperiment ex;
    ex.nf_cycles = cycles;
    ex.num_cores = cores;
    ex.duration_s = pktgen_duration;
    ex.seed = seed;
    ex.mode = core::DispatchMode::kRss;
    const auto rss = bench::run_pktgen_experiment(ex);
    ex.mode = core::DispatchMode::kSpray;
    const auto spray = bench::run_pktgen_experiment(ex);

    nf::SyntheticNf nf(cycles);
    tcp::IperfScenario sc;
    sc.num_flows = 1;
    sc.warmup = from_seconds(0.1);
    sc.duration = from_seconds(tcp_duration);
    sc.seed = seed;
    sc.mbox.num_cores = cores;
    sc.mbox.mode = core::DispatchMode::kSpray;
    const auto tcp = run_iperf(nf, sc);

    table.add_row({std::to_string(cores),
                   ConsoleTable::num(rss.processed_pps / 1e6, 3),
                   ConsoleTable::num(spray.processed_pps / 1e6, 3),
                   ConsoleTable::num(spray.processed_pps /
                                     rss.processed_pps, 1),
                   ConsoleTable::num(tcp.total_goodput_bps / 1e9),
                   std::to_string(tcp.server_ooo_segments)});
  }
  table.print(std::cout);
  std::printf("[shape-check] speedup tracks the core count; reordering "
              "grows with it (the paper's motivation for subset spraying)\n");
  return 0;
}

// Shared experiment harness for the figure benches: builds the two-server
// testbed of §5 (traffic generator ↔ middlebox) in the simulator, runs a
// warmup + measured interval, and returns rates and latency distributions.
#pragma once

#include <memory>

#include "common/histogram.hpp"
#include "core/middlebox.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"

namespace sprayer::bench {

struct PktGenExperiment {
  core::DispatchMode mode = core::DispatchMode::kSpray;
  Cycles nf_cycles = 0;
  u32 num_flows = 1;
  u32 num_cores = 8;
  double rate_pps = line_rate_pps(10e9, 60);
  u32 frame_len = 60;
  bool poisson = false;
  double warmup_s = 0.005;
  double duration_s = 0.03;
  u64 seed = 1;
  u32 new_flow_every = 0;  // connection churn (see PktGenConfig)
  /// Optional cost-model override for ablations.
  core::CostModel costs{};
  u32 rx_batch = 32;
  nic::NicConfig nic{};
};

struct PktGenResult {
  double offered_pps = 0.0;
  double processed_pps = 0.0;
  /// One-way generator→sink latency through the middlebox, picoseconds.
  LogHistogram latency{10};
  core::MiddleboxReport report;  // measured interval only
};

/// Run the MoonGen-style experiment (Figures 6a, 7a, 8).
[[nodiscard]] PktGenResult run_pktgen_experiment(const PktGenExperiment& ex);

}  // namespace sprayer::bench

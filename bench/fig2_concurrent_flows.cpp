// Figure 2 — "Number of concurrent flows in every 150 µs window,
// considering all flows or only large flows."
//
// The paper's headline numbers on the MAWI trace: median 4 concurrent
// flows (99th percentile 14) over all flows; median 1 (99th percentile 6)
// among flows > 10 MB. This bench streams the synthetic workload through
// the same window analysis and prints both CDFs.
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "trace/analysis.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const double duration_s = cli.get_double("duration", 20.0);
  const u64 seed = cli.get_u64("seed", 1);

  trace::WorkloadConfig cfg;
  cfg.duration = from_seconds(duration_s);
  cfg.seed = seed;
  trace::WorkloadGenerator gen(cfg);
  const auto analysis = trace::analyze_concurrency(gen);

  std::printf("=== Figure 2: CDF of concurrent flows per 150 us window "
              "(%.0f s of 1 Gbps trace, %zu windows) ===\n",
              duration_s, static_cast<std::size_t>(analysis.windows));
  ConsoleTable table({"concurrent flows", "CDF all flows",
                      "CDF flows > 10 MB"});
  for (int k = 0; k <= 15; ++k) {
    table.add_row({std::to_string(k),
                   ConsoleTable::num(analysis.all_flows.at(k), 3),
                   ConsoleTable::num(analysis.large_flows.at(k), 3)});
  }
  table.print(std::cout);

  const double med_all = analysis.all_flows.median();
  const double p99_all = analysis.all_flows.quantile(0.99);
  const double med_large = analysis.large_flows.median();
  const double p99_large = analysis.large_flows.quantile(0.99);
  std::printf("all flows:     median %.0f, 99th pct %.0f  (paper: 4, 14)\n",
              med_all, p99_all);
  std::printf("flows > 10 MB: median %.0f, 99th pct %.0f  (paper: 1, 6)\n",
              med_large, p99_large);
  std::printf("[shape-check] low short-timescale concurrency: %s\n",
              (med_all <= 8 && med_large <= 3) ? "OK" : "OFF");
  return 0;
}

// Long-haul flow-state churn drill (DESIGN.md §15): drives the threaded
// executor through sustained open/close churn with heavy-tailed (Pareto)
// connection lifetimes and verifies the lifecycle invariants end to end:
//
//   monitor — ramp to `live` concurrent tracked connections (the provisioned
//             table is deliberately too small: segmented online growth must
//             absorb the population), churn opens/closes against a
//             close-deadline priority queue while data packets spray across
//             all cores, then drain with bidirectional FINs. Leak checks:
//             zero entries stranded in any segment of any shard,
//             opened == closed + expired, zero table_full refusals.
//   nat     — sessions open faster than they are closed and are reclaimed
//             ONLY by idle aging (the tentpole's pair-idle expiry path):
//             every reaped session must release its port, and after
//             quiescence the pool must be whole (claimed == 0).
//
// Emits one JSON line per workload; tools/check_churn_schema.py validates
// leaked/stranded/port-conservation/sweep-bound invariants and CI gates on
// it. BENCH_churn.json holds the committed full-scale (live >= 1M) baseline.
//
//   ./bench/churn_drill [workloads=monitor,nat] [cores=4] [live=1050000]
//       [hold=0.5] [sessions=35000] [nat_hold=1.0] [seed=42]
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <queue>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "telemetry/snapshot.hpp"

using namespace sprayer;

namespace {

/// Deterministic, collision-free five-tuples: flow i owns its own source
/// address (24 bits) and a port band above it — no accidental merges to
/// confound the leak accounting.
net::FiveTuple flow_id(u64 i) {
  return net::FiveTuple{
      net::Ipv4Addr{static_cast<u32>((10u << 24) | (i & 0xffffffu))},
      net::Ipv4Addr{192, 0, 10, static_cast<u8>(1 + (i >> 24))},
      static_cast<u16>(1024 + ((i >> 24) & 0x7fffu)), 443, net::kProtoTcp};
}

struct Driver {
  net::PacketPool& pool;
  core::ThreadedMiddlebox& mbox;

  void inject(const net::FiveTuple& t, u8 flags) {
    net::TcpSegmentSpec spec;
    spec.tuple = t;
    spec.flags = flags;
    for (;;) {
      net::Packet* pkt = net::build_tcp_raw(pool, spec);
      if (pkt != nullptr && mbox.inject(pkt)) return;
      std::this_thread::yield();
    }
  }

  void open(const net::FiveTuple& t) { inject(t, net::TcpFlags::kSyn); }
  /// Bidirectional close: one FIN per direction (the per-direction teardown
  /// bits require both).
  void close(const net::FiveTuple& t) {
    inject(t, net::TcpFlags::kFin | net::TcpFlags::kAck);
    inject(t.reversed(), net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
};

/// Live entries across the strategy's tables (writing partition: sum of the
/// per-core shards) and the deepest segmented growth any shard reached.
struct TableScan {
  u64 live = 0;
  u32 segments_max = 0;
};

TableScan scan_tables(core::ThreadedMiddlebox& mbox, u32 cores) {
  TableScan out;
  for (u32 c = 0; c < cores; ++c) {
    const auto& t = mbox.flow_table(static_cast<CoreId>(c));
    out.live += t.size();
    out.segments_max = std::max(out.segments_max, t.num_segments());
  }
  return out;
}

/// Max sweep batch the housekeeping tick ever scanned, from the merged
/// chain.h0.<nf>.sweep_groups histogram (0 when telemetry is off).
u64 sweep_groups_max(core::ThreadedMiddlebox& mbox, const char* nf_name) {
  telemetry::SnapshotCollector collector(mbox.metrics());
  const auto snap = collector.collect();
  const auto* h =
      snap.find_histogram(std::string("chain.h0.") + nf_name + ".sweep_groups");
  if (h == nullptr || h->merged.count() == 0) return 0;
  return h->merged.max();
}

core::SprayerConfig drill_cfg(u32 cores, Time idle_timeout, u32 capacity,
                              u32 segments) {
  core::SprayerConfig cfg;
  cfg.num_cores = cores;
  cfg.mode = core::DispatchMode::kSpray;
  cfg.overload_policy = OverloadPolicy::kBlock;  // closed loop: no shedding
  cfg.housekeeping_interval = 5 * kMillisecond;
  cfg.state.kind = state::StateStrategyKind::kWritingPartition;
  cfg.lifecycle.idle_timeout = idle_timeout;
  cfg.lifecycle.flow_table_capacity = capacity;
  cfg.lifecycle.max_table_segments = segments;
  return cfg;
}

// --- monitor workload: 1M+ live flows, heavy-tailed churn, full drain -------

int run_monitor(u32 cores, u64 live_target, double hold_s, u64 seed) {
  net::PacketPool pool(1u << 14, 256);
  nf::MonitorNf monitor;
  core::ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Provision a base segment well under the steady-state population per
  // shard: reaching the target forces several rounds of online growth while
  // all cores run. Idle aging is armed but beyond the drill horizon (nothing
  // may expire out from under the leak accounting — closes must balance
  // opens exactly).
  const u32 capacity = std::max<u32>(
      1024,
      static_cast<u32>(std::bit_ceil(live_target / (cores * u64{8}))));
  core::ThreadedMiddlebox mbox(drill_cfg(cores, 3600 * kSecond, capacity, 8),
                               monitor, std::move(sink));
  mbox.start();
  Driver drv{pool, mbox};

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  // Heavy-tailed lifetimes: Pareto via inverse transform, alpha 1.2 — most
  // connections are mice, a fat tail lives ~100x longer.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(1e-6, 1.0);
  // Churn lifetimes: Pareto tail on top of a floor, in "open events"
  // (virtual time) — most churn flows are mice, a fat tail lives ~10x
  // longer.
  constexpr u64 kLifetimeFloor = 1024;
  auto lifetime_packets = [&]() -> u64 {
    const double p = 4.0 * std::pow(uni(rng), -1.0 / 1.2);
    return kLifetimeFloor + static_cast<u64>(std::min(p, 4096.0));
  };

  // Close-deadline priority queue, keyed in "open events" (virtual time):
  // churn flow f opened at event e closes at e + lifetime.
  using Deadline = std::pair<u64, u64>;  // (close_event, flow index)
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>> closes;
  u64 next_flow = 0;
  u64 opens = 0;
  u64 closed_by_drill = 0;

  // Phase 1 — ramp: open the resident population. These flows stay live for
  // the whole hold (the "sustains >= target" half of the drill) and are
  // kept fresh by data packets; churn rides on top of them.
  while (opens < live_target) {
    drv.open(flow_id(next_flow));
    ++next_flow;
    ++opens;
  }
  mbox.wait_idle();
  TableScan peak = scan_tables(mbox, cores);

  // Phase 2 — hold: heavy-tailed churn over the pinned population. Every
  // open is paired with any closes whose deadline passed; data packets to
  // resident flows keep the regular (read + touch) path and the sweep busy
  // across all cores.
  const auto hold_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(hold_s));
  u64 data_packets = 0;
  // A close is only injected once the flow's SYN has provably been
  // processed (it was in flight before the last wait_idle): spraying
  // orders packets per core, not across cores, so a FIN injected while its
  // own SYN still sits in another core's ring can overtake it through the
  // redirect mesh and leave a half-closed entry. Real connections live for
  // RTTs; this watermark models that minimum separation.
  u64 syn_flushed = 0;
  std::uniform_int_distribution<u64> resident_pick(0, live_target - 1);
  while (Clock::now() < hold_deadline) {
    for (u32 burst = 0; burst < 256; ++burst) {
      drv.open(flow_id(next_flow));
      closes.emplace(opens + lifetime_packets(), next_flow);
      ++next_flow;
      ++opens;
      while (!closes.empty() && closes.top().first <= opens &&
             closes.top().second < syn_flushed) {
        drv.close(flow_id(closes.top().second));
        closes.pop();
        ++closed_by_drill;
      }
      if ((opens & 7) == 0) {
        drv.inject(flow_id(resident_pick(rng)), net::TcpFlags::kAck);
        ++data_packets;
      }
    }
    mbox.wait_idle();
    syn_flushed = next_flow;
    const TableScan now = scan_tables(mbox, cores);
    if (now.live > peak.live) peak = now;
  }
  mbox.wait_idle();
  {
    const TableScan now = scan_tables(mbox, cores);
    if (now.live > peak.live) peak = now;
  }

  // Phase 3 — drain: close everything still scheduled, then retransmit FIN
  // pairs at whatever keys the tables still hold. A mouse flow's FIN can
  // overtake its own in-flight SYN through the redirect mesh (cross-core
  // arrival order is unordered by design), leaving a half-closed entry —
  // the same way real teardown segments get lost or reordered. Endpoints
  // retransmit, so the drill does too; anything still resident afterwards
  // is a genuine leak.
  while (!closes.empty()) {
    drv.close(flow_id(closes.top().second));
    closes.pop();
    ++closed_by_drill;
  }
  for (u64 i = 0; i < live_target; ++i) {  // the pinned resident population
    drv.close(flow_id(i));
    ++closed_by_drill;
  }
  mbox.wait_idle();
  u64 fin_retransmits = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<net::FiveTuple> resident;
    for (u32 c = 0; c < cores; ++c) {
      auto& t = mbox.flow_table(static_cast<CoreId>(c));
      u64 cursor = 0;
      u64 left = t.total_groups();
      while (left > 0) {
        left -= t.sweep_groups(
            cursor, static_cast<u32>(std::min<u64>(left, 4096)),
            [&](const net::FiveTuple& key, auto&&...) {
              resident.push_back(key);
            });
      }
    }
    if (resident.empty()) break;
    for (const auto& key : resident) {
      drv.close(key);
      ++fin_retransmits;
    }
    mbox.wait_idle();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    mbox.wait_idle();
  }

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const TableScan end = scan_tables(mbox, cores);
  const auto totals = monitor.aggregate();
  const auto stats = mbox.total_stats();
  const u64 sweep_max = sweep_groups_max(mbox, "monitor");
  // Auto sweep budget on the deepest-grown shard (max(64, groups/8)).
  const u64 budget = std::max<u64>(
      64, (static_cast<u64>(capacity) / core::FlowTable::kGroupWidth) *
              peak.segments_max / 8);
  mbox.stop();

  const u64 leaked =
      totals.connections_opened -
      std::min(totals.connections_opened,
               totals.connections_closed + totals.connections_expired);
  std::printf(
      "{\"bench\":\"churn_drill\",\"workload\":\"monitor\",\"cores\":%u,"
      "\"live_target\":%llu,\"peak_live\":%llu,\"opens\":%llu,"
      "\"closes\":%llu,\"data_packets\":%llu,"
      "\"opened\":%llu,\"closed\":%llu,\"expired\":%llu,\"table_full\":%llu,"
      "\"leaked\":%llu,\"stranded\":%llu,\"fin_retransmits\":%llu,"
      "\"segments_max\":%u,"
      "\"conn_local\":%llu,\"conn_transferred\":%llu,\"conn_foreign\":%llu,"
      "\"transfer_drops\":%llu,\"rx_ring_drops\":%llu,"
      "\"sweep_groups_max\":%llu,\"sweep_budget\":%llu,\"elapsed_s\":%.3f}\n",
      cores, static_cast<unsigned long long>(live_target),
      static_cast<unsigned long long>(peak.live),
      static_cast<unsigned long long>(opens),
      static_cast<unsigned long long>(closed_by_drill),
      static_cast<unsigned long long>(data_packets),
      static_cast<unsigned long long>(totals.connections_opened),
      static_cast<unsigned long long>(totals.connections_closed),
      static_cast<unsigned long long>(totals.connections_expired),
      static_cast<unsigned long long>(totals.table_full),
      static_cast<unsigned long long>(leaked),
      static_cast<unsigned long long>(end.live),
      static_cast<unsigned long long>(fin_retransmits), peak.segments_max,
      static_cast<unsigned long long>(stats.conn_local.load()),
      static_cast<unsigned long long>(stats.conn_transferred_out.load()),
      static_cast<unsigned long long>(stats.conn_foreign_in.load()),
      static_cast<unsigned long long>(stats.transfer_drops.load()),
      static_cast<unsigned long long>(mbox.rx_ring_drops()),
      static_cast<unsigned long long>(sweep_max),
      static_cast<unsigned long long>(budget), elapsed);
  std::fflush(stdout);

  int rc = 0;
  if (end.live != 0 || leaked != 0) rc = 1;  // stranded or leaked
  if (totals.table_full != 0) rc = 1;        // growth failed
  if (peak.live < live_target) rc = 1;       // never reached target
  // Histogram shard-merge reconstructs the max from a log-bucket upper
  // edge; allow that quantization (~1.6%) over the true budget.
  if (sweep_max > budget + budget / 64 + 8) rc = 1;  // sweep unbounded
  return rc;
}

// --- nat workload: idle aging is the only reaper; ports must conserve -------

int run_nat(u32 cores, u64 sessions, double hold_s) {
  net::PacketPool pool(1u << 14, 256);
  nf::NatNf nat;  // ports 10000..60000
  core::ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Sessions are never FIN-closed: the 60ms pair-idle expiry is the only
  // path back to the pool. Default 64k capacity, growth off.
  core::ThreadedMiddlebox mbox(drill_cfg(cores, 60 * kMillisecond, 0, 1), nat,
                               std::move(sink));
  mbox.start();
  Driver drv{pool, mbox};

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto hold_deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(hold_s));

  // Keep ~`sessions` alive: refresh a sliding window with data packets while
  // opening new sessions; everything behind the window goes idle and must be
  // reaped by the sweep. Flow ids share the NAT's port-claim keyspace.
  u64 next_session = 0;
  u64 ports_claimed_peak = 0;
  while (Clock::now() < hold_deadline) {
    for (u32 burst = 0; burst < 64; ++burst) {
      drv.open(flow_id(1u << 28 | next_session));
      ++next_session;
    }
    const u64 lo = next_session > sessions ? next_session - sessions : 0;
    for (u64 i = lo; i < next_session; i += 97) {
      drv.inject(flow_id(1u << 28 | i), net::TcpFlags::kAck);
    }
    ports_claimed_peak =
        std::max<u64>(ports_claimed_peak, nat.port_pool().claimed());
    if (nat.port_pool().claimed() + 128 >= sessions) {
      // Near the working-set cap: let aging catch up before opening more.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  mbox.wait_idle();

  // Quiesce: no traffic, so every session idles out. Poll until the pool is
  // whole (bounded by a generous deadline).
  const auto reap_deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < reap_deadline && nat.port_pool().claimed() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  mbox.wait_idle();

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const TableScan end = scan_tables(mbox, cores);
  const auto counters = nat.counters();
  const u64 ports_leaked = nat.port_pool().claimed();
  const u64 sweep_max = sweep_groups_max(mbox, "nat");
  const u64 budget =
      std::max<u64>(64, ((1u << 16) / core::FlowTable::kGroupWidth) / 8);
  mbox.stop();

  std::printf(
      "{\"bench\":\"churn_drill\",\"workload\":\"nat\",\"cores\":%u,"
      "\"sessions_target\":%llu,\"opened\":%llu,\"closed\":%llu,"
      "\"expired\":%llu,\"port_exhausted\":%llu,\"table_full\":%llu,"
      "\"ports_claimed_peak\":%llu,\"ports_leaked\":%llu,\"stranded\":%llu,"
      "\"sweep_groups_max\":%llu,\"sweep_budget\":%llu,\"elapsed_s\":%.3f}\n",
      cores, static_cast<unsigned long long>(sessions),
      static_cast<unsigned long long>(counters.sessions_opened),
      static_cast<unsigned long long>(counters.sessions_closed),
      static_cast<unsigned long long>(counters.sessions_expired),
      static_cast<unsigned long long>(counters.port_exhausted),
      static_cast<unsigned long long>(counters.table_full),
      static_cast<unsigned long long>(ports_claimed_peak),
      static_cast<unsigned long long>(ports_leaked),
      static_cast<unsigned long long>(end.live),
      static_cast<unsigned long long>(sweep_max),
      static_cast<unsigned long long>(budget), elapsed);
  std::fflush(stdout);

  int rc = 0;
  if (ports_leaked != 0 || end.live != 0) rc = 1;
  if (counters.sessions_opened !=
      counters.sessions_closed) {  // every open must be balanced by a close
    rc = 1;
  }
  // Same log-bucket quantization slack as the monitor workload.
  if (sweep_max > budget + budget / 64 + 8) rc = 1;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 4));
  const u64 live = cli.get_u64("live", 1'050'000);
  const double hold = cli.get_double("hold", 0.5);
  const u64 sessions = cli.get_u64("sessions", 35'000);
  const double nat_hold = cli.get_double("nat_hold", 1.0);
  const u64 seed = cli.get_u64("seed", 42);
  const std::string workloads = cli.get("workloads", "monitor,nat");

  int rc = 0;
  if (workloads.find("monitor") != std::string::npos) {
    rc |= run_monitor(cores, live, hold, seed);
  }
  if (workloads.find("nat") != std::string::npos) {
    rc |= run_nat(cores, sessions, nat_hold);
  }
  return rc;
}

// Throughput of the threaded executor on real worker threads: one driver
// thread copies pre-built template frames into pool buffers and injects
// them, N workers run the NF, and the TX sink counts and frees survivors.
// Compares the per-packet API path (inject() + per-packet sink) against the
// batched path (inject_bulk() + per-batch sink, staged transfers, bulk
// pool operations) across core counts and dispatch modes.
//
// Emits one JSON line per configuration (pps, drops, per-core stats) so
// successive PRs can track the trajectory:
//
//   ./bench/threaded_throughput [cores=1,2,4] [modes=spray,flow]
//       [paths=packet,bulk] [duration=0.4] [flows=64] [rx_batch=32]
//       [burst=32] [nf_cycles=0] [telemetry=1] [reorder=0]
//       [telemetry_json=prefix] [variants=1] [policy=drop-new]
//       [flow_export=0] [trace=0] [trace_shift=6] [live_json=path]
//
// telemetry=0 disables the metrics registry entirely (for overhead A/B
// runs). reorder=1 turns on the spray-reorder observatory. telemetry_json
// writes one "sprayer.telemetry.v1" snapshot file per configuration,
// named <prefix>.<mode>.<path>.c<cores>.json. variants>1 pre-builds that
// many payload variants per flow: with a single template per flow every
// packet of a flow carries the same TCP checksum, so checksum-bit spraying
// degenerates to per-flow placement — variant payloads restore the
// per-packet entropy real traffic has (needed to observe reordering).
//
// flow_export=1 turns on the per-core flow-record tables and the live
// "sprayer.flowexport.v1" stream (live_json= names the sink file/FIFO;
// empty keeps accounting on with no stream, the pure-overhead case).
// trace=1 enables the sampled packet-path tracer (requires telemetry=1)
// at 1-in-2^trace_shift; the result line grows records/records_per_s and
// per-stage (steer/queue/nf) p50/p99 latency fields.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"
#include "telemetry/json_exporter.hpp"
#include "telemetry/snapshot.hpp"

using namespace sprayer;

namespace {

constexpr u32 kMaxBurst = 64;

struct RunConfig {
  u32 cores = 4;
  core::DispatchMode mode = core::DispatchMode::kSpray;
  bool bulk = true;
  double duration_s = 0.4;
  u32 flows = 64;
  u32 rx_batch = 32;
  u32 burst = 32;
  Cycles nf_cycles = 0;
  bool telemetry = true;
  bool reorder = false;
  std::string telemetry_json;  // snapshot file prefix; empty = no export
  u32 variants = 1;            // payload variants per flow
  bool flow_export = false;
  bool trace = false;
  u32 trace_shift = 6;    // 1-in-2^shift sampled packets
  std::string live_json;  // flow-export stream sink; empty = no stream
  // Default drop-new, not the framework's drop-regular-first: this bench
  // floods open-loop, so it lives permanently above the shed watermark and
  // any reserved conn headroom just rescales the effective ring capacity
  // (~0.75x pps on an oversubscribed host). Tail-drop keeps the tracked
  // series measuring the drain rate; use policy= for overload experiments
  // (overload_drill compares the policies properly).
  OverloadPolicy policy = OverloadPolicy::kDropNew;
};

struct RunResult {
  double elapsed_s = 0.0;
  u64 injected = 0;
  u64 forwarded = 0;
  u64 tx_calls = 0;
  u64 rx_ring_drops = 0;
  core::CoreStats total;
  std::vector<core::CoreStats> per_core;
  // Flow export / trace observability (populated only when enabled).
  u64 flow_records = 0;
  u64 flows_seen = 0;
  u64 trace_sampled = 0;
  struct StageLat {
    u64 p50 = 0;
    u64 p99 = 0;
  };
  StageLat steer_ns, queue_ns, nf_ns;
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Pre-build one valid TCP data frame per flow; the driver then only
/// memcpys, so packet construction cost stays off the measured path.
std::vector<std::vector<u8>> build_templates(
    const std::vector<net::FiveTuple>& flow_set, u32 variants) {
  net::PacketPool scratch(flow_set.size() + 1, 256);
  std::vector<std::vector<u8>> templates;
  for (const auto& flow : flow_set) {
    for (u32 v = 0; v < variants; ++v) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 6;
      const u8 payload[6] = {1, 2, 3, 4, 5, static_cast<u8>(6 + v)};
      spec.payload = payload;
      net::Packet* pkt = net::build_tcp_raw(scratch, spec);
      templates.emplace_back(pkt->data(), pkt->data() + pkt->len());
      scratch.free(pkt);
    }
  }
  return templates;
}

RunResult run_one(const RunConfig& rc) {
  net::PacketPool pool(1u << 15, 256);
  nf::SyntheticNf nf(rc.nf_cycles);
  std::atomic<u64> forwarded{0};
  std::atomic<u64> tx_calls{0};

  core::SprayerConfig cfg;
  cfg.num_cores = rc.cores;
  cfg.mode = rc.mode;
  cfg.rx_batch = rc.rx_batch;
  cfg.housekeeping_interval = 0;
  cfg.telemetry = rc.telemetry;
  cfg.reorder_observatory = rc.reorder;
  cfg.overload_policy = rc.policy;
  cfg.flow_export.enabled = rc.flow_export;
  cfg.flow_export.sink_path = rc.live_json;
  cfg.trace.enabled = rc.trace;
  cfg.trace.sample_shift = rc.trace_shift;

  std::unique_ptr<core::ThreadedMiddlebox> mbox;
  if (rc.bulk) {
    mbox = std::make_unique<core::ThreadedMiddlebox>(
        cfg, nf,
        core::ThreadedMiddlebox::TxBatchHandler(
            [&](std::span<net::Packet* const> pkts) {
              forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
              tx_calls.fetch_add(1, std::memory_order_relaxed);
              net::free_packets(pkts);
            }));
  } else {
    mbox = std::make_unique<core::ThreadedMiddlebox>(
        cfg, nf,
        core::ThreadedMiddlebox::TxHandler([&](net::Packet* pkt) {
          forwarded.fetch_add(1, std::memory_order_relaxed);
          tx_calls.fetch_add(1, std::memory_order_relaxed);
          pkt->pool()->free(pkt);
        }));
  }
  if (rc.telemetry) {
    // Pool magazine effectiveness, evaluated lazily at snapshot time
    // (gauge_fn registration is allowed after the registry is finalized).
    mbox->metrics().gauge_fn("pool.magazine_hits",
                             [&pool] { return pool.cache_stats().hits; });
    mbox->metrics().gauge_fn("pool.magazine_misses",
                             [&pool] { return pool.cache_stats().misses; });
    mbox->metrics().gauge_fn("pool.locked_allocs",
                             [&pool] { return pool.cache_stats().locked; });
  }
  mbox->start();

  const auto flow_set = nic::random_tcp_flows(rc.flows, 42);
  const auto templates =
      build_templates(flow_set, std::max<u32>(rc.variants, 1));

  // Establish flow state before the measured interval (SYNs redirect).
  for (const auto& flow : flow_set) {
    net::TcpSegmentSpec spec;
    spec.tuple = flow;
    spec.flags = net::TcpFlags::kSyn;
    net::Packet* syn = net::build_tcp_raw(pool, spec);
    while (!mbox->inject(syn)) {
      syn = net::build_tcp_raw(pool, spec);
      std::this_thread::yield();
    }
  }
  mbox->wait_idle();

  using Clock = std::chrono::steady_clock;
  const u32 burst_size = std::min(rc.burst, kMaxBurst);
  std::array<net::Packet*, kMaxBurst> burst{};
  u64 injected = 0;
  std::size_t next_template = 0;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    const u32 n = pool.alloc_bulk(std::span{burst.data(), burst_size});
    if (n == 0) {  // backpressure: workers own every buffer right now
      std::this_thread::yield();
      continue;
    }
    for (u32 i = 0; i < n; ++i) {
      const auto& frame = templates[next_template];
      if (++next_template == templates.size()) next_template = 0;
      std::memcpy(burst[i]->data(), frame.data(), frame.size());
      burst[i]->set_len(static_cast<u32>(frame.size()));
    }
    if (rc.bulk) {
      injected += mbox->inject_bulk({burst.data(), n});
    } else {
      for (u32 i = 0; i < n; ++i) {
        if (mbox->inject(burst[i])) ++injected;
      }
    }
  }
  mbox->wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  if (rc.telemetry && !rc.telemetry_json.empty()) {
    const auto snap = mbox->telemetry_snapshot();
    const auto reorder_stats = mbox->reorder_stats();
    std::string path = rc.telemetry_json;
    path += rc.mode == core::DispatchMode::kSpray ? ".spray" : ".flow";
    path += rc.bulk ? ".bulk" : ".packet";
    path += ".c" + std::to_string(rc.cores) + ".json";
    telemetry::JsonExporter::write_file(
        path, snap, rc.reorder ? &reorder_stats : nullptr);
  }
  mbox->stop();  // flushes the final flow-export records

  RunResult res;
  if (auto* fx = mbox->flow_exporter()) {
    const auto& st = fx->stats();
    res.flow_records = st.records;
    res.flows_seen = st.flows_seen;
  }
  if (mbox->tracer() != nullptr) {
    res.trace_sampled = mbox->tracer()->sampled();
    const auto snap = mbox->telemetry_snapshot();
    const auto stage = [&](const char* name) {
      RunResult::StageLat lat;
      if (const auto* h = snap.find_histogram(name)) {
        lat.p50 = h->merged.p50();
        lat.p99 = h->merged.p99();
      }
      return lat;
    };
    res.steer_ns = stage("trace.steer_ns");
    res.queue_ns = stage("trace.queue_ns");
    res.nf_ns = stage("trace.nf_ns");
  }
  res.elapsed_s = elapsed;
  res.injected = injected;
  res.forwarded = forwarded.load();
  res.tx_calls = tx_calls.load();
  res.rx_ring_drops = mbox->rx_ring_drops();
  res.total = mbox->total_stats();
  for (u32 c = 0; c < rc.cores; ++c) {
    res.per_core.push_back(mbox->core_stats(static_cast<CoreId>(c)));
  }
  return res;
}

void print_json(const RunConfig& rc, const RunResult& res) {
  std::printf(
      "{\"bench\":\"threaded_throughput\",\"mode\":\"%s\","
      "\"path\":\"%s\",\"cores\":%u,\"rx_batch\":%u,\"nf_cycles\":%llu,"
      "\"elapsed_s\":%.4f,\"injected\":%llu,\"forwarded\":%llu,"
      "\"pps\":%.0f,\"tx_calls\":%llu,\"rx_ring_drops\":%llu,"
      "\"transfer_drops\":%llu,",
      rc.mode == core::DispatchMode::kSpray ? "spray" : "flow",
      rc.bulk ? "bulk" : "packet", rc.cores, rc.rx_batch,
      static_cast<unsigned long long>(rc.nf_cycles), res.elapsed_s,
      static_cast<unsigned long long>(res.injected),
      static_cast<unsigned long long>(res.forwarded),
      static_cast<double>(res.forwarded) / res.elapsed_s,
      static_cast<unsigned long long>(res.tx_calls),
      static_cast<unsigned long long>(res.rx_ring_drops),
      static_cast<unsigned long long>(res.total.transfer_drops));
  if (rc.flow_export) {
    std::printf(
        "\"flow_records\":%llu,\"flow_records_per_s\":%.0f,"
        "\"flows_seen\":%llu,",
        static_cast<unsigned long long>(res.flow_records),
        static_cast<double>(res.flow_records) / res.elapsed_s,
        static_cast<unsigned long long>(res.flows_seen));
  }
  if (rc.trace) {
    const auto stage = [](const char* name, const RunResult::StageLat& s,
                          const char* trailer) {
      std::printf("\"%s\":{\"p50\":%llu,\"p99\":%llu}%s", name,
                  static_cast<unsigned long long>(s.p50),
                  static_cast<unsigned long long>(s.p99), trailer);
    };
    std::printf("\"trace_sampled\":%llu,\"trace_ns\":{",
                static_cast<unsigned long long>(res.trace_sampled));
    stage("steer", res.steer_ns, ",");
    stage("queue", res.queue_ns, ",");
    stage("nf", res.nf_ns, "},");
  }
  std::printf("\"per_core\":[");
  for (std::size_t c = 0; c < res.per_core.size(); ++c) {
    const auto& s = res.per_core[c];
    std::printf(
        "%s{\"core\":%zu,\"rx\":%llu,\"tx\":%llu,\"conn_local\":%llu,"
        "\"conn_out\":%llu,\"conn_in\":%llu}",
        c == 0 ? "" : ",", c, static_cast<unsigned long long>(s.rx_packets),
        static_cast<unsigned long long>(s.tx_packets),
        static_cast<unsigned long long>(s.conn_local),
        static_cast<unsigned long long>(s.conn_transferred_out),
        static_cast<unsigned long long>(s.conn_foreign_in));
  }
  std::printf("]}\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  RunConfig base;
  base.duration_s = cli.get_double("duration", 0.4);
  base.flows = static_cast<u32>(cli.get_u64("flows", 64));
  base.rx_batch = static_cast<u32>(cli.get_u64("rx_batch", 32));
  base.burst = static_cast<u32>(cli.get_u64("burst", 32));
  base.nf_cycles = cli.get_u64("nf_cycles", 0);
  base.telemetry = cli.get_u64("telemetry", 1) != 0;
  base.reorder = cli.get_u64("reorder", 0) != 0;
  base.telemetry_json = cli.get("telemetry_json", "");
  base.variants = static_cast<u32>(cli.get_u64("variants", 1));
  base.flow_export = cli.get_u64("flow_export", 0) != 0;
  base.trace = cli.get_u64("trace", 0) != 0;
  base.trace_shift = static_cast<u32>(cli.get_u64("trace_shift", 6));
  base.live_json = cli.get("live_json", "");
  const std::string policy_s = cli.get("policy", "drop-new");
  base.policy = policy_s == "drop-new"   ? OverloadPolicy::kDropNew
                : policy_s == "block"    ? OverloadPolicy::kBlock
                                         : OverloadPolicy::kDropRegularFirst;

  for (const auto& cores_s : split_list(cli.get("cores", "1,2,4"))) {
    for (const auto& mode_s : split_list(cli.get("modes", "spray,flow"))) {
      for (const auto& path_s : split_list(cli.get("paths", "packet,bulk"))) {
        RunConfig rc = base;
        rc.cores = static_cast<u32>(std::stoul(cores_s));
        rc.mode = mode_s == "flow" ? core::DispatchMode::kRss
                                   : core::DispatchMode::kSpray;
        rc.bulk = path_s == "bulk";
        print_json(rc, run_one(rc));
      }
    }
  }
  return 0;
}

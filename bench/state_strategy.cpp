// Head-to-head race of the pluggable flow-state strategies (DESIGN.md §14)
// on the threaded executor: writing partition vs state-compute replication
// vs the shared-locked strawman, across three traffic mixes chosen to pull
// the strategies apart:
//
//   churn        — pure SYN/FIN storm through the monitor (insert/remove at
//                  every packet): the flow-event path dominates, so the cost
//                  of redirecting + replicating (or of writer-exclusive
//                  locking) is the whole story;
//   nat_write    — NAT sessions held open while every cycle re-touches them
//                  with SYN/FIN mutations between data bursts: write-heavy
//                  flow events plus a translated read per data packet
//                  (teardown is FIN-only, so the strawman's racy close path
//                  never double-releases a port — see DESIGN.md §14 on why
//                  that path cannot be raced safely at all);
//   monitor_read — established flows, pure data: the regular path is
//                  read-only, which is replication's best case (every
//                  get_flow is served from the local replica) and writing
//                  partition's cross-core cache-miss case.
//
// Emits one JSON line per (strategy, workload) with throughput plus the
// per-strategy telemetry (remote reads / avoided remote reads / lock
// acquisitions, sync-frame broadcast traffic, replica-divergence audit);
// tools/check_state_schema.py validates the output and CI gates on it:
//
//   ./bench/state_strategy
//       [strategies=writing_partition,replication,shared_locked]
//       [workloads=churn,nat_write,monitor_read] [cores=4] [duration=0.4]
//       [flows=0 (per-workload default)] [rx_batch=32] [burst=32]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "nic/pktgen.hpp"

using namespace sprayer;

namespace {

constexpr u32 kMaxBurst = 64;

enum class Workload { kChurn, kNatWrite, kMonitorRead };

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kChurn:
      return "churn";
    case Workload::kNatWrite:
      return "nat_write";
    case Workload::kMonitorRead:
      return "monitor_read";
  }
  return "unknown";
}

struct RunConfig {
  state::StateStrategyKind strategy =
      state::StateStrategyKind::kWritingPartition;
  Workload workload = Workload::kChurn;
  u32 cores = 4;
  double duration_s = 0.4;
  u32 flows = 0;  // 0 = per-workload default
  u32 rx_batch = 32;
  u32 burst = 32;

  [[nodiscard]] u32 effective_flows() const {
    if (flows != 0) return flows;
    switch (workload) {
      case Workload::kChurn:
        return 4096;
      case Workload::kNatWrite:
        return 2048;
      case Workload::kMonitorRead:
        return 1024;
    }
    return 1024;
  }
};

struct RunResult {
  double elapsed_s = 0.0;
  u64 injected = 0;
  u64 forwarded = 0;
  u64 rx_ring_drops = 0;
  core::CoreStats total;
  core::FlowAccessStats access;
  core::StrategyCounters counters;  // summed over cores (plain copies)
  state::SyncStatsSnapshot sync;
  state::DivergenceReport divergence;
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One pre-built frame per flow with the given flags (payload only on data
/// frames, where variant payloads keep the checksum-spray entropy real
/// traffic has).
void append_wave(std::vector<std::vector<u8>>& out,
                 const std::vector<net::FiveTuple>& flow_set, u8 flags,
                 u32 variant) {
  net::PacketPool scratch(2, 256);
  for (const auto& flow : flow_set) {
    net::TcpSegmentSpec spec;
    spec.tuple = flow;
    spec.flags = flags;
    u8 payload[6] = {1, 2, 3, 4, 5, static_cast<u8>(variant)};
    if (flags == net::TcpFlags::kAck) {
      spec.payload_len = sizeof(payload);
      spec.payload = payload;
    }
    net::Packet* pkt = net::build_tcp_raw(scratch, spec);
    out.emplace_back(pkt->data(), pkt->data() + pkt->len());
    scratch.free(pkt);
  }
}

/// The injected cycle, one wave after another; same-flow conn frames are a
/// full flow-set apart so they stay ordered through the rings.
std::vector<std::vector<u8>> build_cycle(
    Workload w, const std::vector<net::FiveTuple>& flow_set) {
  std::vector<std::vector<u8>> cycle;
  switch (w) {
    case Workload::kChurn:
      // Open + close every flow, every cycle: all conn packets.
      append_wave(cycle, flow_set, net::TcpFlags::kSyn, 0);
      append_wave(cycle, flow_set,
                  net::TcpFlags::kFin | net::TcpFlags::kAck, 0);
      break;
    case Workload::kNatWrite:
      // Sessions stay open (pre-established, FIN from one side only never
      // completes the close handshake); every SYN/FIN still runs the conn
      // handler and mutates the session entry, every ACK translates.
      append_wave(cycle, flow_set, net::TcpFlags::kSyn, 0);
      append_wave(cycle, flow_set, net::TcpFlags::kAck, 0);
      append_wave(cycle, flow_set,
                  net::TcpFlags::kFin | net::TcpFlags::kAck, 0);
      break;
    case Workload::kMonitorRead:
      // Established flows, pure data: regular-path reads only.
      for (u32 v = 0; v < 4; ++v) {
        append_wave(cycle, flow_set, net::TcpFlags::kAck, v);
      }
      break;
  }
  return cycle;
}

RunResult run_one(const RunConfig& rc) {
  net::PacketPool pool(1u << 15, 256);
  const u32 flows = rc.effective_flows();

  // NAT teardown is FIN-only by construction (see build_cycle); a huge
  // TIME_WAIT just documents that no session expires mid-run.
  nf::NatConfig nat_cfg;
  nat_cfg.time_wait = 3600 * kSecond;
  std::unique_ptr<core::INetworkFunction> nf;
  switch (rc.workload) {
    case Workload::kChurn:
      nf = std::make_unique<nf::MonitorNf>(/*close_on_single_fin=*/true);
      break;
    case Workload::kNatWrite:
      nf = std::make_unique<nf::NatNf>(nat_cfg);
      break;
    case Workload::kMonitorRead:
      nf = std::make_unique<nf::MonitorNf>();
      break;
  }

  std::atomic<u64> forwarded{0};
  core::SprayerConfig cfg;
  cfg.num_cores = rc.cores;
  cfg.mode = core::DispatchMode::kSpray;
  cfg.rx_batch = rc.rx_batch;
  // Replication flushes alloc-stalled sync frames from housekeeping, so it
  // must tick; the same interval everywhere keeps the race fair.
  cfg.housekeeping_interval = 5 * kMillisecond;
  cfg.telemetry = false;
  // Open-loop flood: tail-drop at the rx ring measures the drain rate (same
  // rationale as threaded_throughput).
  cfg.overload_policy = OverloadPolicy::kDropNew;
  cfg.state.kind = rc.strategy;

  core::ThreadedMiddlebox mbox(
      cfg, *nf,
      core::ThreadedMiddlebox::TxBatchHandler(
          [&](std::span<net::Packet* const> pkts) {
            forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
            net::free_packets(pkts);
          }));
  mbox.start();

  const auto flow_set = nic::random_tcp_flows(flows, 42);
  const auto cycle = build_cycle(rc.workload, flow_set);

  // Establish flow state before the measured interval (NAT sessions and
  // monitored flows; churn starts cold — opening is the workload).
  if (rc.workload != Workload::kChurn) {
    for (const auto& flow : flow_set) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kSyn;
      net::Packet* syn = net::build_tcp_raw(pool, spec);
      while (!mbox.inject(syn)) {
        syn = net::build_tcp_raw(pool, spec);
        std::this_thread::yield();
      }
    }
    mbox.wait_idle();
  }

  using Clock = std::chrono::steady_clock;
  const u32 burst_size = std::min(rc.burst, kMaxBurst);
  std::array<net::Packet*, kMaxBurst> burst{};
  u64 injected = 0;
  std::size_t next_frame = 0;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    const u32 n = pool.alloc_bulk(std::span{burst.data(), burst_size});
    if (n == 0) {  // backpressure: workers (or sync frames) own the buffers
      std::this_thread::yield();
      continue;
    }
    for (u32 i = 0; i < n; ++i) {
      const auto& frame = cycle[next_frame];
      if (++next_frame == cycle.size()) next_frame = 0;
      std::memcpy(burst[i]->data(), frame.data(), frame.size());
      burst[i]->set_len(static_cast<u32>(frame.size()));
    }
    injected += mbox.inject_bulk({burst.data(), n});
  }
  mbox.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Let housekeeping broadcast any alloc-stalled sync frames, then audit
  // the replicas at quiescence.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  mbox.wait_idle();

  RunResult res;
  res.divergence = mbox.state_strategy().check_divergence();
  res.sync = mbox.state_strategy().sync_stats();
  res.elapsed_s = elapsed;
  res.injected = injected;
  res.forwarded = forwarded.load();
  res.rx_ring_drops = mbox.rx_ring_drops();
  res.total = mbox.total_stats();
  res.access = mbox.access_stats();
  for (u32 c = 0; c < rc.cores; ++c) {
    const auto& sc = mbox.context(static_cast<CoreId>(c))
                         .flows()
                         .strategy_counters();
    res.counters.remote_reads += sc.remote_reads.load();
    res.counters.remote_reads_avoided += sc.remote_reads_avoided.load();
    res.counters.lock_acquisitions += sc.lock_acquisitions.load();
  }
  mbox.stop();
  return res;
}

void print_json(const RunConfig& rc, const RunResult& res) {
  std::printf(
      "{\"bench\":\"state_strategy\",\"strategy\":\"%s\","
      "\"workload\":\"%s\",\"cores\":%u,\"flows\":%u,"
      "\"elapsed_s\":%.4f,\"injected\":%llu,\"forwarded\":%llu,"
      "\"pps\":%.0f,\"rx_ring_drops\":%llu,"
      "\"conn\":{\"local\":%llu,\"transferred_out\":%llu,"
      "\"foreign_in\":%llu},"
      "\"access\":{\"reads_regular\":%llu,\"reads_conn\":%llu,"
      "\"writes_regular\":%llu,\"writes_conn\":%llu},"
      "\"state\":{\"remote_reads\":%llu,\"remote_reads_avoided\":%llu,"
      "\"lock_acquisitions\":%llu},",
      state::to_string(rc.strategy), to_string(rc.workload), rc.cores,
      rc.effective_flows(), res.elapsed_s,
      static_cast<unsigned long long>(res.injected),
      static_cast<unsigned long long>(res.forwarded),
      static_cast<double>(res.forwarded) / res.elapsed_s,
      static_cast<unsigned long long>(res.rx_ring_drops),
      static_cast<unsigned long long>(res.total.conn_local),
      static_cast<unsigned long long>(res.total.conn_transferred_out),
      static_cast<unsigned long long>(res.total.conn_foreign_in),
      static_cast<unsigned long long>(res.access.reads_in_regular),
      static_cast<unsigned long long>(res.access.reads_in_connection),
      static_cast<unsigned long long>(res.access.writes_in_regular),
      static_cast<unsigned long long>(res.access.writes_in_connection),
      static_cast<unsigned long long>(res.counters.remote_reads.load()),
      static_cast<unsigned long long>(
          res.counters.remote_reads_avoided.load()),
      static_cast<unsigned long long>(res.counters.lock_acquisitions.load()));
  if (rc.strategy == state::StateStrategyKind::kReplication) {
    std::printf(
        "\"sync\":{\"frames_sent\":%llu,\"bytes_sent\":%llu,"
        "\"ops_sent\":%llu,\"frames_applied\":%llu,\"ops_applied\":%llu,"
        "\"apply_failures\":%llu,\"alloc_stalls\":%llu},"
        "\"divergence\":{\"entries_compared\":%llu,\"mismatched\":%llu,"
        "\"missing\":%llu,\"extra\":%llu,\"clean\":%s}}\n",
        static_cast<unsigned long long>(res.sync.frames_sent),
        static_cast<unsigned long long>(res.sync.bytes_sent),
        static_cast<unsigned long long>(res.sync.ops_sent),
        static_cast<unsigned long long>(res.sync.frames_applied),
        static_cast<unsigned long long>(res.sync.ops_applied),
        static_cast<unsigned long long>(res.sync.apply_failures),
        static_cast<unsigned long long>(res.sync.alloc_stalls),
        static_cast<unsigned long long>(res.divergence.entries_compared),
        static_cast<unsigned long long>(res.divergence.mismatched_entries),
        static_cast<unsigned long long>(res.divergence.missing_entries),
        static_cast<unsigned long long>(res.divergence.extra_entries),
        res.divergence.clean() ? "true" : "false");
  } else {
    std::printf("\"sync\":null,\"divergence\":null}\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  RunConfig base;
  base.cores = static_cast<u32>(cli.get_u64("cores", 4));
  base.duration_s = cli.get_double("duration", 0.4);
  base.flows = static_cast<u32>(cli.get_u64("flows", 0));
  base.rx_batch = static_cast<u32>(cli.get_u64("rx_batch", 32));
  base.burst = static_cast<u32>(cli.get_u64("burst", 32));

  const std::string strategies = cli.get(
      "strategies", "writing_partition,replication,shared_locked");
  const std::string workloads =
      cli.get("workloads", "churn,nat_write,monitor_read");
  for (const auto& wl : split_list(workloads)) {
    for (const auto& st : split_list(strategies)) {
      RunConfig rc = base;
      if (st == "writing_partition" || st == "wp") {
        rc.strategy = state::StateStrategyKind::kWritingPartition;
      } else if (st == "replication" || st == "repl") {
        rc.strategy = state::StateStrategyKind::kReplication;
      } else if (st == "shared_locked" || st == "locked") {
        rc.strategy = state::StateStrategyKind::kSharedLocked;
      } else {
        std::fprintf(stderr, "unknown strategy %s\n", st.c_str());
        return 2;
      }
      if (wl == "churn") {
        rc.workload = Workload::kChurn;
      } else if (wl == "nat_write") {
        rc.workload = Workload::kNatWrite;
      } else if (wl == "monitor_read") {
        rc.workload = Workload::kMonitorRead;
      } else {
        std::fprintf(stderr, "unknown workload %s\n", wl.c_str());
        return 2;
      }
      print_json(rc, run_one(rc));
    }
  }
  return 0;
}

// Adaptive spraying vs the two static policies (DESIGN.md §12).
//
// Three traffic regimes × three steering policies on the threaded executor:
//
//   mix=elephants   a handful of heavy flows — RSS's weak regime (it can
//                   use at most one core per flow, so cores sit idle);
//   mix=mice        many light flows — static spray's weak regime (every
//                   flow is sprayed, so every flow pays reordering for
//                   parallelism it does not need);
//   mix=mixed       both at once — the regime the adaptive policy targets:
//                   promote the elephants to full-width spray, pin the mice
//                   to their designated cores.
//
//   policy=spray    static checksum-bit spraying (the paper's mechanism);
//   policy=rss      per-flow RSS placement;
//   policy=adaptive the §12 classify/pin/steer loop.
//
// The driver pre-builds template frames (several payload variants per flow,
// so checksum-bit spraying keeps its per-packet entropy) and floods
// open-loop for the duration; the reorder observatory measures out-of-order
// arrivals per policy — in aggregate AND split by class (per-flow
// flow_stats over the elephant and mouse populations), because the
// aggregate distance quantiles are composition-sensitive: pinning the mice
// removes their small-distance samples from the histogram, which shifts the
// aggregate p99 up even when every sprayed flow reorders less. Mice are
// chosen with pairwise-distinct adaptive flow-cache set indices so the
// adaptive runs measure the policy, not 2-way cache-conflict pathology
// (conflict behavior is covered by unit tests). Emits one JSON line per
// (mix, policy):
//
//   ./bench/adaptive_spray [policies=spray,rss,adaptive]
//       [mixes=elephants,mice,mixed] [cores=4] [duration=0.4] [mice=256]
//       [elephants=2] [elephant_share=0.5] [variants=8] [rx_batch=32]
//       [burst=32] [nf_cycles=120] [promote=256] [demote=64]
//       [reorder_budget=16384] [p2c=1]
//
// reorder_budget defaults high enough that spray-set narrowing stays out
// of the throughput comparison (at the config default every elephant is
// quickly narrowed to min_spray_width, trading ~25% elephant-regime
// throughput for a ~2x cut in sprayed-flow reorder distance — sweep
// reorder_budget to map that frontier; narrowing correctness is covered by
// unit tests).
//
// Validated by tools/check_adaptive_schema.py (CI) and recorded as
// BENCH_adaptive.json.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"
#include "nic/rss.hpp"

using namespace sprayer;

namespace {

constexpr u32 kMaxBurst = 64;

enum class Policy { kSpray, kRss, kAdaptive };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kSpray:
      return "spray";
    case Policy::kRss:
      return "rss";
    case Policy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct RunConfig {
  Policy policy = Policy::kAdaptive;
  std::string mix = "mixed";
  u32 cores = 4;
  double duration_s = 0.4;
  u32 num_elephants = 2;   // 0 in the mice mix
  u32 num_mice = 256;      // 0 in the elephants mix
  double elephant_share = 0.5;  // fraction of injected packets
  u32 variants = 8;
  u32 rx_batch = 32;
  u32 burst = 32;
  Cycles nf_cycles = 120;  // per-packet work, so load balance matters
  u64 promote = 256;
  u64 demote = 64;
  u64 reorder_budget = 16384;
  bool p2c = true;
};

/// Per-class reorder aggregate, folded from the observatory's per-flow
/// sample slots.
struct ClassReorder {
  u64 sampled_flows = 0;
  u64 observed = 0;
  u64 ooo = 0;
  u64 max_distance = 0;
};

struct RunResult {
  double elapsed_s = 0.0;
  u64 injected = 0;
  u64 forwarded = 0;
  u64 rx_ring_drops = 0;
  telemetry::ReorderObservatory::Stats reorder;
  ClassReorder elephants_reorder;
  ClassReorder mice_reorder;
  bool has_adaptive = false;
  core::AdaptiveSprayPolicy::Stats adaptive;
  u32 fdir_exact_rules = 0;
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Pick `count` flows whose adaptive flow-cache set indices (and designated
/// cores, round-robin as far as possible) are pairwise distinct — across
/// calls too, via the shared `used_sets` — so every flow gets a private
/// 2-way set and adaptive runs never hit the conflict fallback.
std::vector<net::FiveTuple> pick_flows(u32 count, u32 seed, u32 cores,
                                       u32 flow_sets,
                                       std::unordered_set<u32>& used_sets) {
  const nic::RssEngine rss(cores);
  std::vector<net::FiveTuple> out;
  const auto candidates = nic::random_tcp_flows(64 * count + 1024, seed);
  for (const auto& f : candidates) {
    if (out.size() == count) break;
    const u32 set = rss.hash_of(f) & (flow_sets - 1);
    if (used_sets.insert(set).second) out.push_back(f);
  }
  return out;
}

/// One valid TCP data frame per (flow, payload variant); the measured loop
/// only memcpys.
std::vector<std::vector<u8>> build_templates(
    const std::vector<net::FiveTuple>& flow_set, u32 variants) {
  net::PacketPool scratch(2, 256);
  std::vector<std::vector<u8>> templates;
  for (const auto& flow : flow_set) {
    for (u32 v = 0; v < variants; ++v) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 6;
      const u8 payload[6] = {1, 2, 3, 4, 5, static_cast<u8>(6 + v)};
      spec.payload = payload;
      net::Packet* pkt = net::build_tcp_raw(scratch, spec);
      templates.emplace_back(pkt->data(), pkt->data() + pkt->len());
      scratch.free(pkt);
    }
  }
  return templates;
}

RunResult run_one(const RunConfig& rc,
                  const std::vector<net::FiveTuple>& elephants,
                  const std::vector<net::FiveTuple>& mice) {
  net::PacketPool pool(1u << 15, 256);
  nf::SyntheticNf nf(rc.nf_cycles);
  std::atomic<u64> forwarded{0};

  core::SprayerConfig cfg;
  cfg.num_cores = rc.cores;
  cfg.mode =
      rc.policy == Policy::kRss ? core::DispatchMode::kRss
                                : core::DispatchMode::kSpray;
  cfg.rx_batch = rc.rx_batch;
  // Same housekeeping cadence for all three policies (adaptive needs it for
  // sketch decay) so the comparison stays apples-to-apples.
  cfg.housekeeping_interval = kMillisecond;
  cfg.telemetry = true;
  cfg.reorder_observatory = true;
  cfg.overload_policy = OverloadPolicy::kDropNew;
  if (rc.policy == Policy::kAdaptive) {
    cfg.adaptive.enabled = true;
    cfg.adaptive.promote_count = rc.promote;
    cfg.adaptive.demote_count = rc.demote;
    cfg.adaptive.reorder_budget = rc.reorder_budget;
    cfg.adaptive.p2c = rc.p2c;
  }

  core::ThreadedMiddlebox mbox(
      cfg, nf,
      core::ThreadedMiddlebox::TxBatchHandler(
          [&](std::span<net::Packet* const> pkts) {
            forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
            net::free_packets(pkts);
          }));
  mbox.start();

  std::vector<net::FiveTuple> all_flows = elephants;
  all_flows.insert(all_flows.end(), mice.begin(), mice.end());
  const auto eleph_templates = build_templates(elephants, rc.variants);
  const auto mice_templates = build_templates(mice, rc.variants);

  // Establish flow state (and, under adaptive, the initial mouse pins)
  // before the measured interval.
  for (const auto& flow : all_flows) {
    net::TcpSegmentSpec spec;
    spec.tuple = flow;
    spec.flags = net::TcpFlags::kSyn;
    net::Packet* syn = net::build_tcp_raw(pool, spec);
    while (!mbox.inject(syn)) {
      syn = net::build_tcp_raw(pool, spec);
      std::this_thread::yield();
    }
  }
  mbox.wait_idle();

  using Clock = std::chrono::steady_clock;
  const u32 burst_size = std::min(rc.burst, kMaxBurst);
  std::array<net::Packet*, kMaxBurst> burst{};
  u64 injected = 0;
  std::size_t next_eleph = 0;
  std::size_t next_mouse = 0;
  double share_acc = 0.0;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    const u32 n = pool.alloc_bulk(std::span{burst.data(), burst_size});
    if (n == 0) {  // backpressure: workers own every buffer right now
      std::this_thread::yield();
      continue;
    }
    for (u32 i = 0; i < n; ++i) {
      // Deterministic interleave: elephant packets at `elephant_share` of
      // the injected stream, round-robin within each class.
      share_acc += rc.elephant_share;
      bool from_elephant = share_acc >= 1.0;
      if (from_elephant) share_acc -= 1.0;
      if (mice_templates.empty()) from_elephant = true;
      if (eleph_templates.empty()) from_elephant = false;
      const auto& frame =
          from_elephant
              ? eleph_templates[next_eleph++ % eleph_templates.size()]
              : mice_templates[next_mouse++ % mice_templates.size()];
      std::memcpy(burst[i]->data(), frame.data(), frame.size());
      burst[i]->set_len(static_cast<u32>(frame.size()));
    }
    injected += mbox.inject_bulk({burst.data(), n});
  }
  mbox.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult res;
  res.elapsed_s = elapsed;
  res.injected = injected;
  res.forwarded = forwarded.load();
  res.rx_ring_drops = mbox.rx_ring_drops();
  res.reorder = mbox.reorder_stats();
  if (mbox.reorder_observatory() != nullptr) {
    const nic::RssEngine rss(rc.cores);  // same symmetric key as the driver
    const auto fold = [&](const std::vector<net::FiveTuple>& flows) {
      ClassReorder cls;
      for (const auto& f : flows) {
        const auto fr = mbox.reorder_observatory()->flow_stats(rss.hash_of(f));
        if (!fr.sampled) continue;
        ++cls.sampled_flows;
        cls.observed += fr.observed;
        cls.ooo += fr.ooo_packets;
        cls.max_distance = std::max(cls.max_distance, fr.max_distance);
      }
      return cls;
    };
    res.elephants_reorder = fold(elephants);
    res.mice_reorder = fold(mice);
  }
  if (mbox.adaptive() != nullptr) {
    res.has_adaptive = true;
    res.adaptive = mbox.adaptive()->stats();
    res.fdir_exact_rules = mbox.flow_director().exact_rule_count();
  }
  mbox.stop();
  return res;
}

void print_json(const RunConfig& rc, const RunResult& res) {
  std::printf(
      "{\"bench\":\"adaptive_spray\",\"policy\":\"%s\",\"mix\":\"%s\","
      "\"cores\":%u,\"elephants\":%u,\"mice\":%u,\"elephant_share\":%.2f,"
      "\"variants\":%u,\"nf_cycles\":%llu,\"elapsed_s\":%.4f,"
      "\"injected\":%llu,\"forwarded\":%llu,\"pps\":%.0f,"
      "\"rx_ring_drops\":%llu,\"reorder\":{\"observed\":%llu,\"ooo\":%llu,"
      "\"max_distance\":%llu,\"p50\":%llu,\"p99\":%llu},"
      "\"reorder_elephants\":{\"sampled_flows\":%llu,\"observed\":%llu,"
      "\"ooo\":%llu,\"max_distance\":%llu},"
      "\"reorder_mice\":{\"sampled_flows\":%llu,\"observed\":%llu,"
      "\"ooo\":%llu,\"max_distance\":%llu},",
      policy_name(rc.policy), rc.mix.c_str(), rc.cores, rc.num_elephants,
      rc.num_mice, rc.elephant_share, rc.variants,
      static_cast<unsigned long long>(rc.nf_cycles), res.elapsed_s,
      static_cast<unsigned long long>(res.injected),
      static_cast<unsigned long long>(res.forwarded),
      static_cast<double>(res.forwarded) / res.elapsed_s,
      static_cast<unsigned long long>(res.rx_ring_drops),
      static_cast<unsigned long long>(res.reorder.packets_observed),
      static_cast<unsigned long long>(res.reorder.ooo_packets),
      static_cast<unsigned long long>(res.reorder.max_distance),
      static_cast<unsigned long long>(res.reorder.distance.p50()),
      static_cast<unsigned long long>(res.reorder.distance.p99()),
      static_cast<unsigned long long>(res.elephants_reorder.sampled_flows),
      static_cast<unsigned long long>(res.elephants_reorder.observed),
      static_cast<unsigned long long>(res.elephants_reorder.ooo),
      static_cast<unsigned long long>(res.elephants_reorder.max_distance),
      static_cast<unsigned long long>(res.mice_reorder.sampled_flows),
      static_cast<unsigned long long>(res.mice_reorder.observed),
      static_cast<unsigned long long>(res.mice_reorder.ooo),
      static_cast<unsigned long long>(res.mice_reorder.max_distance));
  if (res.has_adaptive) {
    const auto& a = res.adaptive;
    std::printf(
        "\"adaptive\":{\"pinned_flows\":%u,\"pins_installed\":%llu,"
        "\"pin_fallbacks\":%llu,\"rule_evictions\":%llu,"
        "\"elephant_promotions\":%llu,\"elephant_demotions\":%llu,"
        "\"p2c_deflections\":%llu,\"narrowings\":%llu,"
        "\"unpinned_sprays\":%llu,\"fdir_exact_rules\":%u}}\n",
        a.pinned_flows, static_cast<unsigned long long>(a.pins_installed),
        static_cast<unsigned long long>(a.pin_fallbacks),
        static_cast<unsigned long long>(a.rule_evictions),
        static_cast<unsigned long long>(a.elephant_promotions),
        static_cast<unsigned long long>(a.elephant_demotions),
        static_cast<unsigned long long>(a.p2c_deflections),
        static_cast<unsigned long long>(a.narrowings),
        static_cast<unsigned long long>(a.unpinned_sprays),
        res.fdir_exact_rules);
  } else {
    std::printf("\"adaptive\":null}\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  RunConfig base;
  base.cores = static_cast<u32>(cli.get_u64("cores", 4));
  base.duration_s = cli.get_double("duration", 0.4);
  base.num_elephants = static_cast<u32>(cli.get_u64("elephants", 2));
  base.num_mice = static_cast<u32>(cli.get_u64("mice", 256));
  base.elephant_share = cli.get_double("elephant_share", 0.5);
  base.variants = static_cast<u32>(cli.get_u64("variants", 8));
  base.rx_batch = static_cast<u32>(cli.get_u64("rx_batch", 32));
  base.burst = static_cast<u32>(cli.get_u64("burst", 32));
  base.nf_cycles = cli.get_u64("nf_cycles", 120);
  base.promote = cli.get_u64("promote", 256);
  base.demote = cli.get_u64("demote", 64);
  base.reorder_budget = cli.get_u64("reorder_budget", 16384);
  base.p2c = cli.get_u64("p2c", 1) != 0;

  // One shared flow universe per process: elephants and mice occupy
  // disjoint adaptive cache sets, and every mix reuses the same flows so
  // policies see identical traffic.
  core::AdaptiveSprayConfig defaults;
  std::unordered_set<u32> used_sets;
  const auto elephants = pick_flows(base.num_elephants, 0xe1e, base.cores,
                                    defaults.flow_sets, used_sets);
  const auto mice = pick_flows(base.num_mice, 0x317ce, base.cores,
                               defaults.flow_sets, used_sets);

  for (const auto& mix :
       split_list(cli.get("mixes", "elephants,mice,mixed"))) {
    for (const auto& policy_s :
         split_list(cli.get("policies", "spray,rss,adaptive"))) {
      RunConfig rc = base;
      rc.mix = mix;
      rc.policy = policy_s == "spray" ? Policy::kSpray
                  : policy_s == "rss" ? Policy::kRss
                                      : Policy::kAdaptive;
      std::vector<net::FiveTuple> run_elephants = elephants;
      std::vector<net::FiveTuple> run_mice = mice;
      if (mix == "elephants") {
        run_mice.clear();
        rc.num_mice = 0;
        rc.elephant_share = 1.0;
      } else if (mix == "mice") {
        run_elephants.clear();
        rc.num_elephants = 0;
        rc.elephant_share = 0.0;
      }
      print_json(rc, run_one(rc, run_elephants, run_mice));
    }
  }
  return 0;
}

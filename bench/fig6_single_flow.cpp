// Figure 6 — "Effect of increasing the number of processing cycles per
// packet on processing rate (with 64 B packets) and TCP throughput, while
// using a single flow."
//
//   (a) processing rate (Mpps) vs cycles/packet, RSS vs Sprayer,
//       64 B packets at line rate;
//   (b) TCP throughput (Gbps) vs cycles/packet, one CUBIC flow.
//
// Expected shape (paper): Sprayer plateaus near 10 Mpps at low cycle counts
// (the 82599 Flow Director limit) and then follows the 8-core service
// curve, staying ~8x above single-core RSS; the TCP throughput panel shows
// Sprayer holding ~line rate far beyond the point where RSS collapses.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const double pktgen_duration = cli.get_double("pktgen_duration", 0.03);
  const double tcp_warmup = cli.get_double("tcp_warmup", 0.1);
  const double tcp_duration = cli.get_double("tcp_duration", 0.25);
  const u64 seed = cli.get_u64("seed", 1);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 8));

  std::vector<Cycles> sweep;
  for (Cycles c = 0; c <= 10000; c += 1000) sweep.push_back(c);

  std::printf("=== Figure 6(a): processing rate vs cycles/packet "
              "(64 B, single flow, %u cores) ===\n", cores);
  ConsoleTable rate_table({"cycles/pkt", "RSS (Mpps)", "Sprayer (Mpps)",
                           "speedup"});
  double rss_10k = 0, spray_10k = 0, spray_0 = 0;
  for (const Cycles cycles : sweep) {
    bench::PktGenExperiment ex;
    ex.nf_cycles = cycles;
    ex.num_cores = cores;
    ex.duration_s = pktgen_duration;
    ex.seed = seed;

    ex.mode = core::DispatchMode::kRss;
    const auto rss = bench::run_pktgen_experiment(ex);
    ex.mode = core::DispatchMode::kSpray;
    const auto spray = bench::run_pktgen_experiment(ex);

    rate_table.add_row({std::to_string(cycles),
                        ConsoleTable::num(rss.processed_pps / 1e6),
                        ConsoleTable::num(spray.processed_pps / 1e6),
                        ConsoleTable::num(spray.processed_pps /
                                          rss.processed_pps)});
    if (cycles == 0) spray_0 = spray.processed_pps;
    if (cycles == 10000) {
      rss_10k = rss.processed_pps;
      spray_10k = spray.processed_pps;
    }
  }
  rate_table.print(std::cout);
  std::printf("[shape-check] Sprayer at 0 cycles: %.1f Mpps "
              "(expect ~10 Mpps FDIR plateau)\n", spray_0 / 1e6);
  std::printf("[shape-check] Sprayer/RSS at 10k cycles: %.1fx "
              "(expect ~%ux)\n\n", spray_10k / rss_10k, cores);

  std::printf("=== Figure 6(b): TCP throughput vs cycles/packet "
              "(single CUBIC flow) ===\n");
  ConsoleTable tcp_table({"cycles/pkt", "RSS (Gbps)", "Sprayer (Gbps)"});
  double rss_tcp_10k = 0, spray_tcp_10k = 0;
  for (const Cycles cycles : sweep) {
    tcp::IperfScenario sc;
    sc.num_flows = 1;
    sc.warmup = from_seconds(tcp_warmup);
    sc.duration = from_seconds(tcp_duration);
    sc.seed = seed;
    sc.mbox.num_cores = cores;

    nf::SyntheticNf nf_rss(cycles);
    sc.mbox.mode = core::DispatchMode::kRss;
    const auto rss = run_iperf(nf_rss, sc);

    nf::SyntheticNf nf_spray(cycles);
    sc.mbox.mode = core::DispatchMode::kSpray;
    const auto spray = run_iperf(nf_spray, sc);

    tcp_table.add_row({std::to_string(cycles),
                       ConsoleTable::num(rss.total_goodput_bps / 1e9),
                       ConsoleTable::num(spray.total_goodput_bps / 1e9)});
    if (cycles == 10000) {
      rss_tcp_10k = rss.total_goodput_bps;
      spray_tcp_10k = spray.total_goodput_bps;
    }
  }
  tcp_table.print(std::cout);
  std::printf("[shape-check] TCP at 10k cycles: RSS %.1f Gbps vs Sprayer "
              "%.1f Gbps (expect ~2.4 vs near line rate)\n",
              rss_tcp_10k / 1e9, spray_tcp_10k / 1e9);
  return 0;
}

// Throughput of run-to-completion NF service chains: the canonical
// NAT -> firewall -> LB -> monitor chain (or a prefix of it), dispatched
// either through the compile-time fused NfChain<...> or the type-erased
// DynamicChain, under identical traffic. The fused/virtual split is the
// devirtualization experiment: same hops, same tables, same verdicts —
// only the dispatch mechanism (and the shared vs per-hop re-derived batch
// metadata it enables) differs.
//
// Two drivers:
//   * driver=inline (default): one thread refills a batch from pre-built
//     template frames and calls chain.regular_pass() directly — the same
//     wiring SprayerCore uses, minus rings and threads. This isolates the
//     per-packet chain cost, which is the quantity devirtualization
//     changes; it is also the only honest 1-core number on a 1-CPU host,
//     where the threaded executor timeslices driver against worker and
//     measures the scheduler instead.
//   * driver=threaded: the full ThreadedMiddlebox open-loop flood
//     (template memcpy + inject_bulk), for end-to-end numbers on hosts
//     with enough cores to dedicate one to the driver.
//
// Emits one JSON line per configuration:
//
//   ./bench/chain_throughput [hops=4] [dispatch=fused,virtual]
//       [driver=inline] [cores=1] [duration=0.4] [flows=64] [rx_batch=32]
//       [burst=32] [hop_timing=0] [telemetry=1]
//
// hop_timing=1 turns on the per-hop latency counters
// (ChainInit::hop_timing — one clock read per hop per batch) and fills
// per_hop[].ns_per_packet from the chain.h<i>.<nf>.ns counters; leave it 0
// for clean end-to-end pps numbers.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/chain.hpp"
#include "core/threaded.hpp"
#include "hash/designated.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "telemetry/snapshot.hpp"

using namespace sprayer;

namespace {

const net::Ipv4Addr kVip{198, 51, 100, 1};
constexpr u16 kVport = 80;

struct RunConfig {
  u32 hops = 4;
  bool fused = true;
  bool inline_driver = true;
  u32 cores = 1;
  double duration_s = 0.4;
  u32 flows = 64;
  u32 rx_batch = 32;
  u32 burst = 32;
  bool hop_timing = false;
  bool telemetry = true;
};

struct HopResult {
  std::string nf;
  u64 packets = 0;
  u64 drops = 0;
  /// Valid only when `timed` — hop_timing=0 runs never measure it, and the
  /// JSON emits null rather than a misleading 0.0.
  double ns_per_packet = 0.0;
  bool timed = false;
};

struct RunResult {
  double elapsed_s = 0.0;
  u64 injected = 0;
  u64 forwarded = 0;
  u64 nf_drops = 0;
  std::vector<HopResult> per_hop;
};

/// The chain under test: NAT first (claims ports, rewrites tuples), then
/// the read-mostly hops. Owns the NFs so fused/virtual runs get identical
/// fresh state.
struct ChainFixture {
  nf::NatNf nat;
  nf::FirewallNf fw{nf::Acl{/*default_allow=*/true}};
  nf::LoadBalancerNf lb;
  nf::MonitorNf mon;
  std::unique_ptr<core::IChain> chain;

  static nf::LbConfig lb_config() {
    nf::LbConfig cfg;
    cfg.vip = kVip;
    cfg.vport = kVport;
    cfg.backends = {{net::MacAddr::from_id(1), net::Ipv4Addr{10, 1, 0, 1}},
                    {net::MacAddr::from_id(2), net::Ipv4Addr{10, 1, 0, 2}}};
    return cfg;
  }

  ChainFixture(u32 hops, bool fused) : lb(lb_config()) {
    if (fused) {
      switch (hops) {
        case 1:
          chain = std::make_unique<core::NfChain<nf::NatNf>>(nat);
          break;
        case 2:
          chain = std::make_unique<core::NfChain<nf::NatNf, nf::FirewallNf>>(
              nat, fw);
          break;
        case 3:
          chain = std::make_unique<
              core::NfChain<nf::NatNf, nf::FirewallNf, nf::LoadBalancerNf>>(
              nat, fw, lb);
          break;
        default:
          chain = std::make_unique<
              core::NfChain<nf::NatNf, nf::FirewallNf, nf::LoadBalancerNf,
                            nf::MonitorNf>>(nat, fw, lb, mon);
          break;
      }
    } else {
      std::vector<core::INetworkFunction*> all{&nat, &fw, &lb, &mon};
      all.resize(std::min<std::size_t>(hops, all.size()));
      chain = std::make_unique<core::DynamicChain>(std::move(all));
    }
  }
};

struct Template {
  std::vector<u8> frame;
  u32 rss_hash = 0;  // what the NIC would stamp in the rx descriptor
};

std::vector<net::FiveTuple> vip_flows(u32 n) {
  std::vector<net::FiveTuple> flows;
  for (u32 i = 0; i < n; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{10, 0, static_cast<u8>(i >> 8),
                             static_cast<u8>(i & 0xff)};
    t.dst_ip = kVip;
    t.src_port = static_cast<u16>(1024 + i);
    t.dst_port = kVport;
    t.protocol = net::kProtoTcp;
    flows.push_back(t);
  }
  return flows;
}

/// One valid VIP-bound TCP data frame (plus its RSS hash) per flow; the
/// measured loop then only memcpys and stamps.
std::vector<Template> build_templates(
    const std::vector<net::FiveTuple>& flow_set) {
  net::PacketPool scratch(flow_set.size() + 1, 256);
  std::vector<Template> templates;
  for (const auto& flow : flow_set) {
    net::TcpSegmentSpec spec;
    spec.tuple = flow;
    spec.flags = net::TcpFlags::kAck;
    spec.payload_len = 6;
    const u8 payload[6] = {1, 2, 3, 4, 5, 6};
    spec.payload = payload;
    net::Packet* pkt = net::build_tcp_raw(scratch, spec);
    Template t;
    t.frame.assign(pkt->data(), pkt->data() + pkt->len());
    t.rss_hash = hash::packet_flow_hash(*pkt);
    templates.push_back(std::move(t));
    scratch.free(pkt);
  }
  return templates;
}

/// Single-thread closed loop over chain passes: the SprayerCore wiring
/// (per-hop tables, per-hop contexts, shared scratch) without rings or
/// worker threads.
RunResult run_inline(const RunConfig& rc) {
  ChainFixture fixture(rc.hops, rc.fused);
  core::IChain& chain = *fixture.chain;
  const u32 hops = chain.num_hops();

  telemetry::MetricsRegistry registry(1);
  std::vector<core::NfInitConfig> hop_cfgs(hops);
  core::ChainInit ci;
  ci.hop_cfgs = hop_cfgs;
  ci.num_cores = 1;
  if (rc.telemetry) {
    ci.registry = &registry;
    for (auto& cfg : hop_cfgs) cfg.registry = &registry;
  }
  ci.hop_timing = rc.hop_timing;
  chain.init(ci);
  registry.finalize();

  core::CorePicker picker(1);
  core::CostModel costs{};
  std::vector<std::vector<std::unique_ptr<core::FlowTable>>> tables(hops);
  std::vector<std::vector<core::FlowTable*>> table_ptrs(hops);
  std::vector<std::unique_ptr<core::NfContext>> contexts;
  std::vector<core::NfContext*> ctx_ptrs;
  for (u32 h = 0; h < hops; ++h) {
    const u32 cap = hop_cfgs[h].stateless ? 2u : hop_cfgs[h].flow_table_capacity;
    tables[h].push_back(std::make_unique<core::FlowTable>(
        cap, hop_cfgs[h].flow_entry_size, static_cast<CoreId>(0)));
    table_ptrs[h].push_back(tables[h].back().get());
  }
  for (u32 h = 0; h < hops; ++h) {
    contexts.push_back(std::make_unique<core::NfContext>(
        static_cast<CoreId>(0), std::span<core::FlowTable* const>{table_ptrs[h]},
        picker, costs));
    ctx_ptrs.push_back(contexts.back().get());
  }
  const std::span<core::NfContext* const> ctxs{ctx_ptrs};
  core::ChainScratch scratch;
  Time now = 0;

  const auto flow_set = vip_flows(rc.flows);
  const auto templates = build_templates(flow_set);
  net::PacketPool pool(1u << 12, 256);

  // Open every session first (what the designated core would do).
  {
    runtime::PacketBatch batch;
    runtime::PacketBatch drops;
    for (const auto& flow : flow_set) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kSyn;
      net::Packet* syn = net::build_tcp_raw(pool, spec);
      (void)hash::packet_flow_hash(*syn);
      batch.push(syn);
      if (batch.full()) {
        chain.connection_pass(batch, scratch, ctxs, now += kMicrosecond, drops);
        net::free_packets(batch.packets());
        batch.clear();
      }
    }
    if (!batch.empty()) {
      chain.connection_pass(batch, scratch, ctxs, now += kMicrosecond, drops);
      net::free_packets(batch.packets());
      batch.clear();
    }
    if (!drops.empty()) net::free_packets(drops.packets());
  }

  // The measured loop recycles one burst of buffers: refill from the
  // template (the hops rewrite headers in place), stamp the NIC-provided
  // RSS hash, run the chain.
  const u32 burst = std::min(rc.burst, runtime::kMaxBatchSize);
  std::vector<net::Packet*> bufs(burst);
  const u32 got = pool.alloc_bulk(std::span{bufs.data(), burst});
  SPRAYER_CHECK(got == burst);

  runtime::PacketBatch batch;
  runtime::PacketBatch drops;
  u64 injected = 0;
  u64 forwarded = 0;
  u64 dropped = 0;
  std::size_t next_template = 0;

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    batch.clear();
    drops.clear();
    for (u32 i = 0; i < burst; ++i) {
      const Template& t = templates[next_template];
      if (++next_template == templates.size()) next_template = 0;
      net::Packet* pkt = bufs[i];
      std::memcpy(pkt->data(), t.frame.data(), t.frame.size());
      pkt->set_len(static_cast<u32>(t.frame.size()));
      pkt->parse();
      pkt->set_flow_hash(t.rss_hash);
      batch.push(pkt);
    }
    injected += burst;
    chain.regular_pass(batch, scratch, ctxs, now += kMicrosecond, drops);
    forwarded += batch.size();
    dropped += drops.size();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  pool.free_bulk(std::span<net::Packet* const>{bufs});

  RunResult res;
  res.elapsed_s = elapsed;
  res.injected = injected;
  res.forwarded = forwarded;
  res.nf_drops = dropped;
  if (rc.telemetry) {
    telemetry::SnapshotCollector collector(registry);
    const auto snap = collector.collect();
    for (u32 h = 0; h < hops; ++h) {
      HopResult hop;
      hop.nf = chain.hop(h).name();
      const std::string prefix = "chain.h" + std::to_string(h) + "." + hop.nf;
      hop.packets = snap.value(prefix + ".packets");
      hop.drops = snap.value(prefix + ".drops");
      const u64 ns = snap.value(prefix + ".ns");
      if (hop.packets > 0 && ns > 0) {
        hop.ns_per_packet =
            static_cast<double>(ns) / static_cast<double>(hop.packets);
        hop.timed = true;
      }
      res.per_hop.push_back(std::move(hop));
    }
  }
  return res;
}

/// Full threaded executor, open-loop flood (same shape as
/// threaded_throughput's bulk path).
RunResult run_threaded(const RunConfig& rc) {
  net::PacketPool pool(1u << 15, 256);
  ChainFixture fixture(rc.hops, rc.fused);
  std::atomic<u64> forwarded{0};

  core::SprayerConfig cfg;
  cfg.num_cores = rc.cores;
  cfg.rx_batch = rc.rx_batch;
  cfg.mode = core::DispatchMode::kSpray;
  cfg.housekeeping_interval = 0;
  cfg.telemetry = rc.telemetry;
  cfg.chain_hop_timing = rc.hop_timing;
  cfg.overload_policy = OverloadPolicy::kDropNew;

  core::ThreadedMiddlebox mbox(
      cfg, *fixture.chain,
      [&](std::span<net::Packet* const> pkts) {
        forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
        net::free_packets(pkts);
      });
  mbox.start();

  const auto flow_set = vip_flows(rc.flows);
  const auto templates = build_templates(flow_set);

  // Open every session before the measured interval (SYNs redirect and
  // claim NAT ports; the measured path is pure regular traffic).
  for (const auto& flow : flow_set) {
    net::TcpSegmentSpec spec;
    spec.tuple = flow;
    spec.flags = net::TcpFlags::kSyn;
    net::Packet* syn = net::build_tcp_raw(pool, spec);
    while (!mbox.inject(syn)) {
      syn = net::build_tcp_raw(pool, spec);
      std::this_thread::yield();
    }
  }
  mbox.wait_idle();
  forwarded.store(0);  // don't attribute warmup SYNs to the measured loop

  using Clock = std::chrono::steady_clock;
  const u32 burst_size = std::min(rc.burst, runtime::kMaxBatchSize);
  std::array<net::Packet*, runtime::kMaxBatchSize> burst{};
  u64 injected = 0;
  std::size_t next_template = 0;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    const u32 n = pool.alloc_bulk(std::span{burst.data(), burst_size});
    if (n == 0) {  // backpressure: workers own every buffer right now
      std::this_thread::yield();
      continue;
    }
    for (u32 i = 0; i < n; ++i) {
      const auto& frame = templates[next_template].frame;
      if (++next_template == templates.size()) next_template = 0;
      std::memcpy(burst[i]->data(), frame.data(), frame.size());
      burst[i]->set_len(static_cast<u32>(frame.size()));
    }
    injected += mbox.inject_bulk({burst.data(), n});
  }
  mbox.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult res;
  res.elapsed_s = elapsed;
  res.injected = injected;
  res.forwarded = forwarded.load();
  res.nf_drops = mbox.total_stats().nf_drops;
  if (rc.telemetry) {
    const auto snap = mbox.telemetry_snapshot();
    for (u32 h = 0; h < fixture.chain->num_hops(); ++h) {
      HopResult hop;
      hop.nf = fixture.chain->hop(h).name();
      const std::string prefix = "chain.h" + std::to_string(h) + "." + hop.nf;
      hop.packets = snap.value(prefix + ".packets");
      hop.drops = snap.value(prefix + ".drops");
      const u64 ns = snap.value(prefix + ".ns");
      if (hop.packets > 0 && ns > 0) {
        hop.ns_per_packet =
            static_cast<double>(ns) / static_cast<double>(hop.packets);
        hop.timed = true;
      }
      res.per_hop.push_back(std::move(hop));
    }
  }
  mbox.stop();
  return res;
}

void print_json(const RunConfig& rc, const RunResult& res) {
  std::printf(
      "{\"bench\":\"chain_throughput\",\"dispatch\":\"%s\",\"driver\":\"%s\","
      "\"hops\":%u,\"cores\":%u,\"rx_batch\":%u,\"flows\":%u,"
      "\"hop_timing\":%u,\"elapsed_s\":%.4f,\"injected\":%llu,"
      "\"forwarded\":%llu,\"pps\":%.0f,\"nf_drops\":%llu,\"per_hop\":[",
      rc.fused ? "fused" : "virtual",
      rc.inline_driver ? "inline" : "threaded", rc.hops, rc.cores,
      rc.rx_batch, rc.flows, rc.hop_timing ? 1u : 0u, res.elapsed_s,
      static_cast<unsigned long long>(res.injected),
      static_cast<unsigned long long>(res.forwarded),
      static_cast<double>(res.forwarded) / res.elapsed_s,
      static_cast<unsigned long long>(res.nf_drops));
  for (std::size_t h = 0; h < res.per_hop.size(); ++h) {
    const auto& hop = res.per_hop[h];
    std::printf(
        "%s{\"hop\":%zu,\"nf\":\"%s\",\"packets\":%llu,\"drops\":%llu,"
        "\"ns_per_packet\":",
        h == 0 ? "" : ",", h, hop.nf.c_str(),
        static_cast<unsigned long long>(hop.packets),
        static_cast<unsigned long long>(hop.drops));
    // Unmeasured (hop_timing=0) is null, not a fake 0.0.
    if (hop.timed) {
      std::printf("%.2f}", hop.ns_per_packet);
    } else {
      std::printf("null}");
    }
  }
  std::printf("]}\n");
  std::fflush(stdout);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  RunConfig base;
  base.duration_s = cli.get_double("duration", 0.4);
  base.flows = static_cast<u32>(cli.get_u64("flows", 64));
  base.rx_batch = static_cast<u32>(cli.get_u64("rx_batch", 32));
  base.burst = static_cast<u32>(cli.get_u64("burst", 32));
  base.hop_timing = cli.get_u64("hop_timing", 0) != 0;
  base.telemetry = cli.get_u64("telemetry", 1) != 0;

  for (const auto& driver_s : split_list(cli.get("driver", "inline"))) {
    for (const auto& hops_s : split_list(cli.get("hops", "4"))) {
      for (const auto& disp_s :
           split_list(cli.get("dispatch", "fused,virtual"))) {
        for (const auto& cores_s : split_list(cli.get("cores", "1"))) {
          RunConfig rc = base;
          rc.inline_driver = driver_s != "threaded";
          rc.hops =
              std::clamp<u32>(static_cast<u32>(std::stoul(hops_s)), 1, 4);
          rc.fused = disp_s != "virtual";
          rc.cores = static_cast<u32>(std::stoul(cores_s));
          print_json(rc, rc.inline_driver ? run_inline(rc)
                                          : run_threaded(rc));
        }
      }
    }
  }
  return 0;
}

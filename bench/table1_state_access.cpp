// Table 1 — "Example of state scope and access pattern of some popular
// stateful NFs. Most NFs only update flow states when connections start or
// finish."
//
// Rather than restating the taxonomy, this bench *measures* it: each NF
// implemented in this repository is run over real TCP connections through
// the middlebox, and the flow-state API records whether per-flow state was
// read or written from the per-packet (regular) handler vs. the
// flow-event (connection) handler. Global state is the NF's own and is
// reported from its counters.
//
// The key property the paper builds on — writes only at flow events — must
// hold for every NF except DPI, whose per-packet automaton writes make it
// incompatible with spraying (§7); the bench quantifies that too.
#include <cstdio>
#include <functional>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "nf/dpi.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "nf/redundancy.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

namespace {

struct NfRun {
  core::FlowAccessStats access;
  u64 forwarded = 0;
  u64 dropped = 0;
  double goodput_bps = 0;
};

NfRun run_nf(core::INetworkFunction& nf, core::DispatchMode mode,
             std::vector<net::FiveTuple> tuples = {}) {
  tcp::IperfScenario sc;
  sc.num_flows = 8;
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.1);
  sc.seed = 42;
  sc.tcp.bytes_to_send = 200000;  // finite: connections open AND close
  sc.mbox.mode = mode;
  sc.tuples = std::move(tuples);

  const auto result = run_iperf(nf, sc);
  NfRun out;
  out.access = result.mbox.flow_access;
  out.forwarded = result.mbox.total.tx_packets;
  out.dropped = result.mbox.total.nf_drops;
  out.goodput_bps = result.total_goodput_bps;
  return out;
}

std::vector<net::FiveTuple> vip_tuples(const nf::LbConfig& lb, u32 n) {
  auto tuples = nic::random_tcp_flows(n, 77);
  for (auto& t : tuples) {
    t.dst_ip = lb.vip;
    t.dst_port = lb.vport;
  }
  return tuples;
}

const char* rw(bool read, bool write) {
  if (read && write) return "RW";
  if (write) return "W";
  if (read) return "R";
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  (void)cli;

  std::printf("=== Table 1: state scope and access pattern "
              "(measured on live TCP traffic) ===\n");
  ConsoleTable table({"NF", "State", "Scope", "packet", "flow", "notes"});

  {
    nf::SyntheticNf nf(100);
    const auto r = run_nf(nf, core::DispatchMode::kRss);
    const auto& a = r.access;
    table.add_row({"Synthetic (eval NF)", "Flow entry", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "paper's evaluation NF"});
  }
  {
    nf::NatNf nf;
    const auto r = run_nf(nf, core::DispatchMode::kRss);
    const auto& a = r.access;
    table.add_row({"NAT", "Flow map", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "sessions opened: " +
                       std::to_string(nf.counters().sessions_opened)});
    table.add_row({"", "Pool of IPs/ports", "Global", "-", "RW",
                   "ports in use after close: " +
                       std::to_string(nf.port_pool().claimed())});
  }
  {
    nf::Acl acl(/*default_allow=*/true);
    nf::FirewallNf nf(std::move(acl));
    const auto r = run_nf(nf, core::DispatchMode::kRss);
    const auto& a = r.access;
    table.add_row({"Firewall", "Connection context", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "admitted: " + std::to_string(nf.counters().admitted) +
                       ", closed: " + std::to_string(nf.counters().closed)});
  }
  {
    nf::LbConfig lb_cfg;
    lb_cfg.backends = {{net::MacAddr::from_id(100), {10, 1, 0, 1}},
                       {net::MacAddr::from_id(101), {10, 1, 0, 2}},
                       {net::MacAddr::from_id(102), {10, 1, 0, 3}}};
    nf::LoadBalancerNf nf(lb_cfg);
    const auto r = run_nf(nf, core::DispatchMode::kRss,
                          vip_tuples(lb_cfg, 8));
    const auto& a = r.access;
    table.add_row({"Load Balancer", "Flow-server map", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "assigned: " + std::to_string(nf.counters().assigned)});
    table.add_row({"", "Pool of servers / stats", "Global", "RW", "RW",
                   "loose per-core counters"});
  }
  {
    nf::MonitorNf nf;
    const auto r = run_nf(nf, core::DispatchMode::kRss);
    const auto& a = r.access;
    table.add_row({"Traffic Monitor", "Connection context", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "opened: " +
                       std::to_string(nf.aggregate().connections_opened)});
    table.add_row({"", "Statistics", "Global", "RW", "-",
                   "packets counted: " +
                       std::to_string(nf.aggregate().packets)});
  }
  {
    nf::RedundancyNf nf;
    const auto r = run_nf(nf, core::DispatchMode::kSpray);
    (void)r;
    table.add_row({"Redundancy Elim.", "Packet cache", "Global", "RW", "-",
                   "hits: " + std::to_string(nf.hits()) +
                       ", stateless NF (no redirection)"});
  }
  {
    nf::DpiNf nf({"attack", "exploit", "\xde\xad\xbe\xef"});
    const auto r = run_nf(nf, core::DispatchMode::kRss);
    const auto& a = r.access;
    table.add_row({"DPI", "Automata", "Per-flow",
                   rw(a.reads_in_regular > 0, a.writes_in_regular > 0),
                   rw(a.reads_in_connection > 0, a.writes_in_connection > 0),
                   "state misses under RSS: " +
                       std::to_string(nf.state_unavailable())});
  }
  table.print(std::cout);

  // The paper's point about DPI (§7): per-packet per-flow writes break
  // under spraying. Quantify it.
  nf::DpiNf dpi_spray({"attack", "exploit"});
  const auto spray = run_nf(dpi_spray, core::DispatchMode::kSpray);
  (void)spray;
  std::printf("\n[shape-check] DPI per-flow state reachable per packet: "
              "RSS always; under Sprayer %llu packets missed their "
              "automaton (paper: DPI incompatible with spraying)\n",
              static_cast<unsigned long long>(dpi_spray.state_unavailable()));
  return 0;
}

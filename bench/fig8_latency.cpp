// Figure 8 — "99th percentile RTT for 64 B packets at 70% load for a
// single flow."
//
// For each cycle count, both systems are offered the same Poisson load:
// 70 % of the *minimal* processing rate (the smaller of the two systems'
// capacities, measured by a saturating probe). Expected shape (paper):
// both curves grow with per-packet cost, Sprayer stays below RSS because a
// single flow's packets are serviced by all cores in parallel, so each
// core runs at a fraction of the load RSS's single core carries.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"

using namespace sprayer;

namespace {

double probe_capacity(core::DispatchMode mode, Cycles cycles, u32 cores,
                      u64 seed) {
  bench::PktGenExperiment ex;
  ex.mode = mode;
  ex.nf_cycles = cycles;
  ex.num_cores = cores;
  ex.duration_s = 0.02;
  ex.seed = seed;
  return bench::run_pktgen_experiment(ex).processed_pps;
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const double duration = cli.get_double("duration", 0.08);
  const double load_factor = cli.get_double("load", 0.7);
  const u64 seed = cli.get_u64("seed", 1);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 8));

  std::printf("=== Figure 8: 99th-percentile latency at %.0f%% load "
              "(64 B, single flow) ===\n", load_factor * 100);
  ConsoleTable table({"cycles/pkt", "load (Mpps)", "RSS p99 (us)",
                      "Sprayer p99 (us)", "RSS p50 (us)",
                      "Sprayer p50 (us)"});
  double rss_p99_10k = 0, spray_p99_10k = 0;
  for (Cycles cycles = 0; cycles <= 10000; cycles += 2000) {
    const double cap_rss =
        probe_capacity(core::DispatchMode::kRss, cycles, cores, seed);
    const double cap_spray =
        probe_capacity(core::DispatchMode::kSpray, cycles, cores, seed);
    const double load = load_factor * std::min(cap_rss, cap_spray);

    bench::PktGenExperiment ex;
    ex.nf_cycles = cycles;
    ex.num_cores = cores;
    ex.rate_pps = load;
    ex.poisson = true;  // randomized arrivals: queueing delay is visible
    ex.duration_s = duration;
    ex.seed = seed;

    ex.mode = core::DispatchMode::kRss;
    const auto rss = bench::run_pktgen_experiment(ex);
    ex.mode = core::DispatchMode::kSpray;
    const auto spray = bench::run_pktgen_experiment(ex);

    table.add_row({std::to_string(cycles),
                   ConsoleTable::num(load / 1e6),
                   ConsoleTable::num(to_micros(rss.latency.p99()), 1),
                   ConsoleTable::num(to_micros(spray.latency.p99()), 1),
                   ConsoleTable::num(to_micros(rss.latency.p50()), 1),
                   ConsoleTable::num(to_micros(spray.latency.p50()), 1)});
    if (cycles == 10000) {
      rss_p99_10k = to_micros(rss.latency.p99());
      spray_p99_10k = to_micros(spray.latency.p99());
    }
  }
  table.print(std::cout);
  std::printf("[shape-check] at 10k cycles: RSS p99 %.1f us vs Sprayer "
              "%.1f us (expect Sprayer clearly lower)\n",
              rss_p99_10k, spray_p99_10k);
  return 0;
}

// Figure 9 — "Jain's fairness index for increasing number of flows."
//
// Per-flow TCP goodput through the saturated middlebox; Jain's index over
// the flows, averaged over several runs with re-randomized endpoints
// ("sources and destinations change randomly at every execution"); error
// bars are the min/max across runs. Expected shape (paper): Sprayer stays
// at ~1.0 for every flow count; RSS dips well below 1.0 whenever the hash
// distributes flows unevenly over cores, worst at small-but->1 flow counts.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "nf/synthetic.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const Cycles cycles = cli.get_u64("cycles", 10000);
  const double warmup = cli.get_double("warmup", 0.75);
  const double duration = cli.get_double("duration", 2.5);
  const u32 runs = static_cast<u32>(cli.get_u64("runs", 2));
  const u64 seed = cli.get_u64("seed", 1);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 8));

  const std::vector<u32> flow_sweep = {1, 2, 4, 8, 16, 32, 64, 100};

  std::printf("=== Figure 9: Jain's fairness index vs #flows "
              "(%llu cycles/pkt, %u runs: avg [min..max]) ===\n",
              static_cast<unsigned long long>(cycles), runs);
  ConsoleTable table({"flows", "RSS avg", "RSS min", "RSS max",
                      "Sprayer avg", "Sprayer min", "Sprayer max"});
  double rss_worst = 1.0, spray_worst = 1.0;
  for (const u32 flows : flow_sweep) {
    RunningStats rss_jain, spray_jain;
    for (u32 run = 0; run < runs; ++run) {
      tcp::IperfScenario sc;
      sc.num_flows = flows;
      sc.warmup = from_seconds(warmup);
      sc.duration = from_seconds(duration);
      sc.seed = seed + 1000 * run + flows;

      sc.mbox.num_cores = cores;
      nf::SyntheticNf nf_rss(cycles);
      sc.mbox.mode = core::DispatchMode::kRss;
      rss_jain.add(run_iperf(nf_rss, sc).jain);

      nf::SyntheticNf nf_spray(cycles);
      sc.mbox.mode = core::DispatchMode::kSpray;
      spray_jain.add(run_iperf(nf_spray, sc).jain);
    }
    table.add_row({std::to_string(flows),
                   ConsoleTable::num(rss_jain.mean(), 3),
                   ConsoleTable::num(rss_jain.min(), 3),
                   ConsoleTable::num(rss_jain.max(), 3),
                   ConsoleTable::num(spray_jain.mean(), 3),
                   ConsoleTable::num(spray_jain.min(), 3),
                   ConsoleTable::num(spray_jain.max(), 3)});
    if (flows > 1) {
      rss_worst = std::min(rss_worst, rss_jain.min());
      spray_worst = std::min(spray_worst, spray_jain.min());
    }
  }
  table.print(std::cout);
  std::printf("[shape-check] worst-case Jain: RSS %.3f vs Sprayer %.3f "
              "(expect Sprayer ~1.0, RSS well below)\n",
              rss_worst, spray_worst);
  return 0;
}

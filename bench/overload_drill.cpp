// Overload drill: a SYN/RST churn plus elephant-mix workload pushed through
// the threaded executor hard enough that admission control and the mesh
// retry path both engage, proving the §3.3 contract end-to-end: connection
// packets the framework accepts are never lost — goodput is shed instead.
//
// The driver interleaves connection churn (SYN then RST per flow slot,
// injected per-packet so the conn-admission count is exact) with bursts of
// template ACK elephants (payload variants keep per-packet checksum entropy
// so spray placement stays per-packet). Mesh rings are sized small so
// transfer_batch rejections are routine, and an optional deterministic
// fault schedule (fault_period=N truncates every Nth transfer_batch)
// stresses the park-and-retry path on top.
//
// Emits one JSON line per (policy, cores) configuration with the
// conn-conservation proof inline:
//
//   conn_lost = conn_admitted - (conn_local + conn_foreign_in)  == 0
//   transfer_drops == 0, pending_transfers == 0
//
//   ./bench/overload_drill [policies=drop-new,drop-regular-first,block]
//       [cores=4] [duration=0.4] [flows=64] [burst=32] [conn_pairs=2]
//       [rx_ring=256] [mesh_ring=16] [fault_period=7] [nf_cycles=0]
//       [variants=4] [telemetry=1]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/overload.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"

using namespace sprayer;

namespace {

constexpr u32 kMaxBurst = 64;

struct RunConfig {
  OverloadPolicy policy = OverloadPolicy::kDropRegularFirst;
  u32 cores = 4;
  double duration_s = 0.4;
  u32 flows = 64;
  u32 burst = 32;
  u32 conn_pairs = 2;  // SYN+RST pairs injected between elephant bursts
  u32 rx_ring = 256;
  u32 mesh_ring = 16;
  u32 fault_period = 7;  // 0 disables the fault schedule
  Cycles nf_cycles = 0;
  u32 variants = 4;
  bool telemetry = true;
};

struct RunResult {
  double elapsed_s = 0.0;
  u64 conn_admitted = 0;
  u64 reg_admitted = 0;
  u64 forwarded = 0;
  u64 shed_regular = 0;
  u64 shed_conn = 0;
  u64 rx_ring_drops = 0;
  u64 forced_rejections = 0;
  u32 pending = 0;
  core::CoreStats total;
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

OverloadPolicy parse_policy(const std::string& s) {
  if (s == "drop-new") return OverloadPolicy::kDropNew;
  if (s == "block") return OverloadPolicy::kBlock;
  return OverloadPolicy::kDropRegularFirst;
}

/// One frame per (flow, variant) for the elephants, plus a SYN and an RST
/// frame per flow for the churn — all pre-built so the measured loop only
/// memcpys.
struct Frames {
  std::vector<std::vector<u8>> data;  // elephants: flow-major, then variant
  std::vector<std::vector<u8>> syn;
  std::vector<std::vector<u8>> rst;
};

Frames build_frames(const std::vector<net::FiveTuple>& flow_set,
                    u32 variants) {
  net::PacketPool scratch(64, 256);
  Frames out;
  for (const auto& flow : flow_set) {
    for (u32 v = 0; v < variants; ++v) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 6;
      const u8 payload[6] = {9, 8, 7, 6, 5, static_cast<u8>(v)};
      spec.payload = payload;
      net::Packet* pkt = net::build_tcp_raw(scratch, spec);
      out.data.emplace_back(pkt->data(), pkt->data() + pkt->len());
      scratch.free(pkt);
    }
    for (const u8 flags : {net::TcpFlags::kSyn, net::TcpFlags::kRst}) {
      net::TcpSegmentSpec spec;
      spec.tuple = flow;
      spec.flags = flags;
      net::Packet* pkt = net::build_tcp_raw(scratch, spec);
      auto& dst = flags == net::TcpFlags::kSyn ? out.syn : out.rst;
      dst.emplace_back(pkt->data(), pkt->data() + pkt->len());
      scratch.free(pkt);
    }
  }
  return out;
}

net::Packet* clone_frame(net::PacketPool& pool, const std::vector<u8>& frame) {
  net::Packet* pkt = pool.alloc_raw();
  if (pkt == nullptr) return nullptr;
  std::memcpy(pkt->data(), frame.data(), frame.size());
  pkt->set_len(static_cast<u32>(frame.size()));
  return pkt;
}

RunResult run_one(const RunConfig& rc) {
  net::PacketPool pool(1u << 15, 256);
  nf::SyntheticNf nf(rc.nf_cycles);
  std::atomic<u64> forwarded{0};

  core::SprayerConfig cfg;
  cfg.num_cores = rc.cores;
  cfg.mode = core::DispatchMode::kSpray;
  cfg.housekeeping_interval = 0;
  cfg.telemetry = rc.telemetry;
  cfg.overload_policy = rc.policy;
  cfg.rx_ring_capacity = rc.rx_ring;
  cfg.foreign_ring_capacity = rc.mesh_ring;
  if (rc.fault_period > 0) {
    cfg.transfer_fault = {.reject_period = rc.fault_period, .accept_cap = 0};
  }

  core::ThreadedMiddlebox mbox(
      cfg, nf,
      core::ThreadedMiddlebox::TxBatchHandler(
          [&](std::span<net::Packet* const> pkts) {
            forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
            net::free_packets(pkts);
          }));
  mbox.start();

  const auto flow_set = nic::random_tcp_flows(rc.flows, 42);
  const Frames frames = build_frames(flow_set, std::max<u32>(rc.variants, 1));

  using Clock = std::chrono::steady_clock;
  const u32 burst_size = std::min(rc.burst, kMaxBurst);
  std::array<net::Packet*, kMaxBurst> burst{};
  RunResult res;
  std::size_t next_elephant = 0;
  std::size_t next_churn = 0;  // even: SYN, odd: RST, flow advances per pair
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(rc.duration_s));
  while (Clock::now() < deadline) {
    // Connection churn: exact per-packet admission accounting.
    for (u32 k = 0; k < rc.conn_pairs * 2; ++k) {
      const std::size_t flow = (next_churn / 2) % frames.syn.size();
      const bool syn = (next_churn & 1) == 0;
      ++next_churn;
      net::Packet* pkt =
          clone_frame(pool, syn ? frames.syn[flow] : frames.rst[flow]);
      if (pkt == nullptr) break;  // pool backpressure
      if (mbox.inject(pkt)) ++res.conn_admitted;
    }
    // Elephant burst on the bulk path.
    const u32 n = pool.alloc_bulk(std::span{burst.data(), burst_size});
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (u32 i = 0; i < n; ++i) {
      const auto& frame = frames.data[next_elephant];
      if (++next_elephant == frames.data.size()) next_elephant = 0;
      std::memcpy(burst[i]->data(), frame.data(), frame.size());
      burst[i]->set_len(static_cast<u32>(frame.size()));
    }
    res.reg_admitted += mbox.inject_bulk({burst.data(), n});
  }
  mbox.wait_idle();
  res.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

  res.forwarded = forwarded.load();
  res.shed_regular = mbox.shed_regular();
  res.shed_conn = mbox.shed_conn();
  res.rx_ring_drops = mbox.rx_ring_drops();
  res.forced_rejections = mbox.forced_rejections();
  res.pending = mbox.pending_transfers();
  res.total = mbox.total_stats();
  mbox.stop();
  return res;
}

void print_json(const RunConfig& rc, const RunResult& res) {
  const u64 conn_processed = res.total.conn_local + res.total.conn_foreign_in;
  const long long conn_lost =
      static_cast<long long>(res.conn_admitted) -
      static_cast<long long>(conn_processed);
  std::printf(
      "{\"bench\":\"overload_drill\",\"policy\":\"%s\",\"cores\":%u,"
      "\"rx_ring\":%u,\"mesh_ring\":%u,\"fault_period\":%u,"
      "\"elapsed_s\":%.4f,\"conn_admitted\":%llu,\"reg_admitted\":%llu,"
      "\"forwarded\":%llu,\"pps\":%.0f,"
      "\"conn_processed\":%llu,\"conn_lost\":%lld,"
      "\"shed_regular\":%llu,\"shed_conn\":%llu,\"rx_ring_drops\":%llu,"
      "\"transfer_retries\":%llu,\"transfer_drops\":%llu,"
      "\"forced_rejections\":%llu,\"pending_transfers\":%u}\n",
      to_string(rc.policy), rc.cores, rc.rx_ring, rc.mesh_ring,
      rc.fault_period, res.elapsed_s,
      static_cast<unsigned long long>(res.conn_admitted),
      static_cast<unsigned long long>(res.reg_admitted),
      static_cast<unsigned long long>(res.forwarded),
      static_cast<double>(res.forwarded) / res.elapsed_s,
      static_cast<unsigned long long>(conn_processed), conn_lost,
      static_cast<unsigned long long>(res.shed_regular),
      static_cast<unsigned long long>(res.shed_conn),
      static_cast<unsigned long long>(res.rx_ring_drops),
      static_cast<unsigned long long>(res.total.transfer_retries),
      static_cast<unsigned long long>(res.total.transfer_drops),
      static_cast<unsigned long long>(res.forced_rejections), res.pending);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  RunConfig base;
  base.duration_s = cli.get_double("duration", 0.4);
  base.flows = static_cast<u32>(cli.get_u64("flows", 64));
  base.burst = static_cast<u32>(cli.get_u64("burst", 32));
  base.conn_pairs = static_cast<u32>(cli.get_u64("conn_pairs", 2));
  base.rx_ring = static_cast<u32>(cli.get_u64("rx_ring", 256));
  base.mesh_ring = static_cast<u32>(cli.get_u64("mesh_ring", 16));
  base.fault_period = static_cast<u32>(cli.get_u64("fault_period", 7));
  base.nf_cycles = cli.get_u64("nf_cycles", 0);
  base.variants = static_cast<u32>(cli.get_u64("variants", 4));
  base.telemetry = cli.get_u64("telemetry", 1) != 0;

  const auto policies =
      split_list(cli.get("policies", "drop-new,drop-regular-first,block"));
  for (const auto& cores_s : split_list(cli.get("cores", "4"))) {
    for (const auto& policy_s : policies) {
      RunConfig rc = base;
      rc.cores = static_cast<u32>(std::stoul(cores_s));
      rc.policy = parse_policy(policy_s);
      print_json(rc, run_one(rc));
    }
  }
  return 0;
}

// Ablation — connection-packet redirection cost (DESIGN.md §5.1).
//
// Sprayer's only per-packet overhead relative to pure spraying is the
// descriptor transfer of connection packets to their designated core. Two
// sweeps quantify it on a connection-heavy workload:
//   (1) churn sweep: fraction of connection packets from 0 to 1/4, with
//       the default cost model;
//   (2) cost sweep: transfer enqueue+dequeue cycles from 0 to 8x default,
//       at fixed churn — how expensive would rings have to get before
//       spraying stopped paying off?
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const Cycles cycles = cli.get_u64("cycles", 2000);
  const double duration = cli.get_double("duration", 0.02);
  const u64 seed = cli.get_u64("seed", 1);

  std::printf("=== Ablation: connection churn vs processing rate "
              "(%llu cycles/pkt) ===\n",
              static_cast<unsigned long long>(cycles));
  ConsoleTable churn_table({"conn pkt share", "RSS (Mpps)", "Sprayer (Mpps)",
                            "transfers/s"});
  for (const u32 every : {0u, 64u, 16u, 8u, 4u}) {
    bench::PktGenExperiment ex;
    ex.nf_cycles = cycles;
    ex.num_flows = 16;
    ex.new_flow_every = every;
    ex.duration_s = duration;
    ex.seed = seed;

    ex.mode = core::DispatchMode::kRss;
    const auto rss = bench::run_pktgen_experiment(ex);
    ex.mode = core::DispatchMode::kSpray;
    const auto spray = bench::run_pktgen_experiment(ex);

    const double share = every == 0 ? 0.0 : 1.0 / every;
    churn_table.add_row(
        {ConsoleTable::num(share, 3),
         ConsoleTable::num(rss.processed_pps / 1e6),
         ConsoleTable::num(spray.processed_pps / 1e6),
         ConsoleTable::num(
             static_cast<double>(
                 spray.report.total.conn_transferred_out) / duration / 1e6,
             2) + "M"});
  }
  churn_table.print(std::cout);

  std::printf("\n=== Ablation: ring transfer cost vs processing rate "
              "(1/8 connection packets) ===\n");
  ConsoleTable cost_table({"enq+deq cycles", "Sprayer (Mpps)"});
  for (const u32 mult : {0u, 1u, 2u, 4u, 8u}) {
    bench::PktGenExperiment ex;
    ex.mode = core::DispatchMode::kSpray;
    ex.nf_cycles = cycles;
    ex.num_flows = 16;
    ex.new_flow_every = 8;
    ex.duration_s = duration;
    ex.seed = seed;
    ex.costs.transfer_enqueue = 60 * mult;
    ex.costs.transfer_dequeue = 40 * mult;
    const auto r = bench::run_pktgen_experiment(ex);
    cost_table.add_row(
        {std::to_string(100 * mult),
         ConsoleTable::num(r.processed_pps / 1e6)});
  }
  cost_table.print(std::cout);
  return 0;
}

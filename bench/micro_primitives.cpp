// Micro-benchmarks (google-benchmark) of the data-plane primitives: these
// are the host-machine costs of the real code paths, complementing the
// simulator's modeled cycle costs.
#include <benchmark/benchmark.h>

#include <array>

#include "common/rng.hpp"
#include "core/flow_table.hpp"
#include "hash/crc32c.hpp"
#include "hash/toeplitz.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/aho_corasick.hpp"
#include "runtime/mpmc_ring.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/event_queue.hpp"

namespace sprayer {
namespace {

std::vector<u8> random_bytes(std::size_t n, u64 seed = 1) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

net::FiveTuple bench_tuple() {
  return {net::Ipv4Addr{10, 1, 2, 3}, net::Ipv4Addr{172, 16, 4, 5}, 40000,
          443, net::kProtoTcp};
}

void BM_InternetChecksum(benchmark::State& state) {
  const auto buf = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(60)->Arg(1514);

void BM_ChecksumIncrementalUpdate(benchmark::State& state) {
  u16 cks = 0x1234;
  u16 field = 1;
  for (auto _ : state) {
    cks = net::checksum_update16(cks, field, static_cast<u16>(field + 1));
    ++field;
    benchmark::DoNotOptimize(cks);
  }
}
BENCHMARK(BM_ChecksumIncrementalUpdate);

void BM_ToeplitzV4L4(benchmark::State& state) {
  const auto t = bench_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::toeplitz_v4_l4(t, hash::kSymmetricKey));
  }
}
BENCHMARK(BM_ToeplitzV4L4);

void BM_Crc32c(benchmark::State& state) {
  const auto buf = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::crc32c(std::span<const u8>{buf.data(), buf.size()}));
  }
}
BENCHMARK(BM_Crc32c)->Arg(12)->Arg(64);

void BM_FiveTuplePack(benchmark::State& state) {
  auto t = bench_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.canonical().pack());
    t.src_port++;
  }
}
BENCHMARK(BM_FiveTuplePack);

void BM_FlowTableLookupHit(benchmark::State& state) {
  core::FlowTable table(1u << 16, 16, 0);
  Rng rng(3);
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 10000; ++i) {
    net::FiveTuple t = bench_tuple();
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    keys.push_back(t);
    benchmark::DoNotOptimize(table.insert(t));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find_local(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_FlowTableLookupHit);

// Scalar vs batched lookup sweep over table sizes, from cache-resident to
// well beyond the LLC. Each iteration resolves kLookupBlock random present
// keys; the bulk variant goes through find_batch in NF-batch-sized chunks
// (the two-stage prefetch pipeline), the scalar variant through find_remote
// one key at a time. The interesting regime is the largest sizes, where
// every probe is a DRAM miss unless prefetched.
constexpr u32 kLookupBlock = 4096;
constexpr u32 kBulkChunkSize = 32;

struct LookupSweep {
  core::FlowTable table;
  std::vector<net::FiveTuple> keys;
  std::vector<core::FlowTable::FlowHash> hashes;

  explicit LookupSweep(u32 capacity) : table(capacity, 16, 0) {
    Rng rng(9);
    // Operate at 50 % occupancy — the normal regime for a table sized with
    // headroom over peak flow count — not at the 87.5 % refusal cap.
    const u32 target = capacity / 2;
    while (keys.size() < target) {
      net::FiveTuple t = bench_tuple();
      t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
      t.src_port = static_cast<u16>(rng.next());
      if (table.insert(t) == nullptr) continue;
      keys.push_back(t);
    }
    // Random lookup order, so large tables defeat the hardware prefetcher.
    for (std::size_t i = keys.size() - 1; i > 0; --i) {
      std::swap(keys[i], keys[rng.uniform(i + 1)]);
    }
    hashes.reserve(keys.size());
    for (const auto& k : keys) hashes.push_back(core::FlowTable::hash_of(k));
  }
};

void BM_FlowTableScalarLookupSweep(benchmark::State& state) {
  LookupSweep s(1u << state.range(0));
  std::size_t off = 0;
  u64 sum = 0;  // consume each entry's first word, like a real NF would
  for (auto _ : state) {
    for (u32 i = 0; i < kLookupBlock; ++i) {
      const void* e = s.table.find_remote(s.keys[off + i], s.hashes[off + i]);
      if (e != nullptr) sum += *static_cast<const u64*>(e);
    }
    off = (off + kLookupBlock) % (s.keys.size() - kLookupBlock);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          kLookupBlock);
}
BENCHMARK(BM_FlowTableScalarLookupSweep)
    ->DenseRange(14, 23, 3)
    ->ArgName("log2_capacity");

void BM_FlowTableBulkLookupSweep(benchmark::State& state) {
  LookupSweep s(1u << state.range(0));
  std::array<const void*, kBulkChunkSize> out;
  std::size_t off = 0;
  u64 sum = 0;
  for (auto _ : state) {
    for (u32 i = 0; i < kLookupBlock; i += kBulkChunkSize) {
      s.table.find_batch({s.keys.data() + off + i, kBulkChunkSize},
                         {s.hashes.data() + off + i, kBulkChunkSize},
                         {out.data(), kBulkChunkSize});
      for (const void* e : out) {
        if (e != nullptr) sum += *static_cast<const u64*>(e);
      }
    }
    off = (off + kLookupBlock) % (s.keys.size() - kLookupBlock);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          kLookupBlock);
}
BENCHMARK(BM_FlowTableBulkLookupSweep)
    ->DenseRange(14, 23, 3)
    ->ArgName("log2_capacity");

void BM_FlowTableInsertRemove(benchmark::State& state) {
  core::FlowTable table(1u << 16, 16, 0);
  Rng rng(4);
  net::FiveTuple t = bench_tuple();
  for (auto _ : state) {
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    benchmark::DoNotOptimize(table.insert(t));
    benchmark::DoNotOptimize(table.remove(t));
  }
}
BENCHMARK(BM_FlowTableInsertRemove);

void BM_SpscRingPushPop(benchmark::State& state) {
  runtime::SpscRing<void*> ring(1024);
  void* item = &ring;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(item));
    void* out;
    benchmark::DoNotOptimize(ring.pop(out));
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpmcRingPushPop(benchmark::State& state) {
  runtime::MpmcRing<void*> ring(1024);
  void* item = &ring;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(item));
    void* out;
    benchmark::DoNotOptimize(ring.pop(out));
  }
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_PacketPoolAllocFree(benchmark::State& state) {
  net::PacketPool pool(256);
  for (auto _ : state) {
    net::Packet* p = pool.alloc_raw();
    benchmark::DoNotOptimize(p);
    pool.free(p);
  }
}
BENCHMARK(BM_PacketPoolAllocFree);

void BM_BuildAndParseTcpFrame(benchmark::State& state) {
  net::PacketPool pool(16);
  net::TcpSegmentSpec spec;
  spec.tuple = bench_tuple();
  spec.payload_len = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    net::Packet* pkt = net::build_tcp_raw(pool, spec);
    benchmark::DoNotOptimize(pkt->five_tuple());
    pool.free(pkt);
  }
}
BENCHMARK(BM_BuildAndParseTcpFrame)->Arg(6)->Arg(1460);

void BM_AhoCorasickScan(benchmark::State& state) {
  nf::AhoCorasick ac({"attack", "exploit", "malware", "GET /",
                      "\xde\xad\xbe\xef"});
  const auto buf = random_bytes(1460);
  u64 hits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ac.scan(0, std::span<const u8>{buf.data(), buf.size()}, &hits));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1460);
}
BENCHMARK(BM_AhoCorasickScan);

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  class Nop final : public sim::IEventTarget {
   public:
    void handle_event(u64) override {}
  } nop;
  sim::EventQueue q;
  Rng rng(5);
  // Keep a standing population of 1024 events.
  for (int i = 0; i < 1024; ++i) q.schedule(rng.next() % 100000, &nop);
  Time t = 100000;
  for (auto _ : state) {
    const auto e = q.pop();
    benchmark::DoNotOptimize(e);
    q.schedule(t, &nop);
    ++t;
  }
}
BENCHMARK(BM_EventQueueScheduleDispatch);

}  // namespace
}  // namespace sprayer

BENCHMARK_MAIN();

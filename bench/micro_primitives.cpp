// Micro-benchmarks (google-benchmark) of the data-plane primitives: these
// are the host-machine costs of the real code paths, complementing the
// simulator's modeled cycle costs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/flow_table.hpp"
#include "hash/crc32c.hpp"
#include "hash/toeplitz.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/aho_corasick.hpp"
#include "runtime/mpmc_ring.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/event_queue.hpp"

namespace sprayer {
namespace {

std::vector<u8> random_bytes(std::size_t n, u64 seed = 1) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

net::FiveTuple bench_tuple() {
  return {net::Ipv4Addr{10, 1, 2, 3}, net::Ipv4Addr{172, 16, 4, 5}, 40000,
          443, net::kProtoTcp};
}

void BM_InternetChecksum(benchmark::State& state) {
  const auto buf = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(60)->Arg(1514);

void BM_ChecksumIncrementalUpdate(benchmark::State& state) {
  u16 cks = 0x1234;
  u16 field = 1;
  for (auto _ : state) {
    cks = net::checksum_update16(cks, field, static_cast<u16>(field + 1));
    ++field;
    benchmark::DoNotOptimize(cks);
  }
}
BENCHMARK(BM_ChecksumIncrementalUpdate);

void BM_ToeplitzV4L4(benchmark::State& state) {
  const auto t = bench_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::toeplitz_v4_l4(t, hash::kSymmetricKey));
  }
}
BENCHMARK(BM_ToeplitzV4L4);

void BM_Crc32c(benchmark::State& state) {
  const auto buf = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hash::crc32c(std::span<const u8>{buf.data(), buf.size()}));
  }
}
BENCHMARK(BM_Crc32c)->Arg(12)->Arg(64);

void BM_FiveTuplePack(benchmark::State& state) {
  auto t = bench_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.canonical().pack());
    t.src_port++;
  }
}
BENCHMARK(BM_FiveTuplePack);

void BM_FlowTableLookupHit(benchmark::State& state) {
  core::FlowTable table(1u << 16, 16, 0);
  Rng rng(3);
  std::vector<net::FiveTuple> keys;
  for (int i = 0; i < 10000; ++i) {
    net::FiveTuple t = bench_tuple();
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    keys.push_back(t);
    benchmark::DoNotOptimize(table.insert(t));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find_local(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_FlowTableLookupHit);

void BM_FlowTableInsertRemove(benchmark::State& state) {
  core::FlowTable table(1u << 16, 16, 0);
  Rng rng(4);
  net::FiveTuple t = bench_tuple();
  for (auto _ : state) {
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    benchmark::DoNotOptimize(table.insert(t));
    benchmark::DoNotOptimize(table.remove(t));
  }
}
BENCHMARK(BM_FlowTableInsertRemove);

void BM_SpscRingPushPop(benchmark::State& state) {
  runtime::SpscRing<void*> ring(1024);
  void* item = &ring;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(item));
    void* out;
    benchmark::DoNotOptimize(ring.pop(out));
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpmcRingPushPop(benchmark::State& state) {
  runtime::MpmcRing<void*> ring(1024);
  void* item = &ring;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(item));
    void* out;
    benchmark::DoNotOptimize(ring.pop(out));
  }
}
BENCHMARK(BM_MpmcRingPushPop);

void BM_PacketPoolAllocFree(benchmark::State& state) {
  net::PacketPool pool(256);
  for (auto _ : state) {
    net::Packet* p = pool.alloc_raw();
    benchmark::DoNotOptimize(p);
    pool.free(p);
  }
}
BENCHMARK(BM_PacketPoolAllocFree);

void BM_BuildAndParseTcpFrame(benchmark::State& state) {
  net::PacketPool pool(16);
  net::TcpSegmentSpec spec;
  spec.tuple = bench_tuple();
  spec.payload_len = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    net::Packet* pkt = net::build_tcp_raw(pool, spec);
    benchmark::DoNotOptimize(pkt->five_tuple());
    pool.free(pkt);
  }
}
BENCHMARK(BM_BuildAndParseTcpFrame)->Arg(6)->Arg(1460);

void BM_AhoCorasickScan(benchmark::State& state) {
  nf::AhoCorasick ac({"attack", "exploit", "malware", "GET /",
                      "\xde\xad\xbe\xef"});
  const auto buf = random_bytes(1460);
  u64 hits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ac.scan(0, std::span<const u8>{buf.data(), buf.size()}, &hits));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 1460);
}
BENCHMARK(BM_AhoCorasickScan);

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  class Nop final : public sim::IEventTarget {
   public:
    void handle_event(u64) override {}
  } nop;
  sim::EventQueue q;
  Rng rng(5);
  // Keep a standing population of 1024 events.
  for (int i = 0; i < 1024; ++i) q.schedule(rng.next() % 100000, &nop);
  Time t = 100000;
  for (auto _ : state) {
    const auto e = q.pop();
    benchmark::DoNotOptimize(e);
    q.schedule(t, &nop);
    ++t;
  }
}
BENCHMARK(BM_EventQueueScheduleDispatch);

}  // namespace
}  // namespace sprayer

BENCHMARK_MAIN();

// Figure 7 — "Effect of increasing the number of flows on processing rate
// (with 64 B packets) and TCP throughput. Processing cycles per packet
// remain fixed at 10,000."
//
// Expected shape (paper): RSS climbs from one core's worth of throughput
// toward all-cores as flows spread over the hash space; Sprayer is flat at
// the all-cores rate regardless of flow count, with RSS edging slightly
// ahead in TCP throughput at high flow counts (Sprayer pays a reordering
// penalty there).
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const Cycles cycles = cli.get_u64("cycles", 10000);
  const double pktgen_duration = cli.get_double("pktgen_duration", 0.03);
  const double tcp_warmup = cli.get_double("tcp_warmup", 0.2);
  const double tcp_duration = cli.get_double("tcp_duration", 0.5);
  const u64 seed = cli.get_u64("seed", 1);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 8));

  const std::vector<u32> flow_sweep = {1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("=== Figure 7(a): processing rate vs #flows "
              "(64 B, %llu cycles/pkt) ===\n",
              static_cast<unsigned long long>(cycles));
  ConsoleTable rate_table({"flows", "RSS (Mpps)", "Sprayer (Mpps)"});
  double rss_1 = 0, spray_1 = 0, rss_128 = 0, spray_128 = 0;
  for (const u32 flows : flow_sweep) {
    bench::PktGenExperiment ex;
    ex.nf_cycles = cycles;
    ex.num_flows = flows;
    ex.num_cores = cores;
    ex.duration_s = pktgen_duration;
    ex.seed = seed + flows;  // sources/destinations change per execution

    ex.mode = core::DispatchMode::kRss;
    const auto rss = bench::run_pktgen_experiment(ex);
    ex.mode = core::DispatchMode::kSpray;
    const auto spray = bench::run_pktgen_experiment(ex);

    rate_table.add_row({std::to_string(flows),
                        ConsoleTable::num(rss.processed_pps / 1e6, 3),
                        ConsoleTable::num(spray.processed_pps / 1e6, 3)});
    if (flows == 1) { rss_1 = rss.processed_pps; spray_1 = spray.processed_pps; }
    if (flows == 128) { rss_128 = rss.processed_pps; spray_128 = spray.processed_pps; }
  }
  rate_table.print(std::cout);
  std::printf("[shape-check] RSS grows %.2f -> %.2f Mpps with flow count; "
              "Sprayer flat at %.2f~%.2f Mpps\n\n",
              rss_1 / 1e6, rss_128 / 1e6, spray_1 / 1e6, spray_128 / 1e6);

  std::printf("=== Figure 7(b): TCP throughput vs #flows "
              "(%llu cycles/pkt) ===\n",
              static_cast<unsigned long long>(cycles));
  ConsoleTable tcp_table({"flows", "RSS (Gbps)", "Sprayer (Gbps)",
                          "Sprayer reordered segs"});
  for (const u32 flows : flow_sweep) {
    tcp::IperfScenario sc;
    sc.num_flows = flows;
    sc.warmup = from_seconds(tcp_warmup);
    sc.duration = from_seconds(tcp_duration);
    sc.seed = seed + flows;
    sc.mbox.num_cores = cores;

    nf::SyntheticNf nf_rss(cycles);
    sc.mbox.mode = core::DispatchMode::kRss;
    const auto rss = run_iperf(nf_rss, sc);

    nf::SyntheticNf nf_spray(cycles);
    sc.mbox.mode = core::DispatchMode::kSpray;
    const auto spray = run_iperf(nf_spray, sc);

    tcp_table.add_row(
        {std::to_string(flows),
         ConsoleTable::num(rss.total_goodput_bps / 1e9),
         ConsoleTable::num(spray.total_goodput_bps / 1e9),
         std::to_string(spray.server_ooo_segments)});
  }
  tcp_table.print(std::cout);
  std::printf("[shape-check] expect RSS well below Sprayer at few flows, "
              "catching up (and slightly passing) at many flows\n");
  return 0;
}

// Ablation — the checksum-mask Flow Director configuration (paper §4).
//
// The trick uses b = ceil(log2(cores)) checksum bits and maps rule value v
// to queue (v mod cores). For core counts that are not powers of two this
// mapping is *biased*: 2^b mod cores queues receive one extra rule. This
// bench measures rule count, the analytic bias, and the empirical packet
// distribution over queues — quantifying a deployment consideration the
// paper leaves implicit, plus how the rule count stays far below the 8 K
// table limit.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nic/flow_director.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 packets = static_cast<u32>(cli.get_u64("packets", 100000));
  const u64 seed = cli.get_u64("seed", 1);

  std::printf("=== Ablation: Flow Director spray rule set vs core count "
              "(%u random-checksum packets each) ===\n", packets);
  ConsoleTable table({"cores", "rules", "max/mean queue load",
                      "min/mean queue load"});

  net::PacketPool pool(8);
  Rng rng(seed);
  const net::FiveTuple tuple{net::Ipv4Addr{10, 0, 0, 1},
                             net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                             net::kProtoTcp};

  for (const u32 cores : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 64u}) {
    nic::FlowDirector fdir;
    const Status st = fdir.program_checksum_spray(cores);
    SPRAYER_CHECK(st.ok());

    std::vector<u64> per_queue(cores, 0);
    for (u32 i = 0; i < packets; ++i) {
      net::TcpSegmentSpec spec;
      spec.tuple = tuple;
      spec.payload_len = 8;
      u8 payload[8];
      const u64 r = rng.next();
      std::memcpy(payload, &r, sizeof(payload));
      spec.payload = payload;
      net::Packet* pkt = net::build_tcp_raw(pool, spec);
      const auto q = fdir.match(*pkt);
      SPRAYER_CHECK(q.has_value());
      per_queue[*q]++;
      pool.free(pkt);
    }

    const double mean = static_cast<double>(packets) / cores;
    u64 mx = 0, mn = ~0ull;
    for (const u64 c : per_queue) {
      mx = std::max(mx, c);
      mn = std::min(mn, c);
    }
    table.add_row({std::to_string(cores),
                   std::to_string(fdir.rule_count()),
                   ConsoleTable::num(static_cast<double>(mx) / mean, 3),
                   ConsoleTable::num(static_cast<double>(mn) / mean, 3)});
  }
  table.print(std::cout);
  std::printf("[note] non-power-of-two core counts are systematically "
              "imbalanced: 2^b rules cannot split evenly over the queues "
              "(e.g. 6 cores get a 4/3 max/min rule ratio)\n");
  return 0;
}

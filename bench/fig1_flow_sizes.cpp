// Figure 1 — "Distribution of number of flows with a given size and
// distribution of bytes across different flow sizes."
//
// The paper measured a 48 h MAWI 1 Gbps backbone trace; we measure the
// synthetic heavy-tailed workload that substitutes for it (DESIGN.md).
// The facts the figure establishes and the bench verifies:
//   * elephants-and-mice: few large flows carry most bytes;
//   * flows > 10 MB account for > 75 % of the traffic.
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "trace/analysis.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 num_flows = static_cast<u32>(cli.get_u64("flows", 300000));
  const u64 seed = cli.get_u64("seed", 1);

  // Sample the flow-size model directly (Figure 1 is per-flow, no timing).
  trace::FlowSizeModel model;
  Rng rng(seed);
  std::vector<trace::FlowRecord> flows(num_flows);
  for (u32 i = 0; i < num_flows; ++i) {
    flows[i].id = i;
    flows[i].bytes = model.sample(rng).bytes;
  }
  const auto analysis = trace::analyze_flow_sizes(flows);

  std::printf("=== Figure 1: CDF of flow sizes and of bytes by flow size "
              "(%u flows) ===\n", num_flows);
  ConsoleTable table({"size (bytes)", "CDF flows", "CDF bytes"});
  for (const double size :
       {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}) {
    table.add_row({ConsoleTable::num(size, 0),
                   ConsoleTable::num(analysis.flow_sizes.at(size), 3),
                   ConsoleTable::num(analysis.bytes_by_size.at(size), 3)});
  }
  table.print(std::cout);

  const double large_share = analysis.byte_share_above(10e6);
  std::printf("median flow size: %.0f bytes\n",
              analysis.flow_sizes.median());
  std::printf("[shape-check] bytes from flows > 10 MB: %.1f%% "
              "(paper: > 75%%)\n", 100.0 * large_share);
  return large_share > 0.75 ? 0 : 1;
}

// Ablation — the paper's §7 future-work proposals, implemented and tested
// on the programmable-NIC emulation:
//
//   (1) limited-subset spraying ("it may be wise to only spray packets
//       from a particular flow to a limited subset of cores"): sweep the
//       subset size from 1 (= per-flow RSS) to all cores and measure TCP
//       throughput and observed reordering at the receiver;
//   (2) hardware connection-packet steering ("we could program NICs to
//       direct connection packets to designated cores, reducing some of
//       Sprayer's overhead"): compare ring transfers and processing rate
//       with and without it under connection churn.
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const Cycles cycles = cli.get_u64("cycles", 10000);
  const u32 flows = static_cast<u32>(cli.get_u64("flows", 8));
  const double duration = cli.get_double("duration", 0.4);
  const u64 seed = cli.get_u64("seed", 1);

  std::printf("=== Future work (paper S7.3): spray-subset size vs TCP "
              "throughput and reordering (%u flows, %llu cycles/pkt) ===\n",
              flows, static_cast<unsigned long long>(cycles));
  ConsoleTable subset_table({"subset size", "goodput (Gbps)",
                             "reordered segs", "spurious fast-retx"});
  for (const u32 subset : {1u, 2u, 4u, 8u}) {
    nf::SyntheticNf nf(cycles);
    tcp::IperfScenario sc;
    sc.num_flows = flows;
    sc.warmup = from_seconds(0.15);
    sc.duration = from_seconds(duration);
    sc.seed = seed;
    sc.mbox.mode = core::DispatchMode::kSpray;
    sc.nic.spray_subset = subset;  // 8 = full spraying on 8 cores

    const auto r = run_iperf(nf, sc);
    u64 fast_retx = 0;
    for (const auto& f : r.flows) fast_retx += f.stats.fast_retransmits;
    subset_table.add_row({std::to_string(subset),
                          ConsoleTable::num(r.total_goodput_bps / 1e9),
                          std::to_string(r.server_ooo_segments),
                          std::to_string(fast_retx)});
  }
  subset_table.print(std::cout);
  std::printf("[note] subset=1 degenerates to per-flow placement (one "
              "queue per flow); larger subsets add parallelism and "
              "reordering\n\n");

  std::printf("=== Future work (paper S7.2): hardware connection-packet "
              "steering under connection churn ===\n");
  ConsoleTable hw_table({"hw steering", "rate (Mpps)", "ring transfers/s"});
  for (const bool hw : {false, true}) {
    bench::PktGenExperiment ex;
    ex.mode = core::DispatchMode::kSpray;
    ex.nf_cycles = 2000;
    ex.num_flows = 16;
    ex.new_flow_every = 8;  // heavy churn: 1/8 packets are SYNs
    ex.duration_s = 0.02;
    ex.seed = seed;
    ex.nic.hw_connection_steering = hw;
    const auto r = bench::run_pktgen_experiment(ex);
    hw_table.add_row(
        {hw ? "on" : "off",
         ConsoleTable::num(r.processed_pps / 1e6),
         ConsoleTable::num(
             static_cast<double>(r.report.total.conn_transferred_out) /
                 ex.duration_s / 1e6, 2) + "M"});
  }
  hw_table.print(std::cout);
  std::printf("[note] steering in hardware eliminates the descriptor "
              "transfers entirely\n\n");

  std::printf("=== Future work (paper S7.3): flowlet spraying — idle-gap "
              "threshold vs throughput and reordering ===\n");
  ConsoleTable fl_table({"flowlet gap", "goodput (Gbps)", "reordered segs"});
  for (const Time gap :
       {Time{0}, 5 * kMicrosecond, 50 * kMicrosecond, 500 * kMicrosecond}) {
    nf::SyntheticNf nf(cycles);
    tcp::IperfScenario sc;
    sc.num_flows = flows;
    sc.warmup = from_seconds(0.15);
    sc.duration = from_seconds(duration);
    sc.seed = seed;
    sc.mbox.mode = core::DispatchMode::kSpray;
    sc.nic.flowlet_gap = gap;
    const auto r = run_iperf(nf, sc);
    fl_table.add_row(
        {gap == 0 ? "off" : ConsoleTable::num(to_micros(gap), 0) + " us",
         ConsoleTable::num(r.total_goodput_bps / 1e9),
         std::to_string(r.server_ooo_segments)});
  }
  fl_table.print(std::cout);
  std::printf("[note] larger gaps keep bursts of a flow on one core: less "
              "reordering, coarser balancing\n");
  return 0;
}

#include "harness.hpp"

namespace sprayer::bench {

PktGenResult run_pktgen_experiment(const PktGenExperiment& ex) {
  sim::Simulator sim;
  net::PacketPool pool(1u << 16, 256);
  nf::SyntheticNf nf(ex.nf_cycles);

  core::SprayerConfig cfg;
  cfg.mode = ex.mode;
  cfg.num_cores = ex.num_cores;
  cfg.costs = ex.costs;
  cfg.rx_batch = ex.rx_batch;
  core::SimMiddlebox mbox(sim, cfg, nf, ex.nic);
  nic::MeasureSink sink(sim);

  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  in_cfg.queue_packets = 4096;
  sim::Link gen_link(sim, in_cfg, mbox.ingress(), "gen->mbox");
  sim::LinkConfig out_cfg;
  out_cfg.queue_packets = 4096;
  sim::Link out_link(sim, out_cfg, sink, "mbox->sink");
  sim::Link back_link(sim, out_cfg, sink, "mbox->gen");
  mbox.attach_tx_link(1, out_link);
  mbox.attach_tx_link(0, back_link);

  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = ex.rate_pps;
  gen_cfg.frame_len = ex.frame_len;
  gen_cfg.num_flows = ex.num_flows;
  gen_cfg.seed = ex.seed;
  gen_cfg.poisson = ex.poisson;
  gen_cfg.new_flow_every = ex.new_flow_every;
  nic::PacketGen gen(sim, pool, gen_link, gen_cfg);
  gen.start();

  sim.run_until(from_seconds(ex.warmup_s));
  sink.reset();
  mbox.reset_stats();
  const u64 sent_before = gen.sent();

  sim.run_until(from_seconds(ex.warmup_s + ex.duration_s));

  PktGenResult result;
  result.offered_pps =
      static_cast<double>(gen.sent() - sent_before) / ex.duration_s;
  result.processed_pps =
      static_cast<double>(sink.packets()) / ex.duration_s;
  result.latency = sink.latency();
  result.report = mbox.report();
  return result;
}

}  // namespace sprayer::bench

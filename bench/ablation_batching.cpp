// Ablation — batching (DESIGN.md §5.1, paper §3.3 "we use batches of
// packets whenever possible").
//
// Sweeps the rx poll burst size in two regimes:
//   * throughput: a trivial NF (0 busy cycles) under RSS, where the
//     per-batch poll overhead is a visible share of the per-packet cost;
//   * latency: a moderate NF under Sprayer at 50 % load — larger bursts
//     amortize overhead but add queueing/batch-formation delay.
#include <cstdio>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const double duration = cli.get_double("duration", 0.02);
  const u64 seed = cli.get_u64("seed", 1);

  std::printf("=== Ablation: rx burst size ===\n");
  ConsoleTable table({"rx batch", "RSS rate, 0-cycle NF (Mpps)",
                      "Sprayer p99 @50% load, 2k-cycle NF (us)"});
  for (const u32 batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    // Throughput regime: single core (RSS, one flow), trivial NF.
    bench::PktGenExperiment tp;
    tp.mode = core::DispatchMode::kRss;
    tp.nf_cycles = 0;
    tp.rx_batch = batch;
    tp.duration_s = duration;
    tp.seed = seed;
    const auto rate = bench::run_pktgen_experiment(tp);

    // Latency regime: sprayed, 2000-cycle NF at 50 % of capacity.
    bench::PktGenExperiment lat;
    lat.mode = core::DispatchMode::kSpray;
    lat.nf_cycles = 2000;
    lat.rx_batch = batch;
    lat.duration_s = duration;
    lat.seed = seed;
    const auto cap = bench::run_pktgen_experiment(lat);
    lat.rate_pps = 0.5 * cap.processed_pps;
    lat.poisson = true;
    const auto loaded = bench::run_pktgen_experiment(lat);

    table.add_row({std::to_string(batch),
                   ConsoleTable::num(rate.processed_pps / 1e6),
                   ConsoleTable::num(to_micros(loaded.latency.p99()), 1)});
  }
  table.print(std::cout);
  std::printf("[note] small bursts pay the poll overhead per packet; the "
              "throughput column saturates once the batch amortizes it\n");
  return 0;
}

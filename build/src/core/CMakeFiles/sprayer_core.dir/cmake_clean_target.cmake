file(REMOVE_RECURSE
  "libsprayer_core.a"
)

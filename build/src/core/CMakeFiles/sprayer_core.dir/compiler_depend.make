# Empty compiler generated dependencies file for sprayer_core.
# This may be replaced when dependencies are built.

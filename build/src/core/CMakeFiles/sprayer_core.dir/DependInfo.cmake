
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/sprayer_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/sprayer_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/flow_table.cpp" "src/core/CMakeFiles/sprayer_core.dir/flow_table.cpp.o" "gcc" "src/core/CMakeFiles/sprayer_core.dir/flow_table.cpp.o.d"
  "/root/repo/src/core/middlebox.cpp" "src/core/CMakeFiles/sprayer_core.dir/middlebox.cpp.o" "gcc" "src/core/CMakeFiles/sprayer_core.dir/middlebox.cpp.o.d"
  "/root/repo/src/core/threaded.cpp" "src/core/CMakeFiles/sprayer_core.dir/threaded.cpp.o" "gcc" "src/core/CMakeFiles/sprayer_core.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sprayer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sprayer_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sprayer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/sprayer_nic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

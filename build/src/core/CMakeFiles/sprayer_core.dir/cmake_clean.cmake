file(REMOVE_RECURSE
  "CMakeFiles/sprayer_core.dir/engine.cpp.o"
  "CMakeFiles/sprayer_core.dir/engine.cpp.o.d"
  "CMakeFiles/sprayer_core.dir/flow_table.cpp.o"
  "CMakeFiles/sprayer_core.dir/flow_table.cpp.o.d"
  "CMakeFiles/sprayer_core.dir/middlebox.cpp.o"
  "CMakeFiles/sprayer_core.dir/middlebox.cpp.o.d"
  "CMakeFiles/sprayer_core.dir/threaded.cpp.o"
  "CMakeFiles/sprayer_core.dir/threaded.cpp.o.d"
  "libsprayer_core.a"
  "libsprayer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

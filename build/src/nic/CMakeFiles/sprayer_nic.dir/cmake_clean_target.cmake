file(REMOVE_RECURSE
  "libsprayer_nic.a"
)

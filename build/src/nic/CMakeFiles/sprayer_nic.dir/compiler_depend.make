# Empty compiler generated dependencies file for sprayer_nic.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/flow_director.cpp" "src/nic/CMakeFiles/sprayer_nic.dir/flow_director.cpp.o" "gcc" "src/nic/CMakeFiles/sprayer_nic.dir/flow_director.cpp.o.d"
  "/root/repo/src/nic/nic.cpp" "src/nic/CMakeFiles/sprayer_nic.dir/nic.cpp.o" "gcc" "src/nic/CMakeFiles/sprayer_nic.dir/nic.cpp.o.d"
  "/root/repo/src/nic/pktgen.cpp" "src/nic/CMakeFiles/sprayer_nic.dir/pktgen.cpp.o" "gcc" "src/nic/CMakeFiles/sprayer_nic.dir/pktgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sprayer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sprayer_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprayer_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

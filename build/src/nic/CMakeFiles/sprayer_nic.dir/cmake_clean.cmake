file(REMOVE_RECURSE
  "CMakeFiles/sprayer_nic.dir/flow_director.cpp.o"
  "CMakeFiles/sprayer_nic.dir/flow_director.cpp.o.d"
  "CMakeFiles/sprayer_nic.dir/nic.cpp.o"
  "CMakeFiles/sprayer_nic.dir/nic.cpp.o.d"
  "CMakeFiles/sprayer_nic.dir/pktgen.cpp.o"
  "CMakeFiles/sprayer_nic.dir/pktgen.cpp.o.d"
  "libsprayer_nic.a"
  "libsprayer_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsprayer_runtime.a"
)

# Empty dependencies file for sprayer_runtime.
# This may be replaced when dependencies are built.

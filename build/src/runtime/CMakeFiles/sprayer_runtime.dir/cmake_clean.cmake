file(REMOVE_RECURSE
  "CMakeFiles/sprayer_runtime.dir/worker_group.cpp.o"
  "CMakeFiles/sprayer_runtime.dir/worker_group.cpp.o.d"
  "libsprayer_runtime.a"
  "libsprayer_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sprayer_nf.dir/aho_corasick.cpp.o"
  "CMakeFiles/sprayer_nf.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/dpi.cpp.o"
  "CMakeFiles/sprayer_nf.dir/dpi.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/firewall.cpp.o"
  "CMakeFiles/sprayer_nf.dir/firewall.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/load_balancer.cpp.o"
  "CMakeFiles/sprayer_nf.dir/load_balancer.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/monitor.cpp.o"
  "CMakeFiles/sprayer_nf.dir/monitor.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/nat.cpp.o"
  "CMakeFiles/sprayer_nf.dir/nat.cpp.o.d"
  "CMakeFiles/sprayer_nf.dir/synthetic.cpp.o"
  "CMakeFiles/sprayer_nf.dir/synthetic.cpp.o.d"
  "libsprayer_nf.a"
  "libsprayer_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsprayer_nf.a"
)

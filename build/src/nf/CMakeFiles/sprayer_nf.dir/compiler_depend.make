# Empty compiler generated dependencies file for sprayer_nf.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/aho_corasick.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/aho_corasick.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/nf/dpi.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/dpi.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/dpi.cpp.o.d"
  "/root/repo/src/nf/firewall.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/firewall.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/firewall.cpp.o.d"
  "/root/repo/src/nf/load_balancer.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/load_balancer.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/load_balancer.cpp.o.d"
  "/root/repo/src/nf/monitor.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/monitor.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/monitor.cpp.o.d"
  "/root/repo/src/nf/nat.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/nat.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/nat.cpp.o.d"
  "/root/repo/src/nf/synthetic.cpp" "src/nf/CMakeFiles/sprayer_nf.dir/synthetic.cpp.o" "gcc" "src/nf/CMakeFiles/sprayer_nf.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sprayer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sprayer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sprayer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/sprayer_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sprayer_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprayer_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsprayer_net.a"
)

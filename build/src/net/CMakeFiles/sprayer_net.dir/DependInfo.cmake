
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/sprayer_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/sprayer_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/ip_addr.cpp" "src/net/CMakeFiles/sprayer_net.dir/ip_addr.cpp.o" "gcc" "src/net/CMakeFiles/sprayer_net.dir/ip_addr.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/sprayer_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/sprayer_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/packet_builder.cpp" "src/net/CMakeFiles/sprayer_net.dir/packet_builder.cpp.o" "gcc" "src/net/CMakeFiles/sprayer_net.dir/packet_builder.cpp.o.d"
  "/root/repo/src/net/packet_pool.cpp" "src/net/CMakeFiles/sprayer_net.dir/packet_pool.cpp.o" "gcc" "src/net/CMakeFiles/sprayer_net.dir/packet_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sprayer_net.dir/checksum.cpp.o"
  "CMakeFiles/sprayer_net.dir/checksum.cpp.o.d"
  "CMakeFiles/sprayer_net.dir/ip_addr.cpp.o"
  "CMakeFiles/sprayer_net.dir/ip_addr.cpp.o.d"
  "CMakeFiles/sprayer_net.dir/packet.cpp.o"
  "CMakeFiles/sprayer_net.dir/packet.cpp.o.d"
  "CMakeFiles/sprayer_net.dir/packet_builder.cpp.o"
  "CMakeFiles/sprayer_net.dir/packet_builder.cpp.o.d"
  "CMakeFiles/sprayer_net.dir/packet_pool.cpp.o"
  "CMakeFiles/sprayer_net.dir/packet_pool.cpp.o.d"
  "libsprayer_net.a"
  "libsprayer_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

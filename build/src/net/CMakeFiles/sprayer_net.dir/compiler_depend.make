# Empty compiler generated dependencies file for sprayer_net.
# This may be replaced when dependencies are built.

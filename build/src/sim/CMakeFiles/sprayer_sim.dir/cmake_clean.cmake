file(REMOVE_RECURSE
  "CMakeFiles/sprayer_sim.dir/link.cpp.o"
  "CMakeFiles/sprayer_sim.dir/link.cpp.o.d"
  "libsprayer_sim.a"
  "libsprayer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

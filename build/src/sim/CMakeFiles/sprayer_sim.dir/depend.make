# Empty dependencies file for sprayer_sim.
# This may be replaced when dependencies are built.

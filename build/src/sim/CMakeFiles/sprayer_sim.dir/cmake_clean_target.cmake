file(REMOVE_RECURSE
  "libsprayer_sim.a"
)

# Empty compiler generated dependencies file for sprayer_tcp.
# This may be replaced when dependencies are built.

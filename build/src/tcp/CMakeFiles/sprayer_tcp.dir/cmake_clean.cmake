file(REMOVE_RECURSE
  "CMakeFiles/sprayer_tcp.dir/cc.cpp.o"
  "CMakeFiles/sprayer_tcp.dir/cc.cpp.o.d"
  "CMakeFiles/sprayer_tcp.dir/connection.cpp.o"
  "CMakeFiles/sprayer_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/sprayer_tcp.dir/host.cpp.o"
  "CMakeFiles/sprayer_tcp.dir/host.cpp.o.d"
  "CMakeFiles/sprayer_tcp.dir/iperf.cpp.o"
  "CMakeFiles/sprayer_tcp.dir/iperf.cpp.o.d"
  "libsprayer_tcp.a"
  "libsprayer_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

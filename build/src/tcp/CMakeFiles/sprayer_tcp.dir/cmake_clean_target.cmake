file(REMOVE_RECURSE
  "libsprayer_tcp.a"
)

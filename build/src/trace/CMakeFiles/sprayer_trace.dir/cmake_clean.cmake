file(REMOVE_RECURSE
  "CMakeFiles/sprayer_trace.dir/analysis.cpp.o"
  "CMakeFiles/sprayer_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/sprayer_trace.dir/pcap.cpp.o"
  "CMakeFiles/sprayer_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/sprayer_trace.dir/replay.cpp.o"
  "CMakeFiles/sprayer_trace.dir/replay.cpp.o.d"
  "CMakeFiles/sprayer_trace.dir/workload.cpp.o"
  "CMakeFiles/sprayer_trace.dir/workload.cpp.o.d"
  "libsprayer_trace.a"
  "libsprayer_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sprayer_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsprayer_trace.a"
)

file(REMOVE_RECURSE
  "libsprayer_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sprayer_common.dir/config.cpp.o"
  "CMakeFiles/sprayer_common.dir/config.cpp.o.d"
  "CMakeFiles/sprayer_common.dir/table.cpp.o"
  "CMakeFiles/sprayer_common.dir/table.cpp.o.d"
  "libsprayer_common.a"
  "libsprayer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sprayer_common.
# This may be replaced when dependencies are built.

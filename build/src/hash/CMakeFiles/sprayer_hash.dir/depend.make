# Empty dependencies file for sprayer_hash.
# This may be replaced when dependencies are built.

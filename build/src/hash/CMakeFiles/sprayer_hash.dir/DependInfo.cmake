
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/crc32c.cpp" "src/hash/CMakeFiles/sprayer_hash.dir/crc32c.cpp.o" "gcc" "src/hash/CMakeFiles/sprayer_hash.dir/crc32c.cpp.o.d"
  "/root/repo/src/hash/toeplitz.cpp" "src/hash/CMakeFiles/sprayer_hash.dir/toeplitz.cpp.o" "gcc" "src/hash/CMakeFiles/sprayer_hash.dir/toeplitz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sprayer_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsprayer_hash.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sprayer_hash.dir/crc32c.cpp.o"
  "CMakeFiles/sprayer_hash.dir/crc32c.cpp.o.d"
  "CMakeFiles/sprayer_hash.dir/toeplitz.cpp.o"
  "CMakeFiles/sprayer_hash.dir/toeplitz.cpp.o.d"
  "libsprayer_hash.a"
  "libsprayer_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

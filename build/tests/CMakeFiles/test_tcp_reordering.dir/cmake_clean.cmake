file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_reordering.dir/test_tcp_reordering.cpp.o"
  "CMakeFiles/test_tcp_reordering.dir/test_tcp_reordering.cpp.o.d"
  "test_tcp_reordering"
  "test_tcp_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

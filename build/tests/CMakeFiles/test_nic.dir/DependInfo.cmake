
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nic.cpp" "tests/CMakeFiles/test_nic.dir/test_nic.cpp.o" "gcc" "tests/CMakeFiles/test_nic.dir/test_nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/sprayer_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/sprayer_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/sprayer_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sprayer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/sprayer_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sprayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sprayer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sprayer_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sprayer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sprayer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

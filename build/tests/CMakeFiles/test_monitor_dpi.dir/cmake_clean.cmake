file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_dpi.dir/test_monitor_dpi.cpp.o"
  "CMakeFiles/test_monitor_dpi.dir/test_monitor_dpi.cpp.o.d"
  "test_monitor_dpi"
  "test_monitor_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_packet_pool.dir/test_packet_pool.cpp.o"
  "CMakeFiles/test_packet_pool.dir/test_packet_pool.cpp.o.d"
  "test_packet_pool"
  "test_packet_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

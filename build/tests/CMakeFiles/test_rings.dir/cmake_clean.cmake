file(REMOVE_RECURSE
  "CMakeFiles/test_rings.dir/test_rings.cpp.o"
  "CMakeFiles/test_rings.dir/test_rings.cpp.o.d"
  "test_rings"
  "test_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

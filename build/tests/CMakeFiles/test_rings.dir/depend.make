# Empty dependencies file for test_rings.
# This may be replaced when dependencies are built.

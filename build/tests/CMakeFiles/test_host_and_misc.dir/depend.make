# Empty dependencies file for test_host_and_misc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_host_and_misc.dir/test_host_and_misc.cpp.o"
  "CMakeFiles/test_host_and_misc.dir/test_host_and_misc.cpp.o.d"
  "test_host_and_misc"
  "test_host_and_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_and_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

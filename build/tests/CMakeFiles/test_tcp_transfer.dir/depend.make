# Empty dependencies file for test_tcp_transfer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_transfer.dir/test_tcp_transfer.cpp.o"
  "CMakeFiles/test_tcp_transfer.dir/test_tcp_transfer.cpp.o.d"
  "test_tcp_transfer"
  "test_tcp_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

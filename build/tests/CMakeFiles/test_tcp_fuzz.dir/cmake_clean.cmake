file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_fuzz.dir/test_tcp_fuzz.cpp.o"
  "CMakeFiles/test_tcp_fuzz.dir/test_tcp_fuzz.cpp.o.d"
  "test_tcp_fuzz"
  "test_tcp_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

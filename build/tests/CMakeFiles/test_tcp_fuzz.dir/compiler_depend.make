# Empty compiler generated dependencies file for test_tcp_fuzz.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_five_tuple.
# This may be replaced when dependencies are built.

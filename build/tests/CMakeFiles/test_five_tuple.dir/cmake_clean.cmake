file(REMOVE_RECURSE
  "CMakeFiles/test_five_tuple.dir/test_five_tuple.cpp.o"
  "CMakeFiles/test_five_tuple.dir/test_five_tuple.cpp.o.d"
  "test_five_tuple"
  "test_five_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_five_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

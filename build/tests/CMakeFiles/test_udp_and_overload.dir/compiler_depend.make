# Empty compiler generated dependencies file for test_udp_and_overload.
# This may be replaced when dependencies are built.

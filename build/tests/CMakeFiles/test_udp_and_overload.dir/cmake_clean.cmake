file(REMOVE_RECURSE
  "CMakeFiles/test_udp_and_overload.dir/test_udp_and_overload.cpp.o"
  "CMakeFiles/test_udp_and_overload.dir/test_udp_and_overload.cpp.o.d"
  "test_udp_and_overload"
  "test_udp_and_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udp_and_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

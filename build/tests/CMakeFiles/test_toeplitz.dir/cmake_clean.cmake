file(REMOVE_RECURSE
  "CMakeFiles/test_toeplitz.dir/test_toeplitz.cpp.o"
  "CMakeFiles/test_toeplitz.dir/test_toeplitz.cpp.o.d"
  "test_toeplitz"
  "test_toeplitz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toeplitz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_toeplitz.
# This may be replaced when dependencies are built.

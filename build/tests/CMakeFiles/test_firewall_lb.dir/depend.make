# Empty dependencies file for test_firewall_lb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_firewall_lb.dir/test_firewall_lb.cpp.o"
  "CMakeFiles/test_firewall_lb.dir/test_firewall_lb.cpp.o.d"
  "test_firewall_lb"
  "test_firewall_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firewall_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

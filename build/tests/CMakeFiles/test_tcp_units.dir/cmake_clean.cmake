file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_units.dir/test_tcp_units.cpp.o"
  "CMakeFiles/test_tcp_units.dir/test_tcp_units.cpp.o.d"
  "test_tcp_units"
  "test_tcp_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

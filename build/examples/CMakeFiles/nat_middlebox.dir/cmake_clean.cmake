file(REMOVE_RECURSE
  "CMakeFiles/nat_middlebox.dir/nat_middlebox.cpp.o"
  "CMakeFiles/nat_middlebox.dir/nat_middlebox.cpp.o.d"
  "nat_middlebox"
  "nat_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nat_middlebox.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for threaded_firewall.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/threaded_firewall.dir/threaded_firewall.cpp.o"
  "CMakeFiles/threaded_firewall.dir/threaded_firewall.cpp.o.d"
  "threaded_firewall"
  "threaded_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_redirect.dir/ablation_redirect.cpp.o"
  "CMakeFiles/ablation_redirect.dir/ablation_redirect.cpp.o.d"
  "ablation_redirect"
  "ablation_redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_redirect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_flow_count.dir/fig7_flow_count.cpp.o"
  "CMakeFiles/fig7_flow_count.dir/fig7_flow_count.cpp.o.d"
  "fig7_flow_count"
  "fig7_flow_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_flow_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

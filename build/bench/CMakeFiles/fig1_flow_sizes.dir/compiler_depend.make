# Empty compiler generated dependencies file for fig1_flow_sizes.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig2_concurrent_flows.
# This may be replaced when dependencies are built.

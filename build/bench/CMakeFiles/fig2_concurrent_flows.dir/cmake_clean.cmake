file(REMOVE_RECURSE
  "CMakeFiles/fig2_concurrent_flows.dir/fig2_concurrent_flows.cpp.o"
  "CMakeFiles/fig2_concurrent_flows.dir/fig2_concurrent_flows.cpp.o.d"
  "fig2_concurrent_flows"
  "fig2_concurrent_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_concurrent_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

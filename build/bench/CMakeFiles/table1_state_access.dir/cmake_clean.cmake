file(REMOVE_RECURSE
  "CMakeFiles/table1_state_access.dir/table1_state_access.cpp.o"
  "CMakeFiles/table1_state_access.dir/table1_state_access.cpp.o.d"
  "table1_state_access"
  "table1_state_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_state_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_state_access.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig9_fairness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_fairness.dir/fig9_fairness.cpp.o"
  "CMakeFiles/fig9_fairness.dir/fig9_fairness.cpp.o.d"
  "fig9_fairness"
  "fig9_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

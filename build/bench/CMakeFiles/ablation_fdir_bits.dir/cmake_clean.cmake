file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdir_bits.dir/ablation_fdir_bits.cpp.o"
  "CMakeFiles/ablation_fdir_bits.dir/ablation_fdir_bits.cpp.o.d"
  "ablation_fdir_bits"
  "ablation_fdir_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdir_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_fdir_bits.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig6_single_flow.
# This may be replaced when dependencies are built.

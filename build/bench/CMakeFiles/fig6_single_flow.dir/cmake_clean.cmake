file(REMOVE_RECURSE
  "CMakeFiles/fig6_single_flow.dir/fig6_single_flow.cpp.o"
  "CMakeFiles/fig6_single_flow.dir/fig6_single_flow.cpp.o.d"
  "fig6_single_flow"
  "fig6_single_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_single_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

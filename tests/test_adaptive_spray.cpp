// Adaptive spraying (DESIGN.md §12): Flow Director exact-vs-checksum
// precedence, elephant/mice hysteresis (no rule-churn flapping), rule-budget
// exhaustion falling back to spray, SimNic p2c steering, and a 4-core churn
// run asserting pinned-flow packets never change cores mid-flow while
// packet conservation holds.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/adaptive_spray.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nic/nic.hpp"
#include "nic/pktgen.hpp"
#include "nic/rss.hpp"
#include "sim/simulator.hpp"

namespace sprayer::core {
namespace {

net::Packet* make_packet(net::PacketPool& pool, const net::FiveTuple& t,
                         u8 flags, u64 payload_seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  net::Packet* pkt = net::build_tcp_raw(pool, spec);
  if (pkt != nullptr) pkt->parse();
  return pkt;
}

/// Memoize the symmetric RSS hash the way the injection driver does.
u32 stamp_rss(net::Packet& pkt, nic::RssEngine& rss) {
  const u32 h = rss.hash_of(pkt);
  pkt.set_flow_hash(h);
  return h;
}

// ---------------------------------------------------------------------------
// FlowDirector precedence and budget contract (satellite: nic layer)
// ---------------------------------------------------------------------------

TEST(FlowDirectorPrecedence, ExactRuleOverridesChecksumSprayAndRestores) {
  nic::FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(4).ok());

  net::PacketPool pool(8, 256);
  const auto flows = nic::random_tcp_flows(1, 0x5eed);
  net::Packet* pkt = make_packet(pool, flows[0], net::TcpFlags::kAck, 1);
  ASSERT_NE(pkt, nullptr);

  const auto sprayed = fdir.match_detail(*pkt);
  ASSERT_TRUE(sprayed.hit());
  EXPECT_EQ(sprayed.kind, nic::FlowDirector::MatchKind::kChecksum);

  // Pin to a provably different queue: the exact rule must win.
  const u16 pin_queue = static_cast<u16>((sprayed.queue + 1) % 4);
  ASSERT_TRUE(fdir.add_exact_rule(pkt->five_tuple(), pin_queue).ok());
  EXPECT_EQ(fdir.exact_rule_count(), 1u);

  const auto pinned = fdir.match_detail(*pkt);
  EXPECT_EQ(pinned.kind, nic::FlowDirector::MatchKind::kExact);
  EXPECT_EQ(pinned.queue, pin_queue);
  // The legacy match() surface agrees with match_detail().
  ASSERT_TRUE(fdir.match(*pkt).has_value());
  EXPECT_EQ(*fdir.match(*pkt), pin_queue);

  // Eviction hook: removal restores the checksum verdict exactly.
  EXPECT_TRUE(fdir.remove_exact_rule(pkt->five_tuple()));
  const auto restored = fdir.match_detail(*pkt);
  EXPECT_EQ(restored.kind, nic::FlowDirector::MatchKind::kChecksum);
  EXPECT_EQ(restored.queue, sprayed.queue);
  EXPECT_FALSE(fdir.remove_exact_rule(pkt->five_tuple()));  // idempotent

  pool.free(pkt);
}

TEST(FlowDirectorPrecedence, BudgetExhaustionIsDistinctFromDuplicate) {
  nic::FlowDirector fdir;
  net::FiveTuple t;
  t.dst_ip = net::Ipv4Addr{192, 168, 0, 1};
  t.src_port = 1000;
  t.dst_port = 80;
  t.protocol = net::kProtoTcp;

  t.src_ip = net::Ipv4Addr{0x0a000000u};
  ASSERT_TRUE(fdir.add_exact_rule(t, 0).ok());
  const Status dup = fdir.add_exact_rule(t, 1);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Error::Code::kAlreadyExists);

  for (u32 i = 1; i < nic::FlowDirector::kMaxRules; ++i) {
    t.src_ip = net::Ipv4Addr{0x0a000000u | i};
    ASSERT_TRUE(fdir.add_exact_rule(t, 0).ok());
  }
  EXPECT_EQ(fdir.remaining_exact_capacity(), 0u);

  t.src_ip = net::Ipv4Addr{0x0b000000u};
  const Status full = fdir.add_exact_rule(t, 0);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, Error::Code::kExhausted);

  // The eviction hook frees budget: removal makes the same add succeed.
  t.src_ip = net::Ipv4Addr{0x0a000000u};
  EXPECT_TRUE(fdir.remove_exact_rule(t));
  EXPECT_EQ(fdir.remaining_exact_capacity(), 1u);
  t.src_ip = net::Ipv4Addr{0x0b000000u};
  EXPECT_TRUE(fdir.add_exact_rule(t, 0).ok());
}

// ---------------------------------------------------------------------------
// AdaptiveSprayPolicy unit behavior (driver-side, ticks driven by hand)
// ---------------------------------------------------------------------------

struct PolicyFixture {
  static constexpr u32 kCores = 4;

  AdaptiveSprayConfig acfg;
  nic::FlowDirector fdir;
  CorePicker picker{kCores};
  nic::RssEngine rss{kCores};
  net::PacketPool pool{64, 256};

  PolicyFixture() {
    acfg.enabled = true;
    acfg.flow_sets = 64;       // 128 slots: evict_scan covers them all
    acfg.evict_scan = 128;
    acfg.sketch_slots = 256;
    acfg.promote_count = 100;
    acfg.demote_count = 50;
    acfg.demote_dwell_ticks = 2;
    acfg.idle_timeout = 10 * kMillisecond;
    acfg.p2c = false;          // no depth probe in unit tests
    EXPECT_TRUE(fdir.program_checksum_spray(kCores).ok());
  }
};

TEST(AdaptiveSprayPolicy, PromoteDemoteHysteresisWithoutRuleChurn) {
  PolicyFixture fx;
  AdaptiveSprayPolicy policy(fx.acfg, PolicyFixture::kCores, fx.fdir,
                             fx.picker);

  const auto flows = nic::random_tcp_flows(1, 0xabc);
  net::Packet* pkt = make_packet(fx.pool, flows[0], net::TcpFlags::kAck, 1);
  ASSERT_NE(pkt, nullptr);
  const u32 h = stamp_rss(*pkt, fx.rss);
  const u16 designated = static_cast<u16>(fx.picker.pick_hash(h));

  // First sight: presumed mouse, pinned to the designated queue.
  const Time t0 = kMillisecond;
  EXPECT_EQ(policy.steer(*pkt, h, t0),
            designated);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 1u);
  EXPECT_EQ(policy.stats().pins_installed, 1u);
  EXPECT_EQ(policy.stats().pinned_flows, 1u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(policy.steer(*pkt, h, t0),
              designated);
  }

  // Heavy rate -> promoted to elephant: the pin rule is dropped.
  for (int i = 0; i < 150; ++i) policy.sketch(0).update(h);
  policy.tick(t0);
  EXPECT_EQ(policy.stats().elephant_promotions, 1u);
  EXPECT_EQ(policy.stats().pinned_flows, 0u);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 0u);

  // Mid-band rate (between demote and promote): hysteresis holds the
  // elephant state — no flapping, no new rules.
  policy.sketch(0).decay();  // 150 -> 75, inside [50, 100)
  policy.tick(t0);
  policy.tick(t0);
  policy.tick(t0);
  EXPECT_EQ(policy.stats().elephant_promotions, 1u);
  EXPECT_EQ(policy.stats().elephant_demotions, 0u);
  EXPECT_EQ(policy.stats().pins_installed, 1u);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 0u);

  // Rate drops below demote_count: demotion only after the dwell.
  policy.sketch(0).decay();  // 75 -> 37, below 50
  policy.tick(t0);           // dwell 1 of 2
  EXPECT_EQ(policy.stats().elephant_demotions, 0u);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 0u);
  policy.tick(t0);           // dwell 2 of 2 -> re-pin
  EXPECT_EQ(policy.stats().elephant_demotions, 1u);
  EXPECT_EQ(policy.stats().pinned_flows, 1u);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 1u);
  // Across the whole promote/demote cycle exactly two rule installs
  // happened (initial pin + demotion re-pin): no churn.
  EXPECT_EQ(policy.stats().pins_installed, 2u);
  EXPECT_EQ(policy.steer(*pkt, h, t0),
            designated);

  fx.pool.free(pkt);
}

TEST(AdaptiveSprayPolicy, RuleBudgetExhaustionFallsBackToSpray) {
  PolicyFixture fx;
  fx.acfg.rule_budget = 2;
  AdaptiveSprayPolicy policy(fx.acfg, PolicyFixture::kCores, fx.fdir,
                             fx.picker);

  const auto flows = nic::random_tcp_flows(3, 0x77);
  std::vector<net::Packet*> pkts;
  std::vector<u32> hashes;
  for (const auto& f : flows) {
    net::Packet* pkt = make_packet(fx.pool, f, net::TcpFlags::kAck, 1);
    ASSERT_NE(pkt, nullptr);
    hashes.push_back(stamp_rss(*pkt, fx.rss));
    pkts.push_back(pkt);
  }

  // Two pins fit the budget; the third mouse must fall back to spraying —
  // a valid queue, not an error.
  const Time t0 = kMillisecond;
  for (int i = 0; i < 3; ++i) {
    const u16 q =
        policy.steer(*pkts[i], hashes[i], t0);
    EXPECT_LT(q, PolicyFixture::kCores);
  }
  EXPECT_EQ(policy.stats().pinned_flows, 2u);
  EXPECT_EQ(policy.stats().pin_fallbacks, 1u);
  EXPECT_EQ(fx.fdir.exact_rule_count(), 2u);

  // Flows 0 and 1 go idle; flow 2 stays active. The maintenance sweep must
  // evict the idle rules and then claim the freed budget for the fallback.
  const Time t1 = t0 + fx.acfg.idle_timeout + 5 * kMillisecond;
  (void)policy.steer(*pkts[2], hashes[2], t1);
  policy.tick(t1);
  policy.tick(t1);  // sweep order is arbitrary: one more pass to re-pin
  EXPECT_EQ(policy.stats().rule_evictions, 2u);
  EXPECT_EQ(policy.stats().pinned_flows, 1u);
  EXPECT_EQ(policy.stats().pins_installed, 3u);
  EXPECT_EQ(policy.steer(*pkts[2], hashes[2], t1),
            static_cast<u16>(fx.picker.pick_hash(hashes[2])));

  for (net::Packet* pkt : pkts) fx.pool.free(pkt);
}

// ---------------------------------------------------------------------------
// SimNic queue-depth-aware spraying (p2c hardware analog)
// ---------------------------------------------------------------------------

TEST(SimNicP2c, SpraysTowardShallowQueuesButNeverDeflectsPins) {
  sim::Simulator sim;
  nic::NicConfig ncfg;
  ncfg.num_queues = 2;
  ncfg.queue_depth = 512;
  ncfg.fdir_max_pps = 0;  // no classification ceiling in this test
  ncfg.p2c_spray = true;
  nic::SimNic nic(sim, ncfg);
  ASSERT_TRUE(nic.fdir().program_checksum_spray(2).ok());

  net::PacketPool pool(1024, 256);
  const auto flows = nic::random_tcp_flows(16, 0x1234);

  // Spray 256 packets (payload entropy varies the checksum) without
  // polling: with power-of-two choices the two queues can never drift more
  // than one packet apart.
  for (int i = 0; i < 256; ++i) {
    net::Packet* pkt = make_packet(pool, flows[i % flows.size()],
                                   net::TcpFlags::kAck,
                                   static_cast<u64>(i) * 0x9e3779b97f4a7c15ULL);
    ASSERT_NE(pkt, nullptr);
    nic.receive(pkt);
  }
  const u32 d0 = nic.queue_depth(0);
  const u32 d1 = nic.queue_depth(1);
  EXPECT_EQ(d0 + d1, 256u);
  EXPECT_LE(d0 > d1 ? d0 - d1 : d1 - d0, 1u);
  EXPECT_GT(nic.counters().p2c_deflections, 0u);

  // An exact-pinned flow ignores depth: every packet lands on its pinned
  // queue even while the other queue is shallower.
  const auto pinned_flow = nic::random_tcp_flows(1, 0x9999)[0];
  ASSERT_TRUE(nic.fdir().add_exact_rule(pinned_flow, 0).ok());
  const u64 deflections_before = nic.counters().p2c_deflections;
  const u32 q0_before = nic.queue_depth(0);
  for (int i = 0; i < 64; ++i) {
    net::Packet* pkt = make_packet(pool, pinned_flow, net::TcpFlags::kAck,
                                   static_cast<u64>(i));
    ASSERT_NE(pkt, nullptr);
    nic.receive(pkt);
  }
  EXPECT_EQ(nic.queue_depth(0), q0_before + 64);
  EXPECT_EQ(nic.counters().p2c_deflections, deflections_before);

  // Drain both queues and return every packet to the pool.
  net::Packet* out[64];
  for (u16 q = 0; q < 2; ++q) {
    u32 n;
    while ((n = nic.rx_burst(q, out, 64)) > 0) {
      for (u32 i = 0; i < n; ++i) out[i]->pool()->free(out[i]);
    }
  }
  EXPECT_EQ(pool.available(), pool.size());
}

// ---------------------------------------------------------------------------
// Threaded 4-core churn: pinned flows never change cores mid-flow
// ---------------------------------------------------------------------------

/// Records, per flow hash, the set of cores whose worker processed its
/// packets. Mutex-protected map: this is a test probe, and the lock also
/// gives TSan a clean happens-before edge for the final read.
class CoreRecordingNf final : public INetworkFunction {
 public:
  void connection_packets(runtime::PacketBatch& batch, NfContext& ctx,
                          BatchVerdicts& verdicts) override {
    record(batch, ctx);
    (void)verdicts;  // forward everything
  }
  void regular_packets(runtime::PacketBatch& batch, NfContext& ctx,
                       BatchVerdicts& verdicts) override {
    record(batch, ctx);
    (void)verdicts;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "core_recorder";
  }

  [[nodiscard]] std::unordered_map<u32, u8> core_masks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return masks_;
  }

 private:
  void record(runtime::PacketBatch& batch, NfContext& ctx) {
    std::lock_guard<std::mutex> lock(mu_);
    for (net::Packet* pkt : batch) {
      if (pkt->has_flow_hash()) {
        masks_[pkt->flow_hash()] |= static_cast<u8>(1u << ctx.core());
      }
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<u32, u8> masks_;
};

TEST(AdaptiveSprayThreaded, PinnedFlowsNeverChangeCoresAcrossChurn) {
  constexpr u32 kCores = 4;
  net::PacketPool pool(8192, 256);
  CoreRecordingNf nf;
  std::atomic<u64> forwarded{0};

  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.housekeeping_interval = kMillisecond;
  cfg.reorder_observatory = true;
  cfg.adaptive.enabled = true;
  cfg.adaptive.flow_sets = 1024;
  cfg.adaptive.evict_scan = 2048;  // every tick sweeps the whole cache
  cfg.adaptive.update_interval = kMillisecond;
  cfg.adaptive.idle_timeout = 5 * kMillisecond;
  cfg.adaptive.promote_count = u64{1} << 40;  // nothing ever promotes
  ThreadedMiddlebox mbox(cfg, nf,
                         ThreadedMiddlebox::TxBatchHandler{
                             [&](std::span<net::Packet* const> pkts) {
                               forwarded.fetch_add(
                                   pkts.size(), std::memory_order_relaxed);
                               net::free_packets(pkts);
                             }});
  mbox.start();

  // Pick 64 flows whose flow-cache set indices are all distinct, so the
  // test exercises rule churn (evict/re-pin) and never the 2-way-conflict
  // fallback — that keeps `unpinned_sprays == 0` a hard invariant below.
  nic::RssEngine rss(kCores);
  const auto candidates = nic::random_tcp_flows(512, 0xaaaa);
  std::vector<net::FiveTuple> wave_a;
  std::vector<net::FiveTuple> wave_b;
  {
    std::unordered_map<u32, bool> used_sets;
    for (const auto& f : candidates) {
      const u32 set = rss.hash_of(f) & (cfg.adaptive.flow_sets - 1);
      if (used_sets.try_emplace(set).second) {
        (wave_a.size() < 32 ? wave_a : wave_b).push_back(f);
        if (wave_b.size() == 32) break;
      }
    }
  }
  ASSERT_EQ(wave_a.size(), 32u);
  ASSERT_EQ(wave_b.size(), 32u);
  std::vector<u32> tracked_hashes;

  u64 injected = 0;
  auto pump = [&](const std::vector<net::FiveTuple>& flows, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const auto& f : flows) {
        net::Packet* pkt = make_packet(
            pool, f, r == 0 ? net::TcpFlags::kSyn : net::TcpFlags::kAck,
            static_cast<u64>(r) * 31 + 7);
        if (pkt == nullptr) {  // pool backpressure: let workers drain
          std::this_thread::yield();
          continue;
        }
        if (r == 0) tracked_hashes.push_back(rss.hash_of(*pkt));
        if (mbox.inject(pkt)) ++injected;
      }
    }
  };

  // Wave A, then a long-enough gap that its pins go idle and get evicted
  // while wave B churns the cache, then wave A again (re-pinned).
  pump(wave_a, 40);
  mbox.wait_idle();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  pump(wave_b, 40);
  mbox.wait_idle();
  pump(wave_a, 40);
  mbox.wait_idle();
  mbox.stop();

  // Conservation: every accepted packet came out exactly once.
  EXPECT_EQ(forwarded.load(), injected);
  EXPECT_EQ(pool.available(), pool.size());

  // Every flow stayed a pinned mouse (no promotions, no cache conflicts
  // forcing an unpinned spray) ...
  ASSERT_NE(mbox.adaptive(), nullptr);
  const auto& st = mbox.adaptive()->stats();
  EXPECT_EQ(st.elephant_promotions, 0u);
  EXPECT_EQ(st.pin_fallbacks, 0u);
  EXPECT_EQ(st.unpinned_sprays, 0u);
  // ... and rules did churn across the idle gap (evictions + re-pins).
  EXPECT_GT(st.rule_evictions, 0u);
  EXPECT_GT(st.pins_installed, 64u);

  // The invariant: a pinned flow's packets were processed on exactly one
  // core — its designated core — even across rule eviction and re-pinning.
  const auto masks = nf.core_masks();
  for (const u32 h : tracked_hashes) {
    const auto it = masks.find(h);
    ASSERT_NE(it, masks.end());
    const u8 mask = it->second;
    EXPECT_EQ(mask & (mask - 1), 0)  // power of two: exactly one core
        << "flow hash " << h << " ran on cores mask " << int{mask};
    EXPECT_EQ(mask, 1u << mbox.picker().pick_hash(h));
  }

  // Pinned flows take the per-flow FIFO path end to end: the observatory
  // must have seen zero out-of-order packets.
  const auto reorder = mbox.reorder_stats();
  EXPECT_GT(reorder.packets_observed, 0u);
  EXPECT_EQ(reorder.ooo_packets, 0u);
}

}  // namespace
}  // namespace sprayer::core

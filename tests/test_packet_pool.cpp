// PacketPool: exhaustion, reuse, RAII handles, bulk operations, and
// thread-cache safety (alloc/free storms with slot accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/packet_pool.hpp"

namespace sprayer::net {
namespace {

TEST(PacketPool, AllocUntilExhaustedThenRecover) {
  PacketPool pool(16, 256);
  EXPECT_EQ(pool.size(), 16u);
  EXPECT_EQ(pool.available(), 16u);

  std::vector<Packet*> taken;
  for (u32 i = 0; i < 16; ++i) {
    Packet* p = pool.alloc_raw();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->capacity(), 256u);
    taken.push_back(p);
  }
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc_raw(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);

  for (Packet* p : taken) pool.free(p);
  EXPECT_EQ(pool.available(), 16u);
  EXPECT_NE(pool.alloc_raw(), nullptr);
}

TEST(PacketPool, MetadataResetOnAlloc) {
  PacketPool pool(2, 128);
  Packet* p = pool.alloc_raw();
  ASSERT_NE(p, nullptr);
  p->set_len(64);
  p->ingress_port = 3;
  p->ts_gen = 12345;
  p->user_tag = 99;
  pool.free(p);

  Packet* q = pool.alloc_raw();
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->len(), 0u);
  EXPECT_EQ(q->ingress_port, 0);
  EXPECT_EQ(q->ts_gen, 0u);
  EXPECT_EQ(q->user_tag, 0u);
  EXPECT_FALSE(q->parsed());
  pool.free(q);
}

TEST(PacketPool, RaiiHandleReturnsToPool) {
  PacketPool pool(4, 128);
  {
    PacketPtr a = pool.alloc();
    PacketPtr b = pool.alloc();
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPool, DistinctBuffers) {
  PacketPool pool(8, 128);
  Packet* a = pool.alloc_raw();
  Packet* b = pool.alloc_raw();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->data()[0] = 0x11;
  b->data()[0] = 0x22;
  EXPECT_EQ(a->data()[0], 0x11);
  EXPECT_NE(a->data(), b->data());
  pool.free(a);
  pool.free(b);
}

TEST(PacketPool, BulkAllocAndFree) {
  PacketPool pool(64, 128);
  std::vector<Packet*> pkts(80, nullptr);
  // Only 64 slots exist: bulk alloc returns the available prefix.
  EXPECT_EQ(pool.alloc_bulk(pkts), 64u);
  EXPECT_EQ(pool.available(), 0u);
  for (u32 i = 0; i < 64; ++i) {
    ASSERT_NE(pkts[i], nullptr);
    for (u32 j = i + 1; j < 64; ++j) EXPECT_NE(pkts[i], pkts[j]);
  }
  pool.free_bulk(std::span<Packet* const>{pkts.data(), 64});
  EXPECT_EQ(pool.available(), 64u);

  // free_packets groups same-pool runs and skips nulls.
  EXPECT_EQ(pool.alloc_bulk(std::span{pkts.data(), 8}), 8u);
  pkts[3] = nullptr;
  free_packets(std::span<Packet* const>{pkts.data(), 8});
  EXPECT_EQ(pool.available(), 63u);  // the nulled-out one is still ours
}

TEST(PacketPool, CacheStressNoLeakNoDoubleFree) {
  // Alloc/free storm across more threads than cores, with per-slot
  // accounting: every slot must alternate strictly between allocated and
  // free, across whichever thread's cache it lands in.
  PacketPool pool(2048, 128);
  constexpr int kThreads = 5;
  constexpr int kIters = 30000;
  std::vector<std::atomic<u8>> held(pool.size());
  std::atomic<u64> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &held, &violations, t] {
      sprayer::Rng rng(1000 + t);
      std::vector<Packet*> local;
      std::vector<Packet*> scratch;
      for (int i = 0; i < kIters; ++i) {
        switch (rng.next() % 4) {
          case 0: {  // single alloc
            Packet* p = pool.alloc_raw();
            if (p == nullptr) break;
            if (held[p->slot()].exchange(1) != 0) ++violations;
            local.push_back(p);
            break;
          }
          case 1: {  // bulk alloc
            scratch.assign(17, nullptr);
            const u32 n = pool.alloc_bulk(scratch);
            for (u32 k = 0; k < n; ++k) {
              if (held[scratch[k]->slot()].exchange(1) != 0) ++violations;
              local.push_back(scratch[k]);
            }
            break;
          }
          case 2: {  // single free
            if (local.empty()) break;
            Packet* p = local.back();
            local.pop_back();
            if (held[p->slot()].exchange(0) != 1) ++violations;
            pool.free(p);
            break;
          }
          default: {  // bulk free of up to half the holdings
            if (local.empty()) break;
            const std::size_t n = local.size() / 2 + 1;
            const std::size_t base = local.size() - n;
            for (std::size_t k = base; k < local.size(); ++k) {
              if (held[local[k]->slot()].exchange(0) != 1) ++violations;
            }
            pool.free_bulk(
                std::span<Packet* const>{local.data() + base, n});
            local.resize(base);
            break;
          }
        }
      }
      for (Packet* p : local) {
        if (held[p->slot()].exchange(0) != 1) ++violations;
        pool.free(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(pool.available(), pool.size());  // no slot leaked
  for (const auto& h : held) EXPECT_EQ(h.load(), 0u);
}

TEST(PacketPool, ManyShortLivedThreadsRecycleCacheIndices) {
  // Thread cache indices must be recycled as threads exit, or long runs
  // with churn would overflow kMaxThreadCaches and degrade silently.
  PacketPool pool(512, 128);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> threads;
    for (u32 t = 0; t < PacketPool::kMaxThreadCaches; ++t) {
      threads.emplace_back([&pool] {
        std::vector<Packet*> local;
        for (int i = 0; i < 64; ++i) {
          Packet* p = pool.alloc_raw();
          if (p != nullptr) local.push_back(p);
        }
        pool.free_bulk(local);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(PacketPool, ConcurrentAllocFree) {
  PacketPool pool(1024, 128);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      std::vector<Packet*> local;
      for (int i = 0; i < kIters; ++i) {
        Packet* p = pool.alloc_raw();
        if (p != nullptr) local.push_back(p);
        if (local.size() > 32 || (p == nullptr && !local.empty())) {
          pool.free(local.back());
          local.pop_back();
        }
      }
      for (Packet* p : local) pool.free(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 1024u);
}

}  // namespace
}  // namespace sprayer::net

// PacketPool: exhaustion, reuse, RAII handles, thread safety.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/packet_pool.hpp"

namespace sprayer::net {
namespace {

TEST(PacketPool, AllocUntilExhaustedThenRecover) {
  PacketPool pool(16, 256);
  EXPECT_EQ(pool.size(), 16u);
  EXPECT_EQ(pool.available(), 16u);

  std::vector<Packet*> taken;
  for (u32 i = 0; i < 16; ++i) {
    Packet* p = pool.alloc_raw();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->capacity(), 256u);
    taken.push_back(p);
  }
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc_raw(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);

  for (Packet* p : taken) pool.free(p);
  EXPECT_EQ(pool.available(), 16u);
  EXPECT_NE(pool.alloc_raw(), nullptr);
}

TEST(PacketPool, MetadataResetOnAlloc) {
  PacketPool pool(2, 128);
  Packet* p = pool.alloc_raw();
  ASSERT_NE(p, nullptr);
  p->set_len(64);
  p->ingress_port = 3;
  p->ts_gen = 12345;
  p->user_tag = 99;
  pool.free(p);

  Packet* q = pool.alloc_raw();
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->len(), 0u);
  EXPECT_EQ(q->ingress_port, 0);
  EXPECT_EQ(q->ts_gen, 0u);
  EXPECT_EQ(q->user_tag, 0u);
  EXPECT_FALSE(q->parsed());
  pool.free(q);
}

TEST(PacketPool, RaiiHandleReturnsToPool) {
  PacketPool pool(4, 128);
  {
    PacketPtr a = pool.alloc();
    PacketPtr b = pool.alloc();
    EXPECT_EQ(pool.in_use(), 2u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPool, DistinctBuffers) {
  PacketPool pool(8, 128);
  Packet* a = pool.alloc_raw();
  Packet* b = pool.alloc_raw();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->data()[0] = 0x11;
  b->data()[0] = 0x22;
  EXPECT_EQ(a->data()[0], 0x11);
  EXPECT_NE(a->data(), b->data());
  pool.free(a);
  pool.free(b);
}

TEST(PacketPool, ConcurrentAllocFree) {
  PacketPool pool(1024, 128);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      std::vector<Packet*> local;
      for (int i = 0; i < kIters; ++i) {
        Packet* p = pool.alloc_raw();
        if (p != nullptr) local.push_back(p);
        if (local.size() > 32 || (p == nullptr && !local.empty())) {
          pool.free(local.back());
          local.pop_back();
        }
      }
      for (Packet* p : local) pool.free(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 1024u);
}

}  // namespace
}  // namespace sprayer::net

// Toeplitz hash against the Microsoft RSS verification vectors, symmetry of
// the 0x6d5a key, and designated-core properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hash/crc32c.hpp"
#include "hash/designated.hpp"
#include "hash/toeplitz.hpp"

namespace sprayer::hash {
namespace {

net::FiveTuple tuple(u8 a, u8 b, u8 c, u8 d, u16 sport, u8 e, u8 f, u8 g,
                     u8 h, u16 dport) {
  return net::FiveTuple{net::Ipv4Addr{a, b, c, d}, net::Ipv4Addr{e, f, g, h},
                        sport, dport, net::kProtoTcp};
}

// The canonical verification suite for the Microsoft key (also used by
// DPDK's thash selftests).
TEST(Toeplitz, MicrosoftVerificationVectorsTcp) {
  EXPECT_EQ(toeplitz_v4_l4(
                tuple(66, 9, 149, 187, 2794, 161, 142, 100, 80, 1766),
                kMicrosoftKey),
            0x51ccc178u);
  EXPECT_EQ(toeplitz_v4_l4(
                tuple(199, 92, 111, 2, 14230, 65, 69, 140, 83, 4739),
                kMicrosoftKey),
            0xc626b0eau);
  EXPECT_EQ(toeplitz_v4_l4(
                tuple(24, 19, 198, 95, 12898, 12, 22, 207, 184, 38024),
                kMicrosoftKey),
            0x5c2b394au);
  EXPECT_EQ(toeplitz_v4_l4(
                tuple(38, 27, 205, 30, 48228, 209, 142, 163, 6, 2217),
                kMicrosoftKey),
            0xafc7327fu);
  EXPECT_EQ(toeplitz_v4_l4(
                tuple(153, 39, 163, 191, 44251, 202, 188, 127, 2, 1303),
                kMicrosoftKey),
            0x10e828a2u);
}

TEST(Toeplitz, MicrosoftVerificationVectorsIpOnly) {
  EXPECT_EQ(toeplitz_v4(tuple(66, 9, 149, 187, 0, 161, 142, 100, 80, 0),
                        kMicrosoftKey),
            0x323e8fc2u);
  EXPECT_EQ(toeplitz_v4(tuple(199, 92, 111, 2, 0, 65, 69, 140, 83, 0),
                        kMicrosoftKey),
            0xd718262au);
  EXPECT_EQ(toeplitz_v4(tuple(24, 19, 198, 95, 0, 12, 22, 207, 184, 0),
                        kMicrosoftKey),
            0xd2d0a5deu);
  EXPECT_EQ(toeplitz_v4(tuple(38, 27, 205, 30, 0, 209, 142, 163, 6, 0),
                        kMicrosoftKey),
            0x82989176u);
  EXPECT_EQ(toeplitz_v4(tuple(153, 39, 163, 191, 0, 202, 188, 127, 2, 0),
                        kMicrosoftKey),
            0x5d1809c5u);
}

// The symmetric key must hash both directions of a connection identically —
// the property the paper's testbed configuration [44] depends on.
TEST(Toeplitz, SymmetricKeyIsDirectionFree) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.dst_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    t.dst_port = static_cast<u16>(rng.next());
    t.protocol = net::kProtoTcp;
    EXPECT_EQ(toeplitz_v4_l4(t, kSymmetricKey),
              toeplitz_v4_l4(t.reversed(), kSymmetricKey));
    EXPECT_EQ(toeplitz_v4(t, kSymmetricKey),
              toeplitz_v4(t.reversed(), kSymmetricKey));
  }
}

// The Microsoft key is NOT symmetric (sanity check that the test above is
// non-trivial).
TEST(Toeplitz, MicrosoftKeyIsNotSymmetric) {
  const auto t = tuple(66, 9, 149, 187, 2794, 161, 142, 100, 80, 1766);
  EXPECT_NE(toeplitz_v4_l4(t, kMicrosoftKey),
            toeplitz_v4_l4(t.reversed(), kMicrosoftKey));
}

TEST(Toeplitz, DistributesUniformlyOverQueues) {
  Rng rng(17);
  constexpr u32 kQueues = 8;
  constexpr u32 kFlows = 80000;
  std::array<u32, kQueues> counts{};
  for (u32 i = 0; i < kFlows; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.dst_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    t.dst_port = static_cast<u16>(rng.next());
    t.protocol = net::kProtoTcp;
    counts[toeplitz_v4_l4(t, kSymmetricKey) % kQueues]++;
  }
  for (const u32 c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kFlows / kQueues,
                0.05 * kFlows / kQueues);
  }
}

TEST(DesignatedHash, SymmetricForBothKinds) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.dst_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    t.dst_port = static_cast<u16>(rng.next());
    t.protocol = net::kProtoTcp;
    for (const auto kind : {DesignatedHashKind::kCanonicalMix,
                            DesignatedHashKind::kSymmetricToeplitz}) {
      EXPECT_EQ(designated_core(t, 8, kind),
                designated_core(t.reversed(), 8, kind));
    }
  }
}

TEST(Crc32c, KnownVectors) {
  // "123456789" → 0xe3069283 (iSCSI CRC check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32c(std::span<const u8>{
                reinterpret_cast<const u8*>(s), 9}),
            0xe3069283u);
  // Empty input → 0.
  EXPECT_EQ(crc32c(std::span<const u8>{}), 0u);
  // 32 bytes of zeros → 0x8a9136aa (RFC 3720 test vector).
  std::array<u8, 32> zeros{};
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
}

}  // namespace
}  // namespace sprayer::hash

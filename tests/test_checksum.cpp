// Internet checksum: known vectors, composition, incremental updates
// (RFC 1624), and pseudo-header L4 checksums — validated against a naive
// reference implementation over random inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"

namespace sprayer::net {
namespace {

/// Byte-at-a-time reference implementation (RFC 1071 straight from the
/// definition): sum big-endian 16-bit words, fold, complement.
u16 reference_checksum(const u8* data, std::size_t len) {
  u64 sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<u64>(data[i]) << 8 | data[i + 1];
  }
  if (len % 2 == 1) sum += static_cast<u64>(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(~sum & 0xffff);
}

TEST(Checksum, KnownIpv4HeaderVector) {
  // Classic wikipedia/RFC 1071 example header; stored checksum 0xb861.
  const u8 header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                       0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                       0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header, sizeof(header)), 0xb861);
}

TEST(Checksum, ChecksumOfValidRegionIsZero) {
  u8 header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01,
                 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header, sizeof(header)), 0x0000);
}

TEST(Checksum, MatchesReferenceOnRandomBuffers) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.uniform(1600);
    std::vector<u8> buf(len);
    for (auto& b : buf) b = static_cast<u8>(rng.next());
    EXPECT_EQ(internet_checksum(buf.data(), len),
              reference_checksum(buf.data(), len))
        << "length " << len;
  }
}

TEST(Checksum, PartialSumsCompose) {
  Rng rng(7);
  std::vector<u8> buf(512);
  for (auto& b : buf) b = static_cast<u8>(rng.next());
  // Split at any even boundary and compose.
  for (std::size_t split = 0; split <= buf.size(); split += 2) {
    u64 sum = checksum_partial(buf.data(), split);
    sum = checksum_partial(buf.data() + split, buf.size() - split, sum);
    EXPECT_EQ(checksum_fold(sum),
              internet_checksum(buf.data(), buf.size()));
  }
}

TEST(Checksum, IncrementalUpdate16MatchesRecompute) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> buf(64);
    for (auto& b : buf) b = static_cast<u8>(rng.next());
    const u16 before = internet_checksum(buf.data(), buf.size());

    const std::size_t field = 2 * rng.uniform(31);  // 16-bit aligned offset
    const u16 old_val = load_be16(buf.data() + field);
    const u16 new_val = static_cast<u16>(rng.next());
    store_be16(buf.data() + field, new_val);

    const u16 after = internet_checksum(buf.data(), buf.size());
    EXPECT_EQ(checksum_update16(before, old_val, new_val), after);
  }
}

TEST(Checksum, IncrementalUpdate32MatchesRecompute) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<u8> buf(64);
    for (auto& b : buf) b = static_cast<u8>(rng.next());
    const u16 before = internet_checksum(buf.data(), buf.size());

    const std::size_t field = 4 * rng.uniform(15);
    const u32 old_val = load_be32(buf.data() + field);
    const u32 new_val = static_cast<u32>(rng.next());
    store_be32(buf.data() + field, new_val);

    EXPECT_EQ(checksum_update32(before, old_val, new_val),
              internet_checksum(buf.data(), buf.size()));
  }
}

TEST(Checksum, BuiltTcpPacketHasValidChecksums) {
  PacketPool pool(8);
  TcpSegmentSpec spec;
  spec.tuple = {Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                kProtoTcp};
  spec.seq = 1000;
  spec.flags = TcpFlags::kSyn;
  spec.payload_len = 100;
  PacketPtr pkt = build_tcp(pool, spec);
  ASSERT_NE(pkt, nullptr);

  Ipv4View ip = pkt->ipv4();
  EXPECT_EQ(internet_checksum(ip.bytes(), ip.header_len()), 0);
  EXPECT_TRUE(l4_checksum_valid(ip.src(), ip.dst(), kProtoTcp,
                                pkt->l4_bytes(),
                                ip.total_length() - ip.header_len()));
}

TEST(Checksum, BuiltUdpPacketHasValidChecksum) {
  PacketPool pool(8);
  UdpDatagramSpec spec;
  spec.tuple = {Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 5000, 53,
                kProtoUdp};
  spec.payload_len = 32;
  PacketPtr pkt = build_udp(pool, spec);
  ASSERT_NE(pkt, nullptr);

  Ipv4View ip = pkt->ipv4();
  EXPECT_TRUE(l4_checksum_valid(ip.src(), ip.dst(), kProtoUdp,
                                pkt->l4_bytes(),
                                ip.total_length() - ip.header_len()));
}

TEST(Checksum, RefreshAfterHeaderEdit) {
  PacketPool pool(8);
  TcpSegmentSpec spec;
  spec.tuple = {Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                kProtoTcp};
  spec.payload_len = 64;
  PacketPtr pkt = build_tcp(pool, spec);
  ASSERT_NE(pkt, nullptr);

  pkt->ipv4().set_src(Ipv4Addr{172, 16, 0, 9});
  pkt->tcp().set_src_port(4444);
  refresh_checksums(*pkt);

  Ipv4View ip = pkt->ipv4();
  EXPECT_EQ(internet_checksum(ip.bytes(), ip.header_len()), 0);
  EXPECT_TRUE(l4_checksum_valid(ip.src(), ip.dst(), kProtoTcp,
                                pkt->l4_bytes(),
                                ip.total_length() - ip.header_len()));
}

}  // namespace
}  // namespace sprayer::net

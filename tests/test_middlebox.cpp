// Integration: the full middlebox under RSS and Sprayer dispatch, driven by
// the packet generator and by real TCP — the writing-partition invariant,
// core utilization, and end-to-end correctness.
#include <gtest/gtest.h>

#include "core/middlebox.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

namespace sprayer {
namespace {

struct PktGenBench {
  sim::Simulator sim;
  net::PacketPool pool{1u << 15, 256};
  nf::SyntheticNf nf;
  std::unique_ptr<core::SimMiddlebox> mbox;
  std::unique_ptr<nic::MeasureSink> sink;
  std::unique_ptr<sim::Link> gen_link;
  std::unique_ptr<sim::Link> out_link;
  std::unique_ptr<sim::Link> back_link;  // unused port-0 egress target
  std::unique_ptr<nic::PacketGen> gen;

  PktGenBench(core::DispatchMode mode, Cycles cycles, u32 flows,
              double rate_pps) : nf(cycles) {
    core::SprayerConfig cfg;
    cfg.mode = mode;
    cfg.num_cores = 8;
    mbox = std::make_unique<core::SimMiddlebox>(sim, cfg, nf);
    sink = std::make_unique<nic::MeasureSink>(sim);

    sim::LinkConfig in_cfg;
    in_cfg.egress_port_label = 0;
    gen_link = std::make_unique<sim::Link>(sim, in_cfg, mbox->ingress(),
                                           "gen->mbox");
    sim::LinkConfig out_cfg;
    out_link = std::make_unique<sim::Link>(sim, out_cfg, *sink, "mbox->sink");
    back_link = std::make_unique<sim::Link>(sim, out_cfg, *sink, "mbox->gen");
    mbox->attach_tx_link(1, *out_link);
    mbox->attach_tx_link(0, *back_link);

    nic::PktGenConfig gen_cfg;
    gen_cfg.rate_pps = rate_pps;
    gen_cfg.num_flows = flows;
    gen_cfg.seed = 7;
    gen = std::make_unique<nic::PacketGen>(sim, pool, *gen_link, gen_cfg);
  }

  void run(double seconds) {
    gen->start();
    sim.run_until(from_seconds(seconds));
  }
};

TEST(Middlebox, RssSingleFlowUsesOneCore) {
  PktGenBench b(core::DispatchMode::kRss, 0, 1, 1e6);
  b.run(0.01);

  const auto report = b.mbox->report();
  u32 busy_cores = 0;
  for (const auto& cs : report.per_core) {
    if (cs.rx_packets > 0) ++busy_cores;
  }
  EXPECT_EQ(busy_cores, 1u);
  EXPECT_GT(b.sink->packets(), 9000u);  // ~10k packets forwarded
  EXPECT_EQ(report.nic.fdir_matched, 0u);
}

TEST(Middlebox, SpraySingleFlowUsesAllCores) {
  PktGenBench b(core::DispatchMode::kSpray, 0, 1, 1e6);
  b.run(0.01);

  const auto report = b.mbox->report();
  u32 busy_cores = 0;
  for (const auto& cs : report.per_core) {
    if (cs.rx_packets > 100) ++busy_cores;
  }
  EXPECT_EQ(busy_cores, 8u);
  EXPECT_GT(report.nic.fdir_matched, 9000u);
}

TEST(Middlebox, SprayOutperformsRssForExpensiveNf) {
  // 10k cycles/packet at 2 GHz = one core does ~0.2 Mpps. Offer 1 Mpps.
  PktGenBench rss(core::DispatchMode::kRss, 10000, 1, 1e6);
  rss.run(0.02);
  PktGenBench spray(core::DispatchMode::kSpray, 10000, 1, 1e6);
  spray.run(0.02);

  EXPECT_GT(spray.sink->packets(), 4 * rss.sink->packets());
}

TEST(Middlebox, ConnectionPacketsReachDesignatedCores) {
  PktGenBench b(core::DispatchMode::kSpray, 0, 64, 1e6);
  b.run(0.005);

  // Every SYN must have been processed on its designated core: flow entries
  // exist exactly on the designated core of each generator flow.
  for (const auto& tuple : b.gen->flows()) {
    const CoreId designated = b.mbox->picker().pick(tuple);
    const net::FiveTuple key = tuple.canonical();
    bool found_on_designated =
        b.mbox->flow_table(designated).find_remote(key) != nullptr;
    EXPECT_TRUE(found_on_designated) << tuple.to_string();
    for (u32 c = 0; c < 8; ++c) {
      if (c == designated) continue;
      EXPECT_EQ(b.mbox->flow_table(static_cast<CoreId>(c)).find_remote(key),
                nullptr);
    }
  }
  // With 64 flows, some SYNs must have required a ring transfer.
  const auto report = b.mbox->report();
  EXPECT_GT(report.total.conn_transferred_out, 0u);
  EXPECT_EQ(report.total.conn_transferred_out, report.total.conn_foreign_in);
}

TEST(Middlebox, SyntheticNfSeesNoLookupMissesAfterSetup) {
  PktGenBench b(core::DispatchMode::kSpray, 0, 16, 1e6);
  b.run(0.005);
  // The initial SYN burst installs state before data packets arrive, so
  // regular-packet lookups must all hit (writing partition works).
  EXPECT_EQ(b.nf.lookup_misses(), 0u);
  EXPECT_GT(b.sink->packets(), 1000u);
}

TEST(Middlebox, ReportAggregatesConsistently) {
  PktGenBench b(core::DispatchMode::kSpray, 100, 8, 1e6);
  b.run(0.005);
  const auto report = b.mbox->report();
  u64 rx_sum = 0;
  u64 tx_sum = 0;
  for (const auto& cs : report.per_core) {
    rx_sum += cs.rx_packets;
    tx_sum += cs.tx_packets;
  }
  EXPECT_EQ(rx_sum, report.total.rx_packets);
  EXPECT_EQ(tx_sum, report.total.tx_packets);
  // Conservation: packets accepted by the NIC either were processed, were
  // dropped by the NF/rings, or are still queued.
  EXPECT_GE(report.nic.rx_packets, report.total.rx_packets);
  EXPECT_EQ(report.total.nf_drops, 0u);
}

TEST(Middlebox, IperfRunsThroughBothModes) {
  for (const auto mode :
       {core::DispatchMode::kRss, core::DispatchMode::kSpray}) {
    nf::SyntheticNf nf(0);
    tcp::IperfScenario sc;
    sc.num_flows = 2;
    sc.warmup = from_seconds(0.05);
    sc.duration = from_seconds(0.1);
    sc.mbox.mode = mode;
    sc.seed = 11;
    const auto result = run_iperf(nf, sc);

    ASSERT_EQ(result.flows.size(), 2u);
    for (const auto& f : result.flows) {
      EXPECT_EQ(f.final_state, tcp::TcpState::kEstablished)
          << to_string(mode);
      EXPECT_GT(f.goodput_bps, 1e8) << to_string(mode);
    }
    EXPECT_GT(result.total_goodput_bps, 1e9) << to_string(mode);
    // Sanity ceiling: the 10 Gbps link rate plus measurement-edge slack
    // (goodput is acked-bytes over a 100 ms window, so bytes queued during
    // warmup that get acked inside the window can push it past line rate).
    EXPECT_LT(result.total_goodput_bps, 12e9);
    EXPECT_EQ(result.client_unmatched, 0u);
    EXPECT_EQ(result.server_unmatched, 0u);
  }
}

TEST(Middlebox, SprayCausesReorderingRssDoesNot) {
  // Keep the flows gently below capacity (small cwnd cap) so there are no
  // drops: any out-of-order arrival is then pure reordering.
  nf::SyntheticNf nf_rss(2000);
  tcp::IperfScenario sc;
  sc.num_flows = 4;
  sc.warmup = from_seconds(0.05);
  sc.duration = from_seconds(0.2);
  sc.tcp.max_cwnd = 16 * 1460;
  sc.mbox.mode = core::DispatchMode::kRss;
  sc.seed = 13;
  const auto rss = run_iperf(nf_rss, sc);
  EXPECT_EQ(rss.server_ooo_segments, 0u);  // per-flow dispatch keeps order

  nf::SyntheticNf nf_spray(2000);
  sc.mbox.mode = core::DispatchMode::kSpray;
  const auto spray = run_iperf(nf_spray, sc);
  EXPECT_GT(spray.server_ooo_segments, 0u);
}

}  // namespace
}  // namespace sprayer

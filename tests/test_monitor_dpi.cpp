// Traffic monitor (loose-consistency statistics) and DPI (Aho–Corasick,
// per-packet per-flow state — the spray-incompatible NF).
#include <gtest/gtest.h>

#include "nf/aho_corasick.hpp"
#include "nf/dpi.hpp"
#include "nf/monitor.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

namespace sprayer::nf {
namespace {

// --- Aho–Corasick ---------------------------------------------------------

u64 count_matches(const AhoCorasick& ac, const std::string& text) {
  u64 hits = 0;
  (void)ac.scan(0,
                std::span<const u8>{
                    reinterpret_cast<const u8*>(text.data()), text.size()},
                &hits);
  return hits;
}

TEST(AhoCorasick, FindsAllOverlappingPatterns) {
  AhoCorasick ac({"he", "she", "his", "hers"});
  EXPECT_EQ(count_matches(ac, "ushers"), 3u);  // she, he, hers
  EXPECT_EQ(count_matches(ac, "his"), 1u);
  EXPECT_EQ(count_matches(ac, "xyz"), 0u);
  EXPECT_EQ(count_matches(ac, "hehehe"), 3u);
}

TEST(AhoCorasick, StateCarriesAcrossChunks) {
  AhoCorasick ac({"attack"});
  u64 hits = 0;
  const std::string part1 = "zzat";
  const std::string part2 = "tackzz";
  u32 state = ac.scan(
      0,
      std::span<const u8>{reinterpret_cast<const u8*>(part1.data()),
                          part1.size()},
      &hits);
  state = ac.scan(
      state,
      std::span<const u8>{reinterpret_cast<const u8*>(part2.data()),
                          part2.size()},
      &hits);
  EXPECT_EQ(hits, 1u);  // the pattern straddles the chunk boundary
  // Without carried state, the same bytes match nothing.
  hits = 0;
  (void)ac.scan(0,
                std::span<const u8>{
                    reinterpret_cast<const u8*>(part2.data()), part2.size()},
                &hits);
  EXPECT_EQ(hits, 0u);
}

TEST(AhoCorasick, BinaryPatterns) {
  AhoCorasick ac({std::string("\x00\xff\x00", 3)});
  // Built char-by-char: "\x00b" in a literal would parse as one hex escape.
  std::string data;
  data.push_back('a');
  data.push_back('\0');
  data.push_back('\xff');
  data.push_back('\0');
  data.push_back('b');
  EXPECT_EQ(count_matches(ac, data), 1u);
}

TEST(AhoCorasick, DuplicateAndNestedPatterns) {
  AhoCorasick ac({"ab", "ab", "abc"});
  EXPECT_EQ(count_matches(ac, "abc"), 3u);  // ab twice + abc
  EXPECT_GT(ac.num_states(), 1u);
}

// --- Monitor ----------------------------------------------------------

TEST(Monitor, CountsMatchTraffic) {
  MonitorNf monitor;
  tcp::IperfScenario sc;
  sc.num_flows = 4;
  sc.warmup = from_seconds(0.0);
  sc.duration = from_seconds(0.08);
  sc.tcp.bytes_to_send = 200000;
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 37;
  const auto result = run_iperf(monitor, sc);

  const auto totals = monitor.aggregate();
  EXPECT_EQ(totals.connections_opened, 4u);
  EXPECT_EQ(totals.connections_closed, 4u);
  // The monitor sees every packet the middlebox processed.
  EXPECT_EQ(totals.packets, result.mbox.total.rx_packets +
                                result.mbox.total.conn_foreign_in -
                                result.mbox.total.conn_transferred_out);
  EXPECT_GT(totals.tcp_packets, 100u);
  EXPECT_EQ(totals.udp_packets, 0u);
}

TEST(Monitor, PerCoreCountersActuallySpread) {
  MonitorNf monitor;
  tcp::IperfScenario sc;
  sc.num_flows = 2;
  sc.warmup = from_seconds(0.0);
  sc.duration = from_seconds(0.05);
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 41;
  (void)run_iperf(monitor, sc);
  // Loose consistency only makes sense because multiple cores counted;
  // aggregate() must be the only way to get totals.
  EXPECT_GT(monitor.aggregate().packets, 0u);
}

// --- DPI -------------------------------------------------------------

TEST(Dpi, StateAvailableUnderRssMissingUnderSpray) {
  for (const auto mode :
       {core::DispatchMode::kRss, core::DispatchMode::kSpray}) {
    DpiNf dpi({"attack"});
    tcp::IperfScenario sc;
    sc.num_flows = 4;
    sc.warmup = from_seconds(0.0);
    sc.duration = from_seconds(0.05);
    sc.mbox.mode = mode;
    sc.seed = 43;
    (void)run_iperf(dpi, sc);

    if (mode == core::DispatchMode::kRss) {
      // Per-flow RSS: every packet reaches its automaton.
      EXPECT_EQ(dpi.state_unavailable(), 0u);
    } else {
      // Sprayed: most packets land away from their automaton (the paper's
      // DPI incompatibility, §7).
      EXPECT_GT(dpi.state_unavailable(), 100u);
    }
  }
}

}  // namespace
}  // namespace sprayer::nf

#include "nf/redundancy.hpp"

namespace sprayer::nf {
namespace {

TEST(Redundancy, DetectsRepeatedPayloadsAcrossFlows) {
  sim::Simulator sim;
  net::PacketPool pool(4096, 1600);
  RedundancyNf re;
  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kSpray;
  core::SimMiddlebox mbox(sim, cfg, re);

  class NullSink final : public sim::IPacketSink {
   public:
    void receive(net::Packet* pkt) override { pkt->pool()->free(pkt); }
  } sink;
  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  in_cfg.queue_packets = 8192;
  sim::Link in_link(sim, in_cfg, mbox.ingress(), "in");
  sim::Link o1(sim, sim::LinkConfig{}, sink, "o1");
  sim::Link o0(sim, sim::LinkConfig{}, sink, "o0");
  mbox.attach_tx_link(1, o1);
  mbox.attach_tx_link(0, o0);

  // 100 distinct payloads, each sent 5 times across different flows.
  const auto flows = nic::random_tcp_flows(5, 77);
  for (int rep = 0; rep < 5; ++rep) {
    for (int p = 0; p < 100; ++p) {
      net::TcpSegmentSpec spec;
      spec.tuple = flows[rep % flows.size()];
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 200;
      u8 payload[200];
      std::memset(payload, p, sizeof(payload));
      spec.payload = payload;
      in_link.send(net::build_tcp_raw(pool, spec));
    }
  }
  sim.run_until(sim.now() + 5 * kMillisecond);

  // First occurrence of each payload misses; the other 4 repeats hit —
  // across flows and cores (the cache is global).
  EXPECT_EQ(re.misses(), 100u);
  EXPECT_EQ(re.hits(), 400u);
  EXPECT_EQ(re.bytes_saved(), 400u * 200u);
  // Stateless: nothing was redirected, no flow state was created.
  const auto report = mbox.report();
  EXPECT_EQ(report.total.conn_transferred_out, 0u);
  EXPECT_EQ(report.flow_entries, 0u);
}

}  // namespace
}  // namespace sprayer::nf

// PCAP export/import: round trips, format validation, replayed workloads.
#include <gtest/gtest.h>

#include <cstdio>

#include "net/packet_builder.hpp"
#include "trace/pcap.hpp"
#include "trace/workload.hpp"

namespace sprayer::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Pcap, RoundTripPreservesBytesAndTimestamps) {
  const std::string path = temp_path("roundtrip.pcap");
  net::PacketPool pool(16);

  std::vector<std::pair<Time, std::vector<u8>>> sent;
  {
    auto writer = PcapWriter::open(path);
    ASSERT_TRUE(writer.ok());
    for (u32 i = 0; i < 10; ++i) {
      net::TcpSegmentSpec spec;
      spec.tuple = {net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                    static_cast<u16>(1000 + i), 80, net::kProtoTcp};
      spec.seq = i * 1000;
      spec.payload_len = i * 10;
      net::PacketPtr pkt = net::build_tcp(pool, spec);
      ASSERT_NE(pkt, nullptr);
      const Time ts = from_seconds(1.5) + i * 37 * kMicrosecond;
      ASSERT_TRUE(writer.value().write(ts, *pkt).ok());
      sent.emplace_back(ts, std::vector<u8>(pkt->data(),
                                            pkt->data() + pkt->len()));
    }
    EXPECT_EQ(writer.value().packets_written(), 10u);
  }

  const auto records = read_pcap(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 10u);
  for (u32 i = 0; i < 10; ++i) {
    EXPECT_EQ(records.value()[i].bytes, sent[i].second) << i;
    // Timestamps survive at microsecond resolution.
    EXPECT_EQ(records.value()[i].timestamp / kMicrosecond,
              sent[i].first / kMicrosecond);
  }
  std::remove(path.c_str());
}

TEST(Pcap, ReadRejectsGarbage) {
  const std::string path = temp_path("garbage.pcap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a pcap file at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  EXPECT_FALSE(read_pcap(path).ok());
  EXPECT_FALSE(read_pcap(temp_path("missing.pcap")).ok());
  std::remove(path.c_str());
}

TEST(Pcap, ExportedWorkloadParsesBack) {
  const std::string path = temp_path("workload.pcap");
  net::PacketPool pool(64, 1600);
  {
    auto writer = PcapWriter::open(path);
    ASSERT_TRUE(writer.ok());

    WorkloadConfig cfg;
    cfg.duration = from_seconds(0.2);
    cfg.seed = 12;
    WorkloadGenerator gen(cfg);
    PacketRecord rec;
    while (gen.next_packet(rec)) {
      net::TcpSegmentSpec spec;
      spec.tuple = gen.flows()[rec.flow_id].tuple;
      spec.flags = rec.first ? net::TcpFlags::kSyn : net::TcpFlags::kAck;
      spec.payload_len = std::min<u32>(rec.bytes, 1460);
      net::PacketPtr pkt = net::build_tcp(pool, spec);
      ASSERT_NE(pkt, nullptr);
      ASSERT_TRUE(writer.value().write(rec.time, *pkt).ok());
    }
    ASSERT_GT(writer.value().packets_written(), 50u);
  }

  const auto records = read_pcap(path);
  ASSERT_TRUE(records.ok());
  Time prev = 0;
  for (const auto& rec : records.value()) {
    EXPECT_GE(rec.timestamp, prev);  // time-ordered
    prev = rec.timestamp;
    // Every exported frame is a parseable TCP packet.
    net::Packet* pkt = pool.alloc_raw();
    ASSERT_NE(pkt, nullptr);
    ASSERT_LE(rec.bytes.size(), pkt->capacity());
    std::memcpy(pkt->data(), rec.bytes.data(), rec.bytes.size());
    pkt->set_len(static_cast<u32>(rec.bytes.size()));
    EXPECT_TRUE(pkt->parse());
    EXPECT_TRUE(pkt->is_tcp());
    pool.free(pkt);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sprayer::trace

// Telemetry subsystem: LogHistogram bucket math, the sharded registry and
// its seqlock snapshot contract (hammered from real threads — run under
// TSan in CI), the reorder observatory, JSON export, and the wiring through
// ThreadedMiddlebox.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/synthetic.hpp"
#include "telemetry/json_exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/reorder.hpp"
#include "telemetry/snapshot.hpp"

namespace sprayer::telemetry {
namespace {

// --- LogHistogram satellites ------------------------------------------------

TEST(LogHistogram, BucketEdgesBracketEveryValue) {
  LogHistogram h(5);
  std::vector<u64> values;
  for (unsigned p = 0; p < 63; ++p) {
    values.push_back(1ULL << p);
    values.push_back((1ULL << p) + 1);
    values.push_back((1ULL << p) - 1);
  }
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.next());
  for (const u64 v : values) {
    const std::size_t idx = h.index_of(v);
    ASSERT_LT(idx, h.num_buckets());
    EXPECT_LE(h.lower_edge(idx), v) << "value " << v;
    EXPECT_GE(h.upper_edge(idx), v) << "value " << v;
  }
}

TEST(LogHistogram, IndexIsMonotonicAcrossBoundaries) {
  LogHistogram h(5);
  // Around every power-of-two boundary the bucket index must not decrease.
  for (unsigned p = 1; p < 62; ++p) {
    const u64 at = 1ULL << p;
    EXPECT_LE(h.index_of(at - 1), h.index_of(at));
    EXPECT_LE(h.index_of(at), h.index_of(at + 1));
  }
}

TEST(LogHistogram, PercentilesWithinRelativeError) {
  LogHistogram h(7);  // 1/128 relative error
  for (u64 v = 1; v <= 100000; ++v) h.add(v);
  EXPECT_NEAR(static_cast<double>(h.p50()), 50000.0, 50000.0 / 64);
  EXPECT_NEAR(static_cast<double>(h.p90()), 90000.0, 90000.0 / 64);
  EXPECT_NEAR(static_cast<double>(h.p99()), 99000.0, 99000.0 / 64);
  EXPECT_NEAR(static_cast<double>(h.p999()), 99900.0, 99900.0 / 64);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100000u);
}

TEST(LogHistogram, MergeFastPathMatchesFullMerge) {
  LogHistogram a(5);
  LogHistogram sparse(5);
  LogHistogram empty(5);
  for (u64 v = 1; v <= 100; ++v) a.add(v);
  sparse.add(1000000, 7);  // single populated bucket, far from a's range
  a.merge(sparse);
  EXPECT_EQ(a.count(), 107u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_EQ(a.min(), 1u);
  a.merge(empty);  // empty-source early return must not disturb anything
  EXPECT_EQ(a.count(), 107u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(LogHistogram, AddBucketReproducesQuantiles) {
  LogHistogram src(5);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) src.add(rng.next() % 1000000 + 1);
  // Rebuild from bucket indices, as the telemetry shard merge does: the
  // same value stream routed through add_bucket must give identical
  // quantiles (quantiles only see bucket counts).
  LogHistogram dst(5);
  Rng rng2(7);
  for (int i = 0; i < 5000; ++i) {
    dst.add_bucket(dst.index_of(rng2.next() % 1000000 + 1), 1);
  }
  EXPECT_EQ(dst.count(), src.count());
  EXPECT_EQ(dst.p50(), src.p50());
  EXPECT_EQ(dst.p99(), src.p99());
  EXPECT_EQ(dst.p999(), src.p999());
  // min/max are bucket-edge approximations: must still bracket the truth.
  EXPECT_LE(dst.min(), src.min());
  EXPECT_GE(dst.max(), src.max());
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, ShardedCountersSumAndGaugesMerge) {
  MetricsRegistry reg(3);
  auto c = reg.counter("c");
  auto g = reg.gauge("g");
  auto m = reg.gauge("m", MetricKind::kGaugeMax);
  auto h = reg.histogram("h", 5);
  reg.gauge_fn("fn", [] { return u64{41} + 1; });
  reg.finalize();

  c.add(0, 5);
  c.add(1, 7);
  c.add(2, 1);
  g.set(0, 10);
  g.set(1, 20);
  m.record_max(0, 3);
  m.record_max(1, 9);
  m.record_max(1, 4);  // lower than current max: ignored
  h.record(0, 100);
  h.record(1, 200);
  h.record(2, 300);

  EXPECT_EQ(reg.read_total(c), 13u);
  SnapshotCollector col(reg);
  const TelemetrySnapshot snap = col.collect();
  EXPECT_EQ(snap.value("c"), 13u);
  EXPECT_EQ(snap.value("g"), 30u);  // gauges sum across shards
  EXPECT_EQ(snap.value("m"), 9u);   // max-gauges take the shard max
  EXPECT_EQ(snap.value("fn"), 42u);
  const auto* sc = snap.find("c");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->per_shard[0], 5u);
  EXPECT_EQ(sc->per_shard[1], 7u);
  EXPECT_EQ(sc->per_shard[2], 1u);
  const auto* sh = snap.find_histogram("h");
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(sh->merged.count(), 3u);
  EXPECT_GE(sh->merged.max(), 300u);
}

TEST(MetricsRegistry, UnfinalizedRegistryIsInertNotBroken) {
  MetricsRegistry reg(2);
  auto c = reg.counter("c");
  auto h = reg.histogram("h");
  c.add(0, 100);       // no slab yet: must be a safe no-op
  h.record(1, 12345);  // likewise
  EXPECT_EQ(reg.read_total(c), 0u);
  SnapshotCollector col(reg);
  const TelemetrySnapshot snap = col.collect();
  EXPECT_EQ(snap.value("c"), 0u);
  // Default-constructed handles are no-ops too.
  Counter none;
  none.add(0, 7);
}

TEST(MetricsRegistry, MisuseThrows) {
  MetricsRegistry reg(1);
  (void)reg.counter("dup");
  EXPECT_THROW((void)reg.counter("dup"), std::logic_error);
  reg.finalize();
  EXPECT_THROW((void)reg.counter("late"), std::logic_error);
  EXPECT_THROW(reg.finalize(), std::logic_error);
}

// The satellite acceptance test: workers hammer counters inside update
// windows while a collector snapshots in a loop. Every snapshot must be
// monotonic per counter, and every shard-clean snapshot must show the two
// counters of one window in agreement. Run under TSan in CI.
TEST(MetricsRegistry, SnapshotsStayMonotonicAndConsistentUnderHammer) {
  constexpr u32 kThreads = 4;
  MetricsRegistry reg(kThreads);
  auto a = reg.counter("a");
  auto b = reg.counter("b");
  auto h = reg.histogram("h", 5);
  reg.finalize();

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (u32 t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      u64 i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Burst-then-pause, like a real worker whose update windows only
        // bracket busy iterations; the gaps are what let the collector's
        // bounded retry loop win even on an oversubscribed machine.
        for (int burst = 0; burst < 256; ++burst) {
          reg.begin_update(t);
          a.add(t, 1);
          h.record(t, i % 4096);
          b.add(t, 1);  // must never be seen out of step with `a`
          reg.end_update(t);
          ++i;
        }
        std::this_thread::yield();
      }
    });
  }

  SnapshotCollector col(reg);
  u64 prev_a = 0;
  u64 prev_b = 0;
  u64 consistent_snaps = 0;
  for (int i = 0; i < 2000 || (consistent_snaps == 0 && i < 50000); ++i) {
    const TelemetrySnapshot snap = col.collect();
    const u64 va = snap.value("a");
    const u64 vb = snap.value("b");
    ASSERT_GE(va, prev_a);  // counters are monotonic across snapshots
    ASSERT_GE(vb, prev_b);
    prev_a = va;
    prev_b = vb;
    if (snap.consistent) {
      ++consistent_snaps;
      const auto* sa = snap.find("a");
      const auto* sb = snap.find("b");
      for (u32 s = 0; s < kThreads; ++s) {
        ASSERT_EQ(sa->per_shard[s], sb->per_shard[s])
            << "torn shard " << s << " in a clean snapshot";
      }
    }
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  // The retry loop must produce at least some clean snapshots even under
  // continuous writer pressure.
  EXPECT_GT(consistent_snaps, 0u);
  // Nothing was lost: final totals match what the histogram saw.
  const TelemetrySnapshot fin = col.collect();
  EXPECT_TRUE(fin.consistent);
  EXPECT_EQ(fin.value("a"), fin.value("b"));
  EXPECT_EQ(fin.find_histogram("h")->merged.count(), fin.value("a"));
}

// --- ReorderObservatory -----------------------------------------------------

net::Packet* flow_packet(net::PacketPool& pool, u16 src_port, u32 payload) {
  net::TcpSegmentSpec spec;
  spec.tuple = net::FiveTuple{net::Ipv4Addr{10, 0, 0, 1},
                              net::Ipv4Addr{10, 0, 0, 2}, src_port, 80,
                              net::kProtoTcp};
  spec.flags = net::TcpFlags::kAck;
  spec.payload_len = 4;
  u8 payload_bytes[4];
  std::memcpy(payload_bytes, &payload, 4);
  spec.payload = payload_bytes;
  return net::build_tcp_raw(pool, spec);
}

TEST(ReorderObservatory, InOrderStreamShowsZeroAndShuffleShowsReorder) {
  net::PacketPool pool(256, 128);
  ReorderObservatory obs;
  std::vector<net::Packet*> pkts;
  for (u32 i = 0; i < 64; ++i) {
    net::Packet* pkt = flow_packet(pool, 1234, i);
    ASSERT_NE(pkt, nullptr);
    pkt->parse();
    pkt->set_flow_hash(0xabcd);  // one sampled flow
    obs.stamp(*pkt);
    pkts.push_back(pkt);
  }
  // FIFO delivery: no reordering.
  obs.observe({pkts.data(), 32});
  {
    const auto s = obs.stats();
    EXPECT_EQ(s.flows_tracked, 1u);
    EXPECT_EQ(s.packets_observed, 32u);
    EXPECT_EQ(s.ooo_packets, 0u);
  }
  // Deliver 40..63 before 32..39: the stragglers arrive with the high-water
  // mark already at seq 64, giving distances 24 (seq 40) through 31
  // (seq 33).
  obs.observe({pkts.data() + 40, 24});
  obs.observe({pkts.data() + 32, 8});
  const auto s = obs.stats();
  EXPECT_EQ(s.packets_observed, 64u);
  EXPECT_EQ(s.ooo_packets, 8u);
  EXPECT_EQ(s.max_distance, 31u);
  EXPECT_EQ(s.distance.count(), 8u);
  for (net::Packet* pkt : pkts) pool.free(pkt);
}

TEST(ReorderObservatory, SlotCollisionsSampleFirstFlowOnly) {
  net::PacketPool pool(64, 128);
  ReorderObservatory obs;
  net::Packet* first = flow_packet(pool, 1, 0);
  net::Packet* loser = flow_packet(pool, 2, 0);
  first->parse();
  loser->parse();
  first->set_flow_hash(5);
  loser->set_flow_hash(5 + ReorderObservatory::kSlots);  // same slot
  obs.stamp(*first);
  obs.stamp(*loser);
  EXPECT_EQ(obs.stats().flows_tracked, 1u);
  EXPECT_NE(first->user_tag & ReorderObservatory::kStampFlag, 0u);
  EXPECT_EQ(loser->user_tag, 0u);  // not sampled: tag untouched
  pool.free(first);
  pool.free(loser);
}

// --- JSON export ------------------------------------------------------------

TEST(JsonExporter, EmitsSchemaAndSections) {
  MetricsRegistry reg(2);
  auto c = reg.counter("x.count");
  auto g = reg.gauge("x.hwm", MetricKind::kGaugeMax);
  auto h = reg.histogram("x.delay", 5);
  reg.finalize();
  c.add(0, 3);
  g.record_max(1, 17);
  h.record(0, 250);
  SnapshotCollector col(reg);
  ReorderObservatory obs;
  const auto stats = obs.stats();
  const std::string json = JsonExporter::to_json(col.collect(), &stats);

  EXPECT_NE(json.find("\"schema\": \"sprayer.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"x.count\": {\"total\": 3, \"per_shard\": [3, 0]}"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"max\", \"total\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"x.delay\""), std::string::npos);
  EXPECT_NE(json.find("\"reorder\""), std::string::npos);
  EXPECT_NE(json.find("\"consistent\": true"), std::string::npos);
  // Structurally sane: balanced braces (names are identifier-like).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace sprayer::telemetry

// --- ThreadedMiddlebox integration -----------------------------------------

namespace sprayer::core {
namespace {

net::Packet* tuple_packet(net::PacketPool& pool, const net::FiveTuple& t,
                          u8 flags, u64 seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

struct RunResult {
  u64 injected = 0;
  telemetry::TelemetrySnapshot snap;
  telemetry::ReorderObservatory::Stats reorder;
};

RunResult run_one_flow(DispatchMode mode) {
  net::PacketPool pool(8192, 256);
  nf::SyntheticNf nf(0);
  ThreadedMiddlebox::TxBatchHandler sink =
      [](std::span<net::Packet* const> pkts) { net::free_packets(pkts); };
  SprayerConfig cfg;
  cfg.num_cores = 4;
  cfg.mode = mode;
  cfg.telemetry = true;
  cfg.reorder_observatory = true;
  ThreadedMiddlebox mbox(cfg, nf, std::move(sink));
  mbox.start();

  const net::FiveTuple flow{net::Ipv4Addr{10, 0, 0, 1},
                            net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                            net::kProtoTcp};
  RunResult r;
  // Install state first so sprayed data packets never race the SYN.
  if (mbox.inject(tuple_packet(pool, flow, net::TcpFlags::kSyn, 0))) {
    ++r.injected;
  }
  mbox.wait_idle();

  Rng rng(11);
  std::array<net::Packet*, 32> burst;
  for (int round = 0; round < 250; ++round) {
    u32 n = 0;
    while (n < burst.size()) {
      net::Packet* pkt =
          tuple_packet(pool, flow, net::TcpFlags::kAck, rng.next());
      if (pkt == nullptr) break;
      burst[n++] = pkt;
    }
    r.injected += mbox.inject_bulk({burst.data(), n});
    if (n < burst.size()) std::this_thread::yield();
  }
  mbox.wait_idle();
  r.snap = mbox.telemetry_snapshot();
  r.reorder = mbox.reorder_stats();
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
  return r;
}

TEST(ThreadedTelemetry, SprayReordersRssDoesNot) {
  const RunResult spray = run_one_flow(DispatchMode::kSpray);
  // Transferred packets are processed twice (rx worker + designated core),
  // so worker.packets = injected + foreign_packets.
  EXPECT_EQ(spray.snap.value("worker.packets"),
            spray.injected + spray.snap.value("worker.foreign_packets"));
  EXPECT_EQ(spray.snap.value("driver.injected"), spray.injected);
  EXPECT_GT(spray.snap.value("worker.batches"), 0u);
  EXPECT_GT(spray.snap.value("rx_ring.occupancy_hwm"), 0u);
  EXPECT_EQ(spray.reorder.flows_tracked, 1u);
  EXPECT_EQ(spray.reorder.packets_observed, spray.injected);
  // One flow sprayed over 4 racing cores: reordering is the whole point.
  EXPECT_GT(spray.reorder.ooo_packets, 0u);
  EXPECT_GT(spray.reorder.max_distance, 0u);
  // Every worker that processed packets shows up in its own shard.
  const auto* wp = spray.snap.find("worker.packets");
  ASSERT_NE(wp, nullptr);
  u32 active = 0;
  for (u32 s = 0; s < 4; ++s) active += wp->per_shard[s] > 0 ? 1 : 0;
  EXPECT_GT(active, 1u) << "spray mode should engage multiple cores";

  const RunResult rss = run_one_flow(DispatchMode::kRss);
  EXPECT_EQ(rss.snap.value("worker.packets"),
            rss.injected + rss.snap.value("worker.foreign_packets"));
  EXPECT_GT(rss.reorder.packets_observed, 0u);
  // Per-flow RSS keeps the flow FIFO end to end: zero out-of-order.
  EXPECT_EQ(rss.reorder.ooo_packets, 0u);
}

TEST(ThreadedTelemetry, DisabledTelemetryReportsNothing) {
  net::PacketPool pool(1024, 256);
  nf::SyntheticNf nf(0);
  ThreadedMiddlebox::TxBatchHandler sink =
      [](std::span<net::Packet* const> pkts) { net::free_packets(pkts); };
  SprayerConfig cfg;
  cfg.num_cores = 2;
  cfg.telemetry = false;
  ThreadedMiddlebox mbox(cfg, nf, std::move(sink));
  mbox.start();
  const net::FiveTuple flow{net::Ipv4Addr{10, 0, 0, 3},
                            net::Ipv4Addr{10, 0, 0, 4}, 999, 80,
                            net::kProtoTcp};
  mbox.inject(tuple_packet(pool, flow, net::TcpFlags::kSyn, 0));
  for (int i = 0; i < 100; ++i) {
    net::Packet* pkt = tuple_packet(pool, flow, net::TcpFlags::kAck, i);
    if (pkt != nullptr) mbox.inject(pkt);
  }
  mbox.wait_idle();
  const auto snap = mbox.telemetry_snapshot();
  EXPECT_EQ(snap.value("worker.packets"), 0u);  // registry never finalized
  EXPECT_FALSE(mbox.reorder_enabled());
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace sprayer::core

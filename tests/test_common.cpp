// Common utilities: RNG distributions, streaming stats, Jain's index,
// log-bucket histogram, CDFs, result types, CLI config, table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/cdf.hpp"
#include "common/config.hpp"
#include "common/histogram.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace sprayer {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng d(42), e(43);
  EXPECT_NE(d.next(), e.next());
}

TEST(Rng, Uniform01InRangeAndCentered) {
  Rng rng(7);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformBoundIsUnbiased) {
  Rng rng(9);
  std::array<u64, 7> counts{};
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) counts[rng.uniform(7)]++;
  for (const u64 count : counts) {
    EXPECT_NEAR(static_cast<double>(count), kN / 7.0, 0.08 * kN / 7.0);
  }
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 5.0, 0.2);  // exp: stddev == mean
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ParetoTailAndScale) {
  Rng rng(17);
  double min_seen = 1e18;
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.pareto(2.0, 1.5);
    min_seen = std::min(min_seen, v);
    s.add(v);
  }
  EXPECT_GE(min_seen, 2.0);                 // scale = lower bound
  EXPECT_NEAR(s.mean(), 2.0 * 1.5 / 0.5, 1.0);  // alpha/(alpha-1)*xm = 6
}

TEST(RunningStats, WelfordMatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1, 2, 2, 3, 10, -4, 0.5};
  double sum = 0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -4);
  EXPECT_EQ(s.max(), 10);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(3);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Jain, KnownValues) {
  const std::vector<double> equal = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_fairness(equal), 1.0);

  const std::vector<double> one_hog = {1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(one_hog), 0.25);  // 1/n

  const std::vector<double> halves = {2, 1};  // (3)^2 / (2*5)
  EXPECT_DOUBLE_EQ(jain_fairness(halves), 0.9);

  const std::vector<double> zeros = {0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(Jain, RejectsInvalidInput) {
  EXPECT_THROW((void)jain_fairness({}), std::logic_error);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW((void)jain_fairness(negative), std::logic_error);
}

TEST(LogHistogram, ExactForSmallValues) {
  LogHistogram h(7);
  for (u64 v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 99u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 99u);
  // Values below 2^7 are exact (nearest-rank of 0..99 at q=0.5 is 49).
  EXPECT_EQ(h.p50(), 49u);
}

TEST(LogHistogram, BoundedRelativeErrorForLargeValues) {
  LogHistogram h(7);
  Rng rng(5);
  std::vector<u64> values;
  for (int i = 0; i < 20000; ++i) {
    const u64 v = 1 + (rng.next() % 100'000'000);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const u64 exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const u64 approx = h.quantile(q);
    // Effective resolution: bits-1 significant bits → ~1/64 relative error.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.03)
        << "q=" << q;
  }
}

TEST(LogHistogram, MergeAndReset) {
  LogHistogram a(7), b(7);
  a.add(10, 5);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.max(), 1000u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0u);
}

TEST(EmpiricalCdf, QuantilesAndFractions) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  cdf.finalize();
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(1000), 1.0);
  EXPECT_EQ(cdf.median(), 51);  // nearest-rank: round(0.5*99)=50 -> value 51
  EXPECT_EQ(cdf.quantile(0.99), 99);
}

TEST(WeightedCdf, ByteShares) {
  WeightedCdf cdf;
  cdf.add(10, 100);    // small flow, 100 bytes
  cdf.add(1000, 900);  // big flow, 900 bytes
  cdf.finalize();
  EXPECT_DOUBLE_EQ(cdf.at(10), 0.1);
  EXPECT_DOUBLE_EQ(cdf.at(999), 0.1);
  EXPECT_DOUBLE_EQ(cdf.at(1000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.total_weight(), 1000);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> bad = make_error(Error::Code::kNotFound, "nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Error::Code::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_THROW((void)bad.value(), std::logic_error);

  Status good;
  EXPECT_TRUE(good.ok());
  Status fail = make_error(Error::Code::kExhausted, "full");
  EXPECT_FALSE(fail.ok());
  EXPECT_STREQ(to_string(fail.error().code), "exhausted");
}

TEST(CliConfig, ParsesOverrides) {
  const char* argv[] = {"prog", "cores=16", "rate=2.5", "name=foo",
                        "flag=true"};
  CliConfig cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_u64("cores", 8), 16u);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 1.0), 2.5);
  EXPECT_EQ(cli.get("name", "bar"), "foo");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_u64("missing", 99), 99u);
  EXPECT_TRUE(cli.has("cores"));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(CliConfig, RejectsMalformedArguments) {
  const char* argv[] = {"prog", "noequals"};
  EXPECT_THROW(CliConfig(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(ConsoleTable, AlignsAndValidates) {
  ConsoleTable t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a      | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 333333 | 4           |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
}

TEST(Units, ConversionsAndLineRate) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000'000ull);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(cycles_to_time(2'000'000'000ull, 2e9), kSecond);
  // 10 GbE, minimum frames: the canonical 14.88 Mpps.
  EXPECT_NEAR(line_rate_pps(10e9, 60), 14.88e6, 0.01e6);
  EXPECT_EQ(serialization_time(84, 10e9), 67'200ull);  // 67.2 ns in ps
}

}  // namespace
}  // namespace sprayer

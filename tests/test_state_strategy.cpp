// Pluggable state strategies (DESIGN.md §14): unit coverage for the
// replication op log / sync frames / striped lock, strategy table
// topologies, divergence auditing, the strategy-aware violation messages —
// and the cross-strategy equivalence suite: the same trace driven through
// writing partition, state-compute replication, and the shared-locked
// baseline must produce byte-identical NF output and identical end state
// (modulo replica layout and masked timestamps).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/core_picker.hpp"
#include "core/flow_state.hpp"
#include "core/flow_table.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "nic/pktgen.hpp"
#include "state/strategy.hpp"
#include "state/sync.hpp"
#include "state/view.hpp"

namespace sprayer::core {
namespace {

constexpr u32 kCores = 4;

constexpr state::StateStrategyKind kAllKinds[] = {
    state::StateStrategyKind::kWritingPartition,
    state::StateStrategyKind::kReplication,
    state::StateStrategyKind::kSharedLocked,
};

// --- unit: replication op log ----------------------------------------------

net::FiveTuple tuple_of(u8 i) {
  return net::FiveTuple{net::Ipv4Addr{10, 0, 0, i}, net::Ipv4Addr{10, 0, 1, i},
                        static_cast<u16>(1000 + i), 80, net::kProtoTcp};
}

TEST(ReplOpLog, DedupsConsecutiveUpsertsPerKey) {
  state::ReplOpLog log;
  const auto a = tuple_of(1);
  const auto b = tuple_of(2);
  log.record_upsert(a, 11, 0);
  log.record_upsert(a, 11, 0);  // same key+hop, still pending: suppressed
  log.record_upsert(b, 22, 0);
  log.record_upsert(a, 11, 0);  // most recent op for a is an upsert: suppressed
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.logged(), 2u);
  // Same key on a different hop is a different entry.
  log.record_upsert(a, 11, 1);
  EXPECT_EQ(log.size(), 3u);
}

TEST(ReplOpLog, RemoveThenReinsertKeepsBothOps) {
  state::ReplOpLog log;
  const auto a = tuple_of(3);
  log.record_upsert(a, 33, 0);
  log.record_remove(a, 33, 0);
  log.record_upsert(a, 33, 0);  // re-insert after remove must survive
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.ops()[0].kind, state::ReplOpKind::kUpsert);
  EXPECT_EQ(log.ops()[1].kind, state::ReplOpKind::kRemove);
  EXPECT_EQ(log.ops()[2].kind, state::ReplOpKind::kUpsert);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.logged(), 3u);  // lifetime count survives clear()
}

// --- unit: striped lock -----------------------------------------------------

TEST(StripedLock, WritersExcludeEachOtherAndReaders) {
  state::StripedLock lock(8);
  u64 counter = 0;  // deliberately non-atomic: the lock is the protection
  constexpr u64 kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&lock, &counter, t] {
      for (u64 i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          lock.lock_all();
          ++counter;
          lock.unlock_all();
        } else {
          // Stripe 3 arbitrarily: a stripe holder must also exclude
          // lock_all holders.
          lock.lock_stripe(3);
          ++counter;
          lock.unlock_stripe(3);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4 * kPerThread);
}

TEST(StripedLock, RejectsBadStripeCounts) {
  EXPECT_THROW(state::StripedLock(3), std::logic_error);    // not a power of 2
  EXPECT_THROW(state::StripedLock(128), std::logic_error);  // > kMaxStripes
}

// --- unit: sync frame round trip -------------------------------------------

TEST(SyncRuntime, RoundTripAppliesUpsertsAndRemoves) {
  constexpr u32 kEntry = 16;
  FlowTable src_table(256, kEntry, 0);
  FlowTable dst_table(256, kEntry, 1);
  state::SyncRuntime src(0, {&src_table});
  state::SyncRuntime dst(1, {&dst_table});

  const auto a = tuple_of(1);
  const auto b = tuple_of(2);
  for (const auto& key : {a, b}) {
    auto* e = static_cast<u8*>(src_table.insert(key));
    ASSERT_NE(e, nullptr);
    std::memset(e, key.src_port & 0xff, kEntry);
    src.log().record_upsert(key, FlowTable::hash_of(key), 0);
  }

  auto chunks = src.serialize(4096);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(src.has_pending());  // serialize leaves the log for retry
  state::SyncRuntime::ApplyResult applied{};
  for (const auto& chunk : chunks) {
    const auto r = dst.apply(chunk);
    applied.upserts += r.upserts;
    applied.removes += r.removes;
  }
  src.clear_log();
  EXPECT_EQ(applied.upserts, 2u);
  EXPECT_EQ(dst_table.size(), 2u);
  for (const auto& key : {a, b}) {
    const auto* got = static_cast<const u8*>(dst_table.find_remote(key));
    ASSERT_NE(got, nullptr) << key.to_string();
    const auto* want = static_cast<const u8*>(src_table.find_local(key));
    EXPECT_EQ(std::memcmp(got, want, kEntry), 0);
  }
  EXPECT_EQ(dst.stats().ops_applied.load(), 2u);

  // Now a remove: ships and erases on the receiver.
  ASSERT_TRUE(src_table.remove(a));
  src.log().record_remove(a, FlowTable::hash_of(a), 0);
  for (const auto& chunk : src.serialize(4096)) (void)dst.apply(chunk);
  src.clear_log();
  EXPECT_EQ(dst_table.find_remote(a), nullptr);
  EXPECT_NE(dst_table.find_remote(b), nullptr);
}

TEST(SyncRuntime, SmallFramesChunkAndVanishedEntriesAreSkipped) {
  constexpr u32 kEntry = 16;
  FlowTable src_table(256, kEntry, 0);
  FlowTable dst_table(256, kEntry, 1);
  state::SyncRuntime src(0, {&src_table});
  state::SyncRuntime dst(1, {&dst_table});

  constexpr u8 kFlows = 20;
  for (u8 i = 1; i <= kFlows; ++i) {
    const auto key = tuple_of(i);
    auto* e = static_cast<u8*>(src_table.insert(key));
    ASSERT_NE(e, nullptr);
    std::memset(e, i, kEntry);
    src.log().record_upsert(key, FlowTable::hash_of(key), 0);
  }
  // An entry that vanished between log and harvest (no logged remove —
  // the engine-level flow always logs one, but serialize must not trip):
  // its upsert is simply skipped.
  const auto gone = tuple_of(kFlows + 1);
  ASSERT_NE(src_table.insert(gone), nullptr);
  src.log().record_upsert(gone, FlowTable::hash_of(gone), 0);
  ASSERT_TRUE(src_table.remove(gone));

  // ~96 bytes per frame: a couple of ops each, so the log must chunk.
  auto chunks = src.serialize(96);
  EXPECT_GT(chunks.size(), 1u);
  u32 upserts = 0;
  for (const auto& chunk : chunks) {
    EXPECT_LE(chunk.size(), 96u);
    upserts += dst.apply(chunk).upserts;
  }
  src.clear_log();
  EXPECT_EQ(upserts, kFlows);
  EXPECT_EQ(dst_table.size(), kFlows);
  EXPECT_EQ(dst_table.find_remote(gone), nullptr);
  EXPECT_EQ(dst.stats().apply_failures.load(), 0u);
}

// --- unit: strategy topologies + divergence audit ---------------------------

TEST(StateStrategy, TableTopologiesMatchTheirContract) {
  state::StateStrategyConfig cfg;
  for (const auto kind : kAllKinds) {
    cfg.kind = kind;
    auto strat = state::StateStrategy::make(cfg, kCores);
    strat->add_hop(1u << 10, 16);
    const auto tables = strat->hop_tables(0);
    ASSERT_EQ(tables.size(), kCores);
    switch (kind) {
      case state::StateStrategyKind::kWritingPartition:
        // N private shards at the asked capacity, owner = core.
        for (u32 c = 0; c < kCores; ++c) {
          EXPECT_EQ(tables[c]->capacity(), 1u << 10);
          EXPECT_EQ(tables[c]->owner(), c);
          if (c > 0) {
            EXPECT_NE(tables[c], tables[c - 1]);
          }
        }
        break;
      case state::StateStrategyKind::kReplication:
        // N replicas scaled to hold the whole flow space.
        for (u32 c = 0; c < kCores; ++c) {
          EXPECT_EQ(tables[c]->capacity(), (1u << 10) * kCores);
          if (c > 0) {
            EXPECT_NE(tables[c], tables[c - 1]);
          }
          EXPECT_NE(strat->sync_runtime(static_cast<CoreId>(c)), nullptr);
        }
        EXPECT_TRUE(strat->redirects_connection_packets());
        break;
      case state::StateStrategyKind::kSharedLocked:
        // One scaled table aliased into every slot; conn packets stay on
        // their arrival core.
        for (u32 c = 1; c < kCores; ++c) EXPECT_EQ(tables[c], tables[0]);
        EXPECT_EQ(tables[0]->capacity(), (1u << 10) * kCores);
        EXPECT_FALSE(strat->redirects_connection_packets());
        EXPECT_EQ(strat->sync_runtime(0), nullptr);
        break;
    }
  }
}

TEST(StateStrategy, DivergenceAuditCountsMissingExtraAndMismatched) {
  state::StateStrategyConfig cfg;
  cfg.kind = state::StateStrategyKind::kReplication;
  auto strat = state::StateStrategy::make(cfg, 2);
  strat->add_hop(256, 8);
  const auto tables = strat->hop_tables(0);

  const auto a = tuple_of(1);
  const auto b = tuple_of(2);
  const auto c = tuple_of(3);
  // a: equal on both replicas. b: only on the reference (missing).
  // c: only on the other replica (extra).
  auto put = [](FlowTable* t, const net::FiveTuple& key, u8 fill) {
    auto* e = static_cast<u8*>(t->insert(key));
    ASSERT_NE(e, nullptr);
    std::memset(e, fill, t->entry_size());
  };
  put(tables[0], a, 7);
  put(tables[1], a, 7);
  put(tables[0], b, 9);
  put(tables[1], c, 5);
  auto report = strat->check_divergence();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.missing_entries, 1u);
  EXPECT_EQ(report.extra_entries, 1u);
  EXPECT_EQ(report.mismatched_entries, 0u);
  EXPECT_EQ(strat->divergence_checks(), 1u);
  EXPECT_EQ(strat->divergence_mismatches(), report.total());

  // Converge b and c, then corrupt a's bytes on one side: mismatched.
  put(tables[1], b, 9);
  put(tables[0], c, 5);
  std::memset(tables[1]->find_local(a), 8, 8);
  report = strat->check_divergence();
  EXPECT_EQ(report.missing_entries, 0u);
  EXPECT_EQ(report.extra_entries, 0u);
  EXPECT_EQ(report.mismatched_entries, 1u);
}

// --- unit: violation messages name the strategy and cores --------------------

TEST(FlowStateApi, WriteViolationNamesStrategyAndCores) {
  FlowTable t0(64, 16, 0);
  FlowTable t1(64, 16, 1);
  FlowTable* tables[] = {&t0, &t1};
  CorePicker picker(2);
  CostModel costs;
  Cycles sink = 0;
  FlowStateApi api(0, tables, picker, costs, sink);  // default view: WP

  // Find a flow whose designated core is NOT this api's core.
  net::FiveTuple foreign = tuple_of(1);
  while (api.designated_core(foreign) == 0) ++foreign.src_port;

  try {
    (void)api.insert_local_flow(foreign);
    FAIL() << "expected a writing-partition violation";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("state[writing_partition] violation"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("insert_local_flow on core 0"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("core 1 is the designated core"), std::string::npos)
        << msg;
  }
  EXPECT_THROW((void)api.remove_local_flow(foreign), std::logic_error);
}

// --- the cross-strategy equivalence harness ---------------------------------

net::Packet* make_packet(net::PacketPool& pool, const net::FiveTuple& t,
                         u8 flags, u64 payload_seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

/// Inject one deterministic packet, riding out pool backpressure (under
/// OverloadPolicy::kBlock the ring itself never sheds).
void must_inject(ThreadedMiddlebox& mbox, net::PacketPool& pool,
                 const net::FiveTuple& t, u8 flags, u64 seed) {
  for (;;) {
    net::Packet* pkt = make_packet(pool, t, flags, seed);
    if (pkt != nullptr && mbox.inject(pkt)) return;
    std::this_thread::yield();
  }
}

/// Idle, then give the housekeeping tick a chance to flush any sync frames
/// a momentary pool shortage deferred, then idle again.
void settle(ThreadedMiddlebox& mbox) {
  mbox.wait_idle();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  mbox.wait_idle();
}

using EntryMask = void (*)(std::vector<u8>&);

/// Zero a leading Time field (NF timestamps: monitor first_seen, firewall
/// established_at) — wall-clock-dependent, legitimately differs per run.
void mask_leading_time(std::vector<u8>& bytes) {
  std::memset(bytes.data(), 0, std::min(bytes.size(), sizeof(Time)));
}

using EndState = std::map<std::string, std::vector<u8>>;

/// The end state, collected per the strategy's layout: union of the per-core
/// shards (writing partition — each flow lives on exactly one), core 0's
/// replica (replication — every replica holds the whole space), or the one
/// shared table (shared-locked).
EndState collect_state(ThreadedMiddlebox& mbox, EntryMask mask) {
  EndState out;
  auto grab = [&](FlowTable& t) {
    t.for_each([&](const net::FiveTuple& key, void* data) {
      std::vector<u8> bytes(t.entry_size());
      std::memcpy(bytes.data(), data, bytes.size());
      if (mask != nullptr) mask(bytes);
      out.emplace(key.to_string(), std::move(bytes));
    });
  };
  if (mbox.state_strategy().kind() ==
      state::StateStrategyKind::kWritingPartition) {
    for (u32 c = 0; c < kCores; ++c) grab(mbox.flow_table(static_cast<CoreId>(c)));
  } else {
    grab(mbox.flow_table(0));
  }
  return out;
}

struct RunResult {
  std::vector<std::string> frames;  // tx frame bytes, sorted
  EndState state;
};

template <typename MakeNf, typename Drive>
RunResult run_strategy(state::StateStrategyKind kind, MakeNf make_nf,
                       Drive drive, EntryMask mask, Time housekeeping) {
  net::PacketPool pool(16384, 256);
  auto nf = make_nf();  // fresh NF per run: port pools / cursors reset
  RunResult r;
  std::mutex mu;
  ThreadedMiddlebox::TxBatchHandler sink =
      [&](std::span<net::Packet* const> pkts) {
        std::scoped_lock lk(mu);
        for (net::Packet* p : pkts) {
          r.frames.emplace_back(reinterpret_cast<const char*>(p->data()),
                                p->len());
        }
        net::free_packets(pkts);
      };
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.overload_policy = OverloadPolicy::kBlock;
  cfg.housekeeping_interval = housekeeping;
  cfg.state.kind = kind;
  ThreadedMiddlebox mbox(cfg, *nf, std::move(sink));
  mbox.start();
  drive(mbox, pool);
  settle(mbox);
  if (kind == state::StateStrategyKind::kReplication) {
    const auto report = mbox.state_strategy().check_divergence();
    EXPECT_TRUE(report.clean())
        << "replicas diverged: mismatched=" << report.mismatched_entries
        << " missing=" << report.missing_entries
        << " extra=" << report.extra_entries;
    const auto sync = mbox.state_strategy().sync_stats();
    EXPECT_GT(sync.frames_sent, 0u);
    EXPECT_EQ(sync.apply_failures, 0u);
  }
  r.state = collect_state(mbox, mask);
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size())
      << "packet leak under " << state::to_string(kind);
  std::sort(r.frames.begin(), r.frames.end());
  return r;
}

template <typename MakeNf, typename Drive>
void expect_equivalent(MakeNf make_nf, Drive drive, EntryMask mask,
                       bool nat_housekeeping_off = false) {
  RunResult base;
  for (const auto kind : kAllKinds) {
    // NAT's housekeeping sweep iterates the table; the shared-locked
    // strawman cannot do that safely while other cores insert (its
    // documented unsoundness), so NAT runs disable the periodic sweep for
    // every strategy to keep the traces comparable (time_wait=0 NATs never
    // accumulate TIME_WAIT state anyway).
    const Time housekeeping = nat_housekeeping_off ? 0 : 10 * kMillisecond;
    RunResult r = run_strategy(kind, make_nf, drive, mask, housekeeping);
    if (kind == kAllKinds[0]) {
      base = std::move(r);
      EXPECT_FALSE(base.frames.empty());
      continue;
    }
    EXPECT_EQ(base.frames.size(), r.frames.size())
        << "tx frame count differs under " << state::to_string(kind);
    EXPECT_TRUE(base.frames == r.frames)
        << "tx bytes differ under " << state::to_string(kind);
    EXPECT_EQ(base.state.size(), r.state.size())
        << "end-state entry count differs under " << state::to_string(kind);
    EXPECT_TRUE(base.state == r.state)
        << "end state differs under " << state::to_string(kind);
  }
}

// --- equivalence: the four stateful NFs -------------------------------------

TEST(StateStrategyEquivalence, NatTranslationByteIdentical) {
  // time_wait=0: RST aborts immediately (exercises replicated removes) and
  // no timestamps ever land in entries, so no masking is needed. Connection
  // events are serialized (wait_idle) because the port-pool cursor makes
  // claim order globally significant.
  auto make_nf = [] {
    nf::NatConfig cfg;
    cfg.time_wait = 0;
    return std::make_unique<nf::NatNf>(cfg);
  };
  const auto flows = nic::random_tcp_flows(16, 33);
  auto drive = [&flows](ThreadedMiddlebox& mbox, net::PacketPool& pool) {
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kSyn, 0);
      mbox.wait_idle();
    }
    for (u32 i = 0; i < 1500; ++i) {
      must_inject(mbox, pool, flows[i % flows.size()], net::TcpFlags::kAck,
                  1000 + i);
    }
    mbox.wait_idle();
    // Abort the even-indexed sessions; the odd ones stay in the end state.
    for (u32 i = 0; i < flows.size(); i += 2) {
      must_inject(mbox, pool, flows[i], net::TcpFlags::kRst, 2);
    }
  };
  expect_equivalent(make_nf, drive, nullptr, /*nat_housekeeping_off=*/true);
}

TEST(StateStrategyEquivalence, MonitorTrackingByteIdentical) {
  auto make_nf = [] {
    return std::make_unique<nf::MonitorNf>(/*close_on_single_fin=*/true);
  };
  const auto flows = nic::random_tcp_flows(32, 7);
  auto drive = [&flows](ThreadedMiddlebox& mbox, net::PacketPool& pool) {
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kSyn, 0);
    }
    mbox.wait_idle();
    for (u32 i = 0; i < 2000; ++i) {
      must_inject(mbox, pool, flows[i % flows.size()], net::TcpFlags::kAck,
                  5000 + i);
    }
    mbox.wait_idle();
    // Close the even-indexed connections (single FIN closes under this
    // monitor config — exercises get_local_flow + remove replication).
    for (u32 i = 0; i < flows.size(); i += 2) {
      must_inject(mbox, pool, flows[i],
                  net::TcpFlags::kFin | net::TcpFlags::kAck, 6);
    }
  };
  expect_equivalent(make_nf, drive, &mask_leading_time);
}

TEST(StateStrategyEquivalence, FirewallAdmissionByteIdentical) {
  auto make_nf = [] {
    return std::make_unique<nf::FirewallNf>(nf::Acl{/*default_allow=*/true});
  };
  const auto flows = nic::random_tcp_flows(24, 19);
  auto drive = [&flows](ThreadedMiddlebox& mbox, net::PacketPool& pool) {
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kSyn, 0);
    }
    mbox.wait_idle();
    for (u32 i = 0; i < 2000; ++i) {
      must_inject(mbox, pool, flows[i % flows.size()], net::TcpFlags::kAck,
                  7000 + i);
    }
    mbox.wait_idle();
    // One FIN per connection: fin_count=1 everywhere, nothing closes —
    // an in-place mutation every replica must converge on.
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kFin | net::TcpFlags::kAck, 8);
    }
  };
  expect_equivalent(make_nf, drive, &mask_leading_time);
}

TEST(StateStrategyEquivalence, LoadBalancerAssignmentByteIdentical) {
  auto make_nf = [] {
    nf::LbConfig cfg;
    for (u32 b = 0; b < 3; ++b) {
      cfg.backends.push_back(
          {net::MacAddr::from_id(100 + b), net::Ipv4Addr{10, 1, 0, static_cast<u8>(b + 1)}});
    }
    return std::make_unique<nf::LoadBalancerNf>(cfg);
  };
  const nf::LbConfig ref;  // default VIP endpoint
  std::vector<net::FiveTuple> flows;
  for (u8 i = 0; i < 12; ++i) {
    flows.push_back(net::FiveTuple{net::Ipv4Addr{10, 0, 0, static_cast<u8>(i + 1)},
                                   ref.vip, static_cast<u16>(2000 + i),
                                   ref.vport, net::kProtoTcp});
  }
  auto drive = [&flows](ThreadedMiddlebox& mbox, net::PacketPool& pool) {
    // The round-robin backend cursor is global: serialize SYNs so every
    // strategy assigns the same backend sequence.
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kSyn, 0);
      mbox.wait_idle();
    }
    for (u32 i = 0; i < 1200; ++i) {
      must_inject(mbox, pool, flows[i % flows.size()], net::TcpFlags::kAck,
                  9000 + i);
    }
  };
  expect_equivalent(make_nf, drive, nullptr);
}

// --- 4-core churn under each strategy (the TSan witness) ---------------------

void churn_under(state::StateStrategyKind kind) {
  net::PacketPool pool(16384, 256);
  nf::NatConfig nat_cfg;
  nat_cfg.time_wait = 0;
  nf::NatNf nat(nat_cfg);
  std::atomic<u64> out{0};
  ThreadedMiddlebox::TxHandler handler = [&out](net::Packet* pkt) {
    out.fetch_add(1, std::memory_order_relaxed);
    pkt->pool()->free(pkt);
  };
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.overload_policy = OverloadPolicy::kBlock;
  // NAT housekeeping iterates the table; under shared-locked that cannot
  // run concurrently with inserts (strawman unsoundness), and with
  // time_wait=0 it would find nothing anyway.
  cfg.housekeeping_interval = 0;
  cfg.state.kind = kind;
  ThreadedMiddlebox mbox(cfg, nat, std::move(handler));
  mbox.start();

  u64 injected = 0;
  constexpr u32 kRounds = 3;
  for (u32 round = 0; round < kRounds; ++round) {
    const auto flows = nic::random_tcp_flows(64, 100 + round);
    // Phase 1: concurrent session setup across all cores.
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kSyn, round);
      ++injected;
    }
    mbox.wait_idle();
    // Phase 2: sprayed data races across every core, reads only.
    for (u32 i = 0; i < 3000; ++i) {
      must_inject(mbox, pool, flows[i % flows.size()], net::TcpFlags::kAck,
                  (u64{round} << 32) | i);
      ++injected;
    }
    mbox.wait_idle();
    // Phase 3: concurrent teardown — except the last round, whose sessions
    // stay live so the replication divergence audit compares real state.
    if (round + 1 < kRounds) {
      for (const auto& f : flows) {
        must_inject(mbox, pool, f, net::TcpFlags::kRst, round);
        ++injected;
      }
      mbox.wait_idle();
    }
  }
  settle(mbox);
  if (kind == state::StateStrategyKind::kReplication) {
    const auto report = mbox.state_strategy().check_divergence();
    EXPECT_TRUE(report.clean())
        << "replicas diverged after churn: mismatched="
        << report.mismatched_entries << " missing=" << report.missing_entries
        << " extra=" << report.extra_entries;
  }
  mbox.stop();
  EXPECT_EQ(out.load(), injected);  // SYNs open, data matches, RSTs match
  EXPECT_EQ(pool.available(), pool.size());
  EXPECT_EQ(nat.counters().unmatched_dropped, 0u);
}

TEST(StateStrategyChurn, WritingPartition) {
  churn_under(state::StateStrategyKind::kWritingPartition);
}

TEST(StateStrategyChurn, Replication) {
  churn_under(state::StateStrategyKind::kReplication);
}

TEST(StateStrategyChurn, SharedLocked) {
  churn_under(state::StateStrategyKind::kSharedLocked);
}

}  // namespace
}  // namespace sprayer::core

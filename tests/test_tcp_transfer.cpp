// End-to-end TCP over simulated links (no middlebox): handshake, bulk
// transfer, clean close, loss recovery, and goodput sanity.
#include <gtest/gtest.h>

#include "tcp/host.hpp"

namespace sprayer::tcp {
namespace {

struct Bench {
  sim::Simulator sim;
  net::PacketPool pool{1u << 14, 1600};
  Host client{sim, pool, "client"};
  Host server{sim, pool, "server"};
  std::unique_ptr<sim::Link> c2s;
  std::unique_ptr<sim::Link> s2c;

  explicit Bench(u32 queue = 4096, double rate = 10e9) {
    sim::LinkConfig cfg;
    cfg.rate_bps = rate;
    cfg.propagation_delay = 5 * kMicrosecond;
    cfg.queue_packets = queue;
    c2s = std::make_unique<sim::Link>(sim, cfg, server, "c2s");
    s2c = std::make_unique<sim::Link>(sim, cfg, client, "s2c");
    client.attach_out(*c2s);
    server.attach_out(*s2c);
  }

  static net::FiveTuple tuple() {
    return {net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2}, 40000,
            5201, net::kProtoTcp};
  }
};

TEST(TcpTransfer, FiniteTransferCompletesAndCloses) {
  Bench b;
  TcpConfig cfg;
  cfg.bytes_to_send = 1'000'000;
  cfg.cc = CcKind::kCubic;
  b.server.listen_all(cfg);
  TcpConnection& conn = b.client.open(Bench::tuple(), cfg, 0, 1);

  b.sim.run_until(from_seconds(2.0));

  EXPECT_EQ(conn.state(), TcpState::kDone);
  EXPECT_EQ(conn.bytes_acked(), 1'000'000u);
  ASSERT_EQ(b.server.connections().size(), 1u);
  const auto& srv = *b.server.connections()[0];
  EXPECT_EQ(srv.state(), TcpState::kDone);
  EXPECT_EQ(srv.stats().bytes_delivered, 1'000'000u);
  // Clean path: no losses, no retransmissions, no reordering.
  EXPECT_EQ(conn.stats().retransmits, 0u);
  EXPECT_EQ(conn.stats().rtos, 0u);
  EXPECT_EQ(srv.stats().ooo_segments, 0u);
  // All packets returned to the pool once both sides are done.
  EXPECT_EQ(b.pool.available(), b.pool.size());
}

TEST(TcpTransfer, UnlimitedFlowApproachesLinkRate) {
  Bench b;
  TcpConfig cfg;
  cfg.bytes_to_send = 0;  // unlimited
  b.server.listen_all(cfg);
  TcpConnection& conn = b.client.open(Bench::tuple(), cfg, 0, 2);

  const Time duration = from_seconds(0.5);
  b.sim.run_until(duration);

  const double goodput =
      static_cast<double>(conn.bytes_acked()) * 8.0 / to_seconds(duration);
  // 10 Gbps link; TCP goodput should reach at least 80 % of line rate
  // (headers + handshake + slow start overheads).
  EXPECT_GT(goodput, 8e9);
  EXPECT_LT(goodput, 10e9);
}

TEST(TcpTransfer, NewRenoAlsoSustainsThroughput) {
  Bench b;
  TcpConfig cfg;
  cfg.cc = CcKind::kNewReno;
  b.server.listen_all(cfg);
  TcpConnection& conn = b.client.open(Bench::tuple(), cfg, 0, 3);
  b.sim.run_until(from_seconds(0.5));
  const double goodput =
      static_cast<double>(conn.bytes_acked()) * 8.0 / 0.5;
  EXPECT_GT(goodput, 8e9);
}

TEST(TcpTransfer, RecoversFromTailDrops) {
  // Tiny link FIFO forces drops during slow start; fast retransmit / RTO
  // must recover and still complete the transfer.
  Bench b(/*queue=*/16);
  TcpConfig cfg;
  cfg.bytes_to_send = 2'000'000;
  b.server.listen_all(cfg);
  TcpConnection& conn = b.client.open(Bench::tuple(), cfg, 0, 4);

  b.sim.run_until(from_seconds(5.0));

  EXPECT_EQ(conn.state(), TcpState::kDone);
  ASSERT_EQ(b.server.connections().size(), 1u);
  EXPECT_EQ(b.server.connections()[0]->stats().bytes_delivered, 2'000'000u);
  EXPECT_GT(b.c2s->counters().dropped + b.s2c->counters().dropped, 0u);
  EXPECT_GT(conn.stats().retransmits, 0u);
}

TEST(TcpTransfer, ManyConcurrentFlowsShareTheLink) {
  Bench b;
  TcpConfig cfg;
  b.server.listen_all(cfg);
  constexpr u32 kFlows = 8;
  std::vector<TcpConnection*> conns;
  for (u32 i = 0; i < kFlows; ++i) {
    net::FiveTuple t = Bench::tuple();
    t.src_port = static_cast<u16>(41000 + i);
    conns.push_back(&b.client.open(t, cfg, i * 10 * kMicrosecond, 100 + i));
  }
  // Let slow start / first loss epoch settle, then measure steady state.
  b.sim.run_until(from_seconds(0.3));
  std::vector<u64> base;
  for (auto* c : conns) base.push_back(c->bytes_acked());
  b.sim.run_until(from_seconds(1.0));

  double total = 0;
  for (u32 i = 0; i < kFlows; ++i) {
    EXPECT_EQ(conns[i]->state(), TcpState::kEstablished);
    total += static_cast<double>(conns[i]->bytes_acked() - base[i]) * 8.0 /
             0.7;
  }
  EXPECT_GT(total, 7e9);   // aggregate near line rate
  EXPECT_LT(total, 10e9);
  EXPECT_EQ(b.server.connections().size(), kFlows);
}

TEST(TcpTransfer, SrttTracksPathRtt) {
  Bench b;
  TcpConfig cfg;
  // Small window: negligible self-queueing, so SRTT ≈ the physical path.
  cfg.max_cwnd = 4 * 1460;
  b.server.listen_all(cfg);
  TcpConnection& conn = b.client.open(Bench::tuple(), cfg, 0, 5);
  b.sim.run_until(from_seconds(0.1));
  // Path RTT: 2 * 5 µs propagation + serialization.
  EXPECT_GT(conn.rtt().srtt(), 10 * kMicrosecond);
  EXPECT_LT(conn.rtt().srtt(), 30 * kMicrosecond);
}

}  // namespace
}  // namespace sprayer::tcp

// Firewall (ACL + connection context) and load balancer (flow-server map,
// DSR, loose-consistency counters) behaviour.
#include <gtest/gtest.h>

#include "nf/acl.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

namespace sprayer::nf {
namespace {

// --- ACL --------------------------------------------------------------

TEST(Acl, PrefixAndRangeMatching) {
  AclRule r;
  r.src_net = net::Ipv4Addr{10, 0, 0, 0};
  r.src_prefix_len = 8;
  r.dst_port_lo = 80;
  r.dst_port_hi = 443;
  r.protocol = net::kProtoTcp;
  r.allow = true;

  net::FiveTuple t{net::Ipv4Addr{10, 9, 8, 7}, net::Ipv4Addr{1, 1, 1, 1},
                   5555, 80, net::kProtoTcp};
  EXPECT_TRUE(r.matches(t));
  t.src_ip = net::Ipv4Addr{11, 0, 0, 1};
  EXPECT_FALSE(r.matches(t));  // outside 10/8
  t.src_ip = net::Ipv4Addr{10, 1, 1, 1};
  t.dst_port = 8080;
  EXPECT_FALSE(r.matches(t));  // outside port range
  t.dst_port = 443;
  t.protocol = net::kProtoUdp;
  EXPECT_FALSE(r.matches(t));  // wrong protocol
}

TEST(Acl, FirstMatchWinsAndDefaultApplies) {
  Acl acl(/*default_allow=*/false);
  AclRule deny_one;
  deny_one.src_net = net::Ipv4Addr{10, 0, 0, 66};
  deny_one.src_prefix_len = 32;
  deny_one.allow = false;
  acl.add_rule(deny_one);
  AclRule allow_net;
  allow_net.src_net = net::Ipv4Addr{10, 0, 0, 0};
  allow_net.src_prefix_len = 24;
  allow_net.allow = true;
  acl.add_rule(allow_net);

  net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 66}, net::Ipv4Addr{1, 1, 1, 1},
                   1, 2, net::kProtoTcp};
  EXPECT_FALSE(acl.allows(t));  // specific deny first
  t.src_ip = net::Ipv4Addr{10, 0, 0, 7};
  EXPECT_TRUE(acl.allows(t));   // then the allow
  t.src_ip = net::Ipv4Addr{172, 16, 0, 1};
  EXPECT_FALSE(acl.allows(t));  // default deny
}

TEST(Acl, ZeroPrefixMatchesEverything) {
  Acl acl(false);
  AclRule allow_all;
  allow_all.allow = true;
  acl.add_rule(allow_all);
  net::FiveTuple t{net::Ipv4Addr{1, 2, 3, 4}, net::Ipv4Addr{5, 6, 7, 8},
                   9, 10, net::kProtoUdp};
  EXPECT_TRUE(acl.allows(t));
}

// --- Firewall end-to-end -------------------------------------------------

TEST(Firewall, AdmitsAllowedRejectsDenied) {
  // Allow only dst port 5201-like low ports... use an src-prefix split:
  // allow 10.0.0.0/9, deny the rest of 10/8.
  Acl acl(false);
  AclRule allow;
  allow.src_net = net::Ipv4Addr{10, 0, 0, 0};
  allow.src_prefix_len = 9;  // 10.0-10.127
  allow.allow = true;
  acl.add_rule(allow);
  FirewallNf fw(std::move(acl));

  auto tuples = nic::random_tcp_flows(8, 17);
  u32 expected_allowed = 0;
  for (auto& t : tuples) {
    if ((t.src_ip.host_order() & 0x00800000u) == 0) ++expected_allowed;
  }

  tcp::IperfScenario sc;
  sc.num_flows = 8;
  sc.tuples = tuples;
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.08);
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 17;
  const auto result = run_iperf(fw, sc);

  EXPECT_EQ(fw.counters().admitted, expected_allowed);
  // Denied clients retransmit their SYNs, so rejections >= denied flows.
  EXPECT_GE(fw.counters().rejected_by_acl, 8u - expected_allowed);
  u32 established = 0;
  for (const auto& f : result.flows) {
    if (f.final_state == tcp::TcpState::kEstablished) ++established;
  }
  EXPECT_EQ(established, expected_allowed);
}

TEST(Firewall, ClosesStateAfterFins) {
  Acl acl(true);
  FirewallNf fw(std::move(acl));
  tcp::IperfScenario sc;
  sc.num_flows = 4;
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.1);
  sc.tcp.bytes_to_send = 500000;
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 19;
  const auto result = run_iperf(fw, sc);

  EXPECT_EQ(fw.counters().admitted, 4u);
  EXPECT_EQ(fw.counters().closed, 4u);
  EXPECT_EQ(result.mbox.flow_entries, 0u);  // all contexts removed
}

// --- Load balancer -------------------------------------------------------

LbConfig three_backends() {
  LbConfig cfg;
  cfg.backends = {{net::MacAddr::from_id(1), {10, 1, 0, 1}},
                  {net::MacAddr::from_id(2), {10, 1, 0, 2}},
                  {net::MacAddr::from_id(3), {10, 1, 0, 3}}};
  return cfg;
}

std::vector<net::FiveTuple> vip_flows(const LbConfig& cfg, u32 n, u64 seed) {
  auto tuples = nic::random_tcp_flows(n, seed);
  for (auto& t : tuples) {
    t.dst_ip = cfg.vip;
    t.dst_port = cfg.vport;
  }
  return tuples;
}

TEST(LoadBalancer, RoundRobinAssignmentAndCounters) {
  const LbConfig cfg = three_backends();
  LoadBalancerNf lb(cfg);
  tcp::IperfScenario sc;
  sc.num_flows = 9;
  sc.tuples = vip_flows(cfg, 9, 23);
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.05);
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 23;
  (void)run_iperf(lb, sc);

  EXPECT_EQ(lb.counters().assigned, 9u);
  const auto active = lb.active_connections();
  // Round-robin is per designated core; totals must still sum correctly.
  i64 total = 0;
  for (const i64 c : active) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, 9);
}

TEST(LoadBalancer, CountersDropToZeroAfterClose) {
  const LbConfig cfg = three_backends();
  LoadBalancerNf lb(cfg);
  tcp::IperfScenario sc;
  sc.num_flows = 6;
  sc.tuples = vip_flows(cfg, 6, 29);
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.1);
  sc.tcp.bytes_to_send = 300000;  // flows complete and close
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 29;
  const auto result = run_iperf(lb, sc);

  EXPECT_EQ(lb.counters().assigned, 6u);
  for (const i64 c : lb.active_connections()) EXPECT_EQ(c, 0);
  for (const auto& f : result.flows) {
    EXPECT_EQ(f.final_state, tcp::TcpState::kDone);
  }
}

TEST(LoadBalancer, NonVipTrafficDropped) {
  const LbConfig cfg = three_backends();
  LoadBalancerNf lb(cfg);
  tcp::IperfScenario sc;
  sc.num_flows = 3;  // random destinations, none the VIP
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.05);
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 31;
  const auto result = run_iperf(lb, sc);

  EXPECT_EQ(lb.counters().assigned, 0u);
  EXPECT_GT(lb.counters().dropped_not_vip, 0u);
  for (const auto& f : result.flows) {
    EXPECT_EQ(f.bytes, 0u);  // nothing got through
  }
}

TEST(LoadBalancer, RequiresBackends) {
  LbConfig empty;
  EXPECT_THROW(LoadBalancerNf{empty}, std::logic_error);
}

}  // namespace
}  // namespace sprayer::nf

// FiveTuple: canonicalization, reversal, hashing, parsing, addresses.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/five_tuple.hpp"
#include "net/ip_addr.hpp"

namespace sprayer::net {
namespace {

TEST(Ipv4Addr, ParseAndFormatRoundTrip) {
  const auto r = Ipv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().to_string(), "192.168.1.200");
  EXPECT_EQ(r.value().host_order(), 0xc0a801c8u);
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.256").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2..4").ok());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").ok());
}

TEST(FiveTuple, ReverseIsInvolution) {
  const FiveTuple t{Ipv4Addr{1, 2, 3, 4}, Ipv4Addr{5, 6, 7, 8}, 100, 200,
                    kProtoTcp};
  EXPECT_EQ(t.reversed().reversed(), t);
  EXPECT_NE(t.reversed(), t);
}

TEST(FiveTuple, CanonicalIsDirectionFree) {
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    FiveTuple t;
    t.src_ip = Ipv4Addr{static_cast<u32>(rng.next())};
    t.dst_ip = Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    t.dst_port = static_cast<u16>(rng.next());
    t.protocol = kProtoTcp;
    EXPECT_EQ(t.canonical(), t.reversed().canonical());
    EXPECT_TRUE(t.canonical().is_canonical());
    // Canonical preserves the endpoint set.
    const FiveTuple c = t.canonical();
    EXPECT_TRUE(c == t || c == t.reversed());
  }
}

TEST(FiveTuple, CanonicalTieBreaksOnPortWhenIpsEqual) {
  const FiveTuple t{Ipv4Addr{9, 9, 9, 9}, Ipv4Addr{9, 9, 9, 9}, 5000, 80,
                    kProtoTcp};
  EXPECT_EQ(t.canonical().src_port, 80);
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
}

TEST(FiveTuple, PackIsDeterministicAndSpreads) {
  Rng rng(13);
  FiveTuple a;
  a.src_ip = Ipv4Addr{10, 0, 0, 1};
  a.dst_ip = Ipv4Addr{10, 0, 0, 2};
  a.src_port = 1;
  a.dst_port = 2;
  a.protocol = kProtoTcp;
  EXPECT_EQ(a.pack(), a.pack());

  // Single-bit port change should flip roughly half the hash bits.
  FiveTuple b = a;
  b.src_port = 3;
  const u64 diff = a.pack() ^ b.pack();
  EXPECT_GT(__builtin_popcountll(diff), 16);
}

TEST(FiveTuple, ToStringIsReadable) {
  const FiveTuple t{Ipv4Addr{1, 2, 3, 4}, Ipv4Addr{5, 6, 7, 8}, 100, 200,
                    kProtoTcp};
  EXPECT_EQ(t.to_string(), "1.2.3.4:100 -> 5.6.7.8:200 proto=6");
}

}  // namespace
}  // namespace sprayer::net

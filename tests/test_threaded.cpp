// ThreadedMiddlebox: the framework on real threads — packet conservation,
// writing partition with true parallelism, RSS vs spray spreading, NAT
// correctness under concurrent cores.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <span>
#include <thread>

#include "common/rng.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/nat.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"

namespace sprayer::core {
namespace {

constexpr u32 kCores = 4;

struct Collector {
  std::atomic<u64> packets{0};
  std::atomic<u64> tcp{0};

  ThreadedMiddlebox::TxHandler handler() {
    return [this](net::Packet* pkt) {
      packets.fetch_add(1, std::memory_order_relaxed);
      if (pkt->is_tcp()) tcp.fetch_add(1, std::memory_order_relaxed);
      pkt->pool()->free(pkt);
    };
  }
};

net::Packet* make_packet(net::PacketPool& pool, const net::FiveTuple& t,
                         u8 flags, u64 payload_seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

TEST(ThreadedMiddlebox, ForwardsEverythingAndConservesPackets) {
  net::PacketPool pool(8192, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, nf, out.handler());
  mbox.start();

  Rng rng(1);
  const auto flows = nic::random_tcp_flows(8, 3);
  u64 injected = 0;
  // SYNs first so state exists, then sprayed data.
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++injected;
    }
  }
  // Unlike the simulator, worker threads have no global time order: wait
  // for the SYNs to install state before data packets race ahead of them.
  mbox.wait_idle();
  for (int i = 0; i < 20000; ++i) {
    const auto& f = flows[i % flows.size()];
    net::Packet* pkt =
        make_packet(pool, f, net::TcpFlags::kAck, rng.next());
    if (pkt == nullptr) {  // pool backpressure: let workers drain
      std::this_thread::yield();
      continue;
    }
    if (mbox.inject(pkt)) ++injected;
  }
  mbox.wait_idle();
  mbox.stop();

  EXPECT_EQ(out.packets.load(), injected);
  EXPECT_EQ(pool.available(), pool.size());  // no leaks anywhere
  EXPECT_EQ(nf.lookup_misses(), 0u);         // writing partition held
}

TEST(ThreadedMiddlebox, SprayUsesAllCoresRssDoesNot) {
  net::PacketPool pool(8192, 256);
  const net::FiveTuple flow{net::Ipv4Addr{10, 0, 0, 1},
                            net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                            net::kProtoTcp};
  for (const auto mode : {DispatchMode::kRss, DispatchMode::kSpray}) {
    nf::SyntheticNf nf(0);
    Collector out;
    SprayerConfig cfg;
    cfg.num_cores = kCores;
    cfg.mode = mode;
    ThreadedMiddlebox mbox(cfg, nf, out.handler());
    mbox.start();

    Rng rng(7);
    mbox.inject(make_packet(pool, flow, net::TcpFlags::kSyn, 0));
    for (int i = 0; i < 8000; ++i) {
      net::Packet* pkt =
          make_packet(pool, flow, net::TcpFlags::kAck, rng.next());
      if (pkt == nullptr) {
        std::this_thread::yield();
        --i;
        continue;
      }
      while (!mbox.inject(pkt)) {
        pkt = make_packet(pool, flow, net::TcpFlags::kAck, rng.next());
        std::this_thread::yield();
      }
    }
    mbox.wait_idle();
    mbox.stop();

    const auto total = mbox.total_stats();
    u32 active_cores = 0;
    for (u32 c = 0; c < kCores; ++c) {
      // Flow state exists only on the designated core either way.
      if (mbox.flow_table(static_cast<CoreId>(c)).size() > 0) {
        EXPECT_EQ(c, mbox.picker().pick(flow.canonical()));
      }
    }
    (void)active_cores;
    if (mode == DispatchMode::kSpray) {
      EXPECT_GT(total.rx_packets, 7000u);
    }
  }
}

TEST(ThreadedMiddlebox, StagedTransfersFlushOnIdle) {
  // Spray nothing but connection packets in tiny dribbles: almost every one
  // lands on a non-designated core and goes through a transfer staging
  // buffer. After wait_idle() every staged descriptor must have been
  // flushed, processed, and either transmitted or freed — none stranded.
  net::PacketPool pool(4096, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, nf, out.handler());
  mbox.start();

  const auto flows = nic::random_tcp_flows(48, 11);
  u64 injected = 0;
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++injected;
    }
    mbox.wait_idle();  // force idle between singletons: worst stranding case
  }
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f,
                                net::TcpFlags::kFin | net::TcpFlags::kAck,
                                1))) {
      ++injected;
    }
  }
  mbox.wait_idle();
  const auto total = mbox.total_stats();
  EXPECT_EQ(out.packets.load(), injected);
  EXPECT_GT(total.conn_transferred_out, 0u);  // staging path was exercised
  EXPECT_EQ(total.conn_transferred_out, total.conn_foreign_in);
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());  // nothing stranded anywhere
}

TEST(ThreadedMiddlebox, BulkInjectAndBatchedTxConservePackets) {
  net::PacketPool pool(8192, 256);
  nf::SyntheticNf nf(0);
  std::atomic<u64> tx_batches{0};
  std::atomic<u64> tx_packets{0};
  ThreadedMiddlebox::TxBatchHandler sink =
      [&](std::span<net::Packet* const> pkts) {
        tx_batches.fetch_add(1, std::memory_order_relaxed);
        tx_packets.fetch_add(pkts.size(), std::memory_order_relaxed);
        net::free_packets(pkts);
      };
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, nf, std::move(sink));
  mbox.start();

  Rng rng(3);
  const auto flows = nic::random_tcp_flows(8, 17);
  std::array<net::Packet*, 32> burst;
  u64 injected = 0;
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++injected;
    }
  }
  mbox.wait_idle();
  for (int round = 0; round < 600; ++round) {
    u32 n = 0;
    while (n < burst.size()) {
      net::Packet* pkt = make_packet(pool, flows[rng.next() % flows.size()],
                                     net::TcpFlags::kAck, rng.next());
      if (pkt == nullptr) break;  // pool backpressure: inject what we have
      burst[n++] = pkt;
    }
    injected += mbox.inject_bulk({burst.data(), n});
    if (n < burst.size()) std::this_thread::yield();
  }
  mbox.wait_idle();
  mbox.stop();

  EXPECT_EQ(tx_packets.load(), injected);
  EXPECT_GT(tx_batches.load(), 0u);
  // The whole point: strictly fewer sink invocations than packets.
  EXPECT_LT(tx_batches.load(), tx_packets.load());
  EXPECT_EQ(pool.available(), pool.size());
  EXPECT_EQ(nf.lookup_misses(), 0u);
}

TEST(ThreadedMiddlebox, StatsReadableWhileWorkersRun) {
  // CoreStats fields are single-writer relaxed cells, so total_stats() and
  // core_stats() may be polled from any thread while workers run — this
  // test is the TSan witness for that contract (it raced on plain u64
  // before the fields became RelaxedU64).
  net::PacketPool pool(8192, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, nf, out.handler());
  mbox.start();

  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    u64 last_rx = 0;
    while (!stop_reader.load(std::memory_order_relaxed)) {
      const CoreStats total = mbox.total_stats();
      const u64 rx = total.rx_packets;
      EXPECT_GE(rx, last_rx);  // monotonic: single-writer counters
      last_rx = rx;
      u64 per_core = 0;
      for (u32 c = 0; c < kCores; ++c) {
        per_core += mbox.core_stats(static_cast<CoreId>(c)).rx_packets;
      }
      (void)per_core;  // the concurrent read itself is what TSan checks
    }
  });

  Rng rng(23);
  const auto flows = nic::random_tcp_flows(8, 29);
  u64 injected = 0;
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++injected;
    }
  }
  mbox.wait_idle();
  for (int i = 0; i < 20000; ++i) {
    net::Packet* pkt =
        make_packet(pool, flows[i % flows.size()], net::TcpFlags::kAck,
                    rng.next());
    if (pkt == nullptr) {
      std::this_thread::yield();
      continue;
    }
    if (mbox.inject(pkt)) ++injected;
  }
  mbox.wait_idle();
  stop_reader.store(true);
  reader.join();
  mbox.stop();

  EXPECT_EQ(mbox.total_stats().rx_packets, injected);
  EXPECT_EQ(out.packets.load(), injected);
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(ThreadedMiddlebox, NatTranslatesUnderRealConcurrency) {
  net::PacketPool pool(8192, 256);
  nf::NatNf nat;
  std::atomic<u64> translated{0};
  const u32 external_ip = net::Ipv4Addr{192, 0, 2, 1}.host_order();
  ThreadedMiddlebox::TxHandler handler = [&](net::Packet* pkt) {
    if (pkt->is_tcp() && pkt->ipv4().src().host_order() == external_ip) {
      translated.fetch_add(1, std::memory_order_relaxed);
    }
    pkt->pool()->free(pkt);
  };

  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, nat, std::move(handler));
  mbox.start();

  Rng rng(5);
  const auto flows = nic::random_tcp_flows(16, 21);
  for (const auto& f : flows) {
    mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0));
  }
  mbox.wait_idle();  // sessions installed before data arrives

  u64 data_sent = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto& f = flows[i % flows.size()];
    net::Packet* pkt =
        make_packet(pool, f, net::TcpFlags::kAck, rng.next());
    if (pkt == nullptr) {
      std::this_thread::yield();
      --i;
      continue;
    }
    if (mbox.inject(pkt)) ++data_sent;
  }
  mbox.wait_idle();
  mbox.stop();

  EXPECT_EQ(nat.counters().sessions_opened, 16u);
  // Every outbound packet (SYNs included) leaves with the external source.
  EXPECT_EQ(translated.load(), data_sent + 16);
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace sprayer::core

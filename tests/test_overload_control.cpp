// Overload-control subsystem: the lossless-redirect invariant under tiny
// mesh rings and injected transfer faults, class-aware shedding at the rx
// boundary (drop-regular-first watermark, block), and the SimNic's matching
// admission semantics. The through-line is the paper's §3.3 asymmetry:
// connection packets are the only writes to flow state, so the framework
// may shed goodput but never a SYN/FIN/RST it has accepted.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/nat.hpp"
#include "nf/synthetic.hpp"
#include "nic/nic.hpp"
#include "nic/pktgen.hpp"
#include "sim/simulator.hpp"

namespace sprayer::core {
namespace {

constexpr u32 kCores = 4;

struct Collector {
  std::atomic<u64> packets{0};

  ThreadedMiddlebox::TxHandler handler() {
    return [this](net::Packet* pkt) {
      packets.fetch_add(1, std::memory_order_relaxed);
      pkt->pool()->free(pkt);
    };
  }
};

net::Packet* make_packet(net::PacketPool& pool, const net::FiveTuple& t,
                         u8 flags, u64 payload_seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

// The S4 scenario: a SYN/RST churn through the threaded NAT with mesh
// rings sized to reject and a deterministic fault schedule on top. Every
// connection packet must still reach its designated core — no port-pool
// leak, no stranded flow entries, transfer_drops == 0 — while regular
// elephant traffic between the waves absorbs the shedding.
TEST(OverloadControl, LosslessRedirectUnderTinyMeshRingsAndFaults) {
  net::PacketPool pool(8192, 256);
  nf::NatNf nat;
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.foreign_ring_capacity = 8;  // mesh rejections are the common case
  cfg.transfer_fault = {.reject_period = 3, .accept_cap = 0};
  ThreadedMiddlebox mbox(cfg, nat, out.handler());
  mbox.start();

  Rng rng(41);
  const auto flows = nic::random_tcp_flows(64, 37);
  u64 accepted = 0;
  // Wave 1: SYN flood — sessions open, every SYN crosses the mesh.
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++accepted;
    }
  }
  mbox.wait_idle();
  EXPECT_EQ(nat.counters().sessions_opened, flows.size());

  // Wave 2: elephant mix — sprayed data keeps the workers busy while the
  // fault schedule keeps rejecting transfers underneath.
  std::array<net::Packet*, 32> burst;
  for (int round = 0; round < 200; ++round) {
    u32 n = 0;
    while (n < burst.size()) {
      net::Packet* pkt = make_packet(pool, flows[rng.next() % flows.size()],
                                     net::TcpFlags::kAck, rng.next());
      if (pkt == nullptr) break;  // pool backpressure: inject what we have
      burst[n++] = pkt;
    }
    accepted += mbox.inject_bulk({burst.data(), n});
    if (n < burst.size()) std::this_thread::yield();
  }
  mbox.wait_idle();

  // Wave 3: RST teardown — sessions abort, ports release, both again over
  // the faulty mesh.
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kRst, 0))) {
      ++accepted;
    }
  }
  mbox.wait_idle();

  const CoreStats total = mbox.total_stats();
  EXPECT_GT(mbox.forced_rejections(), 0u);      // the schedule actually bit
  EXPECT_GT(total.transfer_retries, 0u);        // and the engine retried
  EXPECT_EQ(total.transfer_drops, 0u);          // ...without ever dropping
  EXPECT_EQ(total.conn_transferred_out, total.conn_foreign_in);
  EXPECT_EQ(mbox.pending_transfers(), 0u);
  // The NAT forwards everything it matched (RSTs included), so every
  // packet admitted at the rx boundary reached the sink.
  EXPECT_EQ(out.packets.load(), accepted);

  // State-correctness: every accepted SYN opened and every RST tore down.
  EXPECT_EQ(nat.counters().unmatched_dropped, 0u);
  EXPECT_EQ(nat.port_pool().claimed(), 0u);     // no leaked NAT ports
  u64 entries = 0;
  for (u32 c = 0; c < kCores; ++c) {
    entries += mbox.flow_table(static_cast<CoreId>(c)).size();
  }
  EXPECT_EQ(entries, 0u);                       // no stranded flow entries

  mbox.stop();
  EXPECT_EQ(mbox.total_stats().transfer_drops, 0u);  // stop stranded nothing
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(OverloadControl, FaultInjectionForcesRetriesNotDrops) {
  net::PacketPool pool(4096, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.transfer_fault = {.reject_period = 2, .accept_cap = 0};
  ThreadedMiddlebox mbox(cfg, nf, out.handler());
  mbox.start();

  // Connection packets only: all the traffic rides the faulty mesh.
  const auto flows = nic::random_tcp_flows(256, 51);
  u64 accepted = 0;
  for (const auto& f : flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++accepted;
    }
  }
  mbox.wait_idle();

  const CoreStats total = mbox.total_stats();
  EXPECT_GT(mbox.forced_rejections(), 0u);
  EXPECT_GT(total.transfer_retries, 0u);
  EXPECT_EQ(total.transfer_drops, 0u);
  EXPECT_EQ(total.conn_transferred_out, total.conn_foreign_in);
  EXPECT_EQ(out.packets.load(), accepted);
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
}

// Deterministic watermark arithmetic: inject before start() so ring
// occupancy is exact. rx_ring_capacity 64 at watermark 0.75 → regular
// packets shed from occupancy 48; the 16-slot headroom admits connection
// packets until the ring is truly full.
TEST(OverloadControl, DropRegularFirstShedsRegularKeepsConnHeadroom) {
  net::PacketPool pool(256, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = 1;  // one rx ring → exact occupancy
  cfg.mode = DispatchMode::kRss;
  cfg.rx_ring_capacity = 64;
  cfg.overload_policy = OverloadPolicy::kDropRegularFirst;
  cfg.rx_shed_watermark = 0.75;
  ThreadedMiddlebox mbox(cfg, nf, out.handler());

  const net::FiveTuple flow{net::Ipv4Addr{10, 0, 0, 1},
                            net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                            net::kProtoTcp};
  u32 regular_accepted = 0;
  for (u64 i = 0; i < 100; ++i) {
    if (mbox.inject(make_packet(pool, flow, net::TcpFlags::kAck, i))) {
      ++regular_accepted;
    }
  }
  EXPECT_EQ(regular_accepted, 48u);  // shed exactly at the watermark
  EXPECT_EQ(mbox.shed_regular(), 52u);
  EXPECT_EQ(mbox.shed_conn(), 0u);

  const auto conn_flows = nic::random_tcp_flows(20, 61);
  u32 conn_accepted = 0;
  for (const auto& f : conn_flows) {
    if (mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0))) {
      ++conn_accepted;
    }
  }
  EXPECT_EQ(conn_accepted, 16u);  // the reserved headroom, to the slot
  EXPECT_EQ(mbox.shed_conn(), 4u);
  EXPECT_EQ(mbox.rx_ring_drops(), 52u + 4u);

  mbox.start();
  mbox.wait_idle();
  mbox.stop();
  EXPECT_EQ(out.packets.load(), 48u + 16u);
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(OverloadControl, BlockPolicyNeverDropsAtRxBoundary) {
  net::PacketPool pool(4096, 256);
  nf::SyntheticNf nf(0);
  Collector out;
  SprayerConfig cfg;
  cfg.num_cores = 2;
  cfg.mode = DispatchMode::kSpray;
  cfg.rx_ring_capacity = 64;  // small enough that the driver must wait
  cfg.overload_policy = OverloadPolicy::kBlock;
  ThreadedMiddlebox mbox(cfg, nf, out.handler());
  mbox.start();

  Rng rng(71);
  const auto flows = nic::random_tcp_flows(16, 73);
  u64 injected = 0;
  for (const auto& f : flows) {
    ASSERT_TRUE(mbox.inject(make_packet(pool, f, net::TcpFlags::kSyn, 0)));
    ++injected;
  }
  mbox.wait_idle();
  for (int i = 0; i < 2000; ++i) {
    net::Packet* pkt = make_packet(pool, flows[i % flows.size()],
                                   net::TcpFlags::kAck, rng.next());
    if (pkt == nullptr) {
      std::this_thread::yield();
      --i;
      continue;
    }
    ASSERT_TRUE(mbox.inject(pkt));  // kBlock: admission cannot fail
    ++injected;
  }
  mbox.wait_idle();
  mbox.stop();

  EXPECT_EQ(mbox.rx_ring_drops(), 0u);
  EXPECT_EQ(out.packets.load(), injected);
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(OverloadControl, SimNicShedsRegularFirstAtWatermark) {
  sim::Simulator sim;
  nic::NicConfig cfg{.num_queues = 1, .queue_depth = 8};
  cfg.overload_policy = OverloadPolicy::kDropRegularFirst;
  cfg.shed_watermark = 0.75;  // threshold 6 of 8
  nic::SimNic nic(sim, cfg);
  net::PacketPool pool(64);

  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};
  for (u64 i = 0; i < 10; ++i) {
    nic.receive(make_packet(pool, t, net::TcpFlags::kAck, i));
  }
  EXPECT_EQ(nic.counters().rx_packets, 6u);
  EXPECT_EQ(nic.counters().rx_shed_regular, 4u);
  EXPECT_EQ(nic.counters().rx_dropped_conn, 0u);
  EXPECT_EQ(nic.counters().rx_missed, 4u);  // rx_missed stays the total

  // Connection packets fill the reserved headroom, then drop (a NIC cannot
  // park — kBlock degrades to this same behaviour).
  for (u64 i = 0; i < 3; ++i) {
    nic.receive(make_packet(pool, t, net::TcpFlags::kSyn, 100 + i));
  }
  EXPECT_EQ(nic.counters().rx_packets, 8u);
  EXPECT_EQ(nic.counters().rx_dropped_conn, 1u);
  EXPECT_EQ(nic.counters().rx_missed, 5u);

  net::Packet* burst[16];
  const u32 n = nic.rx_burst(0, burst, 16);
  EXPECT_EQ(n, 8u);
  for (u32 i = 0; i < n; ++i) pool.free(burst[i]);
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace sprayer::core

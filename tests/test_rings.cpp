// SPSC and MPMC rings: capacity semantics, bulk operations, FIFO order,
// and real-thread stress tests.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "runtime/batch.hpp"
#include "runtime/mpmc_ring.hpp"
#include "runtime/spsc_ring.hpp"

namespace sprayer::runtime {
namespace {

TEST(SpscRing, FillDrainExactCapacity) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full: no slot wasted
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);  // FIFO
  }
  int v;
  EXPECT_FALSE(ring.pop(v));
}

TEST(SpscRing, BulkPartialPushAndPop) {
  SpscRing<int> ring(8);
  std::vector<int> in(12);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(ring.push_bulk(in), 8u);  // only capacity fits

  std::vector<int> out(5);
  EXPECT_EQ(ring.pop_bulk(out), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.size_approx(), 3u);

  std::vector<int> rest(16);
  EXPECT_EQ(ring.pop_bulk(rest), 3u);
  EXPECT_EQ(rest[0], 5);
}

TEST(SpscRing, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(6), std::logic_error);
  EXPECT_THROW(SpscRing<int>(1), std::logic_error);
}

TEST(SpscRing, WrapsManyTimes) {
  SpscRing<u64> ring(4);
  u64 expected = 0;
  for (u64 i = 0; i < 10000; ++i) {
    EXPECT_TRUE(ring.push(i));
    if (i % 3 != 0) {
      u64 v;
      EXPECT_TRUE(ring.pop(v));
      EXPECT_EQ(v, expected++);
    }
    if (ring.size_approx() == 4) {  // drain when full
      u64 v;
      while (ring.pop(v)) EXPECT_EQ(v, expected++);
    }
  }
}

TEST(SpscRing, WrapsAcross2to32IndexBoundary) {
  // Free-running indices are u64; start them just below 2^32 so the test
  // crosses the boundary where a 32-bit index (or a truncating cast in the
  // masking arithmetic) would corrupt FIFO order.
  const u64 start = (1ull << 32) - 5;
  SpscRing<u64> ring(8, start);
  u64 produced = 0;
  u64 consumed = 0;
  for (int round = 0; round < 8; ++round) {  // indices end above 2^32 + 40
    for (int i = 0; i < 6; ++i) EXPECT_TRUE(ring.push(produced++));
    for (int i = 0; i < 6; ++i) {
      u64 v = ~0ull;
      ASSERT_TRUE(ring.pop(v));
      EXPECT_EQ(v, consumed++);
    }
  }
  u64 v;
  EXPECT_FALSE(ring.pop(v));
}

TEST(SpscRing, BulkPartialPrefixAcrossIndexBoundary) {
  const u64 start = (1ull << 32) - 3;
  SpscRing<int> ring(8, start);
  std::vector<int> in(12);
  std::iota(in.begin(), in.end(), 0);
  // Capacity-limited prefix, with the slot positions wrapping both the
  // ring mask and the 2^32 index line.
  EXPECT_EQ(ring.push_bulk(in), 8u);
  EXPECT_EQ(ring.size_approx(), 8u);

  std::vector<int> out(5);
  EXPECT_EQ(ring.pop_bulk(out), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);

  // Push the remainder (partial prefix of a 4-item span into 5 free slots).
  EXPECT_EQ(ring.push_bulk(std::span<const int>{in}.subspan(8)), 4u);
  std::vector<int> rest(16);
  EXPECT_EQ(ring.pop_bulk(rest), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(rest[i], 5 + i);
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, ThreadedProducerConsumerAcrossIndexBoundary) {
  // The stress pair, with indices straddling 2^32 from the start.
  SpscRing<u64> ring(64, (1ull << 32) - 100);
  constexpr u64 kCount = 100000;
  u64 sum_consumed = 0;
  std::thread consumer([&] {
    u64 received = 0;
    while (received < kCount) {
      u64 v;
      if (ring.pop(v)) {
        sum_consumed += v;
        ++received;
      }
    }
  });
  u64 sum_produced = 0;
  for (u64 i = 0; i < kCount; ++i) {
    while (!ring.push(i)) std::this_thread::yield();
    sum_produced += i;
  }
  consumer.join();
  EXPECT_EQ(sum_consumed, sum_produced);
}

TEST(SpscRing, ThreadedProducerConsumer) {
  SpscRing<u64> ring(1024);
  constexpr u64 kCount = 200000;
  u64 sum_consumed = 0;
  std::thread consumer([&] {
    u64 received = 0;
    while (received < kCount) {
      u64 v;
      if (ring.pop(v)) {
        sum_consumed += v;
        ++received;
      }
    }
  });
  u64 sum_produced = 0;
  for (u64 i = 0; i < kCount; ++i) {
    while (!ring.push(i)) std::this_thread::yield();
    sum_produced += i;
  }
  consumer.join();
  EXPECT_EQ(sum_consumed, sum_produced);
}

TEST(MpmcRing, FillDrain) {
  MpmcRing<int> ring(16);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(100));
  for (int i = 0; i < 16; ++i) {
    int v;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(ring.pop(v));
}

TEST(MpmcRing, ThreadedManyToOne) {
  MpmcRing<u64> ring(256);
  constexpr int kProducers = 3;
  constexpr u64 kPerProducer = 50000;
  std::atomic<u64> total{0};
  std::thread consumer([&] {
    u64 received = 0;
    while (received < kProducers * kPerProducer) {
      u64 v;
      if (ring.pop(v)) {
        total.fetch_add(v, std::memory_order_relaxed);
        ++received;
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        const u64 v = static_cast<u64>(p) * kPerProducer + i + 1;
        while (!ring.push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  const u64 n = kProducers * kPerProducer;
  EXPECT_EQ(total.load(), n * (n + 1) / 2);
}

TEST(PacketBatch, PushIterateClear) {
  PacketBatch batch;
  EXPECT_TRUE(batch.empty());
  // Opaque non-null pointers are fine for container semantics.
  auto fake = [](std::uintptr_t v) {
    return reinterpret_cast<net::Packet*>(v);
  };
  for (std::uintptr_t i = 1; i <= 5; ++i) batch.push(fake(i * 8));
  EXPECT_EQ(batch.size(), 5u);
  u32 count = 0;
  for (net::Packet* p : batch) {
    EXPECT_EQ(p, fake((count + 1) * 8));
    ++count;
  }
  EXPECT_EQ(count, 5u);
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace sprayer::runtime

// Deterministic TCP loss-recovery and reordering tests: a programmable
// "wire" between two connections drops, delays, or reorders specific
// segments, so every recovery mechanism can be exercised precisely —
// fast retransmit, SACK hole filling, RACK, adaptive reordering threshold,
// and the RFC 6675 new-SACK-only dupACK rule.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>

#include "tcp/connection.hpp"

namespace sprayer::tcp {
namespace {

/// A wire that delivers segments between two connections with a
/// programmable per-packet action. Default: deliver after a fixed delay.
class Wire final : public ISegmentOut, public sim::IEventTarget {
 public:
  enum class Action { kDeliver, kDrop, kDelay };
  using Filter = std::function<Action(net::Packet*)>;

  Wire(sim::Simulator& sim, Time base_delay)
      : sim_(sim), base_delay_(base_delay) {}

  void set_peer(TcpConnection* peer) { peer_ = peer; }
  void set_filter(Filter f) { filter_ = std::move(f); }
  void set_extra_delay(Time d) { extra_delay_ = d; }

  void output(net::Packet* pkt) override {
    ++segments_;
    Action action = Action::kDeliver;
    if (filter_) {
      pkt->parse();
      action = filter_(pkt);
    }
    if (action == Action::kDrop) {
      ++dropped_;
      pkt->pool()->free(pkt);
      return;
    }
    // Serialize packets (bursts are not instantaneous on a real wire).
    const Time start = std::max(sim_.now(), next_free_);
    next_free_ = start + per_packet_;
    Time due = start + base_delay_;
    if (action == Action::kDelay) {
      ++delayed_;
      due += extra_delay_;
    }
    pending_.emplace(due, pkt);
    sim_.schedule_at(due, this, 1);
  }

  void handle_event(u64 /*tag*/) override {
    // One event per queued packet; delivering the earliest-due entry at
    // each firing realizes the per-packet delays — a Delay action makes
    // its packet overtake nothing but be overtaken by later arrivals,
    // i.e. genuine reordering.
    SPRAYER_CHECK(!pending_.empty());
    const auto it = pending_.begin();
    net::Packet* pkt = it->second;
    pending_.erase(it);
    peer_->on_segment(pkt);
  }

  [[nodiscard]] u64 segments() const noexcept { return segments_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }
  [[nodiscard]] u64 delayed() const noexcept { return delayed_; }

 private:
  sim::Simulator& sim_;
  Time base_delay_;
  Time per_packet_ = 1 * kMicrosecond;    // wire serialization
  Time next_free_ = 0;
  Time extra_delay_ = 20 * kMicrosecond;  // ~20-packet displacement
  TcpConnection* peer_ = nullptr;
  Filter filter_;
  std::multimap<Time, net::Packet*> pending_;  // due time -> packet
  u64 segments_ = 0;
  u64 dropped_ = 0;
  u64 delayed_ = 0;
};

struct Pair {
  sim::Simulator sim;
  net::PacketPool pool{4096, 1600};
  Wire c2s{sim, 50 * kMicrosecond};
  Wire s2c{sim, 50 * kMicrosecond};
  std::unique_ptr<TcpConnection> client;
  std::unique_ptr<TcpConnection> server;

  explicit Pair(TcpConfig cfg = {}) {
    const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                           net::Ipv4Addr{10, 0, 0, 2}, 40000, 5201,
                           net::kProtoTcp};
    client = std::make_unique<TcpConnection>(sim, pool, c2s, t, cfg,
                                             /*active=*/true, 1);
    TcpConfig server_cfg = cfg;
    server = std::make_unique<TcpConnection>(sim, pool, s2c, t.reversed(),
                                             server_cfg, /*active=*/false, 2);
    c2s.set_peer(server.get());
    s2c.set_peer(client.get());
  }

};

// The Wire cannot create the passive connection (no Host); drive the
// handshake manually by intercepting the first SYN.
struct Session : Pair {
  explicit Session(TcpConfig cfg = {}) : Pair(cfg) {
    bool syn_seen = false;
    c2s.set_filter([this, &syn_seen](net::Packet* pkt) {
      if (!syn_seen && pkt->is_tcp() &&
          pkt->tcp().has(net::TcpFlags::kSyn)) {
        syn_seen = true;
        const auto ts = parse_ts(pkt->tcp());
        server->accept_syn(pkt->tcp().seq(), ts ? ts->tsval : 0);
        return Wire::Action::kDrop;  // consumed by accept_syn
      }
      return Wire::Action::kDeliver;
    });
    client->open();
    // Just long enough for SYN (consumed at t=0) / SYN-ACK (50 us) /
    // handshake ACK (100 us): tests install their filters before any
    // meaningful amount of data has crossed the wire.
    sim.run_until(from_micros(120));
    c2s.set_filter(nullptr);
    SPRAYER_CHECK(client->state() == TcpState::kEstablished);
    SPRAYER_CHECK(server->state() == TcpState::kEstablished);
  }
};

TEST(TcpRecovery, CleanTransferNoRetransmits) {
  TcpConfig cfg;
  cfg.bytes_to_send = 500000;
  Session s(cfg);
  s.sim.run_until(from_seconds(1.0));
  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 500000u);
  EXPECT_EQ(s.client->stats().retransmits, 0u);
  EXPECT_EQ(s.client->stats().rtos, 0u);
  EXPECT_EQ(s.pool.available(), s.pool.size());
}

TEST(TcpRecovery, SingleDropRecoversByFastRetransmit) {
  TcpConfig cfg;
  cfg.bytes_to_send = 500000;
  Session s(cfg);
  // Drop exactly one data segment mid-flow.
  bool dropped = false;
  s.c2s.set_filter([&dropped](net::Packet* pkt) {
    if (!dropped && pkt->l4_payload_len() > 0 &&
        pkt->tcp().seq() % 7 == 3) {  // some mid-stream segment
      dropped = true;
      return Wire::Action::kDrop;
    }
    return Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(1.0));

  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 500000u);
  if (dropped) {
    EXPECT_GE(s.client->stats().retransmits, 1u);
    EXPECT_EQ(s.client->stats().rtos, 0u);  // recovered without timeout
  }
}

TEST(TcpRecovery, BurstDropRecoversViaSackHoles) {
  TcpConfig cfg;
  cfg.bytes_to_send = 1'000'000;
  Session s(cfg);
  // Drop 10 consecutive data segments once.
  int to_drop = 0;
  bool armed = true;
  u64 seen = 0;
  s.c2s.set_filter([&](net::Packet* pkt) {
    if (pkt->l4_payload_len() == 0) return Wire::Action::kDeliver;
    ++seen;
    if (armed && seen == 50) {
      to_drop = 10;
      armed = false;
    }
    if (to_drop > 0) {
      --to_drop;
      return Wire::Action::kDrop;
    }
    return Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(2.0));

  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 1'000'000u);
  EXPECT_GE(s.client->stats().retransmits, 10u);
  EXPECT_GT(s.client->stats().sack_blocks_received, 0u);
}

TEST(TcpRecovery, RtoWhenAllAcksLost) {
  TcpConfig cfg;
  cfg.bytes_to_send = 50000;
  Session s(cfg);
  // Black-hole the reverse path for a while: the client must RTO.
  bool blackhole = true;
  s.s2c.set_filter([&blackhole](net::Packet*) {
    return blackhole ? Wire::Action::kDrop : Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(0.05));
  EXPECT_GE(s.client->stats().rtos, 1u);
  blackhole = false;
  s.s2c.set_filter(nullptr);
  s.sim.run_until(from_seconds(3.0));
  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 50000u);
}

TEST(TcpReordering, MildReorderingDoesNotRetransmit) {
  TcpConfig cfg;
  cfg.bytes_to_send = 800000;
  Session s(cfg);
  // Delay every 20th data segment by an extra 20 us — a sub-RTT skew of
  // ~20 packets, exactly the kind of displacement spraying produces
  // (packets of one flow leaving different cores at different times).
  u64 seen = 0;
  s.c2s.set_filter([&seen](net::Packet* pkt) {
    if (pkt->l4_payload_len() == 0) return Wire::Action::kDeliver;
    return (++seen % 20 == 0) ? Wire::Action::kDelay
                              : Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(2.0));

  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 800000u);
  EXPECT_GT(s.server->stats().ooo_segments, 0u);  // reordering happened
  EXPECT_GT(s.c2s.delayed(), 0u);
  // Adaptive threshold + RACK confine spurious retransmissions to the
  // first few events, before the threshold has adapted (Linux behaves the
  // same way): far fewer than the displaced segments, and no timeouts.
  EXPECT_LT(s.client->stats().retransmits, s.c2s.delayed());
  EXPECT_LT(s.client->stats().retransmits,
            s.server->stats().ooo_segments / 4);
  EXPECT_EQ(s.client->stats().rtos, 0u);
}

TEST(TcpReordering, ThresholdAdaptsUpward) {
  TcpConfig cfg;
  cfg.bytes_to_send = 800000;
  Session s(cfg);
  EXPECT_EQ(s.client->reordering_threshold(), cfg.dupack_threshold);
  u64 seen = 0;
  s.c2s.set_filter([&seen](net::Packet* pkt) {
    if (pkt->l4_payload_len() == 0) return Wire::Action::kDeliver;
    return (++seen % 10 == 0) ? Wire::Action::kDelay
                              : Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(2.0));
  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_GT(s.client->reordering_threshold(), cfg.dupack_threshold);
  EXPECT_GT(s.client->stats().reordering_events, 0u);
}

TEST(TcpReordering, WithoutAdaptationSpuriousRetransmitsExplode) {
  TcpConfig adaptive;
  adaptive.bytes_to_send = 2'000'000;
  TcpConfig rigid = adaptive;
  rigid.adaptive_reordering = false;
  rigid.rack_enabled = false;

  u64 retx[2];
  int idx = 0;
  for (const TcpConfig& cfg : {adaptive, rigid}) {
    Session s(cfg);
    u64 seen = 0;
    s.c2s.set_filter([&seen](net::Packet* pkt) {
      if (pkt->l4_payload_len() == 0) return Wire::Action::kDeliver;
      return (++seen % 8 == 0) ? Wire::Action::kDelay
                               : Wire::Action::kDeliver;
    });
    s.sim.run_until(from_seconds(3.0));
    EXPECT_EQ(s.server->stats().bytes_delivered, 2'000'000u);
    retx[idx++] = s.client->stats().retransmits;
  }
  // The fixed 3-dupACK threshold misfires on displaced segments; the
  // adaptive stack avoids most of those spurious retransmissions.
  EXPECT_LT(retx[0] * 3, retx[1] + 3);
}

TEST(TcpReordering, RackStillCatchesRealLossUnderReordering) {
  TcpConfig cfg;
  cfg.bytes_to_send = 600000;
  Session s(cfg);
  u64 seen = 0;
  bool dropped_one = false;
  s.c2s.set_filter([&](net::Packet* pkt) {
    if (pkt->l4_payload_len() == 0) return Wire::Action::kDeliver;
    ++seen;
    if (seen == 120 && !dropped_one) {
      dropped_one = true;
      return Wire::Action::kDrop;  // one real loss amid reordering
    }
    return (seen % 12 == 0) ? Wire::Action::kDelay : Wire::Action::kDeliver;
  });
  s.sim.run_until(from_seconds(3.0));

  EXPECT_EQ(s.client->state(), TcpState::kDone);
  EXPECT_EQ(s.server->stats().bytes_delivered, 600000u);
  EXPECT_EQ(s.client->stats().rtos, 0u);  // the loss was caught pre-RTO
  EXPECT_GE(s.client->stats().retransmits, 1u);
}

}  // namespace
}  // namespace sprayer::tcp

// Non-TCP traffic under spraying (must fall back to per-flow RSS and never
// be redirected, §4/§7) and overload accounting (NIC queue drops, FDIR
// ceiling) through the full middlebox.
#include <gtest/gtest.h>

#include "core/middlebox.hpp"
#include "nf/monitor.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"

namespace sprayer {
namespace {

struct Rig {
  sim::Simulator sim;
  net::PacketPool pool{1u << 15, 256};
  core::SimMiddlebox mbox;
  nic::MeasureSink sink{sim};
  sim::Link in_link;
  sim::Link out1;
  sim::Link out0;

  explicit Rig(core::INetworkFunction& nf, core::SprayerConfig cfg = {},
               nic::NicConfig nic_cfg = {})
      : mbox(sim, cfg, nf, nic_cfg),
        in_link(sim, in_cfg(), mbox.ingress(), "in"),
        out1(sim, sim::LinkConfig{}, sink, "o1"),
        out0(sim, sim::LinkConfig{}, sink, "o0") {
    mbox.attach_tx_link(1, out1);
    mbox.attach_tx_link(0, out0);
  }

  static sim::LinkConfig in_cfg() {
    sim::LinkConfig cfg;
    cfg.egress_port_label = 0;
    cfg.queue_packets = 8192;  // tests inject bursts directly into the link
    return cfg;
  }
};

net::Packet* make_udp(net::PacketPool& pool, const net::FiveTuple& t,
                      u64 payload_seed) {
  net::UdpDatagramSpec spec;
  spec.tuple = t;
  spec.payload_len = 16;
  u8 payload[16]{};
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  return net::build_udp_raw(pool, spec);
}

TEST(UdpThroughMiddlebox, SprayModeKeepsUdpPerFlow) {
  nf::MonitorNf monitor;
  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kSpray;
  Rig rig(monitor, cfg);

  // One UDP flow, randomized payloads (so checksums vary): if UDP were
  // sprayed, packets would spread over queues. They must not.
  net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2},
                   5000, 53, net::kProtoUdp};
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    rig.in_link.send(make_udp(rig.pool, t, rng.next()));
  }
  rig.sim.run_until(rig.sim.now() + 5 * kMillisecond);

  const auto report = rig.mbox.report();
  EXPECT_EQ(report.nic.fdir_matched, 0u);       // FDIR is TCP-only
  EXPECT_EQ(report.nic.rss_dispatched, 2000u);  // all via RSS fallback
  u32 cores_used = 0;
  for (const auto& cs : report.per_core) {
    if (cs.rx_packets > 0) ++cores_used;
  }
  EXPECT_EQ(cores_used, 1u);  // one flow → one core, even in spray mode
  EXPECT_EQ(report.total.conn_transferred_out, 0u);  // never redirected
  EXPECT_EQ(rig.sink.packets(), 2000u);
  EXPECT_EQ(monitor.aggregate().udp_packets, 2000u);
}

TEST(UdpThroughMiddlebox, MixedTrafficSplitsCorrectly) {
  nf::MonitorNf monitor;
  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kSpray;
  Rig rig(monitor, cfg);

  net::FiveTuple udp_t{net::Ipv4Addr{10, 0, 0, 1},
                       net::Ipv4Addr{10, 0, 0, 2}, 5000, 53,
                       net::kProtoUdp};
  Rng rng(3);
  const auto tcp_flows = nic::random_tcp_flows(1, 5);
  for (int i = 0; i < 1000; ++i) {
    rig.in_link.send(make_udp(rig.pool, udp_t, rng.next()));
    net::TcpSegmentSpec spec;
    spec.tuple = tcp_flows[0];
    spec.flags = net::TcpFlags::kAck;
    spec.payload_len = 8;
    u8 payload[8];
    const u64 r = rng.next();
    std::memcpy(payload, &r, 8);
    spec.payload = payload;
    rig.in_link.send(net::build_tcp_raw(rig.pool, spec));
  }
  rig.sim.run_until(rig.sim.now() + 5 * kMillisecond);

  const auto report = rig.mbox.report();
  EXPECT_EQ(report.nic.fdir_matched, 1000u);    // the TCP packets sprayed
  EXPECT_EQ(report.nic.rss_dispatched, 1000u);  // the UDP ones not
  const auto totals = monitor.aggregate();
  EXPECT_EQ(totals.udp_packets, 1000u);
  EXPECT_EQ(totals.tcp_packets, 1000u);
}

TEST(Overload, QueueDropsAreCountedAndBounded) {
  // A 10k-cycle NF at one core's capacity with everything hashed to one
  // queue (RSS, single flow) must tail-drop at the NIC queue, not leak.
  nf::SyntheticNf nf(10000);
  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kRss;
  nic::NicConfig nic_cfg;
  nic_cfg.queue_depth = 128;
  Rig rig(nf, cfg, nic_cfg);

  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = 2e6;  // 10x one core's capacity at 10k cycles
  gen_cfg.num_flows = 1;
  gen_cfg.stop_at = from_seconds(0.01);
  nic::PacketGen gen(rig.sim, rig.pool, rig.in_link, gen_cfg);
  gen.start();
  rig.sim.run_until(from_seconds(0.02));

  const auto report = rig.mbox.report();
  EXPECT_GT(report.nic.rx_missed, 0u);
  // Conservation incl. drops: offered = forwarded + NIC drops.
  EXPECT_EQ(gen.sent() + 1 /*SYN*/,
            rig.sink.packets() + report.nic.rx_missed);
  EXPECT_EQ(rig.pool.available(), rig.pool.size());
  // Processed ≈ capacity: 2 GHz / ~10.2k cycles ≈ 0.196 Mpps for 10 ms.
  EXPECT_NEAR(static_cast<double>(rig.sink.packets()), 0.196e6 * 0.01,
              0.196e6 * 0.01 * 0.15);
}

TEST(Overload, FdirCeilingShowsUpInReport) {
  nf::SyntheticNf nf(0);
  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kSpray;
  Rig rig(nf, cfg);  // default NIC: 10.4 Mpps FDIR ceiling

  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = line_rate_pps(10e9, 60);  // 14.88 Mpps > ceiling
  gen_cfg.num_flows = 1;
  gen_cfg.stop_at = from_seconds(0.01);
  nic::PacketGen gen(rig.sim, rig.pool, rig.in_link, gen_cfg);
  gen.start();
  rig.sim.run_until(from_seconds(0.02));

  const auto report = rig.mbox.report();
  EXPECT_GT(report.nic.fdir_overload_drops, 30000u);  // ~4.5 Mpps dropped
  const double accepted =
      static_cast<double>(report.nic.rx_packets) / 0.01;
  EXPECT_NEAR(accepted, 10.4e6, 0.05 * 10.4e6);
}

TEST(Overload, ResetStatsClearsEverything) {
  nf::SyntheticNf nf(0);
  Rig rig(nf);
  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = 1e6;
  gen_cfg.stop_at = from_seconds(0.002);
  nic::PacketGen gen(rig.sim, rig.pool, rig.in_link, gen_cfg);
  gen.start();
  rig.sim.run_until(from_seconds(0.004));

  ASSERT_GT(rig.mbox.report().total.rx_packets, 0u);
  rig.mbox.reset_stats();
  const auto report = rig.mbox.report();
  EXPECT_EQ(report.total.rx_packets, 0u);
  EXPECT_EQ(report.total.tx_packets, 0u);
  EXPECT_EQ(report.nic.rx_packets, 0u);
  // Flow state is NOT cleared by a stats reset.
  EXPECT_GT(report.flow_entries, 0u);
}

}  // namespace
}  // namespace sprayer

// SprayerCore engine unit tests with a mock platform port: classification,
// redirection, verdict handling, stateless mode, cycle accounting — and the
// FlowStateApi contract (writing-partition enforcement).
#include <gtest/gtest.h>

#include <deque>

#include "core/core_picker.hpp"
#include "core/engine.hpp"
#include "core/flow_state.hpp"
#include "core/nf.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nic/pktgen.hpp"

namespace sprayer::core {
namespace {

constexpr u32 kCores = 4;

/// Records transfers and transmissions instead of performing them.
class MockPort final : public ICorePort {
 public:
  bool transfer(CoreId dest, net::Packet* pkt) override {
    if (reject_transfers) return false;
    transferred.emplace_back(dest, pkt);
    return true;
  }
  void transmit(net::Packet* pkt) override { transmitted.push_back(pkt); }

  std::vector<std::pair<CoreId, net::Packet*>> transferred;
  std::vector<net::Packet*> transmitted;
  bool reject_transfers = false;
};

/// NF that records which handler saw which packets and can drop by port.
class RecordingNf final : public INetworkFunction {
 public:
  void init(NfInitConfig& cfg, u32 /*cores*/) override {
    cfg.flow_table_capacity = 256;
    cfg.flow_entry_size = 8;
    cfg.stateless = stateless;
  }
  void connection_packets(runtime::PacketBatch& batch, NfContext& ctx,
                          BatchVerdicts& /*v*/) override {
    conn_seen += batch.size();
    ctx.consume_cycles(conn_cost * batch.size());
  }
  void regular_packets(runtime::PacketBatch& batch, NfContext& ctx,
                       BatchVerdicts& verdicts) override {
    regular_seen += batch.size();
    ctx.consume_cycles(regular_cost * batch.size());
    for (u32 i = 0; i < batch.size(); ++i) {
      if (drop_port != 0 && batch[i]->is_tcp() &&
          batch[i]->tcp().dst_port() == drop_port) {
        verdicts.drop(i);
      }
    }
  }

  bool stateless = false;
  Cycles conn_cost = 0;
  Cycles regular_cost = 0;
  u16 drop_port = 0;
  u64 conn_seen = 0;
  u64 regular_seen = 0;
};

struct EngineBench {
  net::PacketPool pool{512, 256};
  SprayerConfig cfg;
  CorePicker picker{kCores};
  std::vector<std::unique_ptr<FlowTable>> tables;
  std::vector<FlowTable*> table_ptrs;
  RecordingNf nf;
  DynamicChain chain{nf};
  MockPort port;
  std::unique_ptr<NfContext> ctx;
  std::vector<NfContext*> ctx_ptrs;
  std::unique_ptr<SprayerCore> engine;
  CoreId core_id;

  explicit EngineBench(CoreId id = 0, bool stateless = false) : core_id(id) {
    cfg.num_cores = kCores;
    nf.stateless = stateless;
    for (u32 c = 0; c < kCores; ++c) {
      tables.push_back(
          std::make_unique<FlowTable>(256, 8, static_cast<CoreId>(c)));
      table_ptrs.push_back(tables.back().get());
    }
    ctx = std::make_unique<NfContext>(
        id, std::span<FlowTable* const>{table_ptrs}, picker, cfg.costs);
    ctx_ptrs.push_back(ctx.get());
    engine = std::make_unique<SprayerCore>(
        id, cfg, stateless, chain, picker,
        std::span<NfContext* const>{ctx_ptrs}, port);
  }

  net::Packet* make(const net::FiveTuple& t, u8 flags) {
    net::TcpSegmentSpec spec;
    spec.tuple = t;
    spec.flags = flags;
    net::Packet* pkt = net::build_tcp_raw(pool, spec);
    return pkt;
  }

  /// A tuple whose designated core is `target`.
  net::FiveTuple tuple_for_core(CoreId target, u64 seed = 0) {
    Rng rng(1234 + seed);
    for (;;) {
      net::FiveTuple t;
      t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
      t.dst_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
      t.src_port = static_cast<u16>(rng.next());
      t.dst_port = static_cast<u16>(rng.uniform_range(1, 65535));
      t.protocol = net::kProtoTcp;
      if (picker.pick(t) == target) return t;
    }
  }
};

TEST(Engine, RegularPacketsProcessedLocally) {
  EngineBench b;
  runtime::PacketBatch batch;
  batch.push(b.make(b.tuple_for_core(2), net::TcpFlags::kAck));
  batch.push(b.make(b.tuple_for_core(3), net::TcpFlags::kAck));
  const Cycles cycles = b.engine->process_rx(batch, 0);

  EXPECT_EQ(b.nf.regular_seen, 2u);
  EXPECT_EQ(b.nf.conn_seen, 0u);
  EXPECT_EQ(b.port.transmitted.size(), 2u);   // forwarded regardless of core
  EXPECT_EQ(b.port.transferred.size(), 0u);   // regular packets never move
  EXPECT_GT(cycles, 0u);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
}

TEST(Engine, ConnectionPacketsRedirectedToDesignatedCore) {
  EngineBench b(/*id=*/0);
  runtime::PacketBatch batch;
  const auto local = b.tuple_for_core(0);
  const auto remote = b.tuple_for_core(3);
  batch.push(b.make(local, net::TcpFlags::kSyn));
  batch.push(b.make(remote, net::TcpFlags::kSyn));
  batch.push(b.make(remote, net::TcpFlags::kFin | net::TcpFlags::kAck));
  (void)b.engine->process_rx(batch, 0);

  EXPECT_EQ(b.nf.conn_seen, 1u);  // the local one
  ASSERT_EQ(b.port.transferred.size(), 2u);
  EXPECT_EQ(b.port.transferred[0].first, 3);
  EXPECT_EQ(b.port.transferred[1].first, 3);
  EXPECT_EQ(b.engine->stats().conn_local, 1u);
  EXPECT_EQ(b.engine->stats().conn_transferred_out, 2u);
  for (auto& [core, p] : b.port.transferred) b.pool.free(p);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
}

TEST(Engine, TransferRejectionParksAndRetriesLosslessly) {
  EngineBench b(/*id=*/0);
  b.port.reject_transfers = true;
  runtime::PacketBatch batch;
  batch.push(b.make(b.tuple_for_core(1), net::TcpFlags::kSyn));
  (void)b.engine->process_rx(batch, 0);

  // The rejected descriptor is parked, not freed: transfer_drops stays
  // zero and the packet is still owned by the engine.
  EXPECT_EQ(b.engine->stats().transfer_drops, 0u);
  EXPECT_EQ(b.engine->pending_transfers(), 1u);
  EXPECT_GT(b.engine->stats().transfer_retries, 0u);
  EXPECT_EQ(b.pool.available(), b.pool.size() - 1);

  // Several more flush rounds against a still-full ring keep it parked.
  b.engine->flush_transfers();
  b.engine->flush_transfers();
  EXPECT_EQ(b.engine->pending_transfers(), 1u);
  EXPECT_EQ(b.engine->stats().transfer_drops, 0u);
  EXPECT_EQ(b.engine->stats().conn_transferred_out, 0u);

  // Once the destination has room again the backlog is delivered.
  b.port.reject_transfers = false;
  b.engine->flush_transfers();
  EXPECT_EQ(b.engine->pending_transfers(), 0u);
  EXPECT_EQ(b.engine->stats().conn_transferred_out, 1u);
  ASSERT_EQ(b.port.transferred.size(), 1u);
  EXPECT_EQ(b.port.transferred[0].first, 1);
  for (auto& [core, p] : b.port.transferred) b.pool.free(p);
  EXPECT_EQ(b.pool.available(), b.pool.size());
}

TEST(Engine, RetryPreservesOrderAndReleaseStrandedFrees) {
  EngineBench b(/*id=*/0);
  b.port.reject_transfers = true;
  // Park a SYN, then stage a FIN for the same destination while the ring
  // is still full: the retry must deliver the SYN first.
  runtime::PacketBatch first;
  first.push(b.make(b.tuple_for_core(1), net::TcpFlags::kSyn));
  (void)b.engine->process_rx(first, 0);
  runtime::PacketBatch second;
  second.push(b.make(b.tuple_for_core(1),
                     net::TcpFlags::kFin | net::TcpFlags::kAck));
  (void)b.engine->process_rx(second, 0);
  EXPECT_EQ(b.engine->pending_transfers(), 2u);

  b.port.reject_transfers = false;
  b.engine->flush_transfers();
  ASSERT_EQ(b.port.transferred.size(), 2u);
  EXPECT_TRUE(b.port.transferred[0].second->tcp().flags() &
              net::TcpFlags::kSyn);
  EXPECT_TRUE(b.port.transferred[1].second->tcp().flags() &
              net::TcpFlags::kFin);
  for (auto& [core, p] : b.port.transferred) b.pool.free(p);

  // Teardown path: a backlog the executor could never place is freed and
  // only then counted as dropped.
  b.port.transferred.clear();
  b.port.reject_transfers = true;
  runtime::PacketBatch third;
  third.push(b.make(b.tuple_for_core(1), net::TcpFlags::kRst));
  (void)b.engine->process_rx(third, 0);
  EXPECT_EQ(b.engine->pending_transfers(), 1u);
  EXPECT_EQ(b.engine->release_stranded(), 1u);
  EXPECT_EQ(b.engine->pending_transfers(), 0u);
  EXPECT_EQ(b.engine->stats().transfer_drops, 1u);
  EXPECT_EQ(b.pool.available(), b.pool.size());
}

TEST(Engine, ForeignBatchGoesToConnectionHandler) {
  EngineBench b(/*id=*/2);
  runtime::PacketBatch batch;
  batch.push(b.make(b.tuple_for_core(2), net::TcpFlags::kSyn));
  batch.push(b.make(b.tuple_for_core(2, 1), net::TcpFlags::kRst));
  (void)b.engine->process_foreign(batch, 0);

  EXPECT_EQ(b.nf.conn_seen, 2u);
  EXPECT_EQ(b.engine->stats().conn_foreign_in, 2u);
  EXPECT_EQ(b.port.transmitted.size(), 2u);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
}

TEST(Engine, StatelessModeNeverRedirects) {
  EngineBench b(/*id=*/0, /*stateless=*/true);
  runtime::PacketBatch batch;
  batch.push(b.make(b.tuple_for_core(3), net::TcpFlags::kSyn));
  batch.push(b.make(b.tuple_for_core(3), net::TcpFlags::kAck));
  (void)b.engine->process_rx(batch, 0);

  EXPECT_EQ(b.port.transferred.size(), 0u);
  EXPECT_EQ(b.nf.regular_seen, 2u);  // everything goes to regular_packets
  EXPECT_EQ(b.nf.conn_seen, 0u);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
}

TEST(Engine, VerdictDropsAreFreedAndCounted) {
  EngineBench b;
  b.nf.drop_port = 999;
  net::FiveTuple t = b.tuple_for_core(1);
  t.dst_port = 999;
  runtime::PacketBatch batch;
  batch.push(b.make(t, net::TcpFlags::kAck));
  batch.push(b.make(b.tuple_for_core(1, 7), net::TcpFlags::kAck));
  (void)b.engine->process_rx(batch, 0);

  EXPECT_EQ(b.engine->stats().nf_drops, 1u);
  EXPECT_EQ(b.port.transmitted.size(), 1u);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
  EXPECT_EQ(b.pool.available(), b.pool.size());
}

TEST(Engine, CycleAccountingIncludesNfWork) {
  EngineBench cheap;
  EngineBench costly;
  costly.nf.regular_cost = 5000;

  runtime::PacketBatch a, bb;
  a.push(cheap.make(cheap.tuple_for_core(1), net::TcpFlags::kAck));
  bb.push(costly.make(costly.tuple_for_core(1), net::TcpFlags::kAck));
  const Cycles c1 = cheap.engine->process_rx(a, 0);
  const Cycles c2 = costly.engine->process_rx(bb, 0);
  EXPECT_EQ(c2 - c1, 5000u);
  for (net::Packet* p : cheap.port.transmitted) cheap.pool.free(p);
  for (net::Packet* p : costly.port.transmitted) costly.pool.free(p);
}

TEST(Engine, NonTcpPacketsAreRegularEvenInSprayMode) {
  EngineBench b;
  net::UdpDatagramSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2}, 53,
                53, net::kProtoUdp};
  runtime::PacketBatch batch;
  batch.push(net::build_udp_raw(b.pool, spec));
  (void)b.engine->process_rx(batch, 0);
  EXPECT_EQ(b.nf.regular_seen, 1u);
  EXPECT_EQ(b.port.transferred.size(), 0u);
  for (net::Packet* p : b.port.transmitted) b.pool.free(p);
}

// --- FlowStateApi contract ----------------------------------------------

struct ApiBench : EngineBench {
  ApiBench() : EngineBench(0) {}
  FlowStateApi& api() { return ctx->flows(); }
};

TEST(FlowStateApi, WritingPartitionViolationsThrow) {
  ApiBench b;
  const auto foreign = b.tuple_for_core(2);
  EXPECT_THROW((void)b.api().insert_local_flow(foreign), std::logic_error);
  EXPECT_THROW((void)b.api().remove_local_flow(foreign), std::logic_error);
  // Reads of foreign flows are always allowed.
  EXPECT_EQ(b.api().get_flow(foreign), nullptr);
}

TEST(FlowStateApi, LocalInsertAndRemoteRead) {
  ApiBench b;
  const auto local = b.tuple_for_core(0);
  void* e = b.api().insert_local_flow(local);
  ASSERT_NE(e, nullptr);
  *static_cast<u64*>(e) = 0x1234;

  // Another core's context reads it via get_flow.
  NfContext ctx2(2, std::span<FlowTable* const>{b.table_ptrs}, b.picker,
                 b.cfg.costs);
  const void* remote = ctx2.flows().get_flow(local);
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(*static_cast<const u64*>(remote), 0x1234u);

  // And a consistent snapshot too.
  u8 buf[8];
  EXPECT_TRUE(ctx2.flows().read_flow(local, buf));
  u64 v;
  std::memcpy(&v, buf, 8);
  EXPECT_EQ(v, 0x1234u);
}

TEST(FlowStateApi, BulkGetFlows) {
  ApiBench b;
  std::vector<net::FiveTuple> keys;
  for (u64 i = 0; i < 5; ++i) keys.push_back(b.tuple_for_core(0, 100 + i));
  for (const auto& k : keys) {
    ASSERT_NE(b.api().insert_local_flow(k), nullptr);
  }
  keys.push_back(b.tuple_for_core(1, 999));  // absent flow

  std::vector<const void*> out(keys.size());
  b.api().get_flows(keys, out);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NE(out[i], nullptr);
  EXPECT_EQ(out[5], nullptr);
}

TEST(FlowStateApi, ChargesCyclesPerOperation) {
  ApiBench b;
  const auto local = b.tuple_for_core(0);
  (void)b.ctx->drain_consumed();
  (void)b.api().insert_local_flow(local);
  EXPECT_EQ(b.ctx->drain_consumed(), b.cfg.costs.flow_insert);
  (void)b.api().get_local_flow(local);
  EXPECT_EQ(b.ctx->drain_consumed(), b.cfg.costs.flow_lookup_local);
  (void)b.api().get_flow(b.tuple_for_core(3));
  EXPECT_EQ(b.ctx->drain_consumed(), b.cfg.costs.flow_lookup_remote);
}

TEST(CorePickerTest, MatchesSymmetricRssAndIsStable) {
  CorePicker picker(8);
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.dst_ip = net::Ipv4Addr{static_cast<u32>(rng.next())};
    t.src_port = static_cast<u16>(rng.next());
    t.dst_port = static_cast<u16>(rng.next());
    t.protocol = net::kProtoTcp;
    EXPECT_EQ(picker.pick(t), picker.pick(t.reversed()));
    EXPECT_LT(picker.pick(t), 8);
  }
  // Core counts that do not divide the indirection table are rejected
  // (designated cores would diverge from RSS placement).
  EXPECT_THROW(CorePicker{3}, std::logic_error);
}

}  // namespace
}  // namespace sprayer::core

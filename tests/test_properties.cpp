// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole parameter ranges rather than single configurations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/flow_table.hpp"
#include "core/middlebox.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "nf/synthetic.hpp"
#include "nic/flow_director.hpp"
#include "nic/pktgen.hpp"
#include "runtime/spsc_ring.hpp"
#include "tcp/iperf.hpp"

namespace sprayer {
namespace {

// --- Checksum validity across frame sizes -------------------------------

class ChecksumSweep : public ::testing::TestWithParam<u32> {};

TEST_P(ChecksumSweep, BuiltFramesAlwaysValid) {
  const u32 payload = GetParam();
  net::PacketPool pool(8);
  Rng rng(payload + 1);
  for (int trial = 0; trial < 30; ++trial) {
    net::TcpSegmentSpec spec;
    spec.tuple = {net::Ipv4Addr{static_cast<u32>(rng.next())},
                  net::Ipv4Addr{static_cast<u32>(rng.next())},
                  static_cast<u16>(rng.next()), static_cast<u16>(rng.next()),
                  net::kProtoTcp};
    spec.seq = static_cast<u32>(rng.next());
    spec.payload_len = payload;
    std::vector<u8> data(std::min<u32>(payload, 64));
    for (auto& b : data) b = static_cast<u8>(rng.next());
    spec.payload = data;
    net::PacketPtr pkt = net::build_tcp(pool, spec);
    ASSERT_NE(pkt, nullptr);
    net::Ipv4View ip = pkt->ipv4();
    EXPECT_EQ(net::internet_checksum(ip.bytes(), ip.header_len()), 0);
    EXPECT_TRUE(net::l4_checksum_valid(
        ip.src(), ip.dst(), net::kProtoTcp, pkt->l4_bytes(),
        ip.total_length() - ip.header_len()));
    EXPECT_EQ(pkt->l4_payload_len(), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, ChecksumSweep,
                         ::testing::Values(0u, 1u, 2u, 5u, 6u, 7u, 100u,
                                           512u, 1459u, 1460u));

// --- Spray uniformity across core counts ------------------------------

class SprayUniformity : public ::testing::TestWithParam<u32> {};

TEST_P(SprayUniformity, ChecksumSprayCoversAllQueuesFairly) {
  const u32 cores = GetParam();
  nic::FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(cores).ok());
  EXPECT_LE(fdir.rule_count(), nic::FlowDirector::kMaxRules);

  net::PacketPool pool(8);
  Rng rng(cores);
  std::vector<u64> hits(cores, 0);
  constexpr u32 kPackets = 20000;
  const net::FiveTuple tuple{net::Ipv4Addr{10, 0, 0, 1},
                             net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                             net::kProtoTcp};
  for (u32 i = 0; i < kPackets; ++i) {
    net::TcpSegmentSpec spec;
    spec.tuple = tuple;
    spec.payload_len = 8;
    u8 payload[8];
    const u64 r = rng.next();
    std::memcpy(payload, &r, 8);
    spec.payload = payload;
    net::Packet* pkt = net::build_tcp_raw(pool, spec);
    const auto q = fdir.match(*pkt);
    ASSERT_TRUE(q.has_value());  // the rule space is exhaustive
    ASSERT_LT(*q, cores);
    hits[*q]++;
    pool.free(pkt);
  }
  // Every queue used; power-of-two core counts are near-uniform, others
  // carry the documented 2x rule-count bias at worst.
  const double mean = static_cast<double>(kPackets) / cores;
  const bool pow2 = (cores & (cores - 1)) == 0;
  for (const u64 h : hits) {
    EXPECT_GT(h, 0u);
    EXPECT_LT(static_cast<double>(h), mean * (pow2 ? 1.25 : 2.3));
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SprayUniformity,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 16u, 32u,
                                           64u, 128u));

// --- Flow table across capacities and entry sizes -----------------------

struct TableParam {
  u32 capacity;
  u32 entry_size;
};

class FlowTableSweep : public ::testing::TestWithParam<TableParam> {};

TEST_P(FlowTableSweep, InsertFindRemoveChurn) {
  const auto [capacity, entry_size] = GetParam();
  core::FlowTable table(capacity, entry_size, 0);
  Rng rng(capacity * 31 + entry_size);

  auto tuple_n = [](u32 n) {
    return net::FiveTuple{net::Ipv4Addr{n * 2654435761u},
                          net::Ipv4Addr{~n}, static_cast<u16>(n),
                          static_cast<u16>(n >> 16), net::kProtoTcp};
  };

  // Churn: insert/remove randomly, mirroring against a reference map.
  std::map<u32, u8> reference;  // id -> first data byte
  for (int op = 0; op < 4000; ++op) {
    const u32 id = static_cast<u32>(rng.uniform(capacity));
    if (rng.chance(0.5)) {
      void* e = table.insert(tuple_n(id));
      if (e != nullptr) {
        const u8 tag = static_cast<u8>(id * 7 + 1);
        *static_cast<u8*>(e) = tag;
        reference[id] = tag;
      } else {
        // Full is only acceptable at the documented load factor.
        EXPECT_GE(table.size(), capacity - capacity / 8);
      }
    } else {
      const bool removed = table.remove(tuple_n(id));
      EXPECT_EQ(removed, reference.erase(id) > 0);
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [id, tag] : reference) {
    void* e = table.find_local(tuple_n(id));
    ASSERT_NE(e, nullptr) << id;
    EXPECT_EQ(*static_cast<u8*>(e), tag);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlowTableSweep,
    ::testing::Values(TableParam{16, 1}, TableParam{64, 8},
                      TableParam{256, 16}, TableParam{1024, 64},
                      TableParam{4096, 8}));

// --- SPSC ring across capacities -----------------------------------------

class RingSweep : public ::testing::TestWithParam<u32> {};

TEST_P(RingSweep, SequencePreservedThroughChurn) {
  runtime::SpscRing<u64> ring(GetParam());
  Rng rng(GetParam());
  u64 pushed = 0, popped = 0;
  for (int op = 0; op < 20000; ++op) {
    if (rng.chance(0.55)) {
      if (ring.push(pushed)) ++pushed;
    } else {
      u64 v;
      if (ring.pop(v)) {
        EXPECT_EQ(v, popped);
        ++popped;
      }
    }
  }
  while (popped < pushed) {
    u64 v;
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, popped++);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingSweep,
                         ::testing::Values(2u, 4u, 16u, 256u, 4096u));

// --- End-to-end invariants across dispatch mode x core count -----------

struct ModeCores {
  core::DispatchMode mode;
  u32 cores;
};

class MiddleboxSweep : public ::testing::TestWithParam<ModeCores> {};

TEST_P(MiddleboxSweep, ConservationAndPartitionHold) {
  const auto [mode, cores] = GetParam();
  sim::Simulator sim;
  net::PacketPool pool(1u << 14, 256);
  nf::SyntheticNf nf(100);
  core::SprayerConfig cfg;
  cfg.mode = mode;
  cfg.num_cores = cores;
  core::SimMiddlebox mbox(sim, cfg, nf);
  nic::MeasureSink sink(sim);

  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  sim::Link in_link(sim, in_cfg, mbox.ingress(), "in");
  sim::LinkConfig out_cfg;
  sim::Link out1(sim, out_cfg, sink, "o1");
  sim::Link out0(sim, out_cfg, sink, "o0");
  mbox.attach_tx_link(1, out1);
  mbox.attach_tx_link(0, out0);

  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = 2e6;
  gen_cfg.num_flows = 24;
  gen_cfg.seed = cores * 7 + (mode == core::DispatchMode::kSpray ? 1 : 0);
  gen_cfg.stop_at = from_seconds(0.009);  // stop early, then drain
  nic::PacketGen gen(sim, pool, in_link, gen_cfg);
  gen.start();
  sim.run_until(from_seconds(0.01));

  const auto report = mbox.report();
  // Conservation: everything offered (data plus the 24 initial SYNs) came
  // out the other side; with this light load nothing is dropped.
  EXPECT_EQ(sink.packets(), gen.sent() + gen_cfg.num_flows);
  EXPECT_EQ(report.nic.rx_missed, 0u);
  EXPECT_EQ(report.total.transfer_drops, 0u);
  EXPECT_EQ(nf.lookup_misses(), 0u);

  // Writing partition: each generator flow's entry lives exactly on its
  // designated core.
  for (const auto& tuple : gen.flows()) {
    const CoreId designated = mbox.picker().pick(tuple);
    for (u32 c = 0; c < cores; ++c) {
      const void* entry =
          mbox.flow_table(static_cast<CoreId>(c))
              .find_remote(tuple.canonical());
      EXPECT_EQ(entry != nullptr, c == designated);
    }
  }
  EXPECT_EQ(pool.available(), pool.size());
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndCores, MiddleboxSweep,
    ::testing::Values(ModeCores{core::DispatchMode::kRss, 1},
                      ModeCores{core::DispatchMode::kRss, 4},
                      ModeCores{core::DispatchMode::kRss, 8},
                      ModeCores{core::DispatchMode::kRss, 16},
                      ModeCores{core::DispatchMode::kSpray, 1},
                      ModeCores{core::DispatchMode::kSpray, 4},
                      ModeCores{core::DispatchMode::kSpray, 8},
                      ModeCores{core::DispatchMode::kSpray, 16}));

// --- TCP completes across cc algorithm x adverse conditions -----------

struct TcpParam {
  tcp::CcKind cc;
  u32 queue;  // bottleneck FIFO depth
};

class TcpSweep : public ::testing::TestWithParam<TcpParam> {};

TEST_P(TcpSweep, FiniteTransferAlwaysCompletes) {
  const auto [cc, queue] = GetParam();
  sim::Simulator sim;
  net::PacketPool pool(1u << 14, 1600);
  tcp::Host client(sim, pool, "client");
  tcp::Host server(sim, pool, "server");
  sim::LinkConfig cfg;
  cfg.rate_bps = 10e9;
  cfg.propagation_delay = 5 * kMicrosecond;
  cfg.queue_packets = queue;
  sim::Link c2s(sim, cfg, server, "c2s");
  sim::Link s2c(sim, cfg, client, "s2c");
  client.attach_out(c2s);
  server.attach_out(s2c);

  tcp::TcpConfig tc;
  tc.cc = cc;
  tc.bytes_to_send = 3'000'000;
  server.listen_all(tc);
  tcp::TcpConnection& conn = client.open(
      {net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2}, 40000, 5201,
       net::kProtoTcp},
      tc, 0, queue + static_cast<u64>(cc));

  sim.run_until(from_seconds(10.0));
  EXPECT_EQ(conn.state(), tcp::TcpState::kDone)
      << tcp::to_string(cc) << " queue=" << queue;
  ASSERT_EQ(server.connections().size(), 1u);
  EXPECT_EQ(server.connections()[0]->stats().bytes_delivered, 3'000'000u);
  EXPECT_EQ(pool.available(), pool.size());
}

INSTANTIATE_TEST_SUITE_P(
    CcAndQueues, TcpSweep,
    ::testing::Values(TcpParam{tcp::CcKind::kCubic, 8},
                      TcpParam{tcp::CcKind::kCubic, 64},
                      TcpParam{tcp::CcKind::kCubic, 1024},
                      TcpParam{tcp::CcKind::kNewReno, 8},
                      TcpParam{tcp::CcKind::kNewReno, 64},
                      TcpParam{tcp::CcKind::kNewReno, 1024}));

}  // namespace
}  // namespace sprayer

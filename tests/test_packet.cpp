// Packet parsing and construction: round trips, truncation robustness,
// options, header views.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "tcp/options.hpp"

namespace sprayer::net {
namespace {

FiveTuple test_tuple() {
  return {Ipv4Addr{10, 1, 2, 3}, Ipv4Addr{172, 16, 9, 8}, 40000, 443,
          kProtoTcp};
}

TEST(Packet, BuildParseTcpRoundTrip) {
  PacketPool pool(4);
  TcpSegmentSpec spec;
  spec.tuple = test_tuple();
  spec.seq = 0xdeadbeef;
  spec.ack = 0x01020304;
  spec.flags = TcpFlags::kAck | TcpFlags::kPsh;
  spec.window = 4321;
  spec.payload_len = 200;
  PacketPtr pkt = build_tcp(pool, spec);
  ASSERT_NE(pkt, nullptr);

  EXPECT_TRUE(pkt->is_ipv4());
  EXPECT_TRUE(pkt->is_tcp());
  EXPECT_FALSE(pkt->is_udp());
  EXPECT_EQ(pkt->five_tuple(), test_tuple());
  EXPECT_EQ(pkt->tcp().seq(), 0xdeadbeefu);
  EXPECT_EQ(pkt->tcp().ack(), 0x01020304u);
  EXPECT_EQ(pkt->tcp().window(), 4321);
  EXPECT_EQ(pkt->l4_payload_len(), 200u);
  EXPECT_EQ(pkt->len(), 54u + 200u);
  EXPECT_FALSE(pkt->is_connection_packet());
}

TEST(Packet, ConnectionPacketClassification) {
  PacketPool pool(8);
  for (const u8 flags :
       {TcpFlags::kSyn, TcpFlags::kFin,
        static_cast<u8>(TcpFlags::kRst | TcpFlags::kAck),
        static_cast<u8>(TcpFlags::kSyn | TcpFlags::kAck)}) {
    TcpSegmentSpec spec;
    spec.tuple = test_tuple();
    spec.flags = flags;
    PacketPtr pkt = build_tcp(pool, spec);
    ASSERT_NE(pkt, nullptr);
    EXPECT_TRUE(pkt->is_connection_packet()) << int(flags);
  }
  for (const u8 flags :
       {TcpFlags::kAck, static_cast<u8>(TcpFlags::kAck | TcpFlags::kPsh)}) {
    TcpSegmentSpec spec;
    spec.tuple = test_tuple();
    spec.flags = flags;
    PacketPtr pkt = build_tcp(pool, spec);
    ASSERT_NE(pkt, nullptr);
    EXPECT_FALSE(pkt->is_connection_packet()) << int(flags);
  }
}

TEST(Packet, MinimumFramePadding) {
  PacketPool pool(4);
  TcpSegmentSpec spec;
  spec.tuple = test_tuple();
  spec.payload_len = 0;
  PacketPtr pkt = build_tcp(pool, spec);
  ASSERT_NE(pkt, nullptr);
  EXPECT_EQ(pkt->len(), kMinFrameLen);  // padded to the Ethernet minimum
  EXPECT_EQ(pkt->l4_payload_len(), 0u); // IP total length excludes padding
}

TEST(Packet, TcpOptionsCarriedAndParsed) {
  PacketPool pool(4);
  TcpSegmentSpec spec;
  spec.tuple = test_tuple();
  const auto ts = tcp::encode_ts(0xaabbccdd, 0x11223344);
  spec.options = ts;
  spec.payload_len = 10;
  PacketPtr pkt = build_tcp(pool, spec);
  ASSERT_NE(pkt, nullptr);

  EXPECT_EQ(pkt->tcp().header_len(), 32u);
  const auto parsed = tcp::parse_ts(pkt->tcp());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tsval, 0xaabbccddu);
  EXPECT_EQ(parsed->tsecr, 0x11223344u);
  EXPECT_EQ(pkt->l4_payload_len(), 10u);

  Ipv4View ip = pkt->ipv4();
  EXPECT_TRUE(l4_checksum_valid(ip.src(), ip.dst(), kProtoTcp,
                                pkt->l4_bytes(),
                                ip.total_length() - ip.header_len()));
}

TEST(Packet, ParseRejectsTruncatedAndForeignFrames) {
  PacketPool pool(4);
  Packet* pkt = pool.alloc_raw();
  ASSERT_NE(pkt, nullptr);

  // Too short for Ethernet.
  pkt->set_len(10);
  EXPECT_FALSE(pkt->parse());

  // Non-IPv4 ethertype.
  pkt->set_len(60);
  std::memset(pkt->data(), 0, 60);
  EthernetView eth{pkt->data()};
  eth.set_ether_type(kEtherTypeArp);
  EXPECT_FALSE(pkt->parse());

  // IPv4 ethertype but garbage version.
  eth.set_ether_type(kEtherTypeIpv4);
  pkt->data()[14] = 0x65;  // version 6
  EXPECT_FALSE(pkt->parse());

  pool.free(pkt);
}

TEST(Packet, ParseNeverCrashesOnRandomBytes) {
  PacketPool pool(4);
  Rng rng(2024);
  Packet* pkt = pool.alloc_raw();
  ASSERT_NE(pkt, nullptr);
  for (int trial = 0; trial < 2000; ++trial) {
    const u32 len = static_cast<u32>(rng.uniform(200));
    pkt->set_len(len);
    for (u32 i = 0; i < len; ++i) {
      pkt->data()[i] = static_cast<u8>(rng.next());
    }
    (void)pkt->parse();  // must not crash or read out of bounds
    if (pkt->is_tcp()) {
      (void)pkt->five_tuple();
      (void)pkt->l4_payload_len();
    }
  }
  pool.free(pkt);
}

TEST(Packet, UdpRoundTrip) {
  PacketPool pool(4);
  UdpDatagramSpec spec;
  spec.tuple = {Ipv4Addr{10, 1, 2, 3}, Ipv4Addr{8, 8, 8, 8}, 5353, 53,
                kProtoUdp};
  spec.payload_len = 48;
  PacketPtr pkt = build_udp(pool, spec);
  ASSERT_NE(pkt, nullptr);
  EXPECT_TRUE(pkt->is_udp());
  EXPECT_EQ(pkt->udp().length(), 8u + 48u);
  EXPECT_EQ(pkt->five_tuple().dst_port, 53);
  EXPECT_FALSE(pkt->is_connection_packet());
}

}  // namespace
}  // namespace sprayer::net

namespace sprayer::net {
namespace {

TEST(Packet, NonFirstFragmentsExposeNoL4) {
  PacketPool pool(4);
  TcpSegmentSpec spec;
  spec.tuple = {Ipv4Addr{10, 1, 2, 3}, Ipv4Addr{172, 16, 9, 8}, 40000, 443,
                kProtoTcp};
  spec.payload_len = 64;
  Packet* pkt = build_tcp_raw(pool, spec);
  ASSERT_NE(pkt, nullptr);

  // Rewrite the fragment offset to 8 (a later fragment) and re-parse:
  // whatever sits at the L4 offset is payload, not a TCP header.
  Ipv4View ip = pkt->ipv4();
  ip.set_flags_fragment(0x2000 | 1);  // MF set, offset 8 bytes
  ip.set_checksum(0);
  ip.set_checksum(ipv4_header_checksum(ip));
  ASSERT_TRUE(pkt->parse());
  EXPECT_TRUE(pkt->is_ipv4());
  EXPECT_FALSE(pkt->is_tcp());
  EXPECT_FALSE(pkt->is_connection_packet());
  const FiveTuple t = pkt->five_tuple();
  EXPECT_EQ(t.src_port, 0);  // ports unreadable on a fragment
  EXPECT_EQ(t.dst_port, 0);
  EXPECT_EQ(t.protocol, kProtoTcp);
  pool.free(pkt);
}

TEST(Packet, FirstFragmentStillParsesL4) {
  PacketPool pool(4);
  TcpSegmentSpec spec;
  spec.tuple = {Ipv4Addr{10, 1, 2, 3}, Ipv4Addr{172, 16, 9, 8}, 40000, 443,
                kProtoTcp};
  spec.payload_len = 64;
  Packet* pkt = build_tcp_raw(pool, spec);
  ASSERT_NE(pkt, nullptr);
  Ipv4View ip = pkt->ipv4();
  ip.set_flags_fragment(0x2000);  // MF set, offset 0: first fragment
  ASSERT_TRUE(pkt->parse());
  EXPECT_TRUE(pkt->is_tcp());  // the first fragment has the header
  EXPECT_EQ(pkt->five_tuple().src_port, 40000);
  pool.free(pkt);
}

}  // namespace
}  // namespace sprayer::net

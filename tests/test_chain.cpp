// Service-chain engine: batch compaction units, fused-vs-dynamic-vs-
// sequential equivalence over the canonical NAT -> firewall -> LB -> monitor
// chain, memoized-hash refresh across a tuple-rewriting hop, stateless hops
// inside a mixed chain, and a 4-core threaded churn run over the full chain.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "core/threaded.hpp"
#include "hash/designated.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/firewall.hpp"
#include "nf/load_balancer.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "nf/redundancy.hpp"

namespace sprayer::core {
namespace {

const net::Ipv4Addr kVip{198, 51, 100, 1};
constexpr u16 kVport = 80;
const net::Ipv4Addr kExternalIp{192, 0, 2, 1};

net::Packet* make_pkt(net::PacketPool& pool, const net::FiveTuple& t, u8 flags,
                      u64 payload_seed = 0) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

net::FiveTuple client_flow(u32 i) {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr{10, 0, 0, static_cast<u8>(1 + i)};
  t.dst_ip = kVip;
  t.src_port = static_cast<u16>(1000 + i);
  t.dst_port = kVport;
  t.protocol = net::kProtoTcp;
  return t;
}

nf::Acl allow_all() { return nf::Acl{/*default_allow=*/true}; }

nf::LbConfig lb_config() {
  nf::LbConfig cfg;
  cfg.vip = kVip;
  cfg.vport = kVport;
  cfg.backends = {{net::MacAddr::from_id(1), net::Ipv4Addr{10, 1, 0, 1}},
                  {net::MacAddr::from_id(2), net::Ipv4Addr{10, 1, 0, 2}}};
  return cfg;
}

/// Everything an IChain needs to run standalone on one core: per-hop flow
/// tables, per-hop contexts, scratch — the same wiring the executors build,
/// minus threads and rings.
class ChainRig {
 public:
  explicit ChainRig(IChain& chain, u32 num_cores = 1)
      : chain_(chain), picker_(num_cores) {
    const u32 hops = chain.num_hops();
    hop_cfgs_.resize(hops);
    ChainInit ci;
    ci.hop_cfgs = hop_cfgs_;
    ci.num_cores = num_cores;
    chain_.init(ci);
    tables_.resize(hops);
    table_ptrs_.resize(hops);
    for (u32 h = 0; h < hops; ++h) {
      const u32 cap =
          hop_cfgs_[h].stateless ? 2u : hop_cfgs_[h].flow_table_capacity;
      for (u32 c = 0; c < num_cores; ++c) {
        tables_[h].push_back(std::make_unique<FlowTable>(
            cap, hop_cfgs_[h].flow_entry_size, static_cast<CoreId>(c)));
        table_ptrs_[h].push_back(tables_[h].back().get());
      }
    }
    for (u32 h = 0; h < hops; ++h) {
      contexts_.push_back(std::make_unique<NfContext>(
          static_cast<CoreId>(0), std::span<FlowTable* const>{table_ptrs_[h]},
          picker_, costs_));
      ctx_ptrs_.push_back(contexts_.back().get());
    }
  }

  void conn(runtime::PacketBatch& batch, runtime::PacketBatch& drops) {
    chain_.connection_pass(batch, scratch_,
                           std::span<NfContext* const>{ctx_ptrs_},
                           now_ += kMicrosecond, drops);
  }
  void regular(runtime::PacketBatch& batch, runtime::PacketBatch& drops) {
    chain_.regular_pass(batch, scratch_,
                        std::span<NfContext* const>{ctx_ptrs_},
                        now_ += kMicrosecond, drops);
  }

  [[nodiscard]] u64 table_entries() const {
    u64 n = 0;
    for (const auto& hop : tables_) {
      for (const auto& t : hop) n += t->size();
    }
    return n;
  }

 private:
  IChain& chain_;
  CorePicker picker_;
  CostModel costs_{};
  std::vector<NfInitConfig> hop_cfgs_;
  std::vector<std::vector<std::unique_ptr<FlowTable>>> tables_;
  std::vector<std::vector<FlowTable*>> table_ptrs_;
  std::vector<std::unique_ptr<NfContext>> contexts_;
  std::vector<NfContext*> ctx_ptrs_;
  ChainScratch scratch_;
  Time now_ = 0;
};

// --- PacketBatch::compact --------------------------------------------------

TEST(PacketBatchCompact, SlidesSurvivorsDownInOrder) {
  net::PacketPool pool(64, 256);
  runtime::PacketBatch batch;
  std::vector<net::Packet*> made;
  for (u32 i = 0; i < 8; ++i) {
    net::FiveTuple t = client_flow(i);
    net::Packet* pkt = make_pkt(pool, t, net::TcpFlags::kAck);
    made.push_back(pkt);
    batch.push(pkt);
  }

  runtime::PacketBatch drops;
  std::vector<std::pair<u32, u32>> moves;
  const u32 survivors = batch.compact(
      [](u32 i) { return i % 2 == 0; }, drops,
      [&](u32 from, u32 to) { moves.emplace_back(from, to); });

  ASSERT_EQ(survivors, 4u);
  ASSERT_EQ(batch.size(), 4u);
  ASSERT_EQ(drops.size(), 4u);
  // Order preserved in both partitions.
  for (u32 j = 0; j < 4; ++j) {
    EXPECT_EQ(batch[j], made[2 * j + 1]);
    EXPECT_EQ(drops[j], made[2 * j]);
  }
  // Every survivor behind a hole moved exactly once, front to back.
  const std::vector<std::pair<u32, u32>> expected{{1, 0}, {3, 1}, {5, 2},
                                                  {7, 3}};
  EXPECT_EQ(moves, expected);

  net::free_packets(batch.packets());
  net::free_packets(drops.packets());
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(PacketBatchCompact, NoDropsIsANoOp) {
  net::PacketPool pool(64, 256);
  runtime::PacketBatch batch;
  for (u32 i = 0; i < 5; ++i) {
    batch.push(make_pkt(pool, client_flow(i), net::TcpFlags::kAck));
  }
  runtime::PacketBatch drops;
  u32 moves = 0;
  const u32 survivors = batch.compact([](u32) { return false; }, drops,
                                      [&](u32, u32) { ++moves; });
  EXPECT_EQ(survivors, 5u);
  EXPECT_EQ(drops.size(), 0u);
  EXPECT_EQ(moves, 0u);
  net::free_packets(batch.packets());
}

// --- Fused vs dynamic vs sequential equivalence ---------------------------

/// One complete NF set for the canonical 4-hop chain.
struct NfSet {
  nf::NatNf nat;
  nf::FirewallNf fw{allow_all()};
  nf::LoadBalancerNf lb{lb_config()};
  nf::MonitorNf mon;
};

/// Transmitted-packet signature: final tuple, LB-assigned MAC, and both
/// checksums — if these match across arms, the arms rewrote identically.
std::string tx_signature(net::Packet* pkt) {
  const net::FiveTuple t = pkt->five_tuple();
  const net::MacAddr mac = pkt->eth().dst();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%08x:%u>%08x:%u/%u m%02x%02x%02x%02x%02x%02x i%04x t%04x",
                t.src_ip.host_order(), t.src_port, t.dst_ip.host_order(),
                t.dst_port, t.protocol, mac.data()[0], mac.data()[1],
                mac.data()[2], mac.data()[3], mac.data()[4], mac.data()[5],
                pkt->ipv4().checksum(), pkt->tcp().checksum());
  return std::string{buf};
}

struct ArmResult {
  std::vector<std::string> tx;
  u64 drops = 0;
};

/// Drive one arm through the scripted workload: SYNs, three data rounds,
/// RSTs. `process(batch, is_conn, drops)` runs one batch through the arm.
template <class ProcessFn>
ArmResult run_workload(net::PacketPool& pool, u32 flows, ProcessFn&& process) {
  ArmResult result;
  auto run_batch = [&](u8 flags, u64 seed, bool is_conn) {
    runtime::PacketBatch batch;
    runtime::PacketBatch drops;
    for (u32 i = 0; i < flows; ++i) {
      batch.push(make_pkt(pool, client_flow(i), flags, seed));
    }
    process(batch, is_conn, drops);
    for (net::Packet* pkt : batch) result.tx.push_back(tx_signature(pkt));
    result.drops += drops.size();
    net::free_packets(batch.packets());
    net::free_packets(drops.packets());
  };

  run_batch(net::TcpFlags::kSyn, 0, true);
  for (u64 round = 1; round <= 3; ++round) {
    run_batch(net::TcpFlags::kAck, round, false);
  }
  run_batch(net::TcpFlags::kRst, 99, true);
  return result;
}

TEST(ChainEquivalence, FusedDynamicAndSequentialAgree) {
  net::PacketPool pool(1024, 256);
  constexpr u32 kFlows = 16;

  // Arm 1: compile-time fused chain.
  NfSet f;
  NfChain<nf::NatNf, nf::FirewallNf, nf::LoadBalancerNf, nf::MonitorNf>
      fused(f.nat, f.fw, f.lb, f.mon);
  ChainRig fused_rig(fused);
  const ArmResult fused_res =
      run_workload(pool, kFlows,
                   [&](runtime::PacketBatch& b, bool conn,
                       runtime::PacketBatch& drops) {
                     conn ? fused_rig.conn(b, drops)
                          : fused_rig.regular(b, drops);
                   });

  // Arm 2: same hops, type-erased virtual dispatch.
  NfSet d;
  DynamicChain dynamic({&d.nat, &d.fw, &d.lb, &d.mon});
  ChainRig dynamic_rig(dynamic);
  const ArmResult dynamic_res =
      run_workload(pool, kFlows,
                   [&](runtime::PacketBatch& b, bool conn,
                       runtime::PacketBatch& drops) {
                     conn ? dynamic_rig.conn(b, drops)
                          : dynamic_rig.regular(b, drops);
                   });

  // Arm 3: four fully independent single-NF passes, survivors fed forward —
  // what running four separate middleboxes back-to-back would do.
  NfSet s;
  DynamicChain s0{s.nat}, s1{s.fw}, s2{s.lb}, s3{s.mon};
  std::vector<std::unique_ptr<ChainRig>> seq_rigs;
  for (DynamicChain* c : {&s0, &s1, &s2, &s3}) {
    seq_rigs.push_back(std::make_unique<ChainRig>(*c));
  }
  const ArmResult seq_res = run_workload(
      pool, kFlows,
      [&](runtime::PacketBatch& b, bool conn, runtime::PacketBatch& drops) {
        for (auto& rig : seq_rigs) {
          if (b.empty()) break;
          conn ? rig->conn(b, drops) : rig->regular(b, drops);
        }
      });

  // Identical forwarded packets (tuples, LB MACs, checksums), in order.
  EXPECT_EQ(fused_res.tx, dynamic_res.tx);
  EXPECT_EQ(fused_res.tx, seq_res.tx);
  EXPECT_EQ(fused_res.drops, dynamic_res.drops);
  EXPECT_EQ(fused_res.drops, seq_res.drops);
  EXPECT_EQ(fused_res.drops, 0u);  // ACL allows, every flow has state

  // Identical per-NF counters in every arm.
  for (const NfSet* set : {&f, &d, &s}) {
    EXPECT_EQ(set->nat.counters().sessions_opened, kFlows);
    EXPECT_EQ(set->nat.counters().sessions_closed, kFlows);
    EXPECT_EQ(set->nat.counters().unmatched_dropped, 0u);
    EXPECT_EQ(set->nat.port_pool().claimed(), 0u);  // RSTs released all
    EXPECT_EQ(set->fw.counters().admitted, kFlows);
    EXPECT_EQ(set->fw.counters().closed, kFlows);
    EXPECT_EQ(set->fw.counters().dropped_no_state, 0u);
    EXPECT_EQ(set->lb.counters().assigned, kFlows);
    EXPECT_EQ(set->lb.counters().dropped_no_state, 0u);
    EXPECT_EQ(set->mon.aggregate().connections_opened, kFlows);
    EXPECT_EQ(set->mon.aggregate().connections_closed, kFlows);
    EXPECT_EQ(set->mon.aggregate().packets, kFlows * 5u);
  }
  EXPECT_EQ(fused_rig.table_entries(), 0u);
  EXPECT_EQ(dynamic_rig.table_entries(), 0u);
  EXPECT_EQ(pool.available(), pool.size());
}

// --- Memoized-hash refresh across a rewriting hop -------------------------

TEST(ChainHashRefresh, SurvivorsCarryValidHashAfterNat) {
  net::PacketPool pool(128, 256);
  for (const bool use_fused : {true, false}) {
    nf::NatNf nat;
    nf::MonitorNf mon;
    NfChain<nf::NatNf, nf::MonitorNf> fused(nat, mon);
    DynamicChain dynamic({&nat, &mon});
    IChain& chain = use_fused ? static_cast<IChain&>(fused)
                              : static_cast<IChain&>(dynamic);
    ChainRig rig(chain);

    const net::FiveTuple t = client_flow(7);
    runtime::PacketBatch batch;
    runtime::PacketBatch drops;
    batch.push(make_pkt(pool, t, net::TcpFlags::kSyn));
    rig.conn(batch, drops);
    ASSERT_EQ(batch.size(), 1u);
    net::free_packets(batch.packets());
    batch.clear();

    batch.push(make_pkt(pool, t, net::TcpFlags::kAck, 42));
    rig.regular(batch, drops);
    ASSERT_EQ(batch.size(), 1u);
    net::Packet* out = batch[0];
    // NAT rewrote the source...
    EXPECT_EQ(out->ipv4().src().host_order(), kExternalIp.host_order());
    // ...and the chain re-memoized the hash for the downstream hop, so
    // post-chain consumers never read a stale memo.
    ASSERT_TRUE(out->has_flow_hash());
    EXPECT_EQ(out->flow_hash(), hash::flow_hash(out->five_tuple()));
    // Symmetric hash: the memo also routes return traffic correctly.
    EXPECT_EQ(out->flow_hash(), hash::flow_hash(out->five_tuple().reversed()));
    net::free_packets(batch.packets());
  }
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(ChainHashRefresh, LastHopRewriteLeavesMemoLazy) {
  // When the tuple-rewriting hop is the last hop there is no downstream
  // reader: the chain skips the eager refresh and leaves the memo
  // invalidated, and the next packet_flow_hash() call recomputes it.
  net::PacketPool pool(128, 256);
  for (const bool use_fused : {true, false}) {
    nf::NatNf nat;
    NfChain<nf::NatNf> fused(nat);
    DynamicChain dynamic(nat);
    IChain& chain = use_fused ? static_cast<IChain&>(fused)
                              : static_cast<IChain&>(dynamic);
    ChainRig rig(chain);

    const net::FiveTuple t = client_flow(3);
    runtime::PacketBatch batch;
    runtime::PacketBatch drops;
    batch.push(make_pkt(pool, t, net::TcpFlags::kSyn));
    rig.conn(batch, drops);
    ASSERT_EQ(batch.size(), 1u);
    net::free_packets(batch.packets());
    batch.clear();

    batch.push(make_pkt(pool, t, net::TcpFlags::kAck, 42));
    rig.regular(batch, drops);
    ASSERT_EQ(batch.size(), 1u);
    net::Packet* out = batch[0];
    EXPECT_EQ(out->ipv4().src().host_order(), kExternalIp.host_order());
    EXPECT_FALSE(out->has_flow_hash());
    // Lazy recompute yields the hash of the rewritten tuple, never stale.
    EXPECT_EQ(hash::packet_flow_hash(*out), hash::flow_hash(out->five_tuple()));
    net::free_packets(batch.packets());
  }
  EXPECT_EQ(pool.available(), pool.size());
}

// --- Stateless hop inside a mixed chain -----------------------------------

TEST(ChainMixed, StatelessHopSeesConnectionPacketsAsRegular) {
  net::PacketPool pool(128, 256);
  nf::RedundancyNf re;  // stateless: everything lands in regular_packets()
  nf::MonitorNf mon;
  NfChain<nf::RedundancyNf, nf::MonitorNf> chain(re, mon);
  ChainRig rig(chain);

  constexpr u32 kFlows = 8;
  runtime::PacketBatch batch;
  runtime::PacketBatch drops;
  for (u32 i = 0; i < kFlows; ++i) {
    batch.push(make_pkt(pool, client_flow(i), net::TcpFlags::kSyn, i));
  }
  rig.conn(batch, drops);
  EXPECT_EQ(batch.size(), kFlows);
  net::free_packets(batch.packets());
  batch.clear();

  for (u32 i = 0; i < kFlows; ++i) {
    batch.push(make_pkt(pool, client_flow(i), net::TcpFlags::kAck, 100 + i));
  }
  rig.regular(batch, drops);
  EXPECT_EQ(batch.size(), kFlows);
  net::free_packets(batch.packets());

  // The stateless hop fingerprinted every payload — connection packets
  // included (it has no flow events to observe).
  EXPECT_EQ(re.hits() + re.misses(), 2u * kFlows);
  // The stateful hop downstream still saw real connection events.
  EXPECT_EQ(mon.aggregate().connections_opened, kFlows);
  EXPECT_EQ(mon.aggregate().packets, 2u * kFlows);
  EXPECT_EQ(drops.size(), 0u);
  EXPECT_EQ(pool.available(), pool.size());
}

// --- Threaded executor running the full chain -----------------------------

TEST(ChainThreaded, FourCoreChurnConservesEverything) {
  net::PacketPool pool(8192, 256);
  constexpr u32 kCores = 4;
  constexpr u32 kFlows = 32;

  NfSet nfs;
  NfChain<nf::NatNf, nf::FirewallNf, nf::LoadBalancerNf, nf::MonitorNf>
      chain(nfs.nat, nfs.fw, nfs.lb, nfs.mon);

  std::atomic<u64> tx{0};
  ThreadedMiddlebox::TxBatchHandler sink =
      [&](std::span<net::Packet* const> pkts) {
        tx.fetch_add(pkts.size(), std::memory_order_relaxed);
        net::free_packets(pkts);
      };
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  ThreadedMiddlebox mbox(cfg, chain, std::move(sink));
  ASSERT_EQ(mbox.num_hops(), 4u);
  mbox.start();

  u64 injected = 0;
  // Phase 1: open every session (conn packets redirect once, whole chain
  // runs on the designated core).
  for (u32 i = 0; i < kFlows; ++i) {
    if (mbox.inject(make_pkt(pool, client_flow(i), net::TcpFlags::kSyn))) {
      ++injected;
    }
  }
  mbox.wait_idle();
  EXPECT_EQ(nfs.nat.counters().sessions_opened, kFlows);
  EXPECT_EQ(nfs.fw.counters().admitted, kFlows);
  EXPECT_EQ(nfs.lb.counters().assigned, kFlows);

  // Phase 2: sprayed data through all four hops.
  for (u32 i = 0; i < 12000; ++i) {
    net::Packet* pkt =
        make_pkt(pool, client_flow(i % kFlows), net::TcpFlags::kAck, i);
    if (pkt == nullptr) {  // pool backpressure: let workers drain
      std::this_thread::yield();
      --i;
      continue;
    }
    if (mbox.inject(pkt)) ++injected;
  }
  mbox.wait_idle();

  // Phase 3: tear every session down.
  for (u32 i = 0; i < kFlows; ++i) {
    if (mbox.inject(make_pkt(pool, client_flow(i), net::TcpFlags::kRst))) {
      ++injected;
    }
  }
  mbox.wait_idle();
  const CoreStats total = mbox.total_stats();
  mbox.stop();

  // Conservation: every accepted packet was forwarded, none dropped by any
  // hop, nothing leaked.
  EXPECT_EQ(tx.load(), injected);
  EXPECT_EQ(total.nf_drops, 0u);
  EXPECT_EQ(pool.available(), pool.size());

  // Full teardown: every hop's tables empty on every core, ports released.
  for (u32 h = 0; h < 4; ++h) {
    for (u32 c = 0; c < kCores; ++c) {
      EXPECT_EQ(mbox.hop_flow_table(h, static_cast<CoreId>(c)).size(), 0u)
          << "hop " << h << " core " << c;
    }
  }
  EXPECT_EQ(nfs.nat.port_pool().claimed(), 0u);
  EXPECT_EQ(nfs.nat.counters().sessions_closed, kFlows);
  EXPECT_EQ(nfs.fw.counters().closed, kFlows);
  EXPECT_EQ(nfs.mon.aggregate().connections_opened, kFlows);
  EXPECT_EQ(nfs.mon.aggregate().connections_closed, kFlows);
  EXPECT_EQ(nfs.mon.aggregate().packets, injected);
}

}  // namespace
}  // namespace sprayer::core

// FlowTable: insert/find/remove semantics, tombstone probing, load-factor
// limits, seqlock-consistent remote reads under a concurrent writer, and
// batch-lookup equivalence with the scalar path under randomized churn.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/flow_table.hpp"

namespace sprayer::core {
namespace {

net::FiveTuple tuple_n(u32 n) {
  return {net::Ipv4Addr{n}, net::Ipv4Addr{~n}, static_cast<u16>(n * 7 + 1),
          static_cast<u16>(n * 13 + 1), net::kProtoTcp};
}

TEST(FlowTable, InsertFindRemove) {
  FlowTable table(64, 8, 0);
  EXPECT_EQ(table.size(), 0u);

  void* e = table.insert(tuple_n(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(table.size(), 1u);
  *static_cast<u64*>(e) = 0xabcdef;

  EXPECT_EQ(table.find_local(tuple_n(1)), e);
  EXPECT_EQ(*static_cast<const u64*>(table.find_remote(tuple_n(1))),
            0xabcdefu);
  EXPECT_EQ(table.find_local(tuple_n(2)), nullptr);

  EXPECT_TRUE(table.remove(tuple_n(1)));
  EXPECT_FALSE(table.remove(tuple_n(1)));
  EXPECT_EQ(table.find_local(tuple_n(1)), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, InsertIsIdempotent) {
  FlowTable table(16, 8, 0);
  void* a = table.insert(tuple_n(5));
  *static_cast<u64*>(a) = 42;
  void* b = table.insert(tuple_n(5));
  EXPECT_EQ(a, b);  // existing entry returned, not overwritten
  EXPECT_EQ(*static_cast<u64*>(b), 42u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, NewEntriesAreZeroed) {
  FlowTable table(16, 16, 0);
  void* a = table.insert(tuple_n(1));
  std::memset(a, 0xff, 16);
  ASSERT_TRUE(table.remove(tuple_n(1)));
  void* b = table.insert(tuple_n(1));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<u8*>(b)[i], 0) << i;
  }
}

TEST(FlowTable, RespectsMaxLoadFactor) {
  FlowTable table(64, 8, 0);
  u32 inserted = 0;
  for (u32 i = 0; i < 64; ++i) {
    if (table.insert(tuple_n(i)) != nullptr) ++inserted;
  }
  EXPECT_EQ(inserted, 64u - 64u / 8u);  // 87.5 % cap
  EXPECT_EQ(table.insert(tuple_n(1000)), nullptr);
}

TEST(FlowTable, ProbesAcrossTombstones) {
  FlowTable table(64, 8, 0);
  // Insert many, remove every other one, then verify the rest is findable
  // (probe chains must skip tombstones).
  for (u32 i = 0; i < 40; ++i) ASSERT_NE(table.insert(tuple_n(i)), nullptr);
  for (u32 i = 0; i < 40; i += 2) ASSERT_TRUE(table.remove(tuple_n(i)));
  for (u32 i = 1; i < 40; i += 2) {
    EXPECT_NE(table.find_local(tuple_n(i)), nullptr) << i;
  }
  for (u32 i = 0; i < 40; i += 2) {
    EXPECT_EQ(table.find_local(tuple_n(i)), nullptr) << i;
  }
  // Tombstoned slots are reusable.
  for (u32 i = 100; i < 115; ++i) {
    EXPECT_NE(table.insert(tuple_n(i)), nullptr) << i;
  }
}

TEST(FlowTable, ForEachVisitsLiveEntriesOnly) {
  FlowTable table(32, 8, 0);
  for (u32 i = 0; i < 10; ++i) ASSERT_NE(table.insert(tuple_n(i)), nullptr);
  table.remove(tuple_n(3));
  table.remove(tuple_n(7));
  u32 visited = 0;
  table.for_each([&](const net::FiveTuple& key, void*) {
    EXPECT_NE(key, tuple_n(3));
    EXPECT_NE(key, tuple_n(7));
    ++visited;
  });
  EXPECT_EQ(visited, 8u);
}

TEST(FlowTable, ReadConsistentSnapshot) {
  FlowTable table(16, 8, 0);
  void* e = table.insert(tuple_n(1));
  *static_cast<u64*>(e) = 7;
  u8 buf[8];
  ASSERT_TRUE(table.read_consistent(tuple_n(1), buf));
  u64 v;
  std::memcpy(&v, buf, 8);
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(table.read_consistent(tuple_n(2), buf));
}

// Writing partition in action: one writer thread (the owner core) updating
// an entry through write_begin/write_end, one reader thread snapshotting it
// with read_consistent — the reader must never observe a torn value.
TEST(FlowTable, SeqlockPreventsTornReads) {
  FlowTable table(16, 16, 0);
  struct Pair {
    u64 a;
    u64 b;
  };
  auto* e = static_cast<Pair*>(table.insert(tuple_n(1)));
  ASSERT_NE(e, nullptr);
  e->a = 0;
  e->b = 0;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    u8 buf[16];
    while (!stop.load(std::memory_order_relaxed)) {
      if (table.read_consistent(tuple_n(1), buf)) {
        Pair snapshot;
        std::memcpy(&snapshot, buf, sizeof(snapshot));
        // Invariant maintained by the writer: b == 2 * a.
        EXPECT_EQ(snapshot.b, 2 * snapshot.a);
      }
    }
  });
  for (u64 i = 1; i <= 50000; ++i) {
    table.write_begin(e);
    e->a = i;
    e->b = 2 * i;
    table.write_end(e);
  }
  stop.store(true);
  reader.join();
}

// Property: find_batch agrees with the scalar lookups (and with a reference
// model) at every point of a randomized insert/remove/lookup interleaving,
// including tombstone-heavy phases where most slots have been churned.
TEST(FlowTable, FindBatchMatchesScalarUnderChurn) {
  Rng rng(0xf10fb47c);
  for (const u32 capacity : {16u, 64u, 1024u}) {
    FlowTable table(capacity, 8, 0);
    std::map<u32, u64> model;  // key index -> value written to the entry
    const u32 universe = capacity * 2;

    for (u32 step = 0; step < 4000; ++step) {
      // Phase mix: mostly inserts early, mostly removes in the middle
      // (leaving a tombstone-heavy table), mixed at the end.
      const u32 phase = step / 1000;
      const u32 remove_pct = phase == 1 ? 80 : phase == 2 ? 20 : 50;
      const u32 n = static_cast<u32>(rng.uniform(universe));
      if (rng.uniform(100) < remove_pct) {
        EXPECT_EQ(table.remove(tuple_n(n)), model.erase(n) == 1) << n;
      } else {
        void* e = table.insert(tuple_n(n));
        if (e == nullptr) {
          // Insert refused: only legal at the load-factor cap (which is
          // checked before the existing-key probe, so even a present key
          // can be refused there).
          EXPECT_GE(table.size(), capacity - capacity / 8);
        } else if (model.contains(n)) {
          EXPECT_EQ(*static_cast<u64*>(e), model[n]);
        } else {
          const u64 v = rng.next() | 1;
          *static_cast<u64*>(e) = v;
          model[n] = v;
        }
      }
      EXPECT_EQ(table.size(), model.size());

      if (step % 64 != 0) continue;
      // Cross-check a mixed batch of present and absent keys.
      std::vector<net::FiveTuple> keys;
      std::vector<FlowTable::FlowHash> hashes;
      for (u32 i = 0; i < 33; ++i) {
        keys.push_back(tuple_n(static_cast<u32>(rng.uniform(universe))));
        hashes.push_back(FlowTable::hash_of(keys.back()));
      }
      std::vector<const void*> out(keys.size(), nullptr);
      const u32 hits = table.find_batch(keys, hashes, out);
      u32 expected_hits = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(out[i], table.find_remote(keys[i])) << "batch vs scalar";
        const u32 n_i = keys[i].src_ip.host_order();
        const auto it = model.find(n_i);
        if (it == model.end()) {
          EXPECT_EQ(out[i], nullptr);
        } else {
          ASSERT_NE(out[i], nullptr);
          EXPECT_EQ(*static_cast<const u64*>(out[i]), it->second);
          ++expected_hits;
        }
      }
      EXPECT_EQ(hits, expected_hits);
    }
  }
}

// Threaded: a reader doing bulk remote probes plus seqlock snapshots while
// the owner churns inserts/removes and in-place updates must never observe
// a torn entry. (Runs under TSan in CI to also prove the probe/publish
// paths are race-annotated correctly.)
TEST(FlowTable, BulkRemoteReadsSeeNoTornEntriesUnderChurn) {
  FlowTable table(64, 16, 0);
  struct Pair {
    u64 a;
    u64 b;
  };
  constexpr u32 kKeys = 24;
  std::vector<net::FiveTuple> keys;
  std::vector<FlowTable::FlowHash> hashes;
  for (u32 i = 0; i < kKeys; ++i) {
    keys.push_back(tuple_n(i));
    hashes.push_back(FlowTable::hash_of(keys.back()));
  }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::vector<const void*> out(kKeys, nullptr);
    u8 buf[16];
    while (!stop.load(std::memory_order_relaxed)) {
      // Bulk probe: results may race with removal, but must never crash or
      // return junk pointers. Entry bytes are only read via the seqlock.
      table.find_batch(keys, hashes, out);
      for (u32 i = 0; i < kKeys; ++i) {
        if (table.read_consistent(keys[i], hashes[i], buf)) {
          Pair snapshot;
          std::memcpy(&snapshot, buf, sizeof(snapshot));
          // Writer invariant: b == 2 * a (holds for the zeroed entry too).
          EXPECT_EQ(snapshot.b, 2 * snapshot.a);
        }
      }
    }
  });

  Rng rng(0x7ea5);
  for (u32 round = 0; round < 8000; ++round) {
    const u32 i = static_cast<u32>(rng.uniform(kKeys));
    auto* e = static_cast<Pair*>(table.find_local(keys[i], hashes[i]));
    if (e == nullptr) {
      e = static_cast<Pair*>(table.insert(keys[i], hashes[i]));
      ASSERT_NE(e, nullptr);
    }
    table.write_begin(e);
    e->a = round;
    e->b = 2ull * round;
    table.write_end(e);
    if (rng.uniform(4) == 0) {
      ASSERT_TRUE(table.remove(keys[i], hashes[i]));
    }
  }
  stop.store(true);
  reader.join();
}

}  // namespace
}  // namespace sprayer::core

// FlowTable: insert/find/remove semantics, tombstone probing, load-factor
// limits, seqlock-consistent remote reads under a concurrent writer.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "core/flow_table.hpp"

namespace sprayer::core {
namespace {

net::FiveTuple tuple_n(u32 n) {
  return {net::Ipv4Addr{n}, net::Ipv4Addr{~n}, static_cast<u16>(n * 7 + 1),
          static_cast<u16>(n * 13 + 1), net::kProtoTcp};
}

TEST(FlowTable, InsertFindRemove) {
  FlowTable table(64, 8, 0);
  EXPECT_EQ(table.size(), 0u);

  void* e = table.insert(tuple_n(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(table.size(), 1u);
  *static_cast<u64*>(e) = 0xabcdef;

  EXPECT_EQ(table.find_local(tuple_n(1)), e);
  EXPECT_EQ(*static_cast<const u64*>(table.find_remote(tuple_n(1))),
            0xabcdefu);
  EXPECT_EQ(table.find_local(tuple_n(2)), nullptr);

  EXPECT_TRUE(table.remove(tuple_n(1)));
  EXPECT_FALSE(table.remove(tuple_n(1)));
  EXPECT_EQ(table.find_local(tuple_n(1)), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, InsertIsIdempotent) {
  FlowTable table(16, 8, 0);
  void* a = table.insert(tuple_n(5));
  *static_cast<u64*>(a) = 42;
  void* b = table.insert(tuple_n(5));
  EXPECT_EQ(a, b);  // existing entry returned, not overwritten
  EXPECT_EQ(*static_cast<u64*>(b), 42u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, NewEntriesAreZeroed) {
  FlowTable table(16, 16, 0);
  void* a = table.insert(tuple_n(1));
  std::memset(a, 0xff, 16);
  ASSERT_TRUE(table.remove(tuple_n(1)));
  void* b = table.insert(tuple_n(1));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<u8*>(b)[i], 0) << i;
  }
}

TEST(FlowTable, RespectsMaxLoadFactor) {
  FlowTable table(64, 8, 0);
  u32 inserted = 0;
  for (u32 i = 0; i < 64; ++i) {
    if (table.insert(tuple_n(i)) != nullptr) ++inserted;
  }
  EXPECT_EQ(inserted, 64u - 64u / 8u);  // 87.5 % cap
  EXPECT_EQ(table.insert(tuple_n(1000)), nullptr);
}

TEST(FlowTable, ProbesAcrossTombstones) {
  FlowTable table(64, 8, 0);
  // Insert many, remove every other one, then verify the rest is findable
  // (probe chains must skip tombstones).
  for (u32 i = 0; i < 40; ++i) ASSERT_NE(table.insert(tuple_n(i)), nullptr);
  for (u32 i = 0; i < 40; i += 2) ASSERT_TRUE(table.remove(tuple_n(i)));
  for (u32 i = 1; i < 40; i += 2) {
    EXPECT_NE(table.find_local(tuple_n(i)), nullptr) << i;
  }
  for (u32 i = 0; i < 40; i += 2) {
    EXPECT_EQ(table.find_local(tuple_n(i)), nullptr) << i;
  }
  // Tombstoned slots are reusable.
  for (u32 i = 100; i < 115; ++i) {
    EXPECT_NE(table.insert(tuple_n(i)), nullptr) << i;
  }
}

TEST(FlowTable, ForEachVisitsLiveEntriesOnly) {
  FlowTable table(32, 8, 0);
  for (u32 i = 0; i < 10; ++i) table.insert(tuple_n(i));
  table.remove(tuple_n(3));
  table.remove(tuple_n(7));
  u32 visited = 0;
  table.for_each([&](const net::FiveTuple& key, void*) {
    EXPECT_NE(key, tuple_n(3));
    EXPECT_NE(key, tuple_n(7));
    ++visited;
  });
  EXPECT_EQ(visited, 8u);
}

TEST(FlowTable, ReadConsistentSnapshot) {
  FlowTable table(16, 8, 0);
  void* e = table.insert(tuple_n(1));
  *static_cast<u64*>(e) = 7;
  u8 buf[8];
  ASSERT_TRUE(table.read_consistent(tuple_n(1), buf));
  u64 v;
  std::memcpy(&v, buf, 8);
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(table.read_consistent(tuple_n(2), buf));
}

// Writing partition in action: one writer thread (the owner core) updating
// an entry through write_begin/write_end, one reader thread snapshotting it
// with read_consistent — the reader must never observe a torn value.
TEST(FlowTable, SeqlockPreventsTornReads) {
  FlowTable table(16, 16, 0);
  struct Pair {
    u64 a;
    u64 b;
  };
  auto* e = static_cast<Pair*>(table.insert(tuple_n(1)));
  ASSERT_NE(e, nullptr);
  e->a = 0;
  e->b = 0;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    u8 buf[16];
    while (!stop.load(std::memory_order_relaxed)) {
      if (table.read_consistent(tuple_n(1), buf)) {
        Pair snapshot;
        std::memcpy(&snapshot, buf, sizeof(snapshot));
        // Invariant maintained by the writer: b == 2 * a.
        EXPECT_EQ(snapshot.b, 2 * snapshot.a);
      }
    }
  });
  for (u64 i = 1; i <= 50000; ++i) {
    table.write_begin(e);
    e->a = i;
    e->b = 2 * i;
    table.write_end(e);
  }
  stop.store(true);
  reader.join();
}

}  // namespace
}  // namespace sprayer::core

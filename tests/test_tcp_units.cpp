// TCP building blocks: sequence arithmetic, RTT/RTO estimation, congestion
// control window dynamics, timestamp options.
#include <gtest/gtest.h>

#include "tcp/cc.hpp"
#include "tcp/options.hpp"
#include "tcp/rtt.hpp"
#include "tcp/seq.hpp"

namespace sprayer::tcp {
namespace {

TEST(Seq, ComparisonsHandleWrap) {
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x00000010u));  // wrapped forward
  EXPECT_FALSE(seq_lt(0x00000010u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_ge(7, 7));
}

TEST(Seq, UnwrapRecoversNearbyOffsets) {
  const u64 ref = (1ull << 33) + 0xfffffff0ull;
  EXPECT_EQ(seq_unwrap(static_cast<u32>(ref) + 100, ref), ref + 100);
  EXPECT_EQ(seq_unwrap(static_cast<u32>(ref) - 100, ref), ref - 100);
  // Crossing the 32-bit boundary: 0xffffffff + 6 ≡ 5 (mod 2^32).
  const u64 near_wrap = (1ull << 33) + 0xffffffffull;
  EXPECT_EQ(seq_unwrap(0x00000005u, near_wrap), (1ull << 33) + 0x100000005ull);
}

TEST(Rtt, Rfc6298Estimation) {
  RttEstimator est(/*min_rto=*/1 * kMillisecond);
  EXPECT_FALSE(est.has_sample());
  est.sample(100 * kMicrosecond);
  // First sample: srtt = rtt, rttvar = rtt/2, rto = srtt + 4*rttvar = 3*rtt
  EXPECT_EQ(est.srtt(), 100 * kMicrosecond);
  EXPECT_EQ(est.rttvar(), 50 * kMicrosecond);
  EXPECT_EQ(est.rto(), 1 * kMillisecond);  // clamped to min

  // Repeated identical samples shrink rttvar toward 0.
  for (int i = 0; i < 50; ++i) est.sample(100 * kMicrosecond);
  EXPECT_EQ(est.srtt(), 100 * kMicrosecond);
  EXPECT_LT(est.rttvar(), 5 * kMicrosecond);
}

TEST(Rtt, BackoffDoublesAndClamps) {
  RttEstimator est(10 * kMillisecond, 20 * kMillisecond, 100 * kMillisecond);
  EXPECT_EQ(est.rto(), 20 * kMillisecond);
  est.backoff();
  EXPECT_EQ(est.rto(), 40 * kMillisecond);
  est.backoff();
  est.backoff();
  EXPECT_EQ(est.rto(), 100 * kMillisecond);  // clamped at max
}

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno cc(1000, 10);
  EXPECT_EQ(cc.cwnd(), 10000u);
  // 10 ACKs of one MSS each: cwnd grows by one MSS per ACK in slow start.
  for (int i = 0; i < 10; ++i) cc.on_ack(1000, 0, 0);
  EXPECT_EQ(cc.cwnd(), 20000u);
}

TEST(NewReno, CongestionAvoidanceIsLinear) {
  NewReno cc(1000, 10);
  cc.on_loss(20000, 0);  // ssthresh = 10000, cwnd = 10000 → now in CA
  const u64 start = cc.cwnd();
  // One window's worth of ACKs should add about one MSS.
  const int acks = static_cast<int>(start / 1000);
  for (int i = 0; i < acks; ++i) cc.on_ack(1000, 0, 0);
  EXPECT_NEAR(static_cast<double>(cc.cwnd()), static_cast<double>(start + 1000),
              100.0);
}

TEST(NewReno, LossAndRtoResponses) {
  NewReno cc(1000, 10);
  cc.on_loss(10000, 0);
  EXPECT_EQ(cc.ssthresh(), 5000u);
  EXPECT_EQ(cc.cwnd(), 5000u);
  cc.on_rto(5000, 0);
  EXPECT_EQ(cc.cwnd(), 1000u);  // collapse to one MSS
  EXPECT_EQ(cc.ssthresh(), 2500u);
  // Floor at 2 MSS.
  cc.on_loss(1000, 0);
  EXPECT_EQ(cc.ssthresh(), 2000u);
}

TEST(Cubic, ReducesByBetaAndRegrows) {
  Cubic cc(1000, 10);
  // Grow past slow start.
  cc.on_loss(10000, from_seconds(1.0));
  const u64 after_loss = cc.cwnd();
  EXPECT_EQ(after_loss, 7000u);  // beta = 0.7

  // ACKs over simulated time regrow the window toward (and past) w_max.
  // K = cbrt(w_max * (1-beta) / C) = cbrt(10 * 0.3 / 0.4) ≈ 1.96 s, so run
  // three simulated seconds of ACKs.
  u64 prev = cc.cwnd();
  for (int ms = 0; ms < 3000; ++ms) {
    cc.on_ack(1000, from_seconds(1.0 + ms * 1e-3), 100 * kMicrosecond);
    EXPECT_GE(cc.cwnd(), prev);  // monotone growth between losses
    prev = cc.cwnd();
  }
  EXPECT_GT(cc.cwnd(), 10000u);  // recovered beyond the pre-loss window
}

TEST(Cubic, SlowStartBeforeFirstLoss) {
  Cubic cc(1000, 2);
  const u64 start = cc.cwnd();
  cc.on_ack(1000, 0, 0);
  EXPECT_EQ(cc.cwnd(), start + 1000);  // exponential phase
}

TEST(CcFactory, CreatesBothKinds) {
  auto reno = make_cc(CcKind::kNewReno, 1460, 10);
  auto cubic = make_cc(CcKind::kCubic, 1460, 10);
  EXPECT_STREQ(reno->name(), "newreno");
  EXPECT_STREQ(cubic->name(), "cubic");
  EXPECT_EQ(reno->cwnd(), 14600u);
  EXPECT_EQ(cubic->cwnd(), 14600u);
}

TEST(Options, TimestampEncodeParseRoundTrip) {
  const auto block = encode_ts(123456789u, 987654321u);
  EXPECT_EQ(block.size(), kTsOptionLen);
  EXPECT_EQ(block[0], 1);  // NOP padding
  EXPECT_EQ(block[2], 8);  // timestamp kind
}

}  // namespace
}  // namespace sprayer::tcp

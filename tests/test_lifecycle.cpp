// Flow-state lifecycle (DESIGN.md §15): inline last_seen stamps, the
// cursor-bounded idle sweep, segmented online resize, and the NF-level
// expiry contracts — FIN teardown leaves no state behind, idle aging
// releases NAT ports, retransmitted FINs never close a half-open
// connection, and growth absorbs load beyond the provisioned capacity
// while readers run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/core_picker.hpp"
#include "core/flow_state.hpp"
#include "core/flow_table.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/load_balancer.hpp"
#include "nf/monitor.hpp"
#include "nf/nat.hpp"
#include "nic/pktgen.hpp"
#include "state/strategy.hpp"

namespace sprayer::core {
namespace {

constexpr u32 kCores = 4;

net::FiveTuple tuple_of(u32 i) {
  return net::FiveTuple{
      net::Ipv4Addr{10, static_cast<u8>(i >> 8), static_cast<u8>(i), 1},
      net::Ipv4Addr{10, 99, static_cast<u8>(i >> 8), static_cast<u8>(i)},
      static_cast<u16>(1024 + (i % 40000)), 80, net::kProtoTcp};
}

net::FiveTuple udp_tuple_of(u32 i) {
  net::FiveTuple t = tuple_of(i);
  t.protocol = net::kProtoUdp;
  return t;
}

// --- unit: inline last_seen stamps ------------------------------------------

TEST(FlowTableStamps, TouchAndReadBack) {
  FlowTable t(64, 16, 0);
  const auto key = tuple_of(1);
  void* e = t.insert(key);
  ASSERT_NE(e, nullptr);
  // Insert zeroes the stamp along with the entry.
  EXPECT_EQ(FlowTable::last_seen(e), 0u);
  FlowTable::touch(e, 5 * kSecond);
  EXPECT_EQ(FlowTable::last_seen(e), 5 * kSecond);
  // touch_if_stale: within the granularity window the stamp stays put...
  FlowTable::touch_if_stale(e, 5 * kSecond + kMicrosecond, kMillisecond);
  EXPECT_EQ(FlowTable::last_seen(e), 5 * kSecond);
  // ...and past it the stamp advances.
  FlowTable::touch_if_stale(e, 5 * kSecond + 2 * kMillisecond, kMillisecond);
  EXPECT_EQ(FlowTable::last_seen(e), 5 * kSecond + 2 * kMillisecond);
}

TEST(FlowTableStamps, SlotReuseClearsStamp) {
  FlowTable t(64, 16, 0);
  const auto key = tuple_of(2);
  void* e = t.insert(key);
  ASSERT_NE(e, nullptr);
  FlowTable::touch(e, 9 * kSecond);
  ASSERT_TRUE(t.remove(key));
  // Re-inserting (likely the same slot) must not inherit the old stamp.
  void* e2 = t.insert(key);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(FlowTable::last_seen(e2), 0u);
}

// --- unit: segmented online resize ------------------------------------------

TEST(FlowTableGrowth, GrowthOffKeepsSeedFullTableBehavior) {
  // Mirror of FlowTable.RespectsMaxLoadFactor: without set_growth() the
  // table must fill to capacity - capacity/8 and then refuse.
  FlowTable t(64, 8, 0);
  u32 inserted = 0;
  for (u32 i = 0; i < 64; ++i) {
    if (t.insert(tuple_of(i)) != nullptr) ++inserted;
  }
  EXPECT_EQ(inserted, 64u - 64u / 8u);
  EXPECT_EQ(t.num_segments(), 1u);
  EXPECT_EQ(t.capacity(), 64u);
}

TEST(FlowTableGrowth, GrowsBySegmentsAndFindsEverything) {
  FlowTable t(64, 16, 0);
  t.set_growth(4);
  constexpr u32 kFlows = 150;  // > 2 segments' worth of headroom
  for (u32 i = 0; i < kFlows; ++i) {
    auto* e = static_cast<u8*>(t.insert(tuple_of(i)));
    ASSERT_NE(e, nullptr) << "insert " << i << " failed despite growth";
    std::memset(e, static_cast<int>(i & 0xff), 16);
  }
  EXPECT_EQ(t.size(), kFlows);
  EXPECT_GT(t.num_segments(), 1u);
  EXPECT_LE(t.num_segments(), 4u);
  EXPECT_EQ(t.capacity(), 64u * t.num_segments());
  for (u32 i = 0; i < kFlows; ++i) {
    const auto* e = static_cast<const u8*>(t.find_local(tuple_of(i)));
    ASSERT_NE(e, nullptr) << "flow " << i << " lost after growth";
    EXPECT_EQ(e[0], static_cast<u8>(i & 0xff));
    // The remote (cross-core) path must see segment entries too.
    EXPECT_EQ(t.find_remote(tuple_of(i)), e);
  }
}

TEST(FlowTableGrowth, InsertIsIdempotentAcrossSegments) {
  FlowTable t(64, 16, 0);
  t.set_growth(4);
  for (u32 i = 0; i < 120; ++i) ASSERT_NE(t.insert(tuple_of(i)), nullptr);
  ASSERT_GT(t.num_segments(), 1u);
  const u64 size_before = t.size();
  // Re-inserting every key must return the existing entry, never a
  // duplicate in a later segment.
  for (u32 i = 0; i < 120; ++i) {
    void* again = t.insert(tuple_of(i));
    EXPECT_EQ(again, t.find_local(tuple_of(i)));
  }
  EXPECT_EQ(t.size(), size_before);
}

TEST(FlowTableGrowth, RemoveWorksInEverySegmentAndCapacityIsBounded) {
  FlowTable t(64, 16, 0);
  t.set_growth(2);
  std::vector<net::FiveTuple> keys;
  for (u32 i = 0; i < 4096; ++i) {
    const auto key = tuple_of(i);
    if (t.insert(key) == nullptr) break;  // both segments full
    keys.push_back(key);
  }
  // Growth is bounded by max_segments: the table refused eventually.
  EXPECT_EQ(t.num_segments(), 2u);
  EXPECT_LT(keys.size(), 128u);
  for (const auto& key : keys) EXPECT_TRUE(t.remove(key));
  EXPECT_EQ(t.size(), 0u);
  // And the emptied table accepts inserts again.
  EXPECT_NE(t.insert(tuple_of(9999)), nullptr);
}

TEST(FlowTableGrowth, FindBatchSpansSegments) {
  FlowTable t(64, 16, 0);
  t.set_growth(4);
  constexpr u32 kFlows = 120;
  std::vector<net::FiveTuple> keys;
  std::vector<FlowTable::FlowHash> hashes;
  for (u32 i = 0; i < kFlows; ++i) {
    keys.push_back(tuple_of(i));
    hashes.push_back(FlowTable::hash_of(keys.back()));
    ASSERT_NE(t.insert(keys.back(), hashes.back()), nullptr);
  }
  ASSERT_GT(t.num_segments(), 1u);
  std::vector<const void*> out(kFlows, nullptr);
  const u32 hits = t.find_batch(keys, hashes, out);
  EXPECT_EQ(hits, kFlows);
  for (u32 i = 0; i < kFlows; ++i) {
    EXPECT_EQ(out[i], t.find_remote(keys[i], hashes[i])) << i;
  }
}

// --- unit: the cursor-bounded sweep -----------------------------------------

TEST(FlowTableSweep, VisitsEveryEntryOncePerRotationAndIsBounded) {
  FlowTable t(256, 16, 0);
  constexpr u32 kFlows = 100;
  for (u32 i = 0; i < kFlows; ++i) ASSERT_NE(t.insert(tuple_of(i)), nullptr);
  const u64 total = t.total_groups();
  EXPECT_EQ(total, 256u / FlowTable::kGroupWidth);
  u64 cursor = 0;
  std::multiset<std::string> seen;
  u64 calls = 0;
  while (cursor < total) {
    // Bounded work: never more than 4 groups per call.
    const u32 scanned = t.sweep_groups(
        cursor, 4, [&](const net::FiveTuple& key, void*, Time) {
          seen.insert(key.to_string());
        });
    EXPECT_LE(scanned, 4u);
    ++calls;
  }
  EXPECT_GE(calls, total / 4);
  EXPECT_EQ(seen.size(), kFlows);  // each entry exactly once: no dups
  for (u32 i = 0; i < kFlows; ++i) {
    EXPECT_EQ(seen.count(tuple_of(i).to_string()), 1u) << i;
  }
  // The cursor wraps: a second rotation revisits the same population.
  std::multiset<std::string> second;
  for (u64 g = 0; g < total; g += 4) {
    (void)t.sweep_groups(cursor, 4,
                         [&](const net::FiveTuple& key, void*, Time) {
                           second.insert(key.to_string());
                         });
  }
  EXPECT_EQ(second, seen);
}

TEST(FlowTableSweep, CoversNewSegmentsAfterGrowth) {
  FlowTable t(64, 16, 0);
  t.set_growth(4);
  constexpr u32 kFlows = 120;
  for (u32 i = 0; i < kFlows; ++i) ASSERT_NE(t.insert(tuple_of(i)), nullptr);
  ASSERT_GT(t.num_segments(), 1u);
  u64 cursor = 0;
  std::set<std::string> seen;
  const u64 total = t.total_groups();
  for (u64 g = 0; g < total; g += 8) {
    (void)t.sweep_groups(cursor, 8,
                         [&](const net::FiveTuple& key, void*, Time) {
                           seen.insert(key.to_string());
                         });
  }
  EXPECT_EQ(seen.size(), kFlows);
}

// --- unit: FlowStateApi::sweep_idle — UDP-style pure idle aging -------------

TEST(SweepIdle, ExpiresIdleUdpFlowsAndSparesRefreshedOnes) {
  // UDP flows have no FIN: idle aging is the only way they ever leave the
  // table. Single-core writing-partition api: it owns every flow.
  FlowTable table(256, 16, 0);
  FlowTable* tables[] = {&table};
  CorePicker picker(1);
  CostModel costs;
  Cycles sink = 0;
  FlowStateApi api(0, tables, picker, costs, sink);

  constexpr Time kIdle = 10 * kSecond;
  api.set_now(100 * kSecond);
  constexpr u32 kFlows = 40;
  for (u32 i = 0; i < kFlows; ++i) {
    ASSERT_NE(api.insert_local_flow(udp_tuple_of(i)), nullptr);
  }
  // Half the flows stay active: refresh their stamps much later.
  api.set_now(150 * kSecond);
  for (u32 i = 0; i < kFlows; i += 2) {
    ASSERT_NE(api.get_local_flow(udp_tuple_of(i)), nullptr);
  }
  // Sweep at a time where only the unrefreshed half is past the timeout.
  api.set_now(155 * kSecond);
  auto pred = [&api](const net::FiveTuple&, const void*, Time last_seen) {
    return last_seen + kIdle <= api.now();
  };
  u32 expired = 0;
  auto on_expire = [&](const net::FiveTuple& key, FlowTable::FlowHash hash) {
    EXPECT_TRUE(api.remove_local_flow(key, hash));
    ++expired;
  };
  // Drive full rotations until a whole pass finds nothing more.
  for (u32 round = 0; round < 4; ++round) {
    (void)api.sweep_idle(static_cast<u32>(table.total_groups()), pred,
                         on_expire);
  }
  EXPECT_EQ(expired, kFlows / 2);
  EXPECT_EQ(table.size(), kFlows / 2);
  for (u32 i = 0; i < kFlows; ++i) {
    const bool refreshed = (i % 2) == 0;
    EXPECT_EQ(api.get_local_flow(udp_tuple_of(i)) != nullptr, refreshed) << i;
  }
}

TEST(SweepIdle, CandidateBatchIsBoundedPerCall) {
  FlowTable table(4096, 16, 0);
  FlowTable* tables[] = {&table};
  CorePicker picker(1);
  CostModel costs;
  Cycles sink = 0;
  FlowStateApi api(0, tables, picker, costs, sink);
  api.set_now(kSecond);
  // Far more idle flows than one sweep call may expire.
  for (u32 i = 0; i < 2000; ++i) {
    ASSERT_NE(api.insert_local_flow(udp_tuple_of(i)), nullptr);
  }
  api.set_now(100 * kSecond);
  u32 expired = 0;
  const auto st = api.sweep_idle(
      static_cast<u32>(table.total_groups()),
      [](const net::FiveTuple&, const void*, Time) { return true; },
      [&](const net::FiveTuple& key, FlowTable::FlowHash hash) {
        EXPECT_TRUE(api.remove_local_flow(key, hash));
        ++expired;
      });
  EXPECT_EQ(expired, FlowStateApi::kSweepCandidates);
  EXPECT_EQ(st.expired, FlowStateApi::kSweepCandidates);
}

// --- threaded harness --------------------------------------------------------

net::Packet* make_packet(net::PacketPool& pool, const net::FiveTuple& t,
                         u8 flags) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  return net::build_tcp_raw(pool, spec);
}

void must_inject(ThreadedMiddlebox& mbox, net::PacketPool& pool,
                 const net::FiveTuple& t, u8 flags) {
  for (;;) {
    net::Packet* pkt = make_packet(pool, t, flags);
    if (pkt != nullptr && mbox.inject(pkt)) return;
    std::this_thread::yield();
  }
}

void settle(ThreadedMiddlebox& mbox, u32 millis = 25) {
  mbox.wait_idle();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  mbox.wait_idle();
}

/// Live flow entries, respecting the strategy's table layout (count the
/// shared/replica table once).
u64 live_entries(ThreadedMiddlebox& mbox,
                 state::StateStrategyKind kind) {
  if (kind == state::StateStrategyKind::kWritingPartition) {
    u64 n = 0;
    for (u32 c = 0; c < kCores; ++c) {
      n += mbox.flow_table(static_cast<CoreId>(c)).size();
    }
    return n;
  }
  return mbox.flow_table(0).size();
}

SprayerConfig lifecycle_cfg(state::StateStrategyKind kind, Time idle) {
  SprayerConfig cfg;
  cfg.num_cores = kCores;
  cfg.mode = DispatchMode::kSpray;
  cfg.overload_policy = OverloadPolicy::kBlock;
  cfg.housekeeping_interval = 5 * kMillisecond;
  cfg.state.kind = kind;
  cfg.lifecycle.idle_timeout = idle;
  return cfg;
}

constexpr state::StateStrategyKind kAllKinds[] = {
    state::StateStrategyKind::kWritingPartition,
    state::StateStrategyKind::kReplication,
    state::StateStrategyKind::kSharedLocked,
};

// --- teardown: FIN handshake leaves zero state, under every strategy --------

void fin_teardown_under(state::StateStrategyKind kind) {
  net::PacketPool pool(8192, 256);
  nf::MonitorNf monitor;
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Idle aging stays out of the way (60s default): removals below are pure
  // FIN teardown.
  ThreadedMiddlebox mbox(lifecycle_cfg(kind, 0), monitor, std::move(sink));
  mbox.start();
  const auto flows = nic::random_tcp_flows(48, 11);
  for (const auto& f : flows) must_inject(mbox, pool, f, net::TcpFlags::kSyn);
  mbox.wait_idle();
  // Full bidirectional close: one FIN per direction.
  for (const auto& f : flows) {
    must_inject(mbox, pool, f, net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  mbox.wait_idle();
  for (const auto& f : flows) {
    must_inject(mbox, pool, f.reversed(),
                net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  settle(mbox);
  const auto totals = monitor.aggregate();
  EXPECT_EQ(totals.connections_opened, flows.size());
  EXPECT_EQ(totals.connections_closed, flows.size());
  EXPECT_EQ(live_entries(mbox, kind), 0u) << "stranded entries after FINs";
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(FinTeardown, WritingPartition) {
  fin_teardown_under(state::StateStrategyKind::kWritingPartition);
}
TEST(FinTeardown, Replication) {
  fin_teardown_under(state::StateStrategyKind::kReplication);
}
TEST(FinTeardown, SharedLocked) {
  fin_teardown_under(state::StateStrategyKind::kSharedLocked);
}

// --- the double-FIN bug: retransmitted FINs must not close ------------------

TEST(FinTeardown, RetransmittedFinStaysOpenMonitor) {
  net::PacketPool pool(4096, 256);
  nf::MonitorNf monitor;
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  ThreadedMiddlebox mbox(
      lifecycle_cfg(state::StateStrategyKind::kWritingPartition, 0), monitor,
      std::move(sink));
  mbox.start();
  const auto f = tuple_of(7);
  must_inject(mbox, pool, f, net::TcpFlags::kSyn);
  mbox.wait_idle();
  // Three copies of the SAME direction's FIN: the old fin_count logic
  // closed on the second copy; direction bits must keep it half-open.
  for (int i = 0; i < 3; ++i) {
    must_inject(mbox, pool, f, net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  settle(mbox);
  EXPECT_EQ(monitor.aggregate().connections_closed, 0u);
  EXPECT_EQ(live_entries(mbox, state::StateStrategyKind::kWritingPartition),
            1u);
  // The peer's FIN completes the handshake.
  must_inject(mbox, pool, f.reversed(),
              net::TcpFlags::kFin | net::TcpFlags::kAck);
  settle(mbox);
  EXPECT_EQ(monitor.aggregate().connections_closed, 1u);
  EXPECT_EQ(live_entries(mbox, state::StateStrategyKind::kWritingPartition),
            0u);
  mbox.stop();
}

TEST(FinTeardown, RetransmittedFinStaysOpenLoadBalancer) {
  net::PacketPool pool(4096, 256);
  nf::LbConfig lb_cfg;
  lb_cfg.backends.push_back(
      {net::MacAddr::from_id(100), net::Ipv4Addr{10, 1, 0, 1}});
  nf::LoadBalancerNf lb(lb_cfg);
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  ThreadedMiddlebox mbox(
      lifecycle_cfg(state::StateStrategyKind::kWritingPartition, 0), lb,
      std::move(sink));
  mbox.start();
  const net::FiveTuple f{net::Ipv4Addr{10, 0, 0, 1}, lb_cfg.vip, 2001,
                         lb_cfg.vport, net::kProtoTcp};
  must_inject(mbox, pool, f, net::TcpFlags::kSyn);
  mbox.wait_idle();
  for (int i = 0; i < 3; ++i) {
    must_inject(mbox, pool, f, net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  settle(mbox);
  // Pin still held: three same-direction FINs are one half-close.
  EXPECT_EQ(lb.active_connections()[0], 1);
  must_inject(mbox, pool, f.reversed(),
              net::TcpFlags::kFin | net::TcpFlags::kAck);
  settle(mbox);
  EXPECT_EQ(lb.active_connections()[0], 0);
  mbox.stop();
}

// --- idle aging: NAT sessions release their ports, replicas converge --------

void nat_idle_aging_under(state::StateStrategyKind kind) {
  net::PacketPool pool(8192, 256);
  nf::NatConfig nat_cfg;
  nf::NatNf nat(nat_cfg);
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Aggressive idle timeout: sessions that go quiet are reaped within a
  // few sweep rotations.
  ThreadedMiddlebox mbox(lifecycle_cfg(kind, 40 * kMillisecond), nat,
                         std::move(sink));
  mbox.start();
  const auto flows = nic::random_tcp_flows(24, 17);
  for (const auto& f : flows) {
    must_inject(mbox, pool, f, net::TcpFlags::kSyn);
    mbox.wait_idle();
  }
  EXPECT_EQ(nat.counters().sessions_opened, flows.size());
  // No claimed-port assertion here: the timeout is aggressive enough that
  // on a loaded host the earliest sessions can already be reaped before
  // the ramp finishes. The quiescent-state checks below are the contract.
  // Go quiet; idle aging must reclaim every session (two entries each) and
  // conserve the port pool. Worst case: 40ms idle + 8-tick rotation at 5ms.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         nat.port_pool().claimed() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  settle(mbox);
  EXPECT_EQ(nat.port_pool().claimed(), 0u) << "leaked NAT ports";
  EXPECT_EQ(live_entries(mbox, kind), 0u) << "stranded NAT entries";
  EXPECT_EQ(nat.counters().sessions_expired, flows.size());
  if (kind == state::StateStrategyKind::kReplication) {
    const auto report = mbox.state_strategy().check_divergence();
    EXPECT_TRUE(report.clean())
        << "expiry diverged: missing=" << report.missing_entries
        << " extra=" << report.extra_entries
        << " mismatched=" << report.mismatched_entries;
  }
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
}

TEST(IdleAging, NatReleasesPortsWritingPartition) {
  nat_idle_aging_under(state::StateStrategyKind::kWritingPartition);
}
TEST(IdleAging, NatReleasesPortsReplication) {
  nat_idle_aging_under(state::StateStrategyKind::kReplication);
}
TEST(IdleAging, NatReleasesPortsSharedLocked) {
  nat_idle_aging_under(state::StateStrategyKind::kSharedLocked);
}

TEST(IdleAging, ActiveTrafficKeepsSessionsAlive) {
  net::PacketPool pool(8192, 256);
  nf::NatNf nat;
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  ThreadedMiddlebox mbox(
      lifecycle_cfg(state::StateStrategyKind::kWritingPartition,
                    60 * kMillisecond),
      nat, std::move(sink));
  mbox.start();
  const auto flows = nic::random_tcp_flows(8, 23);
  for (const auto& f : flows) {
    must_inject(mbox, pool, f, net::TcpFlags::kSyn);
    mbox.wait_idle();
  }
  // Keep every session busy for several timeout periods: the per-packet
  // get_flow touch must hold expiry off.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  while (std::chrono::steady_clock::now() < until) {
    for (const auto& f : flows) {
      must_inject(mbox, pool, f, net::TcpFlags::kAck);
    }
    mbox.wait_idle();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(nat.counters().sessions_expired, 0u)
      << "sweep expired sessions with live traffic";
  EXPECT_EQ(nat.port_pool().claimed(), flows.size());
  mbox.stop();
}

// --- table_full: the silent-drop bug is now observable -----------------------

TEST(TableFull, MonitorCountsRefusedSyns) {
  net::PacketPool pool(8192, 256);
  nf::MonitorNf monitor;
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Tiny tables, growth off: the SYN flood must overflow them.
  SprayerConfig cfg =
      lifecycle_cfg(state::StateStrategyKind::kWritingPartition, 0);
  cfg.lifecycle.flow_table_capacity = 64;
  ThreadedMiddlebox mbox(cfg, monitor, std::move(sink));
  mbox.start();
  constexpr u32 kSyns = 400;  // 4 cores x 56 usable slots << 400 flows
  for (u32 i = 0; i < kSyns; ++i) {
    must_inject(mbox, pool, tuple_of(i), net::TcpFlags::kSyn);
  }
  settle(mbox);
  const auto totals = monitor.aggregate();
  EXPECT_GT(totals.table_full, 0u);
  EXPECT_EQ(totals.connections_opened + totals.table_full, kSyns);
  mbox.stop();
}

// --- segmented resize under load (the TSan witness) --------------------------

TEST(ResizeUnderLoad, GrowthAbsorbsSynFloodWhileCoresRun) {
  net::PacketPool pool(16384, 256);
  nf::MonitorNf monitor;
  ThreadedMiddlebox::TxHandler sink = [](net::Packet* pkt) {
    pkt->pool()->free(pkt);
  };
  // Provision small, allow 8 segments: the flood fits only by growing
  // online while all cores insert, read, and sweep.
  SprayerConfig cfg =
      lifecycle_cfg(state::StateStrategyKind::kWritingPartition, 0);
  cfg.lifecycle.flow_table_capacity = 256;
  cfg.lifecycle.max_table_segments = 8;
  ThreadedMiddlebox mbox(cfg, monitor, std::move(sink));
  mbox.start();
  constexpr u32 kFlows = 2000;
  for (u32 i = 0; i < kFlows; ++i) {
    must_inject(mbox, pool, tuple_of(i), net::TcpFlags::kSyn);
    // Interleave reads of earlier flows: concurrent find during growth.
    if (i % 7 == 0) {
      must_inject(mbox, pool, tuple_of(i / 2), net::TcpFlags::kAck);
    }
  }
  settle(mbox);
  const auto totals = monitor.aggregate();
  EXPECT_EQ(totals.table_full, 0u) << "growth failed to absorb the flood";
  EXPECT_EQ(totals.connections_opened, kFlows);
  u64 grown_tables = 0;
  for (u32 c = 0; c < kCores; ++c) {
    if (mbox.flow_table(static_cast<CoreId>(c)).num_segments() > 1) {
      ++grown_tables;
    }
  }
  EXPECT_GT(grown_tables, 0u) << "no table actually grew";
  // Teardown drains everything back out across segment boundaries.
  for (u32 i = 0; i < kFlows; ++i) {
    must_inject(mbox, pool, tuple_of(i),
                net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  mbox.wait_idle();
  for (u32 i = 0; i < kFlows; ++i) {
    must_inject(mbox, pool, tuple_of(i).reversed(),
                net::TcpFlags::kFin | net::TcpFlags::kAck);
  }
  settle(mbox);
  EXPECT_EQ(monitor.aggregate().connections_closed, kFlows);
  EXPECT_EQ(live_entries(mbox, state::StateStrategyKind::kWritingPartition),
            0u);
  mbox.stop();
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace sprayer::core

// Flow-record export and sampled packet-path tracing (DESIGN.md §13):
// FlowRecorder slot protocol (collision/steal/untracked semantics),
// LiveExporter emission policy (idle vs interval vs final, per-tick
// budget), PathTracer stage accounting, JsonExporter hardening (string
// escaping, counter monotonicity, inconsistent-snapshot surfacing), and
// the wiring through ThreadedMiddlebox with real worker threads (run
// under TSan in CI: single-writer recorder vs harvesting driver).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "nf/synthetic.hpp"
#include "nic/pktgen.hpp"
#include "telemetry/flow_export.hpp"
#include "telemetry/json_exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"

namespace sprayer::telemetry {
namespace {

u64 count_occurrences(const std::string& hay, const std::string& needle) {
  u64 n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- FlowRecorder -----------------------------------------------------------

TEST(FlowRecorder, AccountsAndReadsOneFlow) {
  FlowRecorder rec(8, 10 * kMillisecond);
  rec.account(/*hash=*/5, /*bytes=*/100, /*tcp_flags=*/0x02,
              1 * kMillisecond);
  rec.account(5, 60, 0x10, 2 * kMillisecond);
  const auto v = rec.read(5);
  ASSERT_NE(v.key, 0u);
  EXPECT_EQ(v.hash(), 5u);
  EXPECT_EQ(v.packets, 2u);
  EXPECT_EQ(v.bytes, 160u);
  EXPECT_EQ(v.tcp_flags, 0x12);  // SYN|ACK union
  EXPECT_EQ(v.first, 1 * kMillisecond);
  EXPECT_EQ(v.last, 2 * kMillisecond);
  EXPECT_EQ(rec.packets(), 2u);
  EXPECT_EQ(rec.untracked(), 0u);
}

TEST(FlowRecorder, CollisionNeverDisplacesLiveIncumbent) {
  FlowRecorder rec(8, 10 * kMillisecond);
  rec.account(5, 100, 0, 1 * kMillisecond);
  // hash 13 maps to the same slot (13 & 7 == 5); the incumbent saw traffic
  // 1ms ago, well inside the idle timeout, so the newcomer goes uncounted.
  rec.account(13, 100, 0, 2 * kMillisecond);
  EXPECT_EQ(rec.untracked(), 1u);
  EXPECT_EQ(rec.evictions(), 0u);
  const auto v = rec.read(5);
  EXPECT_EQ(v.hash(), 5u);
  EXPECT_EQ(v.packets, 1u);
}

TEST(FlowRecorder, IdleIncumbentIsStolenWithFreshGeneration) {
  FlowRecorder rec(8, 10 * kMillisecond);
  rec.account(5, 100, 0x02, 1 * kMillisecond);
  const u32 gen_before = static_cast<u32>(rec.read(5).key);
  // 19ms past the incumbent's last packet: idle, steal the slot.
  rec.account(13, 40, 0, 20 * kMillisecond);
  EXPECT_EQ(rec.evictions(), 1u);
  const auto v = rec.read(5);
  ASSERT_NE(v.key, 0u);
  EXPECT_EQ(v.hash(), 13u);
  EXPECT_EQ(v.packets, 1u);
  EXPECT_EQ(v.bytes, 40u);
  EXPECT_EQ(v.tcp_flags, 0u);  // fields reset, no flag leakage
  EXPECT_EQ(v.first, 20 * kMillisecond);
  EXPECT_NE(static_cast<u32>(v.key), gen_before);  // generation bumped
}

// --- LiveExporter emission policy -------------------------------------------

FlowExportConfig unit_cfg() {
  FlowExportConfig cfg;
  cfg.enabled = true;
  cfg.table_slots = 8;
  cfg.harvest_interval = 1 * kMillisecond;
  cfg.export_interval = 10 * kMillisecond;
  cfg.idle_timeout = 20 * kMillisecond;
  cfg.snapshot_interval = 0;  // flow lines only
  cfg.max_records_per_tick = 256;
  return cfg;
}

TEST(LiveExporter, IntervalThenIdleEmission) {
  MetricsRegistry reg(1);
  FlowRecorder rec(8, unit_cfg().idle_timeout);
  LiveExporter ex(unit_cfg(), reg);
  ex.add_recorder(&rec);
  std::ostringstream out;
  ex.set_sink(&out);

  for (int i = 0; i < 3; ++i) rec.account(1, 100, 0x10, 1 * kMillisecond);
  ex.tick(1 * kMillisecond);  // flow discovered; nothing due yet
  EXPECT_EQ(ex.stats().flows_seen.load(), 1u);
  EXPECT_EQ(ex.live_flows(), 1u);
  EXPECT_EQ(ex.stats().records.load(), 0u);

  // 11ms past first-seen: the periodic interval fires for a growing flow.
  ex.tick(12 * kMillisecond);
  EXPECT_EQ(ex.stats().interval_records.load(), 1u);
  EXPECT_EQ(count_occurrences(out.str(), "\"reason\":\"interval\""), 1u);
  EXPECT_EQ(count_occurrences(out.str(), "\"delta_packets\":3"), 1u);

  // The flow stops growing: no further interval records...
  ex.tick(14 * kMillisecond);
  EXPECT_EQ(ex.stats().interval_records.load(), 1u);
  // ...and 20ms past its last packet it expires with an idle record.
  ex.tick(32 * kMillisecond);
  EXPECT_EQ(ex.stats().idle_records.load(), 1u);
  EXPECT_EQ(ex.live_flows(), 0u);
  EXPECT_EQ(count_occurrences(out.str(), "\"reason\":\"idle\""), 1u);
}

TEST(LiveExporter, IntervalDeltasAreIncremental) {
  MetricsRegistry reg(1);
  FlowRecorder rec(8, unit_cfg().idle_timeout);
  LiveExporter ex(unit_cfg(), reg);
  ex.add_recorder(&rec);
  std::ostringstream out;
  ex.set_sink(&out);

  for (int i = 0; i < 3; ++i) rec.account(1, 100, 0, 1 * kMillisecond);
  ex.tick(1 * kMillisecond);
  ex.tick(12 * kMillisecond);  // interval record: packets 3, delta 3
  for (int i = 0; i < 2; ++i) rec.account(1, 100, 0, 13 * kMillisecond);
  ex.tick(13 * kMillisecond);
  ex.tick(24 * kMillisecond);  // interval record: packets 5, delta 2
  const std::string s = out.str();
  EXPECT_EQ(count_occurrences(s, "\"packets\":3,"), 1u);
  EXPECT_EQ(count_occurrences(s, "\"packets\":5,"), 1u);
  EXPECT_EQ(count_occurrences(s, "\"delta_packets\":2"), 1u);
}

TEST(LiveExporter, BudgetDefersOverflowToNextTick) {
  FlowExportConfig cfg = unit_cfg();
  cfg.max_records_per_tick = 2;
  MetricsRegistry reg(1);
  FlowRecorder rec(8, cfg.idle_timeout);
  LiveExporter ex(cfg, reg);
  ex.add_recorder(&rec);
  std::ostringstream out;
  ex.set_sink(&out);

  for (u32 h = 1; h <= 5; ++h) rec.account(h, 100, 0, 1 * kMillisecond);
  ex.tick(1 * kMillisecond);
  EXPECT_EQ(ex.stats().flows_seen.load(), 5u);
  // All five expire at once but only two records fit per tick.
  ex.tick(30 * kMillisecond);
  EXPECT_EQ(ex.stats().records.load(), 2u);
  EXPECT_EQ(ex.stats().deferred.load(), 3u);
  ex.tick(31 * kMillisecond);
  EXPECT_EQ(ex.stats().records.load(), 4u);
  ex.tick(32 * kMillisecond);
  EXPECT_EQ(ex.stats().records.load(), 5u);
  EXPECT_EQ(ex.live_flows(), 0u);
}

TEST(LiveExporter, FinalFlushEmitsEveryLiveFlowPastBudget) {
  FlowExportConfig cfg = unit_cfg();
  cfg.max_records_per_tick = 1;
  MetricsRegistry reg(1);
  FlowRecorder rec(8, cfg.idle_timeout);
  LiveExporter ex(cfg, reg);
  ex.add_recorder(&rec);
  std::ostringstream out;
  ex.set_sink(&out);

  for (u32 h = 1; h <= 4; ++h) rec.account(h, 100, 0, 1 * kMillisecond);
  ex.tick(1 * kMillisecond);
  ex.flush_final(2 * kMillisecond);
  EXPECT_EQ(ex.stats().final_records.load(), 4u);
  EXPECT_EQ(ex.live_flows(), 0u);
  EXPECT_EQ(count_occurrences(out.str(), "\"reason\":\"final\""), 4u);
}

TEST(LiveExporter, RecordsAreCountedWithoutSink) {
  MetricsRegistry reg(1);
  FlowRecorder rec(8, unit_cfg().idle_timeout);
  LiveExporter ex(unit_cfg(), reg);
  ex.add_recorder(&rec);
  rec.account(1, 100, 0, 1 * kMillisecond);
  ex.tick(1 * kMillisecond);
  ex.flush_final(2 * kMillisecond);
  EXPECT_EQ(ex.stats().records.load(), 1u);
}

TEST(LiveExporter, SnapshotLinesCarryConsistencyVerdict) {
  FlowExportConfig cfg = unit_cfg();
  cfg.snapshot_interval = 5 * kMillisecond;
  MetricsRegistry reg(2);
  auto c = reg.counter("c");
  reg.finalize();
  LiveExporter ex(cfg, reg);
  std::ostringstream out;
  ex.set_sink(&out);

  reg.begin_update(0);
  c.add(0, 1);
  reg.end_update(0);
  ex.tick(6 * kMillisecond);
  EXPECT_EQ(ex.stats().snapshots.load(), 1u);
  EXPECT_EQ(ex.stats().inconsistent_snapshots.load(), 0u);
  EXPECT_EQ(count_occurrences(out.str(), "\"consistent\":true"), 1u);

  // A shard stuck mid-update exhausts the seqlock retries: the snapshot
  // line is still emitted, flagged, and counted — never silently dropped.
  reg.begin_update(1);
  ex.tick(12 * kMillisecond);
  reg.end_update(1);
  EXPECT_EQ(ex.stats().snapshots.load(), 2u);
  EXPECT_EQ(ex.stats().inconsistent_snapshots.load(), 1u);
  EXPECT_EQ(count_occurrences(out.str(), "\"consistent\":false"), 1u);
}

// --- PathTracer -------------------------------------------------------------

TEST(PathTracer, SamplesOneInTwoToTheShift) {
  TraceConfig tc;
  tc.sample_shift = 2;  // 1-in-4
  MetricsRegistry reg(1);
  PathTracer tracer(tc, /*base=*/0);
  tracer.register_metrics(reg);
  reg.finalize();

  net::PacketPool pool(4, 128);
  auto owned = pool.alloc();
  net::Packet* pkt = owned.get();
  ASSERT_NE(pkt, nullptr);
  u32 stamped = 0;
  for (int i = 0; i < 16; ++i) {
    pkt->user_tag = 0;
    if (tracer.maybe_stamp(*pkt, [] { return Time{1 * kMicrosecond}; })) {
      ++stamped;
      EXPECT_TRUE(PathTracer::is_traced(pkt->user_tag));
    } else {
      EXPECT_EQ(pkt->user_tag, 0u);
    }
  }
  EXPECT_EQ(stamped, 4u);
  EXPECT_EQ(tracer.sampled(), 4u);
}

TEST(PathTracer, NeverStampsReorderClaimedPackets) {
  TraceConfig tc;
  tc.sample_shift = 0;  // every packet elected
  MetricsRegistry reg(1);
  PathTracer tracer(tc, 0);
  tracer.register_metrics(reg);
  reg.finalize();

  net::PacketPool pool(4, 128);
  auto owned = pool.alloc();
  net::Packet* pkt = owned.get();
  ASSERT_NE(pkt, nullptr);
  const u64 reorder_tag = ReorderObservatory::kStampFlag | 42;
  pkt->user_tag = reorder_tag;
  EXPECT_FALSE(tracer.maybe_stamp(*pkt, [] { return Time{0}; }));
  EXPECT_EQ(pkt->user_tag, reorder_tag);  // untouched
  EXPECT_FALSE(PathTracer::is_traced(pkt->user_tag));
}

TEST(PathTracer, StageDeltasLandInTheRightHistograms) {
  TraceConfig tc;
  tc.sample_shift = 0;
  MetricsRegistry reg(1);
  PathTracer tracer(tc, /*base=*/1 * kSecond);
  tracer.register_metrics(reg);
  reg.finalize();

  net::PacketPool pool(4, 128);
  auto owned = pool.alloc();
  net::Packet* pkt = owned.get();
  ASSERT_NE(pkt, nullptr);
  pkt->user_tag = 0;
  const Time t0 = 1 * kSecond + 1 * kMicrosecond;
  ASSERT_TRUE(tracer.maybe_stamp(*pkt, [&] { return t0; }));

  tracer.record_steer(*pkt, t0 + 150 * kNanosecond);
  ASSERT_TRUE(tracer.has_driver_samples());
  reg.begin_update(0);
  tracer.flush_driver(0);
  reg.end_update(0);

  std::array<net::Packet*, 1> batch{pkt};
  reg.begin_update(0);
  tracer.record_queue(batch, 0, t0 + 1150 * kNanosecond);
  tracer.record_tx(batch, 0, [&] { return t0 + 3150 * kNanosecond; });
  reg.end_update(0);

  SnapshotCollector collector(reg);
  const auto snap = collector.collect();
  const auto* steer = snap.find_histogram("trace.steer_ns");
  const auto* queue = snap.find_histogram("trace.queue_ns");
  const auto* nf = snap.find_histogram("trace.nf_ns");
  ASSERT_NE(steer, nullptr);
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(nf, nullptr);
  EXPECT_EQ(steer->merged.count(), 1u);
  EXPECT_EQ(queue->merged.count(), 1u);
  EXPECT_EQ(nf->merged.count(), 1u);
  // Log-bucket resolution: assert the right order of magnitude, not the
  // exact value (5 significant bits ⇒ ≤ ~3% relative bucket error).
  EXPECT_GE(steer->merged.p50(), 100u);
  EXPECT_LE(steer->merged.p50(), 300u);
  EXPECT_GE(queue->merged.p50(), 700u);
  EXPECT_LE(queue->merged.p50(), 2100u);
  EXPECT_GE(nf->merged.p50(), 1400u);
  EXPECT_LE(nf->merged.p50(), 4200u);
  EXPECT_EQ(snap.value("trace.completed"), 1u);
}

TEST(PathTracer, TimestampWrapsSafelyAcross48Bits) {
  TraceConfig tc;
  tc.sample_shift = 0;
  MetricsRegistry reg(1);
  PathTracer tracer(tc, /*base=*/0);
  tracer.register_metrics(reg);
  reg.finalize();

  net::PacketPool pool(4, 128);
  auto owned = pool.alloc();
  net::Packet* pkt = owned.get();
  ASSERT_NE(pkt, nullptr);
  pkt->user_tag = 0;
  // Stamp 50ns before the 48-bit rollover, close the stage 50ns after it:
  // the mod-2^48 delta must read 100ns, not a huge negative wrap.
  const u64 edge_ns = (1ULL << 48);
  ASSERT_TRUE(tracer.maybe_stamp(
      *pkt, [&] { return Time{(edge_ns - 50) * kNanosecond}; }));
  tracer.record_steer(*pkt, Time{(edge_ns + 50) * kNanosecond});
  reg.begin_update(0);
  tracer.flush_driver(0);
  reg.end_update(0);

  SnapshotCollector collector(reg);
  const auto snap = collector.collect();
  const auto* steer = snap.find_histogram("trace.steer_ns");
  ASSERT_NE(steer, nullptr);
  EXPECT_EQ(steer->merged.count(), 1u);
  EXPECT_LE(steer->merged.p50(), 200u);
}

// --- JsonExporter hardening -------------------------------------------------

TEST(JsonExporter, EscapesStringsForValidJson) {
  const auto esc = [](std::string_view in) {
    std::ostringstream os;
    write_json_string(os, in);
    return os.str();
  };
  EXPECT_EQ(esc("plain.name"), "\"plain.name\"");
  EXPECT_EQ(esc("quote\"back\\slash"), "\"quote\\\"back\\\\slash\"");
  EXPECT_EQ(esc("tab\tnewline\n"), "\"tab\\tnewline\\n\"");
  EXPECT_EQ(esc(std::string_view("ctl\x01", 4)), "\"ctl\\u0001\"");
}

TEST(JsonExporter, EmptySnapshotIsAValidDocument) {
  TelemetrySnapshot snap;
  std::ostringstream os;
  JsonExporter::write(os, snap);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"sprayer.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"inconsistent_shards\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser
  // (tools/check_telemetry_schema.py does the real validation in CI).
  EXPECT_EQ(count_occurrences(doc, "{"), count_occurrences(doc, "}"));
  EXPECT_EQ(count_occurrences(doc, "["), count_occurrences(doc, "]"));
}

TelemetrySnapshot counter_snapshot(u64 total, std::vector<u64> per_shard) {
  TelemetrySnapshot snap;
  ScalarSnapshot s;
  s.name = "c";
  s.kind = MetricKind::kCounter;
  s.total = total;
  s.per_shard = std::move(per_shard);
  snap.scalars.push_back(std::move(s));
  return snap;
}

TEST(JsonExporter, CounterMonotonicityAssertsOnRegression) {
  const auto prev = counter_snapshot(5, {2, 3});
  EXPECT_NO_THROW(
      JsonExporter::check_counters_monotonic(prev, counter_snapshot(5, {2, 3})));
  EXPECT_NO_THROW(
      JsonExporter::check_counters_monotonic(prev, counter_snapshot(9, {4, 5})));
  // Total regressed.
  EXPECT_THROW(
      JsonExporter::check_counters_monotonic(prev, counter_snapshot(3, {1, 2})),
      std::logic_error);
  // Total holds but one shard went backwards.
  EXPECT_THROW(
      JsonExporter::check_counters_monotonic(prev, counter_snapshot(5, {1, 4})),
      std::logic_error);
}

TEST(SnapshotCollector, CountsInconsistentSnapshots) {
  MetricsRegistry reg(2);
  auto c = reg.counter("c");
  (void)c;
  reg.finalize();
  SnapshotCollector collector(reg);
  EXPECT_TRUE(collector.collect().consistent);
  EXPECT_EQ(collector.inconsistent_snapshots(), 0u);

  reg.begin_update(1);
  const auto snap = collector.collect();
  reg.end_update(1);
  EXPECT_FALSE(snap.consistent);
  EXPECT_EQ(snap.num_shards, 2u);
  EXPECT_EQ(snap.inconsistent_shards, 1u);
  EXPECT_EQ(collector.inconsistent_snapshots(), 1u);

  std::ostringstream os;
  JsonExporter::write(os, snap);
  EXPECT_NE(os.str().find("\"consistent\": false"), std::string::npos);
  EXPECT_NE(os.str().find("\"inconsistent_shards\": 1"), std::string::npos);
}

}  // namespace
}  // namespace sprayer::telemetry

// --- ThreadedMiddlebox integration ------------------------------------------

namespace sprayer::core {
namespace {

net::Packet* tuple_packet(net::PacketPool& pool, const net::FiveTuple& t,
                          u8 flags, u64 seed) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &seed, 8);
  spec.payload = payload;
  return net::build_tcp_raw(pool, spec);
}

/// Four worker cores, sprayed traffic, flow export + tracing on, recorders
/// churning against the harvesting driver — the TSan target for the
/// single-writer/seqlock-lite protocols.
TEST(ThreadedFlowExport, StreamsRecordsUnderMultiCoreChurn) {
  net::PacketPool pool(1u << 12, 256);
  nf::SyntheticNf nf(0);
  std::atomic<u64> forwarded{0};
  ThreadedMiddlebox::TxBatchHandler sink =
      [&](std::span<net::Packet* const> pkts) {
        forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
        net::free_packets(pkts);
      };

  SprayerConfig cfg;
  cfg.num_cores = 4;
  cfg.mode = DispatchMode::kSpray;
  cfg.telemetry = true;
  cfg.flow_export.enabled = true;
  cfg.flow_export.table_slots = 256;
  cfg.flow_export.harvest_interval = 1 * kMillisecond;
  cfg.flow_export.export_interval = 5 * kMillisecond;
  cfg.flow_export.idle_timeout = 50 * kMillisecond;
  cfg.flow_export.snapshot_interval = 20 * kMillisecond;
  cfg.trace.enabled = true;
  cfg.trace.sample_shift = 2;  // 1-in-4
  ThreadedMiddlebox mbox(cfg, nf, std::move(sink));
  ASSERT_TRUE(mbox.flow_export_enabled());
  ASSERT_NE(mbox.tracer(), nullptr);
  std::ostringstream stream;
  mbox.flow_exporter()->set_sink(&stream);  // before traffic
  mbox.start();

  const auto flows = nic::random_tcp_flows(48, 7);
  for (const auto& flow : flows) {
    while (!mbox.inject(tuple_packet(pool, flow, net::TcpFlags::kSyn, 0))) {
      std::this_thread::yield();
    }
  }
  mbox.wait_idle();

  Rng rng(3);
  std::array<net::Packet*, 32> burst{};
  for (int round = 0; round < 300; ++round) {
    u32 n = 0;
    for (; n < burst.size(); ++n) {
      const auto& flow = flows[rng.next() % flows.size()];
      net::Packet* pkt =
          tuple_packet(pool, flow, net::TcpFlags::kAck, rng.next());
      if (pkt == nullptr) break;  // pool exhausted: workers own the rest
      burst[n] = pkt;
    }
    if (n > 0) mbox.inject_bulk({burst.data(), n});
  }
  mbox.wait_idle();
  mbox.stop();  // emits "final" records and the final snapshot line

  // Every packet a worker polled from its rx ring (foreign mesh traffic is
  // not re-accounted) landed in exactly one recorder cell or the untracked
  // counter.
  const auto snap = mbox.telemetry_snapshot();
  const u64 rx_polled =
      snap.value("worker.packets") - snap.value("worker.foreign_packets");
  u64 accounted = 0;
  for (u32 c = 0; c < cfg.num_cores; ++c) {
    const auto* rec = mbox.flow_recorder(static_cast<CoreId>(c));
    ASSERT_NE(rec, nullptr);
    accounted += rec->packets() + rec->untracked();
  }
  EXPECT_EQ(accounted, rx_polled);

  const auto& st = mbox.flow_exporter()->stats();
  EXPECT_GT(st.harvests.load(), 0u);
  EXPECT_GT(st.records.load(), 0u);
  EXPECT_GT(st.final_records.load(), 0u);
  EXPECT_GT(st.snapshots.load(), 0u);

  // Stream shape: every line belongs to the flowexport schema and the
  // shutdown flush emitted final records.
  const std::string s = stream.str();
  const u64 lines = sprayer::telemetry::count_occurrences(s, "\n");
  EXPECT_EQ(sprayer::telemetry::count_occurrences(
                s, "{\"schema\":\"sprayer.flowexport.v1\","),
            lines);
  EXPECT_GT(sprayer::telemetry::count_occurrences(s, "\"reason\":\"final\""),
            0u);
  EXPECT_GT(sprayer::telemetry::count_occurrences(s, "\"type\":\"snapshot\""),
            0u);

  // Tracer plausibility: stages saw samples, the per-stage delta counts
  // never exceed the stamped population, and every stage latency is within
  // the run's wall-clock envelope (a stuck clock or wrong re-stamp order
  // shows up as an absurd p99 here).
  EXPECT_GT(mbox.tracer()->sampled(), 0u);
  EXPECT_LE(snap.value("trace.completed"), mbox.tracer()->sampled());
  for (const char* name :
       {"trace.steer_ns", "trace.queue_ns", "trace.nf_ns"}) {
    const auto* h = snap.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->merged.count(), 0u) << name;
    EXPECT_LT(h->merged.p99(), 60ull * 1000 * 1000 * 1000) << name;  // <60s
  }
  // The inconsistent-snapshot gauge is wired into the registry.
  EXPECT_NE(snap.find("telemetry.snapshot.inconsistent"), nullptr);
}

TEST(ThreadedFlowExport, DisabledFeaturesLeaveNoFootprint) {
  net::PacketPool pool(1u << 10, 256);
  nf::SyntheticNf nf(0);
  std::atomic<u64> tag_violations{0};
  ThreadedMiddlebox::TxBatchHandler sink =
      [&](std::span<net::Packet* const> pkts) {
        for (const net::Packet* pkt : pkts) {
          // No tracer, no reorder observatory: injection-side user_tag
          // values must survive to tx untouched.
          if (pkt->user_tag != 7) {
            tag_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        net::free_packets(pkts);
      };

  SprayerConfig cfg;
  cfg.num_cores = 2;
  cfg.telemetry = true;
  ThreadedMiddlebox mbox(cfg, nf, std::move(sink));
  EXPECT_FALSE(mbox.flow_export_enabled());
  EXPECT_EQ(mbox.flow_exporter(), nullptr);
  EXPECT_EQ(mbox.flow_recorder(static_cast<CoreId>(0)), nullptr);
  EXPECT_EQ(mbox.tracer(), nullptr);
  mbox.start();

  const net::FiveTuple flow{net::Ipv4Addr{10, 0, 0, 1},
                            net::Ipv4Addr{10, 0, 0, 2}, 1234, 80,
                            net::kProtoTcp};
  net::Packet* syn = tuple_packet(pool, flow, net::TcpFlags::kSyn, 0);
  syn->user_tag = 7;
  mbox.inject(syn);
  mbox.wait_idle();
  for (int i = 0; i < 200; ++i) {
    net::Packet* pkt = tuple_packet(pool, flow, net::TcpFlags::kAck, i);
    if (pkt == nullptr) continue;
    pkt->user_tag = 7;
    mbox.inject(pkt);
  }
  mbox.wait_idle();
  mbox.stop();
  EXPECT_EQ(tag_violations.load(), 0u);

  const auto snap = mbox.telemetry_snapshot();
  EXPECT_EQ(snap.find_histogram("trace.steer_ns"), nullptr);
  EXPECT_EQ(snap.find("flow_export.records"), nullptr);
}

}  // namespace
}  // namespace sprayer::core

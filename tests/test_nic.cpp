// SimNic: RSS dispatch, Flow Director rules (exact and checksum-spray),
// rule-capacity limits, the FDIR pps ceiling, and queue overflow.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/packet_builder.hpp"
#include "nic/nic.hpp"
#include "nic/pktgen.hpp"

namespace sprayer::nic {
namespace {

net::Packet* make_tcp(net::PacketPool& pool, const net::FiveTuple& t,
                      u64 payload_seed = 0) {
  net::TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = net::TcpFlags::kAck;
  spec.payload_len = 8;
  u8 payload[8];
  std::memcpy(payload, &payload_seed, 8);
  spec.payload = payload;
  net::Packet* pkt = net::build_tcp_raw(pool, spec);
  return pkt;
}

TEST(FlowDirector, ExactRulesMatchAndCap) {
  FlowDirector fdir;
  const net::FiveTuple t{net::Ipv4Addr{1, 2, 3, 4}, net::Ipv4Addr{5, 6, 7, 8},
                         10, 20, net::kProtoTcp};
  EXPECT_TRUE(fdir.add_exact_rule(t, 3).ok());
  EXPECT_FALSE(fdir.add_exact_rule(t, 4).ok());  // duplicate

  net::PacketPool pool(4);
  net::Packet* pkt = make_tcp(pool, t);
  ASSERT_NE(pkt, nullptr);
  const auto q = fdir.match(*pkt);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, 3);

  net::Packet* other = make_tcp(pool, t.reversed());
  EXPECT_FALSE(fdir.match(*other).has_value());
  pool.free(pkt);
  pool.free(other);
}

TEST(FlowDirector, RuleTableCapacityIs8K) {
  FlowDirector fdir;
  u32 added = 0;
  for (u32 i = 0; i < FlowDirector::kMaxRules + 10; ++i) {
    net::FiveTuple t{net::Ipv4Addr{i}, net::Ipv4Addr{~i},
                     static_cast<u16>(i & 0xffff),
                     static_cast<u16>((i >> 4) | 1), net::kProtoTcp};
    if (fdir.add_exact_rule(t, 0).ok()) ++added;
  }
  EXPECT_EQ(added, FlowDirector::kMaxRules);
}

TEST(FlowDirector, ChecksumSprayProgramsMinimalRuleSet) {
  FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(8).ok());
  EXPECT_EQ(fdir.rule_count(), 8u);  // 2^3 rules exhaust a 3-bit mask
  ASSERT_TRUE(fdir.program_checksum_spray(6).ok());
  EXPECT_EQ(fdir.rule_count(), 8u);  // ceil(log2(6)) = 3 bits
  ASSERT_TRUE(fdir.program_checksum_spray(16).ok());
  EXPECT_EQ(fdir.rule_count(), 16u);
}

TEST(FlowDirector, ChecksumSprayMatchesEveryTcpPacket) {
  FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(8).ok());
  net::PacketPool pool(4);
  Rng rng(44);
  const net::FiveTuple t{net::Ipv4Addr{9, 9, 9, 9}, net::Ipv4Addr{8, 8, 8, 8},
                         5555, 80, net::kProtoTcp};
  for (int i = 0; i < 500; ++i) {
    net::Packet* pkt = make_tcp(pool, t, rng.next());
    ASSERT_NE(pkt, nullptr);
    const auto q = fdir.match(*pkt);
    ASSERT_TRUE(q.has_value());  // rule space is exhaustive
    EXPECT_EQ(*q, pkt->tcp().checksum() % 8);
    pool.free(pkt);
  }
}

TEST(FlowDirector, ChecksumSprayIgnoresNonTcp) {
  FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(8).ok());
  net::PacketPool pool(4);
  net::UdpDatagramSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2}, 1, 2,
                net::kProtoUdp};
  net::Packet* pkt = net::build_udp_raw(pool, spec);
  ASSERT_NE(pkt, nullptr);
  EXPECT_FALSE(fdir.match(*pkt).has_value());
  pool.free(pkt);
}

TEST(SimNic, RssKeepsFlowOnOneQueueAndIsSymmetric) {
  sim::Simulator sim;
  SimNic nic(sim, NicConfig{.num_queues = 8});
  net::PacketPool pool(64);

  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};
  const u16 q_fwd = nic.rss().queue_for(*make_tcp(pool, t, 1));
  for (u64 i = 0; i < 20; ++i) {
    net::Packet* fwd = make_tcp(pool, t, i * 17);
    net::Packet* rev = make_tcp(pool, t.reversed(), i * 31);
    EXPECT_EQ(nic.rss().queue_for(*fwd), q_fwd);
    EXPECT_EQ(nic.rss().queue_for(*rev), q_fwd);  // symmetric key
    pool.free(fwd);
    pool.free(rev);
  }
}

TEST(SimNic, ReceiveDispatchesAndRxBurstDrains) {
  sim::Simulator sim;
  SimNic nic(sim, NicConfig{.num_queues = 4, .queue_depth = 8});
  net::PacketPool pool(64);

  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};
  const u16 queue = nic.rss().queue_for(*make_tcp(pool, t, 0));
  for (int i = 0; i < 10; ++i) {
    nic.receive(make_tcp(pool, t, 7));  // same payload → same queue
  }
  // 8 accepted (queue depth), 2 missed.
  EXPECT_EQ(nic.counters().rx_packets, 8u);
  EXPECT_EQ(nic.counters().rx_missed, 2u);
  EXPECT_EQ(nic.queue_rx_missed(queue), 2u);

  net::Packet* burst[16];
  EXPECT_EQ(nic.rx_burst(queue, burst, 16), 8u);
  for (u32 i = 0; i < 8; ++i) pool.free(burst[i]);
  EXPECT_EQ(nic.rx_burst(queue, burst, 16), 0u);
}

TEST(SimNic, SprayModeSpreadsSingleFlowAcrossQueues) {
  sim::Simulator sim;
  SimNic nic(sim, NicConfig{.num_queues = 8, .queue_depth = 4096,
                            .fdir_max_pps = 0});
  ASSERT_TRUE(nic.fdir().program_checksum_spray(8).ok());
  net::PacketPool pool(8192);
  Rng rng(5);

  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};
  constexpr u32 kPackets = 4000;
  for (u32 i = 0; i < kPackets; ++i) {
    nic.receive(make_tcp(pool, t, rng.next()));
  }
  EXPECT_EQ(nic.counters().fdir_matched, kPackets);
  u32 nonempty = 0;
  for (u16 q = 0; q < 8; ++q) {
    const u32 depth = nic.queue_depth(q);
    EXPECT_NEAR(depth, kPackets / 8.0, 0.25 * kPackets / 8.0);
    if (depth > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 8u);
}

TEST(SimNic, FdirCeilingDropsAboveTenMpps) {
  sim::Simulator sim;
  NicConfig cfg{.num_queues = 8, .queue_depth = 1u << 15,
                .fdir_max_pps = 10e6, .fdir_pipeline_depth = 64};
  SimNic nic(sim, cfg);
  ASSERT_TRUE(nic.fdir().program_checksum_spray(8).ok());
  net::PacketPool pool(1u << 16);
  Rng rng(6);

  // Offer 20 Mpps for 2 simulated milliseconds: 40 000 packets.
  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};
  class Feeder final : public sim::IEventTarget {
   public:
    Feeder(sim::Simulator& s, SimNic& n, net::PacketPool& p, Rng& r,
           const net::FiveTuple& tup)
        : sim_(s), nic_(n), pool_(p), rng_(r), t_(tup) {}
    void handle_event(u64 left) override {
      nic_.receive(make_tcp(pool_, t_, rng_.next()));
      if (left > 1) sim_.schedule_in(50 * kNanosecond, this, left - 1);
    }
    sim::Simulator& sim_;
    SimNic& nic_;
    net::PacketPool& pool_;
    Rng& rng_;
    net::FiveTuple t_;
  } feeder(sim, nic, pool, rng, t);
  sim.schedule_in(0, &feeder, 40000);
  sim.run();

  const double accepted_rate =
      static_cast<double>(nic.counters().rx_packets) / 2e-3;
  EXPECT_NEAR(accepted_rate, 10e6, 0.05 * 10e6);
  EXPECT_GT(nic.counters().fdir_overload_drops, 15000u);
}

TEST(PacketGen, GeneratesAtConfiguredRateWithUniformChecksums) {
  sim::Simulator sim;
  net::PacketPool pool(8192, 256);

  class ChecksumSink final : public sim::IPacketSink {
   public:
    void receive(net::Packet* pkt) override {
      pkt->parse();
      if (pkt->is_tcp()) low_bits[pkt->tcp().checksum() % 8]++;
      ++total;
      pkt->pool()->free(pkt);
    }
    std::array<u64, 8> low_bits{};
    u64 total = 0;
  } sink;

  sim::LinkConfig lcfg;
  sim::Link link(sim, lcfg, sink, "gen");
  PktGenConfig cfg;
  cfg.rate_pps = 1e6;
  cfg.num_flows = 1;
  cfg.stop_at = from_seconds(0.02);
  PacketGen gen(sim, pool, link, cfg);
  gen.start();
  sim.run_until(from_seconds(0.021));

  EXPECT_NEAR(static_cast<double>(gen.sent()), 20000.0, 100.0);
  // Checksum low bits should be close to uniform over 8 bins.
  for (const u64 c : sink.low_bits) {
    EXPECT_NEAR(static_cast<double>(c), sink.total / 8.0,
                0.15 * sink.total / 8.0);
  }
}

}  // namespace
}  // namespace sprayer::nic

namespace sprayer::nic {
namespace {

TEST(SimNic, FlowletSprayingSticksWithinGapRespraysAfter) {
  sim::Simulator sim;
  NicConfig cfg{.num_queues = 8, .queue_depth = 4096, .fdir_max_pps = 0};
  cfg.flowlet_gap = 100 * kMicrosecond;
  SimNic nic(sim, cfg);
  ASSERT_TRUE(nic.fdir().program_checksum_spray(8).ok());
  net::PacketPool pool(8192);
  Rng rng(9);
  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 1111, 80,
                         net::kProtoTcp};

  // A driver that feeds bursts separated by configurable gaps and records
  // which queue grew.
  auto burst_queue = [&](u32 pkts) -> u16 {
    std::vector<u32> before(8);
    for (u16 q = 0; q < 8; ++q) before[q] = nic.queue_depth(q);
    for (u32 i = 0; i < pkts; ++i) {
      net::TcpSegmentSpec spec;
      spec.tuple = t;
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 8;
      u8 payload[8];
      const u64 r = rng.next();
      std::memcpy(payload, &r, 8);
      spec.payload = payload;
      nic.receive(net::build_tcp_raw(pool, spec));
    }
    u16 grew = 0xffff;
    u32 grew_count = 0;
    for (u16 q = 0; q < 8; ++q) {
      if (nic.queue_depth(q) > before[q]) {
        grew = q;
        ++grew_count;
      }
    }
    EXPECT_EQ(grew_count, 1u);  // the whole burst stayed on one queue
    return grew;
  };

  class Advance final : public sim::IEventTarget {
   public:
    void handle_event(u64) override {}
  } nop;

  // Bursts within the gap stick to one queue each; across many re-sprayed
  // flowlets more than one queue must get used.
  std::set<u16> queues_seen;
  for (int flowlet = 0; flowlet < 16; ++flowlet) {
    queues_seen.insert(burst_queue(32));
    // Advance past the flowlet gap so the next burst re-sprays.
    sim.schedule_in(200 * kMicrosecond, &nop);
    sim.run();
    // Drain queues so depth deltas stay readable.
    net::Packet* buf[64];
    for (u16 q = 0; q < 8; ++q) {
      u32 n;
      while ((n = nic.rx_burst(q, buf, 64)) > 0) {
        for (u32 i = 0; i < n; ++i) pool.free(buf[i]);
      }
    }
  }
  EXPECT_GT(queues_seen.size(), 2u);  // re-spraying actually happens
}

}  // namespace
}  // namespace sprayer::nic

// Host demultiplexing, connection edge cases (RST, duplicate SYN), worker
// group lifecycle, Flow Director rule precedence, link accounting.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "net/packet_builder.hpp"
#include "nic/flow_director.hpp"
#include "runtime/worker_group.hpp"
#include "tcp/host.hpp"

namespace sprayer {
namespace {

struct HostPair {
  sim::Simulator sim;
  net::PacketPool pool{4096, 1600};
  tcp::Host client{sim, pool, "client"};
  tcp::Host server{sim, pool, "server"};
  std::unique_ptr<sim::Link> c2s;
  std::unique_ptr<sim::Link> s2c;

  HostPair() {
    sim::LinkConfig cfg;
    cfg.propagation_delay = 5 * kMicrosecond;
    c2s = std::make_unique<sim::Link>(sim, cfg, server, "c2s");
    s2c = std::make_unique<sim::Link>(sim, cfg, client, "s2c");
    client.attach_out(*c2s);
    server.attach_out(*s2c);
  }

  static net::FiveTuple tuple(u16 sport = 40000) {
    return {net::Ipv4Addr{10, 0, 0, 1}, net::Ipv4Addr{10, 0, 0, 2}, sport,
            5201, net::kProtoTcp};
  }
};

TEST(Host, NonListeningServerIgnoresSyn) {
  HostPair hp;  // server never calls listen_all
  tcp::TcpConfig cfg;
  tcp::TcpConnection& conn = hp.client.open(HostPair::tuple(), cfg, 0, 1);
  hp.sim.run_until(from_seconds(0.005));
  EXPECT_EQ(conn.state(), tcp::TcpState::kSynSent);  // no SYN-ACK ever
  EXPECT_GT(hp.server.unmatched_packets(), 0u);
  EXPECT_EQ(hp.server.connections().size(), 0u);
}

TEST(Host, DuplicateSynCreatesOneConnection) {
  HostPair hp;
  tcp::TcpConfig cfg;
  // Long initial RTO so only the handshake's own machinery retransmits —
  // then force a duplicate SYN by hand.
  hp.server.listen_all(cfg);
  (void)hp.client.open(HostPair::tuple(), cfg, 0, 1);
  hp.sim.run_until(from_micros(1));  // SYN on the wire

  net::TcpSegmentSpec spec;  // a duplicated SYN from the same client tuple
  spec.tuple = HostPair::tuple();
  spec.flags = net::TcpFlags::kSyn;
  spec.seq = 12345;
  hp.c2s->send(net::build_tcp_raw(hp.pool, spec));

  hp.sim.run_until(from_seconds(0.01));
  EXPECT_EQ(hp.server.connections().size(), 1u);  // demuxed to the same conn
}

TEST(Host, NonTcpPacketsAreCountedUnmatched) {
  HostPair hp;
  net::UdpDatagramSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{10, 0, 0, 2}, 9, 9,
                net::kProtoUdp};
  hp.c2s->send(net::build_udp_raw(hp.pool, spec));
  hp.sim.run_until(from_seconds(0.001));
  EXPECT_EQ(hp.server.unmatched_packets(), 1u);
  EXPECT_EQ(hp.pool.available(), hp.pool.size());  // freed, not leaked
}

TEST(Host, RstTerminatesEstablishedConnection) {
  HostPair hp;
  tcp::TcpConfig cfg;
  hp.server.listen_all(cfg);
  tcp::TcpConnection& conn = hp.client.open(HostPair::tuple(), cfg, 0, 2);
  hp.sim.run_until(from_seconds(0.005));
  ASSERT_EQ(conn.state(), tcp::TcpState::kEstablished);

  // Forge a RST from the server side.
  net::TcpSegmentSpec spec;
  spec.tuple = HostPair::tuple().reversed();
  spec.flags = net::TcpFlags::kRst | net::TcpFlags::kAck;
  hp.s2c->send(net::build_tcp_raw(hp.pool, spec));
  hp.sim.run_until(from_seconds(0.01));
  EXPECT_EQ(conn.state(), tcp::TcpState::kDone);
}

TEST(WorkerGroup, StartStopAndWorkDistribution) {
  runtime::WorkerGroup group;
  EXPECT_FALSE(group.running());
  std::atomic<u64> iterations{0};
  std::array<std::atomic<u64>, 3> per_core{};
  group.start(3, [&](CoreId core) {
    iterations.fetch_add(1, std::memory_order_relaxed);
    per_core[core].fetch_add(1, std::memory_order_relaxed);
    return false;  // "no work": workers must still keep polling
  });
  EXPECT_TRUE(group.running());
  EXPECT_EQ(group.size(), 3u);
  while (iterations.load(std::memory_order_relaxed) < 300) {
    std::this_thread::yield();
  }
  group.stop();
  EXPECT_FALSE(group.running());
  for (const auto& c : per_core) {
    EXPECT_GT(c.load(), 0u);  // every worker ran
  }
  group.stop();  // idempotent
}

TEST(WorkerGroup, RestartAfterStop) {
  runtime::WorkerGroup group;
  std::atomic<u64> count{0};
  group.start(1, [&](CoreId) {
    count.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  while (count.load() < 10) std::this_thread::yield();
  group.stop();
  const u64 first = count.load();
  group.start(2, [&](CoreId) {
    count.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  while (count.load() < first + 10) std::this_thread::yield();
  group.stop();
}

TEST(FlowDirector, ExactRulesTakePrecedenceOverChecksumSpray) {
  nic::FlowDirector fdir;
  ASSERT_TRUE(fdir.program_checksum_spray(8).ok());
  const net::FiveTuple pinned{net::Ipv4Addr{10, 0, 0, 9},
                              net::Ipv4Addr{10, 0, 0, 10}, 7777, 80,
                              net::kProtoTcp};
  ASSERT_TRUE(fdir.add_exact_rule(pinned, 5).ok());

  net::PacketPool pool(8);
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    net::TcpSegmentSpec spec;
    spec.tuple = pinned;
    spec.payload_len = 8;
    u8 payload[8];
    const u64 r = rng.next();
    std::memcpy(payload, &r, 8);
    spec.payload = payload;
    net::Packet* pkt = net::build_tcp_raw(pool, spec);
    const auto q = fdir.match(*pkt);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, 5);  // pinned despite the random checksum
    pool.free(pkt);
  }
}

TEST(Link, CountersTrackTraffic) {
  sim::Simulator sim;
  net::PacketPool pool(16);
  class Sink final : public sim::IPacketSink {
   public:
    void receive(net::Packet* pkt) override { pkt->pool()->free(pkt); }
  } sink;
  sim::Link link(sim, sim::LinkConfig{}, sink, "counted");

  net::TcpSegmentSpec spec;
  spec.tuple = HostPair::tuple();
  spec.payload_len = 100;
  for (int i = 0; i < 5; ++i) {
    link.send(net::build_tcp_raw(pool, spec));
  }
  sim.run();
  EXPECT_EQ(link.counters().tx_packets, 5u);
  EXPECT_EQ(link.counters().tx_bytes, 5u * (54 + 100));
  EXPECT_EQ(link.counters().dropped, 0u);
  EXPECT_EQ(link.name(), "counted");
}

}  // namespace
}  // namespace sprayer

// Randomized adversarial-wire fuzz: for many seeds, a wire that randomly
// drops, delays, and duplicates segments in both directions must never
// wedge a transfer — every finite transfer completes with exactly the
// right bytes delivered, and all packets return to the pool.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/rng.hpp"
#include "tcp/connection.hpp"

namespace sprayer::tcp {
namespace {

class ChaosWire final : public ISegmentOut, public sim::IEventTarget {
 public:
  ChaosWire(sim::Simulator& sim, net::PacketPool& pool, u64 seed)
      : sim_(sim), pool_(pool), rng_(seed) {}

  void set_peer(TcpConnection* peer) { peer_ = peer; }
  void set_chaos(bool on) { chaos_ = on; }
  /// One-shot hook; returning true consumes the packet (handshake boot).
  std::function<bool(net::Packet*)> tap;

  void output(net::Packet* pkt) override {
    pkt->parse();
    if (tap && tap(pkt)) {
      pkt->pool()->free(pkt);
      return;
    }
    if (chaos_) {
      if (rng_.chance(kDropP)) {
        ++drops_;
        pkt->pool()->free(pkt);
        return;
      }
      if (rng_.chance(kDupP)) {
        net::Packet* copy = pool_.alloc_raw();
        if (copy != nullptr && pkt->len() <= copy->capacity()) {
          std::memcpy(copy->data(), pkt->data(), pkt->len());
          copy->set_len(pkt->len());
          copy->parse();
          ++dups_;
          enqueue(copy,
                  kBaseDelay + rng_.uniform(40) * kMicrosecond);
        } else if (copy != nullptr) {
          pool_.free(copy);
        }
      }
      Time extra = 0;
      if (rng_.chance(kDelayP)) {
        ++delays_;
        extra = (10 + rng_.uniform(80)) * kMicrosecond;
      }
      enqueue(pkt, kBaseDelay + extra);
      return;
    }
    enqueue(pkt, kBaseDelay);
  }

  void handle_event(u64 /*tag*/) override {
    const auto it = pending_.begin();
    net::Packet* pkt = it->second;
    pending_.erase(it);
    peer_->on_segment(pkt);
  }

  [[nodiscard]] u64 drops() const noexcept { return drops_; }
  [[nodiscard]] u64 delays() const noexcept { return delays_; }
  [[nodiscard]] u64 dups() const noexcept { return dups_; }

 private:
  static constexpr double kDropP = 0.02;
  static constexpr double kDelayP = 0.10;
  static constexpr double kDupP = 0.02;
  static constexpr Time kBaseDelay = 50 * kMicrosecond;

  void enqueue(net::Packet* pkt, Time delay) {
    const Time start = std::max(sim_.now(), next_free_);
    next_free_ = start + 1 * kMicrosecond;  // serialization
    const Time due = start + delay;
    pending_.emplace(due, pkt);
    sim_.schedule_at(due, this, 0);
  }

  sim::Simulator& sim_;
  net::PacketPool& pool_;
  Rng rng_;
  bool chaos_ = false;
  Time next_free_ = 0;
  TcpConnection* peer_ = nullptr;
  std::multimap<Time, net::Packet*> pending_;
  u64 drops_ = 0;
  u64 delays_ = 0;
  u64 dups_ = 0;
};

class TcpChaos : public ::testing::TestWithParam<u64> {};

TEST_P(TcpChaos, TransferSurvivesDropsDelaysAndDuplicates) {
  const u64 seed = GetParam();
  sim::Simulator sim;
  net::PacketPool pool(8192, 1600);
  ChaosWire c2s(sim, pool, seed * 2 + 1);
  ChaosWire s2c(sim, pool, seed * 2 + 2);

  const net::FiveTuple t{net::Ipv4Addr{10, 0, 0, 1},
                         net::Ipv4Addr{10, 0, 0, 2}, 40000, 5201,
                         net::kProtoTcp};
  TcpConfig cfg;
  cfg.bytes_to_send = 1'000'000;
  TcpConnection client(sim, pool, c2s, t, cfg, /*active=*/true, seed);
  TcpConnection server(sim, pool, s2c, t.reversed(), cfg, /*active=*/false,
                       seed + 1000);
  c2s.set_peer(&server);
  s2c.set_peer(&client);

  // Bootstrap the handshake (no Host demux here): the tap consumes the
  // client's SYN and hands it to accept_syn().
  bool syn_done = false;
  c2s.tap = [&](net::Packet* pkt) {
    if (!syn_done && pkt->is_tcp() &&
        pkt->tcp().has(net::TcpFlags::kSyn)) {
      syn_done = true;
      const auto ts = parse_ts(pkt->tcp());
      server.accept_syn(pkt->tcp().seq(), ts ? ts->tsval : 0);
      return true;
    }
    return false;
  };
  client.open();
  sim.run_until(from_micros(120));
  ASSERT_EQ(client.state(), TcpState::kEstablished) << "seed " << seed;
  c2s.tap = nullptr;

  c2s.set_chaos(true);
  s2c.set_chaos(true);
  sim.run_until(from_seconds(20.0));

  EXPECT_EQ(client.state(), TcpState::kDone) << "seed " << seed;
  EXPECT_EQ(server.stats().bytes_delivered, 1'000'000u) << "seed " << seed;
  EXPECT_GT(c2s.drops() + s2c.drops(), 0u);     // chaos actually happened
  EXPECT_GT(c2s.delays() + s2c.delays(), 0u);
  EXPECT_GT(c2s.dups() + s2c.dups(), 0u);
  EXPECT_EQ(pool.available(), pool.size()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpChaos,
                         ::testing::Range<u64>(0, 12));

}  // namespace
}  // namespace sprayer::tcp

// Simulator kernel and links: event ordering, determinism, serialization
// timing, FIFO drops, propagation delay.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace sprayer::sim {
namespace {

class Recorder final : public IEventTarget {
 public:
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void handle_event(u64 tag) override {
    events.emplace_back(sim_.now(), tag);
  }
  std::vector<std::pair<Time, u64>> events;

 private:
  Simulator& sim_;
};

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  Recorder rec(sim);
  sim.schedule_at(300, &rec, 3);
  sim.schedule_at(100, &rec, 1);
  sim.schedule_at(200, &rec, 2);
  sim.run();
  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0], std::make_pair(Time{100}, u64{1}));
  EXPECT_EQ(rec.events[1], std::make_pair(Time{200}, u64{2}));
  EXPECT_EQ(rec.events[2], std::make_pair(Time{300}, u64{3}));
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  Recorder rec(sim);
  for (u64 i = 0; i < 10; ++i) sim.schedule_at(500, &rec, i);
  sim.run();
  ASSERT_EQ(rec.events.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(rec.events[i].second, i);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  Recorder rec(sim);
  sim.schedule_at(100, &rec, 1);
  sim.schedule_at(1000, &rec, 2);
  sim.run_until(500);
  EXPECT_EQ(rec.events.size(), 1u);
  EXPECT_EQ(sim.now(), 500u);  // clock advanced to the horizon
  sim.run_until(2000);
  EXPECT_EQ(rec.events.size(), 2u);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  Recorder rec(sim);
  sim.schedule_at(100, &rec, 1);
  sim.run();
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_THROW(sim.schedule_at(50, &rec, 2), std::logic_error);
}

class CountingSink final : public IPacketSink {
 public:
  void receive(net::Packet* pkt) override {
    ++packets;
    last_rx_time = rx_times.emplace_back(pkt->ts_gen);
    last_port = pkt->ingress_port;
    pkt->pool()->free(pkt);
  }
  u64 packets = 0;
  u8 last_port = 255;
  Time last_rx_time = 0;
  std::vector<Time> rx_times;
};

TEST(Link, SerializationAndPropagationTiming) {
  Simulator sim;
  net::PacketPool pool(16);
  CountingSink sink;
  LinkConfig cfg;
  cfg.rate_bps = 10e9;
  cfg.propagation_delay = 500 * kNanosecond;
  cfg.egress_port_label = 1;
  Link link(sim, cfg, sink, "test");

  net::TcpSegmentSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2}, 1, 2,
                net::kProtoTcp};
  net::Packet* pkt = net::build_tcp_raw(pool, spec);
  ASSERT_NE(pkt, nullptr);
  ASSERT_EQ(pkt->len(), 60u);
  link.send(pkt);
  sim.run();

  // 60 B + 24 B overhead at 10 Gbps = 67.2 ns serialization + 500 ns prop.
  EXPECT_EQ(sim.now(), serialization_time(84, 10e9) + 500 * kNanosecond);
  EXPECT_EQ(sink.packets, 1u);
  EXPECT_EQ(sink.last_port, 1);
}

TEST(Link, BackToBackPacketsAreSpacedBySerialization) {
  Simulator sim;
  net::PacketPool pool(16);

  class TimeSink final : public IPacketSink {
   public:
    explicit TimeSink(Simulator& sim) : sim_(sim) {}
    void receive(net::Packet* pkt) override {
      arrivals.push_back(sim_.now());
      pkt->pool()->free(pkt);
    }
    std::vector<Time> arrivals;

   private:
    Simulator& sim_;
  } sink(sim);

  LinkConfig cfg;
  cfg.rate_bps = 10e9;
  Link link(sim, cfg, sink, "test");

  net::TcpSegmentSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2}, 1, 2,
                net::kProtoTcp};
  for (int i = 0; i < 3; ++i) {
    link.send(net::build_tcp_raw(pool, spec));
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  const Time gap = serialization_time(84, 10e9);
  EXPECT_EQ(sink.arrivals[1] - sink.arrivals[0], gap);
  EXPECT_EQ(sink.arrivals[2] - sink.arrivals[1], gap);
}

TEST(Link, TailDropsWhenFifoFull) {
  Simulator sim;
  net::PacketPool pool(32);
  CountingSink sink;
  LinkConfig cfg;
  cfg.queue_packets = 4;
  Link link(sim, cfg, sink, "test");

  net::TcpSegmentSpec spec;
  spec.tuple = {net::Ipv4Addr{1, 1, 1, 1}, net::Ipv4Addr{2, 2, 2, 2}, 1, 2,
                net::kProtoTcp};
  // 1 in flight + 4 queued fit; the rest must drop.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.send(net::build_tcp_raw(pool, spec))) ++accepted;
  }
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(link.counters().dropped, 5u);
  sim.run();
  EXPECT_EQ(sink.packets, 5u);
  EXPECT_EQ(pool.available(), 32u);  // dropped packets were freed
}

}  // namespace
}  // namespace sprayer::sim

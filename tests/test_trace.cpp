// Trace workload: flow-size model calibration, generator invariants,
// figure-1/2 analyses, and replay through the simulator.
#include <gtest/gtest.h>

#include "core/middlebox.hpp"
#include "nf/monitor.hpp"
#include "trace/analysis.hpp"
#include "trace/replay.hpp"
#include "trace/workload.hpp"

namespace sprayer::trace {
namespace {

TEST(FlowModel, ElephantsCarryMostBytes) {
  FlowSizeModel model;
  Rng rng(1);
  double total = 0, large = 0;
  u64 large_flows = 0;
  constexpr int kFlows = 200000;
  for (int i = 0; i < kFlows; ++i) {
    const auto s = model.sample(rng);
    total += static_cast<double>(s.bytes);
    if (s.bytes > 10'000'000) {
      large += static_cast<double>(s.bytes);
      ++large_flows;
    }
  }
  // The distributional facts of Figure 1.
  EXPECT_GT(large / total, 0.75);                       // byte share
  EXPECT_LT(static_cast<double>(large_flows) / kFlows, 0.05);  // flow share
}

TEST(FlowModel, MeanMatchesAnalytic) {
  FlowSizeModel model;
  Rng rng(2);
  double sum = 0;
  constexpr int kFlows = 400000;
  for (int i = 0; i < kFlows; ++i) {
    sum += static_cast<double>(model.sample(rng).bytes);
  }
  // The tail truncation biases the empirical mean slightly below the
  // analytic (untruncated) value.
  EXPECT_NEAR(sum / kFlows, model.mean_bytes(), 0.2 * model.mean_bytes());
}

TEST(FlowModel, RespectsBounds) {
  FlowModelConfig cfg;
  cfg.max_flow_bytes = 1e6;
  FlowSizeModel model(cfg);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const auto s = model.sample(rng);
    EXPECT_GE(s.bytes, 64u);
    EXPECT_LE(s.bytes, 1'000'000u);
  }
}

TEST(Workload, PacketsAreTimeOrderedAndSizedRight) {
  WorkloadConfig cfg;
  cfg.duration = from_seconds(0.5);
  cfg.seed = 4;
  WorkloadGenerator gen(cfg);
  PacketRecord pkt;
  Time prev = 0;
  u64 packets = 0;
  std::vector<u64> flow_bytes;
  std::vector<bool> saw_first, saw_last;
  while (gen.next_packet(pkt)) {
    EXPECT_GE(pkt.time, prev);
    prev = pkt.time;
    EXPECT_GT(pkt.bytes, 0u);
    EXPECT_LE(pkt.bytes, cfg.mtu_payload);
    if (pkt.flow_id >= flow_bytes.size()) {
      flow_bytes.resize(pkt.flow_id + 1, 0);
      saw_first.resize(pkt.flow_id + 1, false);
      saw_last.resize(pkt.flow_id + 1, false);
    }
    flow_bytes[pkt.flow_id] += pkt.bytes;
    if (pkt.first) saw_first[pkt.flow_id] = true;
    if (pkt.last) saw_last[pkt.flow_id] = true;
    ++packets;
  }
  ASSERT_GT(packets, 1000u);
  ASSERT_GT(gen.flows().size(), 10u);
  // Every flow's packet bytes sum exactly to its declared size, with
  // exactly one first and one last packet.
  for (const auto& flow : gen.flows()) {
    if (!saw_last[flow.id]) continue;  // truncated at trace end
    EXPECT_EQ(flow_bytes[flow.id], flow.bytes) << "flow " << flow.id;
    EXPECT_TRUE(saw_first[flow.id]);
  }
}

TEST(Workload, HitsTargetUtilization) {
  WorkloadConfig cfg;
  cfg.duration = from_seconds(5.0);
  cfg.utilization = 0.8;
  cfg.link_rate_bps = 1e9;
  cfg.seed = 5;
  WorkloadGenerator gen(cfg);
  PacketRecord pkt;
  double bytes = 0;
  Time last = 0;
  while (gen.next_packet(pkt)) {
    bytes += pkt.bytes;
    last = pkt.time;
  }
  const double offered_bps = bytes * 8.0 / to_seconds(last);
  // The Pareto tail (alpha = 1.5) has infinite variance: over a few
  // thousand flows the sample mean sits far below the analytic mean most
  // of the time (the byte volume is dominated by rare giants), so only a
  // loose band is meaningful at this trace length.
  EXPECT_GT(offered_bps, 0.1e9);
  EXPECT_LT(offered_bps, 1.0e9);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.duration = from_seconds(0.2);
  cfg.seed = 6;
  WorkloadGenerator a(cfg), b(cfg);
  PacketRecord pa, pb;
  for (int i = 0; i < 5000; ++i) {
    const bool more_a = a.next_packet(pa);
    const bool more_b = b.next_packet(pb);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) break;
    EXPECT_EQ(pa.time, pb.time);
    EXPECT_EQ(pa.flow_id, pb.flow_id);
    EXPECT_EQ(pa.bytes, pb.bytes);
  }
}

TEST(Analysis, FlowSizeCdfsAreConsistent) {
  std::vector<FlowRecord> flows(3);
  flows[0].bytes = 100;
  flows[1].bytes = 1000;
  flows[2].bytes = 100;
  const auto a = analyze_flow_sizes(flows);
  EXPECT_EQ(a.total_flows, 3u);
  EXPECT_DOUBLE_EQ(a.total_bytes, 1200.0);
  EXPECT_DOUBLE_EQ(a.flow_sizes.at(100), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.bytes_by_size.at(100), 200.0 / 1200.0);
  EXPECT_DOUBLE_EQ(a.byte_share_above(100), 1000.0 / 1200.0);
}

TEST(Analysis, ConcurrencyMatchesPaperRegime) {
  WorkloadConfig cfg;
  cfg.duration = from_seconds(5.0);
  cfg.seed = 7;
  WorkloadGenerator gen(cfg);
  const auto c = analyze_concurrency(gen);
  ASSERT_GT(c.windows, 10000u);
  // Figure 2's facts: low concurrency at 150 us, even lower for elephants.
  EXPECT_LE(c.all_flows.median(), 8.0);
  EXPECT_LE(c.large_flows.median(), 4.0);
  EXPECT_LE(c.large_flows.median(), c.all_flows.median());
  EXPECT_LE(c.all_flows.quantile(0.99), 20.0);
}

TEST(Replay, DrivesMiddleboxWithLifecycledFlows) {
  sim::Simulator sim;
  net::PacketPool pool(1u << 14, 1600);
  nf::MonitorNf monitor(/*close_on_single_fin=*/true);
  core::SprayerConfig cfg;
  core::SimMiddlebox mbox(sim, cfg, monitor);

  class NullSink final : public sim::IPacketSink {
   public:
    void receive(net::Packet* pkt) override {
      ++packets;
      pkt->pool()->free(pkt);
    }
    u64 packets = 0;
  } sink;

  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  in_cfg.rate_bps = 1e9;
  sim::Link in_link(sim, in_cfg, mbox.ingress(), "in");
  sim::LinkConfig out_cfg;
  sim::Link out_link(sim, out_cfg, sink, "out");
  sim::Link back_link(sim, out_cfg, sink, "back");
  mbox.attach_tx_link(1, out_link);
  mbox.attach_tx_link(0, back_link);

  trace::WorkloadConfig wl;
  wl.duration = from_seconds(0.2);
  wl.seed = 8;
  TraceReplayer replayer(sim, pool, in_link, wl);
  replayer.start();
  sim.run_until(from_seconds(0.25));

  EXPECT_GT(replayer.sent(), 1000u);
  EXPECT_EQ(sink.packets, replayer.sent());  // nothing lost at this load
  const auto totals = monitor.aggregate();
  EXPECT_EQ(totals.packets, replayer.sent());
  EXPECT_GT(totals.connections_opened, 10u);
  EXPECT_GT(totals.connections_closed, 0u);
  EXPECT_EQ(pool.available(), pool.size());
}

}  // namespace
}  // namespace sprayer::trace

// NAT in depth: port pool semantics, designated-core-preserving port
// selection, header rewriting with valid checksums in both directions,
// session lifecycle (SYN/FIN/RST), pool exhaustion, and end-to-end TCP.
#include <gtest/gtest.h>

#include "core/middlebox.hpp"
#include "net/checksum.hpp"
#include "nf/nat.hpp"
#include "nf/port_pool.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

namespace sprayer::nf {
namespace {

TEST(PortPool, ClaimReleaseExhaust) {
  PortPool pool(100, 103);  // 4 ports
  EXPECT_EQ(pool.size(), 4u);
  std::vector<u16> claimed;
  for (int i = 0; i < 4; ++i) {
    const u16 p = pool.claim();
    ASSERT_NE(p, 0);
    EXPECT_GE(p, 100);
    EXPECT_LE(p, 103);
    claimed.push_back(p);
  }
  EXPECT_EQ(pool.claim(), 0);  // exhausted
  EXPECT_EQ(pool.available(), 0u);
  pool.release(claimed[2]);
  EXPECT_EQ(pool.claim(), claimed[2]);  // rotating cursor finds it
}

TEST(PortPool, ClaimMatchingHonorsPredicate) {
  PortPool pool(1000, 1999);
  const u16 even = pool.claim_matching([](u16 p) { return p % 2 == 0; });
  ASSERT_NE(even, 0);
  EXPECT_EQ(even % 2, 0);
  const u16 none =
      pool.claim_matching([](u16) { return false; });
  EXPECT_EQ(none, 0);
  EXPECT_EQ(pool.claimed(), 1u);
}

TEST(PortPool, ReleaseValidation) {
  PortPool pool(10, 20);
  EXPECT_THROW(pool.release(9), std::logic_error);    // out of range
  EXPECT_THROW(pool.release(15), std::logic_error);   // not claimed
}

// A tiny harness running the NAT inside the simulated middlebox with
// hand-crafted packets.
struct NatBench {
  sim::Simulator sim;
  net::PacketPool pool{4096, 256};
  NatNf nat;
  core::SimMiddlebox mbox;
  std::vector<net::Packet*> out;  // captured at the sinks

  class Capture final : public sim::IPacketSink {
   public:
    explicit Capture(std::vector<net::Packet*>& sink) : sink_(sink) {}
    void receive(net::Packet* pkt) override { sink_.push_back(pkt); }

   private:
    std::vector<net::Packet*>& sink_;
  } capture{out};

  sim::Link in_link;
  sim::Link out_link;
  sim::Link back_link;

  NatBench()
      : nat(NatConfig{}),
        mbox(sim, core::SprayerConfig{}, nat),
        in_link(sim, make_in_cfg(0), mbox.ingress(), "in0"),
        out_link(sim, sim::LinkConfig{}, capture, "out1"),
        back_link(sim, sim::LinkConfig{}, capture, "out0") {
    mbox.attach_tx_link(1, out_link);
    mbox.attach_tx_link(0, back_link);
  }

  ~NatBench() {
    for (net::Packet* pkt : out) pool.free(pkt);
  }

  static sim::LinkConfig make_in_cfg(u8 port) {
    sim::LinkConfig cfg;
    cfg.egress_port_label = port;
    return cfg;
  }

  /// Send one TCP packet from the inside (port 0) and run to quiescence.
  void send_inside(const net::FiveTuple& t, u8 flags, u64 payload_seed = 1) {
    net::TcpSegmentSpec spec;
    spec.tuple = t;
    spec.flags = flags;
    spec.payload_len = 8;
    u8 payload[8];
    std::memcpy(payload, &payload_seed, 8);
    spec.payload = payload;
    in_link.send(net::build_tcp_raw(pool, spec));
    // Bounded: periodic housekeeping events keep the queue non-empty.
    sim.run_until(sim.now() + kMillisecond);
  }
};

const net::FiveTuple kFlow{net::Ipv4Addr{10, 0, 0, 5},
                           net::Ipv4Addr{93, 184, 216, 34}, 43210, 443,
                           net::kProtoTcp};

TEST(Nat, SynOpensSessionAndRewritesSource) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);

  ASSERT_EQ(b.out.size(), 1u);
  net::Packet* pkt = b.out[0];
  ASSERT_TRUE(pkt->parse());
  net::Ipv4View ip = pkt->ipv4();
  EXPECT_EQ(ip.src(), (net::Ipv4Addr{192, 0, 2, 1}));  // default external
  EXPECT_EQ(ip.dst(), kFlow.dst_ip);                   // untouched
  EXPECT_NE(pkt->tcp().src_port(), kFlow.src_port);    // translated

  // Checksums must remain valid after the incremental updates.
  EXPECT_EQ(net::internet_checksum(ip.bytes(), ip.header_len()), 0);
  EXPECT_TRUE(net::l4_checksum_valid(ip.src(), ip.dst(), net::kProtoTcp,
                                     pkt->l4_bytes(),
                                     ip.total_length() - ip.header_len()));
  EXPECT_EQ(b.nat.counters().sessions_opened, 1u);
  EXPECT_EQ(b.nat.port_pool().claimed(), 1u);
}

TEST(Nat, TranslatedReturnFlowMapsToSameDesignatedCore) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);
  ASSERT_EQ(b.out.size(), 1u);
  ASSERT_TRUE(b.out[0]->parse());
  const net::FiveTuple translated = b.out[0]->five_tuple();

  // The invariant that makes the Figure 5 NAT work under spraying: the
  // return flow's designated core is the core that owns the state.
  EXPECT_EQ(b.mbox.picker().pick(translated.reversed()),
            b.mbox.picker().pick(kFlow));
}

TEST(Nat, ReturnTrafficRewrittenBackToClient) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);
  ASSERT_EQ(b.out.size(), 1u);
  ASSERT_TRUE(b.out[0]->parse());
  const net::FiveTuple translated = b.out[0]->five_tuple();

  // Server's SYN-ACK arrives on the outside port (1).
  net::TcpSegmentSpec spec;
  spec.tuple = translated.reversed();
  spec.flags = net::TcpFlags::kSyn | net::TcpFlags::kAck;
  net::Packet* synack = net::build_tcp_raw(b.pool, spec);
  sim::LinkConfig in1 = NatBench::make_in_cfg(1);
  sim::Link outside_link(b.sim, in1, b.mbox.ingress(), "in1");
  outside_link.send(synack);
  b.sim.run_until(b.sim.now() + kMillisecond);

  ASSERT_EQ(b.out.size(), 2u);
  net::Packet* back = b.out[1];
  ASSERT_TRUE(back->parse());
  // Restored to the original client address/port.
  EXPECT_EQ(back->ipv4().dst(), kFlow.src_ip);
  EXPECT_EQ(back->tcp().dst_port(), kFlow.src_port);
  EXPECT_EQ(back->ipv4().src(), kFlow.dst_ip);
  net::Ipv4View ip = back->ipv4();
  EXPECT_TRUE(net::l4_checksum_valid(ip.src(), ip.dst(), net::kProtoTcp,
                                     back->l4_bytes(),
                                     ip.total_length() - ip.header_len()));
}

TEST(Nat, RegularPacketsUseExistingSession) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);
  b.send_inside(kFlow, net::TcpFlags::kAck, 2);
  b.send_inside(kFlow, net::TcpFlags::kAck | net::TcpFlags::kPsh, 3);
  EXPECT_EQ(b.out.size(), 3u);
  EXPECT_EQ(b.nat.counters().sessions_opened, 1u);  // no duplicate sessions
  for (net::Packet* pkt : b.out) {
    ASSERT_TRUE(pkt->parse());
    EXPECT_EQ(pkt->ipv4().src(), (net::Ipv4Addr{192, 0, 2, 1}));
  }
}

TEST(Nat, UnsolicitedPacketsDropped) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kAck);  // no session: dropped
  EXPECT_EQ(b.out.size(), 0u);
  EXPECT_EQ(b.nat.counters().unmatched_dropped, 1u);

  // Inbound SYN (port 1) must not open a session either.
  net::TcpSegmentSpec spec;
  spec.tuple = kFlow;
  spec.flags = net::TcpFlags::kSyn;
  sim::LinkConfig in1 = NatBench::make_in_cfg(1);
  sim::Link outside_link(b.sim, in1, b.mbox.ingress(), "in1");
  outside_link.send(net::build_tcp_raw(b.pool, spec));
  b.sim.run_until(b.sim.now() + kMillisecond);
  EXPECT_EQ(b.out.size(), 0u);
  EXPECT_EQ(b.nat.counters().sessions_opened, 0u);
}

TEST(Nat, RstTearsDownImmediately) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);
  EXPECT_EQ(b.nat.port_pool().claimed(), 1u);
  b.send_inside(kFlow, net::TcpFlags::kRst);
  EXPECT_EQ(b.nat.counters().sessions_closed, 1u);
  EXPECT_EQ(b.nat.port_pool().claimed(), 0u);
  EXPECT_EQ(b.mbox.flow_table(b.mbox.picker().pick(kFlow)).size(), 0u);
}

TEST(Nat, TwoFinsCloseTheSession) {
  NatBench b;
  b.send_inside(kFlow, net::TcpFlags::kSyn);
  ASSERT_TRUE(b.out[0]->parse());
  const net::FiveTuple translated = b.out[0]->five_tuple();

  b.send_inside(kFlow, net::TcpFlags::kFin | net::TcpFlags::kAck);
  EXPECT_EQ(b.nat.counters().sessions_closed, 0u);  // half-closed

  net::TcpSegmentSpec spec;
  spec.tuple = translated.reversed();
  spec.flags = net::TcpFlags::kFin | net::TcpFlags::kAck;
  sim::LinkConfig in1 = NatBench::make_in_cfg(1);
  sim::Link outside_link(b.sim, in1, b.mbox.ingress(), "in1");
  outside_link.send(net::build_tcp_raw(b.pool, spec));
  b.sim.run_until(b.sim.now() + kMillisecond);

  EXPECT_EQ(b.nat.counters().sessions_closed, 1u);
  // TIME_WAIT: the translation lingers and the port stays claimed until
  // the housekeeping sweep passes the deadline.
  EXPECT_EQ(b.nat.port_pool().claimed(), 1u);
  EXPECT_GT(b.mbox.flow_table(b.mbox.picker().pick(kFlow)).size(), 0u);

  // A trailing ACK (the close handshake's last segment) still translates.
  const auto before_out = b.out.size();
  b.send_inside(kFlow, net::TcpFlags::kAck, 99);
  EXPECT_EQ(b.out.size(), before_out + 1);

  // After TIME_WAIT expires the sweep releases everything.
  b.sim.run_until(b.sim.now() + from_seconds(0.2));
  EXPECT_EQ(b.nat.port_pool().claimed(), 0u);
  EXPECT_EQ(b.mbox.flow_table(b.mbox.picker().pick(kFlow)).size(), 0u);
}

TEST(Nat, PortExhaustionDropsNewSessions) {
  NatConfig cfg;
  cfg.port_lo = 10000;
  cfg.port_hi = 10003;  // 4 ports only

  sim::Simulator sim;
  net::PacketPool pool(1024, 256);
  NatNf nat(cfg);
  core::SimMiddlebox mbox(sim, core::SprayerConfig{}, nat);

  class NullSink final : public sim::IPacketSink {
   public:
    void receive(net::Packet* pkt) override { pkt->pool()->free(pkt); }
  } sink;
  sim::LinkConfig in0;
  in0.egress_port_label = 0;
  sim::Link in_link(sim, in0, mbox.ingress(), "in");
  sim::Link out1(sim, sim::LinkConfig{}, sink, "o1");
  sim::Link out0(sim, sim::LinkConfig{}, sink, "o0");
  mbox.attach_tx_link(1, out1);
  mbox.attach_tx_link(0, out0);

  const auto flows = nic::random_tcp_flows(10, 99);
  for (const auto& f : flows) {
    net::TcpSegmentSpec spec;
    spec.tuple = f;
    spec.flags = net::TcpFlags::kSyn;
    in_link.send(net::build_tcp_raw(pool, spec));
  }
  sim.run_until(sim.now() + kMillisecond);

  // Port selection needs a port whose reverse flow maps to the right core,
  // so with only 4 ports some of the first 4+ sessions may already fail —
  // but at least one must succeed and the rest must be counted.
  EXPECT_GT(nat.counters().sessions_opened, 0u);
  EXPECT_LE(nat.counters().sessions_opened, 4u);
  EXPECT_GT(nat.counters().port_exhausted, 0u);
  // Every SYN either opened a session or hit pool exhaustion (an exhausted
  // SYN is also counted as an unmatched drop).
  EXPECT_EQ(nat.counters().sessions_opened + nat.counters().port_exhausted,
            10u);
  EXPECT_EQ(nat.counters().unmatched_dropped,
            nat.counters().port_exhausted);
}

TEST(Nat, EndToEndTcpThroughSprayedNat) {
  NatNf nat;
  tcp::IperfScenario sc;
  sc.num_flows = 4;
  sc.warmup = from_seconds(0.02);
  sc.duration = from_seconds(0.1);
  sc.tcp.bytes_to_send = 2'000'000;
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 31;
  const auto result = run_iperf(nat, sc);

  EXPECT_EQ(nat.counters().sessions_opened, 4u);
  for (const auto& f : result.flows) {
    EXPECT_EQ(f.final_state, tcp::TcpState::kDone) << f.tuple.to_string();
  }
  EXPECT_EQ(nat.counters().sessions_closed, 4u);
  EXPECT_EQ(nat.port_pool().claimed(), 0u);
}

}  // namespace
}  // namespace sprayer::nf

// Quickstart: write an NF against the Sprayer programming model (§3.4) and
// run it on the simulated testbed under both dispatch modes.
//
// The NF is a small connection counter: it installs per-flow state on SYN
// (connection_packets), reads it for every data packet (regular_packets),
// and tears it down on FIN/RST — the access pattern the whole framework is
// designed around. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/middlebox.hpp"
#include "nic/pktgen.hpp"

using namespace sprayer;

namespace {

/// A minimal stateful NF: counts packets per connection.
class ConnectionCounterNf final : public core::INetworkFunction {
 public:
  // Called once: size the per-core flow tables.
  void init(core::NfInitConfig& cfg, u32 /*num_cores*/) override {
    cfg.flow_table_capacity = 1u << 12;
    cfg.flow_entry_size = sizeof(Entry);
  }

  // SYN/FIN/RST packets, guaranteed to run on the flow's designated core:
  // the only place allowed to write flow state.
  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& /*verdicts*/) override {
    for (net::Packet* pkt : batch) {
      const net::FiveTuple key = pkt->five_tuple().canonical();
      net::TcpView tcp = pkt->tcp();
      if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
        auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
        if (e != nullptr) e->opened_at = ctx.now();
        ++connections_;
      } else if (tcp.has(net::TcpFlags::kFin) ||
                 tcp.has(net::TcpFlags::kRst)) {
        (void)ctx.flows().remove_local_flow(key);
      }
    }
  }

  // Everything else, wherever it landed. Flow state is read-only here —
  // get_flow() fetches it from the designated core's table.
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override {
    for (u32 i = 0; i < batch.size(); ++i) {
      net::Packet* pkt = batch[i];
      if (!pkt->is_tcp()) continue;
      const auto* e = static_cast<const Entry*>(
          ctx.flows().get_flow(pkt->five_tuple().canonical()));
      if (e == nullptr) {
        verdicts.drop(i);  // unknown connection
        continue;
      }
      ++counted_;
    }
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "conn-counter";
  }

  u64 connections_ = 0;
  u64 counted_ = 0;

 private:
  struct Entry {
    Time opened_at = 0;
    u64 pad = 0;
  };
};

void run(core::DispatchMode mode) {
  sim::Simulator sim;
  net::PacketPool pool(1u << 14, 256);
  ConnectionCounterNf nf;

  // The middlebox: 8 simulated 2 GHz cores behind a multi-queue NIC.
  core::SprayerConfig cfg;
  cfg.mode = mode;
  core::SimMiddlebox mbox(sim, cfg, nf);

  // Wire it between a traffic generator and a sink.
  nic::MeasureSink sink(sim);
  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  sim::Link gen_link(sim, in_cfg, mbox.ingress(), "gen->mbox");
  sim::LinkConfig out_cfg;
  sim::Link out_link(sim, out_cfg, sink, "mbox->sink");
  sim::Link back_link(sim, out_cfg, sink, "mbox->back");
  mbox.attach_tx_link(1, out_link);
  mbox.attach_tx_link(0, back_link);

  nic::PktGenConfig gen_cfg;
  gen_cfg.rate_pps = 2e6;
  gen_cfg.num_flows = 32;
  nic::PacketGen gen(sim, pool, gen_link, gen_cfg);
  gen.start();

  sim.run_until(from_seconds(0.01));

  const auto report = mbox.report();
  std::printf("--- %s ---\n", to_string(mode));
  std::printf("connections seen: %llu, packets counted: %llu, "
              "forwarded: %llu\n",
              static_cast<unsigned long long>(nf.connections_),
              static_cast<unsigned long long>(nf.counted_),
              static_cast<unsigned long long>(sink.packets()));
  std::printf("cores used: ");
  for (const auto& cs : report.per_core) {
    std::printf("%llu ", static_cast<unsigned long long>(cs.rx_packets));
  }
  std::printf("(rx packets per core)\n");
  std::printf("connection packets transferred between cores: %llu\n\n",
              static_cast<unsigned long long>(
                  report.total.conn_transferred_out));
}

}  // namespace

int main() {
  std::printf("Sprayer quickstart: one NF, two dispatch modes\n\n");
  run(core::DispatchMode::kRss);    // per-flow (baseline)
  run(core::DispatchMode::kSpray);  // per-packet (Sprayer)
  std::printf("Note how RSS concentrates a few flows on a few cores while\n"
              "Sprayer spreads every flow over all cores, with connection\n"
              "packets redirected to their designated cores.\n");
  return 0;
}

// The framework on real threads: a stateful firewall running on worker
// threads with true inter-core descriptor transfers — the same NF code and
// engine logic the simulated experiments use, demonstrating that the
// library is an executable framework, not only a model.
//
//   ./build/examples/threaded_firewall [cores=4] [packets=50000]
#include <array>
#include <atomic>
#include <cstdio>
#include <span>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/threaded.hpp"
#include "net/packet_builder.hpp"
#include "nf/firewall.hpp"
#include "nic/pktgen.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 cores = static_cast<u32>(cli.get_u64("cores", 4));
  const u32 packets = static_cast<u32>(cli.get_u64("packets", 50000));

  // ACL: allow 10.0.0.0/8 to ports 1-32767, deny the rest.
  nf::Acl acl(/*default_allow=*/false);
  nf::AclRule allow;
  allow.src_net = net::Ipv4Addr{10, 0, 0, 0};
  allow.src_prefix_len = 8;
  allow.dst_port_lo = 1;
  allow.dst_port_hi = 32767;
  allow.allow = true;
  acl.add_rule(allow);
  nf::FirewallNf firewall(std::move(acl));

  net::PacketPool pool(16384, 256);
  std::atomic<u64> forwarded{0};
  core::SprayerConfig cfg;
  cfg.num_cores = cores;
  cfg.mode = core::DispatchMode::kSpray;
  // Batched sink: one callback per verdict batch, one grouped pool free.
  core::ThreadedMiddlebox mbox(
      cfg, firewall,
      core::ThreadedMiddlebox::TxBatchHandler(
          [&](std::span<net::Packet* const> pkts) {
            forwarded.fetch_add(pkts.size(), std::memory_order_relaxed);
            net::free_packets(pkts);
          }));
  mbox.start();

  // Half the flows match the ACL (10/8, low ports), half do not.
  auto flows = nic::random_tcp_flows(32, 123);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (i % 2 == 1) {
      flows[i].dst_port |= 0x8000;  // high port: denied
    } else {
      flows[i].dst_port = static_cast<u16>((flows[i].dst_port & 0x7fff) | 1);
    }
  }

  Rng rng(1);
  u64 injected = 0;
  for (const auto& f : flows) {
    net::TcpSegmentSpec spec;
    spec.tuple = f;
    spec.flags = net::TcpFlags::kSyn;
    net::Packet* syn = net::build_tcp_raw(pool, spec);
    if (syn != nullptr && mbox.inject(syn)) ++injected;
  }
  mbox.wait_idle();  // let the SYNs install state before data races ahead
  std::array<net::Packet*, 32> burst;
  for (u32 i = 0; i < packets;) {
    u32 n = 0;
    while (n < burst.size() && i + n < packets) {
      net::TcpSegmentSpec spec;
      spec.tuple = flows[(i + n) % flows.size()];
      spec.flags = net::TcpFlags::kAck;
      spec.payload_len = 8;
      u8 payload[8];
      const u64 r = rng.next();
      std::memcpy(payload, &r, sizeof(payload));
      spec.payload = payload;
      net::Packet* pkt = net::build_tcp_raw(pool, spec);
      if (pkt == nullptr) break;  // pool backpressure: ship what we have
      burst[n++] = pkt;
    }
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    injected += mbox.inject_bulk({burst.data(), n});
    i += n;
  }
  mbox.wait_idle();
  mbox.stop();

  const auto stats = mbox.total_stats();
  const auto& fw = firewall.counters();
  std::printf("Threaded firewall on %u worker threads (sprayed)\n\n", cores);
  std::printf("injected:   %llu packets (%u flows, half ACL-denied)\n",
              static_cast<unsigned long long>(injected), 32);
  std::printf("admitted:   %llu connections, rejected by ACL: %llu\n",
              static_cast<unsigned long long>(fw.admitted),
              static_cast<unsigned long long>(fw.rejected_by_acl));
  std::printf("forwarded:  %llu, dropped (no state): %llu\n",
              static_cast<unsigned long long>(forwarded.load()),
              static_cast<unsigned long long>(fw.dropped_no_state));
  std::printf("inter-core connection-packet transfers: %llu\n",
              static_cast<unsigned long long>(stats.conn_transferred_out));
  std::printf("packet-pool leak check: %s\n",
              pool.available() == pool.size() ? "clean" : "LEAK");

  const bool ok = fw.admitted == 16 && fw.rejected_by_acl == 16 &&
                  pool.available() == pool.size();
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

// Traffic monitor over an Internet-like workload: the synthetic MAWI-style
// trace (elephants and mice, §2) is replayed as real packets through the
// sprayed middlebox; the monitor keeps per-connection context on designated
// cores and global statistics as loosely-consistent per-core counters.
//
//   ./build/examples/traffic_monitor [duration=0.5] [utilization=0.8]
//       [telemetry_json=path]
//
// telemetry_json writes the monitor's counters as one
// "sprayer.telemetry.v1" snapshot file (the monitor runs on its private
// registry fallback here — the simulated executor has none of its own).
#include <cstdio>

#include "common/config.hpp"
#include "core/middlebox.hpp"
#include "nf/monitor.hpp"
#include "nic/pktgen.hpp"
#include "telemetry/json_exporter.hpp"
#include "telemetry/snapshot.hpp"
#include "trace/replay.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const double duration = cli.get_double("duration", 0.5);
  const double utilization = cli.get_double("utilization", 0.8);
  const std::string telemetry_json = cli.get("telemetry_json", "");

  sim::Simulator sim;
  net::PacketPool pool(1u << 15, 1600);
  nf::MonitorNf monitor(/*close_on_single_fin=*/true);

  core::SprayerConfig cfg;
  cfg.mode = core::DispatchMode::kSpray;
  core::SimMiddlebox mbox(sim, cfg, monitor);

  nic::MeasureSink sink(sim);
  sim::LinkConfig in_cfg;
  in_cfg.egress_port_label = 0;
  in_cfg.rate_bps = 1e9;  // the 1 Gbps backbone link of §2
  sim::Link trace_link(sim, in_cfg, mbox.ingress(), "trace->mbox");
  sim::LinkConfig out_cfg;
  sim::Link out_link(sim, out_cfg, sink, "mbox->sink");
  sim::Link back_link(sim, out_cfg, sink, "mbox->back");
  mbox.attach_tx_link(1, out_link);
  mbox.attach_tx_link(0, back_link);

  trace::WorkloadConfig wl;
  wl.duration = from_seconds(duration);
  wl.utilization = utilization;
  wl.link_rate_bps = 1e9;
  trace::TraceReplayer replayer(sim, pool, trace_link, wl);
  replayer.start();
  sim.run_until(from_seconds(duration + 0.01));

  const auto totals = monitor.aggregate();
  std::printf("Traffic monitor over %.1f s of synthetic backbone traffic "
              "(%.0f%% of 1 Gbps)\n\n", duration, utilization * 100);
  std::printf("packets:      %llu (%.2f Mpps avg)\n",
              static_cast<unsigned long long>(totals.packets),
              static_cast<double>(totals.packets) / duration / 1e6);
  std::printf("bytes:        %llu (%.2f Gbps avg)\n",
              static_cast<unsigned long long>(totals.bytes),
              static_cast<double>(totals.bytes) * 8 / duration / 1e9);
  std::printf("tcp/udp/other: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(totals.tcp_packets),
              static_cast<unsigned long long>(totals.udp_packets),
              static_cast<unsigned long long>(totals.other_packets));
  std::printf("connections:  opened %llu, closed %llu\n",
              static_cast<unsigned long long>(totals.connections_opened),
              static_cast<unsigned long long>(totals.connections_closed));

  const auto report = mbox.report();
  std::printf("\nper-core rx packets (spraying evens out even this bursty "
              "trace):\n  ");
  for (const auto& cs : report.per_core) {
    std::printf("%llu ", static_cast<unsigned long long>(cs.rx_packets));
  }
  std::printf("\nflow entries currently tracked: %llu\n",
              static_cast<unsigned long long>(report.flow_entries));

  bool ok = totals.packets > 0 && totals.connections_opened > 0;
  if (ok && !telemetry_json.empty()) {
    telemetry::SnapshotCollector collector(*monitor.metrics_registry());
    ok = telemetry::JsonExporter::write_file(telemetry_json,
                                             collector.collect());
    std::printf("telemetry snapshot: %s%s\n", telemetry_json.c_str(),
                ok ? "" : " (write failed)");
  }
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

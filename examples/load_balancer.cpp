// L4 load balancer example: connections to a virtual IP are pinned to
// backends at SYN time (flow-server map on the designated core) and
// forwarded DSR-style; per-backend connection counts are global state kept
// with loose consistency (per-core counters, aggregated on demand) — the
// pattern the paper recommends for global statistics (§3.4).
//
//   ./build/examples/load_balancer [flows=24] [backends=3]
#include <cstdio>

#include "common/config.hpp"
#include "nf/load_balancer.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 flows = static_cast<u32>(cli.get_u64("flows", 24));
  const u32 backends = static_cast<u32>(cli.get_u64("backends", 3));

  nf::LbConfig lb_cfg;
  lb_cfg.vip = net::Ipv4Addr{198, 51, 100, 1};
  lb_cfg.vport = 443;
  for (u32 b = 0; b < backends; ++b) {
    lb_cfg.backends.push_back(
        {net::MacAddr::from_id(0x100 + b), net::Ipv4Addr{10, 1, 0, 10 + b}});
  }
  nf::LoadBalancerNf lb(lb_cfg);

  // All connections target the VIP.
  auto tuples = nic::random_tcp_flows(flows, 9);
  for (auto& t : tuples) {
    t.dst_ip = lb_cfg.vip;
    t.dst_port = lb_cfg.vport;
  }

  tcp::IperfScenario sc;
  sc.num_flows = flows;
  sc.tuples = tuples;
  sc.warmup = from_seconds(0.05);
  sc.duration = from_seconds(0.15);
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 9;

  std::printf("Load balancer: VIP %s:%u, %u backends, %u connections "
              "(sprayed)\n\n",
              lb_cfg.vip.to_string().c_str(), lb_cfg.vport, backends, flows);

  const auto result = run_iperf(lb, sc);

  const auto active = lb.active_connections();
  std::printf("%-10s %-18s %s\n", "backend", "ip", "active connections");
  for (u32 b = 0; b < backends; ++b) {
    std::printf("%-10u %-18s %lld\n", b,
                lb_cfg.backends[b].ip.to_string().c_str(),
                static_cast<long long>(active[b]));
  }

  std::printf("\nassigned: %llu, dropped (no state): %llu, "
              "dropped (not VIP): %llu\n",
              static_cast<unsigned long long>(lb.counters().assigned),
              static_cast<unsigned long long>(
                  lb.counters().dropped_no_state),
              static_cast<unsigned long long>(
                  lb.counters().dropped_not_vip));
  std::printf("aggregate goodput through the VIP: %.2f Gbps\n",
              result.total_goodput_bps / 1e9);

  const bool ok = lb.counters().assigned == flows;
  std::printf("\n%s\n",
              ok ? "OK: every connection pinned to a backend at SYN time"
                 : "FAILED");
  return ok ? 0 : 1;
}

// The paper's worked example (Figure 5), live: a source NAT running under
// packet spraying, translating real TCP connections end to end.
//
// Demonstrates the subtle part of the design: the NAT claims external ports
// whose *return* flow hashes to the same designated core, so both
// directions' connection packets and flow entries stay on one core — the
// writing partition holds even though data packets are sprayed everywhere.
//
//   ./build/examples/nat_middlebox [flows=8] [duration=0.2]
#include <cstdio>

#include "common/config.hpp"
#include "nf/nat.hpp"
#include "nic/pktgen.hpp"
#include "tcp/iperf.hpp"

using namespace sprayer;

int main(int argc, char** argv) {
  const CliConfig cli(argc, argv);
  const u32 flows = static_cast<u32>(cli.get_u64("flows", 8));
  const double duration = cli.get_double("duration", 0.2);

  nf::NatConfig nat_cfg;
  nat_cfg.external_ip = net::Ipv4Addr{203, 0, 113, 7};
  nf::NatNf nat(nat_cfg);

  tcp::IperfScenario sc;
  sc.num_flows = flows;
  sc.warmup = from_seconds(0.01);
  sc.duration = from_seconds(duration);
  sc.tcp.bytes_to_send = 10'000'000;  // finite flows: exercises session close
  sc.mbox.mode = core::DispatchMode::kSpray;
  sc.seed = 7;

  std::printf("NAT middlebox (external IP %s), %u TCP connections, "
              "sprayed over %u cores\n\n",
              nat_cfg.external_ip.to_string().c_str(), flows,
              sc.mbox.num_cores);

  const auto result = run_iperf(nat, sc);

  std::printf("%-45s %-12s %s\n", "flow (client view)", "goodput", "state");
  for (const auto& f : result.flows) {
    std::printf("%-45s %6.2f Mbps %s\n", f.tuple.to_string().c_str(),
                f.goodput_bps / 1e6, to_string(f.final_state));
  }

  const auto& c = nat.counters();
  std::printf("\nNAT sessions: opened %llu, closed %llu, "
              "unmatched dropped %llu\n",
              static_cast<unsigned long long>(c.sessions_opened),
              static_cast<unsigned long long>(c.sessions_closed),
              static_cast<unsigned long long>(c.unmatched_dropped));
  std::printf("port pool: %u claimed of %u (all released after close: %s)\n",
              nat.port_pool().claimed(), nat.port_pool().size(),
              nat.port_pool().claimed() == 0 ? "yes" : "no");
  std::printf("connection packets transferred to designated cores: %llu\n",
              static_cast<unsigned long long>(
                  result.mbox.total.conn_transferred_out));
  std::printf("flow entries left in tables: %llu\n",
              static_cast<unsigned long long>(result.mbox.flow_entries));

  const bool ok = c.sessions_opened == flows &&
                  result.total_goodput_bps > 0;
  std::printf("\n%s\n", ok ? "OK: all connections translated end to end"
                           : "FAILED");
  return ok ? 0 : 1;
}

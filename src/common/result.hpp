// A small expected-like result type (C++20 has no std::expected yet).
//
// Used on fallible library boundaries where exceptions would be the wrong
// tool (e.g. parse functions on untrusted packet bytes that fail as part of
// normal operation).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace sprayer {

/// Error payload: a code plus a human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kOutOfRange,
    kNotFound,
    kExhausted,
    kAlreadyExists,
    kTruncated,
    kUnsupported,
  };

  Code code = Code::kInvalidArgument;
  std::string message;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code;
  }
};

inline const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kInvalidArgument: return "invalid_argument";
    case Error::Code::kOutOfRange: return "out_of_range";
    case Error::Code::kNotFound: return "not_found";
    case Error::Code::kExhausted: return "exhausted";
    case Error::Code::kAlreadyExists: return "already_exists";
    case Error::Code::kTruncated: return "truncated";
    case Error::Code::kUnsupported: return "unsupported";
  }
  return "unknown";
}

/// Result<T>: either a value or an Error. Accessing the wrong alternative
/// throws via SPRAYER_CHECK (programming error, not data error).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(implicit)
  Result(Error error) : v_(std::move(error)) {}        // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    SPRAYER_CHECK_MSG(ok(), error().message);
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    SPRAYER_CHECK_MSG(ok(), error().message);
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    SPRAYER_CHECK_MSG(ok(), error().message);
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] const Error& error() const {
    SPRAYER_CHECK(!ok());
    return std::get<Error>(v_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> specialization-equivalent: success or error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : err_(std::move(error)), ok_(false) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  [[nodiscard]] const Error& error() const {
    SPRAYER_CHECK(!ok_);
    return err_;
  }

 private:
  Error err_;
  bool ok_ = true;
};

inline Error make_error(Error::Code code, std::string msg) {
  return Error{code, std::move(msg)};
}

}  // namespace sprayer

// Tiny key=value command-line parser for the bench/example binaries, so every
// experiment knob (seed, duration, core count, ...) can be overridden without
// recompiling: `./fig7_flow_count duration=0.5 cores=16 seed=42`.
#pragma once

#include <map>
#include <string>

#include "common/types.hpp"

namespace sprayer {

class CliConfig {
 public:
  CliConfig(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] u64 get_u64(const std::string& key, u64 fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace sprayer

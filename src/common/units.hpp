// Time and rate units used throughout the simulator.
//
// Simulated time is in integer picoseconds (u64): at 10 GbE one byte takes
// 800 ps, and a 2 GHz CPU cycle is 500 ps, so picoseconds keep everything
// exact without floating point in the hot path. ~213 days of simulated time
// fit in 64 bits — far beyond any experiment here.
#pragma once

#include "common/types.hpp"

namespace sprayer {

/// Simulated time in picoseconds.
using Time = u64;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

inline constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / 1e12;
}
inline constexpr double to_micros(Time t) {
  return static_cast<double>(t) / 1e6;
}
inline constexpr double to_nanos(Time t) {
  return static_cast<double>(t) / 1e3;
}
inline constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e12);
}
inline constexpr Time from_micros(double us) {
  return static_cast<Time>(us * 1e6);
}

/// CPU cycles (virtual, accounted by the simulator).
using Cycles = u64;

/// Convert cycles to simulated time at a given core frequency.
inline constexpr Time cycles_to_time(Cycles c, double freq_hz) {
  return static_cast<Time>(static_cast<double>(c) * 1e12 / freq_hz);
}

/// Bits/second helpers.
inline constexpr double kGbps = 1e9;
inline constexpr double kMbps = 1e6;

/// Time to serialize `bytes` on a link of `rate_bps` bits/second.
inline constexpr Time serialization_time(u64 bytes, double rate_bps) {
  return static_cast<Time>(static_cast<double>(bytes) * 8.0 * 1e12 / rate_bps);
}

/// Ethernet overhead on the wire beyond the host-visible frame (Packet::len
/// excludes the FCS): FCS (4) + preamble (7) + SFD (1) + inter-frame gap
/// (12) = 24 bytes. A minimum frame (60 B host-visible, "64 B" on the wire)
/// occupies 84 B of wire time, which is what makes 10 GbE line rate
/// 14.88 Mpps for minimum-size packets.
inline constexpr u64 kEthernetWireOverhead = 24;

/// Packets/second a link sustains for a given frame size.
inline constexpr double line_rate_pps(double rate_bps, u64 frame_bytes) {
  return rate_bps / (8.0 * static_cast<double>(frame_bytes + kEthernetWireOverhead));
}

}  // namespace sprayer

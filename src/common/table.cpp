#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace sprayer {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SPRAYER_CHECK(!headers_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  SPRAYER_CHECK_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sprayer

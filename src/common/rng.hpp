// Fast deterministic PRNG (xoshiro256**) plus the distribution helpers the
// workload generators need. All experiment randomness flows through this so
// runs are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value.
constexpr u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Small, fast, passes BigCrush.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept {
    u64 sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr u64 min() noexcept { return 0; }
  static constexpr u64 max() noexcept { return ~0ULL; }

  u64 operator()() noexcept { return next(); }

  u64 next() noexcept {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  u64 uniform(u64 bound) noexcept {
    SPRAYER_DCHECK(bound > 0);
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<u64>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  u64 uniform_range(u64 lo, u64 hi) noexcept {
    SPRAYER_DCHECK(lo <= hi);
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponential with given mean (> 0).
  double exponential(double mean) noexcept {
    SPRAYER_DCHECK(mean > 0);
    double u;
    do { u = uniform01(); } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Pareto with scale xm (> 0) and shape alpha (> 0).
  double pareto(double xm, double alpha) noexcept {
    SPRAYER_DCHECK(xm > 0 && alpha > 0);
    double u;
    do { u = uniform01(); } while (u == 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * f;
    has_cached_ = true;
    return u * f;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  u64 s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace sprayer

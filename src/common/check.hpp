// Runtime invariant checks.
//
// SPRAYER_CHECK is always on (it guards library contracts: misuse throws a
// descriptive std::logic_error instead of corrupting state). SPRAYER_DCHECK
// compiles out in NDEBUG builds and is meant for hot-path sanity checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sprayer::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace sprayer::detail

#define SPRAYER_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sprayer::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define SPRAYER_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr))                                                         \
      ::sprayer::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define SPRAYER_DCHECK(expr) ((void)0)
#else
#define SPRAYER_DCHECK(expr) SPRAYER_CHECK(expr)
#endif

// Empirical CDF over double samples, used by the trace-analysis benches
// (Figures 1 and 2) to print the same curves the paper plots.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples)
      : samples_(std::move(samples)) {
    finalize();
  }

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  void finalize() {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const {
    SPRAYER_CHECK_MSG(sorted_, "call finalize() first");
    if (samples_.empty()) return 0.0;
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Value at quantile q in [0, 1] (nearest-rank).
  [[nodiscard]] double quantile(double q) const {
    SPRAYER_CHECK_MSG(sorted_, "call finalize() first");
    SPRAYER_CHECK(!samples_.empty());
    if (q <= 0.0) return samples_.front();
    if (q >= 1.0) return samples_.back();
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[rank];
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] std::span<const double> sorted_samples() const {
    SPRAYER_CHECK_MSG(sorted_, "call finalize() first");
    return samples_;
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Weighted CDF: fraction of total *weight* attributable to samples <= x.
/// This is the "distribution of bytes across flow sizes" curve of Figure 1.
class WeightedCdf {
 public:
  void add(double x, double weight) {
    SPRAYER_CHECK(weight >= 0.0);
    points_.push_back({x, weight});
    sorted_ = false;
  }

  void finalize() {
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) { return a.x < b.x; });
    total_ = 0.0;
    for (auto& p : points_) {
      total_ += p.w;
      p.cum = total_;
    }
    sorted_ = true;
  }

  [[nodiscard]] double at(double x) const {
    SPRAYER_CHECK_MSG(sorted_, "call finalize() first");
    if (points_.empty() || total_ == 0.0) return 0.0;
    // Find last point with p.x <= x.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double v, const Point& p) { return v < p.x; });
    if (it == points_.begin()) return 0.0;
    return (it - 1)->cum / total_;
  }

  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Point {
    double x;
    double w;
    double cum = 0.0;
  };
  std::vector<Point> points_;
  double total_ = 0.0;
  bool sorted_ = true;
};

}  // namespace sprayer

// Console table printer for the benchmark harnesses: prints aligned,
// machine-grep-friendly rows mirroring the paper's tables/series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sprayer {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Add one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sprayer

// Single-writer relaxed counter cell.
//
// A u64 that exactly one thread mutates while any thread may read it:
// loads and stores are relaxed atomics, so concurrent readers see untorn
// (if slightly stale) values and TSan can verify the discipline — the same
// contract as the telemetry registry's cells, packaged as a drop-in
// replacement for plain-u64 statistics fields. All the arithmetic an
// accumulator field needs is forwarded, and the implicit u64 conversion
// keeps existing call sites (printf casts, EXPECT_EQ, merges) compiling
// unchanged.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace sprayer {

class RelaxedU64 {
 public:
  constexpr RelaxedU64() noexcept = default;
  constexpr RelaxedU64(u64 v) noexcept : v_(v) {}  // NOLINT(runtime/explicit)

  // Copies move a snapshot of the value (used when stats structs are
  // returned by value or merged into a local accumulator).
  RelaxedU64(const RelaxedU64& o) noexcept : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) noexcept {
    store(o.load());
    return *this;
  }
  RelaxedU64& operator=(u64 v) noexcept {
    store(v);
    return *this;
  }

  RelaxedU64& operator+=(u64 n) noexcept {
    store(load() + n);
    return *this;
  }
  RelaxedU64& operator-=(u64 n) noexcept {
    store(load() - n);
    return *this;
  }
  RelaxedU64& operator++() noexcept { return *this += 1; }

  // NOLINTNEXTLINE(runtime/explicit) — implicit read keeps call sites plain.
  operator u64() const noexcept { return load(); }

  [[nodiscard]] u64 load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void store(u64 v) noexcept { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

}  // namespace sprayer

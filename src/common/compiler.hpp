// Compiler portability helpers (GCC/Clang).
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SPRAYER_LIKELY(x) __builtin_expect(!!(x), 1)
#define SPRAYER_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define SPRAYER_ALWAYS_INLINE inline __attribute__((always_inline))
#define SPRAYER_NOINLINE __attribute__((noinline))
#define SPRAYER_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
#else
#define SPRAYER_LIKELY(x) (x)
#define SPRAYER_UNLIKELY(x) (x)
#define SPRAYER_ALWAYS_INLINE inline
#define SPRAYER_NOINLINE
#define SPRAYER_PREFETCH_READ(addr) ((void)(addr))
#endif

// ThreadSanitizer detection (GCC defines __SANITIZE_THREAD__, Clang exposes
// __has_feature). Seqlock-style code uses this to switch deliberately-racy
// fast paths (SIMD tag scans, snapshot copies) to TSan-visible or
// TSan-exempt equivalents.
#if defined(__SANITIZE_THREAD__)
#define SPRAYER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPRAYER_TSAN 1
#endif
#endif
#ifndef SPRAYER_TSAN
#define SPRAYER_TSAN 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define SPRAYER_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define SPRAYER_NO_SANITIZE_THREAD
#endif

namespace sprayer {

/// CPU relax hint for spin loops (PAUSE on x86, YIELD on ARM).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace sprayer

// Compiler portability helpers (GCC/Clang).
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SPRAYER_LIKELY(x) __builtin_expect(!!(x), 1)
#define SPRAYER_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define SPRAYER_ALWAYS_INLINE inline __attribute__((always_inline))
#define SPRAYER_NOINLINE __attribute__((noinline))
#else
#define SPRAYER_LIKELY(x) (x)
#define SPRAYER_UNLIKELY(x) (x)
#define SPRAYER_ALWAYS_INLINE inline
#define SPRAYER_NOINLINE
#endif

namespace sprayer {

/// CPU relax hint for spin loops (PAUSE on x86, YIELD on ARM).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace sprayer

// Overload-control policy shared by every admission boundary.
//
// The same policy enum governs the simulated NIC's rx queues
// (nic::NicConfig) and the threaded executor's driver-side rx rings
// (core::SprayerConfig), so benches run against either backend agree on
// what "overload" means. The policies encode the paper's asymmetry between
// packet classes (§3.3): connection packets (SYN/FIN/RST) are the only
// writes to flow state — losing one corrupts state (half-open NAT
// sessions pin ports forever, firewall contexts leak) — while losing a
// regular packet merely costs goodput that TCP recovers.
#pragma once

#include "common/types.hpp"

namespace sprayer {

enum class OverloadPolicy : u8 {
  /// Tail drop: whatever arrives at a full queue is dropped, regardless of
  /// class (legacy NIC behaviour).
  kDropNew,
  /// Shed regular packets once occupancy crosses the shed watermark; the
  /// headroom between the watermark and full capacity is reserved for
  /// connection packets, which are admitted until the queue is truly full.
  kDropRegularFirst,
  /// Never drop at this boundary: the producer spins until the queue has
  /// room. Only meaningful where the producer can actually wait (the
  /// threaded driver); the simulated NIC degrades it to kDropRegularFirst
  /// because a wire cannot be paused.
  kBlock,
};

[[nodiscard]] constexpr const char* to_string(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::kDropNew: return "drop-new";
    case OverloadPolicy::kDropRegularFirst: return "drop-regular-first";
    case OverloadPolicy::kBlock: return "block";
  }
  return "?";
}

/// Occupancy at which kDropRegularFirst starts shedding regular packets.
[[nodiscard]] constexpr u32 shed_threshold(u32 capacity,
                                           double watermark) noexcept {
  const u32 t = static_cast<u32>(static_cast<double>(capacity) * watermark);
  return t < capacity ? t : capacity;
}

}  // namespace sprayer

// Basic integer aliases and project-wide constants.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sprayer {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Destructive interference size. We hard-code 64 instead of using
/// std::hardware_destructive_interference_size so that ABI does not depend
/// on compiler flags (GCC warns about exactly this).
inline constexpr std::size_t kCacheLineSize = 64;

/// Identifier of a worker core (queue index in the NIC, ring index in the
/// runtime, thread index in the executor). Cores are always dense [0, n).
using CoreId = u16;

inline constexpr CoreId kInvalidCore = 0xffff;

}  // namespace sprayer

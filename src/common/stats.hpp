// Streaming statistics: Welford mean/variance, min/max, and Jain's fairness
// index (the fairness metric of the paper's Figure 9).
#pragma once

#include <cmath>
#include <limits>
#include <span>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer {

/// Numerically stable streaming mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] u64 count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Jain's fairness index over per-entity allocations x_i:
///   J = (sum x_i)^2 / (n * sum x_i^2),  J in (0, 1], 1.0 == perfectly fair.
/// Entities with zero allocation still count toward n (a starved flow is
/// the unfairness we are measuring).
[[nodiscard]] inline double jain_fairness(std::span<const double> xs) {
  SPRAYER_CHECK_MSG(!xs.empty(), "Jain's index needs at least one value");
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    SPRAYER_CHECK_MSG(x >= 0.0, "allocations must be non-negative");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: degenerate but "equal"
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace sprayer

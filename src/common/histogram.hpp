// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values are u64 (we use picoseconds or nanoseconds). Buckets keep a fixed
// number of significant bits, so relative error is bounded (~1/2^bits) while
// the range spans the full 64-bit domain. Used for the paper's Figure 8
// (99th-percentile RTT).
#pragma once

#include <array>
#include <bit>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer {

class LogHistogram {
 public:
  /// `significant_bits` controls resolution: values within a power-of-two
  /// range are split into 2^significant_bits linear sub-buckets.
  explicit LogHistogram(unsigned significant_bits = 7)
      : bits_(significant_bits) {
    SPRAYER_CHECK(significant_bits >= 1 && significant_bits <= 20);
    sub_buckets_ = 1u << bits_;
    // 64 power-of-two ranges × sub-buckets each (first range is linear).
    counts_.assign(static_cast<std::size_t>(64 - bits_ + 1) * sub_buckets_, 0);
  }

  void add(u64 value, u64 count = 1) noexcept {
    counts_[index_of(value)] += count;
    total_ += count;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
  }

  void merge(const LogHistogram& o) {
    SPRAYER_CHECK_MSG(o.bits_ == bits_, "histogram resolution mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    if (o.total_ > 0) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
      sum_ += o.sum_;
    }
  }

  [[nodiscard]] u64 count() const noexcept { return total_; }
  [[nodiscard]] u64 min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] u64 max() const noexcept { return total_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Quantile q in [0, 1]. Returns a representative value (upper edge of the
  /// bucket containing the q-th sample), 0 if empty.
  [[nodiscard]] u64 quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max();
    const u64 target = static_cast<u64>(q * static_cast<double>(total_ - 1)) + 1;
    u64 seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return upper_edge(i);
    }
    return max();
  }

  [[nodiscard]] u64 p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] u64 p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] u64 p999() const noexcept { return quantile(0.999); }

  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    min_ = ~0ULL;
    max_ = 0;
    sum_ = 0.0;
  }

 private:
  [[nodiscard]] std::size_t index_of(u64 value) const noexcept {
    // Values below 2^bits are exact (range 0).
    const int msb = 63 - std::countl_zero(value | 1);
    if (static_cast<unsigned>(msb) < bits_) return value;
    const unsigned range = static_cast<unsigned>(msb) - bits_ + 1;
    const unsigned sub =
        static_cast<unsigned>(value >> (msb - static_cast<int>(bits_) + 1)) &
        (sub_buckets_ - 1);
    return static_cast<std::size_t>(range) * sub_buckets_ + sub;
  }

  [[nodiscard]] u64 upper_edge(std::size_t index) const noexcept {
    const u64 range = index / sub_buckets_;
    const u64 sub = index % sub_buckets_;
    if (range == 0) return sub;  // exact
    // `sub` holds the top `bits_` bits of the value including its leading
    // one (the value's msb is at bit range + bits_ - 1), so the bucket's
    // lower edge is sub << range.
    const unsigned shift = static_cast<unsigned>(range);
    return (sub << shift) + ((1ULL << shift) - 1);
  }

  unsigned bits_;
  unsigned sub_buckets_ = 0;
  std::vector<u64> counts_;
  u64 total_ = 0;
  u64 min_ = ~0ULL;
  u64 max_ = 0;
  double sum_ = 0.0;
};

}  // namespace sprayer

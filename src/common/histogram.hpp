// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values are u64 (we use picoseconds or nanoseconds). Buckets keep a fixed
// number of significant bits, so relative error is bounded (~1/2^bits) while
// the range spans the full 64-bit domain. Used for the paper's Figure 8
// (99th-percentile RTT).
#pragma once

#include <array>
#include <bit>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer {

class LogHistogram {
 public:
  /// `significant_bits` controls resolution: values within a power-of-two
  /// range are split into 2^significant_bits linear sub-buckets.
  explicit LogHistogram(unsigned significant_bits = 7)
      : bits_(significant_bits) {
    SPRAYER_CHECK(significant_bits >= 1 && significant_bits <= 20);
    sub_buckets_ = 1u << bits_;
    // 64 power-of-two ranges × sub-buckets each (first range is linear).
    counts_.assign(static_cast<std::size_t>(64 - bits_ + 1) * sub_buckets_, 0);
  }

  void add(u64 value, u64 count = 1) noexcept {
    counts_[index_of(value)] += count;
    total_ += count;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
  }

  void merge(const LogHistogram& o) {
    SPRAYER_CHECK_MSG(o.bits_ == bits_, "histogram resolution mismatch");
    if (o.total_ == 0) return;
    // Fast path: every non-zero bucket of `o` lies in the index range of
    // its min/max (index_of is monotonic), so a sparse histogram merges in
    // O(populated range) instead of O(all buckets).
    const std::size_t lo = index_of(o.min_);
    const std::size_t hi = index_of(o.max_);
    for (std::size_t i = lo; i <= hi; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    sum_ += o.sum_;
  }

  /// Merge-from-raw-buckets path for aggregators (telemetry shard merging)
  /// that hold bucket arrays of the same geometry rather than whole
  /// histograms. min/max/mean are approximated by bucket edges (exact for
  /// the sub-2^bits linear range); counts and quantiles are exact.
  void add_bucket(std::size_t index, u64 count) noexcept {
    SPRAYER_DCHECK(index < counts_.size());
    if (count == 0) return;
    counts_[index] += count;
    total_ += count;
    const u64 lo = lower_edge(index);
    const u64 hi = upper_edge(index);
    if (lo < min_) min_ = lo;
    if (hi > max_) max_ = hi;
    sum_ += static_cast<double>(hi) * static_cast<double>(count);
  }

  [[nodiscard]] u64 count() const noexcept { return total_; }
  [[nodiscard]] u64 min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] u64 max() const noexcept { return total_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Quantile q in [0, 1]. Returns a representative value (upper edge of the
  /// bucket containing the q-th sample), 0 if empty.
  [[nodiscard]] u64 quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max();
    const u64 target = static_cast<u64>(q * static_cast<double>(total_ - 1)) + 1;
    u64 seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) return upper_edge(i);
    }
    return max();
  }

  [[nodiscard]] u64 p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] u64 p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] u64 p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] u64 p999() const noexcept { return quantile(0.999); }

  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    min_ = ~0ULL;
    max_ = 0;
    sum_ = 0.0;
  }

  // --- bucket geometry (public so external aggregators — e.g. the
  // telemetry registry's per-core sharded bucket arrays — can share the
  // exact same value→bucket mapping and fold back via add_bucket) ---------

  [[nodiscard]] unsigned significant_bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }

  [[nodiscard]] std::size_t index_of(u64 value) const noexcept {
    // Values below 2^bits are exact (range 0).
    const int msb = 63 - std::countl_zero(value | 1);
    if (static_cast<unsigned>(msb) < bits_) return value;
    const unsigned range = static_cast<unsigned>(msb) - bits_ + 1;
    const unsigned sub =
        static_cast<unsigned>(value >> (msb - static_cast<int>(bits_) + 1)) &
        (sub_buckets_ - 1);
    return static_cast<std::size_t>(range) * sub_buckets_ + sub;
  }

  [[nodiscard]] u64 upper_edge(std::size_t index) const noexcept {
    const u64 range = index / sub_buckets_;
    const u64 sub = index % sub_buckets_;
    if (range == 0) return sub;  // exact
    // `sub` holds the top `bits_` bits of the value including its leading
    // one (the value's msb is at bit range + bits_ - 1), so the bucket's
    // lower edge is sub << range.
    const unsigned shift = static_cast<unsigned>(range);
    return (sub << shift) + ((1ULL << shift) - 1);
  }

  [[nodiscard]] u64 lower_edge(std::size_t index) const noexcept {
    const u64 range = index / sub_buckets_;
    const u64 sub = index % sub_buckets_;
    if (range == 0) return sub;  // exact
    return sub << static_cast<unsigned>(range);
  }

 private:
  unsigned bits_;
  unsigned sub_buckets_ = 0;
  std::vector<u64> counts_;
  u64 total_ = 0;
  u64 min_ = ~0ULL;
  u64 max_ = 0;
  double sum_ = 0.0;
};

}  // namespace sprayer

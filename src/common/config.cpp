#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sprayer {

CliConfig::CliConfig(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value argument, got: " + arg);
    }
    kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
}

bool CliConfig::has(const std::string& key) const {
  return kv_.contains(key);
}

std::string CliConfig::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

double CliConfig::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stod(it->second);
}

u64 CliConfig::get_u64(const std::string& key, u64 fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stoull(it->second);
}

bool CliConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace sprayer

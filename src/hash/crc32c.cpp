#include "hash/crc32c.hpp"

#include <array>
#include <cstring>

namespace sprayer::hash {

namespace {

constexpr u32 kPoly = 0x82f63b78;  // reflected CRC32-C polynomial

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) noexcept {
  u32 crc = ~seed;
  for (const u8 byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

u32 crc32c_u64(u64 value, u32 seed) noexcept {
  u8 bytes[8];
  std::memcpy(bytes, &value, sizeof(bytes));
  return crc32c(std::span<const u8>{bytes, sizeof(bytes)}, seed);
}

}  // namespace sprayer::hash

// Software CRC32-C (Castagnoli), table-driven. Used as the flow-table hash
// and available as an alternative designated-core hash.
#pragma once

#include <span>

#include "common/types.hpp"

namespace sprayer::hash {

/// CRC32-C of a byte range, with the conventional ~0 initial value and final
/// inversion. `seed` chains multiple ranges: pass the previous result.
[[nodiscard]] u32 crc32c(std::span<const u8> data, u32 seed = 0) noexcept;

/// CRC32-C of a 64-bit value (little-endian byte order).
[[nodiscard]] u32 crc32c_u64(u64 value, u32 seed = 0) noexcept;

}  // namespace sprayer::hash

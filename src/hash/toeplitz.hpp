// Toeplitz hash — the hash RSS NICs implement.
//
// Includes the de-facto standard Microsoft key and the *symmetric* key
// (0x6d5a repeated, from Woo & Park) that maps a flow and its reverse to the
// same value. The paper's testbed configures exactly this symmetric key so
// that upstream and downstream directions of a connection land on the same
// core (§5, [44]).
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::hash {

inline constexpr std::size_t kToeplitzKeyLen = 40;
using ToeplitzKey = std::array<u8, kToeplitzKeyLen>;

/// Microsoft's reference RSS key (asymmetric).
inline constexpr ToeplitzKey kMicrosoftKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/// Symmetric RSS key: "0x6d5a" repeated. hash(a,b) == hash(b,a) for both the
/// address pair and the port pair.
inline constexpr ToeplitzKey kSymmetricKey = {
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
    0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a};

/// Toeplitz hash of an arbitrary byte string against a 40-byte key.
[[nodiscard]] u32 toeplitz(std::span<const u8> input,
                           const ToeplitzKey& key) noexcept;

/// RSS input for IPv4 + TCP/UDP: src ip, dst ip, src port, dst port — all
/// big-endian, 12 bytes.
[[nodiscard]] u32 toeplitz_v4_l4(const net::FiveTuple& t,
                                 const ToeplitzKey& key) noexcept;

/// RSS input for IPv4 only (no ports): src ip, dst ip — 8 bytes. This is
/// what NICs fall back to for non-TCP/UDP IPv4 traffic.
[[nodiscard]] u32 toeplitz_v4(const net::FiveTuple& t,
                              const ToeplitzKey& key) noexcept;

/// Table-driven Toeplitz over the 12-byte v4+l4 RSS input. Toeplitz is
/// linear over GF(2), so the hash is the XOR of one precomputed per-position
/// byte table each — 12 L1 loads instead of 96 bit-serial steps. A zero
/// byte contributes nothing, which makes v4(t) == v4_l4(t) whenever the
/// ports are zero (exactly how extract_five_tuple represents portless
/// protocols), so one 12-byte table serves both input lengths.
class ToeplitzLut {
 public:
  explicit ToeplitzLut(const ToeplitzKey& key) noexcept;

  [[nodiscard]] u32 hash12(const u8 input[12]) const noexcept {
    u32 h = 0;
    for (std::size_t i = 0; i < kInputLen; ++i) h ^= table_[i][input[i]];
    return h;
  }

  [[nodiscard]] u32 v4_l4(const net::FiveTuple& t) const noexcept;
  [[nodiscard]] u32 v4(const net::FiveTuple& t) const noexcept;

 private:
  static constexpr std::size_t kInputLen = 12;
  std::array<std::array<u32, 256>, kInputLen> table_;
};

/// Shared LUT for the symmetric key — the hash every RSS engine, core
/// picker, and flow table in the system agrees on.
[[nodiscard]] const ToeplitzLut& symmetric_toeplitz_lut() noexcept;

}  // namespace sprayer::hash

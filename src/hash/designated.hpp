// Designated-core hash (paper §3.2).
//
// Every flow has exactly one designated core that owns its state. The hash
// must be symmetric — upstream and downstream directions of a connection
// must map to the same core — which we get by hashing the *canonical*
// five-tuple. Two interchangeable implementations are provided; the default
// (mix of the canonical tuple) is fast, and the Toeplitz variant mirrors
// what a symmetric-key RSS NIC would compute.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/toeplitz.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"

namespace sprayer::hash {

/// Symmetric flow hash of a key — THE hash of the whole system: what a
/// symmetric-key RSS NIC computes per packet, what the core picker consumes,
/// and what flow tables index by. Cheap (table-driven), but still worth
/// memoizing per packet via packet_flow_hash().
[[nodiscard]] inline u32 flow_hash(const net::FiveTuple& t) noexcept {
  return symmetric_toeplitz_lut().v4_l4(t);
}

/// The packet's memoized symmetric flow hash; computes and stashes it on
/// first use when the NIC did not (models reading the 82599's rx-descriptor
/// RSS-hash field, with a software fallback).
[[nodiscard]] inline u32 packet_flow_hash(net::Packet& pkt) noexcept {
  if (pkt.has_flow_hash()) return pkt.flow_hash();
  const u32 h = flow_hash(pkt.five_tuple());
  pkt.set_flow_hash(h);
  return h;
}

enum class DesignatedHashKind {
  kCanonicalMix,       // splitmix of the canonical five-tuple (default)
  kSymmetricToeplitz,  // Toeplitz with the symmetric key (direction-free)
};

/// Symmetric 32-bit flow hash.
[[nodiscard]] inline u32 designated_hash(
    const net::FiveTuple& t,
    DesignatedHashKind kind = DesignatedHashKind::kCanonicalMix) noexcept {
  switch (kind) {
    case DesignatedHashKind::kCanonicalMix:
      return static_cast<u32>(t.canonical().pack());
    case DesignatedHashKind::kSymmetricToeplitz:
      return toeplitz_v4_l4(t, kSymmetricKey);
  }
  return 0;
}

/// Designated core for a flow among `num_cores` cores.
[[nodiscard]] inline CoreId designated_core(
    const net::FiveTuple& t, u32 num_cores,
    DesignatedHashKind kind = DesignatedHashKind::kCanonicalMix) noexcept {
  SPRAYER_DCHECK(num_cores > 0);
  return static_cast<CoreId>(designated_hash(t, kind) % num_cores);
}

}  // namespace sprayer::hash

// Designated-core hash (paper §3.2).
//
// Every flow has exactly one designated core that owns its state. The hash
// must be symmetric — upstream and downstream directions of a connection
// must map to the same core — which we get by hashing the *canonical*
// five-tuple. Two interchangeable implementations are provided; the default
// (mix of the canonical tuple) is fast, and the Toeplitz variant mirrors
// what a symmetric-key RSS NIC would compute.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/toeplitz.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::hash {

enum class DesignatedHashKind {
  kCanonicalMix,       // splitmix of the canonical five-tuple (default)
  kSymmetricToeplitz,  // Toeplitz with the symmetric key (direction-free)
};

/// Symmetric 32-bit flow hash.
[[nodiscard]] inline u32 designated_hash(
    const net::FiveTuple& t,
    DesignatedHashKind kind = DesignatedHashKind::kCanonicalMix) noexcept {
  switch (kind) {
    case DesignatedHashKind::kCanonicalMix:
      return static_cast<u32>(t.canonical().pack());
    case DesignatedHashKind::kSymmetricToeplitz:
      return toeplitz_v4_l4(t, kSymmetricKey);
  }
  return 0;
}

/// Designated core for a flow among `num_cores` cores.
[[nodiscard]] inline CoreId designated_core(
    const net::FiveTuple& t, u32 num_cores,
    DesignatedHashKind kind = DesignatedHashKind::kCanonicalMix) noexcept {
  SPRAYER_DCHECK(num_cores > 0);
  return static_cast<CoreId>(designated_hash(t, kind) % num_cores);
}

}  // namespace sprayer::hash

#include "hash/toeplitz.hpp"

#include "net/byte_order.hpp"

namespace sprayer::hash {

u32 toeplitz(std::span<const u8> input, const ToeplitzKey& key) noexcept {
  // Classic bit-serial formulation: for each input bit set, XOR in the
  // 32-bit window of the key starting at that bit position.
  u32 result = 0;
  // Current 32-bit key window; kept in a 64-bit register so shifting in the
  // next key byte is cheap.
  u64 window = (static_cast<u64>(key[0]) << 24) |
               (static_cast<u64>(key[1]) << 16) |
               (static_cast<u64>(key[2]) << 8) | key[3];
  for (std::size_t i = 0; i < input.size(); ++i) {
    // Extend the window with the next key byte (zero past the key end —
    // inputs longer than 36 bytes are not used by RSS).
    const u8 next_key = (i + 4 < kToeplitzKeyLen) ? key[i + 4] : 0;
    window = (window << 8) | next_key;
    const u8 byte = input[i];
    for (int bit = 7; bit >= 0; --bit) {
      if (byte & (1u << bit)) {
        result ^= static_cast<u32>(window >> (bit + 1));
      }
    }
  }
  return result;
}

u32 toeplitz_v4_l4(const net::FiveTuple& t, const ToeplitzKey& key) noexcept {
  u8 input[12];
  net::store_be32(input, t.src_ip.host_order());
  net::store_be32(input + 4, t.dst_ip.host_order());
  net::store_be16(input + 8, t.src_port);
  net::store_be16(input + 10, t.dst_port);
  return toeplitz(std::span<const u8>{input, sizeof(input)}, key);
}

u32 toeplitz_v4(const net::FiveTuple& t, const ToeplitzKey& key) noexcept {
  u8 input[8];
  net::store_be32(input, t.src_ip.host_order());
  net::store_be32(input + 4, t.dst_ip.host_order());
  return toeplitz(std::span<const u8>{input, sizeof(input)}, key);
}

ToeplitzLut::ToeplitzLut(const ToeplitzKey& key) noexcept {
  // table_[i][b] = toeplitz of a 12-byte input whose only non-zero byte is
  // input[i] = b; linearity makes the full hash the XOR of the entries.
  u8 probe[kInputLen] = {};
  for (std::size_t i = 0; i < kInputLen; ++i) {
    for (u32 b = 0; b < 256; ++b) {
      probe[i] = static_cast<u8>(b);
      table_[i][b] = toeplitz(std::span<const u8>{probe, kInputLen}, key);
    }
    probe[i] = 0;
  }
}

u32 ToeplitzLut::v4_l4(const net::FiveTuple& t) const noexcept {
  u8 input[kInputLen];
  net::store_be32(input, t.src_ip.host_order());
  net::store_be32(input + 4, t.dst_ip.host_order());
  net::store_be16(input + 8, t.src_port);
  net::store_be16(input + 10, t.dst_port);
  return hash12(input);
}

u32 ToeplitzLut::v4(const net::FiveTuple& t) const noexcept {
  u8 input[kInputLen] = {};
  net::store_be32(input, t.src_ip.host_order());
  net::store_be32(input + 4, t.dst_ip.host_order());
  return hash12(input);
}

const ToeplitzLut& symmetric_toeplitz_lut() noexcept {
  static const ToeplitzLut lut(kSymmetricKey);
  return lut;
}

}  // namespace sprayer::hash

// Per-core Sprayer engine (paper Figure 4).
//
// Pure framework logic — classification, core picking, connection-packet
// redirection, batched NF dispatch, verdict handling, cycle accounting —
// with no knowledge of how it is driven. The simulator (core/middlebox.hpp)
// and the threaded executor (core/threaded.hpp) both drive this class
// through the ICorePort services interface.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/flow_table.hpp"
#include "core/nf.hpp"
#include "runtime/batch.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::core {

/// Services the execution platform provides to one core.
class ICorePort {
 public:
  virtual ~ICorePort() = default;

  /// Hand a connection-packet descriptor to another core's ring. Returns
  /// false when the destination ring is full (the engine then drops the
  /// packet — same as a NIC queue overflow).
  virtual bool transfer(CoreId dest, net::Packet* pkt) = 0;

  /// Hand a whole group of descriptors to one core's ring; returns how many
  /// were accepted (a prefix — the rest hit a full ring). The default loops
  /// over transfer(); batch-aware platforms override this with a single
  /// ring doorbell per call (§3.3: descriptors move "in batches").
  virtual u32 transfer_batch(CoreId dest, std::span<net::Packet* const> pkts) {
    u32 accepted = 0;
    for (net::Packet* pkt : pkts) {
      if (!transfer(dest, pkt)) break;
      ++accepted;
    }
    return accepted;
  }

  /// Transmit a processed packet (egress port derived from ingress).
  virtual void transmit(net::Packet* pkt) = 0;

  /// Transmit a whole verdict batch. The default loops over transmit();
  /// batch-aware platforms override it to pay the sink cost once per batch.
  virtual void transmit_batch(std::span<net::Packet* const> pkts) {
    for (net::Packet* pkt : pkts) transmit(pkt);
  }
};

struct CoreStats {
  u64 rx_packets = 0;         // polled from the NIC queue
  u64 regular_packets = 0;    // handed to regular_packets()
  u64 conn_local = 0;         // connection packets already on their core
  u64 conn_transferred_out = 0;
  u64 conn_foreign_in = 0;    // connection packets received over the ring
  u64 transfer_drops = 0;     // foreign ring full
  u64 nf_drops = 0;           // NF verdict: drop
  u64 tx_packets = 0;
  Cycles busy_cycles = 0;

  void merge(const CoreStats& o) noexcept {
    rx_packets += o.rx_packets;
    regular_packets += o.regular_packets;
    conn_local += o.conn_local;
    conn_transferred_out += o.conn_transferred_out;
    conn_foreign_in += o.conn_foreign_in;
    transfer_drops += o.transfer_drops;
    nf_drops += o.nf_drops;
    tx_packets += o.tx_packets;
    busy_cycles += o.busy_cycles;
  }
};

/// Telemetry handles the executor hands one engine (all handles no-op when
/// unset, so a SimMiddlebox-driven or telemetry-off engine pays nothing).
struct EngineTelemetry {
  u32 shard = 0;  // registry shard owned by this engine's worker
  telemetry::Counter flush_calls;    // non-empty transfer-stage flushes
  telemetry::Counter flush_packets;  // descriptors accepted by mesh rings
  telemetry::Counter flush_drops;    // descriptors a full ring rejected
};

class SprayerCore {
 public:
  SprayerCore(CoreId id, const SprayerConfig& cfg, bool stateless,
              INetworkFunction& nf, const CorePicker& picker, NfContext& ctx,
              ICorePort& port)
      : id_(id),
        cfg_(cfg),
        stateless_(stateless),
        nf_(nf),
        picker_(picker),
        ctx_(ctx),
        port_(port),
        transfer_stage_(cfg.num_cores) {
    SPRAYER_CHECK_MSG(cfg.num_cores <= 64,
                      "transfer dirty mask covers at most 64 cores");
  }

  [[nodiscard]] CoreId id() const noexcept { return id_; }
  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] CoreStats& stats() noexcept { return stats_; }

  void set_telemetry(EngineTelemetry t) noexcept { tm_ = t; }

  /// Process one batch polled from this core's NIC rx queue. Returns the
  /// cycles consumed. `now` is the batch start time (forwarded to the NF).
  Cycles process_rx(runtime::PacketBatch& batch, Time now);

  /// Process one batch of connection packets received from other cores'
  /// rings. Returns the cycles consumed.
  Cycles process_foreign(runtime::PacketBatch& batch, Time now);

  /// Flush every per-destination transfer staging buffer (one
  /// transfer_batch doorbell per non-empty destination). process_rx()
  /// already calls this at batch end; the executor also invokes it when a
  /// worker goes idle so staged descriptors can never strand.
  void flush_transfers();

 private:
  /// Run a handler over a batch, apply verdicts, transmit survivors.
  Cycles dispatch(runtime::PacketBatch& batch, Time now, bool connection);

  /// Flush one destination's staging buffer; drops (and frees) whatever
  /// the destination ring rejects.
  void flush_transfer_stage(CoreId dest);

  CoreId id_;
  const SprayerConfig& cfg_;
  bool stateless_;
  INetworkFunction& nf_;
  const CorePicker& picker_;
  NfContext& ctx_;
  ICorePort& port_;
  CoreStats stats_;
  EngineTelemetry tm_;
  BatchVerdicts verdicts_;
  // Per-destination connection-packet staging: accumulated during
  // process_rx(), flushed as one bulk ring operation per destination.
  // transfer_dirty_ bit d set <=> transfer_stage_[d] is non-empty, so a
  // flush touches only destinations that actually staged packets.
  std::vector<runtime::PacketBatch> transfer_stage_;
  u64 transfer_dirty_ = 0;
  // Verdict-partition scratch reused across dispatch() calls.
  runtime::PacketBatch tx_stage_;
  runtime::PacketBatch drop_stage_;
};

}  // namespace sprayer::core

// Per-core Sprayer engine (paper Figure 4).
//
// Pure framework logic — classification, core picking, connection-packet
// redirection, batched NF dispatch, verdict handling, cycle accounting —
// with no knowledge of how it is driven. The simulator (core/middlebox.hpp)
// and the threaded executor (core/threaded.hpp) both drive this class
// through the ICorePort services interface.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/relaxed.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/chain.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/flow_table.hpp"
#include "core/nf.hpp"
#include "runtime/batch.hpp"
#include "state/sync.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::telemetry {
class FlowRecorder;  // telemetry/flow_export.hpp
}

namespace sprayer::core {

class HeavyHitterSketch;  // core/adaptive_spray.hpp

/// Services the execution platform provides to one core.
class ICorePort {
 public:
  virtual ~ICorePort() = default;

  /// Hand a connection-packet descriptor to another core's ring. Returns
  /// false when the destination ring is full (the engine then drops the
  /// packet — same as a NIC queue overflow).
  virtual bool transfer(CoreId dest, net::Packet* pkt) = 0;

  /// Hand a whole group of descriptors to one core's ring; returns how many
  /// were accepted (a prefix — the rest hit a full ring). The default loops
  /// over transfer(); batch-aware platforms override this with a single
  /// ring doorbell per call (§3.3: descriptors move "in batches").
  virtual u32 transfer_batch(CoreId dest, std::span<net::Packet* const> pkts) {
    u32 accepted = 0;
    for (net::Packet* pkt : pkts) {
      if (!transfer(dest, pkt)) break;
      ++accepted;
    }
    return accepted;
  }

  /// Transmit a processed packet (egress port derived from ingress).
  virtual void transmit(net::Packet* pkt) = 0;

  /// Transmit a whole verdict batch. The default loops over transmit();
  /// batch-aware platforms override it to pay the sink cost once per batch.
  virtual void transmit_batch(std::span<net::Packet* const> pkts) {
    for (net::Packet* pkt : pkts) transmit(pkt);
  }
};

/// Per-core counters. Each field is a single-writer relaxed cell (only the
/// owning worker mutates it) so total_stats()/stats() may be read from any
/// thread while workers run: values are untorn, loosely consistent across
/// fields, exact at quiescence — the telemetry-cell discipline (DESIGN.md §9).
struct CoreStats {
  RelaxedU64 rx_packets;         // polled from the NIC queue
  RelaxedU64 regular_packets;    // handed to regular_packets()
  RelaxedU64 conn_local;         // connection packets already on their core
  RelaxedU64 conn_transferred_out;
  RelaxedU64 conn_foreign_in;    // connection packets received over the ring
  RelaxedU64 transfer_drops;     // conn descriptors lost (teardown only: the
                                 // lossless redirect path retries, never drops)
  RelaxedU64 transfer_retries;   // conn descriptors re-offered after a
                                 // mesh-ring rejection (each offer counts)
  RelaxedU64 nf_drops;           // NF verdict: drop
  RelaxedU64 tx_packets;
  RelaxedU64 busy_cycles;

  void merge(const CoreStats& o) noexcept {
    rx_packets += o.rx_packets;
    regular_packets += o.regular_packets;
    conn_local += o.conn_local;
    conn_transferred_out += o.conn_transferred_out;
    conn_foreign_in += o.conn_foreign_in;
    transfer_drops += o.transfer_drops;
    transfer_retries += o.transfer_retries;
    nf_drops += o.nf_drops;
    tx_packets += o.tx_packets;
    busy_cycles += o.busy_cycles;
  }
};

/// Telemetry handles the executor hands one engine (all handles no-op when
/// unset, so a SimMiddlebox-driven or telemetry-off engine pays nothing).
struct EngineTelemetry {
  u32 shard = 0;  // registry shard owned by this engine's worker
  telemetry::Counter flush_calls;    // non-empty transfer-stage flushes
  telemetry::Counter flush_packets;  // descriptors accepted by mesh rings
  telemetry::Counter flush_drops;    // descriptors lost (teardown release only)
  telemetry::Counter retry_packets;  // descriptors re-offered after rejection
  telemetry::Counter pending_hwm;    // kGaugeMax: parked-descriptor backlog
  telemetry::Histogram retry_rounds;  // flush rounds a parked cohort needed
};

class SprayerCore {
 public:
  /// `hop_ctxs` holds one NfContext per chain hop, all for core `id`; the
  /// span (and its contexts) must outlive the engine. `stateless` disables
  /// connection-packet redirection (true only when every hop is stateless).
  SprayerCore(CoreId id, const SprayerConfig& cfg, bool stateless,
              IChain& chain, const CorePicker& picker,
              std::span<NfContext* const> hop_ctxs, ICorePort& port)
      : id_(id),
        cfg_(cfg),
        stateless_(stateless),
        chain_(chain),
        picker_(picker),
        hop_ctxs_(hop_ctxs),
        port_(port),
        transfer_stage_(cfg.num_cores),
        transfer_pending_(cfg.num_cores) {
    SPRAYER_CHECK_MSG(cfg.num_cores <= 64,
                      "transfer dirty mask covers at most 64 cores");
    SPRAYER_CHECK_MSG(hop_ctxs_.size() == chain_.num_hops(),
                      "one NfContext per chain hop");
  }

  [[nodiscard]] CoreId id() const noexcept { return id_; }
  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] CoreStats& stats() noexcept { return stats_; }

  void set_telemetry(EngineTelemetry t) noexcept { tm_ = t; }

  /// Adaptive spraying: this core's heavy-hitter sketch, fed one update per
  /// polled rx packet with a memoized flow hash (single-writer: only this
  /// engine's worker calls update). Null (default) skips the accounting.
  void set_flow_sketch(HeavyHitterSketch* sketch) noexcept {
    sketch_ = sketch;
  }

  /// Flow export: this core's flow-record table, fed one account() per
  /// polled rx packet (single-writer, same contract as the sketch). Foreign
  /// batches are NOT re-accounted — a transferred connection packet was
  /// already counted at its original rx poll. Null (default) skips it.
  void set_flow_recorder(telemetry::FlowRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Strategy hook (DESIGN.md §14): false routes connection packets to
  /// their *arrival* core's connection handler instead of redirecting to
  /// the designated core — the shared-locked baseline has no write
  /// partition to honor. Default true (writing partition / replication).
  void set_conn_redirect(bool redirect) noexcept { conn_redirect_ = redirect; }

  /// Replication hook: this core's sync runtime. When set, the engine
  /// harvests the op log into sync frames after every dispatch round and
  /// broadcasts them over the mesh (counted in conn_transferred_out — the
  /// frames ride the same staging/doorbell/park machinery as redirected
  /// connection packets), and peels received sync frames out of foreign
  /// batches and replays them. Null (default) disables all of it.
  void set_state_runtime(state::SyncRuntime* rt) noexcept { sync_ = rt; }

  /// Harvest + broadcast any pending replication ops now (then flush the
  /// mesh stages). The executor calls this from the worker after
  /// housekeeping, whose expiries would otherwise sit in the log until the
  /// next packet. No-op unless a sync runtime is attached.
  void flush_state_sync() {
    if (sync_ == nullptr) return;
    stats_.busy_cycles += harvest_state_sync();
    flush_transfers();
  }

  /// Process one batch polled from this core's NIC rx queue. Returns the
  /// cycles consumed. `now` is the batch start time (forwarded to the NF).
  Cycles process_rx(runtime::PacketBatch& batch, Time now);

  /// Process one batch of connection packets received from other cores'
  /// rings. Returns the cycles consumed.
  Cycles process_foreign(runtime::PacketBatch& batch, Time now);

  /// Flush every per-destination transfer staging buffer (one
  /// transfer_batch doorbell per non-empty destination). process_rx()
  /// already calls this at batch end; the executor also invokes it when a
  /// worker goes idle so staged descriptors can never strand. Descriptors a
  /// full ring rejects are parked and re-offered on the next flush — the
  /// lossless-redirect invariant: a connection packet accepted at the rx
  /// boundary is never dropped on its way to the designated core.
  void flush_transfers();

  /// Connection-packet descriptors currently parked awaiting a mesh-ring
  /// retry (staged-but-unflushed descriptors are not counted). Readable
  /// from any thread; the executor's wait_idle() polls it.
  [[nodiscard]] u32 pending_transfers() const noexcept {
    return pending_count_.load(std::memory_order_relaxed);
  }

  /// Teardown only: free every staged and parked descriptor (counted in
  /// CoreStats::transfer_drops — the one place the lossless path may still
  /// lose packets, when the executor is stopped mid-overload). Returns how
  /// many were freed. Not thread-safe against a running worker.
  u32 release_stranded();

 private:
  /// Per-destination overflow queue for descriptors a full mesh ring
  /// rejected: contiguous (so a whole backlog re-offers as one span), FIFO
  /// (retries precede newly staged packets — connection-packet order within
  /// a flow is what makes SYN-before-FIN hold).
  struct PendingQueue {
    std::vector<net::Packet*> buf;
    std::size_t head = 0;
    u32 rounds = 0;  // flush rounds this backlog has survived

    [[nodiscard]] u32 size() const noexcept {
      return static_cast<u32>(buf.size() - head);
    }
    [[nodiscard]] std::span<net::Packet* const> view() const noexcept {
      return {buf.data() + head, buf.size() - head};
    }
    void consume(u32 n) noexcept {
      head += n;
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      }
    }
    void append(std::span<net::Packet* const> pkts) {
      buf.insert(buf.end(), pkts.begin(), pkts.end());
    }
  };

  /// Run the whole chain over a batch (run-to-completion), free drops,
  /// transmit survivors.
  Cycles dispatch(runtime::PacketBatch& batch, Time now, bool connection);

  /// Flush one destination's staging buffer (parked backlog first); parks
  /// whatever the destination ring rejects after the bounded spin.
  void flush_transfer_stage(CoreId dest);

  /// Offer `pkts` to `dest` with up to transfer_retry_spin immediate
  /// re-offers; returns how many were accepted (prefix).
  u32 offer_with_spin(CoreId dest, std::span<net::Packet* const> pkts,
                      bool is_retry);

  /// Replication: serialize the pending op log and stage one sync frame
  /// per chunk per peer core. All-or-nothing: if the pool can't supply
  /// every frame, nothing is staged and the log is kept for the next
  /// flush (a partial broadcast would diverge replicas). Returns the
  /// modeled cycles spent.
  Cycles harvest_state_sync();

  /// Replication: replay and remove the sync frames of a foreign batch
  /// (freeing them), leaving only real connection packets. Returns the
  /// modeled cycles of the replayed ops.
  Cycles absorb_sync_frames(runtime::PacketBatch& batch);

  void set_pending_count(u32 n) noexcept {
    pending_count_.store(n, std::memory_order_relaxed);
    if (n > 0) tm_.pending_hwm.record_max(tm_.shard, n);
  }

  CoreId id_;
  const SprayerConfig& cfg_;
  bool stateless_;
  IChain& chain_;
  const CorePicker& picker_;
  std::span<NfContext* const> hop_ctxs_;
  ICorePort& port_;
  CoreStats stats_;
  EngineTelemetry tm_;
  HeavyHitterSketch* sketch_ = nullptr;
  telemetry::FlowRecorder* recorder_ = nullptr;
  bool conn_redirect_ = true;
  state::SyncRuntime* sync_ = nullptr;
  // Last pool seen on the rx/foreign path — sync frames borrow from it.
  net::PacketPool* sync_pool_ = nullptr;
  std::vector<net::Packet*> sync_frame_scratch_;
  // Per-engine chain scratch (verdict sheet + shared batch metadata): the
  // chain object itself is shared across cores and holds no per-batch state.
  ChainScratch scratch_;
  // Per-destination connection-packet staging: accumulated during
  // process_rx(), flushed as one bulk ring operation per destination.
  // transfer_dirty_ bit d set <=> transfer_stage_[d] is non-empty, so a
  // flush touches only destinations that actually staged packets.
  std::vector<runtime::PacketBatch> transfer_stage_;
  u64 transfer_dirty_ = 0;
  // Parked descriptors per destination (mesh ring was full at flush time).
  // The total is mirrored in pending_count_ for cross-thread idle checks.
  std::vector<PendingQueue> transfer_pending_;
  std::atomic<u32> pending_count_{0};
  // Dropped-packet accumulator reused across dispatch() calls (survivors
  // stay in the caller's batch — chain hops compact in place).
  runtime::PacketBatch drop_stage_;
};

}  // namespace sprayer::core

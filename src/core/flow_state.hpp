// The flow-state API exposed to NFs — exactly the paper's Table 2:
//
//   insert_local_flow(flow_id)   insert entry in local table
//   remove_local_flow(flow_id)   remove entry from local table
//   get_local_flow(flow_id)      modifiable entry from local table
//   get_flow(flow_id)            const entry from its designated core
//   get_flows(flow_ids...)       batched get_flow (the "optimized version")
//
// Writing partition is *enforced* here: inserting or removing a flow whose
// designated core is not the calling core throws. Every call charges its
// modeled CPU cost to the calling core.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/flow_table.hpp"

namespace sprayer::core {

/// Observed flow-state access pattern, split by handler context — the
/// instrumentation behind the Table 1 reproduction ("R/RW at every packet
/// vs. at flow events").
struct FlowAccessStats {
  u64 reads_in_regular = 0;    // get_flow/get_flows from regular_packets
  u64 reads_in_connection = 0;
  u64 writes_in_regular = 0;   // insert/remove/get_local from regular_packets
  u64 writes_in_connection = 0;

  void merge(const FlowAccessStats& o) noexcept {
    reads_in_regular += o.reads_in_regular;
    reads_in_connection += o.reads_in_connection;
    writes_in_regular += o.writes_in_regular;
    writes_in_connection += o.writes_in_connection;
  }
};

class FlowStateApi {
 public:
  using FlowHash = FlowTable::FlowHash;

  FlowStateApi(CoreId core, std::span<FlowTable* const> tables,
               const CorePicker& picker, const CostModel& costs,
               Cycles& cycle_sink) noexcept
      : core_(core),
        tables_(tables.begin(), tables.end()),
        picker_(picker),
        costs_(costs),
        cycles_(cycle_sink) {}

  [[nodiscard]] CoreId core() const noexcept { return core_; }
  [[nodiscard]] u32 num_cores() const noexcept {
    return static_cast<u32>(tables_.size());
  }

  /// Designated core of a flow (symmetric: both directions agree).
  [[nodiscard]] CoreId designated_core(
      const net::FiveTuple& flow_id) const noexcept {
    return picker_.pick(flow_id);
  }

  /// Same, from the flow's memoized symmetric hash (Packet::flow_hash()).
  [[nodiscard]] CoreId designated_core(FlowHash hash) const noexcept {
    return picker_.pick_hash(hash);
  }

  /// Insert a flow entry in the local table; returns the zeroed entry (or
  /// the existing one), nullptr when the table is full. Throws if this core
  /// is not the flow's designated core (writing-partition violation).
  [[nodiscard]] void* insert_local_flow(const net::FiveTuple& flow_id) {
    return insert_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] void* insert_local_flow(const net::FiveTuple& flow_id,
                                        FlowHash hash) {
    SPRAYER_CHECK_MSG(designated_core(hash) == core_,
                      "writing-partition violation: insert_local_flow on "
                      "non-designated core for " + flow_id.to_string());
    cycles_ += costs_.flow_insert;
    count_write();
    return local().insert(flow_id, hash);
  }

  /// Remove a flow entry from the local table.
  bool remove_local_flow(const net::FiveTuple& flow_id) {
    return remove_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  bool remove_local_flow(const net::FiveTuple& flow_id, FlowHash hash) {
    SPRAYER_CHECK_MSG(designated_core(hash) == core_,
                      "writing-partition violation: remove_local_flow on "
                      "non-designated core for " + flow_id.to_string());
    cycles_ += costs_.flow_remove;
    count_write();
    return local().remove(flow_id, hash);
  }

  /// Modifiable entry from the local table; nullptr if absent.
  [[nodiscard]] void* get_local_flow(const net::FiveTuple& flow_id) {
    return get_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] void* get_local_flow(const net::FiveTuple& flow_id,
                                     FlowHash hash) {
    cycles_ += costs_.flow_lookup_local;
    count_write();  // returns a mutable entry: counted as write access
    return local().find_local(flow_id, hash);
  }

  /// Read-only entry from the flow's designated core; nullptr if absent.
  /// The constness is the paper's contract: only the designated core may
  /// write (casting it away is the same undefined behavior the paper warns
  /// about).
  [[nodiscard]] const void* get_flow(const net::FiveTuple& flow_id) {
    return get_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] const void* get_flow(const net::FiveTuple& flow_id,
                                     FlowHash hash) {
    const CoreId dest = designated_core(hash);
    cycles_ += (dest == core_) ? costs_.flow_lookup_local
                               : costs_.flow_lookup_remote;
    count_read();
    return tables_[dest]->find_remote(flow_id, hash);
  }

  /// Batched get_flow: amortizes hashing and pipelines the tables' cache
  /// misses with software prefetch (FlowTable::find_batch), so each lookup
  /// is charged the cheaper batched cost. out[i] is nullptr for absent
  /// flows. `hashes[i]` must be hash_of(flow_ids[i]) — typically the
  /// packets' memoized rx-descriptor hashes.
  void get_flows(std::span<const net::FiveTuple> flow_ids,
                 std::span<const FlowHash> hashes, std::span<const void*> out);

  /// Convenience overload that hashes the keys itself.
  void get_flows(std::span<const net::FiveTuple> flow_ids,
                 std::span<const void*> out);

  /// Ablation knob (SprayerConfig::bulk_flow_lookup): when disabled,
  /// get_flows degrades to the scalar per-lookup path with per-lookup costs.
  void set_bulk_enabled(bool enabled) noexcept { bulk_enabled_ = enabled; }
  [[nodiscard]] bool bulk_enabled() const noexcept { return bulk_enabled_; }

  /// Snapshot-consistent copy of a (possibly remote) flow entry.
  [[nodiscard]] bool read_flow(const net::FiveTuple& flow_id,
                               std::span<u8> out) {
    return read_flow(flow_id, FlowTable::hash_of(flow_id), out);
  }
  [[nodiscard]] bool read_flow(const net::FiveTuple& flow_id, FlowHash hash,
                               std::span<u8> out) {
    const CoreId dest = designated_core(hash);
    cycles_ += (dest == core_) ? costs_.flow_lookup_local
                               : costs_.flow_lookup_remote;
    return tables_[dest]->read_consistent(flow_id, hash, out);
  }

  [[nodiscard]] FlowTable& local() noexcept { return *tables_[core_]; }
  [[nodiscard]] const FlowTable& table(CoreId c) const noexcept {
    return *tables_[c];
  }

  /// Framework side: set by the engine before invoking a handler.
  void set_in_connection_handler(bool v) noexcept { in_conn_ = v; }
  [[nodiscard]] const FlowAccessStats& access_stats() const noexcept {
    return access_;
  }

 private:
  void count_read() noexcept {
    (in_conn_ ? access_.reads_in_connection : access_.reads_in_regular)++;
  }
  void count_write() noexcept {
    (in_conn_ ? access_.writes_in_connection : access_.writes_in_regular)++;
  }

  CoreId core_;
  std::vector<FlowTable*> tables_;
  const CorePicker& picker_;
  const CostModel& costs_;
  Cycles& cycles_;
  bool in_conn_ = false;
  bool bulk_enabled_ = true;
  FlowAccessStats access_;
};

}  // namespace sprayer::core

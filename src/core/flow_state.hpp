// The flow-state API exposed to NFs — exactly the paper's Table 2:
//
//   insert_local_flow(flow_id)   insert entry in local table
//   remove_local_flow(flow_id)   remove entry from local table
//   get_local_flow(flow_id)      modifiable entry from local table
//   get_flow(flow_id)            const entry from its designated core
//   get_flows(flow_ids...)       batched get_flow (the "optimized version")
//
// The API is the data plane of whichever state strategy (state/strategy.hpp,
// DESIGN.md §14) the middlebox was built with; dispatch is an inline switch
// on the strategy kind, never virtual, so the default writing-partition
// path compiles to the code it always was:
//
//   * writing-partition — inserts/removes/mutations must happen on the
//     flow's designated core (*enforced*: a violation throws); reads reach
//     into the owner's table lock-free.
//   * replication — the same designated-core discipline for writes (the
//     designated core is the replication sequencer), but every mutation is
//     also logged for sync-frame broadcast, and every read is served from
//     the local replica — no cross-core table access on the regular path.
//   * shared-locked — one shared table: writes take every lock stripe,
//     reads take the key's stripe and copy the entry out under it.
//
// Every call charges its modeled CPU cost to the calling core.
//
// Lifecycle (DESIGN.md §15): the API maintains each entry's inline
// `last_seen` stamp — writes and local lookups touch it outright, read
// paths touch it at a coarse granularity to avoid cache-line ping-pong on
// remote tables — and sweep_idle() drives the table's cursor-bounded group
// sweep, gating expiry on owns_flow_events() so strategies whose tables
// hold ALL flows (replication replicas, the shared table) expire each flow
// exactly once, on its designated core.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/relaxed.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/flow_table.hpp"
#include "state/view.hpp"

namespace sprayer::core {

/// Observed flow-state access pattern, split by handler context — the
/// instrumentation behind the Table 1 reproduction ("R/RW at every packet
/// vs. at flow events").
struct FlowAccessStats {
  u64 reads_in_regular = 0;    // get_flow/get_flows from regular_packets
  u64 reads_in_connection = 0;
  u64 writes_in_regular = 0;   // insert/remove/get_local from regular_packets
  u64 writes_in_connection = 0;

  void merge(const FlowAccessStats& o) noexcept {
    reads_in_regular += o.reads_in_regular;
    reads_in_connection += o.reads_in_connection;
    writes_in_regular += o.writes_in_regular;
    writes_in_connection += o.writes_in_connection;
  }
};

/// Per-strategy access counters (single-writer cells; telemetry gauges may
/// read them while workers run).
struct StrategyCounters {
  RelaxedU64 remote_reads;          // writing-partition: cross-core lookups
  RelaxedU64 remote_reads_avoided;  // replication: foreign-designated flows
                                    // served from the local replica
  RelaxedU64 lock_acquisitions;     // shared-locked: one per locked API call
};

/// One sweep_idle() call's worth of work, for housekeeping telemetry.
struct SweepStats {
  u32 groups = 0;   // tag groups scanned this call
  u32 expired = 0;  // entries handed to on_expire
};

class FlowStateApi {
 public:
  using FlowHash = FlowTable::FlowHash;

  /// Read-path stamp refresh granularity: a flow's last_seen is only
  /// re-stored by a read when it is at least this stale, so a hot remotely-
  /// read flow costs its owner at most one stamp store per millisecond
  /// instead of one cache-line invalidation per packet.
  static constexpr Time kTouchGranularity = kMillisecond;

  FlowStateApi(CoreId core, std::span<FlowTable* const> tables,
               const CorePicker& picker, const CostModel& costs,
               Cycles& cycle_sink) noexcept
      : core_(core),
        tables_(tables.begin(), tables.end()),
        picker_(picker),
        costs_(costs),
        cycles_(cycle_sink) {}

  /// Attach the strategy view (executors call this right after building
  /// contexts; the default-constructed view is plain writing partition, so
  /// standalone uses — unit tests driving NfContext directly — need not).
  void configure_strategy(const state::CoreStateView& view) {
    strat_ = view;
    if (strat_.kind == state::StateStrategyKind::kSharedLocked &&
        !tables_.empty()) {
      // Copy-out ring for locked reads: entries are copied under the stripe
      // so a concurrent insert's slot reuse can't yank the bytes from under
      // the reader. Deep enough that one get_flows batch never wraps.
      scratch_entry_size_ = tables_[0]->entry_size();
      scratch_slots_ = 2 * state::StripedLock::kMaxStripes;
      locked_scratch_ = std::make_unique<u8[]>(
          static_cast<std::size_t>(scratch_slots_) * scratch_entry_size_);
    }
  }
  [[nodiscard]] state::StateStrategyKind state_kind() const noexcept {
    return strat_.kind;
  }
  [[nodiscard]] const char* strategy_name() const noexcept {
    return state::to_string(strat_.kind);
  }

  [[nodiscard]] CoreId core() const noexcept { return core_; }
  [[nodiscard]] u32 num_cores() const noexcept {
    return static_cast<u32>(tables_.size());
  }

  /// Designated core of a flow (symmetric: both directions agree). The
  /// definition is strategy-independent — it names the redirect target
  /// under writing partition, the sequencer under replication, and the
  /// housekeeping owner everywhere.
  [[nodiscard]] CoreId designated_core(
      const net::FiveTuple& flow_id) const noexcept {
    return picker_.pick(flow_id);
  }

  /// Same, from the flow's memoized symmetric hash (Packet::flow_hash()).
  [[nodiscard]] CoreId designated_core(FlowHash hash) const noexcept {
    return picker_.pick_hash(hash);
  }

  /// True when this core owns the flow's lifecycle events — housekeeping
  /// sweeps gate on it so strategies whose tables hold ALL flows
  /// (replication replicas, the shared-locked table) expire each flow
  /// exactly once instead of once per core.
  [[nodiscard]] bool owns_flow_events(FlowHash hash) const noexcept {
    return designated_core(hash) == core_;
  }
  [[nodiscard]] bool owns_flow_events(
      const net::FiveTuple& flow_id) const noexcept {
    return designated_core(flow_id) == core_;
  }

  /// Insert a flow entry; returns the zeroed entry (or the existing one),
  /// nullptr when the table is full. Under writing partition and
  /// replication this core must be the flow's designated core (violations
  /// throw, naming the active strategy and core).
  [[nodiscard]] void* insert_local_flow(const net::FiveTuple& flow_id) {
    return insert_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] void* insert_local_flow(const net::FiveTuple& flow_id,
                                        FlowHash hash) {
    SPRAYER_CHECK_MSG(may_write_flow(hash),
                      write_violation("insert_local_flow", flow_id, hash));
    cycles_ += costs_.flow_insert;
    count_write();
    void* e = nullptr;
    switch (strat_.kind) {
      case state::StateStrategyKind::kWritingPartition:
        e = local().insert(flow_id, hash);
        break;
      case state::StateStrategyKind::kReplication:
        e = local().insert(flow_id, hash);
        if (e != nullptr) strat_.log->record_upsert(flow_id, hash, strat_.hop);
        break;
      case state::StateStrategyKind::kSharedLocked:
        ++counters_.lock_acquisitions;
        strat_.lock->lock_all();
        e = local().insert(flow_id, hash);
        strat_.lock->unlock_all();
        break;
    }
    if (e != nullptr) FlowTable::touch(e, now_);
    return e;
  }

  /// Remove a flow entry.
  bool remove_local_flow(const net::FiveTuple& flow_id) {
    return remove_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  bool remove_local_flow(const net::FiveTuple& flow_id, FlowHash hash) {
    SPRAYER_CHECK_MSG(may_write_flow(hash),
                      write_violation("remove_local_flow", flow_id, hash));
    cycles_ += costs_.flow_remove;
    count_write();
    switch (strat_.kind) {
      case state::StateStrategyKind::kWritingPartition:
        return local().remove(flow_id, hash);
      case state::StateStrategyKind::kReplication: {
        const bool removed = local().remove(flow_id, hash);
        if (removed) strat_.log->record_remove(flow_id, hash, strat_.hop);
        return removed;
      }
      case state::StateStrategyKind::kSharedLocked: {
        ++counters_.lock_acquisitions;
        strat_.lock->lock_all();
        const bool removed = local().remove(flow_id, hash);
        strat_.lock->unlock_all();
        return removed;
      }
    }
    return false;
  }

  /// Modifiable entry from the local table; nullptr if absent. Under
  /// replication the mutation is logged: its final bytes ship to every
  /// replica at the next sync harvest.
  [[nodiscard]] void* get_local_flow(const net::FiveTuple& flow_id) {
    return get_local_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] void* get_local_flow(const net::FiveTuple& flow_id,
                                     FlowHash hash) {
    cycles_ += costs_.flow_lookup_local;
    count_write();  // returns a mutable entry: counted as write access
    void* e = nullptr;
    switch (strat_.kind) {
      case state::StateStrategyKind::kWritingPartition:
        e = local().find_local(flow_id, hash);
        break;
      case state::StateStrategyKind::kReplication:
        e = local().find_local(flow_id, hash);
        if (e != nullptr) strat_.log->record_upsert(flow_id, hash, strat_.hop);
        break;
      case state::StateStrategyKind::kSharedLocked:
        // The stripe only guards the probe; the returned pointer is mutated
        // after release. Two cores mutating the same flow's entry race —
        // the strawman's inherent unsoundness (DESIGN.md §14), which the
        // writing partition and replication exist to remove.
        ++counters_.lock_acquisitions;
        strat_.lock->lock_stripe(hash);
        e = local().find_local(flow_id, hash);
        strat_.lock->unlock_stripe(hash);
        break;
    }
    if (e != nullptr) FlowTable::touch(e, now_);
    return e;
  }

  /// Read-only entry lookup; nullptr if absent. Writing partition reads the
  /// designated core's table (the constness is the paper's contract: only
  /// the designated core may write); replication reads the local replica;
  /// shared-locked copies the entry out under the key's stripe.
  [[nodiscard]] const void* get_flow(const net::FiveTuple& flow_id) {
    return get_flow(flow_id, FlowTable::hash_of(flow_id));
  }
  [[nodiscard]] const void* get_flow(const net::FiveTuple& flow_id,
                                     FlowHash hash) {
    count_read();
    switch (strat_.kind) {
      case state::StateStrategyKind::kWritingPartition: {
        const CoreId dest = designated_core(hash);
        if (dest == core_) {
          cycles_ += costs_.flow_lookup_local;
        } else {
          cycles_ += costs_.flow_lookup_remote;
          ++counters_.remote_reads;
        }
        const void* e = tables_[dest]->find_remote(flow_id, hash);
        if (e != nullptr) FlowTable::touch_if_stale(e, now_, kTouchGranularity);
        return e;
      }
      case state::StateStrategyKind::kReplication: {
        cycles_ += costs_.flow_lookup_local;
        if (designated_core(hash) != core_) ++counters_.remote_reads_avoided;
        const void* e = local().find_remote(flow_id, hash);
        if (e != nullptr) FlowTable::touch_if_stale(e, now_, kTouchGranularity);
        return e;
      }
      case state::StateStrategyKind::kSharedLocked:
        cycles_ += costs_.flow_lookup_remote;
        return locked_copy_out(flow_id, hash);
    }
    return nullptr;
  }

  /// Batched get_flow: amortizes hashing and pipelines the tables' cache
  /// misses with software prefetch (FlowTable::find_batch), so each lookup
  /// is charged the cheaper batched cost. out[i] is nullptr for absent
  /// flows. `hashes[i]` must be hash_of(flow_ids[i]) — typically the
  /// packets' memoized rx-descriptor hashes. Shared-locked cannot pipeline
  /// across stripes and degrades to locked scalar lookups.
  void get_flows(std::span<const net::FiveTuple> flow_ids,
                 std::span<const FlowHash> hashes, std::span<const void*> out);

  /// Convenience overload that hashes the keys itself.
  void get_flows(std::span<const net::FiveTuple> flow_ids,
                 std::span<const void*> out);

  /// Ablation knob (SprayerConfig::bulk_flow_lookup): when disabled,
  /// get_flows degrades to the scalar per-lookup path with per-lookup costs.
  void set_bulk_enabled(bool enabled) noexcept { bulk_enabled_ = enabled; }
  [[nodiscard]] bool bulk_enabled() const noexcept { return bulk_enabled_; }

  /// Snapshot-consistent copy of a (possibly remote) flow entry.
  [[nodiscard]] bool read_flow(const net::FiveTuple& flow_id,
                               std::span<u8> out) {
    return read_flow(flow_id, FlowTable::hash_of(flow_id), out);
  }
  [[nodiscard]] bool read_flow(const net::FiveTuple& flow_id, FlowHash hash,
                               std::span<u8> out) {
    switch (strat_.kind) {
      case state::StateStrategyKind::kWritingPartition: {
        const CoreId dest = designated_core(hash);
        cycles_ += (dest == core_) ? costs_.flow_lookup_local
                                   : costs_.flow_lookup_remote;
        return tables_[dest]->read_consistent(flow_id, hash, out);
      }
      case state::StateStrategyKind::kReplication:
        cycles_ += costs_.flow_lookup_local;
        if (designated_core(hash) != core_) ++counters_.remote_reads_avoided;
        return local().read_consistent(flow_id, hash, out);
      case state::StateStrategyKind::kSharedLocked: {
        cycles_ += costs_.flow_lookup_remote;
        ++counters_.lock_acquisitions;
        strat_.lock->lock_stripe(hash);
        const bool ok = local().read_consistent(flow_id, hash, out);
        strat_.lock->unlock_stripe(hash);
        return ok;
      }
    }
    return false;
  }

  /// This core's table: the owned shard (writing partition), the full
  /// replica (replication), or the one shared table (shared-locked).
  [[nodiscard]] FlowTable& local() noexcept { return *tables_[core_]; }
  [[nodiscard]] const FlowTable& table(CoreId c) const noexcept {
    return *tables_[c];
  }

  /// Framework side: the engine advances the API's clock before invoking a
  /// handler; every stamp touch and expiry decision uses this value.
  void set_now(Time now) noexcept { now_ = now; }
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// One bounded increment of the idle-aging sweep over this core's local
  /// table (the owned shard, the full replica, or the shared table — each
  /// core keeps its own cursor). Scans up to `max_groups` tag groups,
  /// collects entries for which `pred(key, entry, last_seen)` returns true
  /// AND this core owns the flow's lifecycle events, then invokes
  /// `on_expire(key, hash)` for each — after the scan, so the hook may
  /// freely mutate the table (remove the flow, its NAT pair, ...). At most
  /// kSweepCandidates expire per call; the rest are caught on the next
  /// rotation.
  static constexpr u32 kSweepCandidates = 256;
  /// Shared-locked scan gate: other cores mutate entry bytes outside any
  /// lock (the strawman's torn-read contract), so the sweep only
  /// dereferences entries that have been write-quiescent for this long.
  /// Every write path touches the stamp first, and each core's per-tick
  /// lock_all round (below) orders writes that old before this scan's
  /// acquire — several housekeeping intervals with margin.
  static constexpr Time kSharedSweepQuiescence = 40 * kMillisecond;
  template <typename Pred, typename Expire>
  SweepStats sweep_idle(u32 max_groups, Pred&& pred, Expire&& on_expire) {
    struct Candidate {
      net::FiveTuple key;
      FlowHash hash;
    };
    std::array<Candidate, kSweepCandidates> cand;
    u32 n = 0;
    SweepStats st;
    // Shared-locked: hold every stripe for the scan so slot/tag/key reads
    // (and the predicate's pair probes) are ordered against structural
    // writers; the other strategies scan their own table lock-free.
    const bool shared = strat_.kind == state::StateStrategyKind::kSharedLocked;
    if (shared) {
      ++counters_.lock_acquisitions;
      strat_.lock->lock_all();
    }
    st.groups = local().sweep_groups(
        sweep_cursor_, max_groups,
        [&](const net::FiveTuple& key, void* entry, Time last_seen) {
          if (n >= cand.size()) return;
          if (shared && last_seen + kSharedSweepQuiescence > now_) return;
          if (!pred(key, static_cast<const void*>(entry), last_seen)) return;
          // Hash only the expiry candidates (the Toeplitz LUT is too dear
          // to run per live slot), then gate on event ownership so tables
          // holding all flows expire each one exactly once system-wide.
          const FlowHash h = FlowTable::hash_of(key);
          if (!owns_flow_events(h)) return;
          cand[n++] = Candidate{key, h};
        });
    if (shared) strat_.lock->unlock_all();
    for (u32 i = 0; i < n; ++i) on_expire(cand[i].key, cand[i].hash);
    st.expired = n;
    return st;
  }

  /// Framework side: set by the engine before invoking a handler.
  void set_in_connection_handler(bool v) noexcept { in_conn_ = v; }
  [[nodiscard]] const FlowAccessStats& access_stats() const noexcept {
    return access_;
  }
  [[nodiscard]] const StrategyCounters& strategy_counters() const noexcept {
    return counters_;
  }

 private:
  [[nodiscard]] bool may_write_flow(FlowHash hash) const noexcept {
    // Shared-locked has no write partition: flow events run wherever the
    // packet arrived and the lock serializes structure.
    return strat_.kind == state::StateStrategyKind::kSharedLocked ||
           designated_core(hash) == core_;
  }

  /// Satellite of DESIGN.md §14: violations name the active strategy and
  /// the cores involved, so a replication misconfiguration is not
  /// misreported as a "writing-partition violation".
  [[nodiscard]] std::string write_violation(const char* op,
                                            const net::FiveTuple& flow_id,
                                            FlowHash hash) const {
    return std::string("state[") + strategy_name() + "] violation: " + op +
           " on core " + std::to_string(core_) + ", but core " +
           std::to_string(designated_core(hash)) +
           " is the designated core for " + flow_id.to_string();
  }

  /// Shared-locked read: copy the entry into the scratch ring under the
  /// key's stripe (pointer-stable against concurrent slot reuse; the copy
  /// itself may still observe a torn in-place update, the same torn-read
  /// contract find_remote documents).
  [[nodiscard]] const void* locked_copy_out(const net::FiveTuple& flow_id,
                                            FlowHash hash) {
    ++counters_.lock_acquisitions;
    strat_.lock->lock_stripe(hash);
    const void* e = local().find_remote(flow_id, hash);
    if (e != nullptr) {
      // Touch the real entry (not the copy the caller sees) so the sweep on
      // the designated core sees the activity.
      FlowTable::touch_if_stale(e, now_, kTouchGranularity);
      u8* slot = locked_scratch_.get() +
                 static_cast<std::size_t>(scratch_next_) * scratch_entry_size_;
      std::memcpy(slot, e, scratch_entry_size_);
      scratch_next_ = (scratch_next_ + 1) % scratch_slots_;
      e = slot;
    }
    strat_.lock->unlock_stripe(hash);
    return e;
  }

  void count_read() noexcept {
    (in_conn_ ? access_.reads_in_connection : access_.reads_in_regular)++;
  }
  void count_write() noexcept {
    (in_conn_ ? access_.writes_in_connection : access_.writes_in_regular)++;
  }

  CoreId core_;
  std::vector<FlowTable*> tables_;
  const CorePicker& picker_;
  const CostModel& costs_;
  Cycles& cycles_;
  Time now_ = 0;
  u64 sweep_cursor_ = 0;
  bool in_conn_ = false;
  bool bulk_enabled_ = true;
  state::CoreStateView strat_;
  // Shared-locked copy-out ring (see locked_copy_out).
  std::unique_ptr<u8[]> locked_scratch_;
  u32 scratch_entry_size_ = 0;
  u32 scratch_slots_ = 0;
  u32 scratch_next_ = 0;
  FlowAccessStats access_;
  StrategyCounters counters_;
};

/// The one definition of the designated-core port-claim rule, shared by
/// NAT's allocator and anything else that must pick a translated tuple
/// landing on a particular core: claim a source port for `probe` such that
/// the translated flow's *return* direction hashes to designated core
/// `target`. Routing NAT through this helper (instead of a hand-rolled
/// predicate next to the PortPool) is what keeps "designated" from
/// drifting between the state strategies and the port allocator — under
/// replication and shared-locked, every replica/core must derive the same
/// port for the same flow or state diverges. `pool` needs
/// claim_matching(pred) (nf::PortPool's shape; templated so core/ does not
/// depend on nf/).
template <typename Pool>
[[nodiscard]] u16 claim_port_for_designated(Pool& pool, net::FiveTuple probe,
                                            const FlowStateApi& flows,
                                            CoreId target) {
  return pool.claim_matching([&probe, &flows, target](u16 candidate) noexcept {
    probe.src_port = candidate;
    return flows.designated_core(probe.reversed()) == target;
  });
}

}  // namespace sprayer::core

#include "core/engine.hpp"

#include "net/packet_pool.hpp"

namespace sprayer::core {

Cycles SprayerCore::process_rx(runtime::PacketBatch& batch, Time now) {
  const CostModel& costs = cfg_.costs;
  Cycles cycles = costs.batch_overhead;
  stats_.rx_packets += batch.size();

  runtime::PacketBatch conn_local;
  runtime::PacketBatch regular;

  for (net::Packet* pkt : batch) {
    cycles += costs.classify_per_packet;
    if (stateless_ || !pkt->is_tcp() || !pkt->is_connection_packet()) {
      regular.push(pkt);
      continue;
    }
    // Connection packet: route to its designated core.
    const CoreId dest = picker_.pick(pkt->five_tuple());
    if (dest == id_) {
      conn_local.push(pkt);
      ++stats_.conn_local;
    } else {
      cycles += costs.transfer_enqueue;
      if (port_.transfer(dest, pkt)) {
        ++stats_.conn_transferred_out;
      } else {
        ++stats_.transfer_drops;
        pkt->pool()->free(pkt);
      }
    }
  }

  if (!conn_local.empty()) cycles += dispatch(conn_local, now, true);
  if (!regular.empty()) cycles += dispatch(regular, now, false);

  stats_.busy_cycles += cycles;
  return cycles;
}

Cycles SprayerCore::process_foreign(runtime::PacketBatch& batch, Time now) {
  const CostModel& costs = cfg_.costs;
  Cycles cycles = costs.transfer_dequeue * batch.size();
  stats_.conn_foreign_in += batch.size();
  cycles += dispatch(batch, now, true);
  stats_.busy_cycles += cycles;
  return cycles;
}

Cycles SprayerCore::dispatch(runtime::PacketBatch& batch, Time now,
                             bool connection) {
  const CostModel& costs = cfg_.costs;
  ctx_.set_now(now);
  ctx_.flows().set_in_connection_handler(connection);
  verdicts_.reset(batch.size());
  if (connection) {
    nf_.connection_packets(batch, ctx_, verdicts_);
  } else {
    stats_.regular_packets += batch.size();
    nf_.regular_packets(batch, ctx_, verdicts_);
  }
  Cycles cycles = ctx_.drain_consumed();
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    if (verdicts_.dropped(i)) {
      ++stats_.nf_drops;
      pkt->pool()->free(pkt);
    } else {
      cycles += costs.tx_per_packet;
      ++stats_.tx_packets;
      port_.transmit(pkt);
    }
  }
  return cycles;
}

}  // namespace sprayer::core

#include "core/engine.hpp"

#include <algorithm>
#include <bit>
#include <bitset>
#include <cstring>

#include "common/compiler.hpp"
#include "core/adaptive_spray.hpp"
#include "hash/designated.hpp"
#include "net/packet_pool.hpp"
#include "telemetry/flow_export.hpp"

namespace sprayer::core {

Cycles SprayerCore::process_rx(runtime::PacketBatch& batch, Time now) {
  const CostModel& costs = cfg_.costs;
  Cycles cycles = costs.batch_overhead;
  stats_.rx_packets += batch.size();

  if (sync_ != nullptr && !batch.empty() && batch[0]->pool() != nullptr) {
    sync_pool_ = batch[0]->pool();
  }

  runtime::PacketBatch conn_local;
  runtime::PacketBatch regular;

  for (net::Packet* pkt : batch) {
    cycles += costs.classify_per_packet;
    // Adaptive spraying: account the packet against this core's
    // heavy-hitter sketch (the driver merges all cores' sketches on its
    // maintenance tick to classify elephants vs mice).
    if (sketch_ != nullptr && pkt->has_flow_hash()) {
      sketch_->update(pkt->flow_hash());
    }
    // Flow export: fold the packet into this core's record table (foreign
    // batches skip this — counted at their original rx poll).
    if (recorder_ != nullptr && pkt->has_flow_hash()) {
      recorder_->account(pkt->flow_hash(), pkt->len(),
                         pkt->is_tcp() ? pkt->tcp().flags() : u8{0}, now);
    }
    if (stateless_ || !pkt->is_tcp() || !pkt->is_connection_packet()) {
      regular.push(pkt);
      continue;
    }
    // Shared-locked strategy: no write partition, so connection packets are
    // handled wherever they arrived (the lock, not the redirect, serializes
    // table structure).
    if (SPRAYER_UNLIKELY(!conn_redirect_)) {
      conn_local.push(pkt);
      ++stats_.conn_local;
      continue;
    }
    // Connection packet: route to its designated core via the memoized
    // rx-descriptor RSS hash (computed lazily if the NIC didn't stash one).
    const CoreId dest = picker_.pick_hash(hash::packet_flow_hash(*pkt));
    if (dest == id_) {
      conn_local.push(pkt);
      ++stats_.conn_local;
    } else {
      cycles += costs.transfer_enqueue;
      runtime::PacketBatch& stage = transfer_stage_[dest];
      if (SPRAYER_UNLIKELY(stage.full())) flush_transfer_stage(dest);
      stage.push(pkt);
      transfer_dirty_ |= u64{1} << dest;
    }
  }

  if (!conn_local.empty()) cycles += dispatch(conn_local, now, true);
  if (!regular.empty()) cycles += dispatch(regular, now, false);
  // Replication: ship whatever the dispatches just logged before ringing
  // the doorbells, so the sync frames ride this batch's flush.
  if (sync_ != nullptr) cycles += harvest_state_sync();
  // One ring doorbell per destination for the whole batch.
  flush_transfers();

  stats_.busy_cycles += cycles;
  return cycles;
}

Cycles SprayerCore::process_foreign(runtime::PacketBatch& batch, Time now) {
  const CostModel& costs = cfg_.costs;
  Cycles cycles = costs.transfer_dequeue * batch.size();
  if (sync_ != nullptr) {
    if (!batch.empty() && batch[0]->pool() != nullptr) {
      sync_pool_ = batch[0]->pool();
    }
    cycles += absorb_sync_frames(batch);
  }
  stats_.conn_foreign_in += batch.size();
  if (!batch.empty()) cycles += dispatch(batch, now, true);
  if (sync_ != nullptr) {
    // The connection handlers that just ran may have logged mutations;
    // broadcast them (and flush — process_foreign has no trailing
    // flush_transfers of its own on the writing-partition path).
    cycles += harvest_state_sync();
    flush_transfers();
  }
  stats_.busy_cycles += cycles;
  return cycles;
}

Cycles SprayerCore::absorb_sync_frames(runtime::PacketBatch& batch) {
  const CostModel& costs = cfg_.costs;
  std::bitset<runtime::kMaxBatchSize> frame_at;
  Cycles cycles = 0;
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    if (!state::is_sync_frame(*pkt)) continue;
    frame_at.set(i);
    const state::SyncRuntime::ApplyResult res =
        sync_->apply({pkt->data(), pkt->len()});
    cycles += costs.flow_insert * res.upserts + costs.flow_remove * res.removes;
  }
  if (frame_at.none()) return cycles;
  runtime::PacketBatch frames;
  batch.compact([&frame_at](u32 i) { return frame_at.test(i); }, frames);
  net::free_packets(frames.packets());
  return cycles;
}

Cycles SprayerCore::harvest_state_sync() {
  if (!sync_->has_pending()) return 0;
  const u32 fanout = cfg_.num_cores - 1;
  if (fanout == 0) {
    sync_->clear_log();
    return 0;
  }
  net::PacketPool* pool = sync_pool_;
  if (pool == nullptr) return 0;  // no rx batch seen yet; log kept for later
  const CostModel& costs = cfg_.costs;
  const u32 cap =
      std::min<u32>(pool->buffer_size(), cfg_.state.sync_frame_bytes);
  const u64 ops = sync_->log().size();
  const auto chunks = sync_->serialize(cap);
  if (chunks.empty()) {
    // Every logged upsert's entry has since been removed and the removes
    // already shipped — nothing to send.
    sync_->clear_log();
    return 0;
  }
  const u32 total = static_cast<u32>(chunks.size()) * fanout;
  sync_frame_scratch_.resize(total);
  const u32 got = pool->alloc_bulk({sync_frame_scratch_.data(), total});
  if (SPRAYER_UNLIKELY(got < total)) {
    // All-or-nothing: broadcasting to a subset of replicas would diverge
    // them. Put the frames back, keep the log, retry at the next flush.
    pool->free_bulk({sync_frame_scratch_.data(), got});
    sync_->note_alloc_stall();
    return 0;
  }
  Cycles cycles = 0;
  u64 bytes = 0;
  u32 fi = 0;
  for (const std::span<const u8> chunk : chunks) {
    for (CoreId d = 0; d < cfg_.num_cores; ++d) {
      if (d == id_) continue;
      net::Packet* frame = sync_frame_scratch_[fi++];
      std::memcpy(frame->data(), chunk.data(), chunk.size());
      frame->set_len(static_cast<u32>(chunk.size()));
      frame->user_tag |= state::kSyncFrameTag;
      cycles += costs.transfer_enqueue;
      runtime::PacketBatch& stage = transfer_stage_[d];
      if (SPRAYER_UNLIKELY(stage.full())) flush_transfer_stage(d);
      stage.push(frame);
      transfer_dirty_ |= u64{1} << d;
      bytes += chunk.size();
    }
  }
  sync_->note_broadcast(total, bytes, ops);
  sync_->clear_log();
  return cycles;
}

void SprayerCore::flush_transfers() {
  // Only destinations whose bit is set have staged packets; an idle core
  // (or one whose batch stayed local) skips the whole stage sweep.
  u64 dirty = transfer_dirty_;
  while (dirty != 0) {
    const auto d = static_cast<CoreId>(std::countr_zero(dirty));
    dirty &= dirty - 1;
    flush_transfer_stage(d);
  }
}

void SprayerCore::flush_transfer_stage(CoreId dest) {
  transfer_dirty_ &= ~(u64{1} << dest);
  runtime::PacketBatch& stage = transfer_stage_[dest];
  PendingQueue& pending = transfer_pending_[dest];
  if (stage.empty() && pending.size() == 0) return;
  tm_.flush_calls.add(tm_.shard, 1);
  const u32 pending_before = pending.size();

  // The parked backlog goes first: connection-packet order within a flow is
  // what keeps SYN-before-FIN holding across retries, so a descriptor
  // rejected in an earlier round must never be overtaken by one staged now.
  if (pending.size() > 0) {
    pending.consume(offer_with_spin(dest, pending.view(), /*is_retry=*/true));
    if (pending.size() > 0) {
      // Destination still backed up: park the fresh stage behind the
      // backlog and re-arm the dirty bit so the next flush retries.
      ++pending.rounds;
      if (!stage.empty()) {
        pending.append(stage.packets());
        stage.clear();
      }
      transfer_dirty_ |= u64{1} << dest;
      set_pending_count(pending_count_.load(std::memory_order_relaxed) +
                        pending.size() - pending_before);
      return;
    }
    tm_.retry_rounds.record(tm_.shard, pending.rounds);
    pending.rounds = 0;
  }

  if (!stage.empty()) {
    const u32 accepted =
        offer_with_spin(dest, stage.packets(), /*is_retry=*/false);
    if (SPRAYER_UNLIKELY(accepted < stage.size())) {
      pending.append(stage.packets().subspan(accepted));
      pending.rounds = 1;
      transfer_dirty_ |= u64{1} << dest;
    }
    stage.clear();
  }
  if (pending.size() != pending_before) {
    set_pending_count(pending_count_.load(std::memory_order_relaxed) +
                      pending.size() - pending_before);
  }
}

u32 SprayerCore::offer_with_spin(CoreId dest,
                                 std::span<net::Packet* const> pkts,
                                 bool is_retry) {
  if (is_retry) {
    stats_.transfer_retries += pkts.size();
    tm_.retry_packets.add(tm_.shard, pkts.size());
  }
  u32 accepted = port_.transfer_batch(dest, pkts);
  // Bounded spin: a full ring usually means the consumer is one dequeue
  // away, so a couple of immediate re-offers often clear the remainder
  // without paying a whole park/retry round.
  for (u32 spin = 0;
       accepted < pkts.size() && spin < cfg_.transfer_retry_spin; ++spin) {
    cpu_relax();
    const auto rest = pkts.subspan(accepted);
    stats_.transfer_retries += rest.size();
    tm_.retry_packets.add(tm_.shard, rest.size());
    accepted += port_.transfer_batch(dest, rest);
  }
  stats_.conn_transferred_out += accepted;
  tm_.flush_packets.add(tm_.shard, accepted);
  return accepted;
}

u32 SprayerCore::release_stranded() {
  u32 freed = 0;
  for (u32 d = 0; d < transfer_stage_.size(); ++d) {
    runtime::PacketBatch& stage = transfer_stage_[d];
    if (!stage.empty()) {
      freed += stage.size();
      net::free_packets(stage.packets());
      stage.clear();
    }
    PendingQueue& pending = transfer_pending_[d];
    if (pending.size() > 0) {
      freed += pending.size();
      net::free_packets(pending.view());
      pending.consume(pending.size());
      pending.rounds = 0;
    }
  }
  transfer_dirty_ = 0;
  pending_count_.store(0, std::memory_order_relaxed);
  if (freed > 0) {
    stats_.transfer_drops += freed;
    tm_.flush_drops.add(tm_.shard, freed);
  }
  return freed;
}

Cycles SprayerCore::dispatch(runtime::PacketBatch& batch, Time now,
                             bool connection) {
  const CostModel& costs = cfg_.costs;
  // Run-to-completion: the whole chain processes the batch here, on this
  // core, compacting it in place to the survivors hop by hop.
  drop_stage_.clear();
  if (connection) {
    chain_.connection_pass(batch, scratch_, hop_ctxs_, now, drop_stage_);
  } else {
    stats_.regular_packets += batch.size();
    chain_.regular_pass(batch, scratch_, hop_ctxs_, now, drop_stage_);
  }
  Cycles cycles = 0;
  for (NfContext* ctx : hop_ctxs_) cycles += ctx->drain_consumed();
  // Free drops and transmit survivors as whole batches (one pool bulk-free,
  // one sink invocation).
  if (!drop_stage_.empty()) {
    stats_.nf_drops += drop_stage_.size();
    net::free_packets(drop_stage_.packets());
  }
  if (!batch.empty()) {
    cycles += costs.tx_per_packet * batch.size();
    stats_.tx_packets += batch.size();
    port_.transmit_batch(batch.packets());
  }
  return cycles;
}

}  // namespace sprayer::core

// Threaded execution of the Sprayer framework: the same SprayerCore engine
// logic that the simulator drives, running on real std::thread workers.
//
// Topology per the paper's architecture (Figure 4):
//   * a driver (any single thread) injects packets through inject() /
//     inject_bulk(), which classify them with the same RSS / Flow Director
//     objects the simulated NIC uses and enqueue descriptors on per-core
//     SPSC rx rings (inject_bulk groups a burst by destination queue and
//     rings each queue's doorbell once);
//   * one worker thread per core polls its rx ring and its foreign rings
//     (a full SPSC mesh — connection-packet descriptors are transferred
//     core-to-core exactly as in the paper, staged per destination and
//     flushed as one bulk ring operation per batch) and runs the NF
//     handlers;
//   * processed packets are handed to a user-supplied sink callback — one
//     call per verdict batch — on worker threads (it must be thread-safe;
//     returning packets to their PacketPool is).
//
// Flow tables are the same seqlock-protected FlowTable: the writing
// partition guarantees a single writer per entry, so cross-core reads need
// no locks (§3.2).
#pragma once

#include <atomic>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/adaptive_spray.hpp"
#include "core/chain.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/engine.hpp"
#include "core/fault.hpp"
#include "core/flow_table.hpp"
#include "core/nf.hpp"
#include "nic/flow_director.hpp"
#include "nic/rss.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/worker_group.hpp"
#include "state/strategy.hpp"
#include "telemetry/flow_export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/reorder.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"

namespace sprayer::core {

class ThreadedMiddlebox {
 public:
  /// `tx` receives every forwarded verdict batch, on worker threads.
  using TxBatchHandler = std::function<void(std::span<net::Packet* const>)>;
  /// Legacy per-packet sink; wrapped into a TxBatchHandler.
  using TxHandler = std::function<void(net::Packet*)>;

  /// Run a service chain (the chain and its NFs must outlive the middlebox;
  /// the workers run every hop on the arrival core, run-to-completion).
  ThreadedMiddlebox(SprayerConfig cfg, IChain& chain, TxBatchHandler tx);
  /// Single-NF convenience: wraps the NF in an owned one-hop DynamicChain.
  ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                    TxBatchHandler tx);
  ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf, TxHandler tx);
  ~ThreadedMiddlebox();

  ThreadedMiddlebox(const ThreadedMiddlebox&) = delete;
  ThreadedMiddlebox& operator=(const ThreadedMiddlebox&) = delete;

  /// Start the worker threads.
  void start();
  /// Drain and stop. Packets still queued in rings are freed.
  void stop();

  /// Dispatch one packet (single-producer: call from one thread). Admission
  /// follows SprayerConfig::overload_policy: under kDropRegularFirst a
  /// regular packet is shed once the target ring crosses the watermark while
  /// connection packets may use the reserved headroom; under kBlock the call
  /// spins until the ring has room (workers must be start()ed). Returns
  /// false — and frees the packet — when it is shed or the ring is full.
  bool inject(net::Packet* pkt);

  /// Dispatch a burst (single-producer): classifies every packet, groups
  /// them by destination queue, and enqueues each group with one bulk ring
  /// operation when the whole group fits under the watermark (falling back
  /// to per-packet class-aware admission when it does not). Returns how
  /// many were accepted; the rest are shed per the overload policy and
  /// freed (counted in rx_ring_drops()).
  u32 inject_bulk(std::span<net::Packet* const> pkts);

  /// Block until all rings are empty and workers are idle.
  void wait_idle() const;

  [[nodiscard]] const SprayerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] IChain& chain() noexcept { return chain_; }
  [[nodiscard]] u32 num_hops() const noexcept { return chain_.num_hops(); }
  /// Hop 0's flow table on `core`: the core's owned shard under writing
  /// partition, its full replica under replication, the one shared table
  /// (whatever `core`) under shared-locked.
  [[nodiscard]] FlowTable& flow_table(CoreId core) noexcept {
    return *table_ptrs_[0][core];
  }
  [[nodiscard]] FlowTable& hop_flow_table(u32 hop, CoreId core) noexcept {
    return *table_ptrs_[hop][core];
  }
  /// The state strategy the tables and engines were built from
  /// (DESIGN.md §14) — for divergence checks and per-strategy stats.
  [[nodiscard]] state::StateStrategy& state_strategy() noexcept {
    return *strategy_;
  }
  /// Hop 0's context on `core` (the whole context for single-NF setups) —
  /// for per-strategy counters and access stats; exact when workers idle.
  [[nodiscard]] NfContext& context(CoreId core) noexcept {
    return *contexts_[core][0];
  }
  [[nodiscard]] NfContext& hop_context(u32 hop, CoreId core) noexcept {
    return *contexts_[core][hop];
  }
  /// Aggregate observed flow-state access pattern across all cores and hops.
  [[nodiscard]] FlowAccessStats access_stats() const {
    FlowAccessStats total;
    for (const auto& per_core : contexts_) {
      for (const auto& ctx : per_core) {
        total.merge(ctx->flows().access_stats());
      }
    }
    return total;
  }
  [[nodiscard]] const CorePicker& picker() const noexcept { return picker_; }
  [[nodiscard]] CoreStats total_stats() const;
  /// One core's counters (read when workers are idle for exact values).
  [[nodiscard]] const CoreStats& core_stats(CoreId core) const noexcept {
    return engines_[core]->stats();
  }
  [[nodiscard]] u64 rx_ring_drops() const noexcept {
    return rx_ring_drops_.load(std::memory_order_relaxed);
  }
  /// Class-split of rx_ring_drops(): regular packets shed at the rx
  /// boundary vs connection packets dropped there (the latter only when
  /// even the reserved headroom is exhausted, or under kDropNew).
  [[nodiscard]] u64 shed_regular() const noexcept {
    return shed_regular_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 shed_conn() const noexcept {
    return shed_conn_.load(std::memory_order_relaxed);
  }
  /// Connection-packet descriptors currently parked engine-side awaiting a
  /// mesh-ring retry, summed over cores.
  [[nodiscard]] u32 pending_transfers() const noexcept {
    u32 n = 0;
    for (const auto& e : engines_) n += e->pending_transfers();
    return n;
  }
  /// transfer_batch calls the fault-injection schedule truncated (0 when
  /// SprayerConfig::transfer_fault is disabled).
  [[nodiscard]] u64 forced_rejections() const noexcept {
    u64 n = 0;
    for (const auto& p : fault_ports_) n += p->forced_rejections();
    return n;
  }

  // --- runtime telemetry ------------------------------------------------
  /// The middlebox's metrics registry: shards 0..num_cores-1 belong to the
  /// workers, shard num_cores to the injection driver. Finalized (live)
  /// only when SprayerConfig::telemetry is on; NF metrics registered during
  /// init() land here too. Exposed non-const so callers can attach
  /// gauge_fn() probes (e.g. packet-pool cache stats).
  [[nodiscard]] telemetry::MetricsRegistry& metrics() noexcept {
    return registry_;
  }
  [[nodiscard]] u32 driver_shard() const noexcept { return cfg_.num_cores; }

  /// Collect one epoch snapshot (see telemetry/snapshot.hpp for the
  /// consistency contract). Call from one thread at a time; safe while
  /// workers run.
  [[nodiscard]] telemetry::TelemetrySnapshot telemetry_snapshot() {
    return collector_.collect();
  }

  // --- adaptive spraying ------------------------------------------------
  /// The adaptive spray policy (null when cfg.adaptive.enabled is false).
  /// Its steer/tick surface is driver-internal; exposed for stats and for
  /// tests/benches that want to force a maintenance tick at a known time.
  [[nodiscard]] AdaptiveSprayPolicy* adaptive() noexcept {
    return adaptive_.get();
  }
  [[nodiscard]] bool adaptive_enabled() const noexcept {
    return adaptive_ != nullptr;
  }
  /// The shared Flow Director (checksum spray rules + adaptive pin rules).
  [[nodiscard]] const nic::FlowDirector& flow_director() const noexcept {
    return fdir_;
  }

  // --- flow export + path tracing (DESIGN.md §13) -----------------------
  /// The live flow exporter (null when cfg.flow_export.enabled is false).
  /// Its tick/flush surface is driver-internal; exposed for stats and for
  /// tests/benches that force a tick at a known time (driver-thread
  /// contract: do not call tick concurrently with inject).
  [[nodiscard]] telemetry::LiveExporter* flow_exporter() noexcept {
    return live_.get();
  }
  [[nodiscard]] bool flow_export_enabled() const noexcept {
    return live_ != nullptr;
  }
  /// One core's record table (null when flow export is off).
  [[nodiscard]] const telemetry::FlowRecorder* flow_recorder(
      CoreId core) const noexcept {
    return live_ != nullptr ? recorders_[core].get() : nullptr;
  }
  /// The sampled path tracer (null when cfg.trace.enabled is false).
  [[nodiscard]] const telemetry::PathTracer* tracer() const noexcept {
    return tracer_.get();
  }

  [[nodiscard]] bool reorder_enabled() const noexcept {
    return reorder_ != nullptr;
  }
  /// The observatory itself (null when off) — for per-flow queries
  /// (flow_stats), which follow its driver-thread read contract.
  [[nodiscard]] const telemetry::ReorderObservatory* reorder_observatory()
      const noexcept {
    return reorder_.get();
  }
  /// Reorder-observatory totals (all-zero when the observatory is off).
  [[nodiscard]] telemetry::ReorderObservatory::Stats reorder_stats() const {
    return reorder_ != nullptr ? reorder_->stats()
                               : telemetry::ReorderObservatory::Stats{};
  }

 private:
  class CorePort;
  using Ring = runtime::SpscRing<net::Packet*>;

  /// Queue-depth feedback for the adaptive policy's p2c pick: approximate
  /// occupancy of the destination rx rings (driver-side reads of SPSC
  /// indices — racy but monotonic-safe, same contract as size_approx()).
  class RxDepthProbe final : public IQueueDepthProbe {
   public:
    explicit RxDepthProbe(const ThreadedMiddlebox& owner) noexcept
        : owner_(owner) {}
    [[nodiscard]] u32 depth(u16 queue) const noexcept override {
      return static_cast<u32>(owner_.rx_rings_[queue]->size_approx());
    }

   private:
    const ThreadedMiddlebox& owner_;
  };

  /// Worker-owned loop state, cache-line separated per core.
  struct alignas(kCacheLineSize) WorkerState {
    Time last_housekeeping = 0;
    u64 foreign_scan_offset = 0;  // rotates the mesh poll start (fairness)
  };

  /// One worker iteration; returns true if any work was done.
  bool worker_body(CoreId core);

  /// Policy-gated admission of one classified packet to one rx ring.
  /// Returns false when the packet is shed (caller frees and counts);
  /// accumulates kBlock spin iterations into `spins`.
  bool admit(Ring& ring, net::Packet* pkt, bool conn, u64& spins);

  /// Framework-level metric handles (all no-ops when telemetry is off).
  struct FrameworkTelemetry {
    telemetry::Counter packets;          // per worker: rx + foreign
    telemetry::Counter batches;          // per worker: batches processed
    telemetry::Counter foreign_packets;  // per worker: via the mesh
    telemetry::Counter injected;         // driver shard
    telemetry::Counter inject_drops;     // driver shard: rx ring full
    telemetry::Counter shed_regular;     // driver shard: watermark sheds
    telemetry::Counter shed_conn;        // driver shard: conn-packet drops
    telemetry::Counter block_spins;      // driver shard: kBlock wait loops
    telemetry::Counter rx_ring_hwm;      // kGaugeMax: rx ring occupancy
    telemetry::Counter mesh_ring_hwm;    // kGaugeMax: mesh ring occupancy
    telemetry::Histogram batch_size;
    telemetry::Histogram queue_delay_ns;  // inject_bulk stamp -> worker poll
  };

  /// All ctors funnel here; `owned` is the compatibility DynamicChain (null
  /// when the caller provided the chain).
  ThreadedMiddlebox(SprayerConfig cfg, std::unique_ptr<IChain> owned,
                    IChain* chain, TxBatchHandler tx);

  SprayerConfig cfg_;
  std::unique_ptr<IChain> owned_chain_;  // declared before chain_ (ref target)
  IChain& chain_;
  TxBatchHandler tx_;
  std::vector<NfInitConfig> hop_init_;  // one per hop, filled by chain init
  bool stateless_chain_ = false;        // every hop stateless: never redirect
  CorePicker picker_;
  nic::RssEngine rss_;
  nic::FlowDirector fdir_;

  // Owns every flow table (shape depends on the strategy kind) plus the
  // replication runtimes; table_ptrs_ caches its per-hop spans.
  std::unique_ptr<state::StateStrategy> strategy_;
  std::vector<std::vector<FlowTable*>> table_ptrs_;  // [hop][core]
  std::vector<std::vector<std::unique_ptr<NfContext>>> contexts_;  // [core][hop]
  std::vector<std::vector<NfContext*>> ctx_ptrs_;                  // [core][hop]
  std::vector<std::unique_ptr<CorePort>> ports_;
  // Fault-injection wrappers interposed between engine and CorePort when
  // SprayerConfig::transfer_fault is enabled (empty otherwise).
  std::vector<std::unique_ptr<FaultInjectedPort>> fault_ports_;
  std::vector<std::unique_ptr<SprayerCore>> engines_;

  // Per-core rx rings (driver -> core) and the transfer mesh
  // (src core -> dst core), all SPSC.
  std::vector<std::unique_ptr<Ring>> rx_rings_;
  std::vector<std::vector<std::unique_ptr<Ring>>> mesh_;

  telemetry::MetricsRegistry registry_;
  telemetry::SnapshotCollector collector_;
  FrameworkTelemetry tm_;
  std::unique_ptr<telemetry::ReorderObservatory> reorder_;
  std::unique_ptr<AdaptiveSprayPolicy> adaptive_;
  std::unique_ptr<RxDepthProbe> depth_probe_;
  // Flow export: per-core record tables (worker-written), the driver-tick
  // exporter, and its owned file sink (empty sink_path → no stream).
  std::vector<std::unique_ptr<telemetry::FlowRecorder>> recorders_;
  std::unique_ptr<telemetry::LiveExporter> live_;
  std::unique_ptr<std::ofstream> live_sink_;
  std::unique_ptr<telemetry::PathTracer> tracer_;

  runtime::WorkerGroup workers_;
  std::vector<WorkerState> worker_state_;
  // Driver-side per-queue grouping scratch for inject_bulk().
  std::vector<std::vector<net::Packet*>> inject_stage_;
  // Survivor / shed partitions for the watermark slow path (driver-only).
  std::vector<net::Packet*> admit_scratch_;
  std::vector<net::Packet*> shed_scratch_;
  // Occupancy above which kDropRegularFirst sheds regular packets
  // (precomputed from rx_ring_capacity * rx_shed_watermark).
  u32 rx_shed_threshold_ = 0;
  std::atomic<u64> rx_ring_drops_{0};
  std::atomic<u64> shed_regular_{0};
  std::atomic<u64> shed_conn_{0};
  std::atomic<u32> busy_workers_{0};
  bool started_ = false;
};

}  // namespace sprayer::core

// Threaded execution of the Sprayer framework: the same SprayerCore engine
// logic that the simulator drives, running on real std::thread workers.
//
// Topology per the paper's architecture (Figure 4):
//   * a driver (any single thread) injects packets through inject(), which
//     classifies them with the same RSS / Flow Director objects the
//     simulated NIC uses and enqueues descriptors on per-core SPSC rx
//     rings;
//   * one worker thread per core polls its rx ring and its foreign rings
//     (a full SPSC mesh — connection-packet descriptors are transferred
//     core-to-core exactly as in the paper) and runs the NF handlers;
//   * processed packets are handed to a user-supplied sink callback
//     (invoked on worker threads — it must be thread-safe; returning
//     packets to their PacketPool is).
//
// Flow tables are the same seqlock-protected FlowTable: the writing
// partition guarantees a single writer per entry, so cross-core reads need
// no locks (§3.2).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/engine.hpp"
#include "core/flow_table.hpp"
#include "core/nf.hpp"
#include "nic/flow_director.hpp"
#include "nic/rss.hpp"
#include "runtime/spsc_ring.hpp"
#include "runtime/worker_group.hpp"

namespace sprayer::core {

class ThreadedMiddlebox {
 public:
  /// `tx` receives every forwarded packet, on worker threads.
  using TxHandler = std::function<void(net::Packet*)>;

  ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf, TxHandler tx);
  ~ThreadedMiddlebox();

  ThreadedMiddlebox(const ThreadedMiddlebox&) = delete;
  ThreadedMiddlebox& operator=(const ThreadedMiddlebox&) = delete;

  /// Start the worker threads.
  void start();
  /// Drain and stop. Packets still queued in rings are freed.
  void stop();

  /// Dispatch one packet (single-producer: call from one thread). Returns
  /// false — and frees the packet — when the target rx ring is full.
  bool inject(net::Packet* pkt);

  /// Block until all rings are empty and workers are idle.
  void wait_idle() const;

  [[nodiscard]] const SprayerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] FlowTable& flow_table(CoreId core) noexcept {
    return *tables_[core];
  }
  [[nodiscard]] const CorePicker& picker() const noexcept { return picker_; }
  [[nodiscard]] CoreStats total_stats() const;
  [[nodiscard]] u64 rx_ring_drops() const noexcept {
    return rx_ring_drops_.load(std::memory_order_relaxed);
  }

 private:
  class CorePort;

  /// One worker iteration; returns true if any work was done.
  bool worker_body(CoreId core);

  SprayerConfig cfg_;
  INetworkFunction& nf_;
  TxHandler tx_;
  NfInitConfig nf_init_;
  CorePicker picker_;
  nic::RssEngine rss_;
  nic::FlowDirector fdir_;

  std::vector<std::unique_ptr<FlowTable>> tables_;
  std::vector<FlowTable*> table_ptrs_;
  std::vector<std::unique_ptr<NfContext>> contexts_;
  std::vector<std::unique_ptr<CorePort>> ports_;
  std::vector<std::unique_ptr<SprayerCore>> engines_;

  // Per-core rx rings (driver -> core) and the transfer mesh
  // (src core -> dst core), all SPSC.
  using Ring = runtime::SpscRing<net::Packet*>;
  std::vector<std::unique_ptr<Ring>> rx_rings_;
  std::vector<std::vector<std::unique_ptr<Ring>>> mesh_;

  runtime::WorkerGroup workers_;
  std::vector<Time> last_housekeeping_;
  std::atomic<u64> rx_ring_drops_{0};
  std::atomic<u32> busy_workers_{0};
  bool started_ = false;
};

}  // namespace sprayer::core

// Designated-core selection (paper §3.2).
//
// The designated core of a flow is defined as *the core symmetric-key RSS
// would deliver it to*: symmetric Toeplitz over the five-tuple, through a
// 128-entry round-robin indirection table. This has two properties the
// design depends on:
//   * symmetric — both directions of a connection share a designated core;
//   * RSS-consistent — under the RSS baseline every packet already arrives
//     at its designated core, so no connection packet is ever transferred
//     (the per-flow baseline keeps its fully-partitioned state, and the
//     same NF code runs unmodified in both modes).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/toeplitz.hpp"
#include "net/five_tuple.hpp"
#include "nic/rss.hpp"

namespace sprayer::core {

class CorePicker {
 public:
  explicit CorePicker(u32 num_cores) : rss_(num_cores) {
    SPRAYER_CHECK(num_cores >= 1);
    SPRAYER_CHECK_MSG(nic::RssEngine::kIndirectionEntries % num_cores == 0,
                      "core count must divide the RSS indirection table for "
                      "designated cores to match RSS placement");
  }

  [[nodiscard]] CoreId pick(const net::FiveTuple& tuple) const noexcept {
    return pick_hash(rss_.hash_of(tuple));
  }

  /// Pick from an already-computed symmetric flow hash (the packet's
  /// memoized rx-descriptor RSS hash) — skips re-hashing the five-tuple.
  [[nodiscard]] CoreId pick_hash(u32 flow_hash) const noexcept {
    return static_cast<CoreId>(rss_.queue_for_hash(flow_hash));
  }

 private:
  nic::RssEngine rss_;  // symmetric key by default
};

}  // namespace sprayer::core

// Designated-core selection (paper §3.2).
//
// The designated core of a flow is defined as *the core symmetric-key RSS
// would deliver it to*: symmetric Toeplitz over the five-tuple, through a
// 128-entry round-robin indirection table. This has two properties the
// design depends on:
//   * symmetric — both directions of a connection share a designated core;
//   * RSS-consistent — under the RSS baseline every packet already arrives
//     at its designated core, so no connection packet is ever transferred
//     (the per-flow baseline keeps its fully-partitioned state, and the
//     same NF code runs unmodified in both modes).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "hash/toeplitz.hpp"
#include "net/five_tuple.hpp"
#include "nic/rss.hpp"

namespace sprayer::core {

class CorePicker {
 public:
  explicit CorePicker(u32 num_cores) : rss_(num_cores), num_cores_(num_cores) {
    SPRAYER_CHECK(num_cores >= 1);
    SPRAYER_CHECK_MSG(nic::RssEngine::kIndirectionEntries % num_cores == 0,
                      "core count must divide the RSS indirection table for "
                      "designated cores to match RSS placement");
  }

  [[nodiscard]] u32 num_cores() const noexcept { return num_cores_; }

  [[nodiscard]] CoreId pick(const net::FiveTuple& tuple) const noexcept {
    return pick_hash(rss_.hash_of(tuple));
  }

  /// Pick from an already-computed symmetric flow hash (the packet's
  /// memoized rx-descriptor RSS hash) — skips re-hashing the five-tuple.
  [[nodiscard]] CoreId pick_hash(u32 flow_hash) const noexcept {
    return static_cast<CoreId>(rss_.queue_for_hash(flow_hash));
  }

  /// Member `i` of a flow's width-`width` spray set: the `width` cores
  /// starting at the flow's designated core, wrapping modulo the core
  /// count. Width num_cores() is full spraying; narrowing the width trades
  /// packet-level parallelism for less reordering while keeping the
  /// designated core (and so §3.3 flow-state locality) in every set. Used
  /// by the adaptive spray policy (DESIGN.md §12).
  [[nodiscard]] CoreId spray_member(u32 flow_hash, u32 width,
                                    u32 i) const noexcept {
    SPRAYER_DCHECK(width >= 1 && width <= num_cores_);
    const u32 base = static_cast<u32>(pick_hash(flow_hash));
    return static_cast<CoreId>((base + (i % width)) % num_cores_);
  }

 private:
  nic::RssEngine rss_;  // symmetric key by default
  u32 num_cores_;
};

}  // namespace sprayer::core

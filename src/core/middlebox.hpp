// The assembled simulated middlebox: one SimNic, N virtual cores each
// running a SprayerCore engine, per-core flow tables, and an NF. This is
// the device-under-test of every experiment — the software middlebox server
// of the paper's testbed (§5).
//
// Wiring: incoming links sink into ingress(); attach one outgoing link per
// port with attach_tx_link(). The middlebox is a bump in the wire: packets
// leave through the port opposite to the one they entered (2-port NIC).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/chain.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "core/engine.hpp"
#include "core/flow_table.hpp"
#include "core/nf.hpp"
#include "nic/nic.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "state/strategy.hpp"

namespace sprayer::core {

struct MiddleboxReport {
  CoreStats total;
  std::vector<CoreStats> per_core;
  nic::SimNic::Counters nic;
  u64 flow_entries = 0;
  FlowAccessStats flow_access;
};

class SimMiddlebox final : public nic::IRxListener {
 public:
  /// Single-NF convenience: wraps the NF in an owned one-hop DynamicChain.
  SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg, INetworkFunction& nf,
               nic::NicConfig nic_cfg = {});
  /// Run a service chain (chain and NFs must outlive the middlebox).
  SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg, IChain& chain,
               nic::NicConfig nic_cfg = {});
  ~SimMiddlebox() override;

  SimMiddlebox(const SimMiddlebox&) = delete;
  SimMiddlebox& operator=(const SimMiddlebox&) = delete;

  /// Sink for incoming links (the NIC rx side).
  [[nodiscard]] sim::IPacketSink& ingress() noexcept { return nic_; }
  void attach_tx_link(u8 port, sim::Link& link) {
    nic_.attach_tx_link(port, link);
  }

  [[nodiscard]] const SprayerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] nic::SimNic& nic_dev() noexcept { return nic_; }
  [[nodiscard]] IChain& chain() noexcept { return chain_; }
  [[nodiscard]] u32 num_hops() const noexcept { return chain_.num_hops(); }
  /// Hop 0's flow table on `core` (the whole table for single-NF setups;
  /// shape per the state strategy — shard, replica, or shared alias).
  [[nodiscard]] FlowTable& flow_table(CoreId core) noexcept {
    return *table_ptrs_[0][core];
  }
  [[nodiscard]] FlowTable& hop_flow_table(u32 hop, CoreId core) noexcept {
    return *table_ptrs_[hop][core];
  }
  /// The state strategy the tables were built from (DESIGN.md §14).
  [[nodiscard]] state::StateStrategy& state_strategy() noexcept {
    return *strategy_;
  }
  /// Hop 0's context on `core` (the whole context for single-NF setups).
  [[nodiscard]] NfContext& context(CoreId core) noexcept {
    return *contexts_[core][0];
  }
  [[nodiscard]] NfContext& hop_context(u32 hop, CoreId core) noexcept {
    return *contexts_[core][hop];
  }
  [[nodiscard]] const CorePicker& picker() const noexcept { return picker_; }

  /// Aggregate observed flow-state access pattern across all cores and hops.
  [[nodiscard]] FlowAccessStats access_stats() const {
    FlowAccessStats total;
    for (const auto& per_core : contexts_) {
      for (const auto& ctx : per_core) {
        total.merge(ctx->flows().access_stats());
      }
    }
    return total;
  }

  [[nodiscard]] MiddleboxReport report() const;
  /// Zero all middlebox-side counters (after warmup).
  void reset_stats();

  // nic::IRxListener
  void rx_ready(u16 queue) override;

 private:
  class SimCore;

  /// All ctors funnel here; `owned` is the compatibility DynamicChain (null
  /// when the caller provided the chain).
  SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg,
               std::unique_ptr<IChain> owned, IChain* chain,
               nic::NicConfig nic_cfg);

  /// Send a processed packet out of the port opposite its ingress.
  void transmit_out(net::Packet* pkt);

  sim::Simulator& sim_;
  SprayerConfig cfg_;
  std::unique_ptr<IChain> owned_chain_;  // declared before chain_ (ref target)
  IChain& chain_;
  std::vector<NfInitConfig> hop_init_;
  bool stateless_chain_ = false;
  CorePicker picker_;
  nic::SimNic nic_;
  // Owns every flow table (shape depends on the strategy kind);
  // table_ptrs_ caches its per-hop spans.
  std::unique_ptr<state::StateStrategy> strategy_;
  std::vector<std::vector<FlowTable*>> table_ptrs_;  // [hop][core]
  std::vector<std::vector<std::unique_ptr<NfContext>>> contexts_;  // [core][hop]
  std::vector<std::vector<NfContext*>> ctx_ptrs_;                  // [core][hop]
  std::vector<std::unique_ptr<SimCore>> cores_;
};

}  // namespace sprayer::core

// Sprayer framework configuration and the per-packet CPU cost model.
#pragma once

#include "common/overload.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "state/config.hpp"
#include "telemetry/observability_config.hpp"

namespace sprayer::core {

/// How the NIC assigns packets to cores.
enum class DispatchMode {
  kRss,    // per-flow (baseline): Toeplitz hash of the five-tuple
  kSpray,  // per-packet: Flow Director matching TCP-checksum low bits
};

[[nodiscard]] constexpr const char* to_string(DispatchMode m) noexcept {
  return m == DispatchMode::kRss ? "RSS" : "Sprayer";
}

/// Virtual CPU cycles charged by the framework per operation. The values
/// are in line with measured DPDK costs on the paper's era of hardware
/// (Xeon E5-2650 v0, 2.0 GHz); the ablation bench sweeps the sensitive ones.
struct CostModel {
  Cycles batch_overhead = 50;       // poll + prefetch amortized per batch
  Cycles classify_per_packet = 30;  // parse check + flag test + core pick
  Cycles transfer_enqueue = 60;     // descriptor enqueue to a foreign ring
  Cycles transfer_dequeue = 40;     // descriptor dequeue on designated core
  Cycles flow_insert = 150;         // hash + probe + write
  Cycles flow_lookup_local = 60;    // hash + probe, warm local cache
  Cycles flow_lookup_remote = 100;  // + cross-core cache-line transfer
  Cycles flow_lookup_batched = 40;  // per-lookup cost inside get_flows()
  Cycles flow_remove = 100;
  Cycles tx_per_packet = 30;        // tx descriptor write
};

/// Deterministic transfer-fault schedule (test/bench hook): every
/// `reject_period`-th ICorePort::transfer_batch() call from a core is
/// truncated to accept at most `accept_cap` descriptors, independent of
/// actual ring occupancy. Drives the lossless-redirect retry machinery
/// without having to win a timing race against real ring drain. 0 disables.
struct TransferFaultConfig {
  u32 reject_period = 0;
  u32 accept_cap = 0;
  [[nodiscard]] constexpr bool enabled() const noexcept {
    return reject_period > 0;
  }
};

/// Adaptive spraying (DESIGN.md §12): classify flows at runtime into
/// elephants (sprayed for packet-level parallelism) and mice (pinned to
/// their designated queue with Flow Director exact rules — no reordering,
/// warm per-flow state), steer the sprayed remainder toward shallow queues
/// with a power-of-two-choices pick, and narrow a flow's spray set when the
/// reorder observatory reports its out-of-order distance over budget.
/// Off by default: static checksum spraying remains the shipping
/// configuration until the adaptive bench justifies flipping it.
struct AdaptiveSprayConfig {
  bool enabled = false;
  /// Flow-cache sets (2-way associative); power of two.
  u32 flow_sets = 2048;
  /// Per-core heavy-hitter sketch cells; power of two.
  u32 sketch_slots = 1024;
  /// Aggregated (decayed) sketch count at/above which a flow is promoted
  /// to elephant and sprayed.
  u64 promote_count = 512;
  /// Aggregated count below which an elephant accumulates demote dwell
  /// (kept well under promote_count: the gap is the flap hysteresis).
  u64 demote_count = 128;
  /// Consecutive ticks below demote_count before an elephant is re-pinned.
  u32 demote_dwell_ticks = 3;
  /// Driver-side sketch-merge / rule-maintenance cadence.
  Time update_interval = 2 * kMillisecond;
  /// Cap on installed exact pin rules. Shares the Flow Director 8K table
  /// with the 2^b checksum spray rules; when either budget is exhausted a
  /// new mouse simply keeps spraying (never an error).
  u32 rule_budget = 4096;
  /// A pinned flow idle longer than this loses its rule and cache slot.
  Time idle_timeout = 50 * kMillisecond;
  /// Flow-cache slots swept for idle eviction per maintenance tick.
  u32 evict_scan = 512;
  /// Queue-depth-aware power-of-two-choices steering of sprayed packets.
  bool p2c = true;
  /// Observatory out-of-order distance above which a sprayed flow's spray
  /// set is halved (0 disables narrowing; needs reorder_observatory=true
  /// to ever fire — unsampled flows are never narrowed).
  u64 reorder_budget = 128;
  /// Narrowest spray set narrowing may reach (1 would de-facto pin).
  u32 min_spray_width = 2;
};

/// Flow-state lifecycle (DESIGN.md §15): idle aging driven by the
/// housekeeping tick's cursor-bounded sweep, and opt-in segmented online
/// growth of the flow tables.
struct LifecycleConfig {
  /// Master switch for the per-hop idle-aging sweep. FIN/RST teardown and
  /// NAT's TIME_WAIT reaping also ride on the sweep, so turning it off
  /// reverts NAT to no housekeeping at all.
  bool sweep = true;
  /// Override of every stateful hop's idle timeout (0 keeps each NF's own
  /// default — 60 s for monitor/firewall/LB, 120 s for NAT).
  Time idle_timeout = 0;
  /// Tag groups each hop's sweep scans per housekeeping tick. 0 = automatic:
  /// max(64, total_groups / 8), i.e. a full rotation every 8 ticks no matter
  /// the table size, so expiry latency tracks the housekeeping interval
  /// instead of the provisioned capacity.
  u32 sweep_groups_per_tick = 0;
  /// Override of every stateful hop's flow-table capacity (0 keeps each
  /// NF's own init() value). Power of two.
  u32 flow_table_capacity = 0;
  /// Online growth: each flow table may add up to this many segments of its
  /// base capacity before insert() fails (FlowTable::set_growth; clamped to
  /// FlowTable::kMaxSegments). 1 = fixed capacity, the historical behavior.
  u32 max_table_segments = 1;
};

struct SprayerConfig {
  u32 num_cores = 8;
  double core_freq_hz = 2.0e9;      // the paper's Xeon E5-2650
  DispatchMode mode = DispatchMode::kSpray;
  u32 rx_batch = 32;                // packets polled per iteration
  u32 foreign_ring_capacity = 4096; // connection-packet descriptor ring
  /// Driver-to-worker rx descriptor ring depth (power of two).
  u32 rx_ring_capacity = 4096;
  /// What the rx boundary does when a worker's ring backs up. The mesh
  /// (connection-packet) rings never drop regardless of policy: engine-side
  /// rejections are staged and retried (the lossless-redirect invariant,
  /// DESIGN.md §10).
  OverloadPolicy overload_policy = OverloadPolicy::kDropRegularFirst;
  /// Occupancy fraction of rx_ring_capacity above which kDropRegularFirst
  /// sheds regular packets; the remainder is connection-packet headroom.
  double rx_shed_watermark = 0.75;
  /// Immediate same-flush re-offers after a mesh-ring rejection before the
  /// remainder is parked for the next iteration's retry (bounded spin).
  u32 transfer_retry_spin = 1;
  /// Fault injection for the transfer path (tests/benches; see above).
  TransferFaultConfig transfer_fault;
  /// Ablation knob: route FlowStateApi::get_flows through the prefetch-
  /// pipelined FlowTable::find_batch (true) or the scalar per-lookup path
  /// (false), for measuring what bulk lookup buys.
  bool bulk_flow_lookup = true;
  /// Period of the per-core NF housekeeping callback (0 disables).
  Time housekeeping_interval = 10 * kMillisecond;
  /// Runtime telemetry (src/telemetry/): per-core sharded counters and
  /// histograms for workers, engines and NFs. Hot-path cost is a plain
  /// store to a core-private cache line; false skips even that (handles
  /// become no-ops).
  bool telemetry = true;
  /// Per-hop latency counters for service chains ("chain.h<i>.<nf>.ns"):
  /// one extra clock read per hop per batch, so off by default (per-hop
  /// packet/drop counters are plain telemetry stores and stay on whenever
  /// telemetry is). The chain bench turns this on to report ns/packet/hop.
  bool chain_hop_timing = false;
  /// Sampled per-flow sequence tracking that measures spray-induced
  /// reordering at the tx boundary (bounded to
  /// telemetry::ReorderObservatory::kSlots flows). Off by default: it adds
  /// a driver-side stamp and a tx-side check per packet.
  bool reorder_observatory = false;
  /// Runtime elephant/mice classification with Flow-Director pinning and
  /// queue-depth-aware steering (threaded executor only; see above).
  AdaptiveSprayConfig adaptive;
  /// Live flow-record export: per-core single-writer accounting harvested
  /// on the driver tick and streamed as JSON lines (threaded executor
  /// only; DESIGN.md §13). Off by default.
  telemetry::FlowExportConfig flow_export;
  /// Sampled packet-path tracing (1-in-2^N stage latencies; requires
  /// `telemetry`). Off by default.
  telemetry::TraceConfig trace;
  /// How cores share flow state (DESIGN.md §14): the paper's writing
  /// partition (default), state-compute replication, or the shared
  /// striped-lock baseline. Executors build their table topology and
  /// engine hooks from this.
  state::StateStrategyConfig state;
  /// Flow-state lifecycle: idle aging sweep + segmented table growth.
  LifecycleConfig lifecycle;
  CostModel costs;
};

}  // namespace sprayer::core

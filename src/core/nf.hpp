// The Sprayer NF programming model (paper §3.4).
//
// An NF implements two packet handlers:
//   * connection_packets() — receives every SYN/FIN/RST of flows whose
//     designated core is this core (from the local queue or transferred
//     from other cores); the only place flow state may be written;
//   * regular_packets() — receives everything else, wherever it landed;
//     may read any flow state but writes none.
// plus an init() that sizes the flow table / declares itself stateless.
#pragma once

#include <array>
#include <bitset>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/flow_state.hpp"
#include "hash/designated.hpp"
#include "runtime/batch.hpp"

namespace sprayer::telemetry {
class MetricsRegistry;
}  // namespace sprayer::telemetry

namespace sprayer::core {

/// Filled in by the NF's init(); consumed by the framework when it builds
/// the per-core machinery.
struct NfInitConfig {
  u32 flow_table_capacity = 1u << 16;  // must be a power of two
  u32 flow_entry_size = 16;            // bytes per flow entry
  /// Stateless NFs disable flow tables and connection-packet redirection
  /// entirely: every packet goes to regular_packets() on its arrival core.
  bool stateless = false;
  /// Set by the framework *before* calling init() when runtime telemetry is
  /// on: NFs register their metrics here (the framework finalizes it after
  /// init() returns). Null → telemetry off or a non-telemetry executor; an
  /// NF then falls back to a private registry so its counters keep working.
  telemetry::MetricsRegistry* registry = nullptr;
  /// Set by the framework *before* calling init(): the state strategy the
  /// middlebox was built with (DESIGN.md §14). NFs rarely care — the
  /// FlowStateApi hides the difference — but ones with cross-flow invariants
  /// (NAT's port pool) may need to know their housekeeping runs against a
  /// replicated or shared table.
  state::StateStrategyKind state_strategy = state::StateStrategyKind::kWritingPartition;
  /// Idle timeout for this NF's flow entries, driven by the lifecycle sweep
  /// (DESIGN.md §15): a flow whose last_seen stamp is at least this old is
  /// offered to flow_expired()/on_expire() on its designated core. NFs set
  /// their protocol-appropriate default in init(); 0 disables idle aging
  /// for the hop (FIN/RST teardown still applies). The framework may
  /// override it afterwards (LifecycleConfig::idle_timeout).
  Time flow_idle_timeout = 0;
};

/// Per-core execution context handed to packet handlers.
class NfContext {
 public:
  NfContext(CoreId core, std::span<FlowTable* const> tables,
            const CorePicker& picker, const CostModel& costs) noexcept
      : core_(core),
        num_cores_(static_cast<u32>(tables.size())),
        api_(core, tables, picker, costs, consumed_) {}

  [[nodiscard]] CoreId core() const noexcept { return core_; }
  [[nodiscard]] u32 num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] FlowStateApi& flows() noexcept { return api_; }

  /// Attach the state-strategy view for this core/hop (executors call this
  /// once, right after construction; defaults to plain writing partition).
  void configure_state(const state::CoreStateView& view) {
    api_.configure_strategy(view);
  }

  /// Account `c` cycles of NF work for the current packet/batch (the
  /// simulator turns this into time; the threaded executor busy-loops).
  void consume_cycles(Cycles c) noexcept { consumed_ += c; }

  /// Simulated time at which the current batch started processing.
  [[nodiscard]] Time now() const noexcept { return now_; }

  // --- framework side -------------------------------------------------
  void set_now(Time t) noexcept {
    now_ = t;
    api_.set_now(t);  // stamps and expiry decisions share the batch clock
  }
  [[nodiscard]] Cycles drain_consumed() noexcept {
    const Cycles c = consumed_;
    consumed_ = 0;
    return c;
  }

 private:
  CoreId core_;
  u32 num_cores_;
  Cycles consumed_ = 0;  // must precede api_: FlowStateApi holds a reference
  FlowStateApi api_;
  Time now_ = 0;
};

/// Per-invocation verdict sheet: handlers mark packets to drop by batch
/// index; everything else is forwarded.
class BatchVerdicts {
 public:
  void reset(u32 batch_size) noexcept {
    size_ = batch_size;
    drops_.reset();
  }
  void drop(u32 index) noexcept {
    SPRAYER_DCHECK(index < size_);
    drops_.set(index);
  }
  [[nodiscard]] bool dropped(u32 index) const noexcept {
    return drops_.test(index);
  }
  /// True when at least one packet was marked; a hop with no drops skips
  /// the compaction pass entirely.
  [[nodiscard]] bool any() const noexcept { return drops_.any(); }

 private:
  std::bitset<runtime::kMaxBatchSize> drops_;
  u32 size_ = 0;
};

/// Per-batch packet metadata derived once and shared across service-chain
/// hops: the five-tuple, its canonical form, and the memoized symmetric RSS
/// hash. A fused chain builds this once per batch (and refreshes it once
/// after each tuple-rewriting hop) instead of every hop re-extracting
/// headers per packet; the standalone single-NF path builds it privately
/// inside regular_packets(), so NFs carry exactly one implementation.
/// Entries are only valid where is_tcp[i] != 0; the canonical array is
/// filled lazily by the first hop that needs it.
struct BatchMeta {
  std::array<net::FiveTuple, runtime::kMaxBatchSize> tuple;
  std::array<net::FiveTuple, runtime::kMaxBatchSize> canon;
  std::array<FlowTable::FlowHash, runtime::kMaxBatchSize> hash;
  std::array<u8, runtime::kMaxBatchSize> is_tcp;
  u32 size = 0;
  bool canon_valid = false;

  /// Derive metadata for every packet of `batch` (tuple + memoized hash for
  /// TCP packets; others are marked and skipped by hops).
  void build(runtime::PacketBatch& batch) noexcept {
    size = batch.size();
    canon_valid = false;
    for (u32 i = 0; i < size; ++i) {
      net::Packet* pkt = batch[i];
      if (pkt->is_tcp()) {
        is_tcp[i] = 1;
        tuple[i] = pkt->five_tuple();
        hash[i] = hash::packet_flow_hash(*pkt);
      } else {
        is_tcp[i] = 0;
      }
    }
  }

  /// Fill the canonical-tuple array (no-op if already valid for this batch).
  void ensure_canonical() noexcept {
    if (canon_valid) return;
    for (u32 i = 0; i < size; ++i) {
      if (is_tcp[i]) canon[i] = tuple[i].canonical();
    }
    canon_valid = true;
  }

  /// Re-derive after a tuple-rewriting hop (NAT): recompute each survivor's
  /// tuple and hash and restore the packet's memoized rx-descriptor hash so
  /// downstream hops — and post-chain consumers — read a valid memo again.
  void refresh(runtime::PacketBatch& batch) noexcept {
    size = batch.size();
    canon_valid = false;
    for (u32 i = 0; i < size; ++i) {
      net::Packet* pkt = batch[i];
      if (pkt->is_tcp()) {
        is_tcp[i] = 1;
        tuple[i] = pkt->five_tuple();
        pkt->invalidate_flow_hash();
        hash[i] = hash::packet_flow_hash(*pkt);
      } else {
        is_tcp[i] = 0;
      }
    }
  }

  /// Compaction hook: relocate slot `from` to `to` (PacketBatch::compact's
  /// on_move callback, keeping the metadata aligned with the survivors).
  void move(u32 from, u32 to) noexcept {
    tuple[to] = tuple[from];
    if (canon_valid) canon[to] = canon[from];
    hash[to] = hash[from];
    is_tcp[to] = is_tcp[from];
  }
};

class INetworkFunction {
 public:
  virtual ~INetworkFunction() = default;

  /// Called once before the framework builds flow tables.
  virtual void init(NfInitConfig& cfg, u32 num_cores) {
    (void)cfg;
    (void)num_cores;
  }

  /// SYN/FIN/RST packets of flows designated to this core.
  virtual void connection_packets(runtime::PacketBatch& batch, NfContext& ctx,
                                  BatchVerdicts& verdicts) = 0;

  /// All other packets, on whichever core they arrived.
  virtual void regular_packets(runtime::PacketBatch& batch, NfContext& ctx,
                               BatchVerdicts& verdicts) = 0;

  /// Periodic per-core maintenance (SprayerConfig::housekeeping_interval):
  /// runs on every core with its own context, so NFs can expire local flow
  /// state (e.g. NAT TIME_WAIT) without violating the writing partition.
  virtual void housekeeping(NfContext& ctx) { (void)ctx; }

  /// Lifecycle hook (DESIGN.md §15): should this entry expire now? Called
  /// from the housekeeping sweep on the flow's designated core, for entries
  /// in this NF's table. The default is plain idle aging against the hop's
  /// idle timeout; NFs with richer per-entry state (NAT's TIME_WAIT
  /// deadline, paired entries) override it. Must not mutate state — return
  /// true and do the teardown in on_expire().
  [[nodiscard]] virtual bool flow_expired(const net::FiveTuple& key,
                                          const void* entry, Time last_seen,
                                          Time idle_timeout, NfContext& ctx) {
    (void)key;
    (void)entry;
    return idle_timeout > 0 && last_seen + idle_timeout <= ctx.now();
  }

  /// Lifecycle hook: tear down one expired flow. Runs on the flow's
  /// designated core, after the sweep's scan pass, so it may freely mutate
  /// the table. Exactly-once per flow system-wide (the sweep gates on event
  /// ownership). NFs holding resources beyond the entry itself — NAT ports,
  /// LB backend counts — override this to release them; the default just
  /// removes the entry (which under replication also ships the remove to
  /// every replica through the sync frames).
  virtual void on_expire(const net::FiveTuple& key, FlowTable::FlowHash hash,
                         NfContext& ctx) {
    ctx.flows().remove_local_flow(key, hash);
  }

  /// True for NFs that rewrite the five-tuple of forwarded packets (NAT):
  /// a chain invalidates and recomputes the memoized RSS hash exactly once
  /// after such a hop so downstream hops keep reading a valid memo.
  [[nodiscard]] virtual bool rewrites_tuple() const noexcept { return false; }

  /// Human-readable name (for reports).
  [[nodiscard]] virtual const char* name() const noexcept { return "nf"; }
};

}  // namespace sprayer::core

#include "core/flow_table.hpp"

#include <cstring>

namespace sprayer::core {

FlowTable::FlowTable(u32 capacity, u32 entry_size, CoreId owner)
    : capacity_(capacity),
      mask_(capacity - 1),
      entry_size_(entry_size),
      owner_(owner),
      max_occupancy_(capacity - capacity / 8),  // cap load factor at 87.5 %
      slots_(std::make_unique<Slot[]>(capacity)),
      data_(std::make_unique<u8[]>(static_cast<std::size_t>(capacity) *
                                   entry_size)) {
  SPRAYER_CHECK_MSG(capacity >= 2 && std::has_single_bit(capacity),
                    "flow table capacity must be a power of two");
  SPRAYER_CHECK(entry_size >= 1);
}

u32 FlowTable::probe(const net::FiveTuple& key) const noexcept {
  u32 index = static_cast<u32>(key.pack()) & mask_;
  for (u32 i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[index];
    if (slot.state == SlotState::kEmpty) return kNotFound;
    if (slot.state == SlotState::kOccupied && slot.key == key) return index;
    index = (index + 1) & mask_;
  }
  return kNotFound;
}

void* FlowTable::insert(const net::FiveTuple& key) {
  if (occupied_ >= max_occupancy_) return nullptr;
  u32 index = static_cast<u32>(key.pack()) & mask_;
  u32 insert_at = kNotFound;
  for (u32 i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kOccupied) {
      if (slot.key == key) return entry_at(index);  // idempotent
    } else {
      if (insert_at == kNotFound) insert_at = index;
      if (slot.state == SlotState::kEmpty) break;  // key definitely absent
    }
    index = (index + 1) & mask_;
  }
  if (insert_at == kNotFound) return nullptr;  // table full of live entries

  Slot& slot = slots_[insert_at];
  // Seqlock write: remote readers retry while the version is odd.
  slot.version.fetch_add(1, std::memory_order_release);
  slot.key = key;
  std::memset(entry_at(insert_at), 0, entry_size_);
  slot.state = SlotState::kOccupied;
  slot.version.fetch_add(1, std::memory_order_release);
  ++occupied_;
  return entry_at(insert_at);
}

bool FlowTable::remove(const net::FiveTuple& key) {
  const u32 index = probe(key);
  if (index == kNotFound) return false;
  Slot& slot = slots_[index];
  slot.version.fetch_add(1, std::memory_order_release);
  slot.state = SlotState::kTombstone;
  slot.version.fetch_add(1, std::memory_order_release);
  --occupied_;
  return true;
}

void* FlowTable::find_local(const net::FiveTuple& key) noexcept {
  const u32 index = probe(key);
  return index == kNotFound ? nullptr : entry_at(index);
}

const void* FlowTable::find_remote(const net::FiveTuple& key) const noexcept {
  const u32 index = probe(key);
  return index == kNotFound ? nullptr : entry_at(index);
}

bool FlowTable::read_consistent(const net::FiveTuple& key,
                                std::span<u8> out) const noexcept {
  SPRAYER_DCHECK(out.size() >= entry_size_);
  u32 index = static_cast<u32>(key.pack()) & mask_;
  for (u32 i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[index];
    for (;;) {
      const u32 v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // writer in progress, retry
      const SlotState state = slot.state;
      if (state == SlotState::kEmpty) return false;
      const bool match =
          (state == SlotState::kOccupied) && (slot.key == key);
      if (match) std::memcpy(out.data(), entry_at(index), entry_size_);
      const u32 v2 = slot.version.load(std::memory_order_acquire);
      if (v1 == v2) {
        if (match) return true;
        break;  // stable non-match: continue probing
      }
      // Version moved under us: retry this slot.
    }
    index = (index + 1) & mask_;
  }
  return false;
}

void FlowTable::write_begin(void* entry) noexcept {
  const auto offset = static_cast<std::size_t>(
      static_cast<u8*>(entry) - data_.get());
  const u32 index = static_cast<u32>(offset / entry_size_);
  SPRAYER_DCHECK(index < capacity_);
  slots_[index].version.fetch_add(1, std::memory_order_release);
}

void FlowTable::write_end(void* entry) noexcept {
  const auto offset = static_cast<std::size_t>(
      static_cast<u8*>(entry) - data_.get());
  const u32 index = static_cast<u32>(offset / entry_size_);
  SPRAYER_DCHECK(index < capacity_);
  slots_[index].version.fetch_add(1, std::memory_order_release);
}

}  // namespace sprayer::core

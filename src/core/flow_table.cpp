#include "core/flow_table.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "hash/designated.hpp"

#if defined(__SSE2__) && !SPRAYER_TSAN
#include <emmintrin.h>
#define SPRAYER_FLOW_TABLE_SSE2 1
#else
#define SPRAYER_FLOW_TABLE_SSE2 0
#endif

namespace sprayer::core {

namespace {

u32 checked_capacity(u32 capacity) {
  SPRAYER_CHECK_MSG(capacity >= 2 && std::has_single_bit(capacity),
                    "flow table capacity must be a power of two");
  return std::max(capacity, FlowTable::kGroupWidth);
}

#if !SPRAYER_FLOW_TABLE_SSE2
// SWAR tag scan (assumes little-endian lane order, like every supported
// target; SSE2/NEON builds never take this path on x86).
constexpr u64 kLoBits = 0x0101010101010101ULL;
constexpr u64 kLow7 = 0x7f7f7f7f7f7f7f7fULL;

/// 0x80 flag in exactly the bytes of `x` that are zero (no false positives,
/// unlike the borrow-propagating (x - lo) & ~x & hi variant).
constexpr u64 zero_byte_flags(u64 x) noexcept {
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

/// Compact per-byte 0x80 flags into an 8-bit lane mask (movemask emulation).
constexpr u32 flags_to_mask(u64 flags) noexcept {
  return static_cast<u32>(((flags >> 7) * 0x0102040810204080ULL) >> 56);
}

constexpr u32 bytes_equal_mask(u64 w0, u64 w1, u8 needle) noexcept {
  const u64 pattern = kLoBits * needle;
  return flags_to_mask(zero_byte_flags(w0 ^ pattern)) |
         (flags_to_mask(zero_byte_flags(w1 ^ pattern)) << 8);
}
#endif  // !SPRAYER_FLOW_TABLE_SSE2

/// Copy an entry that the owner core may be mutating concurrently; the
/// caller's seqlock version check decides whether the copy was torn.
/// Deliberately invisible to TSan: with the attribute GCC/Clang drop all
/// instrumentation here, and under TSan the bytes go through real atomic
/// loads so the compiler cannot tear or re-read them either.
SPRAYER_NO_SANITIZE_THREAD
void racy_copy(u8* dst, const u8* src, u32 n) noexcept {
#if SPRAYER_TSAN
  for (u32 i = 0; i < n; ++i) {
    dst[i] = __atomic_load_n(src + i, __ATOMIC_RELAXED);
  }
#else
  std::memcpy(dst, src, n);
#endif
}

constexpr std::size_t kHugePage = 2u << 20;

/// Backing store for the randomly-probed arrays. At DPDK-scale table sizes
/// (hundreds of MB) random probes over 4 KiB pages miss the TLB on every
/// access, and x86 drops software prefetches whose page walk misses — which
/// would silently defeat the batched-lookup pipeline. So, like DPDK's
/// hugetlbfs-backed rte_hash, back every hugepage-sized array with 2 MiB
/// pages: preferably from the explicit hugetlb pool (vm.nr_hugepages),
/// otherwise as a transparent-hugepage hint the kernel may honor. Small
/// arrays use the ordinary cache-line-aligned heap.
void* alloc_table_array(std::size_t bytes) {
#ifdef __linux__
  if (bytes >= kHugePage) {
    const std::size_t len = (bytes + kHugePage - 1) & ~(kHugePage - 1);
    void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p == MAP_FAILED) {
      p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      SPRAYER_CHECK(p != MAP_FAILED);
      ::madvise(p, len, MADV_HUGEPAGE);
    }
    std::memset(p, 0, bytes);  // fault all pages in up front
    return p;
  }
#endif
  void* p = ::operator new[](bytes, std::align_val_t{kCacheLineSize});
  std::memset(p, 0, bytes);
  return p;
}

void free_table_array(void* p, std::size_t bytes) noexcept {
#ifdef __linux__
  if (bytes >= kHugePage) {
    ::munmap(p, (bytes + kHugePage - 1) & ~(kHugePage - 1));
    return;
  }
#endif
  ::operator delete[](p, std::align_val_t{kCacheLineSize});
}

}  // namespace

FlowTable::FlowTable(u32 capacity, u32 entry_size, CoreId owner)
    : capacity_(checked_capacity(capacity)),
      group_mask_(capacity_ / kGroupWidth - 1),
      entry_size_(entry_size),
      stride_(8 + ((entry_size + 7u) & ~7u)),
      owner_(owner),
      seg_max_occupancy_(capacity_ - capacity_ / 8) {  // load factor ≤ 87.5 %
  SPRAYER_CHECK(entry_size >= 1);
  static_assert(kEmptyTag == 0, "zeroed tag array must read as all-empty");
  Segment& s = segs_[0];
  s.tags = static_cast<u8*>(alloc_table_array(capacity_));
  s.key_words =
      static_cast<u64*>(alloc_table_array(2ULL * capacity_ * sizeof(u64)));
  s.versions = new std::atomic<u32>[capacity_]();
  s.data = static_cast<u8*>(
      alloc_table_array(static_cast<std::size_t>(capacity_) * stride_));
}

FlowTable::~FlowTable() {
  const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
  for (u32 si = 0; si < nsegs; ++si) {
    Segment& s = segs_[si];
    free_table_array(s.data, static_cast<std::size_t>(capacity_) * stride_);
    delete[] s.versions;
    free_table_array(s.key_words, 2ULL * capacity_ * sizeof(u64));
    free_table_array(s.tags, capacity_);
  }
}

void FlowTable::grow(u32 nsegs) {
  SPRAYER_DCHECK(nsegs < max_segments_);
  Segment& s = segs_[nsegs];
  s.tags = static_cast<u8*>(alloc_table_array(capacity_));
  s.key_words =
      static_cast<u64*>(alloc_table_array(2ULL * capacity_ * sizeof(u64)));
  s.versions = new std::atomic<u32>[capacity_]();
  s.data = static_cast<u8*>(
      alloc_table_array(static_cast<std::size_t>(capacity_) * stride_));
  // Release-publish: a reader that observes the new count also observes the
  // fully-built (zeroed, hence all-empty) segment arrays above.
  num_segments_.store(nsegs + 1, std::memory_order_release);
}

FlowTable::FlowHash FlowTable::hash_of(const net::FiveTuple& key) noexcept {
  return hash::flow_hash(key);
}

FlowTable::PackedKey FlowTable::pack_key(const net::FiveTuple& t) noexcept {
  return PackedKey{
      (static_cast<u64>(t.src_ip.host_order()) << 32) | t.dst_ip.host_order(),
      (static_cast<u64>(t.src_port) << 32) |
          (static_cast<u64>(t.dst_port) << 16) | t.protocol};
}

net::FiveTuple FlowTable::unpack_key(PackedKey k) noexcept {
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr{static_cast<u32>(k.a >> 32)};
  t.dst_ip = net::Ipv4Addr{static_cast<u32>(k.a)};
  t.src_port = static_cast<u16>(k.b >> 32);
  t.dst_port = static_cast<u16>(k.b >> 16);
  t.protocol = static_cast<u8>(k.b);
  return t;
}

FlowTable::PackedKey FlowTable::load_key(const Segment& s,
                                         u32 slot) noexcept {
  u64* w = s.key_words + 2ULL * slot;
  PackedKey k;
  k.a = std::atomic_ref<u64>(w[0]).load(std::memory_order_relaxed);
  k.b = std::atomic_ref<u64>(w[1]).load(std::memory_order_relaxed);
  return k;
}

void FlowTable::store_key(const Segment& s, u32 slot, PackedKey k) noexcept {
  u64* w = s.key_words + 2ULL * slot;
  std::atomic_ref<u64>(w[0]).store(k.a, std::memory_order_relaxed);
  std::atomic_ref<u64>(w[1]).store(k.b, std::memory_order_relaxed);
}

void FlowTable::store_tag(const Segment& s, u32 slot, u8 tag) noexcept {
  // Release: publishes the key/entry stores that precede it to probing cores.
  std::atomic_ref<u8>(s.tags[slot]).store(tag, std::memory_order_release);
}

FlowTable::GroupScan FlowTable::scan_group(const Segment& seg, u32 group,
                                           u8 needle) const noexcept {
#if SPRAYER_FLOW_TABLE_SSE2
  // Groups are 16-byte aligned inside the cache-line-aligned tag array.
  const __m128i v = _mm_load_si128(
      reinterpret_cast<const __m128i*>(seg.tags + group_base(group)));
  const auto mask_of = [&](u8 byte) noexcept {
    return static_cast<u32>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(byte)))));
  };
  const u32 match = mask_of(needle);
  const u32 empty = mask_of(kEmptyTag);
  const u32 tomb = mask_of(kTombstoneTag);
  return GroupScan{match, empty | tomb, empty};
#else
  u64 w[2];
#if SPRAYER_TSAN
  // Cross-core tag reads must be TSan-visible: gather the group through
  // per-byte atomic loads, then scan the local copy.
  u8 buf[kGroupWidth];
  for (u32 i = 0; i < kGroupWidth; ++i) {
    buf[i] = std::atomic_ref<u8>(seg.tags[group_base(group) + i])
                 .load(std::memory_order_acquire);
  }
  std::memcpy(w, buf, sizeof w);
#else
  std::memcpy(w, seg.tags + group_base(group), sizeof w);
#endif
  const u32 match = bytes_equal_mask(w[0], w[1], needle);
  const u32 empty = bytes_equal_mask(w[0], w[1], kEmptyTag);
  const u32 tomb = bytes_equal_mask(w[0], w[1], kTombstoneTag);
  return GroupScan{match, empty | tomb, empty};
#endif
}

u32 FlowTable::probe(const Segment& seg, const PackedKey& key,
                     u64 m) const noexcept {
  const u8 needle = tag_of(m);
  u32 g = group_of(m);
  const u32 num_groups = group_mask_ + 1;
  for (u32 i = 0; i < num_groups; ++i) {
    const GroupScan s = scan_group(seg, g, needle);
    u32 match = s.match;
    while (match != 0) {
      const u32 slot = group_base(g) + std::countr_zero(match);
      match &= match - 1;
      if (key_equals(seg, slot, key)) return slot;
    }
    // A group with an empty slot was never probed past during insertion,
    // so the key cannot live further down the chain.
    if (s.empty != 0) return kNotFound;
    g = (g + 1) & group_mask_;
  }
  return kNotFound;
}

FlowTable::InsertScan FlowTable::insert_scan(const Segment& seg,
                                             const PackedKey& key,
                                             u64 m) const noexcept {
  const u8 needle = tag_of(m);
  u32 g = group_of(m);
  u32 free_at = kNotFound;
  const u32 num_groups = group_mask_ + 1;
  for (u32 i = 0; i < num_groups; ++i) {
    const GroupScan s = scan_group(seg, g, needle);
    u32 match = s.match;
    while (match != 0) {
      const u32 slot = group_base(g) + std::countr_zero(match);
      match &= match - 1;
      if (key_equals(seg, slot, key)) return InsertScan{slot, free_at};
    }
    if (free_at == kNotFound && s.free != 0) {
      free_at = group_base(g) + std::countr_zero(s.free);
    }
    if (s.empty != 0) break;  // key definitely absent from this segment
    g = (g + 1) & group_mask_;
  }
  return InsertScan{kNotFound, free_at};
}

// Memoized-hash verification policy: only the mutating paths (insert /
// remove) re-derive the Toeplitz hash under SPRAYER_DCHECK — a stale hash
// there would plant a key under the wrong tag and corrupt the table for its
// whole lifetime. The read paths deliberately do NOT re-verify: a stale
// hash on lookup is just a miss (handled like any miss), and re-running the
// per-byte Toeplitz LUT on every lookup would defeat the whole point of
// memoizing the hash in checked builds, which are the default build flavor
// here (Release keeps SPRAYER_DCHECK on).

void* FlowTable::insert(const net::FiveTuple& key, FlowHash hash) {
  SPRAYER_DCHECK(hash == hash_of(key));
  const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
  if (occupied_.load(std::memory_order_relaxed) >=
          static_cast<u64>(seg_max_occupancy_) * nsegs &&
      nsegs >= max_segments_) {
    return nullptr;
  }
  const PackedKey pk = pack_key(key);
  const u64 m = mix(hash, pk);
  // Scan every published segment for the key first — a flow lives in exactly
  // one segment, so a fresh placement may only happen once no segment holds
  // it. Remember the first free slot in the first segment with headroom.
  u32 place_seg = kNotFound;
  u32 place_slot = kNotFound;
  for (u32 si = 0; si < nsegs; ++si) {
    const InsertScan s = insert_scan(segs_[si], pk, m);
    if (s.found != kNotFound) return seg_entry(segs_[si], s.found);
    if (place_slot == kNotFound && s.free_at != kNotFound &&
        seg_occupied_[si] < seg_max_occupancy_) {
      place_seg = si;
      place_slot = s.free_at;
    }
  }
  if (place_slot == kNotFound) {
    if (nsegs >= max_segments_) return nullptr;  // full, growth exhausted
    grow(nsegs);
    place_seg = nsegs;
    place_slot = group_base(group_of(m));  // home group of an empty segment
  }
  const Segment& seg = segs_[place_seg];
  // Seqlock write: remote readers retry while the version is odd. The memset
  // covers the whole stride so the idle stamp of a recycled slot is cleared
  // along with the entry bytes.
  seg.versions[place_slot].fetch_add(1, std::memory_order_release);
  store_key(seg, place_slot, pk);
  std::memset(seg_entry(seg, place_slot) - 8, 0, stride_);
  store_tag(seg, place_slot, tag_of(m));
  seg.versions[place_slot].fetch_add(1, std::memory_order_release);
  ++seg_occupied_[place_seg];
  occupied_.fetch_add(1, std::memory_order_relaxed);
  return seg_entry(seg, place_slot);
}

bool FlowTable::remove(const net::FiveTuple& key, FlowHash hash) {
  SPRAYER_DCHECK(hash == hash_of(key));
  const PackedKey pk = pack_key(key);
  const u64 m = mix(hash, pk);
  const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
  for (u32 si = 0; si < nsegs; ++si) {
    const Segment& seg = segs_[si];
    const u32 slot = probe(seg, pk, m);
    if (slot == kNotFound) continue;
    const u32 g = slot / kGroupWidth;
    // If the slot's group already has an empty lane, no probe chain continues
    // past this group, so the slot can go straight back to empty instead of
    // leaving a tombstone. (Inductively, such a group has never been probed
    // past, so nothing further down the chain can depend on it.)
    const bool to_empty = scan_group(seg, g, tag_of(m)).empty != 0;
    seg.versions[slot].fetch_add(1, std::memory_order_release);
    store_tag(seg, slot, to_empty ? kEmptyTag : kTombstoneTag);
    seg.versions[slot].fetch_add(1, std::memory_order_release);
    --seg_occupied_[si];
    occupied_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void* FlowTable::find_local(const net::FiveTuple& key, FlowHash hash) noexcept {
  const PackedKey pk = pack_key(key);
  const u64 m = mix(hash, pk);
  const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
  for (u32 si = 0; si < nsegs; ++si) {
    const u32 slot = probe(segs_[si], pk, m);
    if (slot != kNotFound) return seg_entry(segs_[si], slot);
  }
  return nullptr;
}

const void* FlowTable::find_remote(const net::FiveTuple& key,
                                   FlowHash hash) const noexcept {
  const PackedKey pk = pack_key(key);
  const u64 m = mix(hash, pk);
  const u32 nsegs = num_segments_.load(std::memory_order_acquire);
  for (u32 si = 0; si < nsegs; ++si) {
    const u32 slot = probe(segs_[si], pk, m);
    if (slot != kNotFound) return seg_entry(segs_[si], slot);
  }
  return nullptr;
}

u32 FlowTable::find_batch(std::span<const net::FiveTuple> keys,
                          std::span<const FlowHash> hashes,
                          std::span<const void*> out) const noexcept {
  SPRAYER_DCHECK(hashes.size() == keys.size());
  SPRAYER_DCHECK(out.size() >= keys.size());
  // Rotating per-item software pipeline, rte_hash_lookup_bulk-style: each
  // lookup passes through three stages spaced kDistance items apart, so
  // every prefetch gets ~16 lookups of independent work before its line is
  // consumed. Advancing one item per step (instead of a chunk per phase)
  // keeps the prefetch issue rate even — a burst of 16+ back-to-back
  // prefetches overruns the L1 fill buffers and the excess is silently
  // dropped, resurfacing as demand misses in stage 3.
  //
  // The pipeline targets segment 0, where every flow lives until the table
  // grows; misses fall back to scalar probes of the overflow segments.
  const u32 nsegs = num_segments_.load(std::memory_order_acquire);
  const Segment& seg0 = segs_[0];
  const std::size_t total = keys.size();
  constexpr std::size_t kDistance = 16;
  // Mixed hashes for the 2*kDistance lookups in flight between stage 1 and
  // stage 3. Slot i % (2*kDistance) is recycled by stage 1 in the same step
  // that stage 3 retires item i, so stage 3 runs first within a step.
  std::array<u64, 2 * kDistance> mbuf;
  // Stage 1: mix the lookup's hash, prefetch its home tag group.
  const auto stage1 = [&](std::size_t i) noexcept {
    const u64 m = mix(hashes[i], pack_key(keys[i]));
    mbuf[i % mbuf.size()] = m;
    SPRAYER_PREFETCH_READ(seg0.tags + group_base(group_of(m)));
  };
  // Stage 2: scan the (now resident) home group, prefetch the first
  // candidate's key and entry lines. If the home group has no empty lane the
  // probe chain continues, so also start fetching the overflow group's tags.
  const auto stage2 = [&](std::size_t i) noexcept {
    const u64 m = mbuf[i % mbuf.size()];
    const u32 g = group_of(m);
    const GroupScan s = scan_group(seg0, g, tag_of(m));
    if (s.match != 0) {
      const u32 slot = group_base(g) + std::countr_zero(s.match);
      SPRAYER_PREFETCH_READ(seg0.key_words + 2ULL * slot);
      SPRAYER_PREFETCH_READ(seg_entry(seg0, slot));
    }
    if (s.empty == 0) {
      SPRAYER_PREFETCH_READ(seg0.tags + group_base((g + 1) & group_mask_));
    }
  };
  // Stage 3: full probe — the home tag group and the likely key/entry lines
  // have each been in flight for kDistance lookups' worth of work.
  const auto stage3 = [&](std::size_t i) noexcept {
    const u64 m = mbuf[i % mbuf.size()];
    const PackedKey pk = pack_key(keys[i]);
    u32 slot = probe(seg0, pk, m);
    const void* entry = slot == kNotFound ? nullptr : seg_entry(seg0, slot);
    for (u32 si = 1; entry == nullptr && si < nsegs; ++si) {
      slot = probe(segs_[si], pk, m);
      if (slot != kNotFound) entry = seg_entry(segs_[si], slot);
    }
    out[i] = entry;
    return static_cast<u32>(entry != nullptr);
  };
  u32 hits = 0;
  for (std::size_t step = 0; step < total + 2 * kDistance; ++step) {
    if (step >= 2 * kDistance) hits += stage3(step - 2 * kDistance);
    if (step >= kDistance && step - kDistance < total) {
      stage2(step - kDistance);
    }
    if (step < total) stage1(step);
  }
  return hits;
}

bool FlowTable::read_consistent(const net::FiveTuple& key, FlowHash hash,
                                std::span<u8> out) const noexcept {
  SPRAYER_DCHECK(out.size() >= entry_size_);
  const PackedKey pk = pack_key(key);
  const u64 m = mix(hash, pk);
  const u8 needle = tag_of(m);
  const u32 nsegs = num_segments_.load(std::memory_order_acquire);
  const u32 num_groups = group_mask_ + 1;
  for (u32 si = 0; si < nsegs; ++si) {
    const Segment& seg = segs_[si];
    u32 g = group_of(m);
    for (u32 i = 0; i < num_groups; ++i) {
      const GroupScan s = scan_group(seg, g, needle);
      u32 match = s.match;
      while (match != 0) {
        const u32 slot = group_base(g) + std::countr_zero(match);
        match &= match - 1;
        for (;;) {
          const u32 v1 = seg.versions[slot].load(std::memory_order_acquire);
          if (v1 & 1) {  // writer in progress, retry
            cpu_relax();
            continue;
          }
          const bool found =
              load_tag(seg, slot) == needle && key_equals(seg, slot, pk);
          if (found) {
            racy_copy(out.data(), seg_entry(seg, slot), entry_size_);
          }
          std::atomic_thread_fence(std::memory_order_acquire);
          const u32 v2 = seg.versions[slot].load(std::memory_order_relaxed);
          if (v1 == v2) {
            if (found) return true;
            break;  // stable non-match: continue probing
          }
          // Version moved under us: retry this slot.
        }
      }
      if (s.empty != 0) break;  // absent from this segment, try the next
      g = (g + 1) & group_mask_;
    }
  }
  return false;
}

const FlowTable::Segment& FlowTable::segment_of(const void* entry,
                                                u32* slot) const noexcept {
  const u8* p = static_cast<const u8*>(entry) - 8;
  const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
  const std::size_t seg_bytes = static_cast<std::size_t>(capacity_) * stride_;
  for (u32 si = 0; si < nsegs; ++si) {
    const Segment& s = segs_[si];
    if (p >= s.data && p < s.data + seg_bytes) {
      *slot = static_cast<u32>(static_cast<std::size_t>(p - s.data) / stride_);
      return s;
    }
  }
  SPRAYER_CHECK_MSG(false, "entry pointer does not belong to this table");
  return segs_[0];  // unreachable
}

void FlowTable::write_begin(void* entry) noexcept {
  u32 slot = 0;
  const Segment& s = segment_of(entry, &slot);
  s.versions[slot].fetch_add(1, std::memory_order_release);
}

void FlowTable::write_end(void* entry) noexcept {
  u32 slot = 0;
  const Segment& s = segment_of(entry, &slot);
  s.versions[slot].fetch_add(1, std::memory_order_release);
}

}  // namespace sprayer::core

// Deterministic transfer-fault injection for the lossless redirect path.
//
// Wraps any ICorePort and truncates every `reject_period`-th transfer_batch
// call to at most `accept_cap` descriptors, independent of real ring
// occupancy. Tests and benches use it to exercise the park/retry machinery
// without winning a timing race against ring drain: the wrapped engine must
// deliver every descriptor anyway (transfer_drops stays zero), just across
// more flush rounds. Single-threaded per instance — each worker wraps its
// own port, mirroring how CorePort itself is per-core.
#pragma once

#include <span>

#include "core/config.hpp"
#include "core/engine.hpp"

namespace sprayer::core {

class FaultInjectedPort final : public ICorePort {
 public:
  FaultInjectedPort(ICorePort& inner, TransferFaultConfig cfg) noexcept
      : inner_(inner), cfg_(cfg) {}

  bool transfer(CoreId dest, net::Packet* pkt) override {
    if (should_reject() && cfg_.accept_cap == 0) {
      ++forced_rejections_;
      return false;
    }
    return inner_.transfer(dest, pkt);
  }

  u32 transfer_batch(CoreId dest,
                     std::span<net::Packet* const> pkts) override {
    if (should_reject() && pkts.size() > cfg_.accept_cap) {
      ++forced_rejections_;
      pkts = pkts.first(cfg_.accept_cap);
      if (pkts.empty()) return 0;
    }
    return inner_.transfer_batch(dest, pkts);
  }

  void transmit(net::Packet* pkt) override { inner_.transmit(pkt); }
  void transmit_batch(std::span<net::Packet* const> pkts) override {
    inner_.transmit_batch(pkts);
  }

  /// transfer_batch (or transfer) calls the schedule truncated.
  [[nodiscard]] u64 forced_rejections() const noexcept {
    return forced_rejections_;
  }

 private:
  [[nodiscard]] bool should_reject() noexcept {
    if (!cfg_.enabled()) return false;
    return ++calls_ % cfg_.reject_period == 0;
  }

  ICorePort& inner_;
  TransferFaultConfig cfg_;
  u64 calls_ = 0;
  u64 forced_rejections_ = 0;
};

}  // namespace sprayer::core

// Run-to-completion NF service chains.
//
// A chain runs a batch through every hop (NAT -> firewall -> LB -> monitor)
// on the core the batch arrived at, compacting drops between hops, before
// the engine transmits the survivors — one pass over the packet data while
// it is cache-hot, instead of N framework round-trips.
//
// Two implementations share the IChain interface:
//   * NfChain<Nfs...> — compile-time chain over concrete `final` NF types:
//     every handler call is direct (devirtualized, inlinable) and the hops
//     share one BatchMeta, so the five-tuple extraction / canonicalization /
//     hash fetch that every stateful NF needs is done once per batch, not
//     once per hop. After a tuple-rewriting hop (NAT) the meta — including
//     the packets' memoized RSS hash — is refreshed exactly once.
//   * DynamicChain — type-erased fallback for config-driven chains: per-hop
//     virtual dispatch, each hop re-deriving its own per-packet metadata
//     (what independent NF passes genuinely cost).
//
// Connection-packet semantics across hops (DESIGN.md §11): a connection
// packet redirects ONCE, to its flow's designated core, and the whole
// chain's connection handlers run there. This is sound even through NAT
// because the translated tuple is chosen to map back to the claiming core
// (PortPool::claim_matching) and the designated hash is symmetric — every
// downstream hop's state writes, in both directions, land on the same core.
//
// Chains hold no per-batch mutable state: the engine passes its own
// ChainScratch so one chain object can serve every worker thread.
#pragma once

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/nf.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::core {

/// Per-engine (per-core) scratch for chain passes: the verdict sheet and
/// the shared per-batch metadata. Owned by SprayerCore, not the chain, so a
/// single chain instance is safe under concurrent workers.
struct ChainScratch {
  BatchVerdicts verdicts;
  BatchMeta meta;
};

/// Everything a chain needs at bring-up. `hop_cfgs` has one slot per hop;
/// the framework pre-fills each slot's registry pointer, the chain runs
/// every hop's init() into its slot, and the framework sizes per-hop flow
/// tables from the results.
struct ChainInit {
  std::span<NfInitConfig> hop_cfgs;
  u32 num_cores = 0;
  /// Registry for the chain's own per-hop metrics
  /// ("chain.h<i>.<nf>.packets/.drops/.ns"); null → chain metrics off.
  telemetry::MetricsRegistry* registry = nullptr;
  /// Per-hop latency counters (…ns). Costs one clock read per hop per
  /// batch, so it is opt-in (SprayerConfig::chain_hop_timing).
  bool hop_timing = false;
  /// Lifecycle sweep (DESIGN.md §15): housekeeping() drives each stateful
  /// hop's cursor-bounded idle-aging sweep. NAT's TIME_WAIT reaping also
  /// rides on it, so leave this on unless the hop set is stateless.
  bool lifecycle_sweep = true;
  /// Override of every hop's idle timeout (0 keeps the value each NF's
  /// init() left in its NfInitConfig).
  Time idle_timeout_override = 0;
  /// Tag groups swept per hop per housekeeping tick; 0 = automatic
  /// (max(64, total_groups / 8): a full rotation every 8 ticks).
  u32 sweep_groups_per_tick = 0;
};

/// Monotonic nanosecond clock for per-hop timing (threaded executor).
[[nodiscard]] Time chain_clock_ns() noexcept;

class IChain {
 public:
  virtual ~IChain() = default;

  [[nodiscard]] virtual u32 num_hops() const noexcept = 0;
  [[nodiscard]] virtual INetworkFunction& hop(u32 i) const noexcept = 0;

  /// Run every hop's init() and register chain metrics. Optional: a chain
  /// used standalone (unit tests driving SprayerCore directly) works
  /// without it — hops then run with their own defaults and no metrics.
  virtual void init(const ChainInit& ci) = 0;

  /// Run a batch of connection packets (SYN/FIN/RST on their designated
  /// core) through every hop. The batch is compacted in place to the
  /// survivors; dropped packets are appended to `drops` (not freed).
  /// Stateless hops in a mixed chain receive their regular_packets()
  /// handler — they have no flow events to observe.
  virtual void connection_pass(runtime::PacketBatch& batch,
                               ChainScratch& scratch,
                               std::span<NfContext* const> ctxs, Time now,
                               runtime::PacketBatch& drops) = 0;

  /// Same for regular packets, on whichever core they arrived.
  virtual void regular_pass(runtime::PacketBatch& batch, ChainScratch& scratch,
                            std::span<NfContext* const> ctxs, Time now,
                            runtime::PacketBatch& drops) = 0;

  /// Periodic maintenance: every hop's housekeeping() with its own context.
  virtual void housekeeping(std::span<NfContext* const> ctxs, Time now) = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Shared bookkeeping for both chain flavors: the hop list (as base
/// pointers — used for init/housekeeping/metrics, never on the fused hot
/// path), per-hop stateless flags, and per-hop telemetry.
class ChainBase : public IChain {
 public:
  [[nodiscard]] u32 num_hops() const noexcept override {
    return static_cast<u32>(hops_.size());
  }
  [[nodiscard]] INetworkFunction& hop(u32 i) const noexcept override {
    SPRAYER_DCHECK(i < hops_.size());
    return *hops_[i];
  }

  void init(const ChainInit& ci) override;
  void housekeeping(std::span<NfContext* const> ctxs, Time now) override;

 protected:
  explicit ChainBase(std::vector<INetworkFunction*> hops);

  struct HopMetrics {
    telemetry::Counter packets;  // packets entering the hop
    telemetry::Counter drops;    // packets the hop's verdicts dropped
    telemetry::Counter ns;       // wall time in the hop (hop_timing only)
    telemetry::Counter expired;  // entries expired by the lifecycle sweep
    telemetry::Histogram sweep_ns;      // wall ns per sweep_idle() call
    telemetry::Histogram sweep_groups;  // tag groups scanned per call
  };

  /// Post-hop accounting: `before` packets entered, `dropped` were culled,
  /// `t0` is the hop-entry clock read (0 unless timed_).
  void record_hop(u32 h, CoreId shard, u32 before, u32 dropped,
                  Time t0) noexcept {
    HopMetrics& m = hop_tm_[h];
    m.packets.add(shard, before);
    if (dropped > 0) m.drops.add(shard, dropped);
    if (timed_) m.ns.add(shard, (chain_clock_ns() - t0) / kNanosecond);
  }

  /// Eagerly re-memoize survivors' RSS hashes after a tuple-rewriting hop
  /// (packets the hop invalidated recompute; untouched memos are kept).
  static void refresh_hashes(runtime::PacketBatch& batch) noexcept {
    for (net::Packet* pkt : batch) {
      if (pkt->is_ipv4()) (void)hash::packet_flow_hash(*pkt);
    }
  }

  /// One sweep_idle() increment for hop `h` (called from housekeeping once
  /// per stateful hop per tick).
  void sweep_hop(u32 h, NfContext& ctx);

  std::vector<INetworkFunction*> hops_;
  std::vector<u8> hop_stateless_;
  std::vector<HopMetrics> hop_tm_;
  std::vector<Time> hop_idle_;  // effective per-hop idle timeout
  bool timed_ = false;
  bool sweep_ = true;
  u32 sweep_groups_per_tick_ = 0;  // 0 = auto budget
};

/// Type-erased chain: per-hop virtual dispatch over INetworkFunction.
/// Also the adapter that lets every single-NF entry point keep working
/// (ThreadedMiddlebox / SimMiddlebox wrap the NF in a one-hop DynamicChain).
class DynamicChain final : public ChainBase {
 public:
  explicit DynamicChain(std::vector<INetworkFunction*> hops)
      : ChainBase(std::move(hops)) {}
  /// One-hop convenience (the single-NF compatibility path).
  explicit DynamicChain(INetworkFunction& nf) : ChainBase({&nf}) {}

  void connection_pass(runtime::PacketBatch& batch, ChainScratch& scratch,
                       std::span<NfContext* const> ctxs, Time now,
                       runtime::PacketBatch& drops) override;
  void regular_pass(runtime::PacketBatch& batch, ChainScratch& scratch,
                    std::span<NfContext* const> ctxs, Time now,
                    runtime::PacketBatch& drops) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "dynamic";
  }
};

/// An NF whose regular-packet handler can consume the chain's shared
/// per-batch metadata instead of re-deriving tuples and hashes itself.
template <class Nf>
concept MetaAware = requires(Nf& nf, runtime::PacketBatch& b, BatchMeta& m,
                             NfContext& c, BatchVerdicts& v) {
  nf.regular_packets(b, m, c, v);
};

/// Compile-time fused chain. Template arguments are the concrete (final)
/// NF types; construction takes references (the chain does not own its
/// NFs). All handler invocations resolve statically.
template <class... Nfs>
class NfChain final : public ChainBase {
  static_assert(sizeof...(Nfs) >= 1, "a chain needs at least one hop");

 public:
  static constexpr u32 kHops = sizeof...(Nfs);

  explicit NfChain(Nfs&... nfs)
      : ChainBase({&nfs...}), nfs_(nfs...) {}

  void regular_pass(runtime::PacketBatch& batch, ChainScratch& scratch,
                    std::span<NfContext* const> ctxs, Time now,
                    runtime::PacketBatch& drops) override {
    if (batch.empty()) return;
    BatchMeta& meta = scratch.meta;
    meta.build(batch);
    for_each_hop([&](auto& nf, u32 h) {
      NfContext& ctx = *ctxs[h];
      ctx.set_now(now);
      ctx.flows().set_in_connection_handler(false);
      const u32 before = batch.size();
      const Time t0 = timed_ ? chain_clock_ns() : 0;
      scratch.verdicts.reset(before);
      if constexpr (MetaAware<std::remove_reference_t<decltype(nf)>>) {
        nf.regular_packets(batch, meta, ctx, scratch.verdicts);
      } else {
        nf.regular_packets(batch, ctx, scratch.verdicts);
      }
      if (scratch.verdicts.any()) {
        (void)batch.compact(
            [&](u32 i) { return scratch.verdicts.dropped(i); }, drops,
            [&](u32 from, u32 to) { meta.move(from, to); });
      }
      // Only downstream hops read the meta / memoized hash; after the last
      // hop an invalidated memo is recomputed lazily by whoever needs it.
      if (h + 1 < kHops && nf.rewrites_tuple()) meta.refresh(batch);
      record_hop(h, ctx.core(), before, before - batch.size(), t0);
      return !batch.empty();
    });
  }

  void connection_pass(runtime::PacketBatch& batch, ChainScratch& scratch,
                       std::span<NfContext* const> ctxs, Time now,
                       runtime::PacketBatch& drops) override {
    if (batch.empty()) return;
    // No shared meta here: connection handlers are scalar per-packet paths
    // over small batches, keyed by tuples they re-derive post-rewrite.
    for_each_hop([&](auto& nf, u32 h) {
      NfContext& ctx = *ctxs[h];
      ctx.set_now(now);
      const bool stateless = hop_stateless_[h] != 0;
      ctx.flows().set_in_connection_handler(!stateless);
      const u32 before = batch.size();
      const Time t0 = timed_ ? chain_clock_ns() : 0;
      scratch.verdicts.reset(before);
      if (stateless) {
        nf.regular_packets(batch, ctx, scratch.verdicts);
      } else {
        nf.connection_packets(batch, ctx, scratch.verdicts);
      }
      if (scratch.verdicts.any()) {
        (void)batch.compact(
            [&](u32 i) { return scratch.verdicts.dropped(i); }, drops);
      }
      if (h + 1 < kHops && nf.rewrites_tuple()) refresh_hashes(batch);
      record_hop(h, ctx.core(), before, before - batch.size(), t0);
      return !batch.empty();
    });
  }

  [[nodiscard]] const char* name() const noexcept override { return "fused"; }

 private:
  /// Statically unrolled hop loop; `fn` returns false to stop early (batch
  /// ran empty — nothing left for downstream hops).
  template <class Fn>
  void for_each_hop(Fn&& fn) {
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (void)(fn(std::get<I>(nfs_), static_cast<u32>(I)) && ...);
    }(std::make_index_sequence<kHops>{});
  }

  std::tuple<Nfs&...> nfs_;
};

}  // namespace sprayer::core

// Per-core flow-state table with the paper's "writing partition" semantics:
// exactly one core (the owner / designated core) ever writes a flow's entry,
// while any core may read it (§3.2–3.3).
//
// Implementation: fixed-capacity open-addressing hash table (linear probing
// with tombstones), entries stored inline. A per-slot seqlock version makes
// cross-core reads consistent in the threaded executor without any locking
// on the writer side; in the single-threaded simulator it is inert.
#pragma once

#include <atomic>
#include <bit>
#include <memory>
#include <span>

#include "common/check.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::core {

class FlowTable {
 public:
  /// `capacity` must be a power of two. `entry_size` is the inline state
  /// size per flow (NFs set it in their init function).
  FlowTable(u32 capacity, u32 entry_size, CoreId owner);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }
  [[nodiscard]] u32 entry_size() const noexcept { return entry_size_; }
  [[nodiscard]] u32 size() const noexcept { return occupied_; }
  [[nodiscard]] CoreId owner() const noexcept { return owner_; }

  /// Insert a flow; returns its (zero-initialized) entry, the existing entry
  /// if the key is already present, or nullptr when the table is full.
  /// Owner-core only.
  [[nodiscard]] void* insert(const net::FiveTuple& key);

  /// Remove a flow. Returns false if absent. Owner-core only.
  bool remove(const net::FiveTuple& key);

  /// Mutable lookup for the owner core.
  [[nodiscard]] void* find_local(const net::FiveTuple& key) noexcept;

  /// Read-only lookup from any core. The pointer is stable until the owner
  /// removes the flow; concurrent in-place updates by the owner may be seen
  /// torn (same as reading a foreign table in any lock-free DPDK pipeline) —
  /// use read_consistent() when a snapshot is required.
  [[nodiscard]] const void* find_remote(
      const net::FiveTuple& key) const noexcept;

  /// Seqlock-consistent copy of a flow's entry into `out` (which must be at
  /// least entry_size bytes). Returns false if the flow is absent.
  [[nodiscard]] bool read_consistent(const net::FiveTuple& key,
                                     std::span<u8> out) const noexcept;

  /// Owner marks an entry about to be mutated / finished mutating. Required
  /// only when mutating an existing entry that remote cores might snapshot
  /// with read_consistent(). insert()/remove() handle versions themselves.
  void write_begin(void* entry) noexcept;
  void write_end(void* entry) noexcept;

  /// Iterate all live entries (owner core): fn(key, entry).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (u32 i = 0; i < capacity_; ++i) {
      if (slots_[i].state == SlotState::kOccupied) {
        fn(slots_[i].key, entry_at(i));
      }
    }
  }

 private:
  enum class SlotState : u8 { kEmpty = 0, kTombstone = 1, kOccupied = 2 };

  struct Slot {
    std::atomic<u32> version{0};  // seqlock: odd while being written
    SlotState state = SlotState::kEmpty;
    net::FiveTuple key;
  };

  [[nodiscard]] u8* entry_at(u32 index) noexcept {
    return data_.get() + static_cast<std::size_t>(index) * entry_size_;
  }
  [[nodiscard]] const u8* entry_at(u32 index) const noexcept {
    return data_.get() + static_cast<std::size_t>(index) * entry_size_;
  }

  /// Probe for a key. Returns the slot index or the first insertable slot
  /// (tombstone/empty) depending on `for_insert`; kNotFound if absent/full.
  static constexpr u32 kNotFound = 0xffffffffu;
  [[nodiscard]] u32 probe(const net::FiveTuple& key) const noexcept;

  u32 capacity_;
  u32 mask_;
  u32 entry_size_;
  CoreId owner_;
  u32 occupied_ = 0;
  u32 max_occupancy_;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<u8[]> data_;
};

}  // namespace sprayer::core

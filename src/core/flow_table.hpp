// Per-core flow-state table with the paper's "writing partition" semantics:
// exactly one core (the owner / designated core) ever writes a flow's entry,
// while any core may read it (§3.2–3.3).
//
// Implementation: cache-conscious open-addressing table in the style of
// DPDK's rte_hash / Swiss tables. Slot metadata is split into cache-line-
// aligned groups of 16 one-byte hash tags scanned 16-at-a-time with SSE2 (a
// portable SWAR fallback covers other ISAs), so a probe touches exactly one
// tag line before ever dereferencing a key; full keys, per-slot seqlock
// versions, and entry data live in separate parallel arrays. The table is
// indexed by the system-wide symmetric flow hash (the same Toeplitz value a
// symmetric-key RSS NIC computes, memoized in Packet::flow_hash()) folded
// with a two-multiply mix of the key itself — the symmetric Toeplitz value
// has at most 2^16 distinct outputs and cannot index a large table alone
// (see mix()) — so hot paths never re-run the per-byte Toeplitz LUT.
// find_batch() pipelines a whole batch of lookups with software prefetch
// (tag group, then key/entry lines) the way rte_hash_lookup_bulk does.
//
// A per-slot seqlock version makes cross-core reads consistent in the
// threaded executor without any locking on the writer side; in the
// single-threaded simulator it is inert.
#pragma once

#include <atomic>
#include <bit>
#include <memory>
#include <span>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::core {

class FlowTable {
 public:
  /// The symmetric flow hash the table is indexed by (see hash::flow_hash).
  using FlowHash = u32;

  /// Hash a key the way every other call site does. All overloads taking an
  /// explicit FlowHash require exactly this value (typically read from
  /// Packet::flow_hash() instead of recomputed).
  [[nodiscard]] static FlowHash hash_of(const net::FiveTuple& key) noexcept;

  /// Slots per tag group; one group's tags share a 16-byte line segment.
  static constexpr u32 kGroupWidth = 16;

  /// `capacity` must be a power of two (values below kGroupWidth are rounded
  /// up to it). `entry_size` is the inline state size per flow (NFs set it
  /// in their init function).
  FlowTable(u32 capacity, u32 entry_size, CoreId owner);
  ~FlowTable();

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }
  [[nodiscard]] u32 entry_size() const noexcept { return entry_size_; }
  /// Live-entry count. Written only by the owner core; cross-core readers
  /// (stats paths) get a relaxed-atomic snapshot that may lag the owner by
  /// an in-flight insert/remove but is never torn.
  [[nodiscard]] u32 size() const noexcept {
    return occupied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CoreId owner() const noexcept { return owner_; }

  /// Insert a flow; returns its (zero-initialized) entry, the existing entry
  /// if the key is already present, or nullptr when the table is full.
  /// Owner-core only.
  [[nodiscard]] void* insert(const net::FiveTuple& key) {
    return insert(key, hash_of(key));
  }
  [[nodiscard]] void* insert(const net::FiveTuple& key, FlowHash hash);

  /// Remove a flow. Returns false if absent. Owner-core only.
  bool remove(const net::FiveTuple& key) { return remove(key, hash_of(key)); }
  bool remove(const net::FiveTuple& key, FlowHash hash);

  /// Mutable lookup for the owner core.
  [[nodiscard]] void* find_local(const net::FiveTuple& key) noexcept {
    return find_local(key, hash_of(key));
  }
  [[nodiscard]] void* find_local(const net::FiveTuple& key,
                                 FlowHash hash) noexcept;

  /// Read-only lookup from any core. The pointer is stable until the owner
  /// removes the flow; concurrent in-place updates by the owner may be seen
  /// torn (same as reading a foreign table in any lock-free DPDK pipeline) —
  /// use read_consistent() when a snapshot is required.
  [[nodiscard]] const void* find_remote(
      const net::FiveTuple& key) const noexcept {
    return find_remote(key, hash_of(key));
  }
  [[nodiscard]] const void* find_remote(const net::FiveTuple& key,
                                        FlowHash hash) const noexcept;

  /// Batched find_remote: a software-prefetch pipeline (tag group first,
  /// then the candidate's key and entry lines) that overlaps the cache
  /// misses of up to a batch of independent lookups. out[i] is nullptr for
  /// absent keys; returns the number of hits. `hashes` must be the hash_of
  /// each key (e.g. the packets' memoized RSS hashes).
  u32 find_batch(std::span<const net::FiveTuple> keys,
                 std::span<const FlowHash> hashes,
                 std::span<const void*> out) const noexcept;

  /// Issue a prefetch for the key's tag group (stage one of the bulk
  /// pipeline; useful when lookups span several tables).
  void prefetch(const net::FiveTuple& key, FlowHash hash) const noexcept {
    SPRAYER_PREFETCH_READ(tags_ + group_base(group_of(mix(hash, pack_key(key)))));
  }

  /// Seqlock-consistent copy of a flow's entry into `out` (which must be at
  /// least entry_size bytes). Returns false if the flow is absent.
  [[nodiscard]] bool read_consistent(const net::FiveTuple& key,
                                     std::span<u8> out) const noexcept {
    return read_consistent(key, hash_of(key), out);
  }
  [[nodiscard]] bool read_consistent(const net::FiveTuple& key, FlowHash hash,
                                     std::span<u8> out) const noexcept;

  /// Owner marks an entry about to be mutated / finished mutating. Required
  /// only when mutating an existing entry that remote cores might snapshot
  /// with read_consistent(). insert()/remove() handle versions themselves.
  void write_begin(void* entry) noexcept;
  void write_end(void* entry) noexcept;

  /// Iterate all live entries (owner core): fn(key, entry).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (u32 i = 0; i < capacity_; ++i) {
      if (tags_[i] & kOccupiedBit) {
        fn(unpack_key(load_key(i)), entry_at(i));
      }
    }
  }

 private:
  // Tag bytes: 0 = empty (zero-initialized), 1 = tombstone, high bit set =
  // occupied with the mixed hash's top 7 bits in the low bits — a negative
  // probe rejects 127/128 foreign slots from the tag line alone.
  static constexpr u8 kEmptyTag = 0x00;
  static constexpr u8 kTombstoneTag = 0x01;
  static constexpr u8 kOccupiedBit = 0x80;

  /// The five-tuple, packed into two words so cross-core key loads can be
  /// word-sized relaxed atomics (TSan-visible, plain movs on x86).
  struct PackedKey {
    u64 a;  // src_ip:dst_ip
    u64 b;  // src_port:dst_port:protocol
    [[nodiscard]] bool operator==(const PackedKey&) const = default;
  };
  [[nodiscard]] static PackedKey pack_key(const net::FiveTuple& t) noexcept;
  [[nodiscard]] static net::FiveTuple unpack_key(PackedKey k) noexcept;

  /// 16-bit lane masks for one tag group.
  struct GroupScan {
    u32 match;  // tag == needle
    u32 free;   // empty or tombstone
    u32 empty;  // empty only (terminates probe chains)
  };
  [[nodiscard]] GroupScan scan_group(u32 group, u8 needle) const noexcept;

  /// Derive the 64-bit table index from the flow hash plus the packed key.
  /// The symmetric Toeplitz value alone cannot index the table: a 16-bit-
  /// periodic RSS key makes every hash the XOR of a subset of just 16
  /// sliding-window constants, so the "32-bit" hash takes at most 2^16
  /// distinct values — beyond ~64 K flows, whole cohorts of keys would
  /// share one group and one tag and probes would degenerate into long
  /// serialized key-compare chains. Two multiplies fold the full key back
  /// in (far cheaper than re-running the per-byte Toeplitz LUT), and a
  /// splitmix64 finalizer spreads the result over group and tag bits.
  [[nodiscard]] static u64 mix(FlowHash h, const PackedKey& k) noexcept {
    u64 z = h ^ (k.a * 0x9e3779b97f4a7c15ULL) ^ (k.b * 0xc2b2ae3d27d4eb4fULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  [[nodiscard]] u32 group_of(u64 m) const noexcept {
    return static_cast<u32>(m) & group_mask_;
  }
  [[nodiscard]] static u8 tag_of(u64 m) noexcept {
    return static_cast<u8>(kOccupiedBit | (m >> 57));
  }
  [[nodiscard]] static u32 group_base(u32 group) noexcept {
    return group * kGroupWidth;
  }

  [[nodiscard]] PackedKey load_key(u32 slot) const noexcept;
  void store_key(u32 slot, PackedKey k) noexcept;
  [[nodiscard]] bool key_equals(u32 slot, const PackedKey& k) const noexcept {
    return load_key(slot) == k;
  }

  [[nodiscard]] u8* entry_at(u32 index) noexcept {
    return data_ + static_cast<std::size_t>(index) * entry_size_;
  }
  [[nodiscard]] const u8* entry_at(u32 index) const noexcept {
    return data_ + static_cast<std::size_t>(index) * entry_size_;
  }

  /// Probe for a key. Returns the slot index or kNotFound.
  static constexpr u32 kNotFound = 0xffffffffu;
  [[nodiscard]] u32 probe(const PackedKey& key, u64 m) const noexcept;

  void store_tag(u32 slot, u8 tag) noexcept;
  [[nodiscard]] u8 load_tag(u32 slot) const noexcept {
    return std::atomic_ref<u8>(tags_[slot]).load(std::memory_order_acquire);
  }

  u32 capacity_;
  u32 group_mask_;  // (capacity / kGroupWidth) - 1
  u32 entry_size_;
  CoreId owner_;
  std::atomic<u32> occupied_{0};  // owner writes, stats paths read relaxed
  u32 max_occupancy_;
  // tags_/key_words_/data_ are probed at random by every core; they are
  // allocated hugepage-hinted (see alloc_table_array) so large tables do not
  // turn every probe — and every software prefetch — into a TLB miss.
  u8* tags_;         // cache-line aligned, one byte per slot
  u64* key_words_;   // 2 per slot
  std::unique_ptr<std::atomic<u32>[]> versions_;  // seqlock, 1 per slot
  u8* data_;
};

}  // namespace sprayer::core

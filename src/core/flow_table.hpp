// Per-core flow-state table with the paper's "writing partition" semantics:
// exactly one core (the owner / designated core) ever writes a flow's entry,
// while any core may read it (§3.2–3.3).
//
// Implementation: cache-conscious open-addressing table in the style of
// DPDK's rte_hash / Swiss tables. Slot metadata is split into cache-line-
// aligned groups of 16 one-byte hash tags scanned 16-at-a-time with SSE2 (a
// portable SWAR fallback covers other ISAs), so a probe touches exactly one
// tag line before ever dereferencing a key; full keys, per-slot seqlock
// versions, and entry data live in separate parallel arrays. The table is
// indexed by the system-wide symmetric flow hash (the same Toeplitz value a
// symmetric-key RSS NIC computes, memoized in Packet::flow_hash()) folded
// with a two-multiply mix of the key itself — the symmetric Toeplitz value
// has at most 2^16 distinct outputs and cannot index a large table alone
// (see mix()) — so hot paths never re-run the per-byte Toeplitz LUT.
// find_batch() pipelines a whole batch of lookups with software prefetch
// (tag group, then key/entry lines) the way rte_hash_lookup_bulk does.
//
// A per-slot seqlock version makes cross-core reads consistent in the
// threaded executor without any locking on the writer side; in the
// single-threaded simulator it is inert.
//
// Lifecycle extensions (DESIGN.md §15):
//
//  * Every slot carries a `last_seen` Time stamp stored inline, eight bytes
//    before the entry in the data array (stride = 8 + entry bytes rounded up
//    to 8). Sharing the entry's cache line means touching the stamp on a
//    lookup is free — the line is already resident — where a separate stamp
//    array would cost one extra demand miss per lookup. Stamps are relaxed
//    atomics outside the seqlock protocol: a torn or stale stamp only shifts
//    an expiry decision by one sweep rotation, never corrupts state.
//
//  * The table can grow online by adding equal-sized segments (opt in via
//    set_growth()). Each segment is an independent probe domain under the
//    same group/tag math, so growth never rehashes or moves an entry —
//    inserts that would have failed at max load spill into a fresh segment
//    and lookups degrade to probing each published segment in order. The
//    segment count is published with a release store so concurrent remote
//    readers either see a fully-built segment or none at all.
//
//  * sweep_groups() iterates a bounded number of tag groups per call behind
//    a caller-held cursor, so housekeeping ticks can age entries
//    incrementally without ever paying a full-table scan.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <span>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::core {

class FlowTable {
 public:
  /// The symmetric flow hash the table is indexed by (see hash::flow_hash).
  using FlowHash = u32;

  /// Hash a key the way every other call site does. All overloads taking an
  /// explicit FlowHash require exactly this value (typically read from
  /// Packet::flow_hash() instead of recomputed).
  [[nodiscard]] static FlowHash hash_of(const net::FiveTuple& key) noexcept;

  /// Slots per tag group; one group's tags share a 16-byte line segment.
  static constexpr u32 kGroupWidth = 16;

  /// Hard ceiling on online growth: the table never exceeds
  /// kMaxSegments × the provisioned capacity.
  static constexpr u32 kMaxSegments = 8;

  /// `capacity` must be a power of two (values below kGroupWidth are rounded
  /// up to it). `entry_size` is the inline state size per flow (NFs set it
  /// in their init function).
  FlowTable(u32 capacity, u32 entry_size, CoreId owner);
  ~FlowTable();

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Provisioned slot count across all published segments. With growth off
  /// (the default) this is the constructor capacity, always.
  [[nodiscard]] u32 capacity() const noexcept {
    return capacity_ * num_segments_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u32 entry_size() const noexcept { return entry_size_; }
  /// Live-entry count. Written only by the owner core; cross-core readers
  /// (stats paths) get a relaxed-atomic snapshot that may lag the owner by
  /// an in-flight insert/remove but is never torn.
  [[nodiscard]] u32 size() const noexcept {
    return occupied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CoreId owner() const noexcept { return owner_; }

  /// Allow the table to grow online up to `max_segments` segments of the
  /// constructor capacity each (clamped to [1, kMaxSegments]). Growth is
  /// opt-in: without this call insert() fails at max load exactly as a
  /// fixed-capacity table does. Owner-core only, any time.
  void set_growth(u32 max_segments) noexcept {
    max_segments_ = std::min(std::max(max_segments, 1u), kMaxSegments);
  }
  [[nodiscard]] u32 num_segments() const noexcept {
    return num_segments_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u32 max_segments() const noexcept { return max_segments_; }

  /// Insert a flow; returns its (zero-initialized) entry, the existing entry
  /// if the key is already present, or nullptr when the table is full.
  /// Owner-core only.
  [[nodiscard]] void* insert(const net::FiveTuple& key) {
    return insert(key, hash_of(key));
  }
  [[nodiscard]] void* insert(const net::FiveTuple& key, FlowHash hash);

  /// Remove a flow. Returns false if absent. Owner-core only.
  bool remove(const net::FiveTuple& key) { return remove(key, hash_of(key)); }
  bool remove(const net::FiveTuple& key, FlowHash hash);

  /// Mutable lookup for the owner core.
  [[nodiscard]] void* find_local(const net::FiveTuple& key) noexcept {
    return find_local(key, hash_of(key));
  }
  [[nodiscard]] void* find_local(const net::FiveTuple& key,
                                 FlowHash hash) noexcept;

  /// Read-only lookup from any core. The pointer is stable until the owner
  /// removes the flow; concurrent in-place updates by the owner may be seen
  /// torn (same as reading a foreign table in any lock-free DPDK pipeline) —
  /// use read_consistent() when a snapshot is required.
  [[nodiscard]] const void* find_remote(
      const net::FiveTuple& key) const noexcept {
    return find_remote(key, hash_of(key));
  }
  [[nodiscard]] const void* find_remote(const net::FiveTuple& key,
                                        FlowHash hash) const noexcept;

  /// Batched find_remote: a software-prefetch pipeline (tag group first,
  /// then the candidate's key and entry lines) that overlaps the cache
  /// misses of up to a batch of independent lookups. out[i] is nullptr for
  /// absent keys; returns the number of hits. `hashes` must be the hash_of
  /// each key (e.g. the packets' memoized RSS hashes).
  u32 find_batch(std::span<const net::FiveTuple> keys,
                 std::span<const FlowHash> hashes,
                 std::span<const void*> out) const noexcept;

  /// Issue a prefetch for the key's tag group (stage one of the bulk
  /// pipeline; useful when lookups span several tables).
  void prefetch(const net::FiveTuple& key, FlowHash hash) const noexcept {
    SPRAYER_PREFETCH_READ(segs_[0].tags +
                          group_base(group_of(mix(hash, pack_key(key)))));
  }

  /// Seqlock-consistent copy of a flow's entry into `out` (which must be at
  /// least entry_size bytes). Returns false if the flow is absent.
  [[nodiscard]] bool read_consistent(const net::FiveTuple& key,
                                     std::span<u8> out) const noexcept {
    return read_consistent(key, hash_of(key), out);
  }
  [[nodiscard]] bool read_consistent(const net::FiveTuple& key, FlowHash hash,
                                     std::span<u8> out) const noexcept;

  /// Owner marks an entry about to be mutated / finished mutating. Required
  /// only when mutating an existing entry that remote cores might snapshot
  /// with read_consistent(). insert()/remove() handle versions themselves.
  void write_begin(void* entry) noexcept;
  void write_end(void* entry) noexcept;

  // --- Idle-aging stamps -------------------------------------------------
  //
  // The stamp lives eight bytes before the entry; any entry pointer handed
  // out by this table works. Relaxed atomics: a stamp race costs at most one
  // sweep rotation of expiry precision.

  /// Record activity on a flow. Cheap enough for every hit on a write path.
  static void touch(void* entry, Time now) noexcept {
    std::atomic_ref<u64>(*stamp_of(entry)).store(now,
                                                 std::memory_order_relaxed);
  }
  /// Record activity from a read path: skips the store (and the cross-core
  /// cache-line ping it would cost on a remote table) unless the stamp is at
  /// least `granularity` old.
  static void touch_if_stale(const void* entry, Time now,
                             Time granularity) noexcept {
    std::atomic_ref<u64> s(*stamp_of(const_cast<void*>(entry)));
    const u64 prev = s.load(std::memory_order_relaxed);
    if (now > prev && now - prev >= granularity) {
      s.store(now, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] static Time last_seen(const void* entry) noexcept {
    return std::atomic_ref<u64>(*stamp_of(const_cast<void*>(entry)))
        .load(std::memory_order_relaxed);
  }

  /// Tag groups across all published segments — the sweep's rotation length.
  [[nodiscard]] u64 total_groups() const noexcept {
    return static_cast<u64>(group_mask_ + 1) *
           num_segments_.load(std::memory_order_relaxed);
  }

  /// Scan up to `max_groups` tag groups starting at `cursor` (wrapping),
  /// calling fn(key, entry, last_seen) for each occupied slot, and advance
  /// the cursor. Bounded work per call — a full rotation takes
  /// ceil(total_groups / max_groups) calls. The caller owns the cursor (one
  /// per sweeping core). Tag loads are acquire atomics so a shared table may
  /// be swept while other cores mutate it under their locks; a slot that
  /// changes mid-scan is simply seen in one state or the other.
  template <typename Fn>
  u32 sweep_groups(u64& cursor, u32 max_groups, Fn&& fn) {
    const u32 nsegs = num_segments_.load(std::memory_order_acquire);
    const u64 total = static_cast<u64>(group_mask_ + 1) * nsegs;
    const u32 shift = static_cast<u32>(std::countr_zero(group_mask_ + 1));
    const u32 n = static_cast<u32>(
        std::min<u64>(max_groups, total));
    for (u32 k = 0; k < n; ++k) {
      const u64 g = cursor % total;
      ++cursor;
      const Segment& s = segs_[static_cast<u32>(g >> shift)];
      const u32 base = group_base(static_cast<u32>(g) & group_mask_);
      for (u32 lane = 0; lane < kGroupWidth; ++lane) {
        const u32 slot = base + lane;
        if (load_tag(s, slot) & kOccupiedBit) {
          fn(unpack_key(load_key(s, slot)), seg_entry(s, slot),
             last_seen(seg_entry(s, slot)));
        }
      }
    }
    return n;
  }

  /// Iterate all live entries (owner core): fn(key, entry).
  template <typename Fn>
  void for_each(Fn&& fn) {
    const u32 nsegs = num_segments_.load(std::memory_order_relaxed);
    for (u32 si = 0; si < nsegs; ++si) {
      for (u32 i = 0; i < capacity_; ++i) {
        if (segs_[si].tags[i] & kOccupiedBit) {
          fn(unpack_key(load_key(segs_[si], i)), seg_entry(segs_[si], i));
        }
      }
    }
  }

 private:
  // Tag bytes: 0 = empty (zero-initialized), 1 = tombstone, high bit set =
  // occupied with the mixed hash's top 7 bits in the low bits — a negative
  // probe rejects 127/128 foreign slots from the tag line alone.
  static constexpr u8 kEmptyTag = 0x00;
  static constexpr u8 kTombstoneTag = 0x01;
  static constexpr u8 kOccupiedBit = 0x80;

  /// One equal-capacity probe domain. segs_[0] is built by the constructor;
  /// further segments appear only via grow(). The array itself is inline so
  /// readers never chase a reallocating pointer — publication is just the
  /// release store of num_segments_.
  struct Segment {
    u8* tags = nullptr;        // cache-line aligned, one byte per slot
    u64* key_words = nullptr;  // 2 per slot
    std::atomic<u32>* versions = nullptr;  // seqlock, 1 per slot
    u8* data = nullptr;        // stride_ bytes per slot: 8B stamp + entry
  };

  /// The five-tuple, packed into two words so cross-core key loads can be
  /// word-sized relaxed atomics (TSan-visible, plain movs on x86).
  struct PackedKey {
    u64 a;  // src_ip:dst_ip
    u64 b;  // src_port:dst_port:protocol
    [[nodiscard]] bool operator==(const PackedKey&) const = default;
  };
  [[nodiscard]] static PackedKey pack_key(const net::FiveTuple& t) noexcept;
  [[nodiscard]] static net::FiveTuple unpack_key(PackedKey k) noexcept;

  /// 16-bit lane masks for one tag group.
  struct GroupScan {
    u32 match;  // tag == needle
    u32 free;   // empty or tombstone
    u32 empty;  // empty only (terminates probe chains)
  };
  [[nodiscard]] GroupScan scan_group(const Segment& s, u32 group,
                                     u8 needle) const noexcept;

  /// Derive the 64-bit table index from the flow hash plus the packed key.
  /// The symmetric Toeplitz value alone cannot index the table: a 16-bit-
  /// periodic RSS key makes every hash the XOR of a subset of just 16
  /// sliding-window constants, so the "32-bit" hash takes at most 2^16
  /// distinct values — beyond ~64 K flows, whole cohorts of keys would
  /// share one group and one tag and probes would degenerate into long
  /// serialized key-compare chains. Two multiplies fold the full key back
  /// in (far cheaper than re-running the per-byte Toeplitz LUT), and a
  /// splitmix64 finalizer spreads the result over group and tag bits.
  [[nodiscard]] static u64 mix(FlowHash h, const PackedKey& k) noexcept {
    u64 z = h ^ (k.a * 0x9e3779b97f4a7c15ULL) ^ (k.b * 0xc2b2ae3d27d4eb4fULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  [[nodiscard]] u32 group_of(u64 m) const noexcept {
    return static_cast<u32>(m) & group_mask_;
  }
  [[nodiscard]] static u8 tag_of(u64 m) noexcept {
    return static_cast<u8>(kOccupiedBit | (m >> 57));
  }
  [[nodiscard]] static u32 group_base(u32 group) noexcept {
    return group * kGroupWidth;
  }

  [[nodiscard]] static PackedKey load_key(const Segment& s,
                                          u32 slot) noexcept;
  static void store_key(const Segment& s, u32 slot, PackedKey k) noexcept;
  [[nodiscard]] static bool key_equals(const Segment& s, u32 slot,
                                       const PackedKey& k) noexcept {
    return load_key(s, slot) == k;
  }

  [[nodiscard]] u8* seg_entry(const Segment& s, u32 index) const noexcept {
    return s.data + static_cast<std::size_t>(index) * stride_ + 8;
  }
  [[nodiscard]] static u64* stamp_of(void* entry) noexcept {
    return reinterpret_cast<u64*>(static_cast<u8*>(entry) - 8);
  }

  /// Probe one segment for a key. Returns the slot index or kNotFound.
  static constexpr u32 kNotFound = 0xffffffffu;
  [[nodiscard]] u32 probe(const Segment& s, const PackedKey& key,
                          u64 m) const noexcept;

  /// Dual-purpose insert scan of one segment: the key's slot if present,
  /// else the first free slot on its probe chain (kNotFound when the chain
  /// covered the whole segment without a free lane).
  struct InsertScan {
    u32 found;
    u32 free_at;
  };
  [[nodiscard]] InsertScan insert_scan(const Segment& s, const PackedKey& key,
                                       u64 m) const noexcept;

  /// Allocate and publish one more segment. Owner-core only.
  void grow(u32 nsegs);

  static void store_tag(const Segment& s, u32 slot, u8 tag) noexcept;
  [[nodiscard]] static u8 load_tag(const Segment& s, u32 slot) noexcept {
    return std::atomic_ref<u8>(s.tags[slot]).load(std::memory_order_acquire);
  }

  /// Locate the segment whose data array contains `entry` (for
  /// write_begin/write_end). The pointer was handed out by this table, so
  /// the linear scan over ≤kMaxSegments ranges always hits.
  [[nodiscard]] const Segment& segment_of(const void* entry,
                                          u32* slot) const noexcept;

  u32 capacity_;    // slots per segment
  u32 group_mask_;  // (capacity_ / kGroupWidth) - 1, per segment
  u32 entry_size_;
  u32 stride_;      // 8-byte stamp + entry_size_ rounded up to 8
  CoreId owner_;
  u32 max_segments_ = 1;           // set_growth() raises, owner-core only
  std::atomic<u32> num_segments_{1};  // release-published segment count
  std::atomic<u32> occupied_{0};  // owner writes, stats paths read relaxed
  u32 seg_max_occupancy_;         // per segment, 87.5 % load cap
  u32 seg_occupied_[kMaxSegments] = {};  // guarded by owner/insert exclusion
  // Table arrays are probed at random by every core; they are allocated
  // hugepage-hinted (see alloc_table_array) so large tables do not turn
  // every probe — and every software prefetch — into a TLB miss.
  Segment segs_[kMaxSegments];
};

}  // namespace sprayer::core

#include "core/middlebox.hpp"

#include "net/packet_pool.hpp"

namespace sprayer::core {

// --- SimCore ---------------------------------------------------------------

/// One virtual core: drives a SprayerCore engine from its NIC rx queue and
/// its foreign-descriptor ring, accounting busy time on the simulated clock.
/// Packets processed in a batch leave the core when the whole batch's cycle
/// cost has elapsed (run-to-completion, as in a DPDK poll loop).
class SimMiddlebox::SimCore final : public sim::IEventTarget,
                                    public ICorePort {
 public:
  SimCore(SimMiddlebox& mbox, CoreId id, NfContext& ctx, bool stateless)
      : mbox_(mbox),
        id_(id),
        engine_(id, mbox.cfg_, stateless, mbox.nf_, mbox.picker_, ctx, *this) {}

  [[nodiscard]] SprayerCore& engine() noexcept { return engine_; }

  enum : u64 { kTagRun = 0, kTagHousekeeping = 1 };

  /// Wake the core if it is idle (new rx or foreign work).
  void notify() {
    if (!event_pending_) {
      event_pending_ = true;
      mbox_.sim_.schedule_in(0, this, kTagRun);
    }
  }

  /// Arm the periodic housekeeping timer.
  void start_housekeeping() {
    if (mbox_.cfg_.housekeeping_interval > 0) {
      mbox_.sim_.schedule_in(mbox_.cfg_.housekeeping_interval, this,
                             kTagHousekeeping);
    }
  }

  /// Receive a transferred connection-packet descriptor. Bounded ring.
  bool accept_foreign(net::Packet* pkt) {
    if (foreign_.size() >= mbox_.cfg_.foreign_ring_capacity) return false;
    foreign_.push_back(pkt);
    notify();
    return true;
  }

  // --- ICorePort -----------------------------------------------------------
  bool transfer(CoreId dest, net::Packet* pkt) override {
    SPRAYER_DCHECK(dest != id_);
    return mbox_.cores_[dest]->accept_foreign(pkt);
  }

  void transmit(net::Packet* pkt) override {
    // Buffered: the packet physically leaves when the batch completes.
    pending_tx_.push_back(pkt);
  }

  // --- sim::IEventTarget -----------------------------------------------
  void handle_event(u64 tag) override {
    if (tag == kTagHousekeeping) {
      // Control-plane maintenance: modeled as free in time (rare, small),
      // but its NF cycles are still accounted in the busy counter.
      NfContext& ctx = mbox_.context(engine_.id());
      ctx.set_now(mbox_.sim_.now());
      // Housekeeping mutates flow state like connection handling does:
      // attribute its accesses to the flow-event column.
      ctx.flows().set_in_connection_handler(true);
      mbox_.nf_.housekeeping(ctx);
      engine_.stats().busy_cycles += ctx.drain_consumed();
      mbox_.sim_.schedule_in(mbox_.cfg_.housekeeping_interval, this,
                             kTagHousekeeping);
      return;
    }
    // Flush packets from the batch that just finished.
    for (net::Packet* pkt : pending_tx_) {
      mbox_.transmit_out(pkt);
    }
    pending_tx_.clear();

    // Poll the next unit of work: the foreign ring first (bounds the
    // latency of connection packets), then the NIC queue.
    runtime::PacketBatch batch;
    Cycles cycles = 0;
    const u32 burst = mbox_.cfg_.rx_batch;
    if (!foreign_.empty()) {
      while (batch.size() < burst && !foreign_.empty()) {
        batch.push(foreign_.front());
        foreign_.pop_front();
      }
      cycles = engine_.process_foreign(batch, mbox_.sim_.now());
    } else {
      const u32 n = mbox_.nic_.rx_burst(id_, batch.data(), burst);
      if (n > 0) {
        batch.set_size(n);  // rx_burst filled the batch storage directly
        cycles = engine_.process_rx(batch, mbox_.sim_.now());
      }
    }

    if (cycles > 0) {
      // Busy until the batch cost elapses, then run again (there may be
      // more backlog, and pending_tx_ must be flushed at completion time).
      mbox_.sim_.schedule_in(
          cycles_to_time(cycles, mbox_.cfg_.core_freq_hz), this);
    } else if (engine_.pending_transfers() > 0) {
      // No new input, but the lossless redirect path parked descriptors a
      // full foreign ring rejected: keep polling so they retry instead of
      // stranding (a drained destination never re-notifies the sender).
      engine_.flush_transfers();
      if (engine_.pending_transfers() > 0) {
        mbox_.sim_.schedule_in(kMicrosecond, this, kTagRun);
      } else {
        event_pending_ = false;
      }
    } else {
      event_pending_ = false;  // idle until the next notify()
    }
  }

 private:
  SimMiddlebox& mbox_;
  CoreId id_;
  SprayerCore engine_;
  std::deque<net::Packet*> foreign_;
  std::vector<net::Packet*> pending_tx_;
  bool event_pending_ = false;

  friend class SimMiddlebox;
};

// --- SimMiddlebox ------------------------------------------------------

namespace {

nic::NicConfig adjust_nic_config(nic::NicConfig nic_cfg,
                                 const SprayerConfig& cfg) {
  nic_cfg.num_queues = cfg.num_cores;
  return nic_cfg;
}

}  // namespace

SimMiddlebox::SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg,
                           INetworkFunction& nf, nic::NicConfig nic_cfg)
    : sim_(sim),
      cfg_(cfg),
      nf_(nf),
      picker_(cfg.num_cores),
      nic_(sim, adjust_nic_config(nic_cfg, cfg)) {
  SPRAYER_CHECK(cfg_.num_cores >= 1);
  nf_.init(nf_init_, cfg_.num_cores);

  const u32 table_capacity =
      nf_init_.stateless ? 2u : nf_init_.flow_table_capacity;
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    tables_.push_back(std::make_unique<FlowTable>(
        table_capacity, nf_init_.flow_entry_size, static_cast<CoreId>(c)));
    table_ptrs_.push_back(tables_.back().get());
  }
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    contexts_.push_back(std::make_unique<NfContext>(
        static_cast<CoreId>(c), std::span<FlowTable* const>{table_ptrs_},
        picker_, cfg_.costs));
    contexts_.back()->flows().set_bulk_enabled(cfg_.bulk_flow_lookup);
    cores_.push_back(std::make_unique<SimCore>(
        *this, static_cast<CoreId>(c), *contexts_.back(),
        nf_init_.stateless));
  }

  nic_.set_rx_listener(this);
  if (cfg_.mode == DispatchMode::kSpray) {
    const Status s = nic_.fdir().program_checksum_spray(cfg_.num_cores);
    SPRAYER_CHECK_MSG(s.ok(), "failed to program Flow Director spraying");
  }
  for (auto& c : cores_) c->start_housekeeping();
}

SimMiddlebox::~SimMiddlebox() = default;

void SimMiddlebox::rx_ready(u16 queue) {
  cores_[queue]->notify();
}

void SimMiddlebox::transmit_out(net::Packet* pkt) {
  // Bump in the wire: leave through the opposite port.
  const u8 egress = static_cast<u8>(1 - pkt->ingress_port);
  nic_.tx(egress, pkt);
}

MiddleboxReport SimMiddlebox::report() const {
  MiddleboxReport r;
  for (const auto& c : cores_) {
    r.per_core.push_back(c->engine().stats());
    r.total.merge(c->engine().stats());
  }
  r.nic = nic_.counters();
  for (const auto& t : tables_) r.flow_entries += t->size();
  r.flow_access = access_stats();
  return r;
}

void SimMiddlebox::reset_stats() {
  for (auto& c : cores_) c->engine().stats() = CoreStats{};
  nic_.reset_counters();
}

}  // namespace sprayer::core

#include "core/middlebox.hpp"

#include "net/packet_pool.hpp"

namespace sprayer::core {

// --- SimCore ---------------------------------------------------------------

/// One virtual core: drives a SprayerCore engine from its NIC rx queue and
/// its foreign-descriptor ring, accounting busy time on the simulated clock.
/// Packets processed in a batch leave the core when the whole batch's cycle
/// cost has elapsed (run-to-completion, as in a DPDK poll loop).
class SimMiddlebox::SimCore final : public sim::IEventTarget,
                                    public ICorePort {
 public:
  SimCore(SimMiddlebox& mbox, CoreId id, std::span<NfContext* const> hop_ctxs,
          bool stateless)
      : mbox_(mbox),
        id_(id),
        engine_(id, mbox.cfg_, stateless, mbox.chain_, mbox.picker_, hop_ctxs,
                *this) {}

  [[nodiscard]] SprayerCore& engine() noexcept { return engine_; }

  enum : u64 { kTagRun = 0, kTagHousekeeping = 1 };

  /// Wake the core if it is idle (new rx or foreign work).
  void notify() {
    if (!event_pending_) {
      event_pending_ = true;
      mbox_.sim_.schedule_in(0, this, kTagRun);
    }
  }

  /// Arm the periodic housekeeping timer.
  void start_housekeeping() {
    if (mbox_.cfg_.housekeeping_interval > 0) {
      mbox_.sim_.schedule_in(mbox_.cfg_.housekeeping_interval, this,
                             kTagHousekeeping);
    }
  }

  /// Receive a transferred connection-packet descriptor. Bounded ring.
  bool accept_foreign(net::Packet* pkt) {
    if (foreign_.size() >= mbox_.cfg_.foreign_ring_capacity) return false;
    foreign_.push_back(pkt);
    notify();
    return true;
  }

  // --- ICorePort -----------------------------------------------------------
  bool transfer(CoreId dest, net::Packet* pkt) override {
    SPRAYER_DCHECK(dest != id_);
    return mbox_.cores_[dest]->accept_foreign(pkt);
  }

  void transmit(net::Packet* pkt) override {
    // Buffered: the packet physically leaves when the batch completes.
    pending_tx_.push_back(pkt);
  }

  // --- sim::IEventTarget -----------------------------------------------
  void handle_event(u64 tag) override {
    if (tag == kTagHousekeeping) {
      // Control-plane maintenance: modeled as free in time (rare, small),
      // but its NF cycles are still accounted in the busy counter.
      std::span<NfContext* const> ctxs{mbox_.ctx_ptrs_[engine_.id()]};
      mbox_.chain_.housekeeping(ctxs, mbox_.sim_.now());
      // Replication: broadcast housekeeping expiries right away.
      engine_.flush_state_sync();
      for (NfContext* ctx : ctxs) {
        engine_.stats().busy_cycles += ctx->drain_consumed();
      }
      mbox_.sim_.schedule_in(mbox_.cfg_.housekeeping_interval, this,
                             kTagHousekeeping);
      return;
    }
    // Flush packets from the batch that just finished.
    for (net::Packet* pkt : pending_tx_) {
      mbox_.transmit_out(pkt);
    }
    pending_tx_.clear();

    // Poll the next unit of work: the foreign ring first (bounds the
    // latency of connection packets), then the NIC queue.
    runtime::PacketBatch batch;
    Cycles cycles = 0;
    const u32 burst = mbox_.cfg_.rx_batch;
    if (!foreign_.empty()) {
      while (batch.size() < burst && !foreign_.empty()) {
        batch.push(foreign_.front());
        foreign_.pop_front();
      }
      cycles = engine_.process_foreign(batch, mbox_.sim_.now());
    } else {
      const u32 n = mbox_.nic_.rx_burst(id_, batch.data(), burst);
      if (n > 0) {
        batch.set_size(n);  // rx_burst filled the batch storage directly
        cycles = engine_.process_rx(batch, mbox_.sim_.now());
      }
    }

    if (cycles > 0) {
      // Busy until the batch cost elapses, then run again (there may be
      // more backlog, and pending_tx_ must be flushed at completion time).
      mbox_.sim_.schedule_in(
          cycles_to_time(cycles, mbox_.cfg_.core_freq_hz), this);
    } else if (engine_.pending_transfers() > 0) {
      // No new input, but the lossless redirect path parked descriptors a
      // full foreign ring rejected: keep polling so they retry instead of
      // stranding (a drained destination never re-notifies the sender).
      engine_.flush_transfers();
      if (engine_.pending_transfers() > 0) {
        mbox_.sim_.schedule_in(kMicrosecond, this, kTagRun);
      } else {
        event_pending_ = false;
      }
    } else {
      event_pending_ = false;  // idle until the next notify()
    }
  }

 private:
  SimMiddlebox& mbox_;
  CoreId id_;
  SprayerCore engine_;
  std::deque<net::Packet*> foreign_;
  std::vector<net::Packet*> pending_tx_;
  bool event_pending_ = false;

  friend class SimMiddlebox;
};

// --- SimMiddlebox ------------------------------------------------------

namespace {

nic::NicConfig adjust_nic_config(nic::NicConfig nic_cfg,
                                 const SprayerConfig& cfg) {
  nic_cfg.num_queues = cfg.num_cores;
  return nic_cfg;
}

}  // namespace

SimMiddlebox::SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg,
                           INetworkFunction& nf, nic::NicConfig nic_cfg)
    : SimMiddlebox(sim, cfg, std::make_unique<DynamicChain>(nf), nullptr,
                   nic_cfg) {}

SimMiddlebox::SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg,
                           IChain& chain, nic::NicConfig nic_cfg)
    : SimMiddlebox(sim, cfg, nullptr, &chain, nic_cfg) {}

SimMiddlebox::SimMiddlebox(sim::Simulator& sim, SprayerConfig cfg,
                           std::unique_ptr<IChain> owned, IChain* chain,
                           nic::NicConfig nic_cfg)
    : sim_(sim),
      cfg_(cfg),
      owned_chain_(std::move(owned)),
      chain_(chain != nullptr ? *chain : *owned_chain_),
      picker_(cfg.num_cores),
      nic_(sim, adjust_nic_config(nic_cfg, cfg)) {
  SPRAYER_CHECK(cfg_.num_cores >= 1);

  const u32 hops = chain_.num_hops();
  hop_init_.resize(hops);
  for (auto& hc : hop_init_) hc.state_strategy = cfg_.state.kind;
  ChainInit chain_init;
  chain_init.hop_cfgs = hop_init_;
  chain_init.num_cores = cfg_.num_cores;
  chain_init.lifecycle_sweep = cfg_.lifecycle.sweep;
  chain_init.idle_timeout_override = cfg_.lifecycle.idle_timeout;
  chain_init.sweep_groups_per_tick = cfg_.lifecycle.sweep_groups_per_tick;
  chain_.init(chain_init);
  stateless_chain_ = true;
  for (u32 h = 0; h < hops; ++h) {
    stateless_chain_ = stateless_chain_ && hop_init_[h].stateless;
  }

  // Per-hop flow tables, built by the state strategy (each hop has its own
  // key space and entry size, so hops never share tables; the strategy
  // decides shard vs replica vs one shared table).
  strategy_ = state::StateStrategy::make(cfg_.state, cfg_.num_cores);
  table_ptrs_.resize(hops);
  for (u32 h = 0; h < hops; ++h) {
    u32 table_capacity =
        hop_init_[h].stateless ? 2u : hop_init_[h].flow_table_capacity;
    if (!hop_init_[h].stateless && cfg_.lifecycle.flow_table_capacity != 0) {
      table_capacity = cfg_.lifecycle.flow_table_capacity;
    }
    strategy_->add_hop(table_capacity, hop_init_[h].flow_entry_size);
    const auto span = strategy_->hop_tables(h);
    table_ptrs_[h].assign(span.begin(), span.end());
    if (!hop_init_[h].stateless && cfg_.lifecycle.max_table_segments > 1) {
      // Opt-in online growth (idempotent when the strategy aliases one
      // shared table into every per-core slot).
      for (FlowTable* t : table_ptrs_[h]) {
        t->set_growth(cfg_.lifecycle.max_table_segments);
      }
    }
  }
  contexts_.resize(cfg_.num_cores);
  ctx_ptrs_.resize(cfg_.num_cores);
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    for (u32 h = 0; h < hops; ++h) {
      contexts_[c].push_back(std::make_unique<NfContext>(
          static_cast<CoreId>(c),
          std::span<FlowTable* const>{table_ptrs_[h]}, picker_, cfg_.costs));
      contexts_[c].back()->flows().set_bulk_enabled(cfg_.bulk_flow_lookup);
      contexts_[c].back()->configure_state(
          strategy_->view(static_cast<CoreId>(c), h));
      ctx_ptrs_[c].push_back(contexts_[c].back().get());
    }
    // ctx_ptrs_[c] is complete (and ctx_ptrs_ fully sized) before the
    // engine captures its span.
    cores_.push_back(std::make_unique<SimCore>(
        *this, static_cast<CoreId>(c),
        std::span<NfContext* const>{ctx_ptrs_[c]}, stateless_chain_));
    cores_.back()->engine().set_conn_redirect(
        strategy_->redirects_connection_packets());
    cores_.back()->engine().set_state_runtime(
        strategy_->sync_runtime(static_cast<CoreId>(c)));
  }

  nic_.set_rx_listener(this);
  if (cfg_.mode == DispatchMode::kSpray) {
    const Status s = nic_.fdir().program_checksum_spray(cfg_.num_cores);
    SPRAYER_CHECK_MSG(s.ok(), "failed to program Flow Director spraying");
  }
  for (auto& c : cores_) c->start_housekeeping();
}

SimMiddlebox::~SimMiddlebox() = default;

void SimMiddlebox::rx_ready(u16 queue) {
  cores_[queue]->notify();
}

void SimMiddlebox::transmit_out(net::Packet* pkt) {
  // Bump in the wire: leave through the opposite port.
  const u8 egress = static_cast<u8>(1 - pkt->ingress_port);
  nic_.tx(egress, pkt);
}

MiddleboxReport SimMiddlebox::report() const {
  MiddleboxReport r;
  for (const auto& c : cores_) {
    r.per_core.push_back(c->engine().stats());
    r.total.merge(c->engine().stats());
  }
  r.nic = nic_.counters();
  for (const auto& hop : table_ptrs_) {
    const FlowTable* prev = nullptr;
    for (const FlowTable* t : hop) {
      // Shared-locked aliases one table into every core slot; count it once.
      if (t == prev) continue;
      prev = t;
      r.flow_entries += t->size();
    }
  }
  r.flow_access = access_stats();
  return r;
}

void SimMiddlebox::reset_stats() {
  for (auto& c : cores_) c->engine().stats() = CoreStats{};
  nic_.reset_counters();
}

}  // namespace sprayer::core

#include "core/chain.hpp"

#include <chrono>

namespace sprayer::core {

Time chain_clock_ns() noexcept {
  return static_cast<Time>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         kNanosecond;
}

ChainBase::ChainBase(std::vector<INetworkFunction*> hops)
    : hops_(std::move(hops)),
      hop_stateless_(hops_.size(), 0),
      hop_tm_(hops_.size()) {
  SPRAYER_CHECK_MSG(!hops_.empty(), "a chain needs at least one hop");
  for (const INetworkFunction* nf : hops_) {
    SPRAYER_CHECK_MSG(nf != nullptr, "chain hop must not be null");
  }
}

void ChainBase::init(const ChainInit& ci) {
  SPRAYER_CHECK_MSG(ci.hop_cfgs.size() == hops_.size(),
                    "ChainInit::hop_cfgs must have one slot per hop");
  timed_ = ci.hop_timing && ci.registry != nullptr;
  for (u32 h = 0; h < hops_.size(); ++h) {
    hops_[h]->init(ci.hop_cfgs[h], ci.num_cores);
    hop_stateless_[h] = ci.hop_cfgs[h].stateless ? 1 : 0;
    if (ci.registry != nullptr) {
      const std::string prefix =
          "chain.h" + std::to_string(h) + "." + hops_[h]->name();
      hop_tm_[h].packets = ci.registry->counter(prefix + ".packets");
      hop_tm_[h].drops = ci.registry->counter(prefix + ".drops");
      if (timed_) hop_tm_[h].ns = ci.registry->counter(prefix + ".ns");
    }
  }
}

void ChainBase::housekeeping(std::span<NfContext* const> ctxs, Time now) {
  SPRAYER_DCHECK(ctxs.size() == hops_.size());
  for (u32 h = 0; h < hops_.size(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    // Housekeeping mutates flow state like connection handling does:
    // attribute its accesses to the flow-event column.
    ctx.flows().set_in_connection_handler(true);
    hops_[h]->housekeeping(ctx);
  }
}

void DynamicChain::regular_pass(runtime::PacketBatch& batch,
                                ChainScratch& scratch,
                                std::span<NfContext* const> ctxs, Time now,
                                runtime::PacketBatch& drops) {
  const u32 hops = num_hops();
  for (u32 h = 0; h < hops && !batch.empty(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    ctx.flows().set_in_connection_handler(false);
    const u32 before = batch.size();
    const Time t0 = timed_ ? chain_clock_ns() : 0;
    scratch.verdicts.reset(before);
    hops_[h]->regular_packets(batch, ctx, scratch.verdicts);
    if (scratch.verdicts.any()) {
      (void)batch.compact(
          [&](u32 i) { return scratch.verdicts.dropped(i); }, drops);
    }
    // Only downstream hops read the memoized hash; after the last hop an
    // invalidated memo is recomputed lazily by whoever needs it.
    if (h + 1 < hops && hops_[h]->rewrites_tuple()) refresh_hashes(batch);
    record_hop(h, ctx.core(), before, before - batch.size(), t0);
  }
}

void DynamicChain::connection_pass(runtime::PacketBatch& batch,
                                   ChainScratch& scratch,
                                   std::span<NfContext* const> ctxs, Time now,
                                   runtime::PacketBatch& drops) {
  const u32 hops = num_hops();
  for (u32 h = 0; h < hops && !batch.empty(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    const bool stateless = hop_stateless_[h] != 0;
    ctx.flows().set_in_connection_handler(!stateless);
    const u32 before = batch.size();
    const Time t0 = timed_ ? chain_clock_ns() : 0;
    scratch.verdicts.reset(before);
    if (stateless) {
      // Stateless hops have no flow events to observe: a connection packet
      // is just another packet to them.
      hops_[h]->regular_packets(batch, ctx, scratch.verdicts);
    } else {
      hops_[h]->connection_packets(batch, ctx, scratch.verdicts);
    }
    if (scratch.verdicts.any()) {
      (void)batch.compact(
          [&](u32 i) { return scratch.verdicts.dropped(i); }, drops);
    }
    if (h + 1 < hops && hops_[h]->rewrites_tuple()) refresh_hashes(batch);
    record_hop(h, ctx.core(), before, before - batch.size(), t0);
  }
}

}  // namespace sprayer::core

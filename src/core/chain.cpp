#include "core/chain.hpp"

#include <algorithm>
#include <chrono>

namespace sprayer::core {

Time chain_clock_ns() noexcept {
  return static_cast<Time>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         kNanosecond;
}

ChainBase::ChainBase(std::vector<INetworkFunction*> hops)
    : hops_(std::move(hops)),
      hop_stateless_(hops_.size(), 0),
      hop_tm_(hops_.size()),
      hop_idle_(hops_.size(), 0) {
  SPRAYER_CHECK_MSG(!hops_.empty(), "a chain needs at least one hop");
  for (const INetworkFunction* nf : hops_) {
    SPRAYER_CHECK_MSG(nf != nullptr, "chain hop must not be null");
  }
}

void ChainBase::init(const ChainInit& ci) {
  SPRAYER_CHECK_MSG(ci.hop_cfgs.size() == hops_.size(),
                    "ChainInit::hop_cfgs must have one slot per hop");
  timed_ = ci.hop_timing && ci.registry != nullptr;
  sweep_ = ci.lifecycle_sweep;
  sweep_groups_per_tick_ = ci.sweep_groups_per_tick;
  for (u32 h = 0; h < hops_.size(); ++h) {
    hops_[h]->init(ci.hop_cfgs[h], ci.num_cores);
    hop_stateless_[h] = ci.hop_cfgs[h].stateless ? 1 : 0;
    // The NF's init() leaves its protocol default in flow_idle_timeout; a
    // framework-level override wins.
    hop_idle_[h] = ci.idle_timeout_override != 0
                       ? ci.idle_timeout_override
                       : ci.hop_cfgs[h].flow_idle_timeout;
    if (ci.registry != nullptr) {
      const std::string prefix =
          "chain.h" + std::to_string(h) + "." + hops_[h]->name();
      hop_tm_[h].packets = ci.registry->counter(prefix + ".packets");
      hop_tm_[h].drops = ci.registry->counter(prefix + ".drops");
      if (timed_) hop_tm_[h].ns = ci.registry->counter(prefix + ".ns");
      if (sweep_ && !ci.hop_cfgs[h].stateless) {
        hop_tm_[h].expired = ci.registry->counter(prefix + ".expired");
        hop_tm_[h].sweep_ns = ci.registry->histogram(prefix + ".sweep_ns", 7);
        hop_tm_[h].sweep_groups =
            ci.registry->histogram(prefix + ".sweep_groups", 7);
      }
    }
  }
}

void ChainBase::housekeeping(std::span<NfContext* const> ctxs, Time now) {
  SPRAYER_DCHECK(ctxs.size() == hops_.size());
  for (u32 h = 0; h < hops_.size(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    // Housekeeping mutates flow state like connection handling does:
    // attribute its accesses to the flow-event column.
    ctx.flows().set_in_connection_handler(true);
    hops_[h]->housekeeping(ctx);
    // The lifecycle sweep runs for every stateful hop, even at idle
    // timeout 0: NFs with their own expiry semantics (NAT's TIME_WAIT
    // deadline) expire entries through flow_expired() regardless.
    if (sweep_ && hop_stateless_[h] == 0) sweep_hop(h, ctx);
  }
}

void ChainBase::sweep_hop(u32 h, NfContext& ctx) {
  FlowStateApi& flows = ctx.flows();
  // Auto budget: an eighth of the table per tick — a full rotation every 8
  // housekeeping ticks regardless of capacity, so expiry latency tracks the
  // tick interval, not the provisioned size. The 64-group floor keeps tiny
  // tables rotating in one call.
  const u32 budget =
      sweep_groups_per_tick_ != 0
          ? sweep_groups_per_tick_
          : static_cast<u32>(
                std::max<u64>(64, flows.local().total_groups() / 8));
  const Time idle = hop_idle_[h];
  INetworkFunction* nf = hops_[h];
  const Time t0 = chain_clock_ns();
  const SweepStats st = flows.sweep_idle(
      budget,
      [&](const net::FiveTuple& key, const void* entry, Time last_seen) {
        return nf->flow_expired(key, entry, last_seen, idle, ctx);
      },
      [&](const net::FiveTuple& key, FlowTable::FlowHash hash) {
        nf->on_expire(key, hash, ctx);
      });
  HopMetrics& m = hop_tm_[h];
  if (st.expired > 0) m.expired.add(ctx.core(), st.expired);
  m.sweep_groups.record(ctx.core(), st.groups);
  m.sweep_ns.record(ctx.core(), (chain_clock_ns() - t0) / kNanosecond);
}

void DynamicChain::regular_pass(runtime::PacketBatch& batch,
                                ChainScratch& scratch,
                                std::span<NfContext* const> ctxs, Time now,
                                runtime::PacketBatch& drops) {
  const u32 hops = num_hops();
  for (u32 h = 0; h < hops && !batch.empty(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    ctx.flows().set_in_connection_handler(false);
    const u32 before = batch.size();
    const Time t0 = timed_ ? chain_clock_ns() : 0;
    scratch.verdicts.reset(before);
    hops_[h]->regular_packets(batch, ctx, scratch.verdicts);
    if (scratch.verdicts.any()) {
      (void)batch.compact(
          [&](u32 i) { return scratch.verdicts.dropped(i); }, drops);
    }
    // Only downstream hops read the memoized hash; after the last hop an
    // invalidated memo is recomputed lazily by whoever needs it.
    if (h + 1 < hops && hops_[h]->rewrites_tuple()) refresh_hashes(batch);
    record_hop(h, ctx.core(), before, before - batch.size(), t0);
  }
}

void DynamicChain::connection_pass(runtime::PacketBatch& batch,
                                   ChainScratch& scratch,
                                   std::span<NfContext* const> ctxs, Time now,
                                   runtime::PacketBatch& drops) {
  const u32 hops = num_hops();
  for (u32 h = 0; h < hops && !batch.empty(); ++h) {
    NfContext& ctx = *ctxs[h];
    ctx.set_now(now);
    const bool stateless = hop_stateless_[h] != 0;
    ctx.flows().set_in_connection_handler(!stateless);
    const u32 before = batch.size();
    const Time t0 = timed_ ? chain_clock_ns() : 0;
    scratch.verdicts.reset(before);
    if (stateless) {
      // Stateless hops have no flow events to observe: a connection packet
      // is just another packet to them.
      hops_[h]->regular_packets(batch, ctx, scratch.verdicts);
    } else {
      hops_[h]->connection_packets(batch, ctx, scratch.verdicts);
    }
    if (scratch.verdicts.any()) {
      (void)batch.compact(
          [&](u32 i) { return scratch.verdicts.dropped(i); }, drops);
    }
    if (h + 1 < hops && hops_[h]->rewrites_tuple()) refresh_hashes(batch);
    record_hop(h, ctx.core(), before, before - batch.size(), t0);
  }
}

}  // namespace sprayer::core

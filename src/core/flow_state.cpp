#include "core/flow_state.hpp"

#include <array>

namespace sprayer::core {

namespace {
/// Lookups are pipelined in chunks: large enough to amortize the per-table
/// grouping, small enough that the gathered prefetches still fit in the
/// load/fill-buffer window.
constexpr std::size_t kBulkChunk = 64;

/// Stamp refresh for a batch of hits: same coarse granularity as the scalar
/// read paths (FlowStateApi::kTouchGranularity).
void touch_hits(std::span<const void* const> out, Time now) noexcept {
  for (const void* e : out) {
    if (e != nullptr) {
      core::FlowTable::touch_if_stale(e, now,
                                      FlowStateApi::kTouchGranularity);
    }
  }
}
}  // namespace

void FlowStateApi::get_flows(std::span<const net::FiveTuple> flow_ids,
                             std::span<const FlowHash> hashes,
                             std::span<const void*> out) {
  SPRAYER_CHECK(hashes.size() == flow_ids.size());
  SPRAYER_CHECK(out.size() >= flow_ids.size());

  if (!bulk_enabled_) {
    // Ablation path: scalar get_flow per element, per-lookup costs.
    for (std::size_t i = 0; i < flow_ids.size(); ++i) {
      out[i] = get_flow(flow_ids[i], hashes[i]);
    }
    return;
  }

  if (strat_.kind == state::StateStrategyKind::kSharedLocked) {
    // The shared table's probe sequences cross stripe boundaries, so bulk
    // prefetch pipelining can't be overlapped with per-key locking; the
    // strawman degrades to locked scalar copy-outs (part of what the race
    // measures).
    for (std::size_t i = 0; i < flow_ids.size(); ++i) {
      count_read();
      cycles_ += costs_.flow_lookup_remote;
      out[i] = locked_copy_out(flow_ids[i], hashes[i]);
    }
    return;
  }

  cycles_ += costs_.flow_lookup_batched * flow_ids.size();
  for (std::size_t i = 0; i < flow_ids.size(); ++i) count_read();

  if (strat_.kind == state::StateStrategyKind::kReplication) {
    // The replication payoff on the regular path: every lookup is served by
    // the local replica in one pipelined find_batch, no matter which core
    // is designated.
    for (std::size_t i = 0; i < flow_ids.size(); ++i) {
      if (designated_core(hashes[i]) != core_) ++counters_.remote_reads_avoided;
    }
    local().find_batch(flow_ids, hashes, out);
    touch_hits(out.first(flow_ids.size()), now());
    return;
  }

  const u32 cores = num_cores();
  if (cores == 1) {
    tables_[0]->find_batch(flow_ids, hashes, out);
    touch_hits(out.first(flow_ids.size()), now());
    return;
  }

  std::array<CoreId, kBulkChunk> dest;
  std::array<u16, kBulkChunk> idx;
  std::array<net::FiveTuple, kBulkChunk> keys;
  std::array<FlowHash, kBulkChunk> hs;
  std::array<const void*, kBulkChunk> res;
  for (std::size_t base = 0; base < flow_ids.size(); base += kBulkChunk) {
    const std::size_t n = std::min(kBulkChunk, flow_ids.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      dest[i] = designated_core(hashes[base + i]);
      if (dest[i] != core_) ++counters_.remote_reads;
    }
    // Group the chunk by destination table so each table sees one contiguous
    // find_batch (its prefetch pipeline needs consecutive independent
    // lookups into the same arrays), then scatter results back in order.
    for (CoreId c = 0; c < cores; ++c) {
      std::size_t cnt = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (dest[i] != c) continue;
        idx[cnt] = static_cast<u16>(i);
        keys[cnt] = flow_ids[base + i];
        hs[cnt] = hashes[base + i];
        ++cnt;
      }
      if (cnt == 0) continue;
      tables_[c]->find_batch({keys.data(), cnt}, {hs.data(), cnt},
                             {res.data(), cnt});
      for (std::size_t j = 0; j < cnt; ++j) {
        out[base + idx[j]] = res[j];
      }
    }
  }
  touch_hits(out.first(flow_ids.size()), now());
}

void FlowStateApi::get_flows(std::span<const net::FiveTuple> flow_ids,
                             std::span<const void*> out) {
  std::array<FlowHash, kBulkChunk> hs;
  SPRAYER_CHECK(out.size() >= flow_ids.size());
  for (std::size_t base = 0; base < flow_ids.size(); base += kBulkChunk) {
    const std::size_t n = std::min(kBulkChunk, flow_ids.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      hs[i] = FlowTable::hash_of(flow_ids[base + i]);
    }
    get_flows(flow_ids.subspan(base, n), {hs.data(), n},
              out.subspan(base, n));
  }
}

}  // namespace sprayer::core

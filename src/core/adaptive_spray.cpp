#include "core/adaptive_spray.hpp"

#include <algorithm>

namespace sprayer::core {

AdaptiveSprayPolicy::AdaptiveSprayPolicy(const AdaptiveSprayConfig& cfg,
                                         u32 num_cores,
                                         nic::FlowDirector& fdir,
                                         const CorePicker& picker)
    : cfg_(cfg), num_cores_(num_cores), fdir_(fdir), picker_(picker) {
  SPRAYER_CHECK(num_cores >= 1);
  SPRAYER_CHECK_MSG(
      cfg.flow_sets >= 1 && (cfg.flow_sets & (cfg.flow_sets - 1)) == 0,
      "adaptive.flow_sets must be a power of two");
  SPRAYER_CHECK_MSG(cfg.demote_count <= cfg.promote_count,
                    "demote_count above promote_count inverts the hysteresis");
  SPRAYER_CHECK_MSG(cfg.min_spray_width >= 1,
                    "min_spray_width 0 has no meaning");
  sketches_.reserve(num_cores);
  for (u32 c = 0; c < num_cores; ++c) {
    sketches_.push_back(std::make_unique<HeavyHitterSketch>(cfg.sketch_slots));
  }
  flows_.resize(static_cast<std::size_t>(cfg.flow_sets) * 2);
  set_mask_ = cfg.flow_sets - 1;
}

void AdaptiveSprayPolicy::register_metrics(telemetry::MetricsRegistry& registry,
                                           u32 shard) {
  registry_ = &registry;
  shard_ = shard;
  tm_.pinned_flows = registry.gauge("spray.adaptive.pinned_flows");
  tm_.pins_installed = registry.counter("spray.adaptive.pins_installed");
  tm_.pin_fallbacks = registry.counter("spray.adaptive.pin_fallbacks");
  tm_.rule_evictions = registry.counter("spray.adaptive.rule_evictions");
  tm_.elephant_promotions =
      registry.counter("spray.adaptive.elephant_promotions");
  tm_.elephant_demotions =
      registry.counter("spray.adaptive.elephant_demotions");
  tm_.p2c_deflections = registry.counter("spray.adaptive.p2c_deflections");
  tm_.narrowings = registry.counter("spray.adaptive.narrowings");
  tm_.unpinned_sprays = registry.counter("spray.adaptive.unpinned_sprays");
}

AdaptiveSprayPolicy::FlowSlot* AdaptiveSprayPolicy::lookup(u32 hash) noexcept {
  FlowSlot* set = &flows_[static_cast<std::size_t>(hash & set_mask_) * 2];
  for (u32 way = 0; way < 2; ++way) {
    if (set[way].state != FlowState::kEmpty && set[way].hash == hash) {
      return &set[way];
    }
  }
  return nullptr;
}

AdaptiveSprayPolicy::FlowSlot* AdaptiveSprayPolicy::claim(u32 hash,
                                                          Time now) noexcept {
  FlowSlot* set = &flows_[static_cast<std::size_t>(hash & set_mask_) * 2];
  for (u32 way = 0; way < 2; ++way) {
    if (set[way].state == FlowState::kEmpty) return &set[way];
  }
  for (u32 way = 0; way < 2; ++way) {
    FlowSlot& victim = set[way];
    if (now - victim.last_seen > cfg_.idle_timeout) {
      if (victim.state == FlowState::kPinned) {
        unpin(victim);
        ++stats_.rule_evictions;
      }
      victim.state = FlowState::kEmpty;
      return &victim;
    }
  }
  return nullptr;  // both ways live: newcomer sprays uncached
}

bool AdaptiveSprayPolicy::try_pin(FlowSlot& slot) {
  if (stats_.pinned_flows >= cfg_.rule_budget) return false;
  const u16 queue = static_cast<u16>(picker_.pick_hash(slot.hash));
  if (!fdir_.add_exact_rule(slot.tuple, queue).ok()) {
    return false;  // shared 8K table exhausted (or tuple aliased): spray
  }
  ++stats_.pinned_flows;
  ++stats_.pins_installed;
  return true;
}

void AdaptiveSprayPolicy::unpin(FlowSlot& slot) {
  if (slot.state != FlowState::kPinned) return;
  fdir_.remove_exact_rule(slot.tuple);
  --stats_.pinned_flows;
}

u16 AdaptiveSprayPolicy::steer_sprayed(net::Packet& pkt, u32 flow_hash,
                                       u32 width) {
  width = std::clamp<u32>(width, 1, num_cores_);
  const u32 r = static_cast<u32>(p2c_salt_++);
  // The "natural" member: at full width the static checksum rule's verdict
  // (so p2c disabled degrades to exactly the static spray), otherwise a
  // rotating member of the narrowed set. Only this full-width path needs
  // the Flow Director at all, and only its checksum side — pinned flows
  // never reach here.
  u16 natural;
  nic::FlowDirector::MatchResult match{};
  if (width >= num_cores_ &&
      (match = fdir_.match_checksum(pkt)).kind ==
          nic::FlowDirector::MatchKind::kChecksum) {
    natural = match.queue;
  } else {
    natural = static_cast<u16>(picker_.spray_member(flow_hash, width, r));
  }
  if (!cfg_.p2c || depth_probe_ == nullptr || width < 2) return natural;
  const u16 alt =
      static_cast<u16>(picker_.spray_member(flow_hash, width, r + 1));
  if (alt != natural &&
      depth_probe_->depth(alt) < depth_probe_->depth(natural)) {
    ++stats_.p2c_deflections;
    return alt;
  }
  return natural;
}

u16 AdaptiveSprayPolicy::steer(net::Packet& pkt, u32 flow_hash, Time now) {
  FlowSlot* slot = lookup(flow_hash);
  if (slot == nullptr) {
    slot = claim(flow_hash, now);
    if (slot == nullptr) {
      // Cache-conflict flow: never pinned, never tracked — full-width spray
      // (elephant-equivalent behavior, so heavy flows lose nothing here).
      ++stats_.unpinned_sprays;
      return steer_sprayed(pkt, flow_hash, num_cores_);
    }
    // First sight: presume mouse, pin to the designated queue.
    slot->hash = flow_hash;
    slot->dwell = 0;
    slot->spray_width = static_cast<u16>(num_cores_);
    slot->last_ooo = 0;
    slot->last_seen = now;
    slot->tuple = pkt.five_tuple();
    if (try_pin(*slot)) {
      slot->state = FlowState::kPinned;
      return static_cast<u16>(picker_.pick_hash(flow_hash));
    }
    slot->state = FlowState::kPinFallback;
    ++stats_.pin_fallbacks;
    return steer_sprayed(pkt, flow_hash, num_cores_);
  }
  slot->last_seen = now;
  switch (slot->state) {
    case FlowState::kPinned:
      // Deterministic designated queue for the flow's whole pinned life —
      // identical to what the installed exact rule resolves to (and to RSS).
      return static_cast<u16>(picker_.pick_hash(flow_hash));
    case FlowState::kPinFallback:
      return steer_sprayed(pkt, flow_hash, num_cores_);
    case FlowState::kElephant:
      return steer_sprayed(pkt, flow_hash, slot->spray_width);
    case FlowState::kEmpty:
      break;  // unreachable: lookup() skips empty slots
  }
  return steer_sprayed(pkt, flow_hash, num_cores_);
}

void AdaptiveSprayPolicy::tick(Time now) {
  last_tick_ = now;

  // 1. Merge the per-core worker sketches (racy-but-untorn reads) into one
  //    aggregate rate estimate per surviving flow hash.
  merge_scratch_.clear();
  for (const auto& sketch : sketches_) {
    const u32 n = sketch->slots();
    for (u32 i = 0; i < n; ++i) {
      const HeavyHitterSketch::Cell cell = sketch->read(i);
      if (cell.count > 0) merge_scratch_[cell.hash] += cell.count;
    }
  }

  // 2. Promote: any cached mouse whose aggregate crossed the threshold
  //    drops its pin rule and sprays. Uncached heavy flows already spray
  //    full-width, so only cached flows need state changes.
  for (const auto& [hash, count] : merge_scratch_) {
    if (count < cfg_.promote_count) continue;
    FlowSlot* slot = lookup(hash);
    if (slot == nullptr || slot->state == FlowState::kElephant) continue;
    unpin(*slot);
    slot->state = FlowState::kElephant;
    slot->spray_width = static_cast<u16>(num_cores_);
    slot->dwell = 0;
    // Latch the flow's current reorder high-water so only distance growth
    // *as an elephant* triggers narrowing.
    slot->last_ooo =
        observatory_ != nullptr ? observatory_->flow_stats(hash).max_distance
                                : 0;
    ++stats_.elephant_promotions;
  }

  // 3. Demote + narrow: full scan over the elephants (the cache is small
  //    and the cadence is update_interval, so this is off-path and cheap).
  for (FlowSlot& slot : flows_) {
    if (slot.state != FlowState::kElephant) continue;
    if (observatory_ != nullptr && cfg_.reorder_budget > 0 &&
        slot.spray_width > cfg_.min_spray_width) {
      const telemetry::ReorderObservatory::FlowReorder fr =
          observatory_->flow_stats(slot.hash);
      if (fr.sampled &&
          fr.max_distance >= slot.last_ooo + cfg_.reorder_budget) {
        slot.spray_width = static_cast<u16>(std::max<u32>(
            cfg_.min_spray_width, slot.spray_width / 2));
        slot.last_ooo = fr.max_distance;
        ++stats_.narrowings;
      }
    }
    const auto it = merge_scratch_.find(slot.hash);
    const u64 rate = it == merge_scratch_.end() ? 0 : it->second;
    if (rate >= cfg_.demote_count) {
      slot.dwell = 0;
      continue;
    }
    if (++slot.dwell < cfg_.demote_dwell_ticks) continue;
    // Dwell satisfied: re-pin (or fall back to full spray if the budget is
    // gone — it stays a demoted mouse either way and may pin later).
    slot.dwell = 0;
    slot.spray_width = static_cast<u16>(num_cores_);
    slot.state =
        try_pin(slot) ? FlowState::kPinned : FlowState::kPinFallback;
    ++stats_.elephant_demotions;
  }

  // 4. Bounded idle sweep: reclaim rules (and cache slots) from dead flows,
  //    and retry pinning for fallback mice now that rules may have freed up.
  const u32 n = static_cast<u32>(flows_.size());
  const u32 scan = std::min(cfg_.evict_scan, n);
  for (u32 k = 0; k < scan; ++k) {
    FlowSlot& slot = flows_[(evict_cursor_ + k) & (n - 1)];
    if (slot.state == FlowState::kEmpty) continue;
    if (now - slot.last_seen > cfg_.idle_timeout) {
      if (slot.state == FlowState::kPinned) {
        unpin(slot);
        ++stats_.rule_evictions;
      }
      slot.state = FlowState::kEmpty;
    } else if (slot.state == FlowState::kPinFallback && try_pin(slot)) {
      slot.state = FlowState::kPinned;
    }
  }
  evict_cursor_ = (evict_cursor_ + scan) & (n - 1);

  mirror_metrics();
}

void AdaptiveSprayPolicy::mirror_metrics() {
  if (registry_ == nullptr) return;
  registry_->begin_update(shard_);
  tm_.pinned_flows.set(shard_, stats_.pinned_flows);
  tm_.pins_installed.set(shard_, stats_.pins_installed);
  tm_.pin_fallbacks.set(shard_, stats_.pin_fallbacks);
  tm_.rule_evictions.set(shard_, stats_.rule_evictions);
  tm_.elephant_promotions.set(shard_, stats_.elephant_promotions);
  tm_.elephant_demotions.set(shard_, stats_.elephant_demotions);
  tm_.p2c_deflections.set(shard_, stats_.p2c_deflections);
  tm_.narrowings.set(shard_, stats_.narrowings);
  tm_.unpinned_sprays.set(shard_, stats_.unpinned_sprays);
  registry_->end_update(shard_);
}

}  // namespace sprayer::core

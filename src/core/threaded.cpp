#include "core/threaded.hpp"

#include <chrono>
#include <thread>

#include "net/packet_pool.hpp"

namespace sprayer::core {

namespace {

Time steady_now() {
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()) *
      kNanosecond;
}

}  // namespace

/// ICorePort implementation for one worker: transfers go to the SPSC mesh,
/// transmissions to the user sink.
class ThreadedMiddlebox::CorePort final : public ICorePort {
 public:
  CorePort(ThreadedMiddlebox& owner, CoreId id) : owner_(owner), id_(id) {}

  bool transfer(CoreId dest, net::Packet* pkt) override {
    return owner_.mesh_[id_][dest]->push(pkt);
  }

  void transmit(net::Packet* pkt) override { owner_.tx_(pkt); }

 private:
  ThreadedMiddlebox& owner_;
  CoreId id_;
};

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                                     TxHandler tx)
    : cfg_(cfg), nf_(nf), tx_(std::move(tx)), picker_(cfg.num_cores),
      rss_(cfg.num_cores) {
  SPRAYER_CHECK(cfg_.num_cores >= 1);
  SPRAYER_CHECK(tx_ != nullptr);
  nf_.init(nf_init_, cfg_.num_cores);

  if (cfg_.mode == DispatchMode::kSpray) {
    const Status s = fdir_.program_checksum_spray(cfg_.num_cores);
    SPRAYER_CHECK_MSG(s.ok(), "failed to program Flow Director spraying");
  }

  const u32 table_capacity =
      nf_init_.stateless ? 2u : nf_init_.flow_table_capacity;
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    tables_.push_back(std::make_unique<FlowTable>(
        table_capacity, nf_init_.flow_entry_size, static_cast<CoreId>(c)));
    table_ptrs_.push_back(tables_.back().get());
  }
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    contexts_.push_back(std::make_unique<NfContext>(
        static_cast<CoreId>(c), std::span<FlowTable* const>{table_ptrs_},
        picker_, cfg_.costs));
    ports_.push_back(std::make_unique<CorePort>(*this,
                                                static_cast<CoreId>(c)));
    engines_.push_back(std::make_unique<SprayerCore>(
        static_cast<CoreId>(c), cfg_, nf_init_.stateless, nf_,
        picker_, *contexts_.back(), *ports_.back()));
    rx_rings_.push_back(std::make_unique<Ring>(4096));
  }
  last_housekeeping_.assign(cfg_.num_cores, 0);
  mesh_.resize(cfg_.num_cores);
  for (u32 src = 0; src < cfg_.num_cores; ++src) {
    for (u32 dst = 0; dst < cfg_.num_cores; ++dst) {
      mesh_[src].push_back(
          std::make_unique<Ring>(cfg_.foreign_ring_capacity));
    }
  }
}

ThreadedMiddlebox::~ThreadedMiddlebox() { stop(); }

void ThreadedMiddlebox::start() {
  SPRAYER_CHECK_MSG(!started_, "already started");
  started_ = true;
  workers_.start(cfg_.num_cores,
                 [this](CoreId core) { return worker_body(core); });
}

void ThreadedMiddlebox::stop() {
  if (!started_) return;
  workers_.stop();
  started_ = false;
  // Free anything still queued.
  auto drain = [](Ring& ring) {
    net::Packet* pkt;
    while (ring.pop(pkt)) pkt->pool()->free(pkt);
  };
  for (auto& ring : rx_rings_) drain(*ring);
  for (auto& row : mesh_) {
    for (auto& ring : row) drain(*ring);
  }
}

bool ThreadedMiddlebox::inject(net::Packet* pkt) {
  pkt->parse();
  u16 queue;
  const auto fdir_queue = fdir_.match(*pkt);
  if (fdir_queue.has_value()) {
    queue = *fdir_queue;
  } else {
    queue = rss_.queue_for(*pkt);
  }
  if (!rx_rings_[queue]->push(pkt)) {
    rx_ring_drops_.fetch_add(1, std::memory_order_relaxed);
    pkt->pool()->free(pkt);
    return false;
  }
  return true;
}

bool ThreadedMiddlebox::worker_body(CoreId core) {
  busy_workers_.fetch_add(1, std::memory_order_acq_rel);
  runtime::PacketBatch batch;
  bool did_work = false;

  if (cfg_.housekeeping_interval > 0) {
    const Time now = steady_now();
    if (now - last_housekeeping_[core] >= cfg_.housekeeping_interval) {
      last_housekeeping_[core] = now;
      NfContext& ctx = *contexts_[core];
      ctx.set_now(now);
      ctx.flows().set_in_connection_handler(true);
      nf_.housekeeping(ctx);
      engines_[core]->stats().busy_cycles += ctx.drain_consumed();
    }
  }

  // Foreign rings first (bounds connection-packet latency).
  for (u32 src = 0; src < cfg_.num_cores && !batch.full(); ++src) {
    if (src == core) continue;
    net::Packet* pkt;
    while (batch.size() < cfg_.rx_batch && mesh_[src][core]->pop(pkt)) {
      batch.push(pkt);
    }
  }
  if (!batch.empty()) {
    engines_[core]->process_foreign(batch, steady_now());
    did_work = true;
  } else {
    const u32 n = rx_rings_[core]->pop_bulk(
        std::span<net::Packet*>{batch.data(), cfg_.rx_batch});
    if (n > 0) {
      batch.set_size(n);
      engines_[core]->process_rx(batch, steady_now());
      did_work = true;
    }
  }
  busy_workers_.fetch_sub(1, std::memory_order_acq_rel);
  return did_work;
}

void ThreadedMiddlebox::wait_idle() const {
  using namespace std::chrono_literals;
  auto quiescent = [this] {
    for (const auto& ring : rx_rings_) {
      if (!ring->empty_approx()) return false;
    }
    for (const auto& row : mesh_) {
      for (const auto& ring : row) {
        if (!ring->empty_approx()) return false;
      }
    }
    return busy_workers_.load(std::memory_order_acquire) == 0;
  };
  // Require the condition to hold across two samples: a worker could be
  // mid-batch (about to refill a mesh ring) on the first one.
  for (;;) {
    if (quiescent()) {
      std::this_thread::sleep_for(200us);
      if (quiescent()) return;
    }
    std::this_thread::sleep_for(100us);
  }
}

CoreStats ThreadedMiddlebox::total_stats() const {
  CoreStats total;
  for (const auto& e : engines_) total.merge(e->stats());
  return total;
}

}  // namespace sprayer::core

#include "core/threaded.hpp"

#include <chrono>
#include <thread>

#include "common/compiler.hpp"
#include "common/overload.hpp"
#include "net/packet_pool.hpp"

namespace sprayer::core {

namespace {

Time steady_now() {
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()) *
      kNanosecond;
}

ThreadedMiddlebox::TxBatchHandler wrap_tx(ThreadedMiddlebox::TxHandler tx) {
  SPRAYER_CHECK_MSG(tx != nullptr, "tx handler must not be null");
  return [tx = std::move(tx)](std::span<net::Packet* const> pkts) {
    for (net::Packet* pkt : pkts) tx(pkt);
  };
}

}  // namespace

/// ICorePort implementation for one worker: transfers go to the SPSC mesh
/// (whole staging buffers per doorbell), transmissions to the user sink
/// (one invocation per verdict batch).
class ThreadedMiddlebox::CorePort final : public ICorePort {
 public:
  CorePort(ThreadedMiddlebox& owner, CoreId id) : owner_(owner), id_(id) {}

  bool transfer(CoreId dest, net::Packet* pkt) override {
    return owner_.mesh_[id_][dest]->push(pkt);
  }

  u32 transfer_batch(CoreId dest,
                     std::span<net::Packet* const> pkts) override {
    return owner_.mesh_[id_][dest]->push_bulk(pkts);
  }

  void transmit(net::Packet* pkt) override { transmit_batch({&pkt, 1}); }

  void transmit_batch(std::span<net::Packet* const> pkts) override {
    // The tx boundary is where spray-induced reordering becomes visible:
    // fold stamped packets into the observatory before the sink sees them.
    if (owner_.reorder_ != nullptr) owner_.reorder_->observe(pkts);
    // Close the NF stage for traced packets (runs inside the worker's
    // registry update window — dispatch is called under it). The clock is
    // read once per batch, and only when the batch holds a traced packet.
    if (owner_.tracer_ != nullptr) {
      owner_.tracer_->record_tx(pkts, id_, [] { return steady_now(); });
    }
    owner_.tx_(pkts);
  }

 private:
  ThreadedMiddlebox& owner_;
  CoreId id_;
};

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg,
                                     std::unique_ptr<IChain> owned,
                                     IChain* chain, TxBatchHandler tx)
    : cfg_(cfg), owned_chain_(std::move(owned)),
      chain_(chain != nullptr ? *chain : *owned_chain_), tx_(std::move(tx)),
      picker_(cfg.num_cores), rss_(cfg.num_cores),
      registry_(cfg.num_cores + 1), collector_(registry_) {
  SPRAYER_CHECK(cfg_.num_cores >= 1);
  SPRAYER_CHECK(tx_ != nullptr);
  SPRAYER_CHECK_MSG(cfg_.rx_batch >= 1 &&
                        cfg_.rx_batch <= runtime::kMaxBatchSize,
                    "rx_batch must fit in a PacketBatch");

  // Shards 0..num_cores-1 are the workers; shard num_cores is the driver.
  // Framework metrics first, then the chain's NFs register their own
  // during init(), then one finalize() lays out the slabs.
  EngineTelemetry engine_tm;
  if (cfg_.telemetry) {
    tm_.packets = registry_.counter("worker.packets");
    tm_.batches = registry_.counter("worker.batches");
    tm_.foreign_packets = registry_.counter("worker.foreign_packets");
    tm_.injected = registry_.counter("driver.injected");
    tm_.inject_drops = registry_.counter("driver.rx_ring_drops");
    tm_.shed_regular = registry_.counter("driver.shed_regular");
    tm_.shed_conn = registry_.counter("driver.shed_conn");
    tm_.block_spins = registry_.counter("driver.block_spins");
    tm_.rx_ring_hwm = registry_.gauge("rx_ring.occupancy_hwm",
                                      telemetry::MetricKind::kGaugeMax);
    tm_.mesh_ring_hwm = registry_.gauge("mesh_ring.occupancy_hwm",
                                        telemetry::MetricKind::kGaugeMax);
    tm_.batch_size = registry_.histogram("worker.batch_size", 5);
    tm_.queue_delay_ns = registry_.histogram("rx.queue_delay_ns", 5);
    engine_tm.flush_calls = registry_.counter("engine.transfer_flush_calls");
    engine_tm.flush_packets =
        registry_.counter("engine.transfer_flush_packets");
    engine_tm.flush_drops = registry_.counter("engine.transfer_flush_drops");
    engine_tm.retry_packets =
        registry_.counter("engine.transfer_retry_packets");
    engine_tm.pending_hwm = registry_.gauge(
        "engine.transfer_pending_hwm", telemetry::MetricKind::kGaugeMax);
    engine_tm.retry_rounds =
        registry_.histogram("engine.transfer_retry_rounds", 5);
  }
  if (cfg_.adaptive.enabled) {
    SPRAYER_CHECK_MSG(cfg_.mode == DispatchMode::kSpray,
                      "adaptive spraying refines spray mode; RSS has no "
                      "spray decision to adapt");
    SPRAYER_CHECK_MSG(cfg_.housekeeping_interval > 0,
                      "adaptive spraying needs the housekeeping tick to "
                      "decay the heavy-hitter sketches");
    adaptive_ = std::make_unique<AdaptiveSprayPolicy>(
        cfg_.adaptive, cfg_.num_cores, fdir_, picker_);
    // Before finalize(): the spray.adaptive.* mirror lives on the driver
    // shard alongside the other injection-side metrics.
    if (cfg_.telemetry) {
      adaptive_->register_metrics(registry_, driver_shard());
    }
  }
  if (cfg_.trace.enabled) {
    SPRAYER_CHECK_MSG(cfg_.telemetry,
                      "path tracing records into the metrics registry; "
                      "enable SprayerConfig::telemetry");
    tracer_ =
        std::make_unique<telemetry::PathTracer>(cfg_.trace, steady_now());
    // Before finalize(): the trace.* stage histograms are sharded metrics.
    tracer_->register_metrics(registry_);
  }

  const u32 hops = chain_.num_hops();
  hop_init_.resize(hops);
  for (auto& hc : hop_init_) hc.state_strategy = cfg_.state.kind;
  if (cfg_.telemetry) {
    for (auto& hc : hop_init_) hc.registry = &registry_;
  }
  ChainInit chain_init;
  chain_init.hop_cfgs = hop_init_;
  chain_init.num_cores = cfg_.num_cores;
  chain_init.registry = cfg_.telemetry ? &registry_ : nullptr;
  chain_init.hop_timing = cfg_.chain_hop_timing;
  chain_init.lifecycle_sweep = cfg_.lifecycle.sweep;
  chain_init.idle_timeout_override = cfg_.lifecycle.idle_timeout;
  chain_init.sweep_groups_per_tick = cfg_.lifecycle.sweep_groups_per_tick;
  chain_.init(chain_init);
  if (cfg_.telemetry) registry_.finalize();
  stateless_chain_ = true;
  for (const auto& hc : hop_init_) stateless_chain_ &= hc.stateless;
  if (cfg_.reorder_observatory) {
    reorder_ = std::make_unique<telemetry::ReorderObservatory>();
  }
  if (adaptive_ != nullptr && reorder_ != nullptr) {
    adaptive_->set_observatory(reorder_.get());
  }

  if (cfg_.flow_export.enabled) {
    live_ = std::make_unique<telemetry::LiveExporter>(cfg_.flow_export,
                                                      registry_);
    for (u32 c = 0; c < cfg_.num_cores; ++c) {
      recorders_.push_back(std::make_unique<telemetry::FlowRecorder>(
          cfg_.flow_export.table_slots, cfg_.flow_export.idle_timeout));
      live_->add_recorder(recorders_.back().get());
    }
    // fn gauges may be registered after finalize().
    if (cfg_.telemetry) live_->register_metrics(registry_);
    if (!cfg_.flow_export.sink_path.empty()) {
      live_sink_ = std::make_unique<std::ofstream>(cfg_.flow_export.sink_path);
      SPRAYER_CHECK_MSG(live_sink_->good(),
                        "failed to open flow-export sink path");
      live_->set_sink(live_sink_.get());
    }
    // Placement and reorder evidence are resolved per flow at emission
    // time, on the driver thread — the thread the adaptive policy and the
    // observatory's rx table belong to.
    live_->set_flow_info([this](u32 hash) {
      telemetry::LiveExporter::FlowInfo info;
      if (adaptive_ != nullptr) {
        info.placement = adaptive_->is_pinned(hash) ? "pinned" : "sprayed";
      } else {
        info.placement =
            cfg_.mode == DispatchMode::kSpray ? "sprayed" : "rss";
      }
      if (reorder_ != nullptr) {
        const auto flow = reorder_->flow_stats(hash);
        info.ooo_sampled = flow.sampled;
        info.ooo_max = flow.max_distance;
      }
      return info;
    });
  }
  if (cfg_.telemetry) {
    // Satellite of DESIGN.md §13: snapshots that exhausted their seqlock
    // retries are counted, not silently kept — summed over the end-of-run
    // collector and the live exporter's stream collector.
    registry_.gauge_fn("telemetry.snapshot.inconsistent", [this] {
      u64 n = collector_.inconsistent_snapshots();
      if (live_ != nullptr) {
        n += live_->stats().inconsistent_snapshots.load();
      }
      return n;
    });
  }

  if (cfg_.mode == DispatchMode::kSpray) {
    const Status s = fdir_.program_checksum_spray(cfg_.num_cores);
    SPRAYER_CHECK_MSG(s.ok(), "failed to program Flow Director spraying");
  }

  // Per-hop flow tables, built by the state strategy (each hop keys by its
  // own tuple space and entry size, so hops never share a table; the
  // strategy decides whether a hop gets per-core shards, per-core replicas,
  // or one shared table).
  strategy_ = state::StateStrategy::make(cfg_.state, cfg_.num_cores);
  table_ptrs_.resize(hops);
  for (u32 h = 0; h < hops; ++h) {
    u32 table_capacity =
        hop_init_[h].stateless ? 2u : hop_init_[h].flow_table_capacity;
    if (!hop_init_[h].stateless && cfg_.lifecycle.flow_table_capacity != 0) {
      table_capacity = cfg_.lifecycle.flow_table_capacity;
    }
    strategy_->add_hop(table_capacity, hop_init_[h].flow_entry_size);
    const auto span = strategy_->hop_tables(h);
    table_ptrs_[h].assign(span.begin(), span.end());
    if (!hop_init_[h].stateless && cfg_.lifecycle.max_table_segments > 1) {
      // Opt-in online growth (idempotent when the strategy aliases one
      // shared table into every per-core slot).
      for (FlowTable* t : table_ptrs_[h]) {
        t->set_growth(cfg_.lifecycle.max_table_segments);
      }
    }
  }
  contexts_.resize(cfg_.num_cores);
  ctx_ptrs_.resize(cfg_.num_cores);
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    for (u32 h = 0; h < hops; ++h) {
      contexts_[c].push_back(std::make_unique<NfContext>(
          static_cast<CoreId>(c),
          std::span<FlowTable* const>{table_ptrs_[h]}, picker_, cfg_.costs));
      contexts_[c].back()->flows().set_bulk_enabled(cfg_.bulk_flow_lookup);
      contexts_[c].back()->configure_state(
          strategy_->view(static_cast<CoreId>(c), h));
      ctx_ptrs_[c].push_back(contexts_[c].back().get());
    }
    ports_.push_back(std::make_unique<CorePort>(*this,
                                                static_cast<CoreId>(c)));
    ICorePort* port = ports_.back().get();
    if (cfg_.transfer_fault.enabled()) {
      fault_ports_.push_back(std::make_unique<FaultInjectedPort>(
          *port, cfg_.transfer_fault));
      port = fault_ports_.back().get();
    }
    engines_.push_back(std::make_unique<SprayerCore>(
        static_cast<CoreId>(c), cfg_, stateless_chain_, chain_, picker_,
        std::span<NfContext* const>{ctx_ptrs_[c]}, *port));
    if (cfg_.telemetry) {
      engine_tm.shard = c;
      engines_.back()->set_telemetry(engine_tm);
    }
    if (adaptive_ != nullptr) {
      engines_.back()->set_flow_sketch(&adaptive_->sketch(c));
    }
    if (live_ != nullptr) {
      engines_.back()->set_flow_recorder(recorders_[c].get());
    }
    engines_.back()->set_conn_redirect(
        strategy_->redirects_connection_packets());
    engines_.back()->set_state_runtime(
        strategy_->sync_runtime(static_cast<CoreId>(c)));
    rx_rings_.push_back(std::make_unique<Ring>(cfg_.rx_ring_capacity));
  }
  if (cfg_.telemetry &&
      cfg_.state.kind != state::StateStrategyKind::kWritingPartition) {
    // fn gauges may be registered after finalize(); the cells they read are
    // single-writer relaxed counters, safe to sample while workers run.
    if (cfg_.state.kind == state::StateStrategyKind::kReplication) {
      registry_.gauge_fn("state.sync.frames_sent", [this] {
        return strategy_->sync_stats().frames_sent;
      });
      registry_.gauge_fn("state.sync.bytes_sent", [this] {
        return strategy_->sync_stats().bytes_sent;
      });
      registry_.gauge_fn("state.sync.ops_sent", [this] {
        return strategy_->sync_stats().ops_sent;
      });
      registry_.gauge_fn("state.sync.ops_applied", [this] {
        return strategy_->sync_stats().ops_applied;
      });
      registry_.gauge_fn("state.sync.apply_failures", [this] {
        return strategy_->sync_stats().apply_failures;
      });
      registry_.gauge_fn("state.sync.alloc_stalls", [this] {
        return strategy_->sync_stats().alloc_stalls;
      });
      registry_.gauge_fn("state.divergence.mismatches", [this] {
        return strategy_->divergence_mismatches();
      });
      registry_.gauge_fn("state.remote_reads_avoided", [this] {
        u64 n = 0;
        for (const auto& core_ctxs : contexts_) {
          for (const auto& ctx : core_ctxs) {
            n += ctx->flows().strategy_counters().remote_reads_avoided;
          }
        }
        return n;
      });
    } else {
      registry_.gauge_fn("state.lock_acquisitions", [this] {
        u64 n = 0;
        for (const auto& core_ctxs : contexts_) {
          for (const auto& ctx : core_ctxs) {
            n += ctx->flows().strategy_counters().lock_acquisitions;
          }
        }
        return n;
      });
    }
  }
  if (adaptive_ != nullptr && cfg_.adaptive.p2c) {
    depth_probe_ = std::make_unique<RxDepthProbe>(*this);
    adaptive_->set_depth_probe(depth_probe_.get());
  }
  rx_shed_threshold_ =
      shed_threshold(cfg_.rx_ring_capacity, cfg_.rx_shed_watermark);
  worker_state_.resize(cfg_.num_cores);
  inject_stage_.resize(cfg_.num_cores);
  mesh_.resize(cfg_.num_cores);
  for (u32 src = 0; src < cfg_.num_cores; ++src) {
    for (u32 dst = 0; dst < cfg_.num_cores; ++dst) {
      mesh_[src].push_back(
          std::make_unique<Ring>(cfg_.foreign_ring_capacity));
    }
  }
}

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, IChain& chain,
                                     TxBatchHandler tx)
    : ThreadedMiddlebox(cfg, nullptr, &chain, std::move(tx)) {}

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                                     TxBatchHandler tx)
    : ThreadedMiddlebox(cfg, std::make_unique<DynamicChain>(nf), nullptr,
                        std::move(tx)) {}

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                                     TxHandler tx)
    : ThreadedMiddlebox(cfg, nf, wrap_tx(std::move(tx))) {}

ThreadedMiddlebox::~ThreadedMiddlebox() { stop(); }

void ThreadedMiddlebox::start() {
  SPRAYER_CHECK_MSG(!started_, "already started");
  started_ = true;
  workers_.start(cfg_.num_cores,
                 [this](CoreId core) { return worker_body(core); });
}

void ThreadedMiddlebox::stop() {
  if (!started_) return;
  workers_.stop();
  started_ = false;
  // Workers flush their staging buffers at the end of every iteration, but
  // be defensive: push any leftovers onto the mesh before draining it.
  for (auto& engine : engines_) engine->flush_transfers();
  // Free anything still queued.
  auto drain = [](Ring& ring) {
    net::Packet* pkt;
    while (ring.pop(pkt)) pkt->pool()->free(pkt);
  };
  for (auto& ring : rx_rings_) drain(*ring);
  for (auto& row : mesh_) {
    for (auto& ring : row) drain(*ring);
  }
  // Descriptors the flush above could not place (mesh was full even after
  // parking) are freed here — the only point the lossless path gives up,
  // counted in CoreStats::transfer_drops.
  for (auto& engine : engines_) engine->release_stranded();
  // Workers are quiescent: harvest the last deltas and close out every
  // live flow with a reason="final" record plus a final snapshot line.
  if (live_ != nullptr) live_->flush_final(steady_now());
}

bool ThreadedMiddlebox::admit(Ring& ring, net::Packet* pkt, bool conn,
                              u64& spins) {
  switch (cfg_.overload_policy) {
    case OverloadPolicy::kDropNew:
      return ring.push(pkt);
    case OverloadPolicy::kDropRegularFirst:
      // The headroom between the watermark and full capacity is reserved
      // for connection packets: regular traffic sheds early so a burst of
      // SYN/FIN/RST still finds ring space on a congested core.
      if (!conn && ring.size_approx() >= rx_shed_threshold_) return false;
      return ring.push(pkt);
    case OverloadPolicy::kBlock:
      while (!ring.push(pkt)) {
        SPRAYER_CHECK_MSG(started_,
                          "kBlock inject needs running workers to drain");
        cpu_relax();
        // Yield periodically: on oversubscribed hosts the consumer may
        // need our timeslice to make room.
        if ((++spins & 1023) == 0) std::this_thread::yield();
      }
      return true;
  }
  return ring.push(pkt);
}

bool ThreadedMiddlebox::inject(net::Packet* pkt) {
  pkt->parse();
  // NIC model: compute the RSS hash once at rx and stash it in the
  // descriptor (Packet metadata); workers and NFs reuse it from there.
  u32 rss_hash = 0;
  if (pkt->is_ipv4()) {
    rss_hash = rss_.hash_of(*pkt);
    pkt->set_flow_hash(rss_hash);
  }
  // One clock read when any driver-tick consumer is live (adaptive policy,
  // flow-export harvest, trace stamping); none on the plain path.
  const Time now =
      adaptive_ != nullptr || live_ != nullptr || tracer_ != nullptr
          ? steady_now()
          : 0;
  if (reorder_ != nullptr) reorder_->stamp(*pkt);
  const bool traced =
      tracer_ != nullptr && tracer_->maybe_stamp(*pkt, [&] { return now; });
  u16 queue;
  if (adaptive_ != nullptr && pkt->is_tcp() && pkt->has_flow_hash()) {
    // Adaptive spraying: the policy settles the final queue (pinned flows
    // from its flow cache, sprayed ones from the checksum rule set) and
    // runs its maintenance tick when due.
    queue = adaptive_->steer(*pkt, rss_hash, now);
    adaptive_->maybe_tick(now);
  } else {
    const auto fdir_queue = fdir_.match(*pkt);
    if (fdir_queue.has_value()) {
      queue = *fdir_queue;
    } else {
      queue = rss_.queue_for_hash(rss_hash);
    }
  }
  if (traced) tracer_->record_steer(*pkt, steady_now());
  if (live_ != nullptr) live_->maybe_tick(now);
  const bool conn = !stateless_chain_ && pkt->is_tcp() &&
                    pkt->is_connection_packet();
  u64 spins = 0;
  const bool pushed = admit(*rx_rings_[queue], pkt, conn, spins);
  if (cfg_.telemetry) {
    registry_.begin_update(driver_shard());
    if (pushed) {
      tm_.injected.add(driver_shard(), 1);
    } else {
      tm_.inject_drops.add(driver_shard(), 1);
      (conn ? tm_.shed_conn : tm_.shed_regular).add(driver_shard(), 1);
    }
    if (spins > 0) tm_.block_spins.add(driver_shard(), spins);
    if (tracer_ != nullptr && tracer_->has_driver_samples()) {
      tracer_->flush_driver(driver_shard());
    }
    registry_.end_update(driver_shard());
  }
  if (!pushed) {
    rx_ring_drops_.fetch_add(1, std::memory_order_relaxed);
    (conn ? shed_conn_ : shed_regular_)
        .fetch_add(1, std::memory_order_relaxed);
    pkt->pool()->free(pkt);
    return false;
  }
  return true;
}

u32 ThreadedMiddlebox::inject_bulk(std::span<net::Packet* const> pkts) {
  for (auto& group : inject_stage_) group.clear();
  // One clock read covers the whole burst: every packet gets the same rx
  // timestamp for the queue-delay histogram, and the adaptive policy gets
  // one coherent "now" for flow aging and its maintenance tick.
  const Time rx_stamp =
      (cfg_.telemetry || adaptive_ != nullptr || live_ != nullptr) &&
              !pkts.empty()
          ? steady_now()
          : 0;
  for (net::Packet* pkt : pkts) {
    pkt->parse();
    u32 rss_hash = 0;
    if (pkt->is_ipv4()) {
      rss_hash = rss_.hash_of(*pkt);
      pkt->set_flow_hash(rss_hash);
    }
    pkt->ts_rx = rx_stamp;
    if (reorder_ != nullptr) reorder_->stamp(*pkt);
    const bool traced = tracer_ != nullptr &&
                        tracer_->maybe_stamp(*pkt, [&] { return rx_stamp; });
    u16 queue;
    if (adaptive_ != nullptr && pkt->is_tcp() && pkt->has_flow_hash()) {
      queue = adaptive_->steer(*pkt, rss_hash, rx_stamp);
    } else {
      const auto fdir_queue = fdir_.match(*pkt);
      queue = fdir_queue.has_value() ? *fdir_queue
                                     : rss_.queue_for_hash(rss_hash);
    }
    // Sampled packets pay a fresh clock read to close the steer stage; the
    // other 2^N-1 per window stay clock-free.
    if (traced) tracer_->record_steer(*pkt, steady_now());
    inject_stage_[queue].push_back(pkt);
  }
  if (adaptive_ != nullptr && !pkts.empty()) adaptive_->maybe_tick(rx_stamp);
  if (live_ != nullptr && !pkts.empty()) live_->maybe_tick(rx_stamp);
  u32 accepted = 0;
  u64 shed_reg = 0;
  u64 shed_cn = 0;
  u64 spins = 0;
  for (u32 q = 0; q < cfg_.num_cores; ++q) {
    auto& group = inject_stage_[q];
    if (group.empty()) continue;
    Ring& ring = *rx_rings_[q];
    const auto span = std::span<net::Packet* const>{group};
    // Fast path — one doorbell for the whole group when no class-aware
    // decision is needed: kDropNew always, kDropRegularFirst when the
    // group fits entirely under the watermark (the single-producer
    // contract means occupancy can only shrink underneath us).
    if (cfg_.overload_policy == OverloadPolicy::kDropNew ||
        (cfg_.overload_policy == OverloadPolicy::kDropRegularFirst &&
         ring.size_approx() + group.size() <= rx_shed_threshold_)) {
      const u32 n = ring.push_bulk(span);
      accepted += n;
      if (SPRAYER_UNLIKELY(n < group.size())) {
        const auto rejected = span.subspan(n);
        for (net::Packet* pkt : rejected) {
          const bool conn = !stateless_chain_ && pkt->is_tcp() &&
                            pkt->is_connection_packet();
          ++(conn ? shed_cn : shed_reg);
        }
        net::free_packets(rejected);
      }
      continue;
    }
    // Watermark slow path — still one doorbell per group: walk the group in
    // order shedding regular packets that would land above the watermark
    // (occupancy can only shrink underneath us, so the prediction is
    // conservative), then bulk-push the survivors and bulk-free the shed.
    if (cfg_.overload_policy == OverloadPolicy::kDropRegularFirst) {
      admit_scratch_.clear();
      shed_scratch_.clear();
      const u32 occupancy = static_cast<u32>(ring.size_approx());
      for (net::Packet* pkt : group) {
        const bool conn = !stateless_chain_ && pkt->is_tcp() &&
                          pkt->is_connection_packet();
        if (!conn &&
            occupancy + admit_scratch_.size() >= rx_shed_threshold_) {
          ++shed_reg;
          shed_scratch_.push_back(pkt);
        } else {
          admit_scratch_.push_back(pkt);
        }
      }
      const auto stage = std::span<net::Packet* const>{admit_scratch_};
      const u32 n = ring.push_bulk(stage);
      accepted += n;
      if (SPRAYER_UNLIKELY(n < stage.size())) {
        const auto rejected = stage.subspan(n);
        for (net::Packet* pkt : rejected) {
          const bool conn = !stateless_chain_ && pkt->is_tcp() &&
                            pkt->is_connection_packet();
          ++(conn ? shed_cn : shed_reg);
        }
        net::free_packets(rejected);
      }
      if (!shed_scratch_.empty()) net::free_packets(shed_scratch_);
      continue;
    }
    // kBlock: per-descriptor admission — each push may have to wait.
    for (net::Packet* pkt : group) {
      const bool conn = !stateless_chain_ && pkt->is_tcp() &&
                        pkt->is_connection_packet();
      if (admit(ring, pkt, conn, spins)) {
        ++accepted;
      } else {
        ++(conn ? shed_cn : shed_reg);
        pkt->pool()->free(pkt);
      }
    }
  }
  if (shed_reg + shed_cn > 0) {
    rx_ring_drops_.fetch_add(shed_reg + shed_cn, std::memory_order_relaxed);
    shed_regular_.fetch_add(shed_reg, std::memory_order_relaxed);
    shed_conn_.fetch_add(shed_cn, std::memory_order_relaxed);
  }
  if (cfg_.telemetry) {
    registry_.begin_update(driver_shard());
    tm_.injected.add(driver_shard(), accepted);
    tm_.inject_drops.add(driver_shard(),
                         static_cast<u64>(pkts.size()) - accepted);
    if (shed_reg > 0) tm_.shed_regular.add(driver_shard(), shed_reg);
    if (shed_cn > 0) tm_.shed_conn.add(driver_shard(), shed_cn);
    if (spins > 0) tm_.block_spins.add(driver_shard(), spins);
    if (tracer_ != nullptr && tracer_->has_driver_samples()) {
      tracer_->flush_driver(driver_shard());
    }
    registry_.end_update(driver_shard());
  }
  return accepted;
}

bool ThreadedMiddlebox::worker_body(CoreId core) {
  busy_workers_.fetch_add(1, std::memory_order_acq_rel);
  runtime::PacketBatch batch;
  bool did_work = false;
  WorkerState& state = worker_state_[core];
  const u32 n_cores = cfg_.num_cores;
  // The clock is read at most once per iteration — and not at all on idle
  // iterations when housekeeping is disabled.
  Time now = 0;

  if (cfg_.housekeeping_interval > 0) {
    now = steady_now();
    if (now - state.last_housekeeping >= cfg_.housekeeping_interval) {
      state.last_housekeeping = now;
      // Housekeeping bumps NF registry counters (e.g. NAT expiry) — it
      // needs the same update window as packet processing or a
      // consistent=true snapshot can observe the burst half-applied.
      registry_.begin_update(core);
      chain_.housekeeping(ctx_ptrs_[core], now);
      // Replication: housekeeping expiries (NAT TIME_WAIT removes) sit in
      // the op log until a packet would flush them — broadcast them now.
      engines_[core]->flush_state_sync();
      registry_.end_update(core);
      for (NfContext* ctx : ctx_ptrs_[core]) {
        engines_[core]->stats().busy_cycles += ctx->drain_consumed();
      }
      // Halve this core's heavy-hitter sketch so it tracks a decayed rate
      // (worker-owned: the sketch is single-writer per core).
      if (adaptive_ != nullptr) adaptive_->sketch(core).decay();
    }
  }

  // Foreign rings first (bounds connection-packet latency). Rotate the scan
  // start so low-numbered source cores are not systematically drained first
  // under load.
  const u32 start = static_cast<u32>(state.foreign_scan_offset++ % n_cores);
  for (u32 k = 0; k < n_cores && batch.size() < cfg_.rx_batch; ++k) {
    const u32 src = start + k < n_cores ? start + k : start + k - n_cores;
    if (src == core) continue;
    const u32 room = cfg_.rx_batch - batch.size();
    const u32 got = mesh_[src][core]->pop_bulk(
        std::span<net::Packet*>{batch.data() + batch.size(), room});
    if (got > 0) {
      // Occupancy as seen at this poll: what we took plus what is left.
      tm_.mesh_ring_hwm.record_max(
          core, got + mesh_[src][core]->size_approx());
    }
    batch.set_size(batch.size() + got);
  }
  if (!batch.empty()) {
    if (now == 0) now = steady_now();
    registry_.begin_update(core);
    engines_[core]->process_foreign(batch, now);
    // process_foreign() stages nothing, but a backlog parked by an earlier
    // rx batch must still get its retry this iteration (a worker can serve
    // foreign traffic exclusively for a while under overload).
    if (engines_[core]->pending_transfers() != 0) {
      engines_[core]->flush_transfers();
    }
    tm_.packets.add(core, batch.size());
    tm_.foreign_packets.add(core, batch.size());
    tm_.batches.add(core, 1);
    tm_.batch_size.record(core, batch.size());
    registry_.end_update(core);
    did_work = true;
  } else {
    const u32 n = rx_rings_[core]->pop_bulk(
        std::span<net::Packet*>{batch.data(), cfg_.rx_batch});
    if (n > 0) {
      batch.set_size(n);
      tm_.rx_ring_hwm.record_max(core, n + rx_rings_[core]->size_approx());
      if (now == 0) now = steady_now();
      // Read the driver's stamp before the engine consumes (frees) the
      // packets.
      const Time stamped = batch[0]->ts_rx;
      registry_.begin_update(core);
      // Close the rx-ring queue stage for traced packets before the engine
      // consumes the batch (re-stamps them for the NF stage).
      if (tracer_ != nullptr) tracer_->record_queue(batch.packets(), core, now);
      engines_[core]->process_rx(batch, now);
      tm_.packets.add(core, n);
      tm_.batches.add(core, 1);
      tm_.batch_size.record(core, n);
      if (stamped != 0 && now > stamped) {
        tm_.queue_delay_ns.record(core, (now - stamped) / kNanosecond);
      }
      registry_.end_update(core);
      did_work = true;
    } else {
      // Idle: make sure nothing is stranded in a staging buffer (no-op in
      // the common case — process_rx flushes at batch end). Only a parked
      // backlog makes this flush update counters, so only then is a
      // seqlock window worth opening (bracketing every idle spin would
      // keep the shard sequence moving and starve consistent snapshots).
      const bool retrying = engines_[core]->pending_transfers() != 0;
      if (retrying) registry_.begin_update(core);
      engines_[core]->flush_transfers();
      if (retrying) registry_.end_update(core);
    }
  }
  busy_workers_.fetch_sub(1, std::memory_order_acq_rel);
  return did_work;
}

void ThreadedMiddlebox::wait_idle() const {
  using namespace std::chrono_literals;
  auto quiescent = [this] {
    for (const auto& ring : rx_rings_) {
      if (!ring->empty_approx()) return false;
    }
    for (const auto& row : mesh_) {
      for (const auto& ring : row) {
        if (!ring->empty_approx()) return false;
      }
    }
    // Parked redirect descriptors are invisible to the rings but are still
    // in flight: a worker between iterations may hold a backlog the
    // destination has yet to make room for.
    for (const auto& e : engines_) {
      if (e->pending_transfers() != 0) return false;
    }
    return busy_workers_.load(std::memory_order_acquire) == 0;
  };
  // Require the condition to hold across two samples: a worker could be
  // mid-batch (about to refill a mesh ring) on the first one.
  for (;;) {
    if (quiescent()) {
      std::this_thread::sleep_for(200us);
      if (quiescent()) return;
    }
    std::this_thread::sleep_for(100us);
  }
}

CoreStats ThreadedMiddlebox::total_stats() const {
  CoreStats total;
  for (const auto& e : engines_) total.merge(e->stats());
  return total;
}

}  // namespace sprayer::core

#include "core/threaded.hpp"

#include <chrono>
#include <thread>

#include "net/packet_pool.hpp"

namespace sprayer::core {

namespace {

Time steady_now() {
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()) *
      kNanosecond;
}

ThreadedMiddlebox::TxBatchHandler wrap_tx(ThreadedMiddlebox::TxHandler tx) {
  SPRAYER_CHECK_MSG(tx != nullptr, "tx handler must not be null");
  return [tx = std::move(tx)](std::span<net::Packet* const> pkts) {
    for (net::Packet* pkt : pkts) tx(pkt);
  };
}

}  // namespace

/// ICorePort implementation for one worker: transfers go to the SPSC mesh
/// (whole staging buffers per doorbell), transmissions to the user sink
/// (one invocation per verdict batch).
class ThreadedMiddlebox::CorePort final : public ICorePort {
 public:
  CorePort(ThreadedMiddlebox& owner, CoreId id) : owner_(owner), id_(id) {}

  bool transfer(CoreId dest, net::Packet* pkt) override {
    return owner_.mesh_[id_][dest]->push(pkt);
  }

  u32 transfer_batch(CoreId dest,
                     std::span<net::Packet* const> pkts) override {
    return owner_.mesh_[id_][dest]->push_bulk(pkts);
  }

  void transmit(net::Packet* pkt) override { transmit_batch({&pkt, 1}); }

  void transmit_batch(std::span<net::Packet* const> pkts) override {
    // The tx boundary is where spray-induced reordering becomes visible:
    // fold stamped packets into the observatory before the sink sees them.
    if (owner_.reorder_ != nullptr) owner_.reorder_->observe(pkts);
    owner_.tx_(pkts);
  }

 private:
  ThreadedMiddlebox& owner_;
  CoreId id_;
};

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                                     TxBatchHandler tx)
    : cfg_(cfg), nf_(nf), tx_(std::move(tx)), picker_(cfg.num_cores),
      rss_(cfg.num_cores), registry_(cfg.num_cores + 1),
      collector_(registry_) {
  SPRAYER_CHECK(cfg_.num_cores >= 1);
  SPRAYER_CHECK(tx_ != nullptr);
  SPRAYER_CHECK_MSG(cfg_.rx_batch >= 1 &&
                        cfg_.rx_batch <= runtime::kMaxBatchSize,
                    "rx_batch must fit in a PacketBatch");

  // Shards 0..num_cores-1 are the workers; shard num_cores is the driver.
  // Framework metrics first, then the NF registers its own during init(),
  // then one finalize() lays out the slabs.
  EngineTelemetry engine_tm;
  if (cfg_.telemetry) {
    tm_.packets = registry_.counter("worker.packets");
    tm_.batches = registry_.counter("worker.batches");
    tm_.foreign_packets = registry_.counter("worker.foreign_packets");
    tm_.injected = registry_.counter("driver.injected");
    tm_.inject_drops = registry_.counter("driver.rx_ring_drops");
    tm_.rx_ring_hwm = registry_.gauge("rx_ring.occupancy_hwm",
                                      telemetry::MetricKind::kGaugeMax);
    tm_.mesh_ring_hwm = registry_.gauge("mesh_ring.occupancy_hwm",
                                        telemetry::MetricKind::kGaugeMax);
    tm_.batch_size = registry_.histogram("worker.batch_size", 5);
    tm_.queue_delay_ns = registry_.histogram("rx.queue_delay_ns", 5);
    engine_tm.flush_calls = registry_.counter("engine.transfer_flush_calls");
    engine_tm.flush_packets =
        registry_.counter("engine.transfer_flush_packets");
    engine_tm.flush_drops = registry_.counter("engine.transfer_flush_drops");
    nf_init_.registry = &registry_;
  }
  nf_.init(nf_init_, cfg_.num_cores);
  if (cfg_.telemetry) registry_.finalize();
  if (cfg_.reorder_observatory) {
    reorder_ = std::make_unique<telemetry::ReorderObservatory>();
  }

  if (cfg_.mode == DispatchMode::kSpray) {
    const Status s = fdir_.program_checksum_spray(cfg_.num_cores);
    SPRAYER_CHECK_MSG(s.ok(), "failed to program Flow Director spraying");
  }

  const u32 table_capacity =
      nf_init_.stateless ? 2u : nf_init_.flow_table_capacity;
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    tables_.push_back(std::make_unique<FlowTable>(
        table_capacity, nf_init_.flow_entry_size, static_cast<CoreId>(c)));
    table_ptrs_.push_back(tables_.back().get());
  }
  for (u32 c = 0; c < cfg_.num_cores; ++c) {
    contexts_.push_back(std::make_unique<NfContext>(
        static_cast<CoreId>(c), std::span<FlowTable* const>{table_ptrs_},
        picker_, cfg_.costs));
    contexts_.back()->flows().set_bulk_enabled(cfg_.bulk_flow_lookup);
    ports_.push_back(std::make_unique<CorePort>(*this,
                                                static_cast<CoreId>(c)));
    engines_.push_back(std::make_unique<SprayerCore>(
        static_cast<CoreId>(c), cfg_, nf_init_.stateless, nf_,
        picker_, *contexts_.back(), *ports_.back()));
    if (cfg_.telemetry) {
      engine_tm.shard = c;
      engines_.back()->set_telemetry(engine_tm);
    }
    rx_rings_.push_back(std::make_unique<Ring>(4096));
  }
  worker_state_.resize(cfg_.num_cores);
  inject_stage_.resize(cfg_.num_cores);
  mesh_.resize(cfg_.num_cores);
  for (u32 src = 0; src < cfg_.num_cores; ++src) {
    for (u32 dst = 0; dst < cfg_.num_cores; ++dst) {
      mesh_[src].push_back(
          std::make_unique<Ring>(cfg_.foreign_ring_capacity));
    }
  }
}

ThreadedMiddlebox::ThreadedMiddlebox(SprayerConfig cfg, INetworkFunction& nf,
                                     TxHandler tx)
    : ThreadedMiddlebox(cfg, nf, wrap_tx(std::move(tx))) {}

ThreadedMiddlebox::~ThreadedMiddlebox() { stop(); }

void ThreadedMiddlebox::start() {
  SPRAYER_CHECK_MSG(!started_, "already started");
  started_ = true;
  workers_.start(cfg_.num_cores,
                 [this](CoreId core) { return worker_body(core); });
}

void ThreadedMiddlebox::stop() {
  if (!started_) return;
  workers_.stop();
  started_ = false;
  // Workers flush their staging buffers at the end of every iteration, but
  // be defensive: push any leftovers onto the mesh before draining it.
  for (auto& engine : engines_) engine->flush_transfers();
  // Free anything still queued.
  auto drain = [](Ring& ring) {
    net::Packet* pkt;
    while (ring.pop(pkt)) pkt->pool()->free(pkt);
  };
  for (auto& ring : rx_rings_) drain(*ring);
  for (auto& row : mesh_) {
    for (auto& ring : row) drain(*ring);
  }
}

bool ThreadedMiddlebox::inject(net::Packet* pkt) {
  pkt->parse();
  // NIC model: compute the RSS hash once at rx and stash it in the
  // descriptor (Packet metadata); workers and NFs reuse it from there.
  u32 rss_hash = 0;
  if (pkt->is_ipv4()) {
    rss_hash = rss_.hash_of(*pkt);
    pkt->set_flow_hash(rss_hash);
  }
  if (reorder_ != nullptr) reorder_->stamp(*pkt);
  u16 queue;
  const auto fdir_queue = fdir_.match(*pkt);
  if (fdir_queue.has_value()) {
    queue = *fdir_queue;
  } else {
    queue = rss_.queue_for_hash(rss_hash);
  }
  if (!rx_rings_[queue]->push(pkt)) {
    rx_ring_drops_.fetch_add(1, std::memory_order_relaxed);
    tm_.inject_drops.add(driver_shard(), 1);
    pkt->pool()->free(pkt);
    return false;
  }
  tm_.injected.add(driver_shard(), 1);
  return true;
}

u32 ThreadedMiddlebox::inject_bulk(std::span<net::Packet* const> pkts) {
  for (auto& group : inject_stage_) group.clear();
  // One clock read covers the whole burst: every packet gets the same rx
  // timestamp for the queue-delay histogram.
  const Time rx_stamp =
      cfg_.telemetry && !pkts.empty() ? steady_now() : 0;
  for (net::Packet* pkt : pkts) {
    pkt->parse();
    u32 rss_hash = 0;
    if (pkt->is_ipv4()) {
      rss_hash = rss_.hash_of(*pkt);
      pkt->set_flow_hash(rss_hash);
    }
    pkt->ts_rx = rx_stamp;
    if (reorder_ != nullptr) reorder_->stamp(*pkt);
    const auto fdir_queue = fdir_.match(*pkt);
    const u16 queue =
        fdir_queue.has_value() ? *fdir_queue : rss_.queue_for_hash(rss_hash);
    inject_stage_[queue].push_back(pkt);
  }
  u32 accepted = 0;
  for (u32 q = 0; q < cfg_.num_cores; ++q) {
    auto& group = inject_stage_[q];
    if (group.empty()) continue;
    const u32 n =
        rx_rings_[q]->push_bulk(std::span<net::Packet* const>{group});
    accepted += n;
    if (n < group.size()) {
      const auto rejected = std::span<net::Packet* const>{group}.subspan(n);
      rx_ring_drops_.fetch_add(rejected.size(), std::memory_order_relaxed);
      net::free_packets(rejected);
    }
  }
  if (cfg_.telemetry) {
    registry_.begin_update(driver_shard());
    tm_.injected.add(driver_shard(), accepted);
    tm_.inject_drops.add(driver_shard(),
                         static_cast<u64>(pkts.size()) - accepted);
    registry_.end_update(driver_shard());
  }
  return accepted;
}

bool ThreadedMiddlebox::worker_body(CoreId core) {
  busy_workers_.fetch_add(1, std::memory_order_acq_rel);
  runtime::PacketBatch batch;
  bool did_work = false;
  WorkerState& state = worker_state_[core];
  const u32 n_cores = cfg_.num_cores;
  // The clock is read at most once per iteration — and not at all on idle
  // iterations when housekeeping is disabled.
  Time now = 0;

  if (cfg_.housekeeping_interval > 0) {
    now = steady_now();
    if (now - state.last_housekeeping >= cfg_.housekeeping_interval) {
      state.last_housekeeping = now;
      NfContext& ctx = *contexts_[core];
      ctx.set_now(now);
      ctx.flows().set_in_connection_handler(true);
      nf_.housekeeping(ctx);
      engines_[core]->stats().busy_cycles += ctx.drain_consumed();
    }
  }

  // Foreign rings first (bounds connection-packet latency). Rotate the scan
  // start so low-numbered source cores are not systematically drained first
  // under load.
  const u32 start = static_cast<u32>(state.foreign_scan_offset++ % n_cores);
  for (u32 k = 0; k < n_cores && batch.size() < cfg_.rx_batch; ++k) {
    const u32 src = start + k < n_cores ? start + k : start + k - n_cores;
    if (src == core) continue;
    const u32 room = cfg_.rx_batch - batch.size();
    const u32 got = mesh_[src][core]->pop_bulk(
        std::span<net::Packet*>{batch.data() + batch.size(), room});
    if (got > 0) {
      // Occupancy as seen at this poll: what we took plus what is left.
      tm_.mesh_ring_hwm.record_max(
          core, got + mesh_[src][core]->size_approx());
    }
    batch.set_size(batch.size() + got);
  }
  if (!batch.empty()) {
    if (now == 0) now = steady_now();
    registry_.begin_update(core);
    engines_[core]->process_foreign(batch, now);
    tm_.packets.add(core, batch.size());
    tm_.foreign_packets.add(core, batch.size());
    tm_.batches.add(core, 1);
    tm_.batch_size.record(core, batch.size());
    registry_.end_update(core);
    did_work = true;
  } else {
    const u32 n = rx_rings_[core]->pop_bulk(
        std::span<net::Packet*>{batch.data(), cfg_.rx_batch});
    if (n > 0) {
      batch.set_size(n);
      tm_.rx_ring_hwm.record_max(core, n + rx_rings_[core]->size_approx());
      if (now == 0) now = steady_now();
      // Read the driver's stamp before the engine consumes (frees) the
      // packets.
      const Time stamped = batch[0]->ts_rx;
      registry_.begin_update(core);
      engines_[core]->process_rx(batch, now);
      tm_.packets.add(core, n);
      tm_.batches.add(core, 1);
      tm_.batch_size.record(core, n);
      if (stamped != 0 && now > stamped) {
        tm_.queue_delay_ns.record(core, (now - stamped) / kNanosecond);
      }
      registry_.end_update(core);
      did_work = true;
    } else {
      // Idle: make sure nothing is stranded in a staging buffer (no-op in
      // the common case — process_rx flushes at batch end).
      engines_[core]->flush_transfers();
    }
  }
  busy_workers_.fetch_sub(1, std::memory_order_acq_rel);
  return did_work;
}

void ThreadedMiddlebox::wait_idle() const {
  using namespace std::chrono_literals;
  auto quiescent = [this] {
    for (const auto& ring : rx_rings_) {
      if (!ring->empty_approx()) return false;
    }
    for (const auto& row : mesh_) {
      for (const auto& ring : row) {
        if (!ring->empty_approx()) return false;
      }
    }
    return busy_workers_.load(std::memory_order_acquire) == 0;
  };
  // Require the condition to hold across two samples: a worker could be
  // mid-batch (about to refill a mesh ring) on the first one.
  for (;;) {
    if (quiescent()) {
      std::this_thread::sleep_for(200us);
      if (quiescent()) return;
    }
    std::this_thread::sleep_for(100us);
  }
}

CoreStats ThreadedMiddlebox::total_stats() const {
  CoreStats total;
  for (const auto& e : engines_) total.merge(e->stats());
  return total;
}

}  // namespace sprayer::core

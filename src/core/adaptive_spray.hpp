// Adaptive spraying: runtime elephant/mice classification with
// Flow-Director pinning and queue-depth-aware steering (DESIGN.md §12).
//
// The paper's spray decision is a static pure function of checksum bits —
// ideal for elephants (packet-level parallelism), a net loss for mice,
// which pay the reorder and cache-affinity costs of spraying without ever
// being large enough to need more than one core. This layer closes the
// loop with three cooperating pieces:
//
//   * HeavyHitterSketch — one per core, updated by the owning worker for
//     every polled packet: a direct-mapped Misra-Gries-style frequent-item
//     sketch over the memoized RSS flow hash. The worker halves its counts
//     on each housekeeping tick, so a cell approximates an exponentially
//     decayed rate, and the driver merges all per-core sketches on its own
//     maintenance tick to find flows whose aggregate rate crosses the
//     elephant threshold.
//
//   * AdaptiveSprayPolicy — driver-side (single-threaded with the
//     injection path): a 2-way-associative flow cache keyed by flow hash.
//     A new flow is presumed a mouse and pinned to its *designated* queue
//     via FlowDirector::add_exact_rule — exact rules outrank the masked
//     checksum spray rules, so the pinned flow gets RSS-style per-flow
//     placement (zero reorder, conn packets already local, flow-state
//     writes on the designated core per §3.3) while everything else keeps
//     spraying. Flows the merge promotes to elephant drop their rule and
//     spray; demotion re-pins only after a dwell of consecutive
//     below-threshold ticks (no rule-churn flapping). Pin rules are
//     budgeted against the shared 8K table and evicted when idle; when the
//     budget is gone a mouse simply keeps spraying — fallback, never
//     failure.
//
//   * Queue-depth-aware steering — sprayed packets take a
//     power-of-two-choices pick inside the flow's spray set (spray_member
//     anchoring) using live per-queue depths, and a flow whose reorder
//     observatory distance exceeds its budget has that set halved.
//
// Thread contract: HeavyHitterSketch cells are single-writer (the owning
// worker) atomics with racy-but-untorn reads from the merging driver.
// Everything in AdaptiveSprayPolicy — steer(), tick(), the flow cache, all
// FlowDirector rule mutations — runs on the injection driver thread only.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "core/config.hpp"
#include "core/core_picker.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"
#include "nic/flow_director.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/reorder.hpp"

namespace sprayer::core {

/// Live queue-occupancy feedback for the p2c pick. The threaded executor
/// answers from its rx rings; a NIC model could answer from its queues.
class IQueueDepthProbe {
 public:
  virtual ~IQueueDepthProbe() = default;
  [[nodiscard]] virtual u32 depth(u16 queue) const noexcept = 0;
};

/// Per-core frequent-item sketch over flow hashes. Direct-mapped cells of
/// packed {owner_hash:32 | count:32}; on a collision the incumbent's count
/// is decremented (Misra-Gries) so sustained heavy flows reclaim their cell
/// while one-shot mice decay away. Single writer (the owning worker);
/// cells are atomics so the driver's merge reads untorn values.
class HeavyHitterSketch {
 public:
  explicit HeavyHitterSketch(u32 slots)
      : mask_(slots - 1), cells_(new std::atomic<u64>[slots]()) {
    SPRAYER_CHECK_MSG(slots >= 2 && (slots & (slots - 1)) == 0,
                      "sketch slots must be a power of two");
  }

  /// Worker side: account one packet of `hash`.
  void update(u32 hash) noexcept {
    std::atomic<u64>& cell = cells_[hash & mask_];
    const u64 v = cell.load(std::memory_order_relaxed);
    const u32 owner = static_cast<u32>(v >> 32);
    const u32 count = static_cast<u32>(v);
    u64 next;
    if (count == 0) {
      next = pack(hash, 1);  // empty (or fully decayed): claim
    } else if (owner == hash) {
      next = count == 0xffffffffu ? v : v + 1;
    } else {
      next = v - 1;  // decrement the incumbent toward eviction
    }
    cell.store(next, std::memory_order_relaxed);
  }

  /// Worker side (housekeeping tick): halve every count so cells track an
  /// exponentially decayed rate instead of an all-time total.
  void decay() noexcept {
    for (u32 i = 0; i <= mask_; ++i) {
      const u64 v = cells_[i].load(std::memory_order_relaxed);
      if ((v & 0xffffffffu) == 0) continue;
      cells_[i].store((v & ~0xffffffffULL) | ((v & 0xffffffffULL) >> 1),
                      std::memory_order_relaxed);
    }
  }

  struct Cell {
    u32 hash = 0;
    u32 count = 0;
  };
  [[nodiscard]] u32 slots() const noexcept { return mask_ + 1; }
  /// Driver side: racy-but-untorn read of one cell.
  [[nodiscard]] Cell read(u32 i) const noexcept {
    const u64 v = cells_[i].load(std::memory_order_relaxed);
    return Cell{static_cast<u32>(v >> 32), static_cast<u32>(v)};
  }

 private:
  [[nodiscard]] static constexpr u64 pack(u32 hash, u32 count) noexcept {
    return (static_cast<u64>(hash) << 32) | count;
  }

  u32 mask_;
  std::unique_ptr<std::atomic<u64>[]> cells_;
};

class AdaptiveSprayPolicy {
 public:
  /// Driver-visible counters (plain u64: driver-thread writes; read them
  /// from other threads only at quiescence). The telemetry mirror
  /// (spray.adaptive.*) is refreshed once per tick.
  struct Stats {
    u64 pins_installed = 0;       // exact rules added (initial + re-pins)
    u64 pin_fallbacks = 0;        // new mouse kept spraying: budget gone
    u64 rule_evictions = 0;       // exact rules removed: idle or slot loss
    u64 elephant_promotions = 0;  // pinned flow unpinned into the spray set
    u64 elephant_demotions = 0;   // elephant re-pinned after demote dwell
    u64 p2c_deflections = 0;      // packets moved off the deeper candidate
    u64 narrowings = 0;           // spray-set halvings (reorder budget)
    u64 unpinned_sprays = 0;      // new flows with no claimable cache slot
    u32 pinned_flows = 0;         // currently installed pin rules
  };

  AdaptiveSprayPolicy(const AdaptiveSprayConfig& cfg, u32 num_cores,
                      nic::FlowDirector& fdir, const CorePicker& picker);

  AdaptiveSprayPolicy(const AdaptiveSprayPolicy&) = delete;
  AdaptiveSprayPolicy& operator=(const AdaptiveSprayPolicy&) = delete;

  /// Optional wiring (all before traffic): live queue depths enable the
  /// p2c pick; the observatory enables reorder-budget narrowing; the
  /// registry mirror must be registered before the registry is finalized.
  void set_depth_probe(const IQueueDepthProbe* probe) noexcept {
    depth_probe_ = probe;
  }
  void set_observatory(const telemetry::ReorderObservatory* obs) noexcept {
    observatory_ = obs;
  }
  void register_metrics(telemetry::MetricsRegistry& registry, u32 shard);

  [[nodiscard]] HeavyHitterSketch& sketch(u32 core) noexcept {
    return *sketches_[core];
  }

  /// Driver side: final queue for one classified TCP packet. Pinned flows
  /// resolve from the flow cache alone — the cache mirrors the exact rule
  /// set (a pin rule exists only while its slot is kPinned), so the
  /// per-packet exact-table probe is skipped; spray decisions consult only
  /// the checksum rule set. Maintains the flow cache — may install a pin
  /// rule for a first-seen flow before returning.
  [[nodiscard]] u16 steer(net::Packet& pkt, u32 flow_hash, Time now);

  /// Driver side: run the maintenance tick (sketch merge, promote/demote,
  /// idle rule eviction, telemetry mirror) when update_interval elapsed.
  void maybe_tick(Time now) {
    if (now - last_tick_ >= cfg_.update_interval) tick(now);
  }
  void tick(Time now);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AdaptiveSprayConfig& config() const noexcept {
    return cfg_;
  }

  /// Driver side (same single-thread contract as steer): whether `hash`
  /// currently holds an installed pin rule. Flow-export placement
  /// attribution reads this at record-emission time.
  [[nodiscard]] bool is_pinned(u32 hash) const noexcept {
    const FlowSlot* slot =
        const_cast<AdaptiveSprayPolicy*>(this)->lookup(hash);
    return slot != nullptr && slot->state == FlowState::kPinned;
  }

 private:
  enum class FlowState : u8 {
    kEmpty = 0,
    kPinned,       // mouse with an installed exact rule
    kPinFallback,  // mouse that found no rule budget: sprays full-width
    kElephant,     // sprayed, p2c-steered, reorder-narrowed
  };

  struct FlowSlot {
    u32 hash = 0;
    FlowState state = FlowState::kEmpty;
    u8 dwell = 0;          // elephant: consecutive below-demote ticks
    u16 spray_width = 0;   // elephant: current spray-set width
    u64 last_ooo = 0;      // last observatory distance acted upon
    Time last_seen = 0;
    net::FiveTuple tuple;  // for rule removal on eviction
  };

  [[nodiscard]] FlowSlot* lookup(u32 hash) noexcept;
  /// Claim a cache slot for a first-seen flow: an empty way, or a way whose
  /// incumbent has been idle past idle_timeout (active flows are never
  /// displaced — that is what bounds rule churn). Null when both ways are
  /// live.
  [[nodiscard]] FlowSlot* claim(u32 hash, Time now) noexcept;
  bool try_pin(FlowSlot& slot);
  void unpin(FlowSlot& slot);
  [[nodiscard]] u16 steer_sprayed(net::Packet& pkt, u32 flow_hash, u32 width);
  void mirror_metrics();

  const AdaptiveSprayConfig cfg_;
  const u32 num_cores_;
  nic::FlowDirector& fdir_;
  const CorePicker& picker_;
  const IQueueDepthProbe* depth_probe_ = nullptr;
  const telemetry::ReorderObservatory* observatory_ = nullptr;

  std::vector<std::unique_ptr<HeavyHitterSketch>> sketches_;  // [core]
  std::vector<FlowSlot> flows_;  // 2-way sets: ways 2k, 2k+1
  u32 set_mask_;
  Time last_tick_ = 0;
  u64 p2c_salt_ = 0;
  u32 evict_cursor_ = 0;
  Stats stats_;

  // Scratch for the per-tick sketch merge (hash -> aggregated count),
  // reused across ticks to amortize its allocations.
  std::unordered_map<u32, u64> merge_scratch_;

  telemetry::MetricsRegistry* registry_ = nullptr;
  u32 shard_ = 0;
  struct {
    telemetry::Counter pinned_flows;  // gauge: live pin rules
    telemetry::Counter pins_installed;
    telemetry::Counter pin_fallbacks;
    telemetry::Counter rule_evictions;
    telemetry::Counter elephant_promotions;
    telemetry::Counter elephant_demotions;
    telemetry::Counter p2c_deflections;
    telemetry::Counter narrowings;
    telemetry::Counter unpinned_sprays;
  } tm_;
};

}  // namespace sprayer::core

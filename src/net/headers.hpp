// Zero-copy header views over raw frame bytes.
//
// Each view wraps a pointer into the packet buffer and exposes typed getters
// and setters that do the big-endian conversion. Views never own memory and
// never bound-check on their own: the parser (net/packet.hpp) validates
// lengths once, after which field access is branch-free.
#pragma once

#include "common/types.hpp"
#include "net/byte_order.hpp"
#include "net/ip_addr.hpp"
#include "net/mac_addr.hpp"

namespace sprayer::net {

// --- Ethernet -------------------------------------------------------------

inline constexpr u16 kEtherTypeIpv4 = 0x0800;
inline constexpr u16 kEtherTypeArp = 0x0806;

class EthernetView {
 public:
  static constexpr u32 kSize = 14;

  explicit EthernetView(u8* base) noexcept : p_(base) {}

  [[nodiscard]] MacAddr dst() const noexcept { return MacAddr::read_from(p_); }
  [[nodiscard]] MacAddr src() const noexcept {
    return MacAddr::read_from(p_ + 6);
  }
  [[nodiscard]] u16 ether_type() const noexcept { return load_be16(p_ + 12); }

  void set_dst(const MacAddr& m) noexcept { m.write_to(p_); }
  void set_src(const MacAddr& m) noexcept { m.write_to(p_ + 6); }
  void set_ether_type(u16 t) noexcept { store_be16(p_ + 12, t); }

 private:
  u8* p_;
};

// --- IPv4 -----------------------------------------------------------------

inline constexpr u8 kProtoIcmp = 1;
inline constexpr u8 kProtoTcp = 6;
inline constexpr u8 kProtoUdp = 17;

class Ipv4View {
 public:
  static constexpr u32 kMinSize = 20;

  explicit Ipv4View(u8* base) noexcept : p_(base) {}

  [[nodiscard]] u8 version() const noexcept { return p_[0] >> 4; }
  [[nodiscard]] u8 ihl() const noexcept { return p_[0] & 0x0f; }
  [[nodiscard]] u32 header_len() const noexcept { return 4u * ihl(); }
  [[nodiscard]] u8 dscp_ecn() const noexcept { return p_[1]; }
  [[nodiscard]] u16 total_length() const noexcept { return load_be16(p_ + 2); }
  [[nodiscard]] u16 identification() const noexcept {
    return load_be16(p_ + 4);
  }
  [[nodiscard]] u8 ttl() const noexcept { return p_[8]; }
  [[nodiscard]] u8 protocol() const noexcept { return p_[9]; }
  [[nodiscard]] u16 checksum() const noexcept { return load_be16(p_ + 10); }
  [[nodiscard]] Ipv4Addr src() const noexcept {
    return Ipv4Addr{load_be32(p_ + 12)};
  }
  [[nodiscard]] Ipv4Addr dst() const noexcept {
    return Ipv4Addr{load_be32(p_ + 16)};
  }

  void set_version_ihl(u8 version, u8 ihl) noexcept {
    p_[0] = static_cast<u8>((version << 4) | (ihl & 0x0f));
  }
  void set_dscp_ecn(u8 v) noexcept { p_[1] = v; }
  void set_total_length(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_identification(u16 v) noexcept { store_be16(p_ + 4, v); }
  void set_flags_fragment(u16 v) noexcept { store_be16(p_ + 6, v); }
  void set_ttl(u8 v) noexcept { p_[8] = v; }
  void set_protocol(u8 v) noexcept { p_[9] = v; }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 10, v); }
  void set_src(Ipv4Addr a) noexcept { store_be32(p_ + 12, a.host_order()); }
  void set_dst(Ipv4Addr a) noexcept { store_be32(p_ + 16, a.host_order()); }

  [[nodiscard]] u8* bytes() noexcept { return p_; }
  [[nodiscard]] const u8* bytes() const noexcept { return p_; }

 private:
  u8* p_;
};

// --- TCP ------------------------------------------------------------------

struct TcpFlags {
  static constexpr u8 kFin = 0x01;
  static constexpr u8 kSyn = 0x02;
  static constexpr u8 kRst = 0x04;
  static constexpr u8 kPsh = 0x08;
  static constexpr u8 kAck = 0x10;
  static constexpr u8 kUrg = 0x20;
};

class TcpView {
 public:
  static constexpr u32 kMinSize = 20;
  /// Byte offset of the checksum field within the TCP header — the field the
  /// Flow Director spraying trick matches on.
  static constexpr u32 kChecksumOffset = 16;

  explicit TcpView(u8* base) noexcept : p_(base) {}

  [[nodiscard]] u16 src_port() const noexcept { return load_be16(p_); }
  [[nodiscard]] u16 dst_port() const noexcept { return load_be16(p_ + 2); }
  [[nodiscard]] u32 seq() const noexcept { return load_be32(p_ + 4); }
  [[nodiscard]] u32 ack() const noexcept { return load_be32(p_ + 8); }
  [[nodiscard]] u8 data_offset_words() const noexcept { return p_[12] >> 4; }
  [[nodiscard]] u32 header_len() const noexcept {
    return 4u * data_offset_words();
  }
  [[nodiscard]] u8 flags() const noexcept { return p_[13]; }
  [[nodiscard]] u16 window() const noexcept { return load_be16(p_ + 14); }
  [[nodiscard]] u16 checksum() const noexcept { return load_be16(p_ + 16); }
  [[nodiscard]] u16 urgent() const noexcept { return load_be16(p_ + 18); }

  [[nodiscard]] bool has(u8 flag) const noexcept {
    return (flags() & flag) != 0;
  }
  /// A "connection packet" in the paper's sense: can change TCP state.
  [[nodiscard]] bool is_connection_packet() const noexcept {
    return (flags() & (TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kRst)) != 0;
  }

  void set_src_port(u16 v) noexcept { store_be16(p_, v); }
  void set_dst_port(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_seq(u32 v) noexcept { store_be32(p_ + 4, v); }
  void set_ack(u32 v) noexcept { store_be32(p_ + 8, v); }
  void set_data_offset_words(u8 words) noexcept {
    p_[12] = static_cast<u8>(words << 4);
  }
  void set_flags(u8 v) noexcept { p_[13] = v; }
  void set_window(u16 v) noexcept { store_be16(p_ + 14, v); }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 16, v); }
  void set_urgent(u16 v) noexcept { store_be16(p_ + 18, v); }

  [[nodiscard]] u8* bytes() noexcept { return p_; }
  [[nodiscard]] const u8* bytes() const noexcept { return p_; }

 private:
  u8* p_;
};

// --- UDP ------------------------------------------------------------------

class UdpView {
 public:
  static constexpr u32 kSize = 8;

  explicit UdpView(u8* base) noexcept : p_(base) {}

  [[nodiscard]] u16 src_port() const noexcept { return load_be16(p_); }
  [[nodiscard]] u16 dst_port() const noexcept { return load_be16(p_ + 2); }
  [[nodiscard]] u16 length() const noexcept { return load_be16(p_ + 4); }
  [[nodiscard]] u16 checksum() const noexcept { return load_be16(p_ + 6); }

  void set_src_port(u16 v) noexcept { store_be16(p_, v); }
  void set_dst_port(u16 v) noexcept { store_be16(p_ + 2, v); }
  void set_length(u16 v) noexcept { store_be16(p_ + 4, v); }
  void set_checksum(u16 v) noexcept { store_be16(p_ + 6, v); }

  [[nodiscard]] u8* bytes() noexcept { return p_; }
  [[nodiscard]] const u8* bytes() const noexcept { return p_; }

 private:
  u8* p_;
};

}  // namespace sprayer::net

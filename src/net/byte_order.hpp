// Endianness helpers: all wire fields are big-endian; we load/store through
// memcpy-based accessors so there is no unaligned-access or strict-aliasing
// UB regardless of buffer alignment.
#pragma once

#include <bit>
#include <cstring>

#include "common/types.hpp"

namespace sprayer::net {

static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian platforms are not supported");

[[nodiscard]] constexpr u16 byteswap16(u16 v) noexcept {
  return static_cast<u16>((v << 8) | (v >> 8));
}
[[nodiscard]] constexpr u32 byteswap32(u32 v) noexcept {
  return __builtin_bswap32(v);
}
[[nodiscard]] constexpr u64 byteswap64(u64 v) noexcept {
  return __builtin_bswap64(v);
}

[[nodiscard]] constexpr u16 host_to_be16(u16 v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return byteswap16(v);
  }
  return v;
}
[[nodiscard]] constexpr u16 be16_to_host(u16 v) noexcept {
  return host_to_be16(v);
}
[[nodiscard]] constexpr u32 host_to_be32(u32 v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return byteswap32(v);
  }
  return v;
}
[[nodiscard]] constexpr u32 be32_to_host(u32 v) noexcept {
  return host_to_be32(v);
}

/// Load a big-endian 16-bit field from unaligned memory.
[[nodiscard]] inline u16 load_be16(const u8* p) noexcept {
  u16 v;
  std::memcpy(&v, p, sizeof(v));
  return be16_to_host(v);
}
[[nodiscard]] inline u32 load_be32(const u8* p) noexcept {
  u32 v;
  std::memcpy(&v, p, sizeof(v));
  return be32_to_host(v);
}
inline void store_be16(u8* p, u16 v) noexcept {
  const u16 be = host_to_be16(v);
  std::memcpy(p, &be, sizeof(be));
}
inline void store_be32(u8* p, u32 v) noexcept {
  const u32 be = host_to_be32(v);
  std::memcpy(p, &be, sizeof(be));
}

}  // namespace sprayer::net

#include "net/ip_addr.hpp"

#include <sstream>

namespace sprayer::net {

Result<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  u32 value = 0;
  int octets = 0;
  u32 current = 0;
  bool have_digit = false;
  for (const char ch : s) {
    if (ch >= '0' && ch <= '9') {
      current = current * 10 + static_cast<u32>(ch - '0');
      if (current > 255) {
        return make_error(Error::Code::kInvalidArgument,
                          "IPv4 octet out of range in '" + s + "'");
      }
      have_digit = true;
    } else if (ch == '.') {
      if (!have_digit || octets == 3) {
        return make_error(Error::Code::kInvalidArgument,
                          "malformed IPv4 address '" + s + "'");
      }
      value = (value << 8) | current;
      current = 0;
      have_digit = false;
      ++octets;
    } else {
      return make_error(Error::Code::kInvalidArgument,
                        "invalid character in IPv4 address '" + s + "'");
    }
  }
  if (!have_digit || octets != 3) {
    return make_error(Error::Code::kInvalidArgument,
                      "malformed IPv4 address '" + s + "'");
  }
  value = (value << 8) | current;
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  std::ostringstream os;
  os << static_cast<int>(octet(0)) << '.' << static_cast<int>(octet(1)) << '.'
     << static_cast<int>(octet(2)) << '.' << static_cast<int>(octet(3));
  return os.str();
}

}  // namespace sprayer::net

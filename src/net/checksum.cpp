#include "net/checksum.hpp"

#include "net/byte_order.hpp"

namespace sprayer::net {

u64 checksum_partial(const u8* data, std::size_t len, u64 initial) noexcept {
  u64 sum = initial;
  while (len >= 2) {
    sum += load_be16(data);
    data += 2;
    len -= 2;
  }
  if (len == 1) {
    sum += static_cast<u64>(*data) << 8;  // pad trailing byte on the right
  }
  return sum;
}

u16 checksum_fold(u64 sum) noexcept {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<u16>(~sum & 0xffff);
}

u16 internet_checksum(const u8* data, std::size_t len) noexcept {
  return checksum_fold(checksum_partial(data, len));
}

u16 ipv4_header_checksum(const Ipv4View& ip) noexcept {
  const u8* p = ip.bytes();
  const std::size_t hlen = ip.header_len();
  // Sum everything, then subtract the stored checksum field (bytes 10–11).
  u64 sum = checksum_partial(p, hlen);
  sum -= load_be16(p + 10);
  return checksum_fold(sum);
}

namespace {

u64 pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, u8 protocol,
                      std::size_t l4_len) noexcept {
  u64 sum = 0;
  const u32 s = src.host_order();
  const u32 d = dst.host_order();
  sum += (s >> 16) + (s & 0xffff);
  sum += (d >> 16) + (d & 0xffff);
  sum += protocol;
  sum += static_cast<u64>(l4_len);
  return sum;
}

}  // namespace

u16 l4_checksum(Ipv4Addr src, Ipv4Addr dst, u8 protocol, const u8* l4,
                std::size_t l4_len) noexcept {
  u64 sum = pseudo_header_sum(src, dst, protocol, l4_len);
  sum = checksum_partial(l4, l4_len, sum);
  // Subtract the stored checksum field: TCP at offset 16, UDP at offset 6.
  const std::size_t cks_off = (protocol == kProtoTcp) ? 16u : 6u;
  if (l4_len >= cks_off + 2) {
    sum -= load_be16(l4 + cks_off);
  }
  return checksum_fold(sum);
}

bool l4_checksum_valid(Ipv4Addr src, Ipv4Addr dst, u8 protocol, const u8* l4,
                       std::size_t l4_len) noexcept {
  u64 sum = pseudo_header_sum(src, dst, protocol, l4_len);
  sum = checksum_partial(l4, l4_len, sum);
  return checksum_fold(sum) == 0;
}

u16 checksum_update16(u16 old_checksum, u16 old_field,
                      u16 new_field) noexcept {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
  u64 sum = static_cast<u16>(~old_checksum);
  sum += static_cast<u16>(~old_field);
  sum += new_field;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(~sum & 0xffff);
}

u16 checksum_update32(u16 old_checksum, u32 old_field,
                      u32 new_field) noexcept {
  u16 c = checksum_update16(old_checksum, static_cast<u16>(old_field >> 16),
                            static_cast<u16>(new_field >> 16));
  return checksum_update16(c, static_cast<u16>(old_field & 0xffff),
                           static_cast<u16>(new_field & 0xffff));
}

}  // namespace sprayer::net

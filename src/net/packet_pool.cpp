#include "net/packet_pool.hpp"

#include <algorithm>
#include <mutex>

namespace sprayer::net {

namespace {

constexpr std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) & ~(a - 1);
}

constexpr u32 kNoCacheIndex = ~0u;

// Process-wide registry handing each live thread a stable cache index in
// [0, kMaxThreadCaches). Indices return to the free stack when the thread
// exits, so the bound is on *concurrent* threads, not total ever created.
// The registry mutex also orders a dead thread's last cache writes before
// a successor thread (reusing its index) reads them.
std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}
std::vector<u32>& registry_free_ids() {
  static std::vector<u32> ids;
  return ids;
}
u32 registry_next_id = 0;

u32 acquire_cache_index() {
  std::scoped_lock lock(registry_mutex());
  auto& free_ids = registry_free_ids();
  if (!free_ids.empty()) {
    const u32 id = free_ids.back();
    free_ids.pop_back();
    return id;
  }
  if (registry_next_id < PacketPool::kMaxThreadCaches) {
    return registry_next_id++;
  }
  return kNoCacheIndex;
}

void release_cache_index(u32 id) {
  std::scoped_lock lock(registry_mutex());
  registry_free_ids().push_back(id);
}

struct ThreadCacheSlot {
  u32 id = acquire_cache_index();
  ~ThreadCacheSlot() {
    if (id != kNoCacheIndex) release_cache_index(id);
  }
};

u32 thread_cache_index() noexcept {
  thread_local ThreadCacheSlot slot;
  return slot.id;
}

}  // namespace

PacketPool::PacketPool(u32 num_packets, u32 buffer_size)
    : num_packets_(num_packets),
      buffer_size_(buffer_size),
      slot_size_(align_up(sizeof(Packet) + buffer_size, kCacheLineSize)) {
  SPRAYER_CHECK_MSG(num_packets > 0, "pool must hold at least one packet");
  SPRAYER_CHECK_MSG(buffer_size >= 64, "buffers must fit a minimum frame");
  slab_ = std::make_unique<u8[]>(slot_size_ * num_packets_);
  caches_ = std::make_unique<ThreadCache[]>(kMaxThreadCaches);
  freelist_.reserve(num_packets_);
  // Construct descriptors in place; push in reverse so slot 0 pops first.
  for (u32 i = 0; i < num_packets_; ++i) {
    new (slab_.get() + i * slot_size_) Packet(this, i, buffer_size_);
  }
  for (u32 i = num_packets_; i > 0; --i) {
    freelist_.push_back(i - 1);
  }
  free_count_.store(num_packets_, std::memory_order_relaxed);
}

PacketPool::~PacketPool() {
  // Packets are trivially destructible aside from bookkeeping; nothing to do.
}

PacketPool::ThreadCache* PacketPool::my_cache() noexcept {
  const u32 idx = thread_cache_index();
  if (SPRAYER_UNLIKELY(idx == kNoCacheIndex)) return nullptr;
  return &caches_[idx];
}

u32 PacketPool::refill_cache(ThreadCache& c) noexcept {
  const u32 have = c.count.load(std::memory_order_relaxed);
  lock();
  const u32 take = static_cast<u32>(std::min<std::size_t>(
      kCacheChunk, freelist_.size()));
  for (u32 i = 0; i < take; ++i) {
    c.slots[have + i] = freelist_.back();
    freelist_.pop_back();
  }
  free_count_.store(freelist_.size(), std::memory_order_relaxed);
  unlock();
  c.count.store(have + take, std::memory_order_relaxed);
  return have + take;
}

void PacketPool::flush_cache(ThreadCache& c, u32 n) noexcept {
  const u32 have = c.count.load(std::memory_order_relaxed);
  SPRAYER_DCHECK(n <= have);
  lock();
  for (u32 i = 0; i < n; ++i) {
    freelist_.push_back(c.slots[have - 1 - i]);
  }
  free_count_.store(freelist_.size(), std::memory_order_relaxed);
  unlock();
  c.count.store(have - n, std::memory_order_relaxed);
}

Packet* PacketPool::alloc_raw() noexcept {
  ThreadCache* c = my_cache();
  u32 slot;
  if (SPRAYER_LIKELY(c != nullptr)) {
    u32 n = c->count.load(std::memory_order_relaxed);
    if (SPRAYER_UNLIKELY(n == 0)) {
      n = refill_cache(*c);
      if (n == 0) {
        alloc_failures_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      c->misses.store(c->misses.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    } else {
      c->hits.store(c->hits.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    }
    slot = c->slots[n - 1];
    c->count.store(n - 1, std::memory_order_relaxed);
  } else {
    locked_allocs_.fetch_add(1, std::memory_order_relaxed);
    lock();
    if (SPRAYER_UNLIKELY(freelist_.empty())) {
      unlock();
      alloc_failures_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    slot = freelist_.back();
    freelist_.pop_back();
    free_count_.store(freelist_.size(), std::memory_order_relaxed);
    unlock();
  }
  Packet* p = packet_at(slot);
  p->reset_metadata();
  return p;
}

u32 PacketPool::alloc_bulk(std::span<Packet*> out) noexcept {
  u32 got = 0;
  while (got < out.size()) {
    Packet* p = alloc_raw();
    if (p == nullptr) break;
    out[got++] = p;
  }
  return got;
}

void PacketPool::free(Packet* p) noexcept {
  if (p == nullptr) return;
  SPRAYER_DCHECK(p->pool() == this);
  ThreadCache* c = my_cache();
  if (SPRAYER_LIKELY(c != nullptr)) {
    u32 n = c->count.load(std::memory_order_relaxed);
    if (SPRAYER_UNLIKELY(n == kCacheCapacity)) {
      flush_cache(*c, kCacheChunk);
      n -= kCacheChunk;
    }
    c->slots[n] = p->slot();
    c->count.store(n + 1, std::memory_order_relaxed);
    return;
  }
  lock();
  freelist_.push_back(p->slot());
  free_count_.store(freelist_.size(), std::memory_order_relaxed);
  unlock();
}

void PacketPool::free_bulk(std::span<Packet* const> pkts) noexcept {
  for (Packet* p : pkts) free(p);
}

void free_packets(std::span<Packet* const> pkts) noexcept {
  std::size_t i = 0;
  while (i < pkts.size()) {
    if (pkts[i] == nullptr) {
      ++i;
      continue;
    }
    PacketPool* pool = pkts[i]->pool();
    std::size_t j = i + 1;
    while (j < pkts.size() && pkts[j] != nullptr && pkts[j]->pool() == pool) {
      ++j;
    }
    pool->free_bulk(pkts.subspan(i, j - i));
    i = j;
  }
}

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr) p->pool()->free(p);
}

}  // namespace sprayer::net

#include "net/packet_pool.hpp"

namespace sprayer::net {

namespace {
constexpr std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) & ~(a - 1);
}
}  // namespace

PacketPool::PacketPool(u32 num_packets, u32 buffer_size)
    : num_packets_(num_packets),
      buffer_size_(buffer_size),
      slot_size_(align_up(sizeof(Packet) + buffer_size, kCacheLineSize)) {
  SPRAYER_CHECK_MSG(num_packets > 0, "pool must hold at least one packet");
  SPRAYER_CHECK_MSG(buffer_size >= 64, "buffers must fit a minimum frame");
  slab_ = std::make_unique<u8[]>(slot_size_ * num_packets_);
  freelist_.reserve(num_packets_);
  // Construct descriptors in place; push in reverse so slot 0 pops first.
  for (u32 i = 0; i < num_packets_; ++i) {
    new (slab_.get() + i * slot_size_) Packet(this, i, buffer_size_);
  }
  for (u32 i = num_packets_; i > 0; --i) {
    freelist_.push_back(i - 1);
  }
  free_count_.store(num_packets_, std::memory_order_relaxed);
}

PacketPool::~PacketPool() {
  // Packets are trivially destructible aside from bookkeeping; nothing to do.
}

Packet* PacketPool::alloc_raw() noexcept {
  lock();
  if (SPRAYER_UNLIKELY(freelist_.empty())) {
    unlock();
    alloc_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const u32 slot = freelist_.back();
  freelist_.pop_back();
  unlock();
  free_count_.fetch_sub(1, std::memory_order_relaxed);
  Packet* p = packet_at(slot);
  p->reset_metadata();
  return p;
}

void PacketPool::free(Packet* p) noexcept {
  if (p == nullptr) return;
  SPRAYER_DCHECK(p->pool() == this);
  lock();
  freelist_.push_back(p->slot());
  unlock();
  free_count_.fetch_add(1, std::memory_order_relaxed);
}

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr) p->pool()->free(p);
}

}  // namespace sprayer::net

// Fixed-capacity packet buffer pool with per-thread caches.
//
// One contiguous slab of equal-size slots, each holding a Packet descriptor
// followed by its data buffer. Allocation and free are O(1) via a LIFO
// freelist (LIFO keeps hot buffers cache-resident).
//
// The shared freelist is protected by a tiny spinlock, but the steady-state
// path never touches it: each thread owns a DPDK-mempool-style magazine
// cache of slot indices (refilled / flushed in kCacheChunk-sized bulk moves
// under one lock acquisition), so per-packet alloc/free is a plain
// thread-local array operation with no atomic RMW. Threads register for a
// cache index on first use; indices are recycled when threads exit, so
// long test runs with many short-lived workers stay within
// kMaxThreadCaches. Overflow threads (beyond kMaxThreadCaches concurrent)
// fall back to the locked single-slot path.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"
#include "net/packet.hpp"

namespace sprayer::net {

class PacketPool {
 public:
  /// `num_packets` slots, each with a `buffer_size`-byte data area.
  PacketPool(u32 num_packets, u32 buffer_size = kDefaultBufferSize);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  static constexpr u32 kDefaultBufferSize = 2048;
  /// Per-thread magazine capacity and the bulk refill/flush granularity.
  static constexpr u32 kCacheCapacity = 256;
  static constexpr u32 kCacheChunk = 128;
  /// Concurrent threads that get a lock-free cache; more simply fall back
  /// to the locked path.
  static constexpr u32 kMaxThreadCaches = 64;

  /// Allocate a packet; returns nullptr when the pool is exhausted (the
  /// normal backpressure signal, not an error).
  [[nodiscard]] Packet* alloc_raw() noexcept;

  /// RAII variant of alloc_raw().
  [[nodiscard]] PacketPtr alloc() noexcept {
    return PacketPtr{alloc_raw()};
  }

  /// Fill `out` with freshly allocated packets; returns how many were
  /// available (a prefix of `out`).
  [[nodiscard]] u32 alloc_bulk(std::span<Packet*> out) noexcept;

  void free(Packet* p) noexcept;

  /// Free a batch from this pool; per-packet cost is one cache push.
  void free_bulk(std::span<Packet* const> pkts) noexcept;

  [[nodiscard]] u32 size() const noexcept { return num_packets_; }
  [[nodiscard]] u32 buffer_size() const noexcept { return buffer_size_; }
  /// Free slots across the shared freelist and all thread caches. Exact
  /// when the pool is quiescent, approximate while threads are allocating.
  [[nodiscard]] u32 available() const noexcept {
    u64 total = free_count_.load(std::memory_order_relaxed);
    for (u32 i = 0; i < kMaxThreadCaches; ++i) {
      total += caches_[i].count.load(std::memory_order_relaxed);
    }
    return static_cast<u32>(total);
  }
  [[nodiscard]] u32 in_use() const noexcept {
    return num_packets_ - available();
  }
  [[nodiscard]] u64 alloc_failures() const noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

  /// Magazine effectiveness: how allocations were served. `hits` came from
  /// the thread-local cache with no lock; `misses` needed a bulk refill
  /// from the shared freelist; `locked` went through the per-slot locked
  /// fallback (overflow threads). Approximate while threads are allocating.
  struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    u64 locked = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const u64 total = hits + misses + locked;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] CacheStats cache_stats() const noexcept {
    CacheStats s;
    for (u32 i = 0; i < kMaxThreadCaches; ++i) {
      s.hits += caches_[i].hits.load(std::memory_order_relaxed);
      s.misses += caches_[i].misses.load(std::memory_order_relaxed);
    }
    s.locked = locked_allocs_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct alignas(kCacheLineSize) ThreadCache {
    // `count` is written only by the owning thread (plain store; atomic so
    // available() can read it racily) — never an RMW on the hot path.
    std::atomic<u32> count{0};
    // Alloc accounting, same single-writer plain-store discipline (the
    // owning thread already holds this line exclusively).
    std::atomic<u64> hits{0};
    std::atomic<u64> misses{0};
    std::array<u32, kCacheCapacity> slots;
  };

  [[nodiscard]] Packet* packet_at(u32 slot) noexcept {
    return reinterpret_cast<Packet*>(slab_.get() + slot * slot_size_);
  }

  /// This thread's cache, or nullptr for overflow threads.
  [[nodiscard]] ThreadCache* my_cache() noexcept;

  /// Bulk-move up to kCacheChunk slots from the shared freelist into `c`
  /// (one lock acquisition). Returns the new cache count.
  u32 refill_cache(ThreadCache& c) noexcept;
  /// Bulk-move `n` slots from the top of `c` back to the shared freelist.
  void flush_cache(ThreadCache& c, u32 n) noexcept;

  void lock() noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  void unlock() noexcept { lock_.clear(std::memory_order_release); }

  u32 num_packets_;
  u32 buffer_size_;
  std::size_t slot_size_;
  std::unique_ptr<u8[]> slab_;
  std::vector<u32> freelist_;  // shared; guarded by lock_
  std::unique_ptr<ThreadCache[]> caches_;
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::atomic<u64> free_count_{0};  // shared-freelist size only
  std::atomic<u64> alloc_failures_{0};
  std::atomic<u64> locked_allocs_{0};  // cold path: RMW is fine here
};

/// Free a mixed-pool batch, grouping consecutive same-pool runs into one
/// free_bulk call each. Null entries are skipped.
void free_packets(std::span<Packet* const> pkts) noexcept;

}  // namespace sprayer::net

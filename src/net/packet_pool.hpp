// Fixed-capacity packet buffer pool.
//
// One contiguous slab of equal-size slots, each holding a Packet descriptor
// followed by its data buffer. Allocation and free are O(1) via a LIFO
// freelist (LIFO keeps hot buffers cache-resident). A tiny spinlock makes
// the pool usable from the threaded executor; in the single-threaded
// simulator it is uncontended and nearly free.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"
#include "net/packet.hpp"

namespace sprayer::net {

class PacketPool {
 public:
  /// `num_packets` slots, each with a `buffer_size`-byte data area.
  PacketPool(u32 num_packets, u32 buffer_size = kDefaultBufferSize);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  static constexpr u32 kDefaultBufferSize = 2048;

  /// Allocate a packet; returns nullptr when the pool is exhausted (the
  /// normal backpressure signal, not an error).
  [[nodiscard]] Packet* alloc_raw() noexcept;

  /// RAII variant of alloc_raw().
  [[nodiscard]] PacketPtr alloc() noexcept {
    return PacketPtr{alloc_raw()};
  }

  void free(Packet* p) noexcept;

  [[nodiscard]] u32 size() const noexcept { return num_packets_; }
  [[nodiscard]] u32 buffer_size() const noexcept { return buffer_size_; }
  [[nodiscard]] u32 available() const noexcept {
    return static_cast<u32>(free_count_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] u32 in_use() const noexcept {
    return num_packets_ - available();
  }
  [[nodiscard]] u64 alloc_failures() const noexcept {
    return alloc_failures_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Packet* packet_at(u32 slot) noexcept {
    return reinterpret_cast<Packet*>(slab_.get() + slot * slot_size_);
  }

  void lock() noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  void unlock() noexcept { lock_.clear(std::memory_order_release); }

  u32 num_packets_;
  u32 buffer_size_;
  std::size_t slot_size_;
  std::unique_ptr<u8[]> slab_;
  std::vector<u32> freelist_;
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::atomic<u64> free_count_{0};
  std::atomic<u64> alloc_failures_{0};
};

}  // namespace sprayer::net

#include "net/packet.hpp"

namespace sprayer::net {

bool Packet::parse() noexcept {
  l3_offset_ = 0;
  l4_offset_ = 0;
  l4_proto_ = 0;
  flow_hash_ = 0;
  flow_hash_valid_ = 0;  // header bytes may have changed: hash is stale

  if (len_ < EthernetView::kSize) return false;
  EthernetView eth{data()};
  if (eth.ether_type() != kEtherTypeIpv4) return false;

  const u32 l3 = EthernetView::kSize;
  if (len_ < l3 + Ipv4View::kMinSize) return false;
  Ipv4View ip{data() + l3};
  if (ip.version() != 4) return false;
  const u32 ihl_bytes = ip.header_len();
  if (ihl_bytes < Ipv4View::kMinSize || len_ < l3 + ihl_bytes) return false;
  const u32 total = ip.total_length();
  if (total < ihl_bytes || l3 + total > len_) return false;

  l3_offset_ = static_cast<u16>(l3);

  // Fragments other than the first carry no L4 header: exposing "ports"
  // read from payload bytes would corrupt flow classification. Treat the
  // packet as IPv4-only (it still hashes by address pair, like RSS does).
  const u16 flags_frag = load_be16(ip.bytes() + 6);
  if ((flags_frag & 0x1fff) != 0) return true;  // non-zero fragment offset

  const u8 proto = ip.protocol();
  const u32 l4 = l3 + ihl_bytes;
  const u32 l4_avail = total - ihl_bytes;

  if (proto == kProtoTcp) {
    if (l4_avail < TcpView::kMinSize) return true;  // IPv4 ok, L4 truncated
    TcpView tcp{data() + l4};
    const u32 thl = tcp.header_len();
    if (thl < TcpView::kMinSize || thl > l4_avail) return true;
    l4_offset_ = static_cast<u16>(l4);
    l4_proto_ = kProtoTcp;
  } else if (proto == kProtoUdp) {
    if (l4_avail < UdpView::kSize) return true;
    l4_offset_ = static_cast<u16>(l4);
    l4_proto_ = kProtoUdp;
  }
  return true;
}

u32 Packet::l4_payload_len() noexcept {
  SPRAYER_DCHECK(l4_offset_ != 0);
  Ipv4View ip{data() + l3_offset_};
  const u32 l4_total = ip.total_length() - ip.header_len();
  if (l4_proto_ == kProtoTcp) {
    TcpView t{data() + l4_offset_};
    return l4_total - t.header_len();
  }
  if (l4_proto_ == kProtoUdp) {
    return l4_total - UdpView::kSize;
  }
  return l4_total;
}

}  // namespace sprayer::net

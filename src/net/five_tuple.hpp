// The flow five-tuple and its canonical (direction-independent) form.
//
// Sprayer requires that both directions of a TCP connection map to the same
// designated core; canonicalization gives a direction-independent key, used
// by flow tables and the designated-core hash.
#pragma once

#include <compare>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "net/headers.hpp"
#include "net/ip_addr.hpp"

namespace sprayer::net {

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  u16 src_port = 0;
  u16 dst_port = 0;
  u8 protocol = 0;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;

  /// The same connection seen from the other direction.
  [[nodiscard]] constexpr FiveTuple reversed() const noexcept {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Canonical form: the lexicographically smaller (ip, port) endpoint goes
  /// first, so a flow and its reverse share one key.
  [[nodiscard]] constexpr FiveTuple canonical() const noexcept {
    const bool swap =
        (src_ip > dst_ip) || (src_ip == dst_ip && src_port > dst_port);
    return swap ? reversed() : *this;
  }

  [[nodiscard]] constexpr bool is_canonical() const noexcept {
    return canonical() == *this;
  }

  [[nodiscard]] std::string to_string() const {
    return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst_ip.to_string() + ":" + std::to_string(dst_port) +
           " proto=" + std::to_string(protocol);
  }

  /// 64-bit mix of all fields (direction-sensitive); combine with
  /// canonical() for a symmetric value.
  [[nodiscard]] constexpr u64 pack() const noexcept {
    // src/dst ips in the top bits, ports+proto below; then mixed.
    u64 a = (static_cast<u64>(src_ip.host_order()) << 32) |
            dst_ip.host_order();
    u64 b = (static_cast<u64>(src_port) << 32) |
            (static_cast<u64>(dst_port) << 16) | protocol;
    // splitmix-style finalizer over the combination
    u64 z = a ^ (b * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.pack());
  }
};

/// Extract the five-tuple of a parsed IPv4+TCP/UDP packet. `l4` may be null
/// for protocols without ports (ports read as 0).
[[nodiscard]] inline FiveTuple extract_five_tuple(const Ipv4View& ip,
                                                  const u8* l4) noexcept {
  FiveTuple t;
  t.src_ip = ip.src();
  t.dst_ip = ip.dst();
  t.protocol = ip.protocol();
  if (l4 != nullptr &&
      (t.protocol == kProtoTcp || t.protocol == kProtoUdp)) {
    t.src_port = load_be16(l4);
    t.dst_port = load_be16(l4 + 2);
  }
  return t;
}

}  // namespace sprayer::net

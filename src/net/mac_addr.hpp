// Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <string>

#include "common/types.hpp"

namespace sprayer::net {

class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr MacAddr(u8 a, u8 b, u8 c, u8 d, u8 e, u8 f) noexcept
      : bytes_{a, b, c, d, e, f} {}

  /// Derive a deterministic locally-administered unicast MAC from an id —
  /// handy for simulated hosts.
  static constexpr MacAddr from_id(u32 id) noexcept {
    return MacAddr{0x02, 0x00, static_cast<u8>(id >> 24),
                   static_cast<u8>(id >> 16), static_cast<u8>(id >> 8),
                   static_cast<u8>(id)};
  }

  [[nodiscard]] const u8* data() const noexcept { return bytes_.data(); }
  void write_to(u8* out) const noexcept {
    std::memcpy(out, bytes_.data(), bytes_.size());
  }
  static MacAddr read_from(const u8* in) noexcept {
    MacAddr m;
    std::memcpy(m.bytes_.data(), in, m.bytes_.size());
    return m;
  }

  [[nodiscard]] std::string to_string() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string s(17, ':');
    for (int i = 0; i < 6; ++i) {
      s[static_cast<std::size_t>(3 * i)] = kHex[bytes_[i] >> 4];
      s[static_cast<std::size_t>(3 * i + 1)] = kHex[bytes_[i] & 0xf];
    }
    return s;
  }

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

 private:
  std::array<u8, 6> bytes_{};
};

}  // namespace sprayer::net

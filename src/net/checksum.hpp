// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The TCP checksum matters doubly here: it must be correct for the TCP
// endpoints, and its low bits are the spraying key the Flow Director trick
// matches on — so NFs that rewrite headers (e.g. the NAT) must use the
// incremental update to keep packets valid.
#pragma once

#include <span>

#include "common/types.hpp"
#include "net/headers.hpp"

namespace sprayer::net {

/// Sum of 16-bit big-endian words (no folding); use to compose checksums
/// over multiple regions. Handles odd lengths by zero-padding the tail byte.
[[nodiscard]] u64 checksum_partial(const u8* data, std::size_t len,
                                   u64 initial = 0) noexcept;

/// Fold a partial sum to the final 16-bit one's-complement checksum value
/// (already complemented, in host order — store with store_be16).
[[nodiscard]] u16 checksum_fold(u64 sum) noexcept;

/// Full internet checksum over a region.
[[nodiscard]] u16 internet_checksum(const u8* data, std::size_t len) noexcept;

/// Compute the IPv4 header checksum (checksum field treated as zero).
[[nodiscard]] u16 ipv4_header_checksum(const Ipv4View& ip) noexcept;

/// Compute the TCP/UDP checksum with the IPv4 pseudo-header.
/// `l4` points at the L4 header; `l4_len` covers header + payload.
/// The checksum field inside the header is treated as zero.
[[nodiscard]] u16 l4_checksum(Ipv4Addr src, Ipv4Addr dst, u8 protocol,
                              const u8* l4, std::size_t l4_len) noexcept;

/// Verify an L4 checksum: sums the full segment including the stored
/// checksum; valid iff the folded result is zero.
[[nodiscard]] bool l4_checksum_valid(Ipv4Addr src, Ipv4Addr dst, u8 protocol,
                                     const u8* l4, std::size_t l4_len) noexcept;

/// RFC 1624 incremental update: given the old checksum and an old/new 16-bit
/// field value, produce the new checksum. Both checksums and fields are in
/// host order (as returned by the header views).
[[nodiscard]] u16 checksum_update16(u16 old_checksum, u16 old_field,
                                    u16 new_field) noexcept;

/// Incremental update for a 32-bit field (e.g. an IPv4 address).
[[nodiscard]] u16 checksum_update32(u16 old_checksum, u32 old_field,
                                    u32 new_field) noexcept;

}  // namespace sprayer::net

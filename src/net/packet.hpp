// Packet descriptor + buffer, in the style of a DPDK mbuf.
//
// A Packet is a fixed-size metadata block immediately followed by its data
// buffer, both living in a slot of a PacketPool. Packets travel through
// queues and rings as raw descriptors (Packet*); the user-facing allocation
// API hands out RAII PacketPtr handles that return the slot to the pool.
#pragma once

#include <memory>

#include "common/check.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "net/five_tuple.hpp"
#include "net/headers.hpp"

namespace sprayer::net {

class PacketPool;

class Packet {
 public:
  /// Frame bytes (starting at the Ethernet header).
  [[nodiscard]] u8* data() noexcept {
    return reinterpret_cast<u8*>(this) + sizeof(Packet);
  }
  [[nodiscard]] const u8* data() const noexcept {
    return reinterpret_cast<const u8*>(this) + sizeof(Packet);
  }

  [[nodiscard]] u32 len() const noexcept { return len_; }
  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }
  void set_len(u32 len) noexcept {
    SPRAYER_DCHECK(len <= capacity_);
    len_ = len;
  }

  /// Parse Ethernet/IPv4/L4 headers, recording offsets. Returns false on
  /// truncated or non-IPv4 frames (offsets are then cleared). Safe on
  /// arbitrary bytes.
  bool parse() noexcept;

  [[nodiscard]] bool parsed() const noexcept { return l3_offset_ != 0; }
  [[nodiscard]] bool is_ipv4() const noexcept { return l3_offset_ != 0; }
  [[nodiscard]] bool is_tcp() const noexcept {
    return l4_offset_ != 0 && l4_proto_ == kProtoTcp;
  }
  [[nodiscard]] bool is_udp() const noexcept {
    return l4_offset_ != 0 && l4_proto_ == kProtoUdp;
  }
  [[nodiscard]] u8 l4_proto() const noexcept { return l4_proto_; }

  [[nodiscard]] EthernetView eth() noexcept { return EthernetView{data()}; }
  [[nodiscard]] Ipv4View ipv4() noexcept {
    SPRAYER_DCHECK(is_ipv4());
    return Ipv4View{data() + l3_offset_};
  }
  [[nodiscard]] TcpView tcp() noexcept {
    SPRAYER_DCHECK(is_tcp());
    return TcpView{data() + l4_offset_};
  }
  [[nodiscard]] UdpView udp() noexcept {
    SPRAYER_DCHECK(is_udp());
    return UdpView{data() + l4_offset_};
  }
  [[nodiscard]] const u8* l4_bytes() const noexcept {
    SPRAYER_DCHECK(l4_offset_ != 0);
    return data() + l4_offset_;
  }
  [[nodiscard]] u32 l4_len() const noexcept {
    SPRAYER_DCHECK(l4_offset_ != 0);
    return len_ - l4_offset_;
  }
  [[nodiscard]] u32 l4_payload_len() noexcept;

  [[nodiscard]] FiveTuple five_tuple() noexcept {
    SPRAYER_DCHECK(is_ipv4());
    const u8* l4 = l4_offset_ ? data() + l4_offset_ : nullptr;
    Ipv4View ip{data() + l3_offset_};
    return extract_five_tuple(ip, l4);
  }

  /// A connection packet (SYN/FIN/RST TCP segment) in the paper's sense.
  [[nodiscard]] bool is_connection_packet() noexcept {
    return is_tcp() && tcp().is_connection_packet();
  }

  // --- rx-descriptor metadata ---------------------------------------------
  /// Memoized symmetric flow hash (Toeplitz over the 4-tuple with the
  /// symmetric key) — the 82599 writes this RSS hash into every rx
  /// descriptor, so the NIC models (SimNic, ThreadedMiddlebox::inject) stash
  /// it here once at rx and every later consumer (core picker, designated
  /// core, flow tables) reuses it instead of re-hashing the five-tuple.
  /// Valid only for IPv4 frames; parse() invalidates it.
  void set_flow_hash(u32 h) noexcept {
    flow_hash_ = h;
    flow_hash_valid_ = 1;
  }
  [[nodiscard]] bool has_flow_hash() const noexcept {
    return flow_hash_valid_ != 0;
  }
  [[nodiscard]] u32 flow_hash() const noexcept {
    SPRAYER_DCHECK(flow_hash_valid_);
    return flow_hash_;
  }
  /// Header-mutating NFs (NAT) call this when they rewrite the tuple the
  /// hash was computed over; the next packet_flow_hash() recomputes, and a
  /// chain refreshes it eagerly once per rewriting hop so downstream hops
  /// keep reading a memoized value.
  void invalidate_flow_hash() noexcept { flow_hash_valid_ = 0; }

  // --- simulation metadata -------------------------------------------------
  /// Ingress port on the current device (set by links/NICs).
  u8 ingress_port = 0;
  /// Timestamp when the source generated the packet (for end-to-end RTT).
  Time ts_gen = 0;
  /// Timestamp when the NIC delivered the packet to a core queue.
  Time ts_rx = 0;
  /// Opaque tag for generators/analyzers (e.g. flow index or sequence id).
  u64 user_tag = 0;

  [[nodiscard]] PacketPool* pool() const noexcept { return pool_; }
  [[nodiscard]] u32 slot() const noexcept { return slot_; }

 private:
  friend class PacketPool;
  Packet(PacketPool* pool, u32 slot, u32 capacity) noexcept
      : pool_(pool), slot_(slot), capacity_(capacity) {}

  void reset_metadata() noexcept {
    len_ = 0;
    l3_offset_ = 0;
    l4_offset_ = 0;
    l4_proto_ = 0;
    flow_hash_ = 0;
    flow_hash_valid_ = 0;
    ingress_port = 0;
    ts_gen = 0;
    ts_rx = 0;
    user_tag = 0;
  }

  PacketPool* pool_;
  u32 slot_;
  u32 capacity_;
  u32 len_ = 0;
  u16 l3_offset_ = 0;
  u16 l4_offset_ = 0;
  u8 l4_proto_ = 0;
  u8 flow_hash_valid_ = 0;
  u32 flow_hash_ = 0;
};

/// Returns the packet to its pool.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

/// RAII handle for a pool-allocated packet.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

}  // namespace sprayer::net

// Frame construction helpers: build valid Ethernet/IPv4/TCP|UDP packets with
// correct checksums into pool buffers. Used by the traffic generators, the
// TCP stack, and every test that needs realistic packets.
#pragma once

#include <span>

#include "common/types.hpp"
#include "common/units.hpp"
#include "net/five_tuple.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace sprayer::net {

/// Minimum Ethernet frame (without FCS, which we do not model): 60 bytes on
/// the host side; "64 B packets" in the paper include the 4-byte FCS.
inline constexpr u32 kMinFrameLen = 60;
/// Standard MTU-sized frame: 14 (Eth) + 20 (IP) + 20 (TCP) + 1460 (MSS).
inline constexpr u32 kMaxFrameLen = 1514;
inline constexpr u32 kTcpHeadersLen =
    EthernetView::kSize + Ipv4View::kMinSize + TcpView::kMinSize;  // 54

struct TcpSegmentSpec {
  FiveTuple tuple;                  // protocol field is ignored (forced TCP)
  u32 seq = 0;
  u32 ack = 0;
  u8 flags = 0;
  u16 window = 0xffff;
  u32 payload_len = 0;
  /// Optional payload bytes; if shorter than payload_len the rest is zero.
  std::span<const u8> payload{};
  /// TCP options block; length must be a multiple of 4, at most 40 bytes.
  std::span<const u8> options{};
  MacAddr src_mac = MacAddr::from_id(1);
  MacAddr dst_mac = MacAddr::from_id(2);
  u8 ttl = 64;
  u16 ip_id = 0;
};

struct UdpDatagramSpec {
  FiveTuple tuple;                  // protocol field is ignored (forced UDP)
  u32 payload_len = 0;
  std::span<const u8> payload{};
  MacAddr src_mac = MacAddr::from_id(1);
  MacAddr dst_mac = MacAddr::from_id(2);
  u8 ttl = 64;
  u16 ip_id = 0;
};

/// Build a TCP segment. Pads to the 60-byte Ethernet minimum. Returns
/// nullptr if the pool is exhausted or the frame exceeds the buffer size.
[[nodiscard]] Packet* build_tcp_raw(PacketPool& pool,
                                    const TcpSegmentSpec& spec) noexcept;
[[nodiscard]] PacketPtr build_tcp(PacketPool& pool, const TcpSegmentSpec& spec);

/// Build a UDP datagram. Same conventions as build_tcp_raw.
[[nodiscard]] Packet* build_udp_raw(PacketPool& pool,
                                    const UdpDatagramSpec& spec) noexcept;
[[nodiscard]] PacketPtr build_udp(PacketPool& pool,
                                  const UdpDatagramSpec& spec);

/// Recompute both the IPv4 and L4 checksums of a parsed packet from scratch
/// (after arbitrary header edits).
void refresh_checksums(Packet& pkt) noexcept;

}  // namespace sprayer::net

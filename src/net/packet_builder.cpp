#include "net/packet_builder.hpp"

#include <algorithm>
#include <cstring>

#include "net/checksum.hpp"

namespace sprayer::net {

namespace {

/// Fill Ethernet + IPv4 headers; returns the L4 offset.
u32 fill_l2_l3(Packet& pkt, const MacAddr& src_mac, const MacAddr& dst_mac,
               const FiveTuple& tuple, u8 protocol, u8 ttl, u16 ip_id,
               u32 l4_total_len) noexcept {
  EthernetView eth{pkt.data()};
  eth.set_dst(dst_mac);
  eth.set_src(src_mac);
  eth.set_ether_type(kEtherTypeIpv4);

  Ipv4View ip{pkt.data() + EthernetView::kSize};
  ip.set_version_ihl(4, 5);
  ip.set_dscp_ecn(0);
  ip.set_total_length(static_cast<u16>(Ipv4View::kMinSize + l4_total_len));
  ip.set_identification(ip_id);
  ip.set_flags_fragment(0x4000);  // DF
  ip.set_ttl(ttl);
  ip.set_protocol(protocol);
  ip.set_checksum(0);
  ip.set_src(tuple.src_ip);
  ip.set_dst(tuple.dst_ip);
  ip.set_checksum(ipv4_header_checksum(ip));

  return EthernetView::kSize + Ipv4View::kMinSize;
}

void copy_payload(u8* dst, u32 payload_len, std::span<const u8> src) noexcept {
  const u32 copy = static_cast<u32>(std::min<std::size_t>(src.size(),
                                                          payload_len));
  if (copy > 0) std::memcpy(dst, src.data(), copy);
  if (payload_len > copy) std::memset(dst + copy, 0, payload_len - copy);
}

}  // namespace

Packet* build_tcp_raw(PacketPool& pool, const TcpSegmentSpec& spec) noexcept {
  const u32 opt_len = static_cast<u32>(spec.options.size());
  SPRAYER_DCHECK(opt_len % 4 == 0 && opt_len <= 40);
  const u32 tcp_hdr_len = TcpView::kMinSize + opt_len;
  const u32 l4_len = tcp_hdr_len + spec.payload_len;
  const u32 frame_len =
      std::max(kMinFrameLen, EthernetView::kSize + Ipv4View::kMinSize + l4_len);
  if (frame_len > pool.buffer_size()) return nullptr;

  Packet* pkt = pool.alloc_raw();
  if (pkt == nullptr) return nullptr;
  pkt->set_len(frame_len);
  // Zero any padding between IP total length and the Ethernet minimum.
  std::memset(pkt->data(), 0, frame_len);

  const u32 l4_off = fill_l2_l3(*pkt, spec.src_mac, spec.dst_mac, spec.tuple,
                                kProtoTcp, spec.ttl, spec.ip_id, l4_len);

  TcpView tcp{pkt->data() + l4_off};
  tcp.set_src_port(spec.tuple.src_port);
  tcp.set_dst_port(spec.tuple.dst_port);
  tcp.set_seq(spec.seq);
  tcp.set_ack(spec.ack);
  tcp.set_data_offset_words(static_cast<u8>(tcp_hdr_len / 4));
  tcp.set_flags(spec.flags);
  tcp.set_window(spec.window);
  tcp.set_checksum(0);
  tcp.set_urgent(0);
  if (opt_len > 0) {
    std::memcpy(pkt->data() + l4_off + TcpView::kMinSize, spec.options.data(),
                opt_len);
  }
  copy_payload(pkt->data() + l4_off + tcp_hdr_len, spec.payload_len,
               spec.payload);
  tcp.set_checksum(l4_checksum(spec.tuple.src_ip, spec.tuple.dst_ip, kProtoTcp,
                               pkt->data() + l4_off, l4_len));

  const bool ok = pkt->parse();
  SPRAYER_DCHECK(ok && pkt->is_tcp());
  (void)ok;
  return pkt;
}

PacketPtr build_tcp(PacketPool& pool, const TcpSegmentSpec& spec) {
  return PacketPtr{build_tcp_raw(pool, spec)};
}

Packet* build_udp_raw(PacketPool& pool, const UdpDatagramSpec& spec) noexcept {
  const u32 l4_len = UdpView::kSize + spec.payload_len;
  const u32 frame_len =
      std::max(kMinFrameLen, EthernetView::kSize + Ipv4View::kMinSize + l4_len);
  if (frame_len > pool.buffer_size()) return nullptr;

  Packet* pkt = pool.alloc_raw();
  if (pkt == nullptr) return nullptr;
  pkt->set_len(frame_len);
  std::memset(pkt->data(), 0, frame_len);

  const u32 l4_off = fill_l2_l3(*pkt, spec.src_mac, spec.dst_mac, spec.tuple,
                                kProtoUdp, spec.ttl, spec.ip_id, l4_len);

  UdpView udp{pkt->data() + l4_off};
  udp.set_src_port(spec.tuple.src_port);
  udp.set_dst_port(spec.tuple.dst_port);
  udp.set_length(static_cast<u16>(l4_len));
  udp.set_checksum(0);
  copy_payload(pkt->data() + l4_off + UdpView::kSize, spec.payload_len,
               spec.payload);
  u16 cks = l4_checksum(spec.tuple.src_ip, spec.tuple.dst_ip, kProtoUdp,
                        pkt->data() + l4_off, l4_len);
  if (cks == 0) cks = 0xffff;  // RFC 768: zero means "no checksum"
  udp.set_checksum(cks);

  const bool ok = pkt->parse();
  SPRAYER_DCHECK(ok && pkt->is_udp());
  (void)ok;
  return pkt;
}

PacketPtr build_udp(PacketPool& pool, const UdpDatagramSpec& spec) {
  return PacketPtr{build_udp_raw(pool, spec)};
}

void refresh_checksums(Packet& pkt) noexcept {
  if (!pkt.is_ipv4()) return;
  Ipv4View ip = pkt.ipv4();
  ip.set_checksum(0);
  ip.set_checksum(ipv4_header_checksum(ip));
  if (pkt.is_tcp()) {
    TcpView tcp = pkt.tcp();
    const u32 l4_len = ip.total_length() - ip.header_len();
    tcp.set_checksum(0);
    tcp.set_checksum(
        l4_checksum(ip.src(), ip.dst(), kProtoTcp, tcp.bytes(), l4_len));
  } else if (pkt.is_udp()) {
    UdpView udp = pkt.udp();
    const u32 l4_len = ip.total_length() - ip.header_len();
    udp.set_checksum(0);
    u16 cks = l4_checksum(ip.src(), ip.dst(), kProtoUdp, udp.bytes(), l4_len);
    if (cks == 0) cks = 0xffff;
    udp.set_checksum(cks);
  }
}

}  // namespace sprayer::net

// IPv4 address value type.
#pragma once

#include <compare>
#include <string>

#include "common/result.hpp"
#include "common/types.hpp"

namespace sprayer::net {

/// IPv4 address stored in host byte order (so arithmetic and comparisons
/// behave naturally); converted to network order only at the wire boundary.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(u32 host_order) noexcept : v_(host_order) {}
  constexpr Ipv4Addr(u8 a, u8 b, u8 c, u8 d) noexcept
      : v_((static_cast<u32>(a) << 24) | (static_cast<u32>(b) << 16) |
           (static_cast<u32>(c) << 8) | d) {}

  [[nodiscard]] constexpr u32 host_order() const noexcept { return v_; }
  [[nodiscard]] constexpr u8 octet(int i) const noexcept {
    return static_cast<u8>(v_ >> (24 - 8 * i));
  }

  /// Parse dotted-quad ("10.0.0.1").
  static Result<Ipv4Addr> parse(const std::string& s);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  u32 v_ = 0;
};

}  // namespace sprayer::net

// A group of polling worker threads, one per core — the real-thread
// counterpart of the simulator's virtual cores. Workers run a user loop
// until stop() is called; join on destruction (RAII, no detached threads).
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer::runtime {

class WorkerGroup {
 public:
  /// The body is called repeatedly as (core_id) until stop() is requested;
  /// it should perform one bounded unit of work (e.g. poll one batch) and
  /// return true if it did anything (false lets the worker relax briefly).
  using Body = std::function<bool(CoreId)>;

  WorkerGroup() = default;
  ~WorkerGroup() { stop(); }

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  void start(u32 num_workers, Body body);

  /// Request stop and join all workers. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return !threads_.empty();
  }
  [[nodiscard]] u32 size() const noexcept {
    return static_cast<u32>(threads_.size());
  }

 private:
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
};

}  // namespace sprayer::runtime

// Bounded lock-free multi-producer / multi-consumer ring (Vyukov's design,
// the same family as DPDK's rte_ring). Used where several cores feed one
// consumer — e.g. aggregating transmit descriptors to a NIC port in the
// threaded executor.
#pragma once

#include <atomic>
#include <bit>
#include <memory>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"

namespace sprayer::runtime {

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(u32 capacity)
      : capacity_(capacity), mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)) {
    SPRAYER_CHECK_MSG(capacity >= 2 && std::has_single_bit(capacity),
                      "ring capacity must be a power of two >= 2");
    for (u32 i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }

  bool push(T item) noexcept {
    Cell* cell;
    u64 pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const u64 seq = cell->sequence.load(std::memory_order_acquire);
      const i64 diff = static_cast<i64>(seq) - static_cast<i64>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(item);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool pop(T& out) noexcept {
    Cell* cell;
    u64 pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const u64 seq = cell->sequence.load(std::memory_order_acquire);
      const i64 diff =
          static_cast<i64>(seq) - static_cast<i64>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  [[nodiscard]] u32 size_approx() const noexcept {
    const u64 enq = enqueue_pos_.load(std::memory_order_acquire);
    const u64 deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq > deq ? static_cast<u32>(enq - deq) : 0;
  }

 private:
  struct Cell {
    std::atomic<u64> sequence;
    T value;
  };

  const u32 capacity_;
  const u32 mask_;
  std::unique_ptr<Cell[]> cells_;

  alignas(kCacheLineSize) std::atomic<u64> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<u64> dequeue_pos_{0};
};

}  // namespace sprayer::runtime

// Fixed-capacity packet batch — the unit of work everywhere in the fast
// path, mirroring the paper's batched processing (§3.3): cores poll batches
// from queues, transfer descriptor batches over rings, and hand NF handlers
// pre-classified batches.
#pragma once

#include <array>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/types.hpp"
#include "net/packet.hpp"

namespace sprayer::runtime {

inline constexpr u32 kMaxBatchSize = 64;

class PacketBatch {
 public:
  PacketBatch() = default;

  [[nodiscard]] u32 size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == kMaxBatchSize; }

  void push(net::Packet* p) noexcept {
    SPRAYER_DCHECK(size_ < kMaxBatchSize);
    pkts_[size_++] = p;
  }

  [[nodiscard]] net::Packet* operator[](u32 i) const noexcept {
    SPRAYER_DCHECK(i < size_);
    return pkts_[i];
  }

  [[nodiscard]] std::span<net::Packet*> packets() noexcept {
    return {pkts_.data(), size_};
  }
  [[nodiscard]] std::span<net::Packet* const> packets() const noexcept {
    return {pkts_.data(), size_};
  }

  void clear() noexcept { size_ = 0; }

  /// In-place survivor compaction: packets whose index satisfies `dropped`
  /// are appended to `drops`; the rest slide down, order-preserving. Every
  /// chain hop (and the single-NF verdict path) uses this instead of
  /// per-NF erase/copy loops. Returns the number of survivors. `on_move`
  /// is invoked as on_move(from, to) for every surviving packet that
  /// changes slot, so callers keeping parallel per-packet arrays (e.g. the
  /// chain's shared batch metadata) can relocate them in the same pass.
  template <class DroppedFn, class MoveFn>
  u32 compact(DroppedFn&& dropped, PacketBatch& drops,
              MoveFn&& on_move) noexcept {
    u32 w = 0;
    for (u32 i = 0; i < size_; ++i) {
      if (dropped(i)) {
        drops.push(pkts_[i]);
        continue;
      }
      if (w != i) {
        pkts_[w] = pkts_[i];
        on_move(i, w);
      }
      ++w;
    }
    size_ = w;
    return w;
  }

  template <class DroppedFn>
  u32 compact(DroppedFn&& dropped, PacketBatch& drops) noexcept {
    return compact(std::forward<DroppedFn>(dropped), drops,
                   [](u32, u32) {});
  }

  /// Adopt `n` packets written directly into data() (e.g. by rx_burst).
  void set_size(u32 n) noexcept {
    SPRAYER_DCHECK(n <= kMaxBatchSize);
    size_ = n;
  }

  [[nodiscard]] net::Packet** data() noexcept { return pkts_.data(); }

  // Range support.
  [[nodiscard]] auto begin() noexcept { return pkts_.begin(); }
  [[nodiscard]] auto end() noexcept { return pkts_.begin() + size_; }
  [[nodiscard]] auto begin() const noexcept { return pkts_.begin(); }
  [[nodiscard]] auto end() const noexcept { return pkts_.begin() + size_; }

 private:
  std::array<net::Packet*, kMaxBatchSize> pkts_{};
  u32 size_ = 0;
};

}  // namespace sprayer::runtime

#include "runtime/worker_group.hpp"

#include "common/compiler.hpp"

namespace sprayer::runtime {

void WorkerGroup::start(u32 num_workers, Body body) {
  SPRAYER_CHECK_MSG(threads_.empty(), "worker group already started");
  SPRAYER_CHECK(num_workers > 0);
  stop_.store(false, std::memory_order_relaxed);
  threads_.reserve(num_workers);
  for (u32 i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, body, i] {
      const CoreId core = static_cast<CoreId>(i);
      while (!stop_.load(std::memory_order_relaxed)) {
        if (!body(core)) {
          // Nothing to do: relax, then yield so single-CPU hosts make
          // progress on the other workers.
          cpu_relax();
          std::this_thread::yield();
        }
      }
    });
  }
}

void WorkerGroup::stop() {
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace sprayer::runtime

// Lock-free single-producer / single-consumer ring of pointers.
//
// This is the transfer channel Sprayer uses to move connection-packet
// descriptors to their designated core: each (source, destination) core pair
// gets its own SPSC ring, so no CAS is ever needed (§3.3 of the paper uses
// per-core rings the same way). Indices are cached on each side to avoid
// ping-ponging the counterpart's cache line on every operation.
#pragma once

#include <atomic>
#include <bit>
#include <memory>
#include <span>

#include "common/check.hpp"
#include "common/types.hpp"

namespace sprayer::runtime {

template <typename T>
class SpscRing {
 public:
  /// Capacity must be a power of two (one slot is NOT lost: full/empty are
  /// disambiguated by free-running indices).
  explicit SpscRing(u32 capacity)
      : capacity_(capacity), mask_(capacity - 1),
        slots_(std::make_unique<T[]>(capacity)) {
    SPRAYER_CHECK_MSG(capacity >= 2 && std::has_single_bit(capacity),
                      "ring capacity must be a power of two >= 2");
  }

  /// Test hook: start both free-running indices at `initial_index` (e.g.
  /// just below 2^32) so wraparound of the index arithmetic can be
  /// exercised without billions of operations.
  SpscRing(u32 capacity, u64 initial_index) : SpscRing(capacity) {
    head_.store(initial_index, std::memory_order_relaxed);
    tail_.store(initial_index, std::memory_order_relaxed);
    cached_tail_ = initial_index;
    cached_head_ = initial_index;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }

  /// Producer side. Returns false when full.
  bool push(T item) noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Bulk push; returns the number of items actually enqueued (prefix).
  u32 push_bulk(std::span<const T> items) noexcept {
    const u64 head = head_.load(std::memory_order_relaxed);
    u64 free = capacity_ - (head - cached_tail_);
    if (free < items.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity_ - (head - cached_tail_);
    }
    const u32 n = static_cast<u32>(std::min<u64>(free, items.size()));
    for (u32 i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = items[i];
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) noexcept {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Bulk pop into `out`; returns the number of items dequeued.
  u32 pop_bulk(std::span<T> out) noexcept {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    u64 avail = cached_head_ - tail;
    if (avail < out.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = cached_head_ - tail;
    }
    const u32 n = static_cast<u32>(std::min<u64>(avail, out.size()));
    for (u32 i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact when called from either endpoint thread
  /// while the other is quiescent).
  [[nodiscard]] u32 size_approx() const noexcept {
    return static_cast<u32>(head_.load(std::memory_order_acquire) -
                            tail_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool empty_approx() const noexcept {
    return size_approx() == 0;
  }

 private:
  const u32 capacity_;
  const u32 mask_;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLineSize) std::atomic<u64> head_{0};  // producer writes
  u64 cached_tail_ = 0;                               // producer-local
  alignas(kCacheLineSize) std::atomic<u64> tail_{0};  // consumer writes
  u64 cached_head_ = 0;                               // consumer-local
};

}  // namespace sprayer::runtime

// Stateful firewall (paper Table 1: "Connection context — per-flow — R at
// every packet, RW at flow events").
//
// New connections are admitted through the ACL at SYN time; a per-connection
// context (keyed by the canonical tuple, so both directions share it) is
// installed on the designated core. Regular packets pass iff their
// connection context exists — a pure read, from any core.
#pragma once

#include "common/units.hpp"
#include "core/nf.hpp"
#include "nf/acl.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::nf {

class FirewallNf final : public core::INetworkFunction {
 public:
  explicit FirewallNf(Acl acl) : acl_(std::move(acl)) {}

  void init(core::NfInitConfig& cfg, u32 num_cores) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
    auto& reg = tm_.attach(cfg.registry, num_cores);
    m_admitted_ = reg.counter("firewall.admitted");
    m_rejected_ = reg.counter("firewall.rejected_by_acl");
    m_no_state_ = reg.counter("firewall.dropped_no_state");
    m_closed_ = reg.counter("firewall.closed");
    tm_.seal();
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;
  /// Fused-chain fast path: canonical keys and hashes come pre-extracted
  /// from the shared per-batch metadata.
  void regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                       core::NfContext& ctx, core::BatchVerdicts& verdicts);

  [[nodiscard]] const char* name() const noexcept override {
    return "firewall";
  }

  /// Counter totals summed across registry shards (metrics "firewall.*").
  /// Returned by value; per-core sharding also makes the bumps race-free
  /// under the threaded executor (the old plain-u64 struct was not).
  struct FwCounters {
    u64 admitted = 0;
    u64 rejected_by_acl = 0;
    u64 dropped_no_state = 0;
    u64 closed = 0;
  };
  [[nodiscard]] FwCounters counters() const noexcept {
    return FwCounters{tm_.total(m_admitted_), tm_.total(m_rejected_),
                      tm_.total(m_no_state_), tm_.total(m_closed_)};
  }

 private:
  struct Entry {
    Time established_at = 0;
    u8 valid = 0;
    u8 fin_count = 0;
    u8 pad[6] = {};
  };
  static_assert(sizeof(Entry) == 16);

  Acl acl_;
  telemetry::RegistrySlot tm_;
  telemetry::Counter m_admitted_;
  telemetry::Counter m_rejected_;
  telemetry::Counter m_no_state_;
  telemetry::Counter m_closed_;
};

}  // namespace sprayer::nf

// Stateful firewall (paper Table 1: "Connection context — per-flow — R at
// every packet, RW at flow events").
//
// New connections are admitted through the ACL at SYN time; a per-connection
// context (keyed by the canonical tuple, so both directions share it) is
// installed on the designated core. Regular packets pass iff their
// connection context exists — a pure read, from any core.
#pragma once

#include "common/units.hpp"
#include "core/nf.hpp"
#include "nf/acl.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::nf {

class FirewallNf final : public core::INetworkFunction {
 public:
  explicit FirewallNf(Acl acl) : acl_(std::move(acl)) {}

  void init(core::NfInitConfig& cfg, u32 num_cores) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
    cfg.flow_idle_timeout = 60 * kSecond;  // idle connections age out
    auto& reg = tm_.attach(cfg.registry, num_cores);
    m_admitted_ = reg.counter("firewall.admitted");
    m_rejected_ = reg.counter("firewall.rejected_by_acl");
    m_no_state_ = reg.counter("firewall.dropped_no_state");
    m_closed_ = reg.counter("firewall.closed");
    m_table_full_ = reg.counter("firewall.table_full");
    m_expired_ = reg.counter("firewall.expired");
    tm_.seal();
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;
  /// Fused-chain fast path: canonical keys and hashes come pre-extracted
  /// from the shared per-batch metadata.
  void regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                       core::NfContext& ctx, core::BatchVerdicts& verdicts);
  void on_expire(const net::FiveTuple& key, core::FlowTable::FlowHash hash,
                 core::NfContext& ctx) override {
    if (ctx.flows().remove_local_flow(key, hash)) {
      m_expired_.add(ctx.core());
      m_closed_.add(ctx.core());
    }
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "firewall";
  }

  /// Counter totals summed across registry shards (metrics "firewall.*").
  /// Returned by value; per-core sharding also makes the bumps race-free
  /// under the threaded executor (the old plain-u64 struct was not).
  struct FwCounters {
    u64 admitted = 0;
    u64 rejected_by_acl = 0;
    u64 dropped_no_state = 0;
    u64 closed = 0;
    u64 table_full = 0;  // SYNs dropped fail-closed for lack of table room
    u64 expired = 0;     // contexts reclaimed by idle aging (subset of closed)
  };
  [[nodiscard]] FwCounters counters() const noexcept {
    return FwCounters{tm_.total(m_admitted_),   tm_.total(m_rejected_),
                      tm_.total(m_no_state_),   tm_.total(m_closed_),
                      tm_.total(m_table_full_), tm_.total(m_expired_)};
  }

 private:
  struct Entry {
    Time established_at = 0;
    u8 valid = 0;
    /// Per-direction FIN bits (bit 0: canonical direction, bit 1: reverse);
    /// retransmitted FINs cannot close a half-open connection.
    u8 fin_seen = 0;
    u8 pad[6] = {};
  };
  static_assert(sizeof(Entry) == 16);

  /// Which fin_seen bit a packet's arrival direction maps to.
  [[nodiscard]] static u8 direction_bit(const net::FiveTuple& pkt_tuple,
                                        const net::FiveTuple& canon) noexcept {
    return pkt_tuple == canon ? 1 : 2;
  }

  Acl acl_;
  telemetry::RegistrySlot tm_;
  telemetry::Counter m_admitted_;
  telemetry::Counter m_rejected_;
  telemetry::Counter m_no_state_;
  telemetry::Counter m_closed_;
  telemetry::Counter m_table_full_;
  telemetry::Counter m_expired_;
};

}  // namespace sprayer::nf

// Stateful firewall (paper Table 1: "Connection context — per-flow — R at
// every packet, RW at flow events").
//
// New connections are admitted through the ACL at SYN time; a per-connection
// context (keyed by the canonical tuple, so both directions share it) is
// installed on the designated core. Regular packets pass iff their
// connection context exists — a pure read, from any core.
#pragma once

#include "common/units.hpp"
#include "core/nf.hpp"
#include "nf/acl.hpp"

namespace sprayer::nf {

class FirewallNf final : public core::INetworkFunction {
 public:
  explicit FirewallNf(Acl acl) : acl_(std::move(acl)) {}

  void init(core::NfInitConfig& cfg, u32 /*num_cores*/) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "firewall";
  }

  struct FwCounters {
    u64 admitted = 0;
    u64 rejected_by_acl = 0;
    u64 dropped_no_state = 0;
    u64 closed = 0;
  };
  [[nodiscard]] const FwCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Entry {
    Time established_at = 0;
    u8 valid = 0;
    u8 fin_count = 0;
    u8 pad[6] = {};
  };
  static_assert(sizeof(Entry) == 16);

  Acl acl_;
  FwCounters counters_;
};

}  // namespace sprayer::nf

// L4 load balancer (paper Table 1: "Flow-server map — per-flow — R/RW;
// Pool of servers — global — RW at flow events").
//
// Direct-server-return (DSR) style: connections to the virtual IP are
// pinned to a backend at SYN time and forwarded by rewriting the
// destination MAC (the backends host the VIP on a loopback, as in standard
// DSR deployments). Return traffic carries the VIP as its source, so both
// directions share one canonical tuple — which keeps the flow-server map
// on a single designated core without any port gymnastics.
//
// Per-backend connection counts are global state with loose consistency:
// each core counts locally and aggregate() sums (§3.4's statistics pattern).
#pragma once

#include <array>
#include <atomic>
#include <vector>

#include "core/nf.hpp"
#include "net/mac_addr.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::nf {

struct LbBackend {
  net::MacAddr mac;
  net::Ipv4Addr ip;  // informational (DSR rewrites L2 only)
};

struct LbConfig {
  net::Ipv4Addr vip{198, 51, 100, 1};
  u16 vport = 80;
  std::vector<LbBackend> backends;
};

class LoadBalancerNf final : public core::INetworkFunction {
 public:
  static constexpr u32 kMaxBackends = 64;
  static constexpr u32 kMaxCores = 64;

  explicit LoadBalancerNf(LbConfig cfg);

  void init(core::NfInitConfig& init, u32 num_cores) override {
    init.flow_table_capacity = 1u << 16;
    init.flow_entry_size = sizeof(Entry);
    init.flow_idle_timeout = 60 * kSecond;  // idle flow-server pins age out
    num_cores_ = num_cores;
    auto& reg = tm_.attach(init.registry, num_cores);
    m_assigned_ = reg.counter("lb.assigned");
    m_no_state_ = reg.counter("lb.dropped_no_state");
    m_not_vip_ = reg.counter("lb.dropped_not_vip");
    m_table_full_ = reg.counter("lb.table_full");
    m_expired_ = reg.counter("lb.expired");
    tm_.seal();
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;
  /// Fused-chain fast path: tuples, canonical keys, and hashes come
  /// pre-extracted from the shared per-batch metadata.
  void regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                       core::NfContext& ctx, core::BatchVerdicts& verdicts);
  void on_expire(const net::FiveTuple& key, core::FlowTable::FlowHash hash,
                 core::NfContext& ctx) override;

  [[nodiscard]] const char* name() const noexcept override { return "lb"; }

  /// Loosely-consistent per-backend active-connection counts (sums the
  /// per-core counters; may be momentarily stale, per the paper's model).
  [[nodiscard]] std::vector<i64> active_connections() const;

  /// Counter totals summed across registry shards (metrics "lb.*").
  /// Returned by value; the per-core sharding also makes the bumps
  /// race-free under the threaded executor.
  struct LbCounters {
    u64 assigned = 0;
    u64 dropped_no_state = 0;
    u64 dropped_not_vip = 0;
    u64 table_full = 0;  // SYNs dropped because the flow-server map was full
    u64 expired = 0;     // pins released by idle aging
  };
  [[nodiscard]] LbCounters counters() const noexcept {
    return LbCounters{tm_.total(m_assigned_), tm_.total(m_no_state_),
                      tm_.total(m_not_vip_), tm_.total(m_table_full_),
                      tm_.total(m_expired_)};
  }

 private:
  struct Entry {
    u16 backend = 0;
    u8 valid = 0;
    /// Per-direction FIN bits (bit 0: canonical direction, bit 1: reverse);
    /// a retransmitted FIN sets the same bit twice instead of tearing the
    /// pin down early.
    u8 fin_seen = 0;
    u8 pad[4] = {};
  };
  static_assert(sizeof(Entry) == 8);

  /// Which fin_seen bit a packet's arrival direction maps to.
  [[nodiscard]] static u8 direction_bit(const net::FiveTuple& pkt_tuple,
                                        const net::FiveTuple& canon) noexcept {
    return pkt_tuple == canon ? 1 : 2;
  }

  /// Per-core, per-backend deltas; padded to avoid false sharing.
  struct alignas(kCacheLineSize) CoreCounters {
    std::array<i64, kMaxBackends> delta{};
  };

  [[nodiscard]] bool is_to_vip(const net::FiveTuple& t) const noexcept {
    return t.dst_ip == cfg_.vip && t.dst_port == cfg_.vport;
  }
  [[nodiscard]] bool is_from_vip(const net::FiveTuple& t) const noexcept {
    return t.src_ip == cfg_.vip && t.src_port == cfg_.vport;
  }

  LbConfig cfg_;
  u32 num_cores_ = 0;
  // Round-robin cursor. Flow events for different flows run concurrently on
  // their designated cores, so the cursor is a relaxed atomic: assignment
  // spread matters, inter-core ordering does not.
  std::atomic<u32> rr_next_{0};
  std::array<CoreCounters, kMaxCores> per_core_{};
  telemetry::RegistrySlot tm_;
  telemetry::Counter m_assigned_;
  telemetry::Counter m_no_state_;
  telemetry::Counter m_not_vip_;
  telemetry::Counter m_table_full_;
  telemetry::Counter m_expired_;
};

}  // namespace sprayer::nf

#include "nf/synthetic.hpp"

namespace sprayer::nf {

void SyntheticNf::per_packet_work(net::Packet* pkt, core::NfContext& ctx) {
  if (pkt->is_ipv4()) {
    net::Ipv4View ip = pkt->ipv4();
    const u8 old_ttl = ip.ttl();
    if (old_ttl > 1) {
      // "Modifies the header": TTL decrement with RFC 1624 checksum update.
      ip.set_ttl(old_ttl - 1);
      const u16 old_word = static_cast<u16>((old_ttl << 8) | ip.protocol());
      const u16 new_word =
          static_cast<u16>(((old_ttl - 1) << 8) | ip.protocol());
      ip.set_checksum(
          net::checksum_update16(ip.checksum(), old_word, new_word));
    }
  }
  ctx.consume_cycles(busy_);
}

void SyntheticNf::connection_packets(runtime::PacketBatch& batch,
                                     core::NfContext& ctx,
                                     core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    const net::FiveTuple tuple = pkt->five_tuple();
    net::TcpView tcp = pkt->tcp();
    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      // New connection: create the flow entry (both directions share the
      // canonical key and this designated core).
      auto* entry = static_cast<Entry*>(
          ctx.flows().insert_local_flow(tuple.canonical()));
      if (entry != nullptr) {
        entry->tag = tuple.canonical().pack();
      }
    } else if (tcp.has(net::TcpFlags::kRst)) {
      (void)ctx.flows().remove_local_flow(tuple.canonical());
    }
    per_packet_work(pkt, ctx);
  }
}

void SyntheticNf::regular_packets(runtime::PacketBatch& batch,
                                  core::NfContext& ctx,
                                  core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    if (pkt->is_tcp()) {
      // "Retrieves the flow state": read from the designated core.
      const void* entry = ctx.flows().get_flow(pkt->five_tuple().canonical());
      if (entry == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    per_packet_work(pkt, ctx);
  }
}

}  // namespace sprayer::nf

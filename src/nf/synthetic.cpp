#include "nf/synthetic.hpp"

#include <array>

#include "hash/designated.hpp"

namespace sprayer::nf {

void SyntheticNf::per_packet_work(net::Packet* pkt, core::NfContext& ctx) {
  if (pkt->is_ipv4()) {
    net::Ipv4View ip = pkt->ipv4();
    const u8 old_ttl = ip.ttl();
    if (old_ttl > 1) {
      // "Modifies the header": TTL decrement with RFC 1624 checksum update.
      ip.set_ttl(old_ttl - 1);
      const u16 old_word = static_cast<u16>((old_ttl << 8) | ip.protocol());
      const u16 new_word =
          static_cast<u16>(((old_ttl - 1) << 8) | ip.protocol());
      ip.set_checksum(
          net::checksum_update16(ip.checksum(), old_word, new_word));
    }
  }
  ctx.consume_cycles(busy_);
}

void SyntheticNf::connection_packets(runtime::PacketBatch& batch,
                                     core::NfContext& ctx,
                                     core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    const net::FiveTuple tuple = pkt->five_tuple();
    // The canonical key hashes to the packet's own memoized RSS hash (the
    // symmetric Toeplitz key makes both directions collide by design).
    const u32 hash = hash::packet_flow_hash(*pkt);
    net::TcpView tcp = pkt->tcp();
    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      // New connection: create the flow entry (both directions share the
      // canonical key and this designated core).
      auto* entry = static_cast<Entry*>(
          ctx.flows().insert_local_flow(tuple.canonical(), hash));
      if (entry != nullptr) {
        entry->tag = tuple.canonical().pack();
      }
    } else if (tcp.has(net::TcpFlags::kRst)) {
      (void)ctx.flows().remove_local_flow(tuple.canonical(), hash);
    }
    per_packet_work(pkt, ctx);
  }
}

void SyntheticNf::regular_packets(runtime::PacketBatch& batch,
                                  core::NfContext& ctx,
                                  core::BatchVerdicts& /*verdicts*/) {
  // "Retrieves the flow state": gather every TCP packet's canonical key and
  // memoized rx hash, then read them all from the designated cores with one
  // prefetch-pipelined bulk lookup.
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  u32 n = 0;
  for (net::Packet* pkt : batch) {
    if (pkt->is_tcp()) {
      keys[n] = pkt->five_tuple().canonical();
      hashes[n] = hash::packet_flow_hash(*pkt);
      ++n;
    }
  }
  if (n > 0) {
    ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                          {entries.data(), n});
    u64 miss = 0;
    for (u32 i = 0; i < n; ++i) miss += entries[i] == nullptr;
    if (miss > 0) misses_.fetch_add(miss, std::memory_order_relaxed);
  }
  for (net::Packet* pkt : batch) {
    per_packet_work(pkt, ctx);
  }
}

}  // namespace sprayer::nf

#include "nf/monitor.hpp"

#include "hash/designated.hpp"

namespace sprayer::nf {

MonitorNf::Totals MonitorNf::aggregate() const {
  Totals out;
  out.packets = tm_.total(m_packets_);
  out.bytes = tm_.total(m_bytes_);
  out.tcp_packets = tm_.total(m_tcp_);
  out.udp_packets = tm_.total(m_udp_);
  out.other_packets = tm_.total(m_other_);
  out.tracked_packets = tm_.total(m_tracked_);
  out.connections_opened = tm_.total(m_opened_);
  out.connections_closed = tm_.total(m_closed_);
  out.connections_expired = tm_.total(m_expired_);
  out.table_full = tm_.total(m_table_full_);
  return out;
}

void MonitorNf::on_expire(const net::FiveTuple& key,
                          core::FlowTable::FlowHash hash,
                          core::NfContext& ctx) {
  if (ctx.flows().remove_local_flow(key, hash)) {
    m_expired_.add(ctx.core());
    m_closed_.add(ctx.core());
  }
}

void MonitorNf::connection_packets(runtime::PacketBatch& batch,
                                   core::NfContext& ctx,
                                   core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    const net::FiveTuple key = pkt->five_tuple().canonical();
    net::TcpView tcp = pkt->tcp();
    const CoreId core = ctx.core();

    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e == nullptr) {
        m_table_full_.add(core);
      } else if (!e->valid) {
        e->valid = 1;
        e->first_seen = ctx.now();
        m_opened_.add(core);
      }
    } else if (tcp.has(net::TcpFlags::kRst)) {
      if (ctx.flows().remove_local_flow(key)) m_closed_.add(core);
    } else if (tcp.has(net::TcpFlags::kFin)) {
      auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
      if (e != nullptr && e->valid) {
        // A FIN only counts toward teardown once per direction: bits, not a
        // counter, so retransmitted FINs cannot close a half-open connection.
        e->fin_seen |= direction_bit(pkt->five_tuple(), key);
        const bool done =
            close_on_single_fin_ ? e->fin_seen != 0 : e->fin_seen == 3;
        if (done && ctx.flows().remove_local_flow(key)) m_closed_.add(core);
      }
    }
    count_packet(pkt, core);
  }
}

void MonitorNf::regular_packets(runtime::PacketBatch& batch,
                                core::NfContext& ctx,
                                core::BatchVerdicts& verdicts) {
  // Standalone / virtual-dispatch path: derive the per-batch metadata here
  // and run the same bulk pipeline the fused chain uses.
  core::BatchMeta meta;
  meta.build(batch);
  regular_packets(batch, meta, ctx, verdicts);
}

void MonitorNf::regular_packets(runtime::PacketBatch& batch,
                                core::BatchMeta& meta, core::NfContext& ctx,
                                core::BatchVerdicts& /*verdicts*/) {
  // Per-connection attribution: one pipelined bulk lookup over the batch's
  // canonical keys (sharing the packets' memoized rx hashes) counts how
  // much regular traffic belongs to tracked connections.
  meta.ensure_canonical();
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  u32 n = 0;
  for (u32 i = 0; i < batch.size(); ++i) {
    count_packet(batch[i], ctx.core());
    if (meta.is_tcp[i]) {
      keys[n] = meta.canon[i];
      hashes[n] = meta.hash[i];
      ++n;
    }
  }
  if (n == 0) return;
  ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                        {entries.data(), n});
  u64 tracked = 0;
  for (u32 j = 0; j < n; ++j) {
    const auto* e = static_cast<const Entry*>(entries[j]);
    if (e != nullptr && e->valid) ++tracked;
  }
  if (tracked > 0) m_tracked_.add(ctx.core(), tracked);
}

}  // namespace sprayer::nf

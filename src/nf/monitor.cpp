#include "nf/monitor.hpp"

#include "hash/designated.hpp"

namespace sprayer::nf {

MonitorNf::Totals MonitorNf::aggregate() const {
  Totals out;
  for (u32 c = 0; c < num_cores_ && c < kMaxCores; ++c) {
    const Totals& t = per_core_[c].t;
    out.packets += t.packets;
    out.bytes += t.bytes;
    out.tcp_packets += t.tcp_packets;
    out.udp_packets += t.udp_packets;
    out.other_packets += t.other_packets;
    out.tracked_packets += t.tracked_packets;
    out.connections_opened += t.connections_opened;
    out.connections_closed += t.connections_closed;
  }
  return out;
}

void MonitorNf::connection_packets(runtime::PacketBatch& batch,
                                   core::NfContext& ctx,
                                   core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    const net::FiveTuple key = pkt->five_tuple().canonical();
    net::TcpView tcp = pkt->tcp();
    Totals& t = per_core_[ctx.core()].t;

    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e != nullptr && !e->valid) {
        e->valid = 1;
        e->first_seen = ctx.now();
        ++t.connections_opened;
      }
    } else if (tcp.has(net::TcpFlags::kRst)) {
      if (ctx.flows().remove_local_flow(key)) ++t.connections_closed;
    } else if (tcp.has(net::TcpFlags::kFin)) {
      auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
      const u8 fins_needed = close_on_single_fin_ ? 1 : 2;
      if (e != nullptr && e->valid && ++e->fin_count >= fins_needed) {
        if (ctx.flows().remove_local_flow(key)) ++t.connections_closed;
      }
    }
    count_packet(pkt, ctx.core());
  }
}

void MonitorNf::regular_packets(runtime::PacketBatch& batch,
                                core::NfContext& ctx,
                                core::BatchVerdicts& /*verdicts*/) {
  // Per-connection attribution: one pipelined bulk lookup over the batch's
  // canonical keys (sharing the packets' memoized rx hashes) counts how
  // much regular traffic belongs to tracked connections.
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  u32 n = 0;
  for (net::Packet* pkt : batch) {
    count_packet(pkt, ctx.core());
    if (pkt->is_tcp()) {
      keys[n] = pkt->five_tuple().canonical();
      hashes[n] = hash::packet_flow_hash(*pkt);
      ++n;
    }
  }
  if (n == 0) return;
  ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                        {entries.data(), n});
  Totals& t = per_core_[ctx.core()].t;
  for (u32 j = 0; j < n; ++j) {
    const auto* e = static_cast<const Entry*>(entries[j]);
    if (e != nullptr && e->valid) ++t.tracked_packets;
  }
}

}  // namespace sprayer::nf

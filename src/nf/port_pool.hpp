// Global NAT port pool ("Pool of IPs/ports — Global — RW at flow events",
// paper Table 1).
//
// Ports are claimed with a predicate so the NAT can pick a translated port
// whose reverse flow hashes back to the claiming core — the detail that
// makes the paper's Figure 5 NAT actually satisfy the writing partition for
// return traffic. Claims happen only at connection setup, so a spinlock is
// fine (the paper makes the same argument for global state, §3.2).
#pragma once

#include <atomic>
#include <vector>

#include "common/check.hpp"
#include "common/compiler.hpp"
#include "common/types.hpp"

namespace sprayer::nf {

class PortPool {
 public:
  PortPool(u16 lo, u16 hi) : lo_(lo), hi_(hi), used_(hi - lo + 1u, false) {
    SPRAYER_CHECK(lo > 0 && lo <= hi);
    cursor_ = 0;
  }

  /// Claim the first free port p (scanning from a rotating cursor) for
  /// which pred(p) holds. Returns 0 when none is available.
  template <typename Pred>
  [[nodiscard]] u16 claim_matching(Pred&& pred) {
    lock();
    const u32 n = static_cast<u32>(used_.size());
    for (u32 i = 0; i < n; ++i) {
      const u32 idx = (cursor_ + i) % n;
      if (used_[idx]) continue;
      const u16 port = static_cast<u16>(lo_ + idx);
      if (!pred(port)) continue;
      used_[idx] = true;
      claimed_.fetch_add(1, std::memory_order_relaxed);
      cursor_ = (idx + 1) % n;
      unlock();
      return port;
    }
    unlock();
    return 0;
  }

  /// Claim any free port. Returns 0 when exhausted.
  [[nodiscard]] u16 claim() {
    return claim_matching([](u16) { return true; });
  }

  void release(u16 port) {
    SPRAYER_CHECK_MSG(port >= lo_ && port <= hi_, "port outside pool range");
    lock();
    const u32 idx = static_cast<u32>(port - lo_);
    SPRAYER_CHECK_MSG(used_[idx], "releasing a port that is not claimed");
    used_[idx] = false;
    claimed_.fetch_sub(1, std::memory_order_relaxed);
    unlock();
  }

  [[nodiscard]] u32 size() const noexcept {
    return static_cast<u32>(used_.size());
  }
  // Mutations happen under the spinlock; the count is atomic only so that
  // observers (tests, the churn drill's quiesce poll) can read it from
  // other threads without tearing.
  [[nodiscard]] u32 claimed() const noexcept {
    return claimed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u32 available() const noexcept { return size() - claimed_; }

 private:
  void lock() noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  void unlock() noexcept { lock_.clear(std::memory_order_release); }

  u16 lo_;
  u16 hi_;
  std::vector<bool> used_;
  u32 cursor_ = 0;
  std::atomic<u32> claimed_{0};
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

}  // namespace sprayer::nf

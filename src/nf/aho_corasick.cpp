#include "nf/aho_corasick.hpp"

#include <deque>
#include <map>

#include "common/check.hpp"

namespace sprayer::nf {

AhoCorasick::AhoCorasick(const std::vector<std::string>& patterns) {
  // Phase 1: trie construction with sparse children.
  struct TrieNode {
    std::map<u8, u32> children;
    u32 fail = 0;
    u32 matches = 0;
  };
  std::vector<TrieNode> trie(1);
  for (const auto& pat : patterns) {
    SPRAYER_CHECK_MSG(!pat.empty(), "empty DPI pattern");
    u32 node = 0;
    for (const char ch : pat) {
      const u8 b = static_cast<u8>(ch);
      const auto it = trie[node].children.find(b);
      if (it != trie[node].children.end()) {
        node = it->second;
      } else {
        trie.push_back(TrieNode{});
        const u32 child = static_cast<u32>(trie.size() - 1);
        trie[node].children.emplace(b, child);
        node = child;
      }
    }
    ++trie[node].matches;
  }

  // Phase 2: BFS failure links + match-count propagation.
  std::deque<u32> queue;
  for (const auto& [b, child] : trie[0].children) {
    trie[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const u32 node = queue.front();
    queue.pop_front();
    trie[node].matches += trie[trie[node].fail].matches;
    for (const auto& [b, child] : trie[node].children) {
      // Follow failure links to find the longest proper suffix with b.
      u32 f = trie[node].fail;
      for (;;) {
        const auto it = trie[f].children.find(b);
        if (it != trie[f].children.end() && it->second != child) {
          trie[child].fail = it->second;
          break;
        }
        if (f == 0) {
          trie[child].fail = 0;
          break;
        }
        f = trie[f].fail;
      }
      queue.push_back(child);
    }
  }

  // Phase 3: dense goto table (failure links compiled away).
  num_states_ = static_cast<u32>(trie.size());
  transitions_.assign(static_cast<std::size_t>(num_states_) * 256, 0);
  match_counts_.resize(num_states_);
  // BFS again so parents' dense rows exist before children need them.
  std::deque<u32> order;
  order.push_back(0);
  std::vector<bool> seen(num_states_, false);
  seen[0] = true;
  while (!order.empty()) {
    const u32 node = order.front();
    order.pop_front();
    match_counts_[node] = trie[node].matches;
    for (u32 b = 0; b < 256; ++b) {
      const auto it = trie[node].children.find(static_cast<u8>(b));
      if (it != trie[node].children.end()) {
        transitions_[node * 256 + b] = it->second;
        if (!seen[it->second]) {
          seen[it->second] = true;
          order.push_back(it->second);
        }
      } else {
        transitions_[node * 256 + b] =
            node == 0 ? 0 : transitions_[trie[node].fail * 256 + b];
      }
    }
  }
}

}  // namespace sprayer::nf

// The paper's evaluation NF (§5): "creates a new entry in the flow table at
// every new connection. For every packet it receives, it retrieves the flow
// state, modifies the header, and busy loops for a given number of cycles."
//
// The busy-loop cycle count emulates NFs of different complexity; the paper
// sweeps it from 0 to 10,000 (the maximum among the NFs surveyed by ResQ).
#pragma once

#include <atomic>

#include "core/nf.hpp"
#include "net/checksum.hpp"

namespace sprayer::nf {

class SyntheticNf final : public core::INetworkFunction {
 public:
  explicit SyntheticNf(Cycles busy_cycles_per_packet = 0) noexcept
      : busy_(busy_cycles_per_packet) {}

  void init(core::NfInitConfig& cfg, u32 /*num_cores*/) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "synthetic";
  }

  [[nodiscard]] Cycles busy_cycles() const noexcept { return busy_; }
  [[nodiscard]] u64 lookup_misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    u64 tag;       // designated-core hash, written at connection setup
    u64 packets;   // written only by the designated core (conn packets)
  };

  /// The per-packet work: header modification (TTL decrement + incremental
  /// checksum fix) and the busy loop.
  void per_packet_work(net::Packet* pkt, core::NfContext& ctx);

  Cycles busy_;
  std::atomic<u64> misses_{0};  // shared across worker threads
};

}  // namespace sprayer::nf

// Aho–Corasick multi-pattern matcher — the automaton behind the DPI NF.
// Dense goto table (256 transitions per state) with failure links resolved
// at build time, so matching is one table load per byte.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sprayer::nf {

class AhoCorasick {
 public:
  explicit AhoCorasick(const std::vector<std::string>& patterns);

  /// Advance from `state` over one byte.
  [[nodiscard]] u32 next(u32 state, u8 byte) const noexcept {
    return transitions_[state * 256 + byte];
  }

  /// Number of patterns ending at (or reachable by failure from) `state`.
  [[nodiscard]] u32 matches_at(u32 state) const noexcept {
    return match_counts_[state];
  }

  /// Scan a buffer from `state`; adds pattern hits to `*hits` (may be null).
  [[nodiscard]] u32 scan(u32 state, std::span<const u8> data,
                         u64* hits) const noexcept {
    for (const u8 b : data) {
      state = next(state, b);
      if (hits != nullptr) *hits += matches_at(state);
    }
    return state;
  }

  [[nodiscard]] u32 num_states() const noexcept { return num_states_; }

 private:
  u32 num_states_ = 0;
  std::vector<u32> transitions_;   // num_states x 256
  std::vector<u32> match_counts_;  // per state
};

}  // namespace sprayer::nf

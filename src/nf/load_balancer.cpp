#include "nf/load_balancer.hpp"

#include <array>

#include "hash/designated.hpp"

namespace sprayer::nf {

LoadBalancerNf::LoadBalancerNf(LbConfig cfg) : cfg_(std::move(cfg)) {
  SPRAYER_CHECK_MSG(!cfg_.backends.empty(), "load balancer needs backends");
  SPRAYER_CHECK(cfg_.backends.size() <= kMaxBackends);
}

std::vector<i64> LoadBalancerNf::active_connections() const {
  std::vector<i64> totals(cfg_.backends.size(), 0);
  for (u32 c = 0; c < num_cores_ && c < kMaxCores; ++c) {
    for (std::size_t b = 0; b < totals.size(); ++b) {
      totals[b] += per_core_[c].delta[b];
    }
  }
  return totals;
}

void LoadBalancerNf::connection_packets(runtime::PacketBatch& batch,
                                        core::NfContext& ctx,
                                        core::BatchVerdicts& verdicts) {
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    const net::FiveTuple tuple = pkt->five_tuple();
    const net::FiveTuple key = tuple.canonical();
    net::TcpView tcp = pkt->tcp();

    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      if (!is_to_vip(tuple)) {
        m_not_vip_.add(ctx.core());
        verdicts.drop(i);
        continue;
      }
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e == nullptr) {
        // Fail-closed: no room to pin the connection, so drop the SYN
        // rather than spray it at an untracked backend.
        m_table_full_.add(ctx.core());
        verdicts.drop(i);
        continue;
      }
      if (!e->valid) {
        e->backend = static_cast<u16>(
            rr_next_.fetch_add(1, std::memory_order_relaxed) %
            cfg_.backends.size());
        e->valid = 1;
        m_assigned_.add(ctx.core());
        per_core_[ctx.core()].delta[e->backend] += 1;
      }
      pkt->eth().set_dst(cfg_.backends[e->backend].mac);
      continue;
    }

    auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
    if (e == nullptr || !e->valid) {
      m_no_state_.add(ctx.core());
      verdicts.drop(i);
      continue;
    }
    if (is_to_vip(tuple)) {
      pkt->eth().set_dst(cfg_.backends[e->backend].mac);
    }
    if (tcp.has(net::TcpFlags::kFin)) {
      // One bit per direction: a retransmitted FIN from the same side must
      // not count as the peer's half of the handshake.
      e->fin_seen |= direction_bit(tuple, key);
    }
    const bool close = tcp.has(net::TcpFlags::kRst) || e->fin_seen == 3;
    if (close) {
      per_core_[ctx.core()].delta[e->backend] -= 1;
      (void)ctx.flows().remove_local_flow(key);
    }
  }
}

void LoadBalancerNf::on_expire(const net::FiveTuple& key,
                               core::FlowTable::FlowHash hash,
                               core::NfContext& ctx) {
  // Re-fetch through the API (the sweep's entry pointer is not stable
  // across the candidate pass) so the backend delta is released exactly
  // once, by whoever actually removes the entry.
  auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
  if (e == nullptr || !e->valid) return;
  const u16 backend = e->backend;
  if (ctx.flows().remove_local_flow(key, hash)) {
    per_core_[ctx.core()].delta[backend] -= 1;
    m_expired_.add(ctx.core());
  }
}

void LoadBalancerNf::regular_packets(runtime::PacketBatch& batch,
                                     core::NfContext& ctx,
                                     core::BatchVerdicts& verdicts) {
  // Standalone / virtual-dispatch path: derive the per-batch metadata here
  // and run the same bulk pipeline the fused chain uses.
  core::BatchMeta meta;
  meta.build(batch);
  regular_packets(batch, meta, ctx, verdicts);
}

void LoadBalancerNf::regular_packets(runtime::PacketBatch& batch,
                                     core::BatchMeta& meta,
                                     core::NfContext& ctx,
                                     core::BatchVerdicts& verdicts) {
  // Bulk path: filter to VIP-bound TCP packets, then resolve every backend
  // assignment with one pipelined get_flows over the canonical keys (which
  // share the packets' memoized symmetric rx hashes).
  meta.ensure_canonical();
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  std::array<u16, runtime::kMaxBatchSize> idx;
  u32 n = 0;
  for (u32 i = 0; i < batch.size(); ++i) {
    if (!meta.is_tcp[i]) continue;
    const net::FiveTuple& tuple = meta.tuple[i];
    if (is_from_vip(tuple)) continue;  // DSR return path: pass through
    if (!is_to_vip(tuple)) {
      m_not_vip_.add(ctx.core());
      verdicts.drop(i);
      continue;
    }
    keys[n] = meta.canon[i];
    hashes[n] = meta.hash[i];
    idx[n] = static_cast<u16>(i);
    ++n;
  }
  if (n == 0) return;
  ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                        {entries.data(), n});
  for (u32 j = 0; j < n; ++j) {
    const auto* e = static_cast<const Entry*>(entries[j]);
    if (e == nullptr || !e->valid) {
      m_no_state_.add(ctx.core());
      verdicts.drop(idx[j]);
      continue;
    }
    batch[idx[j]]->eth().set_dst(cfg_.backends[e->backend].mac);
  }
}

}  // namespace sprayer::nf

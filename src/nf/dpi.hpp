// DPI — the NF the paper singles out as *incompatible* with spraying
// (Table 1: "Automata — per-flow — RW at every packet"; §7).
//
// Cross-packet pattern matching needs the automaton state of a flow to be
// advanced by every one of its packets, in order. Under per-flow RSS every
// packet reaches the designated core and this works; under spraying the
// per-flow state is unreachable (get_local_flow misses on foreign cores)
// and the match becomes per-packet only. The NF counts exactly how often
// that happens (state_unavailable), which the Table 1 bench uses to flag
// the incompatibility the paper describes.
#pragma once

#include <atomic>

#include "core/nf.hpp"
#include "nf/aho_corasick.hpp"

namespace sprayer::nf {

class DpiNf final : public core::INetworkFunction {
 public:
  explicit DpiNf(const std::vector<std::string>& patterns)
      : automaton_(patterns) {}

  void init(core::NfInitConfig& cfg, u32 /*num_cores*/) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;

  [[nodiscard]] const char* name() const noexcept override { return "dpi"; }

  [[nodiscard]] u64 pattern_hits() const noexcept { return hits_; }
  /// Packets whose per-flow automaton state was not reachable on the core
  /// that processed them — zero under RSS, large under spraying.
  [[nodiscard]] u64 state_unavailable() const noexcept {
    return state_unavailable_;
  }

 private:
  struct Entry {
    u32 state = 0;
    u8 valid = 0;
    u8 pad[3] = {};
  };
  static_assert(sizeof(Entry) == 8);

  void scan_with_state(net::Packet* pkt, core::NfContext& ctx);

  AhoCorasick automaton_;
  u64 hits_ = 0;
  u64 state_unavailable_ = 0;
};

}  // namespace sprayer::nf

// Source NAT — the paper's worked example (Figure 5), completed.
//
// On the first SYN of an outbound connection the NAT claims an external
// port and installs two flow entries on the designated core: one keyed by
// the original tuple (rewrite source on the way out) and one keyed by the
// translated return tuple (rewrite destination on the way back). Regular
// packets in either direction just get_flow() and patch headers with
// incremental checksum updates.
//
// A detail the paper's listing glosses over: the *translated* return flow
// must also hash to this designated core, or its connection packets (the
// server's FIN) and state reads would look elsewhere. We guarantee it by
// claiming a port whose reverse tuple maps back to the claiming core
// (expected #cores tries — see PortPool::claim_matching).
#pragma once

#include "core/nf.hpp"
#include "net/checksum.hpp"
#include "nf/port_pool.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::nf {

struct NatConfig {
  net::Ipv4Addr external_ip{192, 0, 2, 1};
  u16 port_lo = 10000;
  u16 port_hi = 60000;
  /// Middlebox port facing the private network.
  u8 inside_port = 0;
  /// TIME_WAIT: after both FINs, the session keeps translating (trailing
  /// ACKs, retransmitted FINs) for this long before the housekeeping sweep
  /// removes it and releases the port. 0 = remove immediately. Real NATs
  /// use minutes; simulated experiments run seconds.
  Time time_wait = 50 * kMillisecond;
};

class NatNf final : public core::INetworkFunction {
 public:
  explicit NatNf(NatConfig cfg = {})
      : cfg_(cfg), ports_(cfg.port_lo, cfg.port_hi) {}

  void init(core::NfInitConfig& init, u32 num_cores) override {
    init.flow_table_capacity = 1u << 16;
    init.flow_entry_size = sizeof(Entry);
    init.flow_idle_timeout = 120 * kSecond;  // idle sessions release ports
    auto& reg = tm_.attach(init.registry, num_cores);
    m_opened_ = reg.counter("nat.sessions_opened");
    m_closed_ = reg.counter("nat.sessions_closed");
    m_port_exhausted_ = reg.counter("nat.port_exhausted");
    m_unmatched_ = reg.counter("nat.unmatched_dropped");
    m_table_full_ = reg.counter("nat.table_full");
    m_expired_ = reg.counter("nat.sessions_expired");
    tm_.seal();
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;
  /// Fused-chain fast path: tuples and hashes come pre-extracted from the
  /// shared per-batch metadata instead of being re-derived per hop.
  void regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                       core::NfContext& ctx, core::BatchVerdicts& verdicts);
  /// Lifecycle hooks (the framework's bounded sweep replaces the old
  /// full-table housekeeping scan). A session expires when its TIME_WAIT
  /// deadline passes, or — for active sessions — when BOTH directions have
  /// been idle past the timeout. Only the rewrite-source (outbound) entry
  /// triggers expiry, so the port is released exactly once.
  [[nodiscard]] bool flow_expired(const net::FiveTuple& key, const void* entry,
                                  Time last_seen, Time idle_timeout,
                                  core::NfContext& ctx) override;
  /// Removes both directions of the expired session and returns its port.
  void on_expire(const net::FiveTuple& key, core::FlowTable::FlowHash hash,
                 core::NfContext& ctx) override;

  [[nodiscard]] const char* name() const noexcept override { return "nat"; }
  /// rewrite() changes the five-tuple, so the chain must recompute the
  /// memoized RSS hash of survivors after this hop.
  [[nodiscard]] bool rewrites_tuple() const noexcept override { return true; }

  /// Counter totals, summed across the per-core registry shards (metrics
  /// "nat.*" — connection events only, never the per-packet path). Returned
  /// by value: a loosely-consistent read while workers run, exact once
  /// they are idle.
  struct NatCounters {
    u64 sessions_opened = 0;
    u64 sessions_closed = 0;
    u64 port_exhausted = 0;
    u64 unmatched_dropped = 0;
    u64 table_full = 0;        // SYNs refused because the table had no room
    u64 sessions_expired = 0;  // reclaimed by the sweep (TIME_WAIT or idle)
  };
  [[nodiscard]] NatCounters counters() const noexcept {
    return NatCounters{tm_.total(m_opened_),         tm_.total(m_closed_),
                       tm_.total(m_port_exhausted_), tm_.total(m_unmatched_),
                       tm_.total(m_table_full_),     tm_.total(m_expired_)};
  }
  [[nodiscard]] const PortPool& port_pool() const noexcept { return ports_; }

 private:
  enum class SessionState : u8 { kInvalid = 0, kActive = 1, kTimeWait = 2 };

  struct Entry {
    u32 new_ip = 0;       // host order
    u16 new_port = 0;
    u8 rewrite_dst = 0;   // 0: rewrite source (outbound), 1: rewrite dest
    SessionState state = SessionState::kInvalid;
    u8 fin_seen = 0;      // this direction saw a FIN
    u8 pad[7] = {};
    Time expires = 0;     // TIME_WAIT deadline (valid in kTimeWait)
  };
  static_assert(sizeof(Entry) == 24);

  /// The packet's tuple after translation through `e`.
  [[nodiscard]] static net::FiveTuple translated_tuple(
      const net::FiveTuple& t, const Entry& e) noexcept;
  /// The key of the paired (other-direction) entry.
  [[nodiscard]] static net::FiveTuple pair_key(const net::FiveTuple& t,
                                               const Entry& e) noexcept;

  static void rewrite(net::Packet* pkt, const Entry& e) noexcept;

  /// Handle SYN of a new outbound session; returns the entry or nullptr.
  Entry* open_session(const net::FiveTuple& tuple, core::NfContext& ctx);
  /// Graceful close: both directions enter TIME_WAIT (still translating);
  /// the housekeeping sweep removes them at the deadline.
  void close_session(const net::FiveTuple& tuple, Entry& e,
                     core::NfContext& ctx);
  /// Immediate teardown (RST, or time_wait == 0).
  void abort_session(const net::FiveTuple& tuple, Entry& e,
                     core::NfContext& ctx);
  /// External port of the session `tuple`/`e` belongs to.
  [[nodiscard]] static u16 external_port(const net::FiveTuple& t,
                                         const Entry& e) noexcept {
    return e.rewrite_dst ? t.dst_port : e.new_port;
  }

  NatConfig cfg_;
  PortPool ports_;
  telemetry::RegistrySlot tm_;
  telemetry::Counter m_opened_;
  telemetry::Counter m_closed_;
  telemetry::Counter m_port_exhausted_;
  telemetry::Counter m_unmatched_;
  telemetry::Counter m_table_full_;
  telemetry::Counter m_expired_;
};

}  // namespace sprayer::nf

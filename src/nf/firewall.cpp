#include "nf/firewall.hpp"

namespace sprayer::nf {

void FirewallNf::connection_packets(runtime::PacketBatch& batch,
                                    core::NfContext& ctx,
                                    core::BatchVerdicts& verdicts) {
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    const net::FiveTuple tuple = pkt->five_tuple();
    const net::FiveTuple key = tuple.canonical();
    net::TcpView tcp = pkt->tcp();

    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      if (!acl_.allows(tuple)) {
        ++counters_.rejected_by_acl;
        verdicts.drop(i);
        continue;
      }
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e == nullptr) {  // table full: fail closed
        verdicts.drop(i);
        continue;
      }
      if (!e->valid) {
        e->valid = 1;
        e->established_at = ctx.now();
        ++counters_.admitted;
      }
      continue;
    }

    auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
    if (e == nullptr || !e->valid) {
      ++counters_.dropped_no_state;
      verdicts.drop(i);
      continue;
    }
    if (tcp.has(net::TcpFlags::kRst)) {
      (void)ctx.flows().remove_local_flow(key);
      ++counters_.closed;
    } else if (tcp.has(net::TcpFlags::kFin)) {
      if (++e->fin_count >= 2) {
        (void)ctx.flows().remove_local_flow(key);
        ++counters_.closed;
      }
    }
  }
}

void FirewallNf::regular_packets(runtime::PacketBatch& batch,
                                 core::NfContext& ctx,
                                 core::BatchVerdicts& verdicts) {
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    if (!pkt->is_tcp()) continue;  // non-TCP passes (out of scope here)
    const auto* e = static_cast<const Entry*>(
        ctx.flows().get_flow(pkt->five_tuple().canonical()));
    if (e == nullptr || !e->valid) {
      ++counters_.dropped_no_state;
      verdicts.drop(i);
    }
  }
}

}  // namespace sprayer::nf

#include "nf/firewall.hpp"

#include <array>

#include "hash/designated.hpp"

namespace sprayer::nf {

void FirewallNf::connection_packets(runtime::PacketBatch& batch,
                                    core::NfContext& ctx,
                                    core::BatchVerdicts& verdicts) {
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    const net::FiveTuple tuple = pkt->five_tuple();
    const net::FiveTuple key = tuple.canonical();
    net::TcpView tcp = pkt->tcp();

    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      if (!acl_.allows(tuple)) {
        m_rejected_.add(ctx.core());
        verdicts.drop(i);
        continue;
      }
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e == nullptr) {  // table full: fail closed
        m_table_full_.add(ctx.core());
        verdicts.drop(i);
        continue;
      }
      if (!e->valid) {
        e->valid = 1;
        e->established_at = ctx.now();
        m_admitted_.add(ctx.core());
      }
      continue;
    }

    auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key));
    if (e == nullptr || !e->valid) {
      m_no_state_.add(ctx.core());
      verdicts.drop(i);
      continue;
    }
    if (tcp.has(net::TcpFlags::kRst)) {
      (void)ctx.flows().remove_local_flow(key);
      m_closed_.add(ctx.core());
    } else if (tcp.has(net::TcpFlags::kFin)) {
      // One bit per direction: retransmitted FINs from one side never add
      // up to a full close.
      e->fin_seen |= direction_bit(tuple, key);
      if (e->fin_seen == 3) {
        (void)ctx.flows().remove_local_flow(key);
        m_closed_.add(ctx.core());
      }
    }
  }
}

void FirewallNf::regular_packets(runtime::PacketBatch& batch,
                                 core::NfContext& ctx,
                                 core::BatchVerdicts& verdicts) {
  // Standalone / virtual-dispatch path: derive the per-batch metadata here
  // and run the same bulk pipeline the fused chain uses.
  core::BatchMeta meta;
  meta.build(batch);
  regular_packets(batch, meta, ctx, verdicts);
}

void FirewallNf::regular_packets(runtime::PacketBatch& batch,
                                 core::BatchMeta& meta, core::NfContext& ctx,
                                 core::BatchVerdicts& verdicts) {
  // Bulk path: canonical keys share the packets' memoized symmetric rx
  // hashes, so the whole batch resolves with one pipelined get_flows.
  meta.ensure_canonical();
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  std::array<u16, runtime::kMaxBatchSize> idx;
  u32 n = 0;
  for (u32 i = 0; i < batch.size(); ++i) {
    if (!meta.is_tcp[i]) continue;  // non-TCP passes (out of scope here)
    keys[n] = meta.canon[i];
    hashes[n] = meta.hash[i];
    idx[n] = static_cast<u16>(i);
    ++n;
  }
  if (n == 0) return;
  ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                        {entries.data(), n});
  for (u32 j = 0; j < n; ++j) {
    const auto* e = static_cast<const Entry*>(entries[j]);
    if (e == nullptr || !e->valid) {
      m_no_state_.add(ctx.core());
      verdicts.drop(idx[j]);
    }
  }
}

}  // namespace sprayer::nf

// Access-control list used by the stateful firewall: ordered prefix/range
// rules with first-match semantics and a default action.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "net/five_tuple.hpp"

namespace sprayer::nf {

struct AclRule {
  net::Ipv4Addr src_net{};
  u8 src_prefix_len = 0;  // 0 = any
  net::Ipv4Addr dst_net{};
  u8 dst_prefix_len = 0;
  u16 dst_port_lo = 0;    // 0/0 = any
  u16 dst_port_hi = 0;
  u8 protocol = 0;        // 0 = any
  bool allow = true;

  [[nodiscard]] bool matches(const net::FiveTuple& t) const noexcept {
    auto prefix_match = [](net::Ipv4Addr addr, net::Ipv4Addr nw,
                           u8 len) noexcept {
      if (len == 0) return true;
      const u32 mask = len >= 32 ? ~0u : ~0u << (32 - len);
      return (addr.host_order() & mask) == (nw.host_order() & mask);
    };
    if (!prefix_match(t.src_ip, src_net, src_prefix_len)) return false;
    if (!prefix_match(t.dst_ip, dst_net, dst_prefix_len)) return false;
    if (dst_port_lo != 0 || dst_port_hi != 0) {
      if (t.dst_port < dst_port_lo || t.dst_port > dst_port_hi) return false;
    }
    if (protocol != 0 && t.protocol != protocol) return false;
    return true;
  }
};

class Acl {
 public:
  explicit Acl(bool default_allow = false) : default_allow_(default_allow) {}

  void add_rule(const AclRule& rule) { rules_.push_back(rule); }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }

  /// First-match evaluation.
  [[nodiscard]] bool allows(const net::FiveTuple& t) const noexcept {
    for (const auto& r : rules_) {
      if (r.matches(t)) return r.allow;
    }
    return default_allow_;
  }

 private:
  std::vector<AclRule> rules_;
  bool default_allow_;
};

}  // namespace sprayer::nf

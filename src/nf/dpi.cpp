#include "nf/dpi.hpp"

namespace sprayer::nf {

void DpiNf::scan_with_state(net::Packet* pkt, core::NfContext& ctx) {
  if (!pkt->is_tcp()) return;
  const u32 payload_len = pkt->l4_payload_len();
  if (payload_len == 0) return;
  const u8* payload = pkt->l4_bytes() + pkt->tcp().header_len();

  // Per-packet RW on per-flow state: only possible where the state lives.
  auto* e = static_cast<Entry*>(
      ctx.flows().get_local_flow(pkt->five_tuple().canonical()));
  if (e != nullptr && e->valid) {
    e->state = automaton_.scan(
        e->state, std::span<const u8>{payload, payload_len}, &hits_);
  } else {
    // The flow's automaton lives on another core (spraying) or the flow is
    // unknown: fall back to stateless per-packet matching.
    ++state_unavailable_;
    (void)automaton_.scan(0, std::span<const u8>{payload, payload_len},
                          &hits_);
  }
}

void DpiNf::connection_packets(runtime::PacketBatch& batch,
                               core::NfContext& ctx,
                               core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    const net::FiveTuple key = pkt->five_tuple().canonical();
    net::TcpView tcp = pkt->tcp();
    if (tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck)) {
      auto* e = static_cast<Entry*>(ctx.flows().insert_local_flow(key));
      if (e != nullptr) e->valid = 1;
    } else if (tcp.has(net::TcpFlags::kRst) ||
               tcp.has(net::TcpFlags::kFin)) {
      (void)ctx.flows().remove_local_flow(key);
    }
    scan_with_state(pkt, ctx);
  }
}

void DpiNf::regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                            core::BatchVerdicts& /*verdicts*/) {
  for (net::Packet* pkt : batch) {
    scan_with_state(pkt, ctx);
  }
}

}  // namespace sprayer::nf

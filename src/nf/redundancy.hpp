// Redundancy elimination (paper Table 1: "Packet cache — Global — RW at
// every packet").
//
// The classic RE middlebox fingerprints payloads and replaces repeats with
// references. Here the cache is a fixed-size fingerprint store sharded
// into per-core-padded atomic slots: every packet reads and writes global
// state — the pattern the paper contrasts with per-flow state ("not
// specific to Sprayer; traditional approaches must also deal with shared
// global state"). The NF is stateless in Sprayer's per-flow sense, so it
// sets the stateless flag and receives everything in regular_packets().
#pragma once

#include <atomic>
#include <memory>

#include "core/nf.hpp"
#include "hash/crc32c.hpp"

namespace sprayer::nf {

class RedundancyNf final : public core::INetworkFunction {
 public:
  /// `cache_entries` must be a power of two.
  explicit RedundancyNf(u32 cache_entries = 1u << 16)
      : mask_(cache_entries - 1),
        cache_(std::make_unique<std::atomic<u64>[]>(cache_entries)) {
    SPRAYER_CHECK_MSG((cache_entries & (cache_entries - 1)) == 0,
                      "cache size must be a power of two");
  }

  void init(core::NfInitConfig& cfg, u32 /*num_cores*/) override {
    cfg.stateless = true;  // no per-flow state: no redirection needed
  }

  void connection_packets(runtime::PacketBatch&, core::NfContext&,
                          core::BatchVerdicts&) override {
    // Unreachable for a stateless NF (everything goes to regular_packets).
  }

  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& /*verdicts*/) override {
    for (net::Packet* pkt : batch) {
      if (!pkt->is_tcp() && !pkt->is_udp()) continue;
      const u32 payload_len = pkt->l4_payload_len();
      if (payload_len == 0) continue;
      const u32 hdr = pkt->is_tcp() ? pkt->tcp().header_len()
                                    : net::UdpView::kSize;
      const u8* payload = pkt->l4_bytes() + hdr;

      // Fingerprint the payload; the cache is global, read+written per
      // packet (relaxed atomics: a stale read only costs a missed match).
      const u32 fp32 =
          hash::crc32c(std::span<const u8>{payload, payload_len});
      const u64 fp = (static_cast<u64>(fp32) << 32) | payload_len;
      std::atomic<u64>& slot = cache_[fp32 & mask_];
      ctx.consume_cycles(kCacheAccessCycles);
      if (slot.load(std::memory_order_relaxed) == fp) {
        bytes_saved_.fetch_add(payload_len, std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        slot.store(fp, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "redundancy-elimination";
  }

  [[nodiscard]] u64 hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 bytes_saved() const noexcept {
    return bytes_saved_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr Cycles kCacheAccessCycles = 120;  // fingerprint + slot

  u32 mask_;
  std::unique_ptr<std::atomic<u64>[]> cache_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> bytes_saved_{0};
};

}  // namespace sprayer::nf

#include "nf/nat.hpp"

#include <array>

#include "hash/designated.hpp"

namespace sprayer::nf {

net::FiveTuple NatNf::translated_tuple(const net::FiveTuple& t,
                                       const Entry& e) noexcept {
  net::FiveTuple out = t;
  if (e.rewrite_dst) {
    out.dst_ip = net::Ipv4Addr{e.new_ip};
    out.dst_port = e.new_port;
  } else {
    out.src_ip = net::Ipv4Addr{e.new_ip};
    out.src_port = e.new_port;
  }
  return out;
}

net::FiveTuple NatNf::pair_key(const net::FiveTuple& t,
                               const Entry& e) noexcept {
  return translated_tuple(t, e).reversed();
}

void NatNf::rewrite(net::Packet* pkt, const Entry& e) noexcept {
  net::Ipv4View ip = pkt->ipv4();
  net::TcpView tcp = pkt->tcp();
  const u32 old_ip = e.rewrite_dst ? ip.dst().host_order()
                                   : ip.src().host_order();
  const u16 old_port = e.rewrite_dst ? tcp.dst_port() : tcp.src_port();

  if (e.rewrite_dst) {
    ip.set_dst(net::Ipv4Addr{e.new_ip});
    tcp.set_dst_port(e.new_port);
  } else {
    ip.set_src(net::Ipv4Addr{e.new_ip});
    tcp.set_src_port(e.new_port);
  }
  // Incremental checksum updates (RFC 1624): the IP header checksum covers
  // the address; the TCP checksum covers the pseudo-header address and the
  // port.
  ip.set_checksum(net::checksum_update32(ip.checksum(), old_ip, e.new_ip));
  u16 tcks = net::checksum_update32(tcp.checksum(), old_ip, e.new_ip);
  tcks = net::checksum_update16(tcks, old_port, e.new_port);
  tcp.set_checksum(tcks);
  // The tuple changed, so the memoized RSS hash no longer matches the
  // headers; downstream consumers recompute it lazily (or the chain
  // refreshes it eagerly once after this hop).
  pkt->invalidate_flow_hash();
}

NatNf::Entry* NatNf::open_session(const net::FiveTuple& tuple,
                                  core::NfContext& ctx) {
  auto& flows = ctx.flows();
  // Pick an external port whose return flow maps back to the forward
  // flow's *designated* core (one shared claim rule — see
  // claim_port_for_designated). Under writing partition and replication
  // this handler already runs there, so the target equals ctx.core(); under
  // shared-locked it runs on the arrival core, and anchoring the claim to
  // the designated core keeps the chosen port — and hence every translated
  // byte — identical across strategies.
  net::FiveTuple probe = tuple;
  probe.src_ip = cfg_.external_ip;
  const u16 port = core::claim_port_for_designated(
      ports_, probe, flows, flows.designated_core(tuple));
  if (port == 0) {
    m_port_exhausted_.add(ctx.core());
    return nullptr;
  }

  auto* fwd = static_cast<Entry*>(flows.insert_local_flow(tuple));
  if (fwd == nullptr) {
    ports_.release(port);
    m_table_full_.add(ctx.core());
    return nullptr;
  }
  fwd->new_ip = cfg_.external_ip.host_order();
  fwd->new_port = port;
  fwd->rewrite_dst = 0;
  fwd->state = SessionState::kActive;
  fwd->fin_seen = 0;

  // "We also include the other side" (Fig. 5 lines 22–25): the return flow.
  const net::FiveTuple rev = pair_key(tuple, *fwd);
  auto* bwd = static_cast<Entry*>(flows.insert_local_flow(rev));
  if (bwd == nullptr) {
    (void)flows.remove_local_flow(tuple);
    ports_.release(port);
    m_table_full_.add(ctx.core());
    return nullptr;
  }
  bwd->new_ip = tuple.src_ip.host_order();
  bwd->new_port = tuple.src_port;
  bwd->rewrite_dst = 1;
  bwd->state = SessionState::kActive;
  bwd->fin_seen = 0;

  m_opened_.add(ctx.core());
  return fwd;
}

void NatNf::close_session(const net::FiveTuple& tuple, Entry& e,
                          core::NfContext& ctx) {
  if (cfg_.time_wait == 0) {
    abort_session(tuple, e, ctx);
    return;
  }
  auto* pair =
      static_cast<Entry*>(ctx.flows().get_local_flow(pair_key(tuple, e)));
  const Time deadline = ctx.now() + cfg_.time_wait;
  e.state = SessionState::kTimeWait;
  e.expires = deadline;
  if (pair != nullptr) {
    pair->state = SessionState::kTimeWait;
    pair->expires = deadline;
  }
  m_closed_.add(ctx.core());
}

void NatNf::abort_session(const net::FiveTuple& tuple, Entry& e,
                          core::NfContext& ctx) {
  const u16 port = external_port(tuple, e);
  const net::FiveTuple pair = pair_key(tuple, e);
  (void)ctx.flows().remove_local_flow(tuple);
  (void)ctx.flows().remove_local_flow(pair);
  ports_.release(port);
  m_closed_.add(ctx.core());
}

bool NatNf::flow_expired(const net::FiveTuple& key, const void* entry,
                         Time last_seen, Time idle_timeout,
                         core::NfContext& ctx) {
  // Only the rewrite-source (outbound) entry drives expiry: its on_expire
  // removes both directions and frees the port exactly once. The paired
  // return entry rides along and never expires on its own.
  const auto* e = static_cast<const Entry*>(entry);
  if (e->rewrite_dst != 0) return false;
  if (e->state == SessionState::kTimeWait) {
    return e->expires <= ctx.now();
  }
  if (e->state != SessionState::kActive || idle_timeout == 0) return false;
  const Time now = ctx.now();
  if (last_seen + idle_timeout > now) return false;
  // Active sessions expire only when BOTH directions are idle: return
  // traffic refreshes the pair's stamp, not ours. Non-touching read of the
  // pair's stamp straight off the local table.
  const void* pair = ctx.flows().local().find_local(pair_key(key, *e));
  return pair == nullptr ||
         core::FlowTable::last_seen(pair) + idle_timeout <= now;
}

void NatNf::on_expire(const net::FiveTuple& key,
                      core::FlowTable::FlowHash hash, core::NfContext& ctx) {
  // Re-fetch through the API: the sweep's candidate pass ended before this
  // call, and an earlier expiry in the same batch may already have removed
  // this session (it was its pair).
  auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(key, hash));
  if (e == nullptr || e->state == SessionState::kInvalid) return;
  const bool was_active = e->state == SessionState::kActive;
  const u16 port = external_port(key, *e);
  const net::FiveTuple pair = pair_key(key, *e);
  (void)ctx.flows().remove_local_flow(key, hash);
  (void)ctx.flows().remove_local_flow(pair);
  ports_.release(port);
  m_expired_.add(ctx.core());
  // Graceful closes were already counted by close_session; an idle-aged
  // active session is a close nobody announced.
  if (was_active) m_closed_.add(ctx.core());
}

void NatNf::connection_packets(runtime::PacketBatch& batch,
                               core::NfContext& ctx,
                               core::BatchVerdicts& verdicts) {
  for (u32 i = 0; i < batch.size(); ++i) {
    net::Packet* pkt = batch[i];
    const net::FiveTuple tuple = pkt->five_tuple();
    net::TcpView tcp = pkt->tcp();

    auto* e = static_cast<Entry*>(ctx.flows().get_local_flow(tuple));
    if (e == nullptr || e->state == SessionState::kInvalid) {
      const bool bare_syn =
          tcp.has(net::TcpFlags::kSyn) && !tcp.has(net::TcpFlags::kAck);
      if (bare_syn && pkt->ingress_port == cfg_.inside_port) {
        e = open_session(tuple, ctx);
      }
      if (e == nullptr) {
        // Unsolicited inbound connection attempt, or pool exhausted.
        m_unmatched_.add(ctx.core());
        verdicts.drop(i);
        continue;
      }
    } else if (e->state == SessionState::kTimeWait &&
               tcp.has(net::TcpFlags::kSyn) &&
               !tcp.has(net::TcpFlags::kAck) &&
               pkt->ingress_port == cfg_.inside_port) {
      // Port reuse: a new connection on a TIME_WAIT tuple revives the
      // session (same translation, fresh state).
      auto* pair = static_cast<Entry*>(
          ctx.flows().get_local_flow(pair_key(tuple, *e)));
      e->state = SessionState::kActive;
      e->fin_seen = 0;
      if (pair != nullptr) {
        pair->state = SessionState::kActive;
        pair->fin_seen = 0;
      }
      m_opened_.add(ctx.core());
    }

    if (tcp.has(net::TcpFlags::kRst)) {
      rewrite(pkt, *e);
      if (e->state == SessionState::kActive) {
        abort_session(tuple, *e, ctx);
      }
      continue;
    }
    if (tcp.has(net::TcpFlags::kFin)) {
      auto* pair =
          static_cast<Entry*>(ctx.flows().get_local_flow(pair_key(tuple, *e)));
      rewrite(pkt, *e);
      if (e->state == SessionState::kActive) {
        if (pair != nullptr && pair->fin_seen) {
          close_session(tuple, *e, ctx);  // both directions closed
        } else {
          e->fin_seen = 1;
        }
      }
      continue;
    }
    rewrite(pkt, *e);
  }
}

void NatNf::regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                            core::BatchVerdicts& verdicts) {
  // Standalone / virtual-dispatch path: derive the per-batch metadata here
  // and run the same bulk pipeline the fused chain uses.
  core::BatchMeta meta;
  meta.build(batch);
  regular_packets(batch, meta, ctx, verdicts);
}

void NatNf::regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                            core::NfContext& ctx,
                            core::BatchVerdicts& verdicts) {
  // Bulk path: gather each TCP packet's tuple and memoized rx hash, resolve
  // all translations with one pipelined get_flows, then apply rewrites.
  std::array<net::FiveTuple, runtime::kMaxBatchSize> keys;
  std::array<core::FlowStateApi::FlowHash, runtime::kMaxBatchSize> hashes;
  std::array<const void*, runtime::kMaxBatchSize> entries;
  std::array<u16, runtime::kMaxBatchSize> idx;
  u32 n = 0;
  for (u32 i = 0; i < batch.size(); ++i) {
    if (!meta.is_tcp[i]) continue;  // this NAT translates TCP only (§4)
    keys[n] = meta.tuple[i];
    hashes[n] = meta.hash[i];
    idx[n] = static_cast<u16>(i);
    ++n;
  }
  if (n == 0) return;
  ctx.flows().get_flows({keys.data(), n}, {hashes.data(), n},
                        {entries.data(), n});
  u64 unmatched = 0;
  for (u32 j = 0; j < n; ++j) {
    const auto* e = static_cast<const Entry*>(entries[j]);
    if (e == nullptr || e->state == SessionState::kInvalid) {
      ++unmatched;
      verdicts.drop(idx[j]);
      continue;
    }
    // TIME_WAIT sessions still translate: the close handshake's trailing
    // ACKs must reach their endpoints.
    rewrite(batch[idx[j]], *e);
  }
  if (unmatched > 0) {
    m_unmatched_.add(ctx.core(), unmatched);
  }
}

}  // namespace sprayer::nf

// Traffic monitor (paper Table 1: "Connection context — per-flow — RW at
// flow events; Statistics — global — RW at every packet").
//
// Per-packet statistics use the loose-consistency pattern the paper
// recommends (§3.4, citing the Bro/Zeek cluster): every core counts into
// its own cache-line-padded slots, and aggregate() folds them on demand.
// Per-connection context is written only at connection events, on the
// designated core.
#pragma once

#include <array>

#include "common/units.hpp"
#include "core/nf.hpp"

namespace sprayer::nf {

class MonitorNf final : public core::INetworkFunction {
 public:
  static constexpr u32 kMaxCores = 64;

  /// `close_on_single_fin`: treat one FIN as end-of-connection — for
  /// unidirectional feeds (e.g. trace replay) where the reverse direction
  /// is not observed.
  explicit MonitorNf(bool close_on_single_fin = false) noexcept
      : close_on_single_fin_(close_on_single_fin) {}

  void init(core::NfInitConfig& cfg, u32 num_cores) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
    num_cores_ = num_cores;
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "monitor";
  }

  struct Totals {
    u64 packets = 0;
    u64 bytes = 0;
    u64 tcp_packets = 0;
    u64 udp_packets = 0;
    u64 other_packets = 0;
    u64 tracked_packets = 0;  // TCP packets whose connection is in the table
    u64 connections_opened = 0;
    u64 connections_closed = 0;
  };
  /// Loosely-consistent aggregate across all cores.
  [[nodiscard]] Totals aggregate() const;

 private:
  struct Entry {
    Time first_seen = 0;
    u8 valid = 0;
    u8 fin_count = 0;
    u8 pad[6] = {};
  };
  static_assert(sizeof(Entry) == 16);

  struct alignas(kCacheLineSize) CoreSlot {
    Totals t;
  };

  void count_packet(net::Packet* pkt, CoreId core) noexcept {
    Totals& t = per_core_[core].t;
    ++t.packets;
    t.bytes += pkt->len();
    if (pkt->is_tcp()) {
      ++t.tcp_packets;
    } else if (pkt->is_udp()) {
      ++t.udp_packets;
    } else {
      ++t.other_packets;
    }
  }

  bool close_on_single_fin_;
  u32 num_cores_ = 0;
  std::array<CoreSlot, kMaxCores> per_core_{};
};

}  // namespace sprayer::nf

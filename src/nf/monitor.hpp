// Traffic monitor (paper Table 1: "Connection context — per-flow — RW at
// flow events; Statistics — global — RW at every packet").
//
// Per-packet statistics use the loose-consistency pattern the paper
// recommends (§3.4, citing the Bro/Zeek cluster): every core counts into
// its own cache-line-padded slots, and aggregate() folds them on demand.
// Per-connection context is written only at connection events, on the
// designated core.
#pragma once

#include "common/units.hpp"
#include "core/nf.hpp"
#include "telemetry/metrics.hpp"

namespace sprayer::nf {

class MonitorNf final : public core::INetworkFunction {
 public:
  static constexpr u32 kMaxCores = 64;

  /// `close_on_single_fin`: treat one FIN as end-of-connection — for
  /// unidirectional feeds (e.g. trace replay) where the reverse direction
  /// is not observed.
  explicit MonitorNf(bool close_on_single_fin = false) noexcept
      : close_on_single_fin_(close_on_single_fin) {}

  void init(core::NfInitConfig& cfg, u32 num_cores) override {
    cfg.flow_table_capacity = 1u << 16;
    cfg.flow_entry_size = sizeof(Entry);
    cfg.flow_idle_timeout = 60 * kSecond;  // idle connections age out
    num_cores_ = num_cores;
    auto& reg = tm_.attach(cfg.registry, num_cores);
    m_packets_ = reg.counter("monitor.packets");
    m_bytes_ = reg.counter("monitor.bytes");
    m_tcp_ = reg.counter("monitor.tcp_packets");
    m_udp_ = reg.counter("monitor.udp_packets");
    m_other_ = reg.counter("monitor.other_packets");
    m_tracked_ = reg.counter("monitor.tracked_packets");
    m_opened_ = reg.counter("monitor.connections_opened");
    m_closed_ = reg.counter("monitor.connections_closed");
    m_table_full_ = reg.counter("monitor.table_full");
    m_expired_ = reg.counter("monitor.connections_expired");
    tm_.seal();
  }

  void connection_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                          core::BatchVerdicts& verdicts) override;
  void regular_packets(runtime::PacketBatch& batch, core::NfContext& ctx,
                       core::BatchVerdicts& verdicts) override;
  /// Fused-chain fast path: canonical keys and hashes come pre-extracted
  /// from the shared per-batch metadata.
  void regular_packets(runtime::PacketBatch& batch, core::BatchMeta& meta,
                       core::NfContext& ctx, core::BatchVerdicts& verdicts);
  void on_expire(const net::FiveTuple& key, core::FlowTable::FlowHash hash,
                 core::NfContext& ctx) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "monitor";
  }

  struct Totals {
    u64 packets = 0;
    u64 bytes = 0;
    u64 tcp_packets = 0;
    u64 udp_packets = 0;
    u64 other_packets = 0;
    u64 tracked_packets = 0;  // TCP packets whose connection is in the table
    u64 connections_opened = 0;
    u64 connections_closed = 0;
    u64 connections_expired = 0;  // closed by idle aging (subset of closed)
    u64 table_full = 0;           // SYNs the table had no room to track
  };
  /// Loosely-consistent aggregate across all cores (metrics "monitor.*",
  /// one registry shard per core — the same §3.4 statistics pattern as
  /// before, now hosted by the telemetry registry).
  [[nodiscard]] Totals aggregate() const;

  /// The registry hosting this NF's metrics (framework-shared or private
  /// fallback); null before init(). For snapshot/JSON export by embedders
  /// whose executor has no registry of its own (e.g. the simulator).
  [[nodiscard]] const telemetry::MetricsRegistry* metrics_registry()
      const noexcept {
    return tm_.get();
  }

 private:
  struct Entry {
    Time first_seen = 0;
    u8 valid = 0;
    /// Per-direction FIN bits (bit 0: packet traveled in the canonical
    /// direction, bit 1: reverse) — a retransmitted FIN from one side sets
    /// the same bit again instead of double-counting toward teardown.
    u8 fin_seen = 0;
    u8 pad[6] = {};
  };
  static_assert(sizeof(Entry) == 16);

  /// Which fin_seen bit a packet's arrival direction maps to.
  [[nodiscard]] static u8 direction_bit(const net::FiveTuple& pkt_tuple,
                                        const net::FiveTuple& canon) noexcept {
    return pkt_tuple == canon ? 1 : 2;
  }

  void count_packet(net::Packet* pkt, CoreId core) noexcept {
    m_packets_.add(core);
    m_bytes_.add(core, pkt->len());
    if (pkt->is_tcp()) {
      m_tcp_.add(core);
    } else if (pkt->is_udp()) {
      m_udp_.add(core);
    } else {
      m_other_.add(core);
    }
  }

  bool close_on_single_fin_;
  u32 num_cores_ = 0;
  telemetry::RegistrySlot tm_;
  telemetry::Counter m_packets_;
  telemetry::Counter m_bytes_;
  telemetry::Counter m_tcp_;
  telemetry::Counter m_udp_;
  telemetry::Counter m_other_;
  telemetry::Counter m_tracked_;
  telemetry::Counter m_opened_;
  telemetry::Counter m_closed_;
  telemetry::Counter m_table_full_;
  telemetry::Counter m_expired_;
};

}  // namespace sprayer::nf

#include "state/sync.hpp"

namespace sprayer::state {

namespace {

constexpr std::size_t kKeyBytes = sizeof(net::FiveTuple);

[[nodiscard]] std::size_t op_wire_size(u16 entry_len) noexcept {
  return sizeof(SyncOpHeader) + kKeyBytes + entry_len;
}

}  // namespace

std::span<const std::span<const u8>> SyncRuntime::serialize(u32 max_bytes) {
  wire_.clear();
  chunks_.clear();
  // (start, end) offsets per closed chunk; turned into spans only after
  // wire_ stops reallocating.
  std::vector<std::pair<std::size_t, std::size_t>> bounds;

  std::size_t chunk_start = 0;
  std::size_t chunk_ops = 0;
  auto open_chunk = [&] {
    chunk_start = wire_.size();
    chunk_ops = 0;
    SyncFrameHeader hdr;
    hdr.src_core = static_cast<u8>(core_);
    wire_.resize(wire_.size() + sizeof(hdr));
    std::memcpy(wire_.data() + chunk_start, &hdr, sizeof(hdr));
  };
  auto close_chunk = [&] {
    if (chunk_ops == 0) {
      wire_.resize(chunk_start);  // drop the empty header
      return;
    }
    auto* hdr = reinterpret_cast<SyncFrameHeader*>(wire_.data() + chunk_start);
    hdr->op_count = static_cast<u16>(chunk_ops);
    bounds.emplace_back(chunk_start, wire_.size());
  };

  open_chunk();
  for (const ReplOp& op : log_.ops()) {
    SyncOpHeader oh;
    oh.kind = static_cast<u8>(op.kind);
    oh.hop = op.hop;
    oh.hash = op.hash;

    const u8* entry = nullptr;
    if (op.kind == ReplOpKind::kUpsert) {
      SPRAYER_DCHECK(op.hop < replicas_.size());
      core::FlowTable& t = *replicas_[op.hop];
      // Current bytes, read at harvest time: a later-removed entry simply
      // skips its stale upsert (the following remove op still ships).
      entry = static_cast<const u8*>(t.find_local(op.key, op.hash));
      if (entry == nullptr) continue;
      oh.entry_len = static_cast<u16>(t.entry_size());
    }

    const std::size_t need = op_wire_size(oh.entry_len);
    SPRAYER_CHECK_MSG(sizeof(SyncFrameHeader) + need <= max_bytes,
                      "sync_frame_bytes too small for one op");
    if (wire_.size() - chunk_start + need > max_bytes) {
      close_chunk();
      open_chunk();
    }

    const std::size_t at = wire_.size();
    wire_.resize(at + need);
    std::memcpy(wire_.data() + at, &oh, sizeof(oh));
    std::memcpy(wire_.data() + at + sizeof(oh), &op.key, kKeyBytes);
    if (entry != nullptr) {
      std::memcpy(wire_.data() + at + sizeof(oh) + kKeyBytes, entry,
                  oh.entry_len);
    }
    ++chunk_ops;
  }
  close_chunk();

  chunks_.reserve(bounds.size());
  for (const auto& [start, end] : bounds) {
    chunks_.push_back({wire_.data() + start, end - start});
  }
  return chunks_;
}

SyncRuntime::ApplyResult SyncRuntime::apply(std::span<const u8> payload) {
  ApplyResult result;
  SPRAYER_CHECK_MSG(payload.size() >= sizeof(SyncFrameHeader),
                    "truncated sync frame");
  SyncFrameHeader hdr;
  std::memcpy(&hdr, payload.data(), sizeof(hdr));
  SPRAYER_CHECK_MSG(hdr.magic == kSyncFrameMagic && hdr.version == 1,
                    "sync frame magic/version mismatch");

  std::size_t off = sizeof(hdr);
  for (u32 i = 0; i < hdr.op_count; ++i) {
    SPRAYER_CHECK_MSG(off + sizeof(SyncOpHeader) + kKeyBytes <= payload.size(),
                      "truncated sync op");
    SyncOpHeader oh;
    std::memcpy(&oh, payload.data() + off, sizeof(oh));
    net::FiveTuple key;
    std::memcpy(&key, payload.data() + off + sizeof(oh), kKeyBytes);
    off += sizeof(oh) + kKeyBytes;

    SPRAYER_CHECK_MSG(oh.hop < replicas_.size(), "sync op for unknown hop");
    core::FlowTable& t = *replicas_[oh.hop];
    if (oh.kind == static_cast<u8>(ReplOpKind::kUpsert)) {
      SPRAYER_CHECK_MSG(off + oh.entry_len <= payload.size(),
                        "truncated sync entry");
      SPRAYER_CHECK_MSG(oh.entry_len == t.entry_size(),
                        "sync entry size mismatch");
      void* e = t.insert(key, oh.hash);
      if (e != nullptr) {
        std::memcpy(e, payload.data() + off, oh.entry_len);
        ++result.upserts;
      } else {
        ++stats_.apply_failures;  // replica full: now divergent
      }
      off += oh.entry_len;
    } else {
      if (t.remove(key, oh.hash)) {
        ++result.removes;
      } else {
        ++stats_.apply_failures;  // remove of a flow this replica never had
      }
    }
  }
  ++stats_.frames_applied;
  stats_.ops_applied += result.upserts + result.removes;
  return result;
}

}  // namespace sprayer::state

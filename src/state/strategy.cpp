#include "state/strategy.hpp"

#include <bit>
#include <cstring>

namespace sprayer::state {

namespace {

using core::FlowTable;

// ---------------------------------------------------------------------------
// Writing partition — the paper's design, in strategy clothes
// ---------------------------------------------------------------------------

class WritingPartitionStrategy final : public StateStrategy {
 public:
  explicit WritingPartitionStrategy(u32 num_cores)
      : StateStrategy(num_cores) {}

  [[nodiscard]] StateStrategyKind kind() const noexcept override {
    return StateStrategyKind::kWritingPartition;
  }
  [[nodiscard]] u32 num_hops() const noexcept override {
    return static_cast<u32>(tables_.size());
  }

  void add_hop(u32 capacity, u32 entry_size) override {
    auto& owned = tables_.emplace_back();
    auto& ptrs = ptrs_.emplace_back();
    for (CoreId c = 0; c < num_cores_; ++c) {
      owned.push_back(std::make_unique<FlowTable>(capacity, entry_size, c));
      ptrs.push_back(owned.back().get());
    }
  }

  [[nodiscard]] std::span<FlowTable* const> hop_tables(
      u32 hop) noexcept override {
    return ptrs_[hop];
  }

  [[nodiscard]] CoreStateView view(CoreId core, u32 hop) noexcept override {
    (void)core;
    CoreStateView v;
    v.kind = StateStrategyKind::kWritingPartition;
    v.hop = static_cast<u8>(hop);
    return v;
  }

 private:
  std::vector<std::vector<std::unique_ptr<FlowTable>>> tables_;  // [hop][core]
  std::vector<std::vector<FlowTable*>> ptrs_;
};

// ---------------------------------------------------------------------------
// State-compute replication
// ---------------------------------------------------------------------------

class ReplicationStrategy final : public StateStrategy {
 public:
  ReplicationStrategy(u32 num_cores) : StateStrategy(num_cores) {}

  [[nodiscard]] StateStrategyKind kind() const noexcept override {
    return StateStrategyKind::kReplication;
  }
  [[nodiscard]] u32 num_hops() const noexcept override {
    return static_cast<u32>(tables_.size());
  }

  void add_hop(u32 capacity, u32 entry_size) override {
    // Every replica holds the whole flow space, not just a 1/N shard.
    const u32 scaled = capacity * std::bit_ceil(num_cores_);
    auto& owned = tables_.emplace_back();
    auto& ptrs = ptrs_.emplace_back();
    for (CoreId c = 0; c < num_cores_; ++c) {
      owned.push_back(std::make_unique<FlowTable>(scaled, entry_size, c));
      ptrs.push_back(owned.back().get());
    }
  }

  [[nodiscard]] std::span<FlowTable* const> hop_tables(
      u32 hop) noexcept override {
    return ptrs_[hop];
  }

  [[nodiscard]] CoreStateView view(CoreId core, u32 hop) noexcept override {
    CoreStateView v;
    v.kind = StateStrategyKind::kReplication;
    v.log = &sync_runtime_for(core)->log();
    v.hop = static_cast<u8>(hop);
    return v;
  }

  [[nodiscard]] SyncRuntime* sync_runtime(CoreId core) noexcept override {
    return sync_runtime_for(core);
  }

  [[nodiscard]] DivergenceReport check_divergence() override {
    ++divergence_checks_;
    DivergenceReport report;
    for (auto& hop : ptrs_) {
      FlowTable& reference = *hop[0];
      for (CoreId c = 1; c < num_cores_; ++c) {
        FlowTable& replica = *hop[c];
        u64 found = 0;
        reference.for_each([&](const net::FiveTuple& key, void* entry) {
          ++report.entries_compared;
          const void* other = replica.find_remote(key);
          if (other == nullptr) {
            ++report.missing_entries;
            return;
          }
          ++found;
          if (std::memcmp(entry, other, reference.entry_size()) != 0) {
            ++report.mismatched_entries;
          }
        });
        report.extra_entries += replica.size() - found;
      }
    }
    divergence_mismatches_ += report.total();
    return report;
  }

  [[nodiscard]] SyncStatsSnapshot sync_stats() const override {
    SyncStatsSnapshot s;
    for (const auto& rt : runtimes_) {
      if (rt == nullptr) continue;
      const SyncRuntime::Stats& st = rt->stats();
      s.frames_sent += st.frames_sent;
      s.bytes_sent += st.bytes_sent;
      s.ops_sent += st.ops_sent;
      s.frames_applied += st.frames_applied;
      s.ops_applied += st.ops_applied;
      s.apply_failures += st.apply_failures;
      s.alloc_stalls += st.alloc_stalls;
    }
    return s;
  }

 private:
  /// Runtimes are built lazily on first access so every hop's replicas
  /// exist by then (executors call add_hop for all hops before wiring
  /// engines and contexts).
  [[nodiscard]] SyncRuntime* sync_runtime_for(CoreId core) {
    if (runtimes_.empty()) runtimes_.resize(num_cores_);
    if (runtimes_[core] == nullptr) {
      std::vector<FlowTable*> replicas;
      replicas.reserve(ptrs_.size());
      for (auto& hop : ptrs_) replicas.push_back(hop[core]);
      runtimes_[core] = std::make_unique<SyncRuntime>(core, std::move(replicas));
    }
    return runtimes_[core].get();
  }

  std::vector<std::vector<std::unique_ptr<FlowTable>>> tables_;  // [hop][core]
  std::vector<std::vector<FlowTable*>> ptrs_;
  std::vector<std::unique_ptr<SyncRuntime>> runtimes_;  // [core]
};

// ---------------------------------------------------------------------------
// Shared-locked baseline
// ---------------------------------------------------------------------------

class SharedLockedStrategy final : public StateStrategy {
 public:
  SharedLockedStrategy(u32 num_cores, u32 stripes)
      : StateStrategy(num_cores), stripes_(stripes) {}

  [[nodiscard]] StateStrategyKind kind() const noexcept override {
    return StateStrategyKind::kSharedLocked;
  }
  [[nodiscard]] u32 num_hops() const noexcept override {
    return static_cast<u32>(tables_.size());
  }

  void add_hop(u32 capacity, u32 entry_size) override {
    // One table for the whole flow space, aliased into every core slot so
    // FlowStateApi::local() lands on it regardless of core.
    const u32 scaled = capacity * std::bit_ceil(num_cores_);
    tables_.push_back(
        std::make_unique<FlowTable>(scaled, entry_size, /*owner=*/0));
    locks_.push_back(std::make_unique<StripedLock>(stripes_));
    auto& ptrs = ptrs_.emplace_back();
    ptrs.assign(num_cores_, tables_.back().get());
  }

  [[nodiscard]] std::span<FlowTable* const> hop_tables(
      u32 hop) noexcept override {
    return ptrs_[hop];
  }

  [[nodiscard]] CoreStateView view(CoreId core, u32 hop) noexcept override {
    (void)core;
    CoreStateView v;
    v.kind = StateStrategyKind::kSharedLocked;
    v.lock = locks_[hop].get();
    v.hop = static_cast<u8>(hop);
    return v;
  }

  [[nodiscard]] bool redirects_connection_packets() const noexcept override {
    return false;
  }

 private:
  u32 stripes_;
  std::vector<std::unique_ptr<FlowTable>> tables_;  // [hop]
  std::vector<std::unique_ptr<StripedLock>> locks_;
  std::vector<std::vector<FlowTable*>> ptrs_;  // [hop][core], all aliases
};

}  // namespace

std::unique_ptr<StateStrategy> StateStrategy::make(
    const StateStrategyConfig& cfg, u32 num_cores) {
  switch (cfg.kind) {
    case StateStrategyKind::kWritingPartition:
      return std::make_unique<WritingPartitionStrategy>(num_cores);
    case StateStrategyKind::kReplication:
      return std::make_unique<ReplicationStrategy>(num_cores);
    case StateStrategyKind::kSharedLocked:
      return std::make_unique<SharedLockedStrategy>(num_cores,
                                                    cfg.lock_stripes);
  }
  SPRAYER_CHECK_MSG(false, "unknown state strategy kind");
  return nullptr;
}

}  // namespace sprayer::state
